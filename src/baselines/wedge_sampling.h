// Wedge sampling (Seshadhri, Pinar, Kolda — SDM'13), the paper's
// full-access baseline for triadic measures (Section 6.3.2).
//
// Draws uniform wedges by sampling a center v with probability
// C(d_v, 2) / W (alias table, O(|V|) preprocessing) and a uniform pair of
// its neighbors, then checks closure. The closed-wedge fraction kappa
// gives triangles T = kappa * W / 3 and the 3-node concentrations.

#pragma once

#include <cstdint>
#include <vector>

#include "baselines/alias.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// Result of a wedge-sampling run.
struct WedgeSamplingResult {
  uint64_t samples = 0;
  uint64_t closed = 0;
  /// Estimated triangle count T = (closed/samples) * W / 3.
  double triangles = 0.0;
  /// Estimated induced 3-node counts/concentrations by catalog id.
  std::vector<double> counts;
  std::vector<double> concentrations;
};

/// Uniform-wedge sampler with O(1) per-sample cost.
class WedgeSampler {
 public:
  /// O(|V|) preprocessing (degree scan + alias table).
  explicit WedgeSampler(const Graph& g);

  /// Draws one uniform wedge; returns true iff it is closed.
  bool SampleClosedWedge(Rng& rng) const;

  /// Runs n samples and assembles estimates.
  WedgeSamplingResult Run(uint64_t n, Rng& rng) const;

  /// Total number of wedges W.
  double TotalWedges() const { return centers_.TotalWeight(); }

 private:
  const Graph* g_;
  AliasTable centers_;
};

}  // namespace grw
