#include "baselines/wedge_mhrw.h"

#include <stdexcept>

#include "graphlet/catalog.h"

namespace grw {

WedgeMhrw::WedgeMhrw(const Graph& g) : g_(&g) {
  if (g.NumNodes() < 3) {
    throw std::invalid_argument("WedgeMhrw: graph too small");
  }
}

void WedgeMhrw::Reset(uint64_t seed) {
  rng_.Seed(seed);
  steps_ = 0;
  closed_ = 0;
  open_ = 0;
  // Algorithm 4 line 3: random starting node with degree >= 2 (nodes with
  // smaller degree carry zero target probability).
  do {
    current_ = static_cast<VertexId>(rng_.UniformInt(g_->NumNodes()));
  } while (g_->Degree(current_) < 2);
}

void WedgeMhrw::Run(uint64_t steps) {
  for (uint64_t s = 0; s < steps; ++s) {
    const uint32_t d = g_->Degree(current_);
    // Sample a uniform unordered pair of neighbors of the current node
    // (Algorithm 4 line 5) and test closure.
    const uint32_t i = static_cast<uint32_t>(rng_.UniformInt(d));
    uint32_t j = static_cast<uint32_t>(rng_.UniformInt(d - 1));
    if (j >= i) ++j;
    if (g_->HasEdge(g_->Neighbor(current_, i), g_->Neighbor(current_, j))) {
      ++closed_;
    } else {
      ++open_;
    }
    // MH move: SRW proposal, acceptance min{1, (d_w - 1)/(d_v - 1)}
    // (lines 10-15). Proposals with d_w < 2 are always rejected.
    const VertexId w =
        g_->Neighbor(current_, static_cast<uint32_t>(rng_.UniformInt(d)));
    const double ratio = static_cast<double>(g_->Degree(w) - 1) /
                         static_cast<double>(d - 1);
    if (g_->Degree(w) >= 2 && rng_.UniformReal() <= ratio) current_ = w;
    ++steps_;
  }
}

std::vector<double> WedgeMhrw::Concentrations() const {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(3);
  std::vector<double> c(2, 0.0);
  // Line 17: c_wedge = 3*open / (3*open + closed),
  //          c_triangle = closed / (3*open + closed).
  const double denom = 3.0 * static_cast<double>(open_) +
                       static_cast<double>(closed_);
  if (denom > 0.0) {
    c[catalog.IdByName("wedge")] = 3.0 * static_cast<double>(open_) / denom;
    c[catalog.IdByName("triangle")] = static_cast<double>(closed_) / denom;
  }
  return c;
}

}  // namespace grw
