// GUISE (Bhuiyan et al., ICDM'12): uniform graphlet sampling via a
// Metropolis-Hastings walk on the subgraph relationship graph — the third
// restricted-access method in the paper's related work (Section 1.1).
//
// GUISE walks over all 3-, 4- and 5-node connected induced subgraphs
// simultaneously: from the current graphlet it proposes a random neighbor
// (a graphlet obtained by swapping/adding/removing one vertex) and accepts
// with probability min{1, deg(current)/deg(proposal)}, making the
// stationary distribution uniform over graphlets of all three sizes at
// once. Concentrations are then plain frequencies.
//
// The paper notes GUISE "suffers from rejection of samples"; implementing
// it lets the benches quantify that against the framework (the MH
// rejections waste steps, and the neighbor-population cost per step is
// far higher than SRW1/SRW2's O(1)).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// MH-uniform sampler over 3/4/5-node graphlets.
class Guise {
 public:
  /// The graph must be connected with at least 6 nodes.
  explicit Guise(const Graph& g);

  /// Starts a fresh chain from a random connected 3..5-node subgraph.
  void Reset(uint64_t seed);

  /// Advances `steps` MH transitions, tallying one graphlet observation
  /// (the current state) per step.
  void Run(uint64_t steps);

  /// Concentration estimates for one size (catalog ids), normalized
  /// within that size. k in {3, 4, 5}.
  std::vector<double> Concentrations(int k) const;

  uint64_t Steps() const { return steps_; }
  uint64_t Accepted() const { return accepted_; }
  /// Fraction of proposals rejected by the MH filter — the inefficiency
  /// the paper calls out.
  double RejectionRate() const {
    return steps_ == 0 ? 0.0
                       : 1.0 - static_cast<double>(accepted_) /
                                   static_cast<double>(steps_);
  }

 private:
  // Populates `neighbors_` with all graphlet states adjacent to `nodes`
  // in GUISE's relationship graph: same-size vertex swaps, one-vertex
  // additions (size < 5) and one-vertex removals (size > 3).
  void PopulateNeighbors(const std::vector<VertexId>& nodes);

  void Tally(const std::vector<VertexId>& nodes);

  const Graph* g_;
  Rng rng_;
  std::vector<VertexId> current_;
  std::vector<VertexId> neighbors_;        // flattened, variable stride
  std::vector<uint32_t> neighbor_offsets_;  // start of each neighbor
  // PopulateNeighbors workspace, hoisted so the per-step hot path stays
  // allocation-free once the vectors reach their high-water capacity.
  std::vector<VertexId> candidate_;
  std::vector<VertexId> frontier_;
  std::vector<VertexId> swap_base_;
  uint64_t steps_ = 0;
  uint64_t accepted_ = 0;
  std::vector<uint64_t> counts3_;
  std::vector<uint64_t> counts4_;
  std::vector<uint64_t> counts5_;
};

}  // namespace grw
