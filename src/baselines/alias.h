// Walker's alias method: O(1) sampling from a fixed discrete distribution
// after O(n) preprocessing.
//
// The full-access baselines (paper Section 6.3.2) sample nodes with
// probability proportional to C(d_v, 2) (wedge sampling) and edges with
// probability proportional to (d_u - 1)(d_v - 1) (path sampling); both are
// static weighted distributions over millions of items, which is the alias
// method's sweet spot. The preprocessing cost is exactly the O(|V|)/O(|E|)
// setup the paper charges these baselines with.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace grw {

/// Alias table over indices [0, n) with the given non-negative weights.
class AliasTable {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability weight[i] / sum(weights). O(1).
  size_t Sample(Rng& rng) const;

  size_t Size() const { return prob_.size(); }
  double TotalWeight() const { return total_weight_; }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  double total_weight_;
};

}  // namespace grw
