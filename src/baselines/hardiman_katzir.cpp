#include "baselines/hardiman_katzir.h"

#include <stdexcept>

#include "graphlet/catalog.h"

namespace grw {

HardimanKatzir::HardimanKatzir(const Graph& g) : g_(&g) {
  if (g.NumNodes() < 3) {
    throw std::invalid_argument("HardimanKatzir: graph too small");
  }
}

void HardimanKatzir::Reset(uint64_t seed) {
  rng_.Seed(seed);
  current_ = static_cast<VertexId>(rng_.UniformInt(g_->NumNodes()));
  has_prev_ = false;
  phi_weighted_ = 0.0;
  psi_ = 0.0;
  steps_ = 0;
}

void HardimanKatzir::Run(uint64_t steps) {
  for (uint64_t s = 0; s < steps; ++s) {
    const uint32_t deg = g_->Degree(current_);
    const VertexId next =
        g_->Neighbor(current_, static_cast<uint32_t>(rng_.UniformInt(deg)));
    if (has_prev_) {
      // Interior sample at `current_`: are the entry and exit neighbors
      // themselves adjacent?
      if (g_->HasEdge(prev_, next)) {
        phi_weighted_ += static_cast<double>(deg);
      }
      psi_ += static_cast<double>(deg) - 1.0;
    }
    prev_ = current_;
    has_prev_ = true;
    current_ = next;
    ++steps_;
  }
}

double HardimanKatzir::ClusteringCoefficient() const {
  return psi_ > 0.0 ? phi_weighted_ / psi_ : 0.0;
}

std::vector<double> HardimanKatzir::Concentrations() const {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(3);
  const double c = ClusteringCoefficient();
  // c32 = c / (3 - 2c), c31 = 1 - c32 (paper Section 2.1 relationship).
  const double c32 = c / (3.0 - 2.0 * c);
  std::vector<double> result(2, 0.0);
  result[catalog.IdByName("triangle")] = c32;
  result[catalog.IdByName("wedge")] = 1.0 - c32;
  return result;
}

}  // namespace grw
