#include "baselines/wedge_sampling.h"

#include "graphlet/catalog.h"

namespace grw {

namespace {

std::vector<double> WedgeWeights(const Graph& g) {
  std::vector<double> weights(g.NumNodes());
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    const double d = g.Degree(v);
    weights[v] = d * (d - 1) / 2.0;
  }
  return weights;
}

}  // namespace

WedgeSampler::WedgeSampler(const Graph& g)
    : g_(&g), centers_(WedgeWeights(g)) {}

bool WedgeSampler::SampleClosedWedge(Rng& rng) const {
  const VertexId v = static_cast<VertexId>(centers_.Sample(rng));
  const uint32_t d = g_->Degree(v);
  // Uniform unordered pair of distinct neighbors.
  const uint32_t i = static_cast<uint32_t>(rng.UniformInt(d));
  uint32_t j = static_cast<uint32_t>(rng.UniformInt(d - 1));
  if (j >= i) ++j;
  return g_->HasEdge(g_->Neighbor(v, i), g_->Neighbor(v, j));
}

WedgeSamplingResult WedgeSampler::Run(uint64_t n, Rng& rng) const {
  WedgeSamplingResult result;
  result.samples = n;
  for (uint64_t s = 0; s < n; ++s) {
    if (SampleClosedWedge(rng)) ++result.closed;
  }
  const double w = TotalWedges();
  const double kappa =
      n > 0 ? static_cast<double>(result.closed) / static_cast<double>(n)
            : 0.0;
  result.triangles = kappa * w / 3.0;

  const GraphletCatalog& catalog = GraphletCatalog::ForSize(3);
  result.counts.assign(2, 0.0);
  // Induced wedges = open wedges; each triangle absorbs 3 closed wedges.
  result.counts[catalog.IdByName("wedge")] = (1.0 - kappa) * w;
  result.counts[catalog.IdByName("triangle")] = result.triangles;
  const double total = result.counts[0] + result.counts[1];
  result.concentrations.assign(2, 0.0);
  if (total > 0.0) {
    result.concentrations[0] = result.counts[0] / total;
    result.concentrations[1] = result.counts[1] / total;
  }
  return result;
}

}  // namespace grw
