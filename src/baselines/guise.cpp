#include "baselines/guise.h"

#include <algorithm>
#include <stdexcept>

#include "graphlet/catalog.h"
#include "graphlet/classifier.h"
#include "walk/subgraph_walk.h"

namespace grw {

namespace {

constexpr int kMinSize = 3;
constexpr int kMaxSize = 5;

}  // namespace

Guise::Guise(const Graph& g) : g_(&g) {
  if (g.NumNodes() < kMaxSize + 1) {
    throw std::invalid_argument("Guise: graph too small");
  }
  counts3_.assign(GraphletCatalog::ForSize(3).NumTypes(), 0);
  counts4_.assign(GraphletCatalog::ForSize(4).NumTypes(), 0);
  counts5_.assign(GraphletCatalog::ForSize(5).NumTypes(), 0);
}

void Guise::Reset(uint64_t seed) {
  rng_.Seed(seed);
  steps_ = 0;
  accepted_ = 0;
  std::fill(counts3_.begin(), counts3_.end(), 0);
  std::fill(counts4_.begin(), counts4_.end(), 0);
  std::fill(counts5_.begin(), counts5_.end(), 0);
  // Grow a random connected 3-node seed subgraph.
  while (true) {
    current_.clear();
    current_.push_back(
        static_cast<VertexId>(rng_.UniformInt(g_->NumNodes())));
    int guard = 0;
    while (static_cast<int>(current_.size()) < kMinSize && guard++ < 64) {
      const VertexId anchor = current_[rng_.UniformInt(current_.size())];
      const uint32_t deg = g_->Degree(anchor);
      const VertexId w = g_->Neighbor(
          anchor, static_cast<uint32_t>(rng_.UniformInt(deg)));
      if (std::find(current_.begin(), current_.end(), w) == current_.end()) {
        current_.push_back(w);
      }
    }
    if (static_cast<int>(current_.size()) == kMinSize) break;
  }
  std::sort(current_.begin(), current_.end());
}

void Guise::PopulateNeighbors(const std::vector<VertexId>& nodes) {
  neighbors_.clear();
  neighbor_offsets_.clear();
  const int t = static_cast<int>(nodes.size());

  auto emit = [this](const std::vector<VertexId>& state) {
    neighbor_offsets_.push_back(static_cast<uint32_t>(neighbors_.size()));
    neighbors_.insert(neighbors_.end(), state.begin(), state.end());
  };

  // Removals (t > kMinSize): drop one vertex, remainder must stay
  // connected.
  if (t > kMinSize) {
    for (int omit = 0; omit < t; ++omit) {
      candidate_.clear();
      for (int i = 0; i < t; ++i) {
        if (i != omit) candidate_.push_back(nodes[i]);
      }
      if (InducedSubgraphConnected(*g_, candidate_)) emit(candidate_);
    }
  }

  // Distinct external neighbors of the subgraph.
  frontier_.clear();
  for (VertexId v : nodes) {
    for (VertexId w : g_->Neighbors(v)) {
      if (std::find(nodes.begin(), nodes.end(), w) == nodes.end()) {
        frontier_.push_back(w);
      }
    }
  }
  std::sort(frontier_.begin(), frontier_.end());
  frontier_.erase(std::unique(frontier_.begin(), frontier_.end()),
                  frontier_.end());

  // Additions (t < kMaxSize): adjoin any external neighbor.
  if (t < kMaxSize) {
    for (VertexId w : frontier_) {
      candidate_.resize(t + 1);
      std::merge(nodes.begin(), nodes.end(), &w, &w + 1, candidate_.begin());
      emit(candidate_);
    }
  }

  // Swaps: replace one vertex by an external neighbor of the remainder.
  swap_base_.resize(t - 1);
  for (int omit = 0; omit < t; ++omit) {
    for (int i = 0, j = 0; i < t; ++i) {
      if (i != omit) swap_base_[j++] = nodes[i];
    }
    for (VertexId w : frontier_) {
      // w adjacent to the base (not merely to the omitted vertex)?
      candidate_.resize(t);
      std::merge(swap_base_.begin(), swap_base_.end(), &w, &w + 1,
                 candidate_.begin());
      if (InducedSubgraphConnected(*g_, candidate_)) emit(candidate_);
    }
  }
  neighbor_offsets_.push_back(static_cast<uint32_t>(neighbors_.size()));
}

void Guise::Tally(const std::vector<VertexId>& nodes) {
  const int t = static_cast<int>(nodes.size());
  uint32_t mask = 0;
  for (int i = 0; i < t; ++i) {
    for (int j = i + 1; j < t; ++j) {
      if (g_->HasEdge(nodes[i], nodes[j])) {
        mask = MaskWithEdge(mask, t, i, j);
      }
    }
  }
  const int type = GraphletClassifier::ForSize(t).Type(mask);
  if (type < 0) return;
  if (t == 3) counts3_[type]++;
  if (t == 4) counts4_[type]++;
  if (t == 5) counts5_[type]++;
}

void Guise::Run(uint64_t steps) {
  std::vector<VertexId> proposal;
  for (uint64_t s = 0; s < steps; ++s) {
    PopulateNeighbors(current_);
    const size_t current_degree = neighbor_offsets_.size() - 1;
    if (current_degree > 0) {
      const size_t pick = rng_.UniformInt(current_degree);
      proposal.assign(neighbors_.begin() + neighbor_offsets_[pick],
                      neighbors_.begin() + neighbor_offsets_[pick + 1]);
      // MH acceptance toward the uniform distribution over graphlets:
      // min{1, d(current)/d(proposal)}.
      PopulateNeighbors(proposal);
      const size_t proposal_degree = neighbor_offsets_.size() - 1;
      const double ratio = static_cast<double>(current_degree) /
                           static_cast<double>(proposal_degree);
      if (rng_.UniformReal() <= ratio) {
        current_ = proposal;
        ++accepted_;
      }
    }
    Tally(current_);
    ++steps_;
  }
}

std::vector<double> Guise::Concentrations(int k) const {
  const std::vector<uint64_t>* counts = nullptr;
  switch (k) {
    case 3:
      counts = &counts3_;
      break;
    case 4:
      counts = &counts4_;
      break;
    case 5:
      counts = &counts5_;
      break;
    default:
      throw std::invalid_argument("Guise::Concentrations: k must be 3..5");
  }
  std::vector<double> result(counts->size(), 0.0);
  uint64_t total = 0;
  for (uint64_t c : *counts) total += c;
  if (total > 0) {
    for (size_t i = 0; i < counts->size(); ++i) {
      result[i] = static_cast<double>((*counts)[i]) /
                  static_cast<double>(total);
    }
  }
  return result;
}

}  // namespace grw
