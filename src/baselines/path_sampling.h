// Path sampling (Jha, Seshadhri, Pinar — WWW'15), the paper's full-access
// baseline for 4-node graphlet counts (Section 6.3.2).
//
// Draws uniform non-induced 3-paths: sample the middle edge e = (u, v)
// with probability tau_e / W3 where tau_e = (d_u - 1)(d_v - 1) (alias
// table, O(|E|) preprocessing), then uniform u' in N(u)\{v} and
// v' in N(v)\{u}. Each sample with 4 distinct vertices is classified; the
// count of graphlet i is estimated as
//     C_i = (n_i / n) * W3 / beta_i,
// where beta_i — computed programmatically from the embedding matrix —
// is the number of spanning 3-paths in graphlet i. The 3-star (beta = 0)
// is recovered from the exact non-induced star count sum_v C(d_v, 3) minus
// the estimated star embeddings in denser graphlets, exactly the linear
// relationship of graphlet/noninduced.h.

#pragma once

#include <cstdint>
#include <vector>

#include "baselines/alias.h"
#include "exact/triangle.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// Result of a path-sampling run.
struct PathSamplingResult {
  uint64_t samples = 0;
  /// Samples that collapsed to 3 vertices (u' == v', a triangle).
  uint64_t collisions = 0;
  /// Estimated induced 4-node counts/concentrations by catalog id.
  std::vector<double> counts;
  std::vector<double> concentrations;
};

/// Uniform 3-path sampler.
class PathSampler {
 public:
  /// O(|E|) preprocessing (edge weights + alias table).
  explicit PathSampler(const Graph& g);

  /// Runs n samples and assembles estimates.
  PathSamplingResult Run(uint64_t n, Rng& rng) const;

  /// W3 = sum_e (d_u - 1)(d_v - 1): 3-edge walks centered on each edge.
  double TotalPathWeight() const { return edges_.TotalWeight(); }

 private:
  const Graph* g_;
  EdgeIndex index_;
  AliasTable edges_;
  std::vector<int64_t> beta_;     // spanning 3-paths per catalog id
  double exact_star_noninduced_;  // sum_v C(d_v, 3)
};

}  // namespace grw
