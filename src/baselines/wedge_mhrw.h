// Adapted wedge sampling for restricted-access graphs — paper Algorithm 4
// (Appendix F) and the comparison method of Section 6.3.3.
//
// A Metropolis–Hastings random walk targets pi(v) ∝ C(d_v, 2) (acceptance
// ratio min{1, (d_w - 1)/(d_v - 1)} over simple-random-walk proposals); at
// each step a uniform pair of the current node's neighbors is tested for
// closure. Every step costs 3 API calls in the crawling model (fetch the
// proposal's degree plus the two wedge endpoints), versus 1 for the
// framework's walks — the cost the paper charges this method with.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// MH-driven wedge sampler over a restricted-access graph.
class WedgeMhrw {
 public:
  explicit WedgeMhrw(const Graph& g);

  /// Starts a fresh chain at a random node with degree >= 2.
  void Reset(uint64_t seed);

  /// Advances `steps` MH steps, sampling one wedge per step.
  void Run(uint64_t steps);

  /// Estimated 3-node concentrations by catalog id (Algorithm 4 line 17:
  /// each triangle absorbs three closed wedges).
  std::vector<double> Concentrations() const;

  uint64_t Steps() const { return steps_; }
  uint64_t ClosedWedges() const { return closed_; }

  /// API calls per step in the crawling cost model.
  static constexpr int kApiCallsPerStep = 3;

 private:
  const Graph* g_;
  Rng rng_;
  VertexId current_ = 0;
  uint64_t steps_ = 0;
  uint64_t closed_ = 0;
  uint64_t open_ = 0;
};

}  // namespace grw
