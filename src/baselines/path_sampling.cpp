#include "baselines/path_sampling.h"

#include <array>
#include <cassert>

#include "graphlet/catalog.h"
#include "graphlet/classifier.h"
#include "graphlet/noninduced.h"

namespace grw {

namespace {

std::vector<double> PathWeights(const Graph& g, const EdgeIndex& index) {
  std::vector<double> weights(index.NumEdges(), 0.0);
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (v <= u) continue;
      weights[index.Id(u, v)] = static_cast<double>(g.Degree(u) - 1) *
                                static_cast<double>(g.Degree(v) - 1);
    }
  }
  return weights;
}

}  // namespace

PathSampler::PathSampler(const Graph& g)
    : g_(&g), index_(g), edges_(PathWeights(g, index_)) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(4);
  const int path_id = catalog.IdByName("4-path");
  beta_.resize(catalog.NumTypes());
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    beta_[id] = EmbeddingCount(4, path_id, id);
  }
  exact_star_noninduced_ = 0.0;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    const double d = g.Degree(v);
    if (d >= 3) exact_star_noninduced_ += d * (d - 1) * (d - 2) / 6.0;
  }
}

PathSamplingResult PathSampler::Run(uint64_t n, Rng& rng) const {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(4);
  const GraphletClassifier& classifier = GraphletClassifier::ForSize(4);
  const int star_id = catalog.IdByName("3-star");

  PathSamplingResult result;
  result.samples = n;
  std::vector<uint64_t> hits(catalog.NumTypes(), 0);

  for (uint64_t s = 0; s < n; ++s) {
    const auto [u, v] = index_.Endpoints(edges_.Sample(rng));
    // Uniform neighbor of u other than v (u has degree >= 2 whenever this
    // edge has positive weight, so the skip-index trick is safe).
    const auto pick_other = [this, &rng](VertexId base, VertexId excluded) {
      const auto nbrs = g_->Neighbors(base);
      size_t i = rng.UniformInt(nbrs.size() - 1);
      // nbrs is sorted; skip over `excluded`'s position.
      const size_t ex =
          std::lower_bound(nbrs.begin(), nbrs.end(), excluded) -
          nbrs.begin();
      if (i >= ex) ++i;
      return nbrs[i];
    };
    const VertexId up = pick_other(u, v);
    const VertexId vp = pick_other(v, u);
    if (up == vp) {
      ++result.collisions;  // collapsed to a triangle: not a 4-node sample
      continue;
    }
    const std::array<VertexId, 4> nodes = {up, u, v, vp};
    uint32_t mask = 0;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        if (g_->HasEdge(nodes[i], nodes[j])) {
          mask = MaskWithEdge(mask, 4, i, j);
        }
      }
    }
    const int type = classifier.Type(mask);
    assert(type >= 0);
    ++hits[type];
  }

  // Count estimates: each graphlet of type i holds beta_i spanning
  // 3-paths, each sampled with probability 1/W3.
  result.counts.assign(catalog.NumTypes(), 0.0);
  const double w3 = TotalPathWeight();
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    if (beta_[id] > 0 && n > 0) {
      result.counts[id] = static_cast<double>(hits[id]) /
                          static_cast<double>(n) * w3 /
                          static_cast<double>(beta_[id]);
    }
  }
  // Stars are invisible to 3-path sampling (beta = 0): recover them from
  // the exact non-induced star count minus star embeddings in the denser
  // (estimated) graphlets.
  double star_embeddings_elsewhere = 0.0;
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    if (id == star_id) continue;
    star_embeddings_elsewhere +=
        static_cast<double>(EmbeddingCount(4, star_id, id)) *
        result.counts[id];
  }
  result.counts[star_id] =
      std::max(0.0, exact_star_noninduced_ - star_embeddings_elsewhere);

  double total = 0.0;
  for (double c : result.counts) total += c;
  result.concentrations.assign(catalog.NumTypes(), 0.0);
  if (total > 0.0) {
    for (size_t i = 0; i < result.counts.size(); ++i) {
      result.concentrations[i] = result.counts[i] / total;
    }
  }
  return result;
}

}  // namespace grw
