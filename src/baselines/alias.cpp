#include "baselines/alias.h"

#include <cassert>
#include <stdexcept>

namespace grw {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  total_weight_ = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total_weight_ += w;
  }
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument("AliasTable: zero total weight");
  }

  prob_.resize(n);
  alias_.assign(n, 0);
  // Scaled probabilities; classify into under-/over-full buckets.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  const double scale = static_cast<double>(n) / total_weight_;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * scale;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly full (modulo rounding).
  for (uint32_t i : small) prob_[i] = 1.0;
  for (uint32_t i : large) prob_[i] = 1.0;
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t i = rng.UniformInt(prob_.size());
  return rng.UniformReal() < prob_[i] ? i : alias_[i];
}

}  // namespace grw
