// Hardiman–Katzir (WWW'13) random-walk estimator of the global clustering
// coefficient — the paper's comparison method for 3-node statistics
// (Section 6.3.1), which it shows is SRW1 "derived in a totally different
// way".
//
// A simple random walk visits v_1, v_2, ...; for each interior step k the
// indicator phi_k = 1{v_{k-1} ~ v_{k+1}} tests whether the two neighbors
// the walk entered and left through are themselves connected. Under the
// stationary distribution pi(v) = d_v / 2|E|,
//
//   E[phi * d_v] = 3T / |E|      and      E[d_v - 1] = W / |E|,
//
// so the ratio estimator  c_hat = sum phi_k d_{v_k} / sum (d_{v_k} - 1)
// converges to the global clustering coefficient 3T / W, and the triangle
// concentration follows as c32 = c / (3 - 2c) (paper Section 2.1).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// Random-walk clustering-coefficient estimator.
class HardimanKatzir {
 public:
  explicit HardimanKatzir(const Graph& g);

  /// Starts a fresh chain at a uniform random node.
  void Reset(uint64_t seed);

  /// Advances `steps` transitions (each interior position contributes one
  /// phi sample).
  void Run(uint64_t steps);

  /// Estimated global clustering coefficient 3T / W.
  double ClusteringCoefficient() const;

  /// Estimated 3-node concentrations (catalog ids), derived from the
  /// clustering coefficient.
  std::vector<double> Concentrations() const;

  uint64_t Steps() const { return steps_; }

 private:
  const Graph* g_;
  Rng rng_;
  VertexId prev_ = 0;
  VertexId current_ = 0;
  bool has_prev_ = false;
  double phi_weighted_ = 0.0;  // sum of phi_k * d_{v_k}
  double psi_ = 0.0;           // sum of (d_{v_k} - 1)
  uint64_t steps_ = 0;
};

}  // namespace grw
