#include "core/paper_ids.h"

#include <cassert>
#include <map>
#include <mutex>
#include <stdexcept>

#include "core/alpha.h"
#include "graphlet/catalog.h"

namespace grw {

namespace {

// Paper Table 2, alpha^k_i / 2. Column order g31, g32 and g41..g46.
const std::vector<std::vector<int64_t>> kPaperAlpha3 = {
    {1, 3},  // SRW1
    {1, 3},  // SRW2
};
const std::vector<std::vector<int64_t>> kPaperAlpha4 = {
    {1, 0, 4, 2, 6, 12},   // SRW1
    {1, 3, 4, 5, 12, 24},  // SRW2
    {1, 3, 6, 3, 6, 6},    // SRW3
};
// Paper Table 3, alpha^5_i / 2, columns = paper IDs 1..21.
const std::vector<std::vector<int64_t>> kPaperAlpha5 = {
    {1, 0, 0, 1, 2, 0, 5, 2, 2, 4, 4, 6, 7, 6, 6, 10, 14, 18, 24, 36, 60},
    {1, 2, 12, 5, 4, 16, 5, 6, 24, 24, 12, 18, 15, 54, 36, 42, 34, 82, 76,
     144, 240},
    {1, 5, 24, 8, 5, 24, 5, 16, 30, 24, 16, 63, 26, 63, 30, 43, 63, 63, 90,
     90, 90},
    {1, 3, 6, 3, 3, 6, 10, 12, 12, 12, 12, 10, 10, 10, 12, 10, 10, 10, 10,
     10, 10},
};

std::vector<int> BuildPaperOrder(int k) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  if (k == 3) {
    return {catalog.IdByName("wedge"), catalog.IdByName("triangle")};
  }
  if (k == 4) {
    return {catalog.IdByName("4-path"),
            catalog.IdByName("3-star"),
            catalog.IdByName("4-cycle"),
            catalog.IdByName("tailed-triangle"),
            catalog.IdByName("chordal-cycle"),
            catalog.IdByName("4-clique")};
  }
  assert(k == 5);
  // Match each catalog graphlet's (alpha_SRW1/2, alpha_SRW2/2) pair to the
  // unique Table 3 column carrying it.
  std::map<std::pair<int64_t, int64_t>, int> column_of;
  for (int pos = 0; pos < 21; ++pos) {
    const auto key =
        std::make_pair(kPaperAlpha5[0][pos], kPaperAlpha5[1][pos]);
    if (!column_of.emplace(key, pos).second) {
      throw std::logic_error("paper Table 3 columns not distinguishable");
    }
  }
  std::vector<int> order(21, -1);
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    const Graphlet& g = catalog.Get(id);
    const auto key = std::make_pair(Alpha(g, 1) / 2, Alpha(g, 2) / 2);
    const auto it = column_of.find(key);
    if (it == column_of.end()) {
      throw std::logic_error(
          "computed alpha pair for a 5-node graphlet matches no paper "
          "column: " + g.name);
    }
    if (order[it->second] != -1) {
      throw std::logic_error("two graphlets matched paper column " +
                             std::to_string(it->second + 1));
    }
    order[it->second] = id;
  }
  return order;
}

}  // namespace

const std::vector<int>& PaperOrder(int k) {
  assert(k >= 3 && k <= 5);
  static std::once_flag flags[6];
  static std::vector<int> orders[6];
  std::call_once(flags[k], [k] { orders[k] = BuildPaperOrder(k); });
  return orders[k];
}

const std::vector<int>& PaperPositionOfCatalogId(int k) {
  assert(k >= 3 && k <= 5);
  static std::once_flag flags[6];
  static std::vector<int> inverse[6];
  std::call_once(flags[k], [k] {
    const std::vector<int>& order = PaperOrder(k);
    inverse[k].assign(order.size(), -1);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      inverse[k][order[pos]] = static_cast<int>(pos);
    }
  });
  return inverse[k];
}

std::string PaperLabel(int k, int paper_pos) {
  if (k == 5) return "g5_" + std::to_string(paper_pos + 1);
  return "g" + std::to_string(k) + std::to_string(paper_pos + 1);
}

const std::vector<std::vector<int64_t>>& PaperAlphaHalfTable(int k) {
  switch (k) {
    case 3:
      return kPaperAlpha3;
    case 4:
      return kPaperAlpha4;
    case 5:
      return kPaperAlpha5;
    default:
      throw std::invalid_argument("PaperAlphaHalfTable: k must be 3..5");
  }
}

}  // namespace grw
