#include "core/sample_window.h"

#include <algorithm>

#include "graph/access.h"
#include "graph/sharded_access.h"

namespace grw {

template <class G>
void SampleWindowT<G>::Push(std::span<const VertexId> nodes,
                            uint64_t state_degree) {
  // Evict first so the registry never exceeds k vertices (any l-1
  // consecutive states cover at most d + l - 2 = k - 1 vertices).
  if (size_ == l_) {
    const WindowState& oldest = StateAt(0);
    for (int i = 0; i < oldest.num_nodes; ++i) {
      ReleaseVertex(oldest.nodes[i]);
    }
    head_ = (head_ + 1) % l_;
    --size_;
  }
  WindowState& slot = StateAt(size_);
  slot.num_nodes = static_cast<uint8_t>(nodes.size());
  slot.degree = state_degree;
  for (size_t i = 0; i < nodes.size(); ++i) {
    slot.nodes[i] = nodes[i];
    AddVertex(nodes[i]);
  }
  ++size_;
}

template <class G>
void SampleWindowT<G>::AddVertex(VertexId v) {
  for (int i = 0; i < registry_size_; ++i) {
    if (registry_nodes_[i] == v) {
      ++registry_refs_[i];
      return;
    }
  }
  assert(registry_size_ < k_);
  const int idx = registry_size_++;
  registry_nodes_[idx] = v;
  registry_refs_[idx] = 1;
  // The incremental step of paper Section 5: only the entering vertex's
  // adjacency needs fresh queries (<= k-1 binary searches).
  for (int i = 0; i < idx; ++i) {
    const bool has = g_->HasEdge(registry_nodes_[i], v);
    adj_[i][idx] = has;
    adj_[idx][i] = has;
  }
  adj_[idx][idx] = false;
}

template <class G>
void SampleWindowT<G>::ReleaseVertex(VertexId v) {
  for (int i = 0; i < registry_size_; ++i) {
    if (registry_nodes_[i] != v) continue;
    if (--registry_refs_[i] > 0) return;
    // Remove row/column i, preserving first-appearance order of the rest.
    for (int r = i; r + 1 < registry_size_; ++r) {
      registry_nodes_[r] = registry_nodes_[r + 1];
      registry_refs_[r] = registry_refs_[r + 1];
    }
    for (int r = 0; r < registry_size_; ++r) {
      for (int c = i; c + 1 < registry_size_; ++c) {
        adj_[r][c] = adj_[r][c + 1];
      }
    }
    for (int r = i; r + 1 < registry_size_; ++r) {
      for (int c = 0; c < registry_size_; ++c) {
        adj_[r][c] = adj_[r + 1][c];
      }
    }
    --registry_size_;
    return;
  }
  assert(false && "releasing vertex not in registry");
}

template <class G>
uint32_t SampleWindowT<G>::Mask() const {
  assert(Valid());
  uint32_t mask = 0;
  for (int i = 0; i < k_; ++i) {
    for (int j = i + 1; j < k_; ++j) {
      if (adj_[i][j]) mask = MaskWithEdge(mask, k_, i, j);
    }
  }
  return mask;
}

template <class G>
uint32_t SampleWindowT<G>::MaskNaive() const {
  assert(Valid());
  uint32_t mask = 0;
  for (int i = 0; i < k_; ++i) {
    for (int j = i + 1; j < k_; ++j) {
      if (g_->HasEdge(registry_nodes_[i], registry_nodes_[j])) {
        mask = MaskWithEdge(mask, k_, i, j);
      }
    }
  }
  return mask;
}

// Closed policy family (graph/access.h + graph/sharded_access.h): full
// access, crawl access, sharded access.
template class SampleWindowT<Graph>;
template class SampleWindowT<CrawlAccess>;
template class SampleWindowT<ShardedAccess>;

}  // namespace grw
