#include "core/css.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <stdexcept>
#include <memory>
#include <mutex>

#include "core/alpha.h"
#include "graph/access.h"
#include "graph/sharded_access.h"
#include "graphlet/catalog.h"

namespace grw {

namespace {

// Degree in G(d) of the state given by canonical-label bitmask `state`,
// mapped onto the sample's real vertices. Only d <= 2 (closed forms).
// Degree reads go through the access policy G.
template <class G>
uint64_t MappedStateDegree(uint16_t state, int d, const MaskInfo& info,
                           std::span<const VertexId> nodes, const G& g) {
  if (d == 1) {
    const int c = std::countr_zero(state);
    return g.Degree(nodes[info.position_of[c]]);
  }
  assert(d == 2);
  const int c1 = std::countr_zero(state);
  const int c2 = std::countr_zero(static_cast<uint16_t>(state & (state - 1)));
  const uint64_t du = g.Degree(nodes[info.position_of[c1]]);
  const uint64_t dv = g.Degree(nodes[info.position_of[c2]]);
  return du + dv - 2;
}

uint64_t NominalDegree(uint64_t deg, bool nb) {
  if (!nb) return deg;
  return deg > 1 ? deg - 1 : 1;
}

}  // namespace

CssTable::CssTable(int k, int d) : k_(k), d_(d) {
  assert(d >= 1 && d <= 2 && d < k);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  const int l = k - d + 1;
  entries_.resize(catalog.NumTypes());
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    const auto sequences = CorrespondingSequences(catalog.Get(id), d);
    // Group sequences by sorted interior-state tuple; the expanded-chain
    // weight is a product, so order within the interior is irrelevant.
    std::map<std::array<uint16_t, 4>, uint32_t> groups;
    for (const StateSequence& seq : sequences) {
      std::array<uint16_t, 4> key = {};
      for (int t = 1; t + 1 < l; ++t) key[t - 1] = seq[t];
      // Insertion sort over the <= 4 interior entries. (std::sort on the
      // dynamic prefix trips GCC's -O3 value-range analysis into
      // -Warray-bounds false positives; this is just as clear.)
      const int interior = std::max(0, l - 2);
      for (int i = 1; i < interior; ++i) {
        const uint16_t x = key[i];
        int j = i;
        while (j > 0 && key[j - 1] > x) {
          key[j] = key[j - 1];
          --j;
        }
        key[j] = x;
      }
      groups[key]++;
    }
    for (const auto& [key, count] : groups) {
      CssEntry entry;
      entry.interior = key;
      entry.num_interior = static_cast<uint8_t>(std::max(0, l - 2));
      entry.count = count;
      entries_[id].push_back(entry);
    }
  }
}

template <class G>
double CssTable::Eval(const MaskInfo& info, std::span<const VertexId> nodes,
                      const G& g, bool nb) const {
  assert(info.type >= 0);
  double total = 0.0;
  for (const CssEntry& entry : entries_[info.type]) {
    double denom = 1.0;
    for (int t = 0; t < entry.num_interior; ++t) {
      denom *= static_cast<double>(NominalDegree(
          MappedStateDegree(entry.interior[t], d_, info, nodes, g), nb));
    }
    total += static_cast<double>(entry.count) / denom;
  }
  return total;
}

// Closed policy family (graph/access.h + graph/sharded_access.h): full
// access, crawl access, sharded access.
template double CssTable::Eval<Graph>(const MaskInfo&,
                                      std::span<const VertexId>,
                                      const Graph&, bool) const;
template double CssTable::Eval<CrawlAccess>(const MaskInfo&,
                                            std::span<const VertexId>,
                                            const CrawlAccess&, bool) const;
template double CssTable::Eval<ShardedAccess>(const MaskInfo&,
                                              std::span<const VertexId>,
                                              const ShardedAccess&,
                                              bool) const;

const CssTable& CssTable::For(int k, int d) {
  // k in [3, kMaxGraphletSize], d in {1, 2}.
  if (k < 3 || k > kMaxGraphletSize || (d != 1 && d != 2)) {
    throw std::invalid_argument("CssTable::For: bad (k, d)");
  }
  static std::once_flag flags[kMaxGraphletSize + 1][3];
  static std::unique_ptr<CssTable> tables[kMaxGraphletSize + 1][3];
  std::call_once(flags[k][d], [k, d] {
    tables[k][d] = std::unique_ptr<CssTable>(new CssTable(k, d));
  });
  return *tables[k][d];
}

double CssWeightDirect(
    int k, int d, const MaskInfo& info, std::span<const VertexId> nodes,
    const std::function<uint64_t(std::span<const VertexId>)>& state_degree,
    bool nb) {
  assert(info.type >= 0 && d >= 1 && d < k);
  const Graphlet& g = GraphletCatalog::ForSize(k).Get(info.type);
  const auto sequences = CorrespondingSequences(g, d);
  const int l = k - d + 1;
  double total = 0.0;
  std::vector<VertexId> state_nodes;
  for (const StateSequence& seq : sequences) {
    double denom = 1.0;
    for (int t = 1; t + 1 < l; ++t) {
      state_nodes.clear();
      for (int c = 0; c < k; ++c) {
        if ((seq[t] >> c) & 1u) {
          state_nodes.push_back(nodes[info.position_of[c]]);
        }
      }
      std::sort(state_nodes.begin(), state_nodes.end());
      uint64_t deg = state_degree(state_nodes);
      if (nb && deg > 1) deg -= 1;
      if (deg == 0) deg = 1;
      denom *= static_cast<double>(deg);
    }
    total += 1.0 / denom;
  }
  return total;
}

}  // namespace grw
