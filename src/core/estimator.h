// The paper's estimator (Algorithm 1) — the core public API of this
// library.
//
// GraphletEstimator runs a random walk on G(d), turns every transition
// into a candidate k-node sample from the last l = k-d+1 states, and
// accumulates the re-weighted indicator of each graphlet type:
//
//   base       weight = prod(interior state degrees) / alpha^k_i
//                       (the 1 / (alpha^k_i * ~pi_e(X)) of Eq. 4/5),
//   CSS        weight = 1 / ~p(X)   (Section 4.1, Eq. 7/8),
//   NB         nominal degrees d' = max(d-1, 1) substituted throughout
//                       (Section 4.2),
//
// yielding asymptotically unbiased concentration estimates
// c^k_i = W_i / sum_j W_j, and count estimates via 2|R(d)| (Eq. 4) when
// |R(d)| is computable (closed forms for d <= 2).
//
// Method naming matches the paper: config {d=1} is SRW1, {d=2,css=true}
// is SRW2CSS, {d=1,css=true,nb=true} is SRW1CSSNB, and {d=k-1} is PSRW.
//
// The whole stack is templated on the graph access policy (graph/access.h)
// with static dispatch: GraphletEstimatorT<Graph> (aliased as
// GraphletEstimator) is the unchanged full-access estimator — bit-identical
// results, no overhead — while GraphletEstimatorT<CrawlAccess> reads every
// neighbor list, edge probe and degree through the crawl cache/accounting
// layer and stops early once the access's distinct-query budget is
// exhausted (the budget check compiles away entirely for full access).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/css.h"
#include "core/sample_window.h"
#include "graph/access.h"
#include "graph/graph.h"
#include "graphlet/classifier.h"
#include "util/rng.h"
#include "walk/subgraph_walk.h"
#include "walk/walker.h"

namespace grw {

/// Configuration of one estimator instance.
struct EstimatorConfig {
  /// Graphlet size k, 3 <= k <= kMaxGraphletSize.
  int k = 4;
  /// Walk dimension d, 1 <= d < k. Smaller d is faster and (the paper's
  /// central finding) usually more accurate; d = k-1 reproduces PSRW.
  int d = 2;
  /// Corresponding state sampling (Section 4.1).
  bool css = false;
  /// Non-backtracking walk (Section 4.2).
  bool nb = false;
  /// Transitions discarded after Reset() before accumulation begins.
  /// The paper uses none (Algorithm 1); exposed for experimentation.
  uint64_t burn_in = 0;

  /// Paper-style method name, e.g. "SRW2CSS", "SRW1CSSNB".
  std::string Name() const;
};

/// Accumulated estimates of one chain — or, after MergeInto, of several
/// chains combined (the raw accumulators are additive across independent
/// chains, so merged results behave exactly like one longer chain).
struct EstimateResult {
  /// c^k_i per catalog id; sums to 1 when any valid sample was seen.
  std::vector<double> concentrations;
  /// Raw accumulators W_i = sum of per-sample weights, per catalog id.
  std::vector<double> weights;
  /// Number of valid samples classified per type.
  std::vector<uint64_t> samples;
  /// Transitions performed (the paper's sample budget n); summed across
  /// chains after a merge.
  uint64_t steps = 0;
  /// Windows covering exactly k distinct vertices.
  uint64_t valid_samples = 0;
};

/// Recomputes `result.concentrations` from `result.weights`
/// (c_i = W_i / sum_j W_j; all zero when no weight was accumulated).
void FinalizeConcentrations(EstimateResult& result);

/// Accumulates `from` into `into`: weights, samples, steps and valid
/// counts add; concentrations are recomputed from the merged weights.
/// An empty `into` (default-constructed) adopts `from` wholesale.
/// Chains may differ in step counts; they must agree on the number of
/// graphlet types (throws std::invalid_argument otherwise).
void MergeInto(EstimateResult& into, const EstimateResult& from);

/// Merges a set of per-chain results into one combined result.
EstimateResult MergeResults(const std::vector<EstimateResult>& parts);

/// Count estimates C^k_i (Eq. 4) from accumulated weights:
/// C_i = W_i * 2|R(d)| / steps. Works on merged results too (weights and
/// steps are summed consistently). All zero when steps == 0.
std::vector<double> CountEstimatesFromResult(const EstimateResult& result,
                                             uint64_t relationship_edges);

/// Validates an estimator configuration — k within the catalog range,
/// 1 <= d < k — and returns it; throws std::invalid_argument otherwise.
/// Shared by the scalar and batched (core/batched_estimator.h) stacks.
EstimatorConfig ValidateEstimatorConfig(const EstimatorConfig& config);

/// The weight of one valid window sample (the scalar and batched
/// estimators share this verbatim — any divergence would break their
/// bit-equivalence contract): CSS table evaluation for css && d <= 2,
/// direct Algorithm-3 CSS with G(d) degree probes (through `scratch`) for
/// css && d >= 3, else the base interior-degree-product / alpha weight of
/// Theorem 2 (nominal degrees under NB). `css_table` may be null unless
/// css && d <= 2; `alpha` is the AlphaTable(k, d) column.
template <class G>
double WindowSampleWeight(const G& g, const EstimatorConfig& config, int l,
                          const CssTable* css_table,
                          const std::vector<int64_t>& alpha,
                          const SampleWindowT<G>& window,
                          const MaskInfo& info, GdScratch& scratch);

/// Random-walk graphlet concentration/count estimator over access policy
/// G. Defined in estimator.cpp; instantiated for Graph and CrawlAccess.
template <class G = Graph>
class GraphletEstimatorT {
 public:
  /// The graph must be connected (run LargestConnectedComponent first)
  /// and large enough for the chosen walk (> d nodes). The access object
  /// must outlive the estimator (for CrawlAccess the caller owns the
  /// cache — one per chain; the engine does this).
  /// Throws std::invalid_argument on bad configuration.
  GraphletEstimatorT(const G& g, const EstimatorConfig& config);

  /// Starts a fresh chain: re-seeds the RNG, picks a random initial state,
  /// walks l-1 transitions to fill the window (Algorithm 1 line 3) plus
  /// config.burn_in discarded transitions, and zeroes all accumulators.
  /// Never budget-gated: a crawl needs at least the seeding transitions.
  void Reset(uint64_t seed);

  /// Locality hint for sharded storage: subsequent Reset()s anchor the
  /// walk's initial state at a node drawn from [lo, hi) instead of the
  /// whole node range (StateWalker::ResetInRange). Changes only the
  /// initial distribution — still asymptotically unbiased, but not
  /// bit-identical to an unhinted run, so the engine keeps it opt-in.
  /// Requires lo < hi <= NumNodes(); call before Reset.
  void SetStartRange(VertexId lo, VertexId hi);

  /// Advances the chain up to `steps` transitions, accumulating one
  /// candidate sample per transition. With a crawl access policy the loop
  /// returns early once the access reports its distinct-query budget
  /// exhausted; with full access that check does not even compile in.
  void Run(uint64_t steps);

  /// Current estimates. Cheap; can be called repeatedly mid-run (used by
  /// the convergence experiments, paper Figure 6).
  EstimateResult Result() const;

  /// Count estimates C^k_i (Eq. 4) using the closed-form |R(d)|;
  /// requires d <= 2 and full access (|R(d)| aggregates degrees of the
  /// whole graph — a crawler cannot know it). For d >= 3 or crawl access
  /// pass a precomputed |R(d)|.
  std::vector<double> CountEstimates() const;
  std::vector<double> CountEstimates(uint64_t relationship_edges) const;

  const EstimatorConfig& config() const { return config_; }
  int NumTypes() const { return num_types_; }
  uint64_t Steps() const { return steps_; }

  /// Convenience: one-shot estimate with a fresh chain.
  static EstimateResult Estimate(const G& g, const EstimatorConfig& config,
                                 uint64_t steps, uint64_t seed);

 private:
  void Accumulate();
  double SampleWeight(const MaskInfo& info) const;

  const G* g_;
  EstimatorConfig config_;
  int l_;
  int num_types_;
  const GraphletClassifier* classifier_;
  std::vector<int64_t> alpha_;
  const CssTable* css_table_ = nullptr;  // only when css && d <= 2
  std::unique_ptr<StateWalker> walker_;
  SampleWindowT<G> window_;
  Rng rng_;
  // Start-range hint (SetStartRange); lo == hi means "none" (whole graph).
  VertexId start_lo_ = 0;
  VertexId start_hi_ = 0;
  // Reused by the CSS d >= 3 degree probes (SampleWeight is const but the
  // scratch is pure workspace — no observable state).
  mutable GdScratch gd_scratch_;

  std::vector<double> weights_;
  std::vector<uint64_t> samples_;
  uint64_t steps_ = 0;
  uint64_t valid_samples_ = 0;
};

/// The full-access estimator every pre-policy call site uses.
using GraphletEstimator = GraphletEstimatorT<Graph>;

}  // namespace grw
