#include "core/estimator.h"

#include <cassert>
#include <stdexcept>
#include <type_traits>

#include "core/alpha.h"
#include "core/rsize.h"
#include "graph/access.h"
#include "graph/sharded_access.h"
#include "walk/edge_walk.h"
#include "walk/node_walk.h"
#include "walk/subgraph_walk.h"

namespace grw {

std::string EstimatorConfig::Name() const {
  std::string name = "SRW" + std::to_string(d);
  if (css) name += "CSS";
  if (nb) name += "NB";
  return name;
}

namespace {

template <class G>
std::unique_ptr<StateWalker> MakeWalker(const G& g, int d, bool nb) {
  if (d == 1) return std::make_unique<NodeWalkT<G>>(g, nb);
  if (d == 2) return std::make_unique<EdgeWalkT<G>>(g, nb);
  return std::make_unique<SubgraphWalkT<G>>(g, d, nb);
}

}  // namespace

// Validated before any member initializer touches the k-indexed
// singletons (catalog, classifier, CSS tables).
EstimatorConfig ValidateEstimatorConfig(const EstimatorConfig& config) {
  if (config.k < 3 || config.k > kMaxGraphletSize) {
    throw std::invalid_argument("GraphletEstimator: k out of range");
  }
  if (config.d < 1 || config.d >= config.k) {
    throw std::invalid_argument("GraphletEstimator: need 1 <= d < k");
  }
  return config;
}

template <class G>
double WindowSampleWeight(const G& g, const EstimatorConfig& config, int l,
                          const CssTable* css_table,
                          const std::vector<int64_t>& alpha,
                          const SampleWindowT<G>& window,
                          const MaskInfo& info, GdScratch& scratch) {
  if (css_table != nullptr) {
    // CSS, d <= 2: compiled interior-coefficient tables.
    return 1.0 / css_table->Eval(info, window.UnionNodes(), g, config.nb);
  }
  if (config.css) {
    // CSS, d >= 3: direct Algorithm-3 evaluation with per-state G(d)
    // degree probes (expensive — the paper's "SRW3CSS" caveat).
    const auto probe = [&g, &scratch](std::span<const VertexId> state) {
      return SubgraphStateDegree(g, state, scratch);
    };
    return 1.0 / CssWeightDirect(config.k, config.d, info,
                                 window.UnionNodes(), probe, config.nb);
  }
  // Base estimator: 1 / (alpha^k_i * ~pi_e(X)) with
  // ~pi_e = prod over interior states of 1/degree (Theorem 2; nominal
  // degrees under NB, Section 4.2).
  const int64_t a = alpha[info.type];
  assert(a > 0 && "observed a graphlet the walk cannot produce");
  double interior_product = 1.0;
  for (int t = 1; t + 1 < l; ++t) {
    uint64_t deg = window.State(t).degree;
    assert(deg > 0 && "interior state degree not recorded");
    if (config.nb && deg > 1) deg -= 1;
    interior_product *= static_cast<double>(deg);
  }
  return interior_product / static_cast<double>(a);
}

template double WindowSampleWeight<Graph>(
    const Graph&, const EstimatorConfig&, int, const CssTable*,
    const std::vector<int64_t>&, const SampleWindowT<Graph>&,
    const MaskInfo&, GdScratch&);
template double WindowSampleWeight<CrawlAccess>(
    const CrawlAccess&, const EstimatorConfig&, int, const CssTable*,
    const std::vector<int64_t>&, const SampleWindowT<CrawlAccess>&,
    const MaskInfo&, GdScratch&);
template double WindowSampleWeight<ShardedAccess>(
    const ShardedAccess&, const EstimatorConfig&, int, const CssTable*,
    const std::vector<int64_t>&, const SampleWindowT<ShardedAccess>&,
    const MaskInfo&, GdScratch&);

template <class G>
GraphletEstimatorT<G>::GraphletEstimatorT(const G& g,
                                          const EstimatorConfig& config)
    : g_(&g),
      config_(ValidateEstimatorConfig(config)),
      l_(config.k - config.d + 1),
      num_types_(GraphletCatalog::ForSize(config.k).NumTypes()),
      classifier_(&GraphletClassifier::ForSize(config.k)),
      alpha_(AlphaTable(config.k, config.d)),
      walker_(MakeWalker(g, config.d, config.nb)),
      window_(g, config.k, l_) {
  weights_.assign(num_types_, 0.0);
  samples_.assign(num_types_, 0);
  if (config.css && config.d <= 2) {
    css_table_ = &CssTable::For(config.k, config.d);
  }
}

template <class G>
void GraphletEstimatorT<G>::SetStartRange(VertexId lo, VertexId hi) {
  if (lo >= hi || hi > g_->NumNodes()) {
    throw std::invalid_argument("SetStartRange: need lo < hi <= NumNodes()");
  }
  start_lo_ = lo;
  start_hi_ = hi;
}

template <class G>
void GraphletEstimatorT<G>::Reset(uint64_t seed) {
  rng_.Seed(seed);
  std::fill(weights_.begin(), weights_.end(), 0.0);
  std::fill(samples_.begin(), samples_.end(), 0);
  steps_ = 0;
  valid_samples_ = 0;

  if (start_lo_ < start_hi_) {
    walker_->ResetInRange(rng_, start_lo_, start_hi_);
  } else {
    walker_->Reset(rng_);
  }
  window_.Clear();
  window_.Push(walker_->Nodes(), 0);
  // Fill the window: l states need l-1 transitions (Algorithm 1 line 3).
  for (int i = 1; i < l_; ++i) {
    window_.SetNewestDegree(walker_->StateDegree());
    walker_->Step(rng_);
    window_.Push(walker_->Nodes(), 0);
  }
  for (uint64_t i = 0; i < config_.burn_in; ++i) {
    window_.SetNewestDegree(walker_->StateDegree());
    walker_->Step(rng_);
    window_.Push(walker_->Nodes(), 0);
  }
}

template <class G>
void GraphletEstimatorT<G>::Run(uint64_t steps) {
  for (uint64_t i = 0; i < steps; ++i) {
    // Crawl budget: stop before the next transition once the access has
    // spent its distinct-query allowance. Static dispatch — for Graph
    // this branch does not exist in the compiled loop.
    if constexpr (kAccessHasQueryBudget<G>) {
      if (g_->BudgetExhausted()) return;
    }
    // A state's G(d)-degree becomes known before we leave it; snapshot it,
    // transition, then evaluate the new window.
    window_.SetNewestDegree(walker_->StateDegree());
    walker_->Step(rng_);
    window_.Push(walker_->Nodes(), 0);
    ++steps_;
    Accumulate();
  }
}

template <class G>
void GraphletEstimatorT<G>::Accumulate() {
  if (!window_.Valid()) return;  // fewer than k distinct nodes: invalid
  const uint32_t mask = window_.Mask();
  const MaskInfo& info = classifier_->Info(mask);
  assert(info.type >= 0 && "window union must induce a connected subgraph");
  const double w = SampleWeight(info);
  weights_[info.type] += w;
  samples_[info.type]++;
  ++valid_samples_;
}

template <class G>
double GraphletEstimatorT<G>::SampleWeight(const MaskInfo& info) const {
  return WindowSampleWeight(*g_, config_, l_, css_table_, alpha_, window_,
                            info, gd_scratch_);
}

template <class G>
EstimateResult GraphletEstimatorT<G>::Result() const {
  EstimateResult result;
  result.weights = weights_;
  result.samples = samples_;
  result.steps = steps_;
  result.valid_samples = valid_samples_;
  FinalizeConcentrations(result);
  return result;
}

void FinalizeConcentrations(EstimateResult& result) {
  result.concentrations.assign(result.weights.size(), 0.0);
  double total = 0.0;
  for (double w : result.weights) total += w;
  if (total > 0.0) {
    for (size_t i = 0; i < result.weights.size(); ++i) {
      result.concentrations[i] = result.weights[i] / total;
    }
  }
}

void MergeInto(EstimateResult& into, const EstimateResult& from) {
  if (into.weights.empty() && into.steps == 0) {
    into = from;
    FinalizeConcentrations(into);
    return;
  }
  if (into.weights.size() != from.weights.size() ||
      into.samples.size() != from.samples.size()) {
    throw std::invalid_argument(
        "MergeInto: results disagree on the number of graphlet types");
  }
  for (size_t i = 0; i < into.weights.size(); ++i) {
    into.weights[i] += from.weights[i];
    into.samples[i] += from.samples[i];
  }
  into.steps += from.steps;
  into.valid_samples += from.valid_samples;
  FinalizeConcentrations(into);
}

EstimateResult MergeResults(const std::vector<EstimateResult>& parts) {
  EstimateResult merged;
  for (const EstimateResult& part : parts) MergeInto(merged, part);
  return merged;
}

std::vector<double> CountEstimatesFromResult(const EstimateResult& result,
                                             uint64_t relationship_edges) {
  std::vector<double> counts(result.weights.size(), 0.0);
  if (result.steps == 0) return counts;
  const double scale = 2.0 * static_cast<double>(relationship_edges) /
                       static_cast<double>(result.steps);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = result.weights[i] * scale;
  }
  return counts;
}

template <class G>
std::vector<double> GraphletEstimatorT<G>::CountEstimates() const {
  if constexpr (!std::is_same_v<G, Graph>) {
    throw std::logic_error(
        "CountEstimates(): closed-form |R(d)| aggregates full-graph "
        "degrees — unavailable through a crawl; pass it explicitly");
  } else {
    if (config_.d > 2) {
      throw std::logic_error(
          "CountEstimates(): no closed-form |R(d)| for d >= 3; pass it "
          "explicitly");
    }
    return CountEstimates(RelationshipEdgeCount(*g_, config_.d));
  }
}

template <class G>
std::vector<double> GraphletEstimatorT<G>::CountEstimates(
    uint64_t relationship_edges) const {
  EstimateResult snapshot;
  snapshot.weights = weights_;
  snapshot.steps = steps_;
  return CountEstimatesFromResult(snapshot, relationship_edges);
}

template <class G>
EstimateResult GraphletEstimatorT<G>::Estimate(const G& g,
                                               const EstimatorConfig& config,
                                               uint64_t steps,
                                               uint64_t seed) {
  GraphletEstimatorT<G> estimator(g, config);
  estimator.Reset(seed);
  estimator.Run(steps);
  return estimator.Result();
}

// Closed policy family (graph/access.h + graph/sharded_access.h): full
// access, crawl access, sharded access.
template class GraphletEstimatorT<Graph>;
template class GraphletEstimatorT<CrawlAccess>;
template class GraphletEstimatorT<ShardedAccess>;

}  // namespace grw
