// State corresponding coefficients alpha^k_i (paper Definition 3 /
// Algorithm 2) and the underlying corresponding-state sequence enumeration.
//
// For a k-node graphlet g and walk dimension d, a *corresponding state
// sequence* is an ordered tuple of l = k-d+1 connected induced d-node
// subgraphs of g that (a) forms a walk in the relationship graph of g
// (consecutive states adjacent: an edge of g for d = 1, sharing exactly
// d-1 nodes for d >= 2) and (b) covers all k nodes — equivalently, each
// transition introduces exactly one new node. alpha^k_i is the number of
// such sequences; it is the replication factor of each subgraph isomorphic
// to g^k_i in the expanded Markov chain's state space, and divides the
// estimator's re-weighting term (Eq. 4).
//
// The same enumeration drives the CSS sampling probability (core/css.h):
// CSS groups the sequences by their interior states instead of merely
// counting them.

#pragma once

#include <cstdint>
#include <vector>

#include "graphlet/catalog.h"

namespace grw {

/// One corresponding state sequence: states[t] is the vertex set of the
/// t-th d-node state, as a bitmask over the graphlet's canonical labels.
using StateSequence = std::vector<uint16_t>;

/// Enumerates all corresponding state sequences of graphlet g under a walk
/// on G(d). Requires 1 <= d < g.k.
std::vector<StateSequence> CorrespondingSequences(const Graphlet& g, int d);

/// alpha^k_i = |CorrespondingSequences(g, d)|. Zero means the walk on G(d)
/// can never produce a sample of this graphlet (e.g. the 3-star under
/// SRW1, Table 2).
int64_t Alpha(const Graphlet& g, int d);

/// Alpha for every graphlet of size k, indexed by catalog id.
std::vector<int64_t> AlphaTable(int k, int d);

}  // namespace grw
