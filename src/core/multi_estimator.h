// Joint estimation of several graphlet sizes from ONE random walk.
//
// The paper's related work (Section 1.1) describes MSS — Wang et al.'s
// extension of PSRW that estimates (k-1, k, k+1)-node statistics jointly.
// In this framework the same capability falls out naturally: a single walk
// on G(d) feeds a window of length l_k = k - d + 1 for every requested k,
// so one crawl pays for all sizes at once. Each size's estimator is the
// standard one (Algorithm 1 with its own alpha / CSS weights); samples
// across sizes share the walk and are therefore correlated, but each
// size's estimate retains its own asymptotic unbiasedness.
//
// This is the natural API for crawl-budget-limited studies: estimate
// 3-, 4- and 5-node concentrations from one pass with d = 2.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/estimator.h"

namespace grw {

/// One walk, many graphlet sizes.
class MultiSizeEstimator {
 public:
  /// `sizes` must all satisfy d < k <= kMaxGraphletSize. `css`/`nb`
  /// apply to every size (CSS is skipped per-size where d > 2 tables are
  /// unavailable... d <= 2 recommended).
  MultiSizeEstimator(const Graph& g, int d, std::vector<int> sizes,
                     bool css = false, bool nb = false);

  /// Starts a fresh shared chain.
  void Reset(uint64_t seed);

  /// Advances the shared walk `steps` transitions; every size extracts
  /// one candidate sample per transition.
  void Run(uint64_t steps);

  /// Result for one of the registered sizes.
  EstimateResult Result(int k) const;

  const std::vector<int>& Sizes() const { return sizes_; }
  uint64_t Steps() const { return steps_; }

 private:
  struct PerSize {
    int k;
    int l;
    const GraphletClassifier* classifier;
    std::vector<int64_t> alpha;
    const CssTable* css_table = nullptr;
    std::unique_ptr<SampleWindow> window;
    std::vector<double> weights;
    std::vector<uint64_t> samples;
    uint64_t valid = 0;
  };

  void Accumulate(PerSize& size) const;

  const Graph* g_;
  int d_;
  bool css_;
  bool nb_;
  std::vector<int> sizes_;
  std::unique_ptr<StateWalker> walker_;
  std::vector<PerSize> per_size_;
  Rng rng_;
  uint64_t steps_ = 0;
};

}  // namespace grw
