// |R(d)|: the number of edges of the subgraph relationship graph G(d).
//
// The concentration estimator never needs |R(d)| (it cancels, paper
// Section 3.3 Remarks), but the *count* estimator of Eq. (4) does:
//   C^k_i = (2|R(d)| / n) * sum_s h^k_i(X_s) / (alpha^k_i * ~pi_e(X_s)).
// Closed forms exist for d = 1 (|E|) and d = 2 (sum_v C(d_v, 2), one pass
// over degrees — the paper's "single pass of graph data"). For d >= 3 we
// enumerate H(d) and sum state degrees; that is exponential-ish and only
// used on small graphs in tests.

#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace grw {

/// |R(d)| for the given graph. d >= 3 is expensive (full H(d) enumeration).
uint64_t RelationshipEdgeCount(const Graph& g, int d);

}  // namespace grw
