// Theorem 3 machinery: the Chernoff–Hoeffding sample-size bound for the
// framework's estimators.
//
//   n >= xi * (W / Lambda) * (tau / eps^2) * log(||phi||_pie / delta),
//
// where W = max 1/pi_e(X) over expanded-chain states, Lambda =
// min{alpha^k_i C^k_i, alpha_min C^k}, and tau is the walk's mixing time
// tau(1/8). This module computes each ingredient exactly on analysis-size
// graphs:
//
//  * the spectral gap of the lazy simple random walk on G (dense power
//    iteration; the mixing-time bound tau(eps) <= log(1/(eps*pi_min)) /
//    gap follows from standard reversible-chain theory),
//  * W from the maximum degree of G(d) (interior states maximize
//    1/pi_e when their degrees do),
//  * Lambda from alpha (Algorithm 2) and exact counts.
//
// The theorem predicts *relative* difficulty: rare graphlets with small
// alpha*C need more steps, and walks that lift the weighted concentration
// (small d) need fewer — the quantitative story behind Figure 5. The
// bench `bench_theory_bound` compares these predictions with measured
// NRMSE.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Spectral gap 1 - lambda_2 of the *lazy* simple random walk on g
/// (P_lazy = (I + P)/2, guaranteeing a real spectrum in [0, 1]).
/// Dense O(n^2)-memory computation — analysis-size graphs only
/// (n <= ~4000). `iterations` bounds the power-iteration steps.
double LazyWalkSpectralGap(const Graph& g, int iterations = 2000);

/// Upper bound on the mixing time tau(eps) of the lazy walk from the
/// spectral gap: ceil(log(1 / (eps * pi_min)) / gap).
double MixingTimeUpperBound(const Graph& g, double eps = 0.125,
                            int iterations = 2000);

/// Ingredients of the Theorem 3 bound for one (k, d) configuration.
struct SampleSizeBound {
  /// W = max over expanded states of 1 / ~pi_e (relative scale; the
  /// 2|R(d)| factor cancels against Lambda's concentration form).
  double w = 0.0;
  /// Lambda_i = min{alpha_i c_i, alpha_min * 1} in concentration form,
  /// per graphlet type (catalog ids). Zero when alpha_i = 0 (the type is
  /// unobservable and the bound is vacuous).
  std::vector<double> lambda;
  /// Mixing-time upper bound of the underlying walk (lazy-walk proxy).
  double tau = 0.0;
  /// Relative required steps per type: W * tau / (lambda_i * eps^2) —
  /// the Theorem 3 scaling with xi * log(.../delta) stripped, for
  /// comparing difficulty across types and configurations.
  std::vector<double> relative_steps;
};

/// Evaluates the bound's ingredients. `concentrations` are the exact (or
/// estimated) c^k_i per catalog id. Requires d <= 2 for closed-form state
/// degrees (the supported analysis path).
SampleSizeBound ComputeSampleSizeBound(const Graph& g, int k, int d,
                                       const std::vector<double>& concentrations,
                                       double eps = 0.1);

}  // namespace grw
