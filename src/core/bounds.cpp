#include "core/bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/alpha.h"
#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {

double LazyWalkSpectralGap(const Graph& g, int iterations) {
  const VertexId n = g.NumNodes();
  if (n < 2) return 1.0;
  if (n > 5000) {
    throw std::invalid_argument(
        "LazyWalkSpectralGap: analysis-size graphs only (n <= 5000)");
  }
  const double two_m = 2.0 * static_cast<double>(g.NumEdges());

  // Power iteration on P_lazy, deflating the top eigenvector, which for
  // the reversible lazy walk is known exactly: phi_1(v) ∝ sqrt(pi(v)),
  // in the symmetric similarity transform S = D^{1/2} P D^{-1/2}.
  // We iterate x <- S_lazy x with S = D^{-1/2} A D^{-1/2}:
  //   (S x)(v) = sum_{w ~ v} x(w) / sqrt(d_v d_w).
  std::vector<double> sqrt_deg(n);
  std::vector<double> phi1(n);
  for (VertexId v = 0; v < n; ++v) {
    sqrt_deg[v] = std::sqrt(static_cast<double>(g.Degree(v)));
    phi1[v] = sqrt_deg[v] / std::sqrt(two_m);  // unit norm
  }

  Rng rng(0x9a9);
  std::vector<double> x(n);
  std::vector<double> next(n);
  for (VertexId v = 0; v < n; ++v) x[v] = rng.UniformReal() - 0.5;

  auto deflate_and_normalize = [&](std::vector<double>& vec) {
    double dot = 0.0;
    for (VertexId v = 0; v < n; ++v) dot += vec[v] * phi1[v];
    double norm = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      vec[v] -= dot * phi1[v];
      norm += vec[v] * vec[v];
    }
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (VertexId v = 0; v < n; ++v) vec[v] /= norm;
    }
    return norm;
  };
  deflate_and_normalize(x);

  double lambda2 = 0.0;
  for (int it = 0; it < iterations; ++it) {
    for (VertexId v = 0; v < n; ++v) {
      double acc = 0.0;
      for (VertexId w : g.Neighbors(v)) {
        acc += x[w] / (sqrt_deg[v] * sqrt_deg[w]);
      }
      next[v] = 0.5 * (x[v] + acc);  // lazy: (I + S)/2
    }
    std::swap(x, next);
    const double norm = deflate_and_normalize(x);
    if (it > 16 && std::abs(norm - lambda2) < 1e-12) {
      lambda2 = norm;
      break;
    }
    lambda2 = norm;
  }
  return std::clamp(1.0 - lambda2, 1e-12, 1.0);
}

double MixingTimeUpperBound(const Graph& g, double eps, int iterations) {
  const double gap = LazyWalkSpectralGap(g, iterations);
  double min_deg = g.Degree(0);
  for (VertexId v = 1; v < g.NumNodes(); ++v) {
    min_deg = std::min<double>(min_deg, g.Degree(v));
  }
  const double pi_min = min_deg / (2.0 * static_cast<double>(g.NumEdges()));
  return std::ceil(std::log(1.0 / (eps * pi_min)) / gap);
}

SampleSizeBound ComputeSampleSizeBound(
    const Graph& g, int k, int d,
    const std::vector<double>& concentrations, double eps) {
  if (d < 1 || d > 2 || d >= k) {
    throw std::invalid_argument("ComputeSampleSizeBound: need d in {1,2}");
  }
  SampleSizeBound bound;
  const int l = k - d + 1;

  // W: a state's weight 1 / ~pi_e is the product of its l-2 interior
  // degrees; it is maximized by the maximum G(d) state degree.
  double max_state_degree = 1.0;
  if (d == 1) {
    max_state_degree = g.MaxDegree();
  } else {
    for (VertexId u = 0; u < g.NumNodes(); ++u) {
      for (VertexId v : g.Neighbors(u)) {
        if (v > u) {
          max_state_degree = std::max(
              max_state_degree,
              static_cast<double>(g.Degree(u)) + g.Degree(v) - 2);
        }
      }
    }
  }
  bound.w = std::pow(max_state_degree, std::max(0, l - 2));

  bound.tau = MixingTimeUpperBound(g);

  const auto alpha = AlphaTable(k, d);
  double alpha_min = 0.0;
  for (int64_t a : alpha) {
    if (a > 0) {
      alpha_min = alpha_min == 0.0
                      ? static_cast<double>(a)
                      : std::min(alpha_min, static_cast<double>(a));
    }
  }
  bound.lambda.resize(alpha.size());
  bound.relative_steps.resize(alpha.size());
  for (size_t i = 0; i < alpha.size(); ++i) {
    if (alpha[i] == 0 || concentrations[i] <= 0.0) {
      bound.lambda[i] = 0.0;
      bound.relative_steps[i] =
          std::numeric_limits<double>::infinity();
      continue;
    }
    // Lambda in concentration form: min{alpha_i c_i, alpha_min * 1}
    // (C^k normalizes to 1; the absolute scale cancels in comparisons).
    bound.lambda[i] = std::min(
        static_cast<double>(alpha[i]) * concentrations[i], alpha_min);
    bound.relative_steps[i] =
        bound.w * bound.tau / (bound.lambda[i] * eps * eps);
  }
  return bound;
}

}  // namespace grw
