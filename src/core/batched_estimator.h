// W-lane batched counterpart of GraphletEstimatorT (core/estimator.h).
//
// Each lane is one full Algorithm-1 chain: its own RNG stream, its own
// sliding sample window, its own weight/sample accumulators. The lanes
// advance in lockstep through BatchedWalkT (walk/batched_walk.h), which
// is where the throughput comes from — cross-lane prefetch and batched
// signature rejection amortize memory latency over W chains.
//
// Equivalence contract (tests/batched_walk_test.cpp): lane j seeded
// DeriveSeed(base_seed, first_stream + j) produces, bit for bit, the same
// EstimateResult as a scalar GraphletEstimatorT chain Reset with that
// seed and Run for the same number of steps — same RNG draw order
// (delegated to BatchedWalkT's lane contract), same window contents, same
// weight arithmetic (the shared WindowSampleWeight), same accumulation
// order within the lane. The engine exploits this to switch batched
// kernels on behind EngineOptions::batch without moving a single
// estimate.
//
// Crawl lanes (G = CrawlAccess) read through per-lane private access
// objects and check their own budget before every transition, exactly
// where the scalar Run loop checks it — so each lane stops on the same
// transition, with the same query accounting, as the scalar chain it
// replaces.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/estimator.h"
#include "walk/batched_walk.h"

namespace grw {

/// W independent estimator chains in lockstep over access policy G.
/// Defined in batched_estimator.cpp; instantiated for Graph and
/// CrawlAccess.
template <class G = Graph>
class BatchedEstimatorT {
 public:
  /// All lanes walk one shared access object (full-access engine).
  BatchedEstimatorT(const G& g, const EstimatorConfig& config, int lanes);

  /// Lane j reads through *lane_access[j] (crawl engine: one private
  /// crawler, with its own budget share, per lane).
  BatchedEstimatorT(std::span<const G* const> lane_access,
                    const EstimatorConfig& config);

  int lanes() const { return lanes_; }
  const EstimatorConfig& config() const { return config_; }
  int NumTypes() const { return num_types_; }

  /// Starts every lane afresh: lane j's RNG stream is
  /// DeriveSeed(base_seed, first_stream + j), mirroring the engine's
  /// chain seeding. Each lane then replays the scalar Reset exactly:
  /// random initial state, l-1 window-fill transitions, burn-in. Never
  /// budget-gated (a crawl needs at least the seeding transitions).
  void Reset(uint64_t base_seed, uint64_t first_stream);

  /// Advances every live lane up to `steps` transitions, accumulating one
  /// candidate sample per lane per transition. Crawl lanes whose budget
  /// is exhausted sit out the remaining rounds (the scalar chain would
  /// have returned at the same transition). Returns early once no lane
  /// is live.
  void Run(uint64_t steps);

  /// Lane `lane`'s accumulated estimates — bit-identical to the scalar
  /// chain with the same stream.
  EstimateResult Result(int lane) const;

  /// Transitions lane `lane` has accumulated (excludes Reset's window
  /// fill and burn-in, like the scalar Steps()).
  uint64_t LaneSteps(int lane) const { return steps_[lane]; }

  /// Whether lane `lane`'s access reports its query budget exhausted.
  /// Always false for budget-free access policies.
  bool LaneBudgetExhausted(int lane) const;

 private:
  const G& Access(int lane) const { return *access_[lane]; }
  void Accumulate(int lane);

  std::vector<const G*> access_;  // per lane (may all alias one object)
  EstimatorConfig config_;
  int l_;
  int lanes_;
  int num_types_;
  const GraphletClassifier* classifier_;
  std::vector<int64_t> alpha_;
  const CssTable* css_table_ = nullptr;  // only when css && d <= 2

  BatchedWalkT<G> walk_;
  std::vector<Rng> rng_;                   // per lane
  std::vector<SampleWindowT<G>> windows_;  // per lane
  std::vector<uint8_t> active_;            // Run's per-round work list

  std::vector<double> weights_;     // lanes * num_types
  std::vector<uint64_t> samples_;   // lanes * num_types
  std::vector<uint64_t> steps_;     // per lane
  std::vector<uint64_t> valid_;     // per lane
  mutable GdScratch scratch_;
};

/// The full-access batched estimator.
using BatchedEstimator = BatchedEstimatorT<Graph>;

}  // namespace grw
