#include "core/multi_estimator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/alpha.h"
#include "walk/edge_walk.h"
#include "walk/node_walk.h"
#include "walk/subgraph_walk.h"

namespace grw {

namespace {

std::unique_ptr<StateWalker> MakeWalker(const Graph& g, int d, bool nb) {
  if (d == 1) return std::make_unique<NodeWalk>(g, nb);
  if (d == 2) return std::make_unique<EdgeWalk>(g, nb);
  return std::make_unique<SubgraphWalk>(g, d, nb);
}

}  // namespace

MultiSizeEstimator::MultiSizeEstimator(const Graph& g, int d,
                                       std::vector<int> sizes, bool css,
                                       bool nb)
    : g_(&g), d_(d), css_(css), nb_(nb), sizes_(std::move(sizes)) {
  if (sizes_.empty()) {
    throw std::invalid_argument("MultiSizeEstimator: no sizes");
  }
  std::sort(sizes_.begin(), sizes_.end());
  sizes_.erase(std::unique(sizes_.begin(), sizes_.end()), sizes_.end());
  for (int k : sizes_) {
    if (k <= d || k > kMaxGraphletSize) {
      throw std::invalid_argument(
          "MultiSizeEstimator: every size must satisfy d < k <= max");
    }
    if (css && d > 2) {
      throw std::invalid_argument(
          "MultiSizeEstimator: CSS tables exist for d <= 2 only");
    }
  }
  walker_ = MakeWalker(g, d, nb);
  for (int k : sizes_) {
    PerSize size;
    size.k = k;
    size.l = k - d + 1;
    size.classifier = &GraphletClassifier::ForSize(k);
    size.alpha = AlphaTable(k, d);
    if (css) size.css_table = &CssTable::For(k, d);
    size.window = std::make_unique<SampleWindow>(g, k, size.l);
    size.weights.assign(GraphletCatalog::ForSize(k).NumTypes(), 0.0);
    size.samples.assign(size.weights.size(), 0);
    per_size_.push_back(std::move(size));
  }
}

void MultiSizeEstimator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  steps_ = 0;
  walker_->Reset(rng_);
  const int max_l = per_size_.back().l;  // sizes_ sorted ascending
  for (PerSize& size : per_size_) {
    size.window->Clear();
    std::fill(size.weights.begin(), size.weights.end(), 0.0);
    std::fill(size.samples.begin(), size.samples.end(), 0);
    size.valid = 0;
    size.window->Push(walker_->Nodes(), 0);
  }
  // Warm every window with max_l - 1 transitions (the longest window
  // dictates the shared warm-up; shorter windows are simply full
  // earlier).
  for (int i = 1; i < max_l; ++i) {
    const uint64_t degree = walker_->StateDegree();
    for (PerSize& size : per_size_) size.window->SetNewestDegree(degree);
    walker_->Step(rng_);
    for (PerSize& size : per_size_) size.window->Push(walker_->Nodes(), 0);
  }
}

void MultiSizeEstimator::Run(uint64_t steps) {
  for (uint64_t s = 0; s < steps; ++s) {
    const uint64_t degree = walker_->StateDegree();
    for (PerSize& size : per_size_) size.window->SetNewestDegree(degree);
    walker_->Step(rng_);
    for (PerSize& size : per_size_) {
      size.window->Push(walker_->Nodes(), 0);
      Accumulate(size);
    }
    ++steps_;
  }
}

void MultiSizeEstimator::Accumulate(PerSize& size) const {
  if (!size.window->Valid()) return;
  const uint32_t mask = size.window->Mask();
  const MaskInfo& info = size.classifier->Info(mask);
  assert(info.type >= 0);
  double w;
  if (size.css_table != nullptr) {
    w = 1.0 / size.css_table->Eval(info, size.window->UnionNodes(), *g_,
                                   nb_);
  } else {
    double interior = 1.0;
    for (int t = 1; t + 1 < size.l; ++t) {
      uint64_t deg = size.window->State(t).degree;
      if (nb_ && deg > 1) deg -= 1;
      interior *= static_cast<double>(deg);
    }
    w = interior / static_cast<double>(size.alpha[info.type]);
  }
  size.weights[info.type] += w;
  size.samples[info.type]++;
  size.valid++;
}

EstimateResult MultiSizeEstimator::Result(int k) const {
  for (const PerSize& size : per_size_) {
    if (size.k != k) continue;
    EstimateResult result;
    result.weights = size.weights;
    result.samples = size.samples;
    result.steps = steps_;
    result.valid_samples = size.valid;
    FinalizeConcentrations(result);
    return result;
  }
  throw std::invalid_argument("MultiSizeEstimator: size not registered");
}

}  // namespace grw
