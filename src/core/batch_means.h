// Monte-Carlo standard errors for the estimator via batch means.
//
// The SLLN guarantees convergence (Theorem 1) and Theorem 3 bounds the
// needed steps, but a practitioner crawling a live OSN has neither the
// ground truth nor the mixing time. The standard MCMC answer is the batch
// means method (Geyer): split the chain into B contiguous batches, form
// the concentration estimate within each batch, and use the across-batch
// spread of these (asymptotically independent) estimates as a standard
// error for the full-chain estimate.
//
// BatchedEstimator wraps GraphletEstimator, snapshotting the accumulators
// every `steps/batches` transitions; batch b's estimate uses only the
// weight accumulated inside the batch (differences of snapshots).

#pragma once

#include <cstdint>
#include <vector>

#include "core/estimator.h"

namespace grw {

/// Concentration estimates with batch-means standard errors.
struct BatchedEstimate {
  /// Full-chain concentration estimates per catalog id.
  std::vector<double> concentrations;
  /// Batch-means standard error per catalog id: the standard deviation
  /// of the per-batch concentration estimates divided by sqrt(B).
  std::vector<double> standard_errors;
  /// The per-batch concentration estimates, [batch][type].
  std::vector<std::vector<double>> batch_estimates;
  uint64_t steps = 0;
};

/// Runs one chain of `config` for `steps` transitions split into
/// `batches` equal batches and assembles batch-means error bars.
/// Requires batches >= 2 and steps >= batches.
BatchedEstimate EstimateWithErrorBars(const Graph& g,
                                      const EstimatorConfig& config,
                                      uint64_t steps, int batches,
                                      uint64_t seed);

}  // namespace grw
