// Monte-Carlo standard errors for the estimator via batch means.
//
// The SLLN guarantees convergence (Theorem 1) and Theorem 3 bounds the
// needed steps, but a practitioner crawling a live OSN has neither the
// ground truth nor the mixing time. The standard MCMC answer is the batch
// means method (Geyer): split the chain into B contiguous batches, form
// the concentration estimate within each batch, and use the across-batch
// spread of these (asymptotically independent) estimates as a standard
// error for the full-chain estimate.
//
// BatchedEstimator wraps GraphletEstimator, snapshotting the accumulators
// every `steps/batches` transitions; batch b's estimate uses only the
// weight accumulated inside the batch (differences of snapshots).

#pragma once

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/stats.h"

namespace grw {

/// Online batch-means accumulator: feed one concentration vector per
/// batch (a contiguous chain segment, or a whole independent chain — any
/// asymptotically independent replicate), read back standard errors of
/// the across-batch mean. This is the convergence monitor behind the
/// estimation engine's early stopping (engine/engine.h): the engine
/// treats every (chain, round) segment as a batch and stops when the
/// relative standard error of every non-negligible concentration is
/// below the target.
/// Within-batch concentration vector from cumulative weight snapshots:
/// batch_i = (now_i - prev_i) / sum_j (now_j - prev_j), all zero when no
/// weight accrued in the batch. `prev` entries beyond its length count
/// as zero (first batch), and `prev` is updated to `now`. This is THE
/// batching rule — shared by EstimateWithErrorBars and the engine's
/// round loop so the two cannot drift.
std::vector<double> BatchFromCumulativeWeights(
    const std::vector<double>& now, std::vector<double>& prev);

class BatchMeansAccumulator {
 public:
  /// Registers one batch. Every batch must have the same length
  /// (throws std::invalid_argument otherwise).
  void AddBatch(const std::vector<double>& concentrations);

  int NumBatches() const { return batches_; }
  size_t NumTypes() const { return stats_.size(); }

  /// Batch-means standard error per type: sample stddev of the per-batch
  /// values divided by sqrt(B). Zero until two batches were added.
  std::vector<double> StandardErrors() const;

  /// Largest relative standard error SE_i / c_i over types whose mean
  /// concentration is at least `min_concentration` (rarer types carry
  /// too little signal to gate on). Infinity until two batches; NaN when
  /// no type clears the floor.
  double MaxRelativeError(const std::vector<double>& concentrations,
                          double min_concentration) const;

 private:
  std::vector<RunningStat> stats_;  // per type, across batches
  int batches_ = 0;
};

/// Concentration estimates with batch-means standard errors.
struct BatchedEstimate {
  /// Full-chain concentration estimates per catalog id.
  std::vector<double> concentrations;
  /// Batch-means standard error per catalog id: the standard deviation
  /// of the per-batch concentration estimates divided by sqrt(B).
  std::vector<double> standard_errors;
  /// The per-batch concentration estimates, [batch][type].
  std::vector<std::vector<double>> batch_estimates;
  uint64_t steps = 0;
};

/// Runs one chain of `config` for `steps` transitions split into
/// `batches` equal batches and assembles batch-means error bars.
/// Requires batches >= 2 and steps >= batches.
BatchedEstimate EstimateWithErrorBars(const Graph& g,
                                      const EstimatorConfig& config,
                                      uint64_t steps, int batches,
                                      uint64_t seed);

}  // namespace grw
