// Mapping between this library's catalog ids and the paper's graphlet
// numbering (g^3_1..g^3_2, g^4_1..g^4_6 from Figure 2, and the 21 5-node
// IDs of Table 3).
//
// For k = 3, 4 the paper's order is fixed by Figure 2's named pictures,
// which our catalog reproduces by name. For k = 5 the pictures are not
// available in text form, but Table 3's (alpha under SRW1, alpha under
// SRW2) column pairs are pairwise distinct, so the assignment is recovered
// by computing alpha with Algorithm 2 for every catalog graphlet and
// matching the pairs. (Rows SRW3/SRW4 of the printed table are then
// *checked* rather than matched: the five SRW4 entries printed as 12
// contradict the paper's own Appendix B formula alpha = |S|(|S|-1) <= 20,
// and are reported as known errata by the Table 3 bench — see
// EXPERIMENTS.md.)

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grw {

/// paper_pos (0-based: paper id i corresponds to index i-1) -> catalog id,
/// for k in {3, 4, 5}.
const std::vector<int>& PaperOrder(int k);

/// Inverse of PaperOrder: catalog id -> 0-based paper position.
const std::vector<int>& PaperPositionOfCatalogId(int k);

/// Paper label for a 0-based paper position, e.g. "g31", "g46", "g5_17".
std::string PaperLabel(int k, int paper_pos);

/// The alpha^k_i / 2 values printed in paper Tables 2 and 3, indexed
/// [d-1][paper_pos]. k = 3 has rows d = 1..2, k = 4 rows d = 1..3,
/// k = 5 rows d = 1..4 (as printed, including the SRW4 errata).
const std::vector<std::vector<int64_t>>& PaperAlphaHalfTable(int k);

}  // namespace grw
