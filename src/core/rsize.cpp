#include "core/rsize.h"

#include <cassert>

#include "exact/esu.h"
#include "walk/subgraph_walk.h"

namespace grw {

uint64_t RelationshipEdgeCount(const Graph& g, int d) {
  assert(d >= 1);
  if (d == 1) return g.NumEdges();
  if (d == 2) {
    // deg_{G(2)}(e_uv) = d_u + d_v - 2; summing over edges double-counts
    // each R(2) edge, and the sum telescopes to sum_v C(d_v, 2).
    return g.WedgeCount();
  }
  // General case: sum of G(d) state degrees over all of H(d), halved.
  uint64_t degree_sum = 0;
  std::vector<VertexId> sorted;
  GdScratch scratch;  // reused across the whole enumeration
  ForEachConnectedSubgraph(g, d, [&](std::span<const VertexId> nodes) {
    sorted.assign(nodes.begin(), nodes.end());
    std::sort(sorted.begin(), sorted.end());
    degree_sum += SubgraphStateDegree(g, sorted, scratch);
  });
  return degree_sum / 2;
}

}  // namespace grw
