// Corresponding state sampling (CSS) weights — paper Section 4.1.
//
// CSS replaces the re-weight term alpha^k_i * pi_e(X) by the *sampling
// probability* p(X) = sum over all corresponding states X' in C(s) of
// pi_e(X'), which uses the degree information of every vertex of the
// sampled subgraph instead of only the interior of the one sequence the
// walk happened to traverse. Lemma 5 shows the resulting estimator has no
// larger variance.
//
// Evaluating p(X) per Algorithm 3 naively enumerates sequences at every
// step. We instead compile, once per (k, d, graphlet type), the sequences
// into *interior coefficient tables*: for l = k-d+1 the expanded-chain
// weight of a sequence depends only on its l-2 interior states, so
//
//   2|R(d)| p(X) = sum_entries count(entry) * prod_{state in entry}
//                  1 / deg_{G(d)}(state),
//
// where entries group sequences by their (unordered) interior state
// multiset. For SRW1/k=3 and SRW2/k=4 this reproduces the closed forms of
// paper Table 4; for SRW2/k=5 it is a <=100-term sum — a handful of
// multiply-adds per step instead of a path enumeration.
//
// For d >= 3 the interior state degrees are G(d)-degrees of subgraph
// states, which require on-the-fly neighbor enumeration; CssWeightDirect
// implements this (the "SRW3CSS" the paper deems too expensive to bench).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graphlet/classifier.h"

namespace grw {

/// One group of corresponding sequences sharing an interior state multiset.
struct CssEntry {
  /// Interior states as vertex bitmasks over canonical labels, sorted.
  std::array<uint16_t, 4> interior = {};
  uint8_t num_interior = 0;
  /// Number of corresponding sequences with this interior multiset.
  uint32_t count = 0;
};

/// Compiled CSS weights for all graphlets of one size under one walk.
class CssTable {
 public:
  /// Builds the table for k-node graphlets under a walk on G(d), d <= 2.
  /// (d >= 3 weights need per-state degree probes; use CssWeightDirect.)
  CssTable(int k, int d);

  int k() const { return k_; }
  int d() const { return d_; }

  /// The compiled entries for a catalog graphlet id.
  const std::vector<CssEntry>& Entries(int type) const {
    return entries_[type];
  }

  /// Evaluates 2|R(d)| * p(X) for a sample with classification `info`
  /// (from GraphletClassifier) whose window vertices are `nodes` (the
  /// order the mask was built in). `nb` applies the non-backtracking
  /// nominal degree d' = max(d-1, 1). Degree reads go through the access
  /// policy G (Graph = full access; CrawlAccess charges/caches them);
  /// defined in css.cpp, instantiated for both policies.
  template <class G>
  double Eval(const MaskInfo& info, std::span<const VertexId> nodes,
              const G& g, bool nb) const;

  /// Shared singleton per (k, d); thread-safe.
  static const CssTable& For(int k, int d);

 private:
  int k_;
  int d_;
  std::vector<std::vector<CssEntry>> entries_;  // per catalog id
};

/// Direct Algorithm-3 evaluation of 2|R(d)| * p(X) for any d, using a
/// caller-supplied G(d)-degree probe for interior states (node ids of the
/// real graph). Expensive for d >= 3; exact for all d (used to cross-check
/// CssTable in tests).
double CssWeightDirect(
    int k, int d, const MaskInfo& info, std::span<const VertexId> nodes,
    const std::function<uint64_t(std::span<const VertexId>)>& state_degree,
    bool nb);

}  // namespace grw
