#include "core/batch_means.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace grw {

std::vector<double> BatchFromCumulativeWeights(
    const std::vector<double>& now, std::vector<double>& prev) {
  std::vector<double> batch(now.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < now.size(); ++i) {
    batch[i] = now[i] - (i < prev.size() ? prev[i] : 0.0);
    total += batch[i];
  }
  if (total > 0.0) {
    for (double& b : batch) b /= total;
  }
  prev = now;
  return batch;
}

void BatchMeansAccumulator::AddBatch(
    const std::vector<double>& concentrations) {
  if (batches_ == 0) {
    stats_.resize(concentrations.size());
  } else if (stats_.size() != concentrations.size()) {
    throw std::invalid_argument(
        "BatchMeansAccumulator: batch length changed between AddBatch calls");
  }
  for (size_t i = 0; i < stats_.size(); ++i) stats_[i].Add(concentrations[i]);
  ++batches_;
}

std::vector<double> BatchMeansAccumulator::StandardErrors() const {
  std::vector<double> se(stats_.size(), 0.0);
  if (batches_ < 2) return se;
  for (size_t i = 0; i < stats_.size(); ++i) {
    se[i] = std::sqrt(stats_[i].SampleVariance() /
                      static_cast<double>(batches_));
  }
  return se;
}

double BatchMeansAccumulator::MaxRelativeError(
    const std::vector<double>& concentrations,
    double min_concentration) const {
  if (batches_ < 2) return std::numeric_limits<double>::infinity();
  const std::vector<double> se = StandardErrors();
  double max_rel = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < se.size() && i < concentrations.size(); ++i) {
    if (concentrations[i] < min_concentration || concentrations[i] <= 0.0) {
      continue;
    }
    const double rel = se[i] / concentrations[i];
    if (std::isnan(max_rel) || rel > max_rel) max_rel = rel;
  }
  return max_rel;
}

BatchedEstimate EstimateWithErrorBars(const Graph& g,
                                      const EstimatorConfig& config,
                                      uint64_t steps, int batches,
                                      uint64_t seed) {
  if (batches < 2 || steps < static_cast<uint64_t>(batches)) {
    throw std::invalid_argument(
        "EstimateWithErrorBars: need batches >= 2 and steps >= batches");
  }
  GraphletEstimator estimator(g, config);
  estimator.Reset(seed);

  BatchedEstimate result;
  std::vector<double> prev_weights;
  uint64_t done = 0;
  for (int b = 0; b < batches; ++b) {
    const uint64_t target = steps * (b + 1) / batches;
    estimator.Run(target - done);
    done = target;
    result.batch_estimates.push_back(BatchFromCumulativeWeights(
        estimator.Result().weights, prev_weights));
  }

  const EstimateResult final = estimator.Result();
  result.concentrations = final.concentrations;
  result.steps = final.steps;
  BatchMeansAccumulator accumulator;
  for (const auto& batch : result.batch_estimates) {
    accumulator.AddBatch(batch);
  }
  result.standard_errors = accumulator.StandardErrors();
  return result;
}

}  // namespace grw
