#include "core/batch_means.h"

#include <cmath>
#include <stdexcept>

namespace grw {

BatchedEstimate EstimateWithErrorBars(const Graph& g,
                                      const EstimatorConfig& config,
                                      uint64_t steps, int batches,
                                      uint64_t seed) {
  if (batches < 2 || steps < static_cast<uint64_t>(batches)) {
    throw std::invalid_argument(
        "EstimateWithErrorBars: need batches >= 2 and steps >= batches");
  }
  GraphletEstimator estimator(g, config);
  estimator.Reset(seed);

  BatchedEstimate result;
  const int num_types = estimator.NumTypes();
  std::vector<double> prev_weights(num_types, 0.0);
  uint64_t done = 0;
  for (int b = 0; b < batches; ++b) {
    const uint64_t target = steps * (b + 1) / batches;
    estimator.Run(target - done);
    done = target;
    const EstimateResult snapshot = estimator.Result();
    // Within-batch weights: difference of cumulative accumulators.
    std::vector<double> batch(num_types, 0.0);
    double total = 0.0;
    for (int t = 0; t < num_types; ++t) {
      batch[t] = snapshot.weights[t] - prev_weights[t];
      total += batch[t];
      prev_weights[t] = snapshot.weights[t];
    }
    if (total > 0.0) {
      for (double& w : batch) w /= total;
    }
    result.batch_estimates.push_back(std::move(batch));
  }

  const EstimateResult final = estimator.Result();
  result.concentrations = final.concentrations;
  result.steps = final.steps;
  result.standard_errors.assign(num_types, 0.0);
  for (int t = 0; t < num_types; ++t) {
    double mean = 0.0;
    for (const auto& batch : result.batch_estimates) {
      mean += batch[t] / batches;
    }
    double var = 0.0;
    for (const auto& batch : result.batch_estimates) {
      var += (batch[t] - mean) * (batch[t] - mean);
    }
    var /= (batches - 1);
    result.standard_errors[t] =
        std::sqrt(var / static_cast<double>(batches));
  }
  return result;
}

}  // namespace grw
