// Sliding window over the last l states of a walk on G(d), maintaining the
// union vertex set and its induced adjacency incrementally.
//
// Paper Section 5 ("Identify Graphlet Types"): because consecutive states
// share d-1 nodes, at most one vertex enters the union per step, so its
// adjacency against the <= k-1 retained vertices costs k-1 edge queries —
// versus C(k,2) for rebuilding from scratch. Both paths are implemented;
// tests assert they agree and the micro bench measures the gap. Each
// query goes through the access policy's HasEdge: with full access
// (SampleWindow = SampleWindowT<Graph>) that is Graph::HasEdge, so
// attaching an AdjacencyIndex (graph/adjacency.h) turns the per-step
// maintenance into k-1 O(1)-ish probes without touching this code; with
// CrawlAccess the same probes are answered from the crawler's cached
// neighbor lists and charged API cost on a miss.
//
// The window also snapshots each state's G(d)-degree (provided by the
// caller as states are pushed) because the expanded-chain weight of a
// sample needs the degrees of the *interior* states (Theorem 2).

#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/access.h"
#include "graph/graph.h"
#include "graphlet/catalog.h"

namespace grw {

/// One state in the window.
struct WindowState {
  std::array<VertexId, kMaxGraphletSize> nodes = {};
  uint8_t num_nodes = 0;
  /// Degree of this state in G(d); filled when known (a state's degree is
  /// discovered when the walk steps *from* it, so the newest state's
  /// degree may lag one step behind — interiors are always filled).
  uint64_t degree = 0;
};

/// Sliding window of l consecutive d-node states, reading adjacency
/// through access policy G. Defined in sample_window.cpp; instantiated
/// for Graph and CrawlAccess.
template <class G = Graph>
class SampleWindowT {
 public:
  /// k: graphlet size, l = k - d + 1 states per window.
  SampleWindowT(const G& g, int k, int l)
      : g_(&g), k_(k), l_(l) {
    assert(l >= 2 && k >= 3 && k <= kMaxGraphletSize);
    states_.resize(l);
  }

  /// Clears the window (new chain).
  void Clear() {
    size_ = 0;
    head_ = 0;
    registry_size_ = 0;
  }

  /// Pushes the walker's new state (d node ids, any order); evicts the
  /// oldest state when the window is full. `state_degree` is the state's
  /// G(d)-degree if already known, or 0 to fill in later via
  /// SetNewestDegree().
  void Push(std::span<const VertexId> nodes, uint64_t state_degree);

  /// Records the newest state's G(d)-degree once the walk knows it.
  void SetNewestDegree(uint64_t degree) {
    assert(size_ > 0);
    StateAt(size_ - 1).degree = degree;
  }

  bool Full() const { return size_ == l_; }

  /// True iff the window is full and covers exactly k distinct vertices —
  /// i.e. it is a valid k-node graphlet sample (paper Figure 3).
  bool Valid() const { return Full() && registry_size_ == k_; }

  /// Union vertices in first-appearance order. Matches the vertex order
  /// used by Mask().
  std::span<const VertexId> UnionNodes() const {
    return {registry_nodes_.data(), static_cast<size_t>(registry_size_)};
  }

  /// Induced adjacency mask over UnionNodes() order. Requires Valid().
  uint32_t Mask() const;

  /// Oldest-first access to the window's states; index 0 is X_1 of the
  /// paper's X^(l). Requires i < l and Full().
  const WindowState& State(int i) const {
    assert(Full());
    return states_[(head_ + i) % l_];
  }

  /// Recomputes the mask from scratch with C(k,2) adjacency queries —
  /// the naive path, for tests and the ablation micro bench.
  uint32_t MaskNaive() const;

 private:
  WindowState& StateAt(int i) { return states_[(head_ + i) % l_]; }

  void AddVertex(VertexId v);
  void ReleaseVertex(VertexId v);

  const G* g_;
  int k_;
  int l_;
  std::vector<WindowState> states_;
  int size_ = 0;
  int head_ = 0;

  // Union registry: vertices in first-appearance order with reference
  // counts (number of window states containing each), plus the adjacency
  // matrix in registry order. Union size never exceeds k = d + l - 1.
  std::array<VertexId, kMaxGraphletSize> registry_nodes_ = {};
  std::array<uint8_t, kMaxGraphletSize> registry_refs_ = {};
  std::array<std::array<bool, kMaxGraphletSize>, kMaxGraphletSize> adj_ = {};
  int registry_size_ = 0;
};

/// The full-access window every pre-policy call site uses.
using SampleWindow = SampleWindowT<Graph>;

}  // namespace grw
