#include "core/alpha.h"

#include <bit>
#include <cassert>

namespace grw {

namespace {

// All connected induced d-node subgraphs of g, as vertex bitmasks.
std::vector<uint16_t> ConnectedSubsets(const Graphlet& g, int d) {
  std::vector<uint16_t> subsets;
  const uint16_t full = static_cast<uint16_t>((1u << g.k) - 1);
  for (uint16_t set = 1; set <= full; ++set) {
    if (std::popcount(set) != d) continue;
    // Connectivity of the induced subgraph on `set` under g's edges.
    uint16_t visited = static_cast<uint16_t>(set & (~set + 1));  // lowest bit
    uint16_t frontier = visited;
    while (frontier != 0) {
      uint16_t next = 0;
      for (int i = 0; i < g.k; ++i) {
        if (!((frontier >> i) & 1u)) continue;
        for (int j = 0; j < g.k; ++j) {
          if (((set >> j) & 1u) && !((visited >> j) & 1u) &&
              MaskHasEdge(g.canonical_mask, g.k, i, j)) {
            next |= static_cast<uint16_t>(1u << j);
          }
        }
      }
      visited |= next;
      frontier = next;
    }
    if (visited == set) subsets.push_back(set);
  }
  return subsets;
}

// Adjacency in the relationship graph of g: an edge of g for d = 1,
// sharing exactly d-1 vertices for d >= 2.
bool StatesAdjacent(const Graphlet& g, int d, uint16_t a, uint16_t b) {
  if (a == b) return false;
  if (d == 1) {
    const int i = std::countr_zero(a);
    const int j = std::countr_zero(b);
    return MaskHasEdge(g.canonical_mask, g.k, i, j);
  }
  return std::popcount(static_cast<uint16_t>(a & b)) == d - 1;
}

void Extend(const Graphlet& g, int d, int l,
            const std::vector<uint16_t>& subsets, StateSequence* seq,
            uint16_t covered, std::vector<StateSequence>* out) {
  if (static_cast<int>(seq->size()) == l) {
    assert(std::popcount(covered) == g.k);
    out->push_back(*seq);
    return;
  }
  const uint16_t last = seq->back();
  for (uint16_t s : subsets) {
    if (!StatesAdjacent(g, d, last, s)) continue;
    // Each transition must add exactly one new node (otherwise the window
    // cannot cover k nodes in l states).
    const uint16_t grown = static_cast<uint16_t>(covered | s);
    if (std::popcount(grown) != std::popcount(covered) + 1) continue;
    seq->push_back(s);
    Extend(g, d, l, subsets, seq, grown, out);
    seq->pop_back();
  }
}

}  // namespace

std::vector<StateSequence> CorrespondingSequences(const Graphlet& g, int d) {
  assert(d >= 1 && d < g.k);
  const int l = g.k - d + 1;
  const std::vector<uint16_t> subsets = ConnectedSubsets(g, d);
  std::vector<StateSequence> out;
  StateSequence seq;
  for (uint16_t s : subsets) {
    seq.assign(1, s);
    Extend(g, d, l, subsets, &seq, s, &out);
  }
  return out;
}

int64_t Alpha(const Graphlet& g, int d) {
  return static_cast<int64_t>(CorrespondingSequences(g, d).size());
}

std::vector<int64_t> AlphaTable(int k, int d) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  std::vector<int64_t> table(catalog.NumTypes());
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    table[id] = Alpha(catalog.Get(id), d);
  }
  return table;
}

}  // namespace grw
