#include "core/batched_estimator.h"

#include <cassert>
#include <stdexcept>

#include "core/alpha.h"
#include "graph/access.h"
#include "util/rng.h"

namespace grw {

template <class G>
BatchedEstimatorT<G>::BatchedEstimatorT(const G& g,
                                        const EstimatorConfig& config,
                                        int lanes)
    : access_(static_cast<size_t>(lanes < 1 ? 1 : lanes), &g),
      config_(ValidateEstimatorConfig(config)),
      l_(config.k - config.d + 1),
      lanes_(lanes),
      num_types_(GraphletCatalog::ForSize(config.k).NumTypes()),
      classifier_(&GraphletClassifier::ForSize(config.k)),
      alpha_(AlphaTable(config.k, config.d)),
      walk_(g, config.d, lanes, config.nb) {
  // walk_'s constructor already rejected lanes < 1 / a too-small graph.
  if (config.css && config.d <= 2) {
    css_table_ = &CssTable::For(config.k, config.d);
  }
  rng_.resize(lanes_);
  windows_.reserve(lanes_);
  for (int j = 0; j < lanes_; ++j) windows_.emplace_back(g, config_.k, l_);
  active_.assign(lanes_, 1);
  weights_.assign(static_cast<size_t>(lanes_) * num_types_, 0.0);
  samples_.assign(static_cast<size_t>(lanes_) * num_types_, 0);
  steps_.assign(lanes_, 0);
  valid_.assign(lanes_, 0);
}

template <class G>
BatchedEstimatorT<G>::BatchedEstimatorT(std::span<const G* const> lane_access,
                                        const EstimatorConfig& config)
    : access_(lane_access.begin(), lane_access.end()),
      config_(ValidateEstimatorConfig(config)),
      l_(config.k - config.d + 1),
      lanes_(static_cast<int>(lane_access.size())),
      num_types_(GraphletCatalog::ForSize(config.k).NumTypes()),
      classifier_(&GraphletClassifier::ForSize(config.k)),
      alpha_(AlphaTable(config.k, config.d)),
      walk_(lane_access, config.d, config.nb) {
  if (config.css && config.d <= 2) {
    css_table_ = &CssTable::For(config.k, config.d);
  }
  rng_.resize(lanes_);
  windows_.reserve(lanes_);
  for (int j = 0; j < lanes_; ++j) {
    windows_.emplace_back(*access_[j], config_.k, l_);
  }
  active_.assign(lanes_, 1);
  weights_.assign(static_cast<size_t>(lanes_) * num_types_, 0.0);
  samples_.assign(static_cast<size_t>(lanes_) * num_types_, 0);
  steps_.assign(lanes_, 0);
  valid_.assign(lanes_, 0);
}

template <class G>
void BatchedEstimatorT<G>::Reset(uint64_t base_seed, uint64_t first_stream) {
  std::fill(weights_.begin(), weights_.end(), 0.0);
  std::fill(samples_.begin(), samples_.end(), 0);
  std::fill(steps_.begin(), steps_.end(), 0);
  std::fill(valid_.begin(), valid_.end(), 0);
  // Lane by lane, not round by round: Reset is cold-cache anyway, and the
  // serial order keeps each lane's access-call sequence byte-for-byte the
  // scalar chain's (which matters for crawl accounting).
  for (int j = 0; j < lanes_; ++j) {
    rng_[j].Seed(DeriveSeed(base_seed, first_stream + j));
    walk_.ResetLane(j, rng_[j]);
    windows_[j].Clear();
    windows_[j].Push(walk_.LaneNodes(j), 0);
    // Fill the window: l states need l-1 transitions (Algorithm 1 line 3).
    for (int i = 1; i < l_; ++i) {
      windows_[j].SetNewestDegree(walk_.LaneStateDegree(j));
      walk_.StepLane(j, rng_[j]);
      windows_[j].Push(walk_.LaneNodes(j), 0);
    }
    for (uint64_t i = 0; i < config_.burn_in; ++i) {
      windows_[j].SetNewestDegree(walk_.LaneStateDegree(j));
      walk_.StepLane(j, rng_[j]);
      windows_[j].Push(walk_.LaneNodes(j), 0);
    }
  }
}

template <class G>
void BatchedEstimatorT<G>::Run(uint64_t steps) {
  for (uint64_t i = 0; i < steps; ++i) {
    // Crawl budget: a lane stops before the next transition once its
    // access has spent its distinct-query allowance — the same check, at
    // the same point, as the scalar Run loop. The mask also keeps
    // PrepareLanes from touching (and charging) finished lanes. Static
    // dispatch: for Graph none of this compiles into the loop.
    if constexpr (kAccessHasQueryBudget<G>) {
      int live = 0;
      for (int j = 0; j < lanes_; ++j) {
        active_[j] = Access(j).BudgetExhausted() ? 0 : 1;
        live += active_[j];
      }
      if (live == 0) return;
      walk_.PrepareLanes(active_);
    } else {
      walk_.PrepareLanes();
    }
    for (int j = 0; j < lanes_; ++j) {
      if constexpr (kAccessHasQueryBudget<G>) {
        if (!active_[j]) continue;
      }
      // A state's G(d)-degree becomes known before we leave it; snapshot
      // it, transition, then evaluate the new window — the scalar loop
      // body, per lane.
      windows_[j].SetNewestDegree(walk_.LaneStateDegree(j));
      walk_.StepLane(j, rng_[j]);
      windows_[j].Push(walk_.LaneNodes(j), 0);
      ++steps_[j];
      Accumulate(j);
    }
  }
}

template <class G>
void BatchedEstimatorT<G>::Accumulate(int lane) {
  if (!windows_[lane].Valid()) return;  // < k distinct nodes: invalid
  const uint32_t mask = windows_[lane].Mask();
  const MaskInfo& info = classifier_->Info(mask);
  assert(info.type >= 0 && "window union must induce a connected subgraph");
  const double w = WindowSampleWeight(Access(lane), config_, l_, css_table_,
                                      alpha_, windows_[lane], info, scratch_);
  weights_[static_cast<size_t>(lane) * num_types_ + info.type] += w;
  samples_[static_cast<size_t>(lane) * num_types_ + info.type]++;
  ++valid_[lane];
}

template <class G>
EstimateResult BatchedEstimatorT<G>::Result(int lane) const {
  assert(lane >= 0 && lane < lanes_);
  EstimateResult result;
  const size_t base = static_cast<size_t>(lane) * num_types_;
  result.weights.assign(weights_.begin() + base,
                        weights_.begin() + base + num_types_);
  result.samples.assign(samples_.begin() + base,
                        samples_.begin() + base + num_types_);
  result.steps = steps_[lane];
  result.valid_samples = valid_[lane];
  FinalizeConcentrations(result);
  return result;
}

template <class G>
bool BatchedEstimatorT<G>::LaneBudgetExhausted(int lane) const {
  if constexpr (kAccessHasQueryBudget<G>) {
    return Access(lane).BudgetExhausted();
  } else {
    (void)lane;
    return false;
  }
}

// Closed policy family (graph/access.h): full access + crawl access.
template class BatchedEstimatorT<Graph>;
template class BatchedEstimatorT<CrawlAccess>;

}  // namespace grw
