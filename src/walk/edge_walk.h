// Simple and non-backtracking random walk on G(2), whose states are the
// edges of G (d = 2).
//
// This is the walk behind SRW2 / SRW2CSS — the paper's recommended method
// for 4- and 5-node graphlets. Neighbor selection follows Section 5
// ("Populate Neighbors of Graphlet"): the neighbors of state e_uv are
//   { e_uw : w in N(u)\{v} }  union  { e_vz : z in N(v)\{u} },
// all distinct, so deg_{G(2)}(e_uv) = d_u + d_v - 2. A uniform neighbor is
// drawn in O(1) expected time by picking endpoint u with probability
// d_u/(d_u+d_v), then a uniform neighbor of it, rejecting the draw that
// reproduces the other endpoint.
//
// Templated on the graph access policy (graph/access.h); EdgeWalk =
// EdgeWalkT<Graph> is the unchanged full-access walk, static dispatch.

#pragma once

#include <array>
#include <stdexcept>

#include "walk/walker.h"

namespace grw {

/// Random walk on the edges of G (states of G(2)), through policy G.
template <class G = Graph>
class EdgeWalkT final : public StateWalker {
 public:
  /// g must be connected with at least 3 nodes (so every edge state has at
  /// least one neighbor).
  explicit EdgeWalkT(const G& g, bool non_backtracking = false)
      : g_(&g), nb_(non_backtracking) {
    if (g.NumNodes() < 3 || g.NumEdges() < 2) {
      throw std::invalid_argument("EdgeWalk: graph too small");
    }
  }

  int d() const override { return 2; }

  void Reset(Rng& rng) override {
    // A random endpoint's random incident edge; the init distribution is
    // irrelevant asymptotically.
    const VertexId u = static_cast<VertexId>(rng.UniformInt(g_->NumNodes()));
    const VertexId w = g_->Neighbor(
        u, static_cast<uint32_t>(rng.UniformInt(g_->Degree(u))));
    nodes_[0] = u < w ? u : w;  // states are canonicalized as (min, max)
    nodes_[1] = u < w ? w : u;
    has_prev_ = false;
  }

  void ResetInRange(Rng& rng, VertexId lo, VertexId hi) override {
    // Anchor one endpoint in [lo, hi); the incident edge may of course
    // leave the range — a hint, not a fence.
    const VertexId u = lo + static_cast<VertexId>(rng.UniformInt(hi - lo));
    const VertexId w = g_->Neighbor(
        u, static_cast<uint32_t>(rng.UniformInt(g_->Degree(u))));
    nodes_[0] = u < w ? u : w;
    nodes_[1] = u < w ? w : u;
    has_prev_ = false;
  }

  void Step(Rng& rng) override {
    const VertexId u = nodes_[0];
    const VertexId v = nodes_[1];
    const uint64_t deg = StateDegree();
    VertexId a;
    VertexId b;
    while (true) {
      SampleNeighborState(rng, &a, &b);
      if (nb_ && has_prev_ && deg >= 2 && a == prev_[0] && b == prev_[1]) {
        continue;  // exclude the previous state (unless it is the only one)
      }
      break;
    }
    prev_[0] = u;
    prev_[1] = v;
    has_prev_ = true;
    nodes_[0] = a;
    nodes_[1] = b;
  }

  std::span<const VertexId> Nodes() const override {
    return {nodes_.data(), 2};
  }

  uint64_t StateDegree() const override {
    return static_cast<uint64_t>(g_->Degree(nodes_[0])) +
           g_->Degree(nodes_[1]) - 2;
  }

  bool non_backtracking() const override { return nb_; }

 private:
  // Draws a uniform neighbor state of (nodes_[0], nodes_[1]) into (*a, *b),
  // normalized so the retained endpoint is first... no normalization is
  // needed for correctness, but we canonicalize (min, max) so state
  // equality checks (non-backtracking) are well defined.
  void SampleNeighborState(Rng& rng, VertexId* a, VertexId* b) const {
    const VertexId u = nodes_[0];
    const VertexId v = nodes_[1];
    const uint64_t du = g_->Degree(u);
    const uint64_t dv = g_->Degree(v);
    while (true) {
      // Endpoint proportional to degree, then uniform neighbor, rejecting
      // the draw that lands back on the opposite endpoint: uniform over
      // the d_u + d_v - 2 neighbor states.
      const bool pick_u = rng.UniformInt(du + dv) < du;
      const VertexId base = pick_u ? u : v;
      const VertexId other = pick_u ? v : u;
      const VertexId w = g_->Neighbor(
          base, static_cast<uint32_t>(rng.UniformInt(g_->Degree(base))));
      if (w == other) continue;
      *a = base < w ? base : w;
      *b = base < w ? w : base;
      return;
    }
  }

  const G* g_;
  bool nb_;
  std::array<VertexId, 2> nodes_ = {0, 0};
  std::array<VertexId, 2> prev_ = {0, 0};
  bool has_prev_ = false;
};

/// The full-access walk every pre-policy call site uses.
using EdgeWalk = EdgeWalkT<Graph>;

}  // namespace grw
