// Simple and non-backtracking random walk on G itself (d = 1).
//
// This is the walk behind SRW1 / SRW1CSS / SRW1CSSNB — the paper's best
// performer for 3-node graphlets — and also the substrate of the
// Hardiman–Katzir clustering-coefficient estimator, which Section 6.3.1
// shows is SRW1 in disguise.
//
// Templated on the graph access policy (graph/access.h): NodeWalkT<Graph>
// is the full-access walk (aliased as NodeWalk — unchanged code), while
// NodeWalkT<CrawlAccess> reads every neighbor list through the crawl
// cache/accounting layer. The dispatch is static, so the full-access
// instantiation pays nothing for the crawl scenario existing.

#pragma once

#include <stdexcept>

#include "walk/walker.h"

namespace grw {

/// Random walk on the nodes of G, reading through access policy G.
template <class G = Graph>
class NodeWalkT final : public StateWalker {
 public:
  /// g must be connected with at least 2 nodes.
  explicit NodeWalkT(const G& g, bool non_backtracking = false)
      : g_(&g), nb_(non_backtracking) {
    if (g.NumNodes() < 2) {
      throw std::invalid_argument("NodeWalk: graph too small");
    }
  }

  int d() const override { return 1; }

  void Reset(Rng& rng) override {
    current_ = static_cast<VertexId>(rng.UniformInt(g_->NumNodes()));
    has_prev_ = false;
  }

  void ResetInRange(Rng& rng, VertexId lo, VertexId hi) override {
    current_ = lo + static_cast<VertexId>(rng.UniformInt(hi - lo));
    has_prev_ = false;
  }

  void Step(Rng& rng) override {
    const uint32_t deg = g_->Degree(current_);
    VertexId next = g_->Neighbor(
        current_, static_cast<uint32_t>(rng.UniformInt(deg)));
    if (nb_ && has_prev_ && deg >= 2) {
      // Uniform over neighbors excluding the previous node (paper
      // Section 4.2 transition matrix P'): rejection is exact here.
      while (next == prev_) {
        next = g_->Neighbor(current_,
                            static_cast<uint32_t>(rng.UniformInt(deg)));
      }
    }
    prev_ = current_;
    has_prev_ = true;
    current_ = next;
  }

  std::span<const VertexId> Nodes() const override { return {&current_, 1}; }

  uint64_t StateDegree() const override { return g_->Degree(current_); }

  bool non_backtracking() const override { return nb_; }

  VertexId Current() const { return current_; }

 private:
  const G* g_;
  bool nb_;
  VertexId current_ = 0;
  VertexId prev_ = 0;
  bool has_prev_ = false;
};

/// The full-access walk every pre-policy call site uses.
using NodeWalk = NodeWalkT<Graph>;

}  // namespace grw
