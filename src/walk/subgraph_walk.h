// Random walk on G(d) for d >= 3: states are connected induced d-node
// subgraphs, enumerated on the fly.
//
// This is the walk behind SRW3 and SRW4 — i.e. PSRW (Wang et al.) when
// d = k-1 — kept as the paper's main comparison method. Per Section 5,
// drawing a *uniform* neighbor of a state s requires generating all
// neighbors: every t = (V(s) \ {v_out}) ∪ {v_in} with v_in adjacent to the
// remainder and t connected. That costs O(d^2 |E|/|V|) per step, which is
// exactly why the paper argues for walking with small d; our Table 6 bench
// reproduces the resulting runtime gap.
//
// Hot-path design: enumeration reuses a caller-owned GdScratch (zero
// allocations once warm) and checks candidate connectivity incrementally —
// the state's internal adjacency mask is built once per call with C(d,2)
// edge queries, each evicted vertex derives its base mask by bit surgery,
// and candidates come from a (d-1)-way sorted merge of the base vertices'
// neighbor lists: each distinct v_in arrives in ascending order *with its
// base-adjacency mask already assembled* (v_in is adjacent to base[i] iff
// it surfaced from list i), so a candidate costs zero edge queries — just
// an O(d) bitmask BFS. The pre-optimization path is preserved as
// EnumerateGdNeighborsReference for the equivalence tests and the
// micro-bench baseline.
//
// Everything here is templated on the graph access policy (graph/access.h)
// with explicit instantiations for Graph (full access — the unchanged PR 4
// hot path) and CrawlAccess in subgraph_walk.cpp. Each edge query and
// neighbor-list read goes through the policy, so a crawl simulation
// charges the enumeration its true API cost.

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/access.h"
#include "walk/walker.h"

namespace grw {

/// Reusable scratch for G(d) neighbor enumeration. One instance per
/// walker/chain; reuse across calls makes the hot path allocation-free
/// after the first few steps (the vectors keep their high-water capacity).
struct GdScratch {
  std::vector<VertexId> base;       // state minus the evicted vertex
  std::vector<VertexId> candidate;  // base plus the incoming vertex
  std::array<uint32_t, 32> state_rows = {};  // state internal adjacency
  std::array<uint32_t, 32> base_rows = {};   // derived per evicted vertex
  // Cursors for the (d-1)-way sorted merge over base neighbor lists.
  std::array<const VertexId*, 32> heads = {};
  std::array<const VertexId*, 32> ends = {};
};

/// Appends to *out_neighbors (if non-null) all G(d)-neighbors of `state`
/// (sorted node ids, d = state.size() <= 32), flattened d ids per
/// neighbor, each sorted; returns the neighbor count. A neighbor is any
/// connected induced d-node subgraph sharing exactly d-1 nodes with
/// `state`. Pass out_neighbors == nullptr to count without materializing.
/// Defined in subgraph_walk.cpp; instantiated for Graph and CrawlAccess.
template <class G>
uint64_t EnumerateGdNeighbors(const G& g, std::span<const VertexId> state,
                              std::vector<VertexId>* out_neighbors,
                              GdScratch& scratch);

/// Convenience overload with a throwaway scratch (tests, one-off calls).
template <class G>
inline void EnumerateGdNeighbors(const G& g,
                                 std::span<const VertexId> state,
                                 std::vector<VertexId>* out_neighbors) {
  GdScratch scratch;
  EnumerateGdNeighbors(g, state, out_neighbors, scratch);
}

/// As EnumerateGdNeighbors, but with the state's internal adjacency rows
/// (bit j of state_rows[i] = edge state[i]~state[j]) supplied by the
/// caller instead of probed here. The batched walk kernel builds the rows
/// for a whole lane batch at once (vectorized signature rejection) and
/// feeds them in; results are identical to the probing overload given
/// correct rows.
template <class G>
uint64_t EnumerateGdNeighborsWithRows(const G& g,
                                      std::span<const VertexId> state,
                                      const uint32_t* state_rows,
                                      std::vector<VertexId>* out_neighbors,
                                      GdScratch& scratch);

/// The pre-acceleration enumerator: per-call vector allocations and a full
/// adjacency-probing BFS per candidate. Kept verbatim as the behavioral
/// reference — tests assert the accelerated path emits the identical
/// flattened neighbor sequence, and bench_micro_hasedge uses it as the
/// end-to-end SRW baseline. Full access only.
void EnumerateGdNeighborsReference(const Graph& g,
                                   std::span<const VertexId> state,
                                   std::vector<VertexId>* out_neighbors);

/// Degree of `state` in G(d): the number of neighbors above.
template <class G>
uint64_t SubgraphStateDegree(const G& g, std::span<const VertexId> state,
                             GdScratch& scratch);

/// Convenience overload with a throwaway scratch.
template <class G>
inline uint64_t SubgraphStateDegree(const G& g,
                                    std::span<const VertexId> state) {
  GdScratch scratch;
  return SubgraphStateDegree(g, state, scratch);
}

/// True iff the subgraph induced by `nodes` (<= 32 of them) is connected.
/// Costs C(|nodes|, 2) edge queries and one bitmask BFS.
template <class G>
bool InducedSubgraphConnected(const G& g, std::span<const VertexId> nodes);

/// Random walk on connected induced d-node subgraphs of G, d >= 3,
/// through access policy G.
template <class G = Graph>
class SubgraphWalkT final : public StateWalker {
 public:
  SubgraphWalkT(const G& g, int d, bool non_backtracking = false)
      : g_(&g), d_(d), nb_(non_backtracking) {
    if (d < 3) {
      throw std::invalid_argument("SubgraphWalk: use NodeWalk/EdgeWalk");
    }
    if (g.NumNodes() < static_cast<VertexId>(d + 1)) {
      throw std::invalid_argument("SubgraphWalk: graph too small");
    }
    nodes_.reserve(d);
    prev_.reserve(d);
  }

  int d() const override { return d_; }

  void Reset(Rng& rng) override;

  void ResetInRange(Rng& rng, VertexId lo, VertexId hi) override;

  void Step(Rng& rng) override;

  std::span<const VertexId> Nodes() const override {
    return {nodes_.data(), nodes_.size()};
  }

  /// Number of neighbor states; triggers (cached) neighbor enumeration.
  uint64_t StateDegree() const override {
    EnsureNeighbors();
    return neighbors_.size() / d_;
  }

  bool non_backtracking() const override { return nb_; }

  /// Degree in G(d) of an arbitrary connected induced d-node subgraph,
  /// given as a node set. Used by CSS weighting for d >= 3 (the expensive
  /// path the paper excludes from its benchmarks as SRW3CSS).
  uint64_t DegreeOfState(std::span<const VertexId> state_nodes) const;

 private:
  void EnsureNeighbors() const {
    if (!neighbors_valid_) {
      neighbors_.clear();
      EnumerateGdNeighbors(*g_, Nodes(), &neighbors_, scratch_);
      neighbors_valid_ = true;
    }
  }

  const G* g_;
  int d_;
  bool nb_;
  std::vector<VertexId> nodes_;  // sorted
  std::vector<VertexId> prev_;   // sorted; empty until first Step
  mutable std::vector<VertexId> neighbors_;  // flattened neighbor states
  mutable bool neighbors_valid_ = false;
  mutable GdScratch scratch_;
};

/// The full-access walk every pre-policy call site uses.
using SubgraphWalk = SubgraphWalkT<Graph>;

}  // namespace grw
