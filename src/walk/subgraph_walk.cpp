#include "walk/subgraph_walk.h"

#include <cassert>

namespace grw {

bool InducedSubgraphConnected(const Graph& g,
                              std::span<const VertexId> nodes) {
  const int n = static_cast<int>(nodes.size());
  if (n <= 1) return true;
  uint32_t visited = 1u;
  uint32_t frontier = 1u;
  while (frontier != 0) {
    uint32_t next = 0;
    for (int i = 0; i < n; ++i) {
      if (!((frontier >> i) & 1u)) continue;
      for (int j = 0; j < n; ++j) {
        if (!((visited >> j) & 1u) && g.HasEdge(nodes[i], nodes[j])) {
          next |= 1u << j;
        }
      }
    }
    visited |= next;
    frontier = next;
  }
  return visited == (1u << n) - 1u;
}

void EnumerateGdNeighbors(const Graph& g, std::span<const VertexId> state,
                          std::vector<VertexId>* out_neighbors) {
  const int d = static_cast<int>(state.size());
  std::vector<VertexId> base(d - 1);
  std::vector<VertexId> candidate(d);
  std::vector<VertexId> additions;  // distinct v_in candidates per v_out

  for (int out_idx = 0; out_idx < d; ++out_idx) {
    // base = state minus the out_idx-th node, kept sorted.
    for (int i = 0, j = 0; i < d; ++i) {
      if (i != out_idx) base[j++] = state[i];
    }
    // Candidate incoming nodes: neighbors of the base, outside the state.
    // (A node with no edge to the base can never yield a connected
    // candidate, since all its candidate edges go to the base.)
    additions.clear();
    for (VertexId v : base) {
      for (VertexId w : g.Neighbors(v)) {
        if (std::find(state.begin(), state.end(), w) == state.end()) {
          additions.push_back(w);
        }
      }
    }
    std::sort(additions.begin(), additions.end());
    additions.erase(std::unique(additions.begin(), additions.end()),
                    additions.end());

    for (VertexId w : additions) {
      // candidate = sorted(base + {w}). Distinct (out_idx, w) pairs always
      // produce distinct candidates, so no cross-out_idx dedup is needed.
      std::merge(base.begin(), base.end(), &w, &w + 1, candidate.begin());
      if (InducedSubgraphConnected(g, candidate)) {
        out_neighbors->insert(out_neighbors->end(), candidate.begin(),
                              candidate.end());
      }
    }
  }
}

uint64_t SubgraphStateDegree(const Graph& g,
                             std::span<const VertexId> state) {
  std::vector<VertexId> scratch;
  EnumerateGdNeighbors(g, state, &scratch);
  return scratch.size() / state.size();
}

void SubgraphWalk::Reset(Rng& rng) {
  // Grow a connected d-set from a random start node by repeatedly adding a
  // random neighbor of a random member. Retry from scratch if the region
  // around the start is too small (cannot happen in a connected graph with
  // n > d, but the loop also guards against pathological RNG luck).
  while (true) {
    nodes_.clear();
    nodes_.push_back(static_cast<VertexId>(rng.UniformInt(g_->NumNodes())));
    int guard = 0;
    while (static_cast<int>(nodes_.size()) < d_ && guard++ < 16 * d_) {
      const VertexId anchor = nodes_[rng.UniformInt(nodes_.size())];
      const uint32_t deg = g_->Degree(anchor);
      if (deg == 0) break;
      const VertexId w =
          g_->Neighbor(anchor, static_cast<uint32_t>(rng.UniformInt(deg)));
      if (std::find(nodes_.begin(), nodes_.end(), w) == nodes_.end()) {
        nodes_.push_back(w);
      }
    }
    if (static_cast<int>(nodes_.size()) == d_) break;
  }
  std::sort(nodes_.begin(), nodes_.end());
  prev_.clear();
  neighbors_valid_ = false;
}

void SubgraphWalk::Step(Rng& rng) {
  EnsureNeighbors();
  const size_t count = neighbors_.size() / d_;
  assert(count > 0 && "state with no G(d) neighbors in a connected graph");

  size_t pick = rng.UniformInt(count);
  if (nb_ && !prev_.empty() && count >= 2) {
    // Uniform over neighbors excluding the previous state.
    auto is_prev = [this](size_t idx) {
      return std::equal(prev_.begin(), prev_.end(),
                        neighbors_.begin() + idx * d_);
    };
    while (is_prev(pick)) pick = rng.UniformInt(count);
  }

  prev_ = nodes_;
  nodes_.assign(neighbors_.begin() + pick * d_,
                neighbors_.begin() + (pick + 1) * d_);
  neighbors_valid_ = false;
}

uint64_t SubgraphWalk::DegreeOfState(
    std::span<const VertexId> state_nodes) const {
  return SubgraphStateDegree(*g_, state_nodes);
}

}  // namespace grw
