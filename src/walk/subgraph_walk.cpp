#include "walk/subgraph_walk.h"

#include <bit>
#include <cassert>

#include "graph/access.h"
#include "graph/sharded_access.h"

namespace grw {

namespace {

// Connectivity over an n-node (n <= 32) adjacency given as per-node
// neighbor bitmasks: bitset BFS from node 0, no edge queries.
bool MaskRowsConnected(const uint32_t* rows, int n) {
  const uint32_t all = n >= 32 ? ~0u : (1u << n) - 1u;
  uint32_t visited = 1u;
  uint32_t frontier = 1u;
  while (frontier != 0 && visited != all) {
    uint32_t reach = 0;
    while (frontier != 0) {
      reach |= rows[std::countr_zero(frontier)];
      frontier &= frontier - 1;
    }
    frontier = reach & ~visited;
    visited |= frontier;
  }
  return visited == all;
}

}  // namespace

template <class G>
bool InducedSubgraphConnected(const G& g, std::span<const VertexId> nodes) {
  const int n = static_cast<int>(nodes.size());
  if (n <= 1) return true;
  assert(n <= 32);
  uint32_t rows[32] = {};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (g.HasEdge(nodes[i], nodes[j])) {
        rows[i] |= 1u << j;
        rows[j] |= 1u << i;
      }
    }
  }
  return MaskRowsConnected(rows, n);
}

template <class G>
uint64_t EnumerateGdNeighbors(const G& g, std::span<const VertexId> state,
                              std::vector<VertexId>* out_neighbors,
                              GdScratch& scratch) {
  const int d = static_cast<int>(state.size());
  assert(d >= 1 && d <= 32);

  // Internal adjacency of the current state, once per call: C(d,2) edge
  // queries that every evicted-vertex iteration below reuses.
  uint32_t* srows = scratch.state_rows.data();
  for (int i = 0; i < d; ++i) srows[i] = 0;
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) {
      if (g.HasEdge(state[i], state[j])) {
        srows[i] |= 1u << j;
        srows[j] |= 1u << i;
      }
    }
  }
  return EnumerateGdNeighborsWithRows(g, state, srows, out_neighbors,
                                      scratch);
}

template <class G>
uint64_t EnumerateGdNeighborsWithRows(const G& g,
                                      std::span<const VertexId> state,
                                      const uint32_t* srows,
                                      std::vector<VertexId>* out_neighbors,
                                      GdScratch& scratch) {
  const int d = static_cast<int>(state.size());
  assert(d >= 1 && d <= 32);

  std::vector<VertexId>& base = scratch.base;
  std::vector<VertexId>& candidate = scratch.candidate;
  base.resize(d > 0 ? d - 1 : 0);
  candidate.resize(d);
  uint64_t count = 0;

  for (int out_idx = 0; out_idx < d; ++out_idx) {
    // base = state minus the out_idx-th node, kept sorted; its internal
    // adjacency is the state's with row/column out_idx spliced out.
    uint32_t* brows = scratch.base_rows.data();
    const uint32_t low_mask = (1u << out_idx) - 1u;
    for (int i = 0, j = 0; i < d; ++i) {
      if (i == out_idx) continue;
      base[j] = state[i];
      const uint64_t row = srows[i];  // 64-bit so >> (out_idx + 1) is
                                      // defined even when out_idx == 31
      brows[j] = static_cast<uint32_t>((row & low_mask) |
                                       ((row >> (out_idx + 1)) << out_idx));
      ++j;
    }

    // Candidate incoming nodes are exactly the neighbors of the base
    // outside the state (a node with no edge to the base can never yield
    // a connected candidate, since all its candidate edges go to the
    // base). A (d-1)-way sorted merge of the base neighbor lists yields
    // each distinct candidate w in ascending order together with its
    // base-adjacency mask for free: w is adjacent to base[i] iff it
    // surfaced from list i. No edge queries, no sort, no dedup pass.
    const VertexId** heads = scratch.heads.data();
    const VertexId** ends = scratch.ends.data();
    for (int i = 0; i + 1 < d; ++i) {
      const auto list = g.Neighbors(base[i]);
      heads[i] = list.data();
      ends[i] = list.data() + list.size();
    }
    size_t state_pos = 0;  // cursor into the (sorted) state for skipping
    while (true) {
      // Find the smallest head across the lists and collect which lists
      // carry it (that set IS the candidate's base-adjacency mask).
      VertexId w = ~static_cast<VertexId>(0);
      uint32_t wmask = 0;
      for (int i = 0; i + 1 < d; ++i) {
        if (heads[i] == ends[i]) continue;
        const VertexId head = *heads[i];
        if (head < w) {
          w = head;
          wmask = 1u << i;
        } else if (head == w) {
          wmask |= 1u << i;
        }
      }
      if (wmask == 0) break;  // all lists exhausted
      for (int i = 0; i + 1 < d; ++i) heads[i] += (wmask >> i) & 1u;
      while (state_pos < state.size() && state[state_pos] < w) ++state_pos;
      if (state_pos < state.size() && state[state_pos] == w) continue;

      uint32_t rows[32];
      for (int i = 0; i + 1 < d; ++i) {
        rows[i] = brows[i] | (((wmask >> i) & 1u) << (d - 1));
      }
      rows[d - 1] = wmask;
      if (!MaskRowsConnected(rows, d)) continue;
      ++count;
      if (out_neighbors != nullptr) {
        // candidate = sorted(base + {w}). Distinct (out_idx, w) pairs
        // always produce distinct candidates, so no cross-out_idx dedup
        // is needed.
        std::merge(base.begin(), base.end(), &w, &w + 1, candidate.begin());
        out_neighbors->insert(out_neighbors->end(), candidate.begin(),
                              candidate.end());
      }
    }
  }
  return count;
}

void EnumerateGdNeighborsReference(const Graph& g,
                                   std::span<const VertexId> state,
                                   std::vector<VertexId>* out_neighbors) {
  // The PR 3 implementation, verbatim: three scratch vectors allocated per
  // call, full adjacency-probing connectivity BFS per candidate.
  const auto connected = [&g](std::span<const VertexId> nodes) {
    const int n = static_cast<int>(nodes.size());
    if (n <= 1) return true;
    uint32_t visited = 1u;
    uint32_t frontier = 1u;
    while (frontier != 0) {
      uint32_t next = 0;
      for (int i = 0; i < n; ++i) {
        if (!((frontier >> i) & 1u)) continue;
        for (int j = 0; j < n; ++j) {
          if (!((visited >> j) & 1u) && g.HasEdge(nodes[i], nodes[j])) {
            next |= 1u << j;
          }
        }
      }
      visited |= next;
      frontier = next;
    }
    return visited == (1u << n) - 1u;
  };

  const int d = static_cast<int>(state.size());
  std::vector<VertexId> base(d - 1);
  std::vector<VertexId> candidate(d);
  std::vector<VertexId> additions;  // distinct v_in candidates per v_out

  for (int out_idx = 0; out_idx < d; ++out_idx) {
    for (int i = 0, j = 0; i < d; ++i) {
      if (i != out_idx) base[j++] = state[i];
    }
    additions.clear();
    for (VertexId v : base) {
      for (VertexId w : g.Neighbors(v)) {
        if (std::find(state.begin(), state.end(), w) == state.end()) {
          additions.push_back(w);
        }
      }
    }
    std::sort(additions.begin(), additions.end());
    additions.erase(std::unique(additions.begin(), additions.end()),
                    additions.end());

    for (VertexId w : additions) {
      std::merge(base.begin(), base.end(), &w, &w + 1, candidate.begin());
      if (connected(candidate)) {
        out_neighbors->insert(out_neighbors->end(), candidate.begin(),
                              candidate.end());
      }
    }
  }
}

template <class G>
uint64_t SubgraphStateDegree(const G& g, std::span<const VertexId> state,
                             GdScratch& scratch) {
  return EnumerateGdNeighbors(g, state, nullptr, scratch);
}

template <class G>
void SubgraphWalkT<G>::Reset(Rng& rng) {
  ResetInRange(rng, 0, g_->NumNodes());
}

template <class G>
void SubgraphWalkT<G>::ResetInRange(Rng& rng, VertexId lo, VertexId hi) {
  // Grow a connected d-set from a random start node in [lo, hi) by
  // repeatedly adding a random neighbor of a random member (the grown set
  // may leave the range — the range only anchors the start). Retry from
  // scratch if the region around the start is too small (cannot happen in
  // a connected graph with n > d, but the loop also guards against
  // pathological RNG luck).
  while (true) {
    nodes_.clear();
    nodes_.push_back(lo + static_cast<VertexId>(rng.UniformInt(hi - lo)));
    int guard = 0;
    while (static_cast<int>(nodes_.size()) < d_ && guard++ < 16 * d_) {
      const VertexId anchor = nodes_[rng.UniformInt(nodes_.size())];
      const uint32_t deg = g_->Degree(anchor);
      if (deg == 0) break;
      const VertexId w =
          g_->Neighbor(anchor, static_cast<uint32_t>(rng.UniformInt(deg)));
      if (std::find(nodes_.begin(), nodes_.end(), w) == nodes_.end()) {
        nodes_.push_back(w);
      }
    }
    if (static_cast<int>(nodes_.size()) == d_) break;
  }
  std::sort(nodes_.begin(), nodes_.end());
  prev_.clear();
  neighbors_valid_ = false;
}

template <class G>
void SubgraphWalkT<G>::Step(Rng& rng) {
  EnsureNeighbors();
  const size_t count = neighbors_.size() / d_;
  assert(count > 0 && "state with no G(d) neighbors in a connected graph");

  size_t pick = rng.UniformInt(count);
  if (nb_ && !prev_.empty() && count >= 2) {
    // Uniform over neighbors excluding the previous state.
    auto is_prev = [this](size_t idx) {
      return std::equal(prev_.begin(), prev_.end(),
                        neighbors_.begin() + idx * d_);
    };
    while (is_prev(pick)) pick = rng.UniformInt(count);
  }

  prev_ = nodes_;
  nodes_.assign(neighbors_.begin() + pick * d_,
                neighbors_.begin() + (pick + 1) * d_);
  neighbors_valid_ = false;
}

template <class G>
uint64_t SubgraphWalkT<G>::DegreeOfState(
    std::span<const VertexId> state_nodes) const {
  return SubgraphStateDegree(*g_, state_nodes, scratch_);
}

// The policy family is closed (graph/access.h): full access and crawl
// access. Instantiating here keeps the hot path out of every includer
// while still compiling both policies with full optimization context.
template bool InducedSubgraphConnected<Graph>(const Graph&,
                                              std::span<const VertexId>);
template bool InducedSubgraphConnected<CrawlAccess>(
    const CrawlAccess&, std::span<const VertexId>);
template uint64_t EnumerateGdNeighbors<Graph>(const Graph&,
                                              std::span<const VertexId>,
                                              std::vector<VertexId>*,
                                              GdScratch&);
template uint64_t EnumerateGdNeighbors<CrawlAccess>(
    const CrawlAccess&, std::span<const VertexId>, std::vector<VertexId>*,
    GdScratch&);
template uint64_t EnumerateGdNeighborsWithRows<Graph>(
    const Graph&, std::span<const VertexId>, const uint32_t*,
    std::vector<VertexId>*, GdScratch&);
template uint64_t EnumerateGdNeighborsWithRows<CrawlAccess>(
    const CrawlAccess&, std::span<const VertexId>, const uint32_t*,
    std::vector<VertexId>*, GdScratch&);
template uint64_t SubgraphStateDegree<Graph>(const Graph&,
                                             std::span<const VertexId>,
                                             GdScratch&);
template uint64_t SubgraphStateDegree<CrawlAccess>(const CrawlAccess&,
                                                   std::span<const VertexId>,
                                                   GdScratch&);
template bool InducedSubgraphConnected<ShardedAccess>(
    const ShardedAccess&, std::span<const VertexId>);
template uint64_t EnumerateGdNeighbors<ShardedAccess>(
    const ShardedAccess&, std::span<const VertexId>, std::vector<VertexId>*,
    GdScratch&);
template uint64_t EnumerateGdNeighborsWithRows<ShardedAccess>(
    const ShardedAccess&, std::span<const VertexId>, const uint32_t*,
    std::vector<VertexId>*, GdScratch&);
template uint64_t SubgraphStateDegree<ShardedAccess>(
    const ShardedAccess&, std::span<const VertexId>, GdScratch&);
template class SubgraphWalkT<Graph>;
template class SubgraphWalkT<CrawlAccess>;
template class SubgraphWalkT<ShardedAccess>;

}  // namespace grw
