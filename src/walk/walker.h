// Common interface for random walks on the subgraph relationship graph G(d).
//
// A StateWalker's state is a connected induced d-node subgraph of G (a node
// of G(d), paper Section 2.1); Step() moves to a uniformly random neighbor
// in G(d) — or, in non-backtracking mode (paper Section 4.2), a uniformly
// random neighbor excluding the previous state unless that is the only
// neighbor. The estimator (core/estimator.h) consumes l = k-d+1 consecutive
// states per sample.
//
// Degree accounting: the expanded-chain stationary weight of a window needs
// the G(d)-degree of each *interior* state (Theorem 2). Degrees are exposed
// via StateDegree() for the current state; the estimator snapshots them as
// the window slides.

#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// Abstract random walk over G(d).
class StateWalker {
 public:
  virtual ~StateWalker() = default;

  /// Dimension d of the relationship graph this walk runs on.
  virtual int d() const = 0;

  /// Re-initializes the walk at a (roughly uniform) random starting state.
  /// The initial distribution does not affect asymptotic unbiasedness
  /// (SLLN, paper Theorem 1).
  virtual void Reset(Rng& rng) = 0;

  /// Reset with the starting state anchored at a node drawn uniformly
  /// from [lo, hi) — locality-aware seeding for sharded storage: a chain
  /// anchored in its assigned shard's vertex range begins (and, on
  /// degree-relabeled graphs, tends to stay) in-shard. A LOCALITY HINT,
  /// not a correctness knob: it changes only the initial distribution,
  /// which the SLLN note above already covers, so estimates remain
  /// asymptotically unbiased — but they are not bit-identical to
  /// default-seeded runs, which is why the engine keeps it opt-in. The
  /// default implementation ignores the range and falls back to Reset;
  /// all built-in walks override it. Requires lo < hi <= NumNodes().
  virtual void ResetInRange(Rng& rng, VertexId lo, VertexId hi) {
    (void)lo;
    (void)hi;
    Reset(rng);
  }

  /// Advances one transition of the walk.
  virtual void Step(Rng& rng) = 0;

  /// The d graph nodes of the current state. The span is valid until the
  /// next Step()/Reset().
  virtual std::span<const VertexId> Nodes() const = 0;

  /// Degree of the current state in G(d): number of neighboring states.
  /// O(1) for d <= 2; for d >= 3 this is the size of the enumerated
  /// neighbor set (computed lazily, cached until the state changes).
  virtual uint64_t StateDegree() const = 0;

  /// Whether Step() avoids backtracking to the previous state.
  virtual bool non_backtracking() const = 0;
};

}  // namespace grw
