#include "walk/batched_walk.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <type_traits>

#include "graph/adjacency.h"

namespace grw {

namespace {

// Whether the access policy exposes the raw CSR (Graph does; CrawlAccess
// deliberately does not — a crawler may only touch what it fetched, and
// even an advisory prefetch of unfetched rows would be out of character).
template <class G>
constexpr bool kHasRawCsr = requires(const G& g) {
  g.RawOffsets();
  g.RawNeighbors();
};

}  // namespace

template <class G>
BatchedWalkT<G>::BatchedWalkT(const G& g, int d, int lanes,
                              bool non_backtracking)
    : access_(static_cast<size_t>(lanes < 0 ? 0 : lanes), &g),
      shared_access_(true),
      d_(d),
      lanes_(lanes),
      nb_(non_backtracking) {
  ValidateShape();
}

template <class G>
BatchedWalkT<G>::BatchedWalkT(std::span<const G* const> lane_access, int d,
                              bool non_backtracking)
    : access_(lane_access.begin(), lane_access.end()),
      shared_access_(false),
      d_(d),
      lanes_(static_cast<int>(lane_access.size())),
      nb_(non_backtracking) {
  ValidateShape();
}

template <class G>
void BatchedWalkT<G>::ValidateShape() {
  if (lanes_ < 1) {
    throw std::invalid_argument("BatchedWalk: need at least one lane");
  }
  if (d_ < 1 || d_ > 32) {
    throw std::invalid_argument("BatchedWalk: need 1 <= d <= 32");
  }
  const G& g = *access_[0];
  if ((d_ == 1 && g.NumNodes() < 2) ||
      (d_ == 2 && (g.NumNodes() < 3 || g.NumEdges() < 2)) ||
      (d_ >= 3 && g.NumNodes() < static_cast<VertexId>(d_ + 1))) {
    throw std::invalid_argument("BatchedWalk: graph too small for d-walk");
  }

  const size_t slots = static_cast<size_t>(lanes_) * d_;
  nodes_.assign(slots, 0);
  prev_.assign(slots, 0);
  has_prev_.assign(lanes_, 0);
  if (d_ >= 3) {
    neighbors_.resize(lanes_);
    neighbors_valid_.assign(lanes_, 0);
    state_rows_.assign(static_cast<size_t>(lanes_) * 32, 0);
    rows_ready_.assign(lanes_, 0);
    grow_.reserve(d_);
  }
}

template <class G>
void BatchedWalkT<G>::ResetLane(int lane, Rng& rng) {
  const G& g = Access(lane);
  VertexId* nodes = nodes_.data() + static_cast<size_t>(lane) * d_;
  has_prev_[lane] = 0;

  if (d_ == 1) {
    // NodeWalkT::Reset, verbatim.
    nodes[0] = static_cast<VertexId>(rng.UniformInt(g.NumNodes()));
    return;
  }
  if (d_ == 2) {
    // EdgeWalkT::Reset, verbatim: a random endpoint's random incident
    // edge, canonicalized (min, max).
    const VertexId u =
        static_cast<VertexId>(rng.UniformInt(g.NumNodes()));
    const VertexId w = g.Neighbor(
        u, static_cast<uint32_t>(rng.UniformInt(g.Degree(u))));
    nodes[0] = u < w ? u : w;
    nodes[1] = u < w ? w : u;
    return;
  }

  // SubgraphWalkT::Reset, verbatim: grow a connected d-set from a random
  // start node; retry from scratch on pathological luck.
  while (true) {
    grow_.clear();
    grow_.push_back(static_cast<VertexId>(rng.UniformInt(g.NumNodes())));
    int guard = 0;
    while (static_cast<int>(grow_.size()) < d_ && guard++ < 16 * d_) {
      const VertexId anchor = grow_[rng.UniformInt(grow_.size())];
      const uint32_t deg = g.Degree(anchor);
      if (deg == 0) break;
      const VertexId w =
          g.Neighbor(anchor, static_cast<uint32_t>(rng.UniformInt(deg)));
      if (std::find(grow_.begin(), grow_.end(), w) == grow_.end()) {
        grow_.push_back(w);
      }
    }
    if (static_cast<int>(grow_.size()) == d_) break;
  }
  std::sort(grow_.begin(), grow_.end());
  std::copy(grow_.begin(), grow_.end(), nodes);
  neighbors_valid_[lane] = 0;
  rows_ready_[lane] = 0;
}

template <class G>
void BatchedWalkT<G>::PrefetchLaneRows(int lane) const {
  if constexpr (kHasRawCsr<G>) {
    const G& g = Access(lane);
    const auto offsets = g.RawOffsets();
    const auto neighbors = g.RawNeighbors();
    const std::span<const VertexId> state = LaneNodes(lane);
    for (const VertexId u : state) {
      __builtin_prefetch(neighbors.data() + offsets[u]);
    }
  } else {
    (void)lane;
  }
}

template <class G>
void BatchedWalkT<G>::BuildStateRowsBatch(
    std::span<const int> lanes_todo) const {
  // Full access with an index only: W * C(d,2) internal-adjacency probes
  // for the whole batch, vectorized signature rejection first, exact
  // HasEdge confirmation only for the admitted few. Identical rows to
  // probing pairwise — the signature has no false negatives.
  if constexpr (std::is_same_v<G, Graph>) {
    const AdjacencyIndex* index = access_[0]->adjacency_index();
    assert(shared_access_ && index != nullptr);
    const int pairs_per_lane = d_ * (d_ - 1) / 2;
    const int group = std::max(1, 64 / pairs_per_lane);
    VertexId us[64];
    VertexId vs[64];
    for (size_t first = 0; first < lanes_todo.size();
         first += static_cast<size_t>(group)) {
      const size_t last =
          std::min(lanes_todo.size(), first + static_cast<size_t>(group));
      int count = 0;
      for (size_t t = first; t < last; ++t) {
        const VertexId* state =
            nodes_.data() + static_cast<size_t>(lanes_todo[t]) * d_;
        for (int i = 0; i < d_; ++i) {
          for (int j = i + 1; j < d_; ++j) {
            us[count] = state[i];
            vs[count] = state[j];
            ++count;
          }
        }
      }
      uint64_t admitted = index->PairProbeBatch(us, vs, count);
      int p = 0;
      for (size_t t = first; t < last; ++t) {
        const int lane = lanes_todo[t];
        const VertexId* state =
            nodes_.data() + static_cast<size_t>(lane) * d_;
        uint32_t* rows = state_rows_.data() + static_cast<size_t>(lane) * 32;
        for (int i = 0; i < d_; ++i) rows[i] = 0;
        for (int i = 0; i < d_; ++i) {
          for (int j = i + 1; j < d_; ++j, ++p) {
            if (((admitted >> p) & 1u) != 0 &&
                access_[0]->HasEdge(state[i], state[j])) {
              rows[i] |= 1u << j;
              rows[j] |= 1u << i;
            }
          }
        }
        rows_ready_[lane] = 1;
      }
    }
  } else {
    (void)lanes_todo;
    assert(false && "row batching is a full-access-only shortcut");
  }
}

template <class G>
void BatchedWalkT<G>::PrepareLanes(std::span<const uint8_t> active) {
  const auto lane_active = [&](int lane) {
    return active.empty() || active[lane] != 0;
  };
  if (d_ <= 2) {
    // One pass of advisory prefetches: each lane's current rows are in
    // flight before the per-lane RNG work touches them.
    for (int lane = 0; lane < lanes_; ++lane) {
      if (lane_active(lane)) PrefetchLaneRows(lane);
    }
    return;
  }

  todo_.clear();
  for (int lane = 0; lane < lanes_; ++lane) {
    if (lane_active(lane) && neighbors_valid_[lane] == 0) {
      todo_.push_back(lane);
    }
  }
  if (todo_.empty()) return;

  if constexpr (std::is_same_v<G, Graph>) {
    if (shared_access_ && access_[0]->adjacency_index() != nullptr) {
      BuildStateRowsBatch(todo_);
    }
  }

  // Enumerate stale lanes, each overlapping the next lane's row fetch.
  PrefetchLaneRows(todo_[0]);
  for (size_t t = 0; t < todo_.size(); ++t) {
    if (t + 1 < todo_.size()) PrefetchLaneRows(todo_[t + 1]);
    EnsureLane(todo_[t]);
  }
}

template <class G>
void BatchedWalkT<G>::EnsureLane(int lane) const {
  if (neighbors_valid_[lane] != 0) return;
  std::vector<VertexId>& nbrs = neighbors_[lane];
  nbrs.clear();
  if (rows_ready_[lane] != 0) {
    EnumerateGdNeighborsWithRows(
        Access(lane), LaneNodes(lane),
        state_rows_.data() + static_cast<size_t>(lane) * 32, &nbrs,
        scratch_);
  } else {
    EnumerateGdNeighbors(Access(lane), LaneNodes(lane), &nbrs, scratch_);
  }
  neighbors_valid_[lane] = 1;
  rows_ready_[lane] = 0;  // consumed; stale after the next transition
}

template <class G>
uint64_t BatchedWalkT<G>::LaneStateDegree(int lane) const {
  const G& g = Access(lane);
  const VertexId* nodes = nodes_.data() + static_cast<size_t>(lane) * d_;
  if (d_ == 1) return g.Degree(nodes[0]);
  if (d_ == 2) {
    return static_cast<uint64_t>(g.Degree(nodes[0])) + g.Degree(nodes[1]) -
           2;
  }
  EnsureLane(lane);
  return neighbors_[lane].size() / d_;
}

template <class G>
void BatchedWalkT<G>::StepLane(int lane, Rng& rng) {
  const G& g = Access(lane);
  VertexId* nodes = nodes_.data() + static_cast<size_t>(lane) * d_;
  VertexId* prev = prev_.data() + static_cast<size_t>(lane) * d_;

  if (d_ == 1) {
    // NodeWalkT::Step, verbatim.
    const uint32_t deg = g.Degree(nodes[0]);
    VertexId next =
        g.Neighbor(nodes[0], static_cast<uint32_t>(rng.UniformInt(deg)));
    if (nb_ && has_prev_[lane] != 0 && deg >= 2) {
      while (next == prev[0]) {
        next = g.Neighbor(nodes[0],
                          static_cast<uint32_t>(rng.UniformInt(deg)));
      }
    }
    prev[0] = nodes[0];
    has_prev_[lane] = 1;
    nodes[0] = next;
    return;
  }

  if (d_ == 2) {
    // EdgeWalkT::Step + SampleNeighborState, verbatim (same draw order).
    const VertexId u = nodes[0];
    const VertexId v = nodes[1];
    const uint64_t deg =
        static_cast<uint64_t>(g.Degree(u)) + g.Degree(v) - 2;
    VertexId a;
    VertexId b;
    while (true) {
      const uint64_t du = g.Degree(u);
      const uint64_t dv = g.Degree(v);
      while (true) {
        const bool pick_u = rng.UniformInt(du + dv) < du;
        const VertexId base = pick_u ? u : v;
        const VertexId other = pick_u ? v : u;
        const VertexId w = g.Neighbor(
            base, static_cast<uint32_t>(rng.UniformInt(g.Degree(base))));
        if (w == other) continue;
        a = base < w ? base : w;
        b = base < w ? w : base;
        break;
      }
      if (nb_ && has_prev_[lane] != 0 && deg >= 2 && a == prev[0] &&
          b == prev[1]) {
        continue;
      }
      break;
    }
    prev[0] = u;
    prev[1] = v;
    has_prev_[lane] = 1;
    nodes[0] = a;
    nodes[1] = b;
    return;
  }

  // SubgraphWalkT::Step, verbatim over the lane's cached neighbor set.
  EnsureLane(lane);
  const std::vector<VertexId>& nbrs = neighbors_[lane];
  const size_t count = nbrs.size() / d_;
  assert(count > 0 && "state with no G(d) neighbors in a connected graph");

  size_t pick = rng.UniformInt(count);
  if (nb_ && has_prev_[lane] != 0 && count >= 2) {
    const auto is_prev = [&](size_t idx) {
      return std::equal(prev, prev + d_, nbrs.begin() + idx * d_);
    };
    while (is_prev(pick)) pick = rng.UniformInt(count);
  }

  std::copy(nodes, nodes + d_, prev);
  has_prev_[lane] = 1;
  std::copy(nbrs.begin() + pick * d_, nbrs.begin() + (pick + 1) * d_,
            nodes);
  neighbors_valid_[lane] = 0;
  rows_ready_[lane] = 0;
}

// Closed policy family (graph/access.h): full access + crawl access.
template class BatchedWalkT<Graph>;
template class BatchedWalkT<CrawlAccess>;

}  // namespace grw
