// Batched walk kernel: W independent G(d) chains advanced in lockstep.
//
// The scalar walkers (node_walk.h, edge_walk.h, subgraph_walk.h) advance
// one chain at a time, so every cache miss on a CSR row stalls the whole
// pipeline. This kernel keeps W chains ("lanes") in structure-of-arrays
// layout — one flat array per walk field (current nodes, previous nodes,
// backtracking flags, neighbor caches) instead of an array of walker
// objects — and advances all lanes per step round:
//
//   * PrepareLanes() does the RNG-free heavy lifting for every lane at
//     once: for d >= 3 it enumerates each stale lane's G(d) neighbor set
//     while software-prefetching the next lane's CSR rows, overlapping
//     one lane's memory latency with another lane's compute; for d <= 2
//     it prefetches each lane's current adjacency row.
//   * With full access and an AdjacencyIndex attached, the per-lane
//     state-adjacency rows are built with one *vectorized* pass of
//     Bloom-signature rejection over the whole lane batch
//     (AdjacencyIndex::PairProbeBatch, AVX2 with scalar fallback): the
//     W * C(d,2) probes of a step round become a handful of vector ops
//     plus exact confirmation of the few admitted pairs.
//   * StepLane() then spends each lane's RNG draws exactly as the scalar
//     walker would.
//
// Lane <-> chain equivalence contract: lane j driven by an Rng seeded s_j
// reproduces, bit for bit, the state sequence of the corresponding scalar
// walker driven by an Rng seeded s_j — same RNG draw order, same
// tie-breaking, same non-backtracking rejection loops. The batching
// only reorders *memory traffic*, never randomness. This is what lets the
// engine swap batched kernels in behind EngineOptions::batch while
// keeping estimates and stopping points bit-identical at any thread
// count (tests/batched_walk_test.cpp holds the contract down to every
// transition).
//
// Crawl lanes (G = CrawlAccess): each lane reads through its own private
// access object, and the kernel makes exactly the same access calls in
// exactly the same per-lane order as the scalar walker — no signature
// shortcuts, no prefetch-driven fetches — so per-lane cache hit rates,
// query accounting and budget verdicts match the scalar chains they
// replace.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/access.h"
#include "walk/subgraph_walk.h"

namespace grw {

/// W-lane batched random walk on G(d) through access policy G.
/// Instantiated for Graph and CrawlAccess in batched_walk.cpp.
template <class G = Graph>
class BatchedWalkT {
 public:
  /// All lanes share one access object (full-access engine, benches).
  /// Validation matches the scalar walkers: throws std::invalid_argument
  /// when the graph is too small for a d-walk or lanes < 1.
  BatchedWalkT(const G& g, int d, int lanes, bool non_backtracking = false);

  /// Lane j reads through *lane_access[j] (crawl engine: one private
  /// crawler per lane). lanes() == lane_access.size().
  BatchedWalkT(std::span<const G* const> lane_access, int d,
               bool non_backtracking = false);

  int d() const { return d_; }
  int lanes() const { return lanes_; }
  bool non_backtracking() const { return nb_; }

  /// Re-initializes lane `lane` at a random starting state — the same
  /// draws, from `rng`, as the scalar walker's Reset.
  void ResetLane(int lane, Rng& rng);

  /// RNG-free preparation of one step round for the lanes with
  /// active[lane] != 0 (pass an empty span for "all lanes"): neighbor
  /// enumeration (d >= 3, with cross-lane prefetch and batched signature
  /// rejection where the access allows) or adjacency-row prefetch
  /// (d <= 2). Optional — StepLane falls back to per-lane preparation —
  /// but this is where the batching wins its throughput.
  void PrepareLanes(std::span<const uint8_t> active = {});

  /// One transition of lane `lane`, spending draws from `rng` exactly as
  /// the scalar walker's Step would.
  void StepLane(int lane, Rng& rng);

  /// The d nodes of lane `lane`'s current state (sorted for d != 2;
  /// canonical (min, max) for d = 2). Valid until the lane next steps.
  std::span<const VertexId> LaneNodes(int lane) const {
    return {nodes_.data() + static_cast<size_t>(lane) * d_,
            static_cast<size_t>(d_)};
  }

  /// Degree of lane `lane`'s state in G(d); for d >= 3 this enumerates
  /// (and caches) the lane's neighbor set like the scalar walker.
  uint64_t LaneStateDegree(int lane) const;

 private:
  const G& Access(int lane) const { return *access_[lane]; }
  void ValidateShape();
  void EnsureLane(int lane) const;
  void PrefetchLaneRows(int lane) const;
  void BuildStateRowsBatch(std::span<const int> lanes_todo) const;

  std::vector<const G*> access_;  // per lane (may all alias one object)
  bool shared_access_;  // one object behind every lane: cross-lane probe
                        // batches may mix lanes (one signature array)
  int d_;
  int lanes_;
  bool nb_;

  std::vector<VertexId> nodes_;    // lanes * d, current states
  std::vector<VertexId> prev_;     // lanes * d, previous states
  std::vector<uint8_t> has_prev_;  // per lane

  // d >= 3 only: per-lane cached neighbor sets (flattened, d ids per
  // neighbor) and their validity, per-lane state-adjacency rows filled by
  // BuildStateRowsBatch, and the shared enumeration scratch. All mutable:
  // caches behind the const StateDegree path, like the scalar walker.
  mutable std::vector<std::vector<VertexId>> neighbors_;
  mutable std::vector<uint8_t> neighbors_valid_;
  mutable std::vector<uint32_t> state_rows_;  // lanes * 32
  mutable std::vector<uint8_t> rows_ready_;   // per lane
  mutable GdScratch scratch_;
  mutable std::vector<int> todo_;  // PrepareLanes work list
  std::vector<VertexId> grow_;     // ResetLane's partial state
};

/// The full-access kernel.
using BatchedWalk = BatchedWalkT<Graph>;

}  // namespace grw
