#include "engine/chain_pool.h"

#include "util/parallel.h"  // HardwareThreads

namespace grw {

ChainPool::ChainPool(unsigned threads) {
  if (threads == 0) threads = HardwareThreads();
  workers_.reserve(threads - 1);
  for (unsigned t = 0; t + 1 < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ChainPool::~ChainPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

ChainPool& ChainPool::Shared() {
  static ChainPool pool;
  return pool;
}

namespace {
// The pool whose job the current thread is executing, if any: lets a
// re-entrant ForEach on the same pool fall back to inline execution
// instead of deadlocking on the in-flight job. RAII so an escaping
// exception (possible on the serial path, which does not catch) still
// restores the outer value.
thread_local const ChainPool* g_draining_pool = nullptr;

class DrainScope {
 public:
  explicit DrainScope(const ChainPool* pool) : saved_(g_draining_pool) {
    g_draining_pool = pool;
  }
  ~DrainScope() { g_draining_pool = saved_; }
  DrainScope(const DrainScope&) = delete;
  DrainScope& operator=(const DrainScope&) = delete;

 private:
  const ChainPool* saved_;
};

}  // namespace

void ChainPool::DrainIndices(void (*invoke)(void*, size_t), void* ctx,
                            size_t n) {
  const DrainScope scope(this);
  for (size_t i = next_index_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_index_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      invoke(ctx, i);
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_exception_) first_exception_ = std::current_exception();
      // Keep claiming: remaining indices must be consumed so the job ends.
    }
  }
}

void ChainPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    void (*invoke)(void*, size_t) = nullptr;
    void* ctx = nullptr;
    size_t n = 0;
    bool participate = false;
    {
      MutexLock lock(mu_);
      // Explicit wait loop: the analysis checks shutdown_/job_id_ against
      // mu_ here, which a predicate lambda would hide from it.
      while (!shutdown_ && job_id_ <= seen) job_cv_.Wait(mu_);
      if (shutdown_) return;
      // The submitter waits for every worker before posting the next job,
      // so jobs are observed strictly in order and these fields are stable
      // until this worker reports finished.
      seen = job_id_;
      if (job_slots_ > 0) {
        --job_slots_;
        participate = true;
        invoke = job_invoke_;
        ctx = job_ctx_;
        n = job_n_;
      }
    }
    if (participate) DrainIndices(invoke, ctx, n);
    {
      MutexLock lock(mu_);
      if (++finished_workers_ == workers_.size()) done_cv_.NotifyOne();
    }
  }
}

void ChainPool::RunJob(size_t n, void (*invoke)(void*, size_t), void* ctx,
                       unsigned max_threads) {
  if (n == 0) return;
  if (g_draining_pool == this) {
    // Re-entrant ForEach from inside one of this pool's bodies: the
    // outer job holds submit_mu_ and is waiting on this thread, so run
    // the nested job inline instead of deadlocking.
    for (size_t i = 0; i < n; ++i) invoke(ctx, i);
    return;
  }
  MutexLock submit_lock(submit_mu_);
  if (max_threads == 0) max_threads = NumThreads();
  if (workers_.empty() || max_threads <= 1 || n == 1) {
    // Serial fallback still holds submit_mu_, so mark this thread as
    // draining: a nested ForEach must take the inline branch above
    // rather than re-locking submit_mu_ on this thread.
    const DrainScope scope(this);
    for (size_t i = 0; i < n; ++i) invoke(ctx, i);
    return;
  }
  {
    MutexLock lock(mu_);
    job_invoke_ = invoke;
    job_ctx_ = ctx;
    job_n_ = n;
    job_slots_ = max_threads - 1;  // the submitter takes one slot
    finished_workers_ = 0;
    first_exception_ = nullptr;
    next_index_.store(0, std::memory_order_relaxed);
    ++job_id_;
  }
  job_cv_.NotifyAll();
  DrainIndices(invoke, ctx, n);
  std::exception_ptr rethrow;
  {
    MutexLock lock(mu_);
    while (finished_workers_ != workers_.size()) done_cv_.Wait(mu_);
    rethrow = first_exception_;
    first_exception_ = nullptr;
  }
  if (rethrow) std::rethrow_exception(rethrow);
}

}  // namespace grw
