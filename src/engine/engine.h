// Parallel estimation engine: one owner for multi-chain execution.
//
// The paper's promise is crawl-budget efficiency — estimate graphlet
// concentrations from one random walk instead of full graph access — and
// the practical question a crawler faces is "how many steps are enough?"
// (Section 5.2 / Figure 6). The engine answers it operationally: it runs R
// independent chains on a persistent ChainPool, merges their accumulators
// after every round (EstimateResult is additive across chains), monitors
// convergence online with batch means (core/batch_means.h, treating each
// (chain, round) segment as one batch), and stops as soon as the relative
// standard error of every non-negligible concentration falls below the
// target — or at the per-chain step cap, whichever comes first.
//
// Determinism contract: chain c's RNG stream is derived from
// (base_seed, chain_offset + c) alone, rounds advance every chain by the
// same step counts, and the stopping decision depends only on the merged
// round snapshots — so results (including where the engine stops) are
// bit-identical at any thread count.
//
// Crawl mode (EngineOptions::crawl): each chain owns a private CrawlAccess
// (graph/access.h) — an LRU neighbor cache plus per-query accounting — and
// the estimator stack reads the graph exclusively through it (static
// dispatch, so full-access runs compile to the unchanged hot path). A
// total distinct-query budget B is split across chains in fixed shares;
// each chain stops itself the moment its share is spent, inside its own
// run loop — a per-chain decision that no thread schedule can perturb, so
// budget-stopped results are bit-identical at any thread count too.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/estimator.h"
#include "engine/chain_pool.h"
#include "graph/access.h"
#include "graph/graph.h"
#include "graph/sharded_access.h"

namespace grw {

/// Per-round progress snapshot, delivered on the calling thread.
struct EngineProgress {
  int round = 0;
  int chains = 0;
  /// The lockstep schedule position: steps every chain was *offered* so
  /// far. In crawl mode a budget-exhausted chain stops short of it.
  uint64_t steps_per_chain = 0;
  uint64_t max_steps = 0;
  /// Steps actually taken, summed across chains (equals
  /// steps_per_chain * chains except for budget-stalled chains).
  uint64_t total_steps = 0;
  double seconds = 0.0;
  /// Aggregate walk throughput, transitions per second across all chains.
  double steps_per_second = 0.0;
  /// Current convergence metric: max over monitored types of
  /// SE_i / c_i. Infinity before two batches exist; NaN while no type
  /// has accumulated weight.
  double max_rel_error = 0.0;
};

/// Engine configuration shared by all entry points.
struct EngineOptions {
  /// Number of independent chains.
  int chains = 1;
  /// Concurrency cap; 0 = every thread of the pool.
  unsigned threads = 0;
  /// Per-chain step cap (the paper's sample budget n).
  uint64_t max_steps = 100000;
  /// Chain c is seeded DeriveSeed(base_seed, chain_offset + c).
  uint64_t base_seed = 42;
  uint64_t chain_offset = 0;
  /// Early-stopping target for the batch-means relative standard error
  /// (an online stand-in for the NRMSE the figures report). <= 0 runs
  /// exactly max_steps per chain.
  double target_nrmse = 0.0;
  /// Steps per convergence round; 0 picks DefaultRoundSteps(max_steps)
  /// when early stopping or progress reporting is on, else one round.
  uint64_t round_steps = 0;

  /// The auto round size: max_steps split into ~32 rounds, at least 256
  /// steps each. Exposed so callers that pin round_steps (e.g. the CLI,
  /// to keep batch structure independent of progress reporting) stay in
  /// sync with the engine's own default.
  static uint64_t DefaultRoundSteps(uint64_t max_steps) {
    const uint64_t rounds = max_steps / 32;
    return rounds < 256 ? 256 : rounds;
  }
  /// Types with merged concentration below this floor are not gated on
  /// (their relative error is dominated by shot noise).
  double min_concentration = 1e-3;

  /// Restricted-access (crawl) simulation of the paper's OSN setting.
  struct CrawlConfig {
    /// Route every chain through its own CrawlAccess instead of the raw
    /// Graph. Estimates are bit-identical either way (gated in CI by
    /// bench_access --check-identical); only cost accounting and the
    /// budget stop are added.
    bool enabled = false;
    /// Total distinct neighbor-list fetches across all chains; 0 = no
    /// budget. Split into fixed per-chain shares (remainder to the first
    /// chains, floor of 1), so the stop point is thread-count invariant.
    uint64_t budget_queries = 0;
    /// Per-chain LRU capacity in cached lists; 0 = unbounded.
    uint64_t cache_entries = 0;
    /// Simulated API latency per fetch, microseconds (accumulated in
    /// stats, never slept).
    double latency_us = 0.0;
    /// Transient-fetch-failure model (CrawlAccess::Options::FailureModel):
    /// per-attempt failure probability, bounded retries with exponential
    /// backoff + jitter. Cost-only — estimates stay bit-identical; the
    /// retries / giveups / backoff totals land in EngineResult::access.
    /// Each chain gets a private failure RNG seeded
    /// DeriveSeed(fail_seed, global chain index): deterministic at any
    /// thread count, and the walk RNG stream is never consumed.
    double fail_prob = 0.0;
    int fail_max_retries = 4;
    double fail_backoff_us = 1000.0;
    double fail_backoff_max_us = 1e6;
    uint64_t fail_seed = 0x6661696c5eedULL;  // "fail" seed
  };
  CrawlConfig crawl;

  /// Batched walk kernels (walk/batched_walk.h): chains are grouped into
  /// units of `lanes` chains advanced in lockstep by one task, with
  /// cross-lane prefetch and vectorized signature rejection. Estimates,
  /// stopping points and crawl accounting are bit-identical to the scalar
  /// path at any thread count — chain c keeps its RNG stream
  /// DeriveSeed(base_seed, chain_offset + c) regardless of which unit it
  /// lands in (tests/batched_walk_test.cpp gates this).
  struct BatchConfig {
    bool enabled = false;
    /// Lanes per unit; the last unit takes chains % lanes when the chain
    /// count does not divide evenly. 8 covers one AVX2 signature batch.
    int lanes = 8;
  };
  BatchConfig batch;

  /// Sharded out-of-core mode (the ShardStore engine constructor): every
  /// chain reads through its own ShardedAccess over the shared store.
  /// Estimates are bit-identical to a full-access run on the same graph
  /// at any resident budget and thread count — unless locality seeding
  /// is turned on, which trades that for fewer cross-shard faults.
  struct ShardedConfig {
    /// Anchor chain c's initial state in the vertex range of its
    /// affinity shard floor(c * num_shards / chains) — contiguous chain
    /// blocks per shard, so a budget-bound run starts with disjoint
    /// working sets instead of every chain faulting every shard at once.
    /// Changes the initial distribution only (still asymptotically
    /// unbiased, see StateWalker::ResetInRange) but NOT bit-identical to
    /// the default seeding — hence opt-in, and the CI identity gate runs
    /// with it off.
    bool locality_seeding = false;
  };
  ShardedConfig sharded;

  /// Invoked after every round with a progress snapshot.
  std::function<void(const EngineProgress&)> on_progress;

  /// Cooperative cancellation, polled at round boundaries (including
  /// before the first): return true to stop the run with whatever the
  /// chains accumulated so far — EngineResult::cancelled reports it, and
  /// the merged/per-chain results are a consistent snapshot of the last
  /// completed round (so a caller may inspect, report, or resume from
  /// them). The serve layer uses this for per-request deadlines;
  /// round_steps bounds the poll latency.
  std::function<bool()> cancel;

  /// Pool to run on; nullptr = ChainPool::Shared().
  ChainPool* pool = nullptr;
};

/// Chain `chain`'s fixed share of a total distinct-query budget split
/// across `chains` chains: floor(B/chains) each, remainder to the first
/// B % chains chains. Depends on the chain's global index alone (batched
/// lane grouping cannot move budget between chains) and the shares sum
/// exactly to `budget_queries` over chain in [0, chains). The engine
/// validates B >= chains, so every share is positive there.
uint64_t ChainBudgetShare(uint64_t budget_queries, int chains, int chain);

/// Outcome of one engine run.
struct EngineResult {
  /// All chains combined (weights/samples/steps summed, concentrations
  /// recomputed) — the estimate to report. Default-constructed (empty
  /// vectors) when the run executed nothing (chains or max_steps zero).
  EstimateResult merged;
  /// Final per-chain results, in chain order.
  std::vector<EstimateResult> per_chain;
  /// Batch-means standard error of each merged concentration; empty
  /// when the run produced fewer than two batches (single chain, single
  /// round: no spread information).
  std::vector<double> standard_errors;
  /// Final value of the convergence metric (see EngineProgress).
  double max_rel_error = 0.0;
  /// True when the target was reached before the step cap.
  bool converged = false;
  /// True when EngineOptions::cancel stopped the run early; merged and
  /// per-chain results cover the rounds completed before cancellation.
  bool cancelled = false;
  /// Crawl mode only: true once every chain spent its distinct-query
  /// share (the run stopped on budget rather than steps/convergence).
  bool budget_exhausted = false;
  /// Crawl mode only: per-query accounting summed across chains (in
  /// chain order), and the per-chain breakdown. Empty/zero otherwise.
  CrawlStats access;
  std::vector<CrawlStats> per_chain_access;
  /// Sharded mode only: the store's residency accounting at the end of
  /// the run (faults, hits, evictions, peak resident bytes). All-zero
  /// otherwise.
  ShardStats shards;
  int rounds = 0;
  /// Lockstep schedule position at the stop (budget-stalled chains may
  /// have taken fewer transitions; merged.steps is the actual total).
  uint64_t steps_per_chain = 0;
  double seconds = 0.0;
  double steps_per_second = 0.0;
};

/// Runs EngineOptions::chains independent GraphletEstimator chains of one
/// configuration and merges them.
class EstimationEngine {
 public:
  /// Validates eagerly: throws std::invalid_argument on a bad estimator
  /// configuration or chains < 0.
  EstimationEngine(const Graph& g, const EstimatorConfig& config,
                   EngineOptions options);

  /// Sharded out-of-core run: chains read through per-chain
  /// ShardedAccess over `store` (which must outlive the engine).
  /// Crawl and batch modes do not compose with sharded storage — the
  /// crawl cache simulates remote-API access and the batched kernels
  /// want one flat CSR — so either throws std::invalid_argument here.
  EstimationEngine(const ShardStore& store, const EstimatorConfig& config,
                   EngineOptions options);

  /// Executes the chains (round by round when convergence checking or
  /// progress reporting is enabled) and returns the merged outcome.
  EngineResult Run();

  const EstimatorConfig& config() const { return config_; }
  const EngineOptions& options() const { return options_; }

 private:
  EngineResult RunSharded();

  const Graph* g_ = nullptr;            // full-access / crawl modes
  const ShardStore* store_ = nullptr;   // sharded mode
  EstimatorConfig config_;
  EngineOptions options_;
};

/// Multi-size outcome: one merged result per registered graphlet size.
struct MultiSizeEngineResult {
  std::map<int, EstimateResult> merged;
  std::map<int, std::vector<double>> standard_errors;
  double max_rel_error = 0.0;
  /// True when every size's monitored types reached the target.
  bool converged = false;
  int rounds = 0;
  uint64_t steps_per_chain = 0;
  double seconds = 0.0;
  double steps_per_second = 0.0;
};

/// Engine entry point for MultiSizeEstimator: each chain is ONE shared
/// walk on G(d) feeding every size in `sizes`; convergence gates on all
/// sizes at once. Options are honored as in EstimationEngine, except
/// crawl mode (full access only; throws std::invalid_argument if
/// options.crawl.enabled — the multi-size estimator is not templated on
/// the access policy yet) and batch mode (throws likewise — the shared
/// multi-size walk has no batched kernel yet).
MultiSizeEngineResult RunMultiSizeEngine(const Graph& g, int d,
                                         const std::vector<int>& sizes,
                                         bool css, bool nb,
                                         const EngineOptions& options);

}  // namespace grw
