// Persistent worker pool for chain execution.
//
// Every accuracy figure in the paper fans out hundreds of independent
// Markov chains; before the engine existed each call site spawned (and
// joined) fresh std::threads per fan-out via util/parallel.h. ChainPool
// keeps one set of workers alive for the whole process and hands them
// successive jobs, so the engine's round-based convergence loop — which
// issues one fan-out per round — pays thread start-up cost once, not once
// per round.
//
// Determinism contract: indices are claimed dynamically, so *which worker*
// runs chain i varies between runs, but the engine derives every chain's
// RNG stream from (base_seed, chain index) alone and merges results in
// index order — results are bit-identical at any thread count.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/sync.h"

namespace grw {

/// Persistent thread pool dispatching indexed jobs to long-lived workers.
class ChainPool {
 public:
  /// Creates a pool with total concurrency `threads` (the calling thread
  /// participates in every job, so threads - 1 workers are spawned).
  /// threads == 0 means the hardware thread count.
  explicit ChainPool(unsigned threads = 0);
  ~ChainPool();

  ChainPool(const ChainPool&) = delete;
  ChainPool& operator=(const ChainPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  unsigned NumThreads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(i) for every i in [0, n), blocking until all complete.
  /// At most `max_threads` threads participate (0 = every pool thread);
  /// body must be safe to call concurrently for distinct i. Exceptions
  /// thrown by body are rethrown here (the first one observed).
  /// Jobs are serialized: concurrent ForEach calls from different threads
  /// queue up. A ForEach issued from inside one of this pool's own
  /// bodies runs its job inline on the calling thread (the outer job is
  /// waiting on that thread, so parallel dispatch would deadlock).
  template <typename Body>
  void ForEach(size_t n, Body&& body, unsigned max_threads = 0) {
    static_assert(std::is_invocable_v<Body&, size_t>,
                  "ChainPool body must be callable as body(size_t)");
    // Function-pointer trampoline: no std::function, no allocation; the
    // callable lives on the caller's stack for the duration of the job.
    RunJob(
        n,
        [](void* ctx, size_t i) {
          (*static_cast<std::remove_reference_t<Body>*>(ctx))(i);
        },
        &body, max_threads);
  }

  /// Process-wide pool at hardware concurrency, created on first use.
  static ChainPool& Shared();

 private:
  void RunJob(size_t n, void (*invoke)(void*, size_t), void* ctx,
              unsigned max_threads) GRW_EXCLUDES(submit_mu_, mu_);
  void WorkerLoop() GRW_EXCLUDES(mu_);
  // Claims indices until exhausted; records the first exception.
  void DrainIndices(void (*invoke)(void*, size_t), void* ctx, size_t n)
      GRW_EXCLUDES(mu_);

  // Immutable after the constructor: read by WorkerLoop (its own size)
  // and joined in the destructor without a lock.
  std::vector<std::thread> workers_;

  Mutex submit_mu_ GRW_ACQUIRED_BEFORE(mu_);  // serializes whole jobs

  Mutex mu_;           // guards the job slot below
  CondVar job_cv_;   // workers wait here for the next job
  CondVar done_cv_;  // the submitter waits here
  using JobFn = void (*)(void*, size_t);
  uint64_t job_id_ GRW_GUARDED_BY(mu_) = 0;
  size_t job_n_ GRW_GUARDED_BY(mu_) = 0;
  JobFn job_invoke_ GRW_GUARDED_BY(mu_) = nullptr;
  void* job_ctx_ GRW_GUARDED_BY(mu_) = nullptr;
  // Workers still allowed to join the job.
  unsigned job_slots_ GRW_GUARDED_BY(mu_) = 0;
  size_t finished_workers_ GRW_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_exception_ GRW_GUARDED_BY(mu_);
  bool shutdown_ GRW_GUARDED_BY(mu_) = false;

  std::atomic<size_t> next_index_{0};
};

}  // namespace grw
