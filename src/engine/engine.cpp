#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>

#include "core/batch_means.h"
#include "core/batched_estimator.h"
#include "core/multi_estimator.h"
#include "util/rng.h"
#include "util/timer.h"

namespace grw {

namespace {

// A unit the engine can drive: one or more engine chains advanced by one
// task. Scalar units hold one chain (one RNG stream); batched units hold
// a lane batch of chains walked in lockstep (BatchedEstimator) — but
// chain c keeps the RNG stream DeriveSeed(base_seed, first_stream + c)
// either way, which is what keeps the two modes bit-identical. Each
// chain produces one or more EstimateResult streams (GraphletEstimator
// has one; MultiSizeEstimator has one per registered size).
class EngineChain {
 public:
  virtual ~EngineChain() = default;
  /// Chains in this unit; chain indices below are unit-local [0, n).
  virtual int NumChains() const { return 1; }
  /// Chain c of the unit seeds its stream DeriveSeed(base_seed,
  /// first_stream + c).
  virtual void Reset(uint64_t base_seed, uint64_t first_stream) = 0;
  virtual void Run(uint64_t steps) = 0;
  virtual void Snapshot(int chain, std::vector<EstimateResult>* out)
      const = 0;
  /// Crawl chains: true once the chain's distinct-query share is spent
  /// (the chain sits out the unit's Run() rounds from then on).
  virtual bool BudgetExhausted(int chain) const {
    (void)chain;
    return false;
  }
  /// Crawl chains: the chain's private access accounting, else nullptr.
  virtual const CrawlStats* AccessStats(int chain) const {
    (void)chain;
    return nullptr;
  }
};

class SingleSizeChain final : public EngineChain {
 public:
  SingleSizeChain(const Graph& g, const EstimatorConfig& config)
      : estimator_(g, config) {}
  void Reset(uint64_t base_seed, uint64_t first_stream) override {
    estimator_.Reset(DeriveSeed(base_seed, first_stream));
  }
  void Run(uint64_t steps) override { estimator_.Run(steps); }
  void Snapshot(int, std::vector<EstimateResult>* out) const override {
    out->assign(1, estimator_.Result());
  }

 private:
  GraphletEstimator estimator_;
};

// A lane batch of full-access chains in lockstep.
class BatchedSingleSizeChain final : public EngineChain {
 public:
  BatchedSingleSizeChain(const Graph& g, const EstimatorConfig& config,
                         int lanes)
      : estimator_(g, config, lanes) {}
  int NumChains() const override { return estimator_.lanes(); }
  void Reset(uint64_t base_seed, uint64_t first_stream) override {
    estimator_.Reset(base_seed, first_stream);
  }
  void Run(uint64_t steps) override { estimator_.Run(steps); }
  void Snapshot(int chain, std::vector<EstimateResult>* out) const override {
    out->assign(1, estimator_.Result(chain));
  }

 private:
  BatchedEstimator estimator_;
};

// One crawler: a private LRU-cached access (its local copy of whatever it
// fetched) driving the same estimator code through static dispatch.
class CrawlSingleSizeChain final : public EngineChain {
 public:
  CrawlSingleSizeChain(const Graph& g, const EstimatorConfig& config,
                       const CrawlAccess::Options& access_options)
      : access_(g, access_options), estimator_(access_, config) {}
  void Reset(uint64_t base_seed, uint64_t first_stream) override {
    access_.ResetCache();  // a fresh crawler: empty cache, zero counters
    estimator_.Reset(DeriveSeed(base_seed, first_stream));
  }
  void Run(uint64_t steps) override { estimator_.Run(steps); }
  void Snapshot(int, std::vector<EstimateResult>* out) const override {
    out->assign(1, estimator_.Result());
  }
  bool BudgetExhausted(int) const override {
    return access_.BudgetExhausted();
  }
  const CrawlStats* AccessStats(int) const override {
    return &access_.stats();
  }

 private:
  CrawlAccess access_;
  GraphletEstimatorT<CrawlAccess> estimator_;
};

// A lane batch of crawl chains: one private crawler per lane (with that
// lane's budget share), so lane accounting matches the scalar chains.
class BatchedCrawlSingleSizeChain final : public EngineChain {
 public:
  BatchedCrawlSingleSizeChain(
      const Graph& g, const EstimatorConfig& config,
      const std::vector<CrawlAccess::Options>& lane_options) {
    access_.reserve(lane_options.size());
    for (const auto& options : lane_options) {
      access_.push_back(std::make_unique<CrawlAccess>(g, options));
    }
    lane_ptrs_.reserve(access_.size());
    for (const auto& a : access_) lane_ptrs_.push_back(a.get());
    estimator_ = std::make_unique<BatchedEstimatorT<CrawlAccess>>(
        std::span<const CrawlAccess* const>(lane_ptrs_), config);
  }
  int NumChains() const override { return estimator_->lanes(); }
  void Reset(uint64_t base_seed, uint64_t first_stream) override {
    for (auto& a : access_) a->ResetCache();
    estimator_->Reset(base_seed, first_stream);
  }
  void Run(uint64_t steps) override { estimator_->Run(steps); }
  void Snapshot(int chain, std::vector<EstimateResult>* out) const override {
    out->assign(1, estimator_->Result(chain));
  }
  bool BudgetExhausted(int chain) const override {
    return access_[chain]->BudgetExhausted();
  }
  const CrawlStats* AccessStats(int chain) const override {
    return &access_[chain]->stats();
  }

 private:
  std::vector<std::unique_ptr<CrawlAccess>> access_;
  std::vector<const CrawlAccess*> lane_ptrs_;
  std::unique_ptr<BatchedEstimatorT<CrawlAccess>> estimator_;
};

// One out-of-core chain: a private ShardedAccess pin cache over the
// shared ShardStore, driving the same estimator code through static
// dispatch. With locality seeding the chain's Reset anchors the walk in
// its affinity shard's vertex range.
class ShardedSingleSizeChain final : public EngineChain {
 public:
  ShardedSingleSizeChain(const ShardStore& store,
                         const EstimatorConfig& config)
      : access_(store), estimator_(access_, config) {}
  void SetStartRange(VertexId lo, VertexId hi) {
    estimator_.SetStartRange(lo, hi);
  }
  void Reset(uint64_t base_seed, uint64_t first_stream) override {
    estimator_.Reset(DeriveSeed(base_seed, first_stream));
  }
  void Run(uint64_t steps) override { estimator_.Run(steps); }
  void Snapshot(int, std::vector<EstimateResult>* out) const override {
    out->assign(1, estimator_.Result());
  }

 private:
  ShardedAccess access_;
  GraphletEstimatorT<ShardedAccess> estimator_;
};

class MultiSizeChain final : public EngineChain {
 public:
  MultiSizeChain(const Graph& g, int d, const std::vector<int>& sizes,
                 bool css, bool nb)
      : estimator_(g, d, sizes, css, nb) {}
  void Reset(uint64_t base_seed, uint64_t first_stream) override {
    estimator_.Reset(DeriveSeed(base_seed, first_stream));
  }
  void Run(uint64_t steps) override { estimator_.Run(steps); }
  void Snapshot(int, std::vector<EstimateResult>* out) const override {
    out->clear();
    out->reserve(estimator_.Sizes().size());
    for (int k : estimator_.Sizes()) out->push_back(estimator_.Result(k));
  }
  const std::vector<int>& Sizes() const { return estimator_.Sizes(); }

 private:
  MultiSizeEstimator estimator_;
};

// Shared round loop over `streams` result streams per chain.
struct LoopOutput {
  std::vector<EstimateResult> merged;                  // per stream
  std::vector<std::vector<EstimateResult>> per_chain;  // [chain][stream]
  std::vector<std::vector<double>> standard_errors;    // per stream
  double max_rel_error = std::numeric_limits<double>::infinity();
  bool converged = false;
  bool cancelled = false;
  bool budget_exhausted = false;
  CrawlStats access;                        // summed in chain order
  std::vector<CrawlStats> per_chain_access;  // crawl mode only
  int rounds = 0;
  uint64_t steps_per_chain = 0;
  double seconds = 0.0;
  double steps_per_second = 0.0;
};

// A convergence verdict needs enough batches for the across-batch
// variance to mean something; with C chains this is reached after
// ceil(8 / C) rounds.
constexpr int kMinBatchesForStop = 8;

// `make_chain(first, count)` builds the unit covering global chains
// [first, first + count); `unit_width` is the widest unit (the last unit
// of an uneven split is narrower). Scalar mode is unit_width == 1.
LoopOutput RunLoop(
    int streams, const EngineOptions& opt, int unit_width,
    const std::function<std::unique_ptr<EngineChain>(int, int)>&
        make_chain) {
  if (opt.chains < 0) {
    throw std::invalid_argument("engine: chains must be >= 0");
  }
  if (unit_width < 1) {
    throw std::invalid_argument("engine: batch lanes must be >= 1");
  }
  LoopOutput out;
  out.merged.assign(streams, {});
  out.standard_errors.assign(streams, {});
  if (opt.chains == 0 || opt.max_steps == 0) return out;

  const int chains = opt.chains;
  const int units = (chains + unit_width - 1) / unit_width;
  const auto unit_first = [&](int u) { return u * unit_width; };
  const auto unit_count = [&](int u) {
    return std::min(chains, (u + 1) * unit_width) - unit_first(u);
  };
  ChainPool& pool = opt.pool != nullptr ? *opt.pool : ChainPool::Shared();

  uint64_t round_steps = opt.round_steps;
  if (round_steps == 0) {
    const bool rounds_wanted = opt.target_nrmse > 0.0 || opt.on_progress;
    round_steps = rounds_wanted ? EngineOptions::DefaultRoundSteps(
                                      opt.max_steps)
                                : opt.max_steps;
  }

  WallTimer timer;
  std::vector<std::unique_ptr<EngineChain>> chain_objs(units);
  pool.ForEach(
      static_cast<size_t>(units),
      [&](size_t u) {
        const int iu = static_cast<int>(u);
        chain_objs[u] = make_chain(unit_first(iu), unit_count(iu));
        chain_objs[u]->Reset(opt.base_seed,
                             opt.chain_offset + unit_first(iu));
      },
      opt.threads);

  out.per_chain.assign(chains, {});
  // Previous round's cumulative weights, [chain][stream], for batch diffs.
  std::vector<std::vector<std::vector<double>>> prev_weights(chains);
  std::vector<BatchMeansAccumulator> accumulators(streams);
  // Walk steps each chain had completed at the previous round boundary:
  // a budget-exhausted chain stops advancing, and a stalled chain must
  // not feed zero batches into the convergence accumulators.
  std::vector<uint64_t> prev_steps(chains, 0);
  const bool budget_mode =
      opt.crawl.enabled && opt.crawl.budget_queries > 0;

  uint64_t done = 0;
  while (done < opt.max_steps) {
    // Cooperative cancellation (deadlines in the serve layer): honored
    // before any work and between rounds, so the outputs below always
    // describe a whole number of completed rounds.
    if (opt.cancel && opt.cancel()) {
      out.cancelled = true;
      break;
    }
    const uint64_t delta = std::min<uint64_t>(round_steps,
                                              opt.max_steps - done);
    pool.ForEach(
        static_cast<size_t>(units),
        [&](size_t u) {
          const int iu = static_cast<int>(u);
          chain_objs[u]->Run(delta);
          for (int j = 0; j < unit_count(iu); ++j) {
            chain_objs[u]->Snapshot(j, &out.per_chain[unit_first(iu) + j]);
          }
        },
        opt.threads);
    done += delta;
    ++out.rounds;

    // Merge in chain order (fixed regardless of completion order).
    for (int s = 0; s < streams; ++s) out.merged[s] = {};
    for (int c = 0; c < chains; ++c) {
      for (int s = 0; s < streams; ++s) {
        MergeInto(out.merged[s], out.per_chain[c][s]);
      }
    }

    // One batch per (chain, stream): the weight accumulated this round,
    // normalized to a concentration vector. Chains that made no progress
    // (budget spent mid-earlier-round) contribute no batch.
    for (int c = 0; c < chains; ++c) {
      const uint64_t chain_steps = out.per_chain[c][0].steps;
      if (chain_steps == prev_steps[c]) continue;
      prev_steps[c] = chain_steps;
      if (prev_weights[c].empty()) prev_weights[c].resize(streams);
      for (int s = 0; s < streams; ++s) {
        accumulators[s].AddBatch(BatchFromCumulativeWeights(
            out.per_chain[c][s].weights, prev_weights[c][s]));
      }
    }

    // Convergence metric: worst monitored relative error over streams.
    double max_rel = -std::numeric_limits<double>::infinity();
    for (int s = 0; s < streams; ++s) {
      const double rel = accumulators[s].MaxRelativeError(
          out.merged[s].concentrations, opt.min_concentration);
      if (std::isnan(rel)) {
        max_rel = rel;  // a stream with no weight yet blocks stopping
        break;
      }
      max_rel = std::max(max_rel, rel);
    }
    out.max_rel_error = max_rel;
    out.seconds = timer.Seconds();
    out.steps_per_chain = done;
    // Actual transitions, not done * chains: budget-exhausted chains fall
    // behind the lockstep schedule. Identical for full-access runs.
    uint64_t actual_steps = 0;
    for (int c = 0; c < chains; ++c) {
      actual_steps += out.per_chain[c][0].steps;
    }
    out.steps_per_second =
        out.seconds > 0.0
            ? static_cast<double>(actual_steps) / out.seconds
            : 0.0;

    if (opt.on_progress) {
      EngineProgress progress;
      progress.round = out.rounds;
      progress.chains = chains;
      progress.steps_per_chain = done;
      progress.max_steps = opt.max_steps;
      progress.total_steps = actual_steps;
      progress.seconds = out.seconds;
      progress.steps_per_second = out.steps_per_second;
      progress.max_rel_error = max_rel;
      opt.on_progress(progress);
    }

    // Stop once the target is met — but never on first-round evidence
    // alone (initial-state transients are concentrated there) and never
    // with fewer than kMinBatchesForStop batches.
    if (opt.target_nrmse > 0.0 && out.rounds >= 2 &&
        accumulators[0].NumBatches() >= kMinBatchesForStop &&
        std::isfinite(max_rel) && max_rel <= opt.target_nrmse) {
      out.converged = true;
      break;
    }

    // Budget stop: every chain decided, inside its own run loop, that its
    // distinct-query share is spent — a per-chain verdict no thread
    // schedule can change, so the break lands on the same round at any
    // thread count.
    if (budget_mode) {
      bool all_spent = true;
      for (int u = 0; u < units && all_spent; ++u) {
        for (int j = 0; j < unit_count(u); ++j) {
          all_spent = all_spent && chain_objs[u]->BudgetExhausted(j);
        }
      }
      if (all_spent) {
        out.budget_exhausted = true;
        break;
      }
    }
  }

  // Crawl accounting: per-chain breakdown plus the chain-order sum.
  if (opt.crawl.enabled) {
    out.per_chain_access.reserve(chains);
    for (int u = 0; u < units; ++u) {
      for (int j = 0; j < unit_count(u); ++j) {
        const CrawlStats* stats = chain_objs[u]->AccessStats(j);
        out.per_chain_access.push_back(stats != nullptr ? *stats
                                                        : CrawlStats{});
        out.access.MergeFrom(out.per_chain_access.back());
      }
    }
  }

  for (int s = 0; s < streams; ++s) {
    // Fewer than two batches carry no spread information: leave the
    // stream's errors empty (unknown) rather than reporting zeros.
    if (accumulators[s].NumBatches() >= 2) {
      out.standard_errors[s] = accumulators[s].StandardErrors();
    }
  }
  return out;
}

}  // namespace

uint64_t ChainBudgetShare(uint64_t budget_queries, int chains, int chain) {
  const auto n = static_cast<uint64_t>(chains);
  return budget_queries / n +
         (static_cast<uint64_t>(chain) < budget_queries % n ? 1 : 0);
}

EstimationEngine::EstimationEngine(const Graph& g,
                                   const EstimatorConfig& config,
                                   EngineOptions options)
    : g_(&g), config_(config), options_(std::move(options)) {
  if (options_.chains < 0) {
    throw std::invalid_argument("EstimationEngine: chains must be >= 0");
  }
  if (options_.crawl.enabled && options_.crawl.budget_queries > 0 &&
      options_.crawl.budget_queries <
          static_cast<uint64_t>(options_.chains)) {
    // A share of zero would mean "no budget" for that chain and the total
    // would silently overspend; refuse the degenerate split instead.
    throw std::invalid_argument(
        "EstimationEngine: budget_queries must be >= chains (every chain "
        "needs a positive distinct-query share)");
  }
  if (options_.batch.enabled && options_.batch.lanes < 1) {
    throw std::invalid_argument(
        "EstimationEngine: batch.lanes must be >= 1");
  }
  if (options_.chains > 0) {
    // Validate the estimator configuration eagerly (and warm the
    // k-indexed singletons) instead of failing inside the pool.
    const GraphletEstimator probe(g, config_);
    (void)probe;
  }
}

EstimationEngine::EstimationEngine(const ShardStore& store,
                                   const EstimatorConfig& config,
                                   EngineOptions options)
    : store_(&store), config_(config), options_(std::move(options)) {
  if (options_.chains < 0) {
    throw std::invalid_argument("EstimationEngine: chains must be >= 0");
  }
  if (options_.crawl.enabled) {
    throw std::invalid_argument(
        "EstimationEngine: crawl mode does not compose with sharded "
        "storage (the crawl cache simulates remote-API access over one "
        "flat graph)");
  }
  if (options_.batch.enabled) {
    throw std::invalid_argument(
        "EstimationEngine: batch mode needs a monolithic CSR; run "
        "sharded graphs with the scalar kernels");
  }
  if (options_.chains > 0) {
    // Same eager validation as the monolithic constructor; constructing
    // the estimator reads only sizes, no shard payloads.
    const ShardedAccess probe_access(store);
    const GraphletEstimatorT<ShardedAccess> probe(probe_access, config_);
    (void)probe;
  }
}

EngineResult EstimationEngine::RunSharded() {
  const ShardStore& store = *store_;
  const EstimatorConfig& config = config_;
  const int chains = options_.chains;
  const uint32_t num_shards = store.NumShards();

  LoopOutput loop = RunLoop(
      1, options_, 1,
      [&](int first, int) -> std::unique_ptr<EngineChain> {
        auto chain = std::make_unique<ShardedSingleSizeChain>(store, config);
        if (options_.sharded.locality_seeding) {
          // Contiguous chain blocks per shard: chain c's affinity shard
          // is floor(c * S / C) — a function of the global chain index
          // alone, so the assignment (and with it the RNG consumption)
          // is identical at any thread count.
          const uint32_t s = static_cast<uint32_t>(
              (static_cast<uint64_t>(first) * num_shards) /
              static_cast<uint64_t>(chains));
          const auto [lo, hi] = store.ShardRange(s);
          chain->SetStartRange(lo, hi);
        }
        return chain;
      });

  EngineResult result;
  result.merged = std::move(loop.merged[0]);
  result.per_chain.reserve(loop.per_chain.size());
  for (auto& streams : loop.per_chain) {
    if (!streams.empty()) result.per_chain.push_back(std::move(streams[0]));
  }
  result.standard_errors = std::move(loop.standard_errors[0]);
  result.max_rel_error = loop.max_rel_error;
  result.converged = loop.converged;
  result.cancelled = loop.cancelled;
  result.rounds = loop.rounds;
  result.steps_per_chain = loop.steps_per_chain;
  result.seconds = loop.seconds;
  result.steps_per_second = loop.steps_per_second;
  result.shards = store.stats();
  return result;
}

EngineResult EstimationEngine::Run() {
  if (store_ != nullptr) return RunSharded();
  const Graph& g = *g_;
  const EstimatorConfig& config = config_;
  const EngineOptions::CrawlConfig& crawl = options_.crawl;
  const int chains = options_.chains;

  // A chain's budget share depends on its *global* index alone, so the
  // batched grouping cannot move budget between chains.
  const auto chain_access_options = [&](int c) {
    CrawlAccess::Options access_options;
    access_options.cache_entries = crawl.cache_entries;
    access_options.latency_us = crawl.latency_us;
    if (crawl.fail_prob > 0.0) {
      access_options.failure.fail_prob = crawl.fail_prob;
      access_options.failure.max_retries = crawl.fail_max_retries;
      access_options.failure.backoff_base_us = crawl.fail_backoff_us;
      access_options.failure.backoff_max_us = crawl.fail_backoff_max_us;
      // Global chain index, like the budget share below: the failure
      // schedule is a property of the chain, not of the thread or the
      // batch unit it lands in.
      access_options.failure.seed =
          DeriveSeed(crawl.fail_seed, static_cast<uint64_t>(c));
    }
    if (crawl.budget_queries > 0) {
      // Fixed share of the total budget (B >= chains was validated, so
      // every share is positive). A chain stops after the step that
      // crosses its share, so the total can overshoot B by at most one
      // step's fetches per chain — reported honestly in
      // EngineResult::access.
      access_options.query_budget =
          ChainBudgetShare(crawl.budget_queries, chains, c);
    }
    return access_options;
  };

  const bool batched = options_.batch.enabled;
  const int unit_width = batched ? options_.batch.lanes : 1;
  LoopOutput loop = RunLoop(
      1, options_, unit_width,
      [&](int first, int count) -> std::unique_ptr<EngineChain> {
        if (!crawl.enabled) {
          if (batched) {
            return std::make_unique<BatchedSingleSizeChain>(g, config,
                                                            count);
          }
          return std::make_unique<SingleSizeChain>(g, config);
        }
        if (batched) {
          std::vector<CrawlAccess::Options> lane_options;
          lane_options.reserve(count);
          for (int j = 0; j < count; ++j) {
            lane_options.push_back(chain_access_options(first + j));
          }
          return std::make_unique<BatchedCrawlSingleSizeChain>(
              g, config, lane_options);
        }
        return std::make_unique<CrawlSingleSizeChain>(
            g, config, chain_access_options(first));
      });

  EngineResult result;
  result.merged = std::move(loop.merged[0]);
  result.per_chain.reserve(loop.per_chain.size());
  for (auto& streams : loop.per_chain) {
    if (!streams.empty()) result.per_chain.push_back(std::move(streams[0]));
  }
  result.standard_errors = std::move(loop.standard_errors[0]);
  result.max_rel_error = loop.max_rel_error;
  result.converged = loop.converged;
  result.cancelled = loop.cancelled;
  result.budget_exhausted = loop.budget_exhausted;
  result.access = loop.access;
  result.per_chain_access = std::move(loop.per_chain_access);
  result.rounds = loop.rounds;
  result.steps_per_chain = loop.steps_per_chain;
  result.seconds = loop.seconds;
  result.steps_per_second = loop.steps_per_second;
  return result;
}

MultiSizeEngineResult RunMultiSizeEngine(const Graph& g, int d,
                                         const std::vector<int>& sizes,
                                         bool css, bool nb,
                                         const EngineOptions& options) {
  if (options.crawl.enabled) {
    throw std::invalid_argument(
        "RunMultiSizeEngine: crawl mode is single-size only");
  }
  if (options.batch.enabled) {
    throw std::invalid_argument(
        "RunMultiSizeEngine: batch mode is single-size only");
  }
  // Construct one probe to validate configuration and learn the
  // deduplicated, sorted size list (MultiSizeEstimator normalizes it).
  MultiSizeEstimator probe(g, d, sizes, css, nb);
  const std::vector<int> ordered = probe.Sizes();

  LoopOutput loop = RunLoop(
      static_cast<int>(ordered.size()), options, 1, [&](int, int) {
        return std::make_unique<MultiSizeChain>(g, d, ordered, css, nb);
      });

  MultiSizeEngineResult result;
  for (size_t s = 0; s < ordered.size(); ++s) {
    result.merged[ordered[s]] = std::move(loop.merged[s]);
    result.standard_errors[ordered[s]] = std::move(loop.standard_errors[s]);
  }
  result.max_rel_error = loop.max_rel_error;
  result.converged = loop.converged;
  result.rounds = loop.rounds;
  result.steps_per_chain = loop.steps_per_chain;
  result.seconds = loop.seconds;
  result.steps_per_second = loop.steps_per_second;
  return result;
}

}  // namespace grw
