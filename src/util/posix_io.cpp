#include "util/posix_io.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "util/fault.h"

namespace grw::io {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`, clamped at 0; -1 for "no
/// deadline" (infinite poll).
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<int64_t>(0, left.count()));
}

/// Waits for `events` on `fd`. Returns 1 when ready, 0 on timeout, -1
/// on poll error (errno set). EINTR restarts with the remaining budget.
int WaitReady(int fd, short events, bool has_deadline,
              Clock::time_point deadline) {
  while (true) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, RemainingMs(has_deadline, deadline));
    if (rc > 0) return 1;
    if (rc == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace

IoResult ReadSome(int fd, char* buf, size_t cap, int timeout_ms) {
  IoResult result;
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           has_deadline ? timeout_ms : 0);
  while (true) {
    if (has_deadline) {
      const int ready = WaitReady(fd, POLLIN, true, deadline);
      if (ready == 0) {
        result.status = IoResult::Status::kTimeout;
        return result;
      }
      if (ready < 0) {
        result.status = IoResult::Status::kError;
        result.error = errno;
        return result;
      }
    }
    if (GRW_FAULT("io.read.eintr")) continue;  // as if read() hit EINTR
    if (GRW_FAULT("io.read.fail")) {
      result.status = IoResult::Status::kError;
      result.error = EIO;
      return result;
    }
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.status = IoResult::Status::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    result.status = IoResult::Status::kError;
    result.error = errno;
    return result;
  }
}

IoResult WriteAll(int fd, const void* data, size_t len, int timeout_ms) {
  IoResult result;
  const char* bytes = static_cast<const char*>(data);
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           has_deadline ? timeout_ms : 0);
  size_t off = 0;
  while (off < len) {
    if (has_deadline) {
      const int ready = WaitReady(fd, POLLOUT, true, deadline);
      if (ready == 0) {
        result.status = IoResult::Status::kTimeout;
        result.bytes = off;
        return result;
      }
      if (ready < 0) {
        result.status = IoResult::Status::kError;
        result.error = errno;
        result.bytes = off;
        return result;
      }
    }
    if (GRW_FAULT("io.write.eintr")) continue;  // as if write() hit EINTR
    if (GRW_FAULT("io.write.fail")) {
      result.status = IoResult::Status::kError;
      result.error = EIO;
      result.bytes = off;
      return result;
    }
    // A short-write fault caps the chunk at one byte, proving the loop
    // completes the rest (this is the bug class the helper exists for).
    const size_t chunk =
        GRW_FAULT("io.write.short") ? 1 : len - off;
    const ssize_t n = ::write(fd, bytes + off, chunk);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    result.status = IoResult::Status::kError;
    result.error = n < 0 ? errno : EIO;
    result.bytes = off;
    return result;
  }
  result.bytes = off;
  return result;
}

IoResult WriteAll(int fd, std::string_view data, int timeout_ms) {
  return WriteAll(fd, data.data(), data.size(), timeout_ms);
}

int ConnectWithTimeout(int fd, const struct sockaddr* addr, socklen_t len,
                       int timeout_ms) {
  if (GRW_FAULT("io.connect.fail")) {
    errno = ECONNREFUSED;
    return -1;
  }
  // Always connect non-blocking + poll: one code path covers both the
  // bounded and the unbounded (`timeout_ms < 0`) case.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return -1;

  int rc = ::connect(fd, addr, len);
  if (rc < 0 && errno == EINTR) {
    // An interrupted connect completes asynchronously; fall through to
    // the poll wait exactly as for EINPROGRESS.
    errno = EINPROGRESS;
  }
  if (rc < 0 && errno == EINPROGRESS) {
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline = Clock::now() + std::chrono::milliseconds(
                                             has_deadline ? timeout_ms : 0);
    const int ready = WaitReady(fd, POLLOUT, has_deadline, deadline);
    if (ready == 0) {
      ::fcntl(fd, F_SETFL, flags);
      errno = ETIMEDOUT;
      return -1;
    }
    if (ready < 0) {
      const int saved = errno;
      ::fcntl(fd, F_SETFL, flags);
      errno = saved;
      return -1;
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) < 0) {
      const int saved = errno;
      ::fcntl(fd, F_SETFL, flags);
      errno = saved;
      return -1;
    }
    if (so_error != 0) {
      ::fcntl(fd, F_SETFL, flags);
      errno = so_error;
      return -1;
    }
    rc = 0;
  }
  const int saved = errno;
  // Restore blocking mode whether or not the connect succeeded.
  ::fcntl(fd, F_SETFL, flags);
  errno = saved;
  return rc == 0 ? 0 : -1;
}

int Fsync(int fd) {
  if (GRW_FAULT("io.fsync.fail")) {
    errno = EIO;
    return -1;
  }
  while (::fsync(fd) < 0) {
    if (errno != EINTR) return -1;
  }
  return 0;
}

}  // namespace grw::io
