#include "util/flags.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace grw {

namespace {

// strtoll/strtod skip leading whitespace and accept partial prefixes;
// strictness means neither: the conversion must start at byte 0 and
// consume the whole string.
bool StrictStart(const std::string& s) {
  return !s.empty() && !std::isspace(static_cast<unsigned char>(s.front()));
}

[[noreturn]] void FlagError(const std::string& name, const char* kind,
                            const std::string& value) {
  std::fprintf(stderr, "flag --%s: invalid %s '%s'\n", name.c_str(), kind,
               value.c_str());
  std::exit(2);
}

}  // namespace

std::optional<int64_t> ParseInt64(const std::string& s) {
  if (!StrictStart(s)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;  // out of int64 range: no clamp
  if (end != s.c_str() + s.size() || end == s.c_str()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(const std::string& s) {
  if (!StrictStart(s)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || end == s.c_str()) return std::nullopt;
  // Overflow clamps to +-HUGE_VAL with ERANGE: reject. Underflow (also
  // ERANGE on some libcs) returns the nearest representable value near
  // zero, which is fine. Literal inf/nan are rejected as non-values.
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<bool> ParseBool(const std::string& s) {
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return std::nullopt;
}

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself a flag; otherwise a
    // boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  const std::optional<int64_t> v = ParseInt64(it->second);
  if (!v.has_value()) FlagError(name, "integer", it->second);
  return *v;
}

int64_t Flags::GetIntInRange(const std::string& name, int64_t default_value,
                             int64_t min, int64_t max) const {
  const int64_t v = GetInt(name, default_value);
  if (v < min || v > max) {
    std::fprintf(stderr,
                 "flag --%s: value %lld out of range [%lld, %lld]\n",
                 name.c_str(), static_cast<long long>(v),
                 static_cast<long long>(min), static_cast<long long>(max));
    std::exit(2);
  }
  return v;
}

int Flags::GetInt32(const std::string& name, int default_value) const {
  return static_cast<int>(GetIntInRange(name, default_value, INT32_MIN,
                                        INT32_MAX));
}

unsigned Flags::GetUnsigned(const std::string& name,
                            unsigned default_value) const {
  return static_cast<unsigned>(
      GetIntInRange(name, default_value, 0, UINT32_MAX));
}

uint32_t Flags::GetUInt32(const std::string& name,
                          uint32_t default_value) const {
  return static_cast<uint32_t>(
      GetIntInRange(name, default_value, 0, UINT32_MAX));
}

uint64_t Flags::GetUInt64(const std::string& name,
                          uint64_t default_value) const {
  // The parse is int64, so values above INT64_MAX are unrepresentable on
  // the command line anyway; the check only needs to reject negatives.
  if (default_value > static_cast<uint64_t>(INT64_MAX)) {
    FlagError(name, "uint64 default (exceeds int64 range)",
              std::to_string(default_value));
  }
  return static_cast<uint64_t>(GetIntInRange(
      name, static_cast<int64_t>(default_value), 0, INT64_MAX));
}

size_t Flags::GetSize(const std::string& name, size_t default_value) const {
  return static_cast<size_t>(GetUInt64(name, default_value));
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  const std::optional<double> v = ParseDouble(it->second);
  if (!v.has_value()) FlagError(name, "number", it->second);
  return *v;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second.empty()) return true;  // value-less switch
  const std::optional<bool> v = ParseBool(it->second);
  if (!v.has_value()) FlagError(name, "boolean", it->second);
  return *v;
}

}  // namespace grw
