// Streaming statistics and the NRMSE accuracy metric used throughout the
// paper's evaluation (Section 6.1).

#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace grw {

/// Welford streaming mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t Count() const { return n_; }
  double Mean() const { return mean_; }

  /// Population variance (divides by n). Returns 0 for n < 1.
  double Variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  /// Unbiased sample variance (divides by n-1). Returns 0 for n < 2.
  double SampleVariance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double Stddev() const { return std::sqrt(Variance()); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Normalized root mean square error of a set of estimates against the
/// ground truth:
///   NRMSE = sqrt(E[(est - truth)^2]) / truth
///         = sqrt(Var[est] + (truth - E[est])^2) / truth.
/// Combines variance and bias, exactly as defined in Section 6.1.
/// Returns NaN when truth == 0 or there are no estimates.
inline double Nrmse(const std::vector<double>& estimates, double truth) {
  if (estimates.empty() || truth == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double sum_sq = 0.0;
  for (double e : estimates) {
    const double d = e - truth;
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(estimates.size())) /
         std::abs(truth);
}

/// Mean of a vector; NaN if empty.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Unbiased sample standard deviation; 0 if fewer than two values.
inline double SampleStddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// Pearson chi-square statistic sum (obs - exp)^2 / exp over cells with
/// exp > 0. `observed` are counts, `expected` are expected counts on the
/// same cells (vectors must be the same length). Used by the statistical
/// goodness-of-fit tests for the random walks.
inline double ChiSquareStatistic(const std::vector<double>& observed,
                                 const std::vector<double>& expected) {
  double stat = 0.0;
  for (size_t i = 0; i < observed.size() && i < expected.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

/// Upper critical value of the chi-square distribution with `df` degrees
/// of freedom at upper-tail z-score `z` (e.g. z = 3.09 for alpha ~ 0.001),
/// via the Wilson-Hilferty cube approximation — accurate to a few percent
/// for df >= 3, which is all the goodness-of-fit tests need.
inline double ChiSquareCriticalValue(int df, double z) {
  const double d = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

}  // namespace grw
