#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

namespace grw {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  if (std::isnan(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Sci(double v, int precision) {
  if (std::isnan(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::Duration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render = [&widths](const std::vector<std::string>& row) {
    std::ostringstream os;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << (i == 0 ? "| " : " | ");
      os << cell << std::string(widths[i] - cell.size(), ' ');
    }
    os << " |";
    return os.str();
  };

  size_t total = 1;
  for (size_t w : widths) total += w + 3;

  std::ostringstream os;
  os << title_ << "\n" << std::string(total, '-') << "\n";
  if (!header_.empty()) {
    os << render(header_) << "\n" << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) os << render(row) << "\n";
  os << std::string(total, '-') << "\n";
  return os.str();
}

void Table::Print() const { std::cout << ToString() << std::endl; }

namespace {
// CSV-escapes a cell: quotes it if it contains a comma, quote, or newline.
std::string CsvCell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto write_row = [&f](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) f << ',';
      f << CsvCell(row[i]);
    }
    f << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(f);
}

}  // namespace grw
