// Parallel-for helper for one-shot fan-outs.
//
// Experiments run R independent Markov chains (paper: 100-1000 independent
// simulations per data point); each chain is embarrassingly parallel, so a
// simple static-chunked thread fan-out is all we need — no work stealing,
// no shared queues. ParallelFor is a template over the callable so the body
// is invoked directly (no std::function type erasure or heap allocation on
// the fan-out path). Long-lived chain execution should prefer the
// persistent pool in engine/chain_pool.h, which reuses its workers across
// calls instead of spawning threads per invocation.

#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace grw {

/// Number of hardware threads, at least 1.
inline unsigned HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Runs body(i) for i in [0, n) across up to `threads` std::threads.
/// body must be safe to call concurrently for distinct i.
/// threads == 0 means HardwareThreads().
template <typename Body>
void ParallelFor(size_t n, Body&& body, unsigned threads = 0) {
  static_assert(std::is_invocable_v<Body&, size_t>,
                "ParallelFor body must be callable as body(size_t)");
  if (n == 0) return;
  if (threads == 0) threads = HardwareThreads();
  threads = static_cast<unsigned>(std::min<size_t>(threads, n));
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([t, threads, n, &body] {
      // Strided assignment keeps per-thread work balanced when later
      // indices are systematically cheaper/more expensive.
      for (size_t i = t; i < n; i += threads) body(i);
    });
  }
  for (auto& w : workers) w.join();
}

/// Sorts [begin, end) with std::sort semantics, fanning out across up to
/// `threads` std::threads: the range is cut into equal chunks, each chunk
/// is sorted independently, and adjacent chunks are merged pairwise
/// (log(chunks) rounds of std::inplace_merge, themselves parallel).
/// Falls back to a plain std::sort below a size threshold where the
/// fan-out cost would dominate.
/// Determinism: like std::sort this is NOT stable. When `<` is a total
/// order over element values (ints, the builder's lexicographic pairs)
/// the output is bit-identical at any thread count; with a comparator
/// that only orders a key, equivalent elements may land in
/// thread-count-dependent order — don't use this where the engine's
/// bit-identical guarantee must extend to such payloads.
template <typename Iter>
void ParallelSort(Iter begin, Iter end, unsigned threads = 0) {
  const size_t n = static_cast<size_t>(end - begin);
  if (threads == 0) threads = HardwareThreads();
  constexpr size_t kSerialCutoff = 1 << 15;
  if (n < kSerialCutoff || threads <= 1) {
    std::sort(begin, end);
    return;
  }
  // Chunk boundaries; bounds.size() - 1 chunks, each sorted independently.
  std::vector<size_t> bounds(threads + 1);
  for (size_t c = 0; c <= threads; ++c) bounds[c] = n * c / threads;
  ParallelFor(
      threads,
      [&](size_t c) { std::sort(begin + bounds[c], begin + bounds[c + 1]); },
      threads);
  // Pairwise merge rounds until one chunk remains. An odd trailing chunk
  // is carried into the next round unchanged.
  while (bounds.size() > 2) {
    const size_t chunks = bounds.size() - 1;
    const size_t pairs = chunks / 2;
    ParallelFor(
        pairs,
        [&](size_t p) {
          std::inplace_merge(begin + bounds[2 * p], begin + bounds[2 * p + 1],
                             begin + bounds[2 * p + 2]);
        },
        threads);
    std::vector<size_t> next;
    next.reserve(pairs + 2);
    next.push_back(0);
    for (size_t i = 2; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (chunks % 2 == 1) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

/// Convenience overload for whole-vector sorts.
template <typename T>
void ParallelSort(std::vector<T>& v, unsigned threads = 0) {
  ParallelSort(v.begin(), v.end(), threads);
}

}  // namespace grw
