// Parallel-for helper for one-shot fan-outs.
//
// Experiments run R independent Markov chains (paper: 100-1000 independent
// simulations per data point); each chain is embarrassingly parallel, so a
// simple static-chunked thread fan-out is all we need — no work stealing,
// no shared queues. ParallelFor is a template over the callable so the body
// is invoked directly (no std::function type erasure or heap allocation on
// the fan-out path). Long-lived chain execution should prefer the
// persistent pool in engine/chain_pool.h, which reuses its workers across
// calls instead of spawning threads per invocation.

#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace grw {

/// Number of hardware threads, at least 1.
inline unsigned HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Runs body(i) for i in [0, n) across up to `threads` std::threads.
/// body must be safe to call concurrently for distinct i.
/// threads == 0 means HardwareThreads().
template <typename Body>
void ParallelFor(size_t n, Body&& body, unsigned threads = 0) {
  static_assert(std::is_invocable_v<Body&, size_t>,
                "ParallelFor body must be callable as body(size_t)");
  if (n == 0) return;
  if (threads == 0) threads = HardwareThreads();
  threads = static_cast<unsigned>(std::min<size_t>(threads, n));
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([t, threads, n, &body] {
      // Strided assignment keeps per-thread work balanced when later
      // indices are systematically cheaper/more expensive.
      for (size_t i = t; i < n; i += threads) body(i);
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace grw
