// Fast pseudo-random number generation for sampling algorithms.
//
// The estimators in this library are sampling-dominated: every random-walk
// step draws at least one random number, and NRMSE experiments run hundreds
// of independent chains. std::mt19937_64 is correct but needlessly slow and
// heavy to seed; we use xoshiro256** (Blackman & Vigna), which passes BigCrush
// and is 2-3x faster, with SplitMix64 seeding as recommended by its authors.

#pragma once

#include <cstdint>
#include <limits>

namespace grw {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
/// Also useful on its own as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, but prefer the member helpers which avoid
/// distribution-object overhead in hot loops.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Different seeds produce
  /// independent-looking streams (seeded through SplitMix64).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 random bits.
  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (no modulo in the
  /// common path).
  uint64_t UniformInt(uint64_t bound) {
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Derives a child seed from a base seed and a stream index, so that
/// parallel experiment replicas get decorrelated generators.
inline uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  uint64_t s = base ^ (0x6a09e667f3bcc909ULL + stream * 0x3c6ef372fe94f82bULL);
  return SplitMix64(s);
}

}  // namespace grw
