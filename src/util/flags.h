// Tiny command-line flag parser for the bench and example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches
// (`--paper`). Deliberately minimal: the benches take a handful of knobs
// (steps, sims, scale, csv path) and we avoid an external dependency.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace grw {

/// Parsed command-line flags.
class Flags {
 public:
  /// Parses argv. Unknown flags are collected verbatim; positional
  /// arguments (not starting with "--") are collected in order.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  /// Boolean: present without value or with value in {1,true,yes,on}.
  bool GetBool(const std::string& name, bool default_value = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace grw
