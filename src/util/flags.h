// Tiny command-line flag parser for the bench and example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches
// (`--paper`). Deliberately minimal: the benches take a handful of knobs
// (steps, sims, scale, csv path) and we avoid an external dependency.
//
// Numeric values are parsed *strictly* — the whole string must be a valid
// in-range number — and a malformed value is a hard error with a
// diagnostic (`flag --lanes: invalid integer 'abc'`), never a silent
// misparse: `--budget-queries=10k` used to read as 10 and `--lanes=abc`
// as 0. The underlying ParseInt64/ParseDouble/ParseBool helpers are
// exposed because the serve request protocol (src/serve/protocol.h)
// applies the same strictness to untrusted request fields, where the
// right failure mode is an error *response* instead of process exit.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace grw {

/// Strict full-string signed-integer parse (base 10): empty strings,
/// leading whitespace, trailing junk ("10k"), and out-of-range values all
/// return nullopt — no silent truncation or clamping.
std::optional<int64_t> ParseInt64(const std::string& s);

/// Strict full-string floating-point parse. Rejects everything ParseInt64
/// rejects plus values that overflow to infinity and the literals
/// inf/nan (a flag or request field is never meaningfully non-finite).
std::optional<double> ParseDouble(const std::string& s);

/// Strict boolean: {1,true,yes,on} / {0,false,no,off}, nothing else.
/// Note an *empty* value is not a boolean — the Flags layer maps a
/// value-less switch (`--paper`) to true before this is consulted.
std::optional<bool> ParseBool(const std::string& s);

/// Parsed command-line flags.
class Flags {
 public:
  /// Parses argv. Unknown flags are collected verbatim; positional
  /// arguments (not starting with "--") are collected in order.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  /// Strict: a present, non-empty value that is not a valid in-range
  /// integer prints `flag --name: invalid integer '...'` and exits(2).
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  /// GetInt with a range check: a value outside [min, max] prints
  /// `flag --name: value ... out of range [min, max]` and exits(2).
  int64_t GetIntInRange(const std::string& name, int64_t default_value,
                        int64_t min, int64_t max) const;
  /// Typed narrowing getters. The narrowing from int64 is *checked* —
  /// out-of-range values are a diagnostic + exit(2), never a silent
  /// truncation or sign flip. tools/lint_invariants.py bans the old
  /// `static_cast<T>(flags.GetInt(...))` pattern in favor of these.
  int GetInt32(const std::string& name, int default_value) const;
  unsigned GetUnsigned(const std::string& name, unsigned default_value) const;
  uint32_t GetUInt32(const std::string& name, uint32_t default_value) const;
  /// Rejects negative values (the int64 parse keeps "-1 means huge"
  /// impossible by construction).
  uint64_t GetUInt64(const std::string& name, uint64_t default_value) const;
  size_t GetSize(const std::string& name, size_t default_value) const;
  /// Strict like GetInt (`flag --name: invalid number '...'`).
  double GetDouble(const std::string& name, double default_value) const;
  /// Boolean: present without value means true; with a value, the value
  /// must satisfy ParseBool (diagnostic + exit(2) otherwise).
  bool GetBool(const std::string& name, bool default_value = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace grw
