#include "util/fault.h"

#include <cstddef>
#include <cstdlib>
#include <mutex>  // std::once_flag only; locking goes through util/sync.h
#include <stdexcept>
#include <string_view>

#include "util/rng.h"
#include "util/sync.h"

namespace grw::fault {

namespace {

struct Clause {
  std::string pattern;  // exact name, "prefix*", or "*"
  bool probability = false;
  double p = 0.0;
  uint64_t nth = 0;
  uint64_t once_at = 0;
};

// All mutable module state hangs off one registry so Configure() and
// lazy site registration share a single lock.
struct Registry {
  Mutex mu;
  std::vector<FaultSite*> sites GRW_GUARDED_BY(mu);
  std::vector<Clause> clauses GRW_GUARDED_BY(mu);
  std::string spec GRW_GUARDED_BY(mu);
  uint64_t seed GRW_GUARDED_BY(mu) = 0;
  // Bumped by every Configure(); sites lazily re-resolve their triggers
  // when their cached epoch falls behind. Starts at 1 so sites (epoch 0)
  // resolve on their first Fire() even before any explicit Configure().
  std::atomic<uint64_t> epoch{1};
};

Registry& GetRegistry() {
  // Intentionally leaked: function-local static FaultSites in other
  // translation units deregister in their destructors at process exit,
  // which must never outrace the registry's own destruction.
  static Registry* registry = new Registry;
  return *registry;
}

std::once_flag g_env_once;

void EnsureConfigured() {
  // Lazily adopt the environment spec exactly once, unless a test
  // already installed a programmatic configuration.
  std::call_once(g_env_once, [] {
    Registry& r = GetRegistry();
    bool configured;
    {
      MutexLock lock(r.mu);
      configured = !r.spec.empty();
    }
    if (!configured) ConfigureFromEnv();
  });
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

uint64_t ParseCount(std::string_view text, const std::string& clause) {
  uint64_t value = 0;
  if (text.empty()) {
    throw std::runtime_error("fault spec: missing count in '" + clause + "'");
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw std::runtime_error("fault spec: bad count in '" + clause + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value == 0) {
    throw std::runtime_error("fault spec: count must be >= 1 in '" + clause +
                             "'");
  }
  return value;
}

Clause ParseClause(std::string_view text) {
  const std::string clause(text);
  const size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 >= text.size()) {
    throw std::runtime_error(
        "fault spec: expected 'site=trigger', got '" + clause + "'");
  }
  Clause out;
  out.pattern = std::string(Trim(text.substr(0, eq)));
  const std::string_view trigger = Trim(text.substr(eq + 1));

  if (trigger.size() >= 2 && trigger[0] == 'p' &&
      (trigger[1] == '0' || trigger[1] == '1' || trigger[1] == '.')) {
    char* end = nullptr;
    const std::string num(trigger.substr(1));
    out.p = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0' || out.p < 0.0 || out.p > 1.0) {
      throw std::runtime_error(
          "fault spec: probability must be p<0..1> in '" + clause + "'");
    }
    out.probability = true;
  } else if (trigger.rfind("nth:", 0) == 0) {
    out.nth = ParseCount(trigger.substr(4), clause);
  } else if (trigger == "once") {
    out.once_at = 1;
  } else if (trigger.rfind("once:", 0) == 0) {
    out.once_at = ParseCount(trigger.substr(5), clause);
  } else {
    throw std::runtime_error("fault spec: unknown trigger '" +
                             std::string(trigger) + "' in '" + clause + "'");
  }
  return out;
}

std::vector<Clause> ParseSpec(const std::string& spec) {
  std::vector<Clause> clauses;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string_view piece = Trim(
        std::string_view(spec).substr(start, end - start));
    if (!piece.empty()) clauses.push_back(ParseClause(piece));
    start = end + 1;
  }
  return clauses;
}

bool Matches(const std::string& pattern, const char* site) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    const std::string_view prefix(pattern.data(), pattern.size() - 1);
    return std::string_view(site).substr(0, prefix.size()) == prefix;
  }
  return pattern == site;
}

uint64_t HashName(const char* name) {
  // FNV-1a, matching the flavor used for .grwb data checksums.
  uint64_t h = 1469598103934665603ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void Configure(const std::string& spec, uint64_t seed) {
  std::vector<Clause> clauses = ParseSpec(spec);  // throws before locking
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.clauses = std::move(clauses);
  r.spec = spec;
  r.seed = seed;
  // New schedule: restart every site's ordinal at 1 and clear its fired
  // count, then publish the new epoch so Fire() re-resolves triggers.
  for (FaultSite* site : r.sites) {
    site->ResetScheduleLocked();
  }
  r.epoch.fetch_add(1, std::memory_order_release);
}

void ConfigureFromEnv() {
  const char* spec = std::getenv("GRW_FAULT_SPEC");
  const char* seed_text = std::getenv("GRW_FAULT_SEED");
  uint64_t seed = 0;
  if (seed_text != nullptr && *seed_text != '\0') {
    seed = std::strtoull(seed_text, nullptr, 10);
  }
  Configure(spec != nullptr ? spec : "", seed);
}

std::string ActiveSpec() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  return r.spec;
}

std::vector<SiteCounts> Snapshot() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  std::vector<SiteCounts> out;
  out.reserve(r.sites.size());
  for (const FaultSite* site : r.sites) {
    SiteCounts counts;
    counts.site = site->name();
    counts.calls = site->calls();
    counts.fired = site->fired();
    out.push_back(std::move(counts));
  }
  return out;
}

FaultSite::FaultSite(const char* name) : name_(name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.sites.push_back(this);
}

FaultSite::~FaultSite() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  for (size_t i = 0; i < r.sites.size(); ++i) {
    if (r.sites[i] == this) {
      r.sites.erase(r.sites.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

void FaultSite::ResetScheduleLocked() {
  base_.store(calls_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
}

void FaultSite::Resolve(uint64_t epoch) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  triggers_ = Triggers{};
  for (const Clause& clause : r.clauses) {
    if (!Matches(clause.pattern, name_)) continue;
    triggers_.probability = clause.probability;
    triggers_.p = clause.p;
    triggers_.nth = clause.nth;
    triggers_.once_at = clause.once_at;
    break;  // first matching clause wins
  }
  seed_ = r.seed;
  epoch_.store(epoch, std::memory_order_release);
}

bool FaultSite::Fire() {
  EnsureConfigured();
  Registry& r = GetRegistry();
  const uint64_t epoch = r.epoch.load(std::memory_order_acquire);
  if (epoch_.load(std::memory_order_acquire) != epoch) Resolve(epoch);

  const uint64_t total = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t ordinal = total - base_.load(std::memory_order_relaxed);

  bool fire = false;
  if (triggers_.once_at > 0 && ordinal == triggers_.once_at) fire = true;
  if (!fire && triggers_.nth > 0 && ordinal % triggers_.nth == 0) fire = true;
  if (!fire && triggers_.probability && triggers_.p > 0.0) {
    // Pure function of (seed, site, ordinal): the fault schedule per
    // site replays exactly from the seed at any thread count.
    uint64_t state =
        seed_ ^ HashName(name_) ^ (ordinal * 0x9e3779b97f4a7c15ull);
    const uint64_t h = SplitMix64(state);
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
    fire = u < triggers_.p;
  }
  if (fire) fired_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

}  // namespace grw::fault
