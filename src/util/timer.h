// Minimal wall-clock timing used by the runtime benches (paper Table 6).

#pragma once

#include <chrono>

namespace grw {

/// Wall-clock stopwatch. Starts on construction; Restart() re-arms it.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace grw
