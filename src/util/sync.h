// Annotated synchronization primitives: the only lock layer in the repo.
//
// Every mutex and condition variable in the codebase goes through these
// wrappers so that locking discipline is *machine-checked*, not hand
// audited. The wrappers carry Clang thread-safety capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): a shared field
// declares which lock guards it with GRW_GUARDED_BY, functions declare
// what they acquire/require with GRW_ACQUIRE / GRW_REQUIRES, and a Clang
// build with -DGRW_THREAD_SAFETY=ON (-Wthread-safety -Werror; the CI
// `thread-safety` job) turns any unguarded access into a compile error.
// Under GCC, or Clang without the flag, the attributes expand to nothing
// and the wrappers compile to bare std::mutex / std::condition_variable.
//
// Two invariants are additionally checked at *runtime* (cheap relaxed
// atomics, active whenever assertions are — this repo keeps NDEBUG
// stripped even in release builds): recursive Lock() by the owning thread
// and Unlock() by a non-owner abort with a diagnostic instead of
// deadlocking or corrupting the mutex. tests/sync_test.cpp death-tests
// both.
//
// Project rules, enforced greppably by tools/lint_invariants.py:
//   * no raw std::mutex / std::condition_variable outside this header;
//   * condition waits over guarded fields are written as explicit
//     `while (!cond) cv.Wait(mu);` loops in functions that hold the lock
//     (the analysis cannot see into predicate lambdas — a lambda would
//     need GRW_NO_THREAD_SAFETY_ANALYSIS, silencing exactly the check we
//     want; the predicate overload below is for unguarded test plumbing).
//
// Lock ordering (see docs/ARCHITECTURE.md "Concurrency invariants"):
// scheduler mutex -> registry mutex -> pool mutexes; a Job's completion
// mutex is a leaf. Never acquire in the opposite direction.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

// ------------------------------------------------------------------------
// Capability attribute macros. GRW_THREAD_ANNOTATION expands only under
// Clang (GCC has no thread-safety analysis and warns on the attributes).
#if defined(__clang__) && !defined(SWIG)
#define GRW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GRW_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define GRW_CAPABILITY(x) GRW_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define GRW_SCOPED_CAPABILITY GRW_THREAD_ANNOTATION(scoped_lockable)
/// Field access requires holding the named mutex.
#define GRW_GUARDED_BY(x) GRW_THREAD_ANNOTATION(guarded_by(x))
/// Pointee access requires holding the named mutex.
#define GRW_PT_GUARDED_BY(x) GRW_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (and did not hold it on entry).
#define GRW_ACQUIRE(...) \
  GRW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry).
#define GRW_RELEASE(...) \
  GRW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Caller must hold the capability across the call.
#define GRW_REQUIRES(...) \
  GRW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define GRW_EXCLUDES(...) GRW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Declares lock-ordering edges checked by the analysis.
#define GRW_ACQUIRED_AFTER(...) \
  GRW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GRW_ACQUIRED_BEFORE(...) \
  GRW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define GRW_RETURN_CAPABILITY(x) GRW_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — use only with a comment explaining why the analysis
/// cannot express the pattern. tools/lint_invariants.py counts uses.
#define GRW_NO_THREAD_SAFETY_ANALYSIS \
  GRW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace grw {

namespace sync_internal {

// Abort with a diagnostic; never returns. Out-of-line formatting keeps the
// inlined fast path to two relaxed atomic ops.
[[noreturn]] inline void Die(const char* what) {
  std::fprintf(stderr, "grw::Mutex misuse: %s\n", what);
  std::abort();
}

}  // namespace sync_internal

class CondVar;

/// std::mutex with a capability annotation and runtime misuse checks.
/// Non-recursive by contract; the owner check makes a recursive Lock()
/// abort with a message instead of deadlocking silently.
class GRW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GRW_ACQUIRE() {
    // Checked *before* the blocking lock: by construction owner_ only
    // equals this thread's id while this thread holds the mutex, so a
    // match here is a guaranteed self-deadlock.
    if (owner_.load(std::memory_order_relaxed) ==
        std::this_thread::get_id()) {
      sync_internal::Die("recursive Lock() by the owning thread");
    }
    mu_.lock();
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() GRW_RELEASE() {
    if (owner_.load(std::memory_order_relaxed) !=
        std::this_thread::get_id()) {
      sync_internal::Die("Unlock() by a thread that does not hold the lock");
    }
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  // Diagnostic state only — protected accesses are ordered by mu_ itself;
  // the relaxed loads in the misuse checks read either a stale foreign id
  // or this thread's own (always current) id, both of which answer the
  // "do *I* hold it?" question correctly.
  std::atomic<std::thread::id> owner_{std::thread::id()};
};

/// RAII lock for the scope of a block:  MutexLock lock(mu_);
/// Scoped-capability annotated, so the analysis knows the lock is held
/// until the closing brace.
class GRW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GRW_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GRW_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to grw::Mutex. Wait() names the mutex it
/// operates on, so the analysis checks the caller actually holds it —
/// the classic wait-without-lock bug cannot compile under
/// GRW_THREAD_SAFETY.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires before returning.
  /// Spurious wakeups happen; always call inside a `while (!cond)` loop.
  void Wait(Mutex& mu) GRW_REQUIRES(mu) {
    // The caller owns mu (checked by GRW_REQUIRES statically and by the
    // owner field dynamically); adopt it for the wait, which unlocks
    // around the block. Owner bookkeeping must clear before the unlock
    // and restore after the relock.
    if (mu.owner_.load(std::memory_order_relaxed) !=
        std::this_thread::get_id()) {
      sync_internal::Die("CondVar::Wait() without holding the mutex");
    }
    mu.owner_.store(std::thread::id(), std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
    mu.owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  /// Predicate form, for *unguarded* predicates (test plumbing, locals).
  /// Product code waiting on GRW_GUARDED_BY fields writes the explicit
  /// `while (!cond) cv.Wait(mu);` loop instead — the analysis checks the
  /// enclosing function's lock set but cannot see into a lambda.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) GRW_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace grw
