// Deterministic, seed-driven fault injection.
//
// Robustness code is only as good as the failures it has seen. This
// module lets tests and CI chaos runs inject failures at named sites
// scattered through the storage / crawl / serve stack, with three
// properties the usual `rand() % 100` hack lacks:
//
//   * DETERMINISTIC — whether call #k at site S fires is a pure
//     function of (seed, S, k): `hash(seed, site, ordinal) < p`. A
//     failing chaos run replays exactly from its seed, regardless of
//     thread interleaving (the ordinal is an atomic counter, so which
//     *thread* sees the fault may vary, but the fault schedule per
//     site does not).
//   * FREE WHEN OFF — the `GRW_FAULT(site)` macro expands to the
//     literal `false` unless the build sets -DGRW_FAULT_INJECTION
//     (CMake option of the same name, default OFF). The tuned hot
//     paths from PRs 4/6 compile to identical code in normal builds;
//     the perf-bench gates run with the option off and are unaffected.
//   * CONFIGURABLE WITHOUT RECOMPILING — a spec string names sites and
//     triggers, read from the GRW_FAULT_SPEC / GRW_FAULT_SEED
//     environment on first use (so `GRW_FAULT_SPEC='*=p0.01' grw ...`
//     just works in CI scripts) or set programmatically by tests.
//
// Spec grammar (';'-separated clauses, each `pattern=trigger`):
//
//   grwb.write.fsync=p0.01      fire each call with probability 0.01
//   serve.admit=nth:7           fire calls 7, 14, 21, ...
//   grwb.write.crash=once:3     fire exactly once, on call 3 (once == once:1)
//   net.*=p0.05                 '*' suffix matches any site with the prefix
//   *=p0.01                     every site
//
// The first matching clause wins (most-specific-first is the caller's
// responsibility). A site with no matching clause never fires.
//
// Call sites decide what "fire" means — throw, return an error, simulate
// EINTR, _exit() to fake a crash:
//
//   if (GRW_FAULT("grwb.write.fsync")) { errno = EIO; return -1; }
//
// FaultSite objects register themselves in a global list so the chaos
// suite can enumerate coverage (`fault::Snapshot()`) and assert every
// registered site actually fired during a run.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace grw::fault {

/// True when the build compiled injection sites in (-DGRW_FAULT_INJECTION).
/// Tests use this to gate scenarios that need in-product sites armed.
constexpr bool CompiledIn() {
#if defined(GRW_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

/// Replaces the active configuration. `spec` follows the grammar above
/// (empty = nothing fires); `seed` drives the probability-trigger hash.
/// Takes effect for subsequent Fire() calls on every site (sites re-resolve
/// their triggers lazily via a config epoch). Also resets per-site call /
/// fired counters so a test gets a clean schedule. Not safe to call
/// concurrently with itself; safe to call while other threads Fire().
void Configure(const std::string& spec, uint64_t seed = 0);

/// Configure() from the GRW_FAULT_SPEC / GRW_FAULT_SEED environment
/// variables (missing spec = disabled). Called automatically on the
/// first Fire() if Configure() was never invoked, so binaries need no
/// explicit init — but a long-lived daemon may call it eagerly to log
/// the active spec at startup.
void ConfigureFromEnv();

/// The spec string most recently installed ("" when disabled).
std::string ActiveSpec();

/// Per-site observability for chaos-coverage assertions.
struct SiteCounts {
  std::string site;
  uint64_t calls = 0;
  uint64_t fired = 0;
};

/// Counters for every site constructed so far, in registration order.
std::vector<SiteCounts> Snapshot();

/// One injection point. Normally instantiated via the GRW_FAULT macro
/// (function-local static, registered on first execution); tests may
/// construct sites directly to exercise trigger semantics even in
/// builds where the macro is compiled out.
class FaultSite {
 public:
  explicit FaultSite(const char* name);
  /// Deregisters. Macro sites are function-local statics and live for
  /// the process; this matters for test-constructed sites on the stack,
  /// which must not leave dangling pointers in the registry.
  ~FaultSite();

  FaultSite(const FaultSite&) = delete;
  FaultSite& operator=(const FaultSite&) = delete;

  /// Counts the call and reports whether the active configuration says
  /// this call fails. Thread-safe; deterministic per (seed, name, call
  /// ordinal).
  bool Fire();

  const char* name() const { return name_; }
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Restarts the call ordinal at 1 and clears the fired count for a
  /// fresh schedule. Called by Configure() (which holds the registry
  /// lock) for every registered site.
  void ResetScheduleLocked();

 private:
  struct Triggers {
    bool probability = false;
    double p = 0.0;
    uint64_t nth = 0;      // fire when ordinal % nth == 0
    uint64_t once_at = 0;  // fire when ordinal == once_at
  };

  void Resolve(uint64_t epoch);

  const char* name_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> fired_{0};
  // Counter baseline at the last Configure(): ordinals restart at 1 per
  // configuration so `once:3` means call 3 of *this* schedule.
  std::atomic<uint64_t> base_{0};
  std::atomic<uint64_t> epoch_{0};  // config generation triggers_ reflects
  Triggers triggers_;               // written under the registry mutex
  uint64_t seed_ = 0;
};

}  // namespace grw::fault

// The one injection-point spelling. Inside an `if`, costs one static
// init + an atomic increment in chaos builds and nothing at all in
// normal builds — the branch folds away on the constant.
#if defined(GRW_FAULT_INJECTION)
#define GRW_FAULT(site_name)                          \
  ([]() -> bool {                                     \
    static ::grw::fault::FaultSite grw_fault_site_(site_name); \
    return grw_fault_site_.Fire();                    \
  }())
#else
#define GRW_FAULT(site_name) (false)
#endif
