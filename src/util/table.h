// Aligned-console-table and CSV reporting for the benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper; this
// helper keeps their output uniform: a titled, column-aligned table on
// stdout, optionally mirrored to a CSV file for plotting.

#pragma once

#include <string>
#include <vector>

namespace grw {

/// Column-aligned text table with optional CSV export.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends one row; the number of cells should match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 4);
  static std::string Sci(double v, int precision = 3);
  static std::string Int(long long v);
  /// Human-readable duration from seconds, e.g. "19.4 ms", "20.6 s".
  static std::string Duration(double seconds);

  /// Renders the aligned table to a string (including title and rule lines).
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Writes the table as CSV to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  size_t NumRows() const { return rows_.size(); }

  /// Read access for generic exporters (bench_common.h derives JSON
  /// metrics from the rendered table without each bench re-listing them).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grw
