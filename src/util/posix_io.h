// Checked POSIX IO: the single home for raw read/write/connect/fsync
// syscalls (lint rule `raw-posix-io` bans them elsewhere).
//
// Every loop here handles the two failure shapes that silently corrupt
// protocols when forgotten at call sites:
//
//   * EINTR — a signal interrupting a slow syscall is a retry, not an
//     error. Each wrapper loops.
//   * short writes — write(2) may accept a prefix; WriteAll() loops
//     until every byte is accepted or a real error occurs.
//
// plus a third the serve layer needs for liveness:
//
//   * timeouts — `timeout_ms >= 0` bounds each wait with poll(2), so a
//     hung peer yields Status::kTimeout instead of blocking forever.
//     `timeout_ms < 0` waits indefinitely (the pre-PR-9 behavior,
//     still right for the server's drain path which bounds lifetime by
//     shutdown(2) instead).
//
// Fault-injection sites (armed only under GRW_FAULT_INJECTION; see
// util/fault.h) simulate EINTR, short writes, and hard IO errors inside
// the wrappers, so chaos runs exercise exactly the retry loops that
// production hits rarely:
//
//   io.read.eintr   io.read.fail    io.write.eintr   io.write.short
//   io.write.fail   io.connect.fail io.fsync.fail
#pragma once

#include <sys/socket.h>

#include <cstddef>
#include <string_view>

namespace grw::io {

struct IoResult {
  enum class Status {
    kOk,       // request satisfied (all bytes written / >= 1 byte read)
    kEof,      // orderly peer close before any byte (reads only)
    kTimeout,  // timeout_ms elapsed with the fd not ready
    kError,    // errno-level failure; `error` holds it
  };
  Status status = Status::kOk;
  size_t bytes = 0;  // bytes actually transferred
  int error = 0;     // errno when status == kError

  bool ok() const { return status == Status::kOk; }
};

/// Reads up to `cap` bytes, retrying EINTR. Returns kOk with bytes >= 1,
/// kEof on orderly close, kTimeout if `timeout_ms >= 0` elapses first.
IoResult ReadSome(int fd, char* buf, size_t cap, int timeout_ms = -1);

/// Writes ALL of `data`, looping over partial writes and EINTR. kOk
/// means every byte was accepted by the kernel; on kError/kTimeout,
/// `bytes` says how many made it out (the stream is presumed poisoned).
IoResult WriteAll(int fd, std::string_view data, int timeout_ms = -1);
IoResult WriteAll(int fd, const void* data, size_t len, int timeout_ms = -1);

/// connect(2) with a bounded wait (non-blocking connect + poll). Returns
/// 0 on success; -1 with errno set on failure (ETIMEDOUT when the
/// timeout elapsed). The fd is left in blocking mode on return.
int ConnectWithTimeout(int fd, const struct sockaddr* addr, socklen_t len,
                       int timeout_ms);

/// fsync(2) with EINTR retry (and a chaos site). 0 or -1/errno.
int Fsync(int fd);

}  // namespace grw::io
