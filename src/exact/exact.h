// Ground-truth facade: exact induced graphlet counts and concentrations.
//
// Routes each size to the cheapest exact method:
//   k = 3 — closed forms from wedge and triangle counts,
//   k = 4 — formula-based counter (exact/four_count.h),
//   k = 5 and 6 — ESU enumeration (exact/esu.h), cost grows with the
//                 number of k-subgraphs; reserve for small/medium graphs,
//                 mirroring the paper's Table 5 footnote.

#pragma once

#include <vector>

#include "graph/graph.h"

namespace grw {

/// Exact induced k-node graphlet counts, indexed by catalog id.
std::vector<int64_t> ExactGraphletCounts(const Graph& g, int k);

/// Exact graphlet concentrations c^k_i = C^k_i / sum_j C^k_j, indexed by
/// catalog id. All-zero graphs yield all-zero concentrations.
std::vector<double> ExactConcentrations(const Graph& g, int k);

/// Concentrations computed from a count vector (shared normalization).
std::vector<double> ConcentrationsFromCounts(
    const std::vector<int64_t>& counts);

}  // namespace grw
