// ESU (FANMOD) enumeration of all connected induced k-node subgraphs.
//
// Wernicke's ESU enumerates each connected k-vertex subgraph exactly once:
// grow from an anchor vertex v, only ever adding vertices with id > v that
// are in the *exclusive* neighborhood of the current partial subgraph (so
// each subgraph is discovered from its minimum vertex through a unique
// extension order).
//
// The paper obtains its ground-truth concentrations from "well-tuned
// enumeration methods" [3, 13]; ESU with O(1) bitmask classification is our
// equivalent. It is also the reference oracle the sampling estimators are
// tested against, and supplies |H(d)| / |R(d)| for d >= 3 in tests.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Calls visit(nodes) once for every connected induced k-node subgraph of
/// g, with nodes in the order ESU discovered them (anchor first; NOT
/// sorted). 1 <= k <= 32. The span is invalidated when visit returns.
void ForEachConnectedSubgraph(
    const Graph& g, int k,
    const std::function<void(std::span<const VertexId>)>& visit);

/// Exact induced graphlet counts by enumeration, indexed by catalog id.
/// 3 <= k <= kMaxGraphletSize. Time grows with the number of k-subgraphs;
/// intended for ground truth on small/medium graphs (paper Table 5 computes
/// 5-node ground truth only for its four smallest datasets for the same
/// reason).
std::vector<int64_t> CountGraphletsEsu(const Graph& g, int k);

/// Number of connected induced d-node subgraphs |H(d)|.
uint64_t CountConnectedSubgraphs(const Graph& g, int d);

/// Graphlet degree vector of node v: result[o] = number of connected
/// induced k-node subgraphs containing v in which v occupies orbit o
/// (orbit ids per graphlet/orbits.h). Enumeration-based — intended for
/// small/medium graphs (same cost profile as exact counting).
std::vector<int64_t> GraphletDegreeVector(const Graph& g, VertexId v,
                                          int k);

}  // namespace grw
