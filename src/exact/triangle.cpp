#include "exact/triangle.h"

#include <algorithm>
#include <cassert>

namespace grw {

EdgeIndex::EdgeIndex(const Graph& g) : g_(&g) {
  const VertexId n = g.NumNodes();
  first_id_.resize(static_cast<size_t>(n) + 1);
  uint64_t next = 0;
  for (VertexId u = 0; u < n; ++u) {
    first_id_[u] = next;
    const auto nbrs = g.Neighbors(u);
    // Edges owned by u: neighbors with id > u (upper-triangle convention).
    next += nbrs.end() - std::upper_bound(nbrs.begin(), nbrs.end(), u);
  }
  first_id_[n] = next;
  num_edges_ = next;
  assert(num_edges_ == g.NumEdges());
}

uint64_t EdgeIndex::Id(VertexId u, VertexId v) const {
  if (u > v) std::swap(u, v);
  const auto nbrs = g_->Neighbors(u);
  const auto higher = std::upper_bound(nbrs.begin(), nbrs.end(), u);
  const auto pos = std::lower_bound(higher, nbrs.end(), v);
  assert(pos != nbrs.end() && *pos == v && "edge does not exist");
  return first_id_[u] + static_cast<uint64_t>(pos - higher);
}

std::pair<VertexId, VertexId> EdgeIndex::Endpoints(uint64_t id) const {
  assert(id < num_edges_);
  const auto it =
      std::upper_bound(first_id_.begin(), first_id_.end(), id) - 1;
  const VertexId u = static_cast<VertexId>(it - first_id_.begin());
  const auto nbrs = g_->Neighbors(u);
  const auto higher = std::upper_bound(nbrs.begin(), nbrs.end(), u);
  return {u, *(higher + (id - *it))};
}

TriangleCounts CountTriangles(const Graph& g, bool need_per_edge,
                              bool need_per_node) {
  const VertexId n = g.NumNodes();
  TriangleCounts result;
  if (need_per_node) result.per_node.assign(n, 0);
  EdgeIndex index(g);
  if (need_per_edge) result.per_edge.assign(index.NumEdges(), 0);

  // Rank nodes by (degree, id); orient edges low-rank -> high-rank. Every
  // triangle has a unique lowest-rank vertex u with oriented wedge
  // u->v, u->w; it is a triangle iff v-w is an edge, checked against
  // oriented adjacency of v (or w).
  std::vector<uint32_t> rank(n);
  {
    std::vector<VertexId> order(n);
    for (VertexId v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
      const uint32_t da = g.Degree(a);
      const uint32_t db = g.Degree(b);
      return da != db ? da < db : a < b;
    });
    for (VertexId i = 0; i < n; ++i) rank[order[i]] = i;
  }

  // Oriented adjacency: out[v] = neighbors with higher rank, sorted by id.
  std::vector<uint64_t> out_offset(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t cnt = 0;
    for (VertexId w : g.Neighbors(v)) {
      if (rank[w] > rank[v]) ++cnt;
    }
    out_offset[v + 1] = out_offset[v] + cnt;
  }
  std::vector<VertexId> out(out_offset[n]);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t at = out_offset[v];
    for (VertexId w : g.Neighbors(v)) {  // sorted by id already
      if (rank[w] > rank[v]) out[at++] = w;
    }
  }
  auto out_nbrs = [&](VertexId v) {
    return std::span<const VertexId>(out.data() + out_offset[v],
                                     out.data() + out_offset[v + 1]);
  };

  for (VertexId u = 0; u < n; ++u) {
    const auto un = out_nbrs(u);
    for (size_t i = 0; i < un.size(); ++i) {
      const VertexId v = un[i];
      const auto vn = out_nbrs(v);
      // Intersect un[i+1..] with vn, both sorted by id: w adjacent to both
      // u and v with rank(w) > rank(v) > rank(u) — but un[i+1..] is sorted
      // by id, not rank, so intersect the full ranges instead.
      // w must have rank above both u and v; out-lists guarantee that.
      size_t a = 0;
      size_t b = 0;
      while (a < un.size() && b < vn.size()) {
        if (un[a] < vn[b]) {
          ++a;
        } else if (un[a] > vn[b]) {
          ++b;
        } else {
          const VertexId w = un[a];
          if (w != v) {
            ++result.total;
            if (need_per_node) {
              result.per_node[u]++;
              result.per_node[v]++;
              result.per_node[w]++;
            }
            if (need_per_edge) {
              result.per_edge[index.Id(u, v)]++;
              result.per_edge[index.Id(u, w)]++;
              result.per_edge[index.Id(v, w)]++;
            }
          }
          ++a;
          ++b;
        }
      }
    }
  }
  return result;
}

double GlobalClusteringCoefficient(const Graph& g) {
  const uint64_t wedges = g.WedgeCount();
  if (wedges == 0) return 0.0;
  const TriangleCounts tc = CountTriangles(g, /*need_per_edge=*/false,
                                           /*need_per_node=*/false);
  return 3.0 * static_cast<double>(tc.total) / static_cast<double>(wedges);
}

}  // namespace grw
