#include "exact/four_count.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "exact/triangle.h"
#include "graphlet/catalog.h"
#include "graphlet/noninduced.h"

namespace grw {

namespace {

// C(x, 2) and C(x, 3) in 64-bit arithmetic.
uint64_t Choose2(uint64_t x) { return x < 2 ? 0 : x * (x - 1) / 2; }
uint64_t Choose3(uint64_t x) {
  return x < 3 ? 0 : x * (x - 1) / 2 * (x - 2) / 3;
}

// Oriented (degree-ordered) adjacency shared by the C4 and K4 passes.
struct OrientedAdjacency {
  std::vector<uint64_t> offset;
  std::vector<VertexId> out;  // higher-rank neighbors, sorted by id

  explicit OrientedAdjacency(const Graph& g) {
    const VertexId n = g.NumNodes();
    std::vector<uint32_t> rank(n);
    std::vector<VertexId> order(n);
    for (VertexId v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
      const uint32_t da = g.Degree(a);
      const uint32_t db = g.Degree(b);
      return da != db ? da < db : a < b;
    });
    for (VertexId i = 0; i < n; ++i) rank[order[i]] = i;

    offset.assign(static_cast<size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      uint64_t cnt = 0;
      for (VertexId w : g.Neighbors(v)) {
        if (rank[w] > rank[v]) ++cnt;
      }
      offset[v + 1] = offset[v] + cnt;
    }
    out.resize(offset[n]);
    for (VertexId v = 0; v < n; ++v) {
      uint64_t at = offset[v];
      for (VertexId w : g.Neighbors(v)) {
        if (rank[w] > rank[v]) out[at++] = w;
      }
    }
  }

  std::span<const VertexId> Out(VertexId v) const {
    return {out.data() + offset[v], out.data() + offset[v + 1]};
  }
};

// Number of non-induced 4-cycles: half the sum over node pairs {u, w}
// of C(codeg(u, w), 2) — each cycle is counted once per diagonal.
uint64_t CountCycles4(const Graph& g) {
  const VertexId n = g.NumNodes();
  uint64_t doubled = 0;
  std::vector<uint32_t> codeg(n, 0);
  std::vector<VertexId> touched;
  for (VertexId u = 0; u < n; ++u) {
    touched.clear();
    for (VertexId v : g.Neighbors(u)) {
      for (VertexId w : g.Neighbors(v)) {
        if (w <= u) continue;  // count each unordered pair {u, w} once
        if (codeg[w]++ == 0) touched.push_back(w);
      }
    }
    for (VertexId w : touched) {
      doubled += Choose2(codeg[w]);
      codeg[w] = 0;
    }
  }
  return doubled / 2;
}

// Number of K4s: for each triangle with rank order u < v < w, count the
// common higher-rank extensions x (sorted-list intersections).
uint64_t CountCliques4(const OrientedAdjacency& oriented, VertexId n) {
  uint64_t cliques = 0;
  std::vector<VertexId> tuv;
  for (VertexId u = 0; u < n; ++u) {
    const auto un = oriented.Out(u);
    for (VertexId v : un) {
      const auto vn = oriented.Out(v);
      tuv.clear();
      std::set_intersection(un.begin(), un.end(), vn.begin(), vn.end(),
                            std::back_inserter(tuv));
      for (VertexId w : tuv) {
        const auto wn = oriented.Out(w);
        // |tuv ∩ out(w)|: every such x has rank above u, v and w.
        size_t a = 0;
        size_t b = 0;
        while (a < tuv.size() && b < wn.size()) {
          if (tuv[a] < wn[b]) {
            ++a;
          } else if (tuv[a] > wn[b]) {
            ++b;
          } else {
            ++cliques;
            ++a;
            ++b;
          }
        }
      }
    }
  }
  return cliques;
}

}  // namespace

std::vector<int64_t> CountFourNodeNonInduced(const Graph& g) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(4);
  std::vector<int64_t> counts(catalog.NumTypes(), 0);

  const TriangleCounts tc = CountTriangles(g);
  const uint64_t triangles = tc.total;

  // Paths: sum over edges of (d_u - 1)(d_v - 1) counts 3-edge walks
  // u'-u-v-v' with distinct middle edge; u' == v' closes a triangle and
  // happens once per triangle edge, i.e. 3T times.
  uint64_t path_walks = 0;
  uint64_t paws = 0;
  uint64_t diamonds = 0;
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    const uint64_t du = g.Degree(u);
    if (du >= 2) paws += tc.per_node[u] * (du - 2);
    for (VertexId v : g.Neighbors(u)) {
      if (v <= u) continue;
      path_walks += (du - 1) * static_cast<uint64_t>(g.Degree(v) - 1);
    }
  }
  for (uint32_t t : tc.per_edge) diamonds += Choose2(t);

  uint64_t stars = 0;
  for (VertexId v = 0; v < g.NumNodes(); ++v) stars += Choose3(g.Degree(v));

  const OrientedAdjacency oriented(g);

  counts[catalog.IdByName("4-path")] =
      static_cast<int64_t>(path_walks - 3 * triangles);
  counts[catalog.IdByName("3-star")] = static_cast<int64_t>(stars);
  counts[catalog.IdByName("4-cycle")] =
      static_cast<int64_t>(CountCycles4(g));
  counts[catalog.IdByName("tailed-triangle")] = static_cast<int64_t>(paws);
  counts[catalog.IdByName("chordal-cycle")] =
      static_cast<int64_t>(diamonds);
  counts[catalog.IdByName("4-clique")] =
      static_cast<int64_t>(CountCliques4(oriented, g.NumNodes()));
  return counts;
}

std::vector<int64_t> CountFourNodeGraphlets(const Graph& g) {
  const std::vector<int64_t> non_induced = CountFourNodeNonInduced(g);
  std::vector<double> as_double(non_induced.begin(), non_induced.end());
  const std::vector<double> induced = InducedFromNonInduced(4, as_double);
  std::vector<int64_t> result(induced.size());
  for (size_t i = 0; i < induced.size(); ++i) {
    result[i] = static_cast<int64_t>(std::llround(induced[i]));
    assert(result[i] >= 0);
  }
  return result;
}

}  // namespace grw
