// Exact triangle statistics: total count, per-edge and per-node counts.
//
// Uses the standard degree-ordered edge-iterator algorithm (a.k.a. compact
// forward): orient each edge toward the higher-(degree, id) endpoint and
// intersect out-neighborhoods, giving O(m^{3/2}) time. Per-edge and
// per-node triangle counts feed the formula-based exact 4-node counter.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Triangle counting results.
struct TriangleCounts {
  /// Total number of triangles in the graph.
  uint64_t total = 0;
  /// per_node[v] = number of triangles containing v.
  std::vector<uint64_t> per_node;
  /// per_edge[EdgeId(u,v)] = number of triangles containing edge (u,v).
  std::vector<uint32_t> per_edge;
};

/// Dense ids for undirected edges: EdgeId(u, v) with u < v enumerates
/// edges in CSR order. Used to attach per-edge quantities.
class EdgeIndex {
 public:
  explicit EdgeIndex(const Graph& g);

  /// Id in [0, g.NumEdges()) of edge (u, v); u and v in either order.
  /// The edge must exist.
  uint64_t Id(VertexId u, VertexId v) const;

  uint64_t NumEdges() const { return num_edges_; }

  /// Endpoints (u, v), u < v, of an edge id. O(log n) via offset search.
  std::pair<VertexId, VertexId> Endpoints(uint64_t id) const;

 private:
  const Graph* g_;
  uint64_t num_edges_;
  /// first_id_[u] = id of the first edge (u, v) with v > u.
  std::vector<uint64_t> first_id_;
};

/// Computes exact triangle counts. `need_per_edge`/`need_per_node` control
/// whether the corresponding vectors are filled (skipping them saves
/// memory on large graphs).
TriangleCounts CountTriangles(const Graph& g, bool need_per_edge = true,
                              bool need_per_node = true);

/// Global clustering coefficient 3*T / (number of wedges)
/// = 3*c32 / (2*c32 + 1) in the paper's concentration terms (Section 2.1).
double GlobalClusteringCoefficient(const Graph& g);

}  // namespace grw
