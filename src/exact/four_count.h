// Exact induced 4-node graphlet counts via closed-form combinatorics —
// no 4-subgraph enumeration.
//
// Strategy (the PGD / Ahmed-et-al. style the paper cites as its
// ground-truth source [3, 13]):
//   1. compute exact *non-induced* spanning counts of the six 4-node
//      patterns from degrees, per-edge/per-node triangle counts, codegree
//      pair statistics and a K4 enumeration;
//   2. convert to induced counts with the programmatic unitriangular
//      embedding matrix (graphlet/noninduced.h).
//
// Runs in roughly O(sum_v d_v^2) time, which covers every dataset in our
// registry including the large low-clustering ones, exactly as the paper
// computes 3-/4-node ground truth for all ten of its graphs.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Exact induced 4-node graphlet counts, indexed by catalog id
/// (GraphletCatalog::ForSize(4)).
std::vector<int64_t> CountFourNodeGraphlets(const Graph& g);

/// Exact non-induced spanning counts of the six 4-node patterns, indexed
/// by catalog id. Exposed for tests (cross-checked against the embedding
/// matrix applied to ESU induced counts).
std::vector<int64_t> CountFourNodeNonInduced(const Graph& g);

}  // namespace grw
