#include "exact/exact.h"

#include <cassert>

#include "exact/esu.h"
#include "exact/four_count.h"
#include "exact/triangle.h"
#include "graphlet/catalog.h"

namespace grw {

std::vector<int64_t> ExactGraphletCounts(const Graph& g, int k) {
  assert(k >= 3 && k <= kMaxGraphletSize);
  if (k == 3) {
    const GraphletCatalog& catalog = GraphletCatalog::ForSize(3);
    const TriangleCounts tc = CountTriangles(g, /*need_per_edge=*/false,
                                             /*need_per_node=*/false);
    std::vector<int64_t> counts(2, 0);
    // Induced wedges = all wedges minus the three closed ones per triangle.
    counts[catalog.IdByName("wedge")] =
        static_cast<int64_t>(g.WedgeCount() - 3 * tc.total);
    counts[catalog.IdByName("triangle")] = static_cast<int64_t>(tc.total);
    return counts;
  }
  if (k == 4) return CountFourNodeGraphlets(g);
  return CountGraphletsEsu(g, k);
}

std::vector<double> ConcentrationsFromCounts(
    const std::vector<int64_t>& counts) {
  double total = 0.0;
  for (int64_t c : counts) total += static_cast<double>(c);
  std::vector<double> result(counts.size(), 0.0);
  if (total > 0.0) {
    for (size_t i = 0; i < counts.size(); ++i) {
      result[i] = static_cast<double>(counts[i]) / total;
    }
  }
  return result;
}

std::vector<double> ExactConcentrations(const Graph& g, int k) {
  return ConcentrationsFromCounts(ExactGraphletCounts(g, k));
}

}  // namespace grw
