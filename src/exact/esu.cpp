#include "exact/esu.h"

#include <cassert>

#include "graphlet/catalog.h"
#include "graphlet/classifier.h"
#include "graphlet/orbits.h"

namespace grw {

namespace {

// Recursive ESU with timestamped marks (no O(n) clears per anchor) and a
// single shared extension stack (each recursion level appends its candidate
// window past its parent's).
class EsuRunner {
 public:
  EsuRunner(const Graph& g, int k,
            const std::function<void(std::span<const VertexId>)>& visit)
      : g_(g), k_(k), visit_(visit), mark_(g.NumNodes(), 0) {}

  void Run() {
    for (VertexId v = 0; v < g_.NumNodes(); ++v) {
      anchor_ = v;
      ++stamp_;
      sub_.assign(1, v);
      mark_[v] = stamp_ * 2 + 1;  // in subgraph
      ext_.clear();
      for (VertexId w : g_.Neighbors(v)) {
        if (w > v) {
          ext_.push_back(w);
          mark_[w] = stamp_ * 2;  // seen
        }
      }
      Extend(0, static_cast<int>(ext_.size()));
    }
  }

 private:
  bool Touched(VertexId v) const { return mark_[v] >= stamp_ * 2; }

  // Extends the current subgraph with candidates ext_[base, base + size).
  void Extend(int base, int size) {
    if (static_cast<int>(sub_.size()) == k_) {
      visit_({sub_.data(), sub_.size()});
      return;
    }
    // ESU: repeatedly remove one candidate w from the extension set and
    // recurse on {remaining candidates} ∪ {exclusive neighbors of w}.
    for (int i = size - 1; i >= 0; --i) {
      const VertexId w = ext_[base + i];
      const int child = static_cast<int>(ext_.size());
      for (int j = 0; j < i; ++j) {
        const VertexId keep = ext_[base + j];  // copy before push_back
        ext_.push_back(keep);
      }
      const size_t unmark_from = newly_seen_.size();
      for (VertexId u : g_.Neighbors(w)) {
        if (u > anchor_ && !Touched(u)) {
          mark_[u] = stamp_ * 2;
          newly_seen_.push_back(u);
          ext_.push_back(u);
        }
      }
      sub_.push_back(w);
      mark_[w] = stamp_ * 2 + 1;
      Extend(child, static_cast<int>(ext_.size()) - child);
      mark_[w] = stamp_ * 2;
      sub_.pop_back();
      // Nodes first seen through w become unseen again, so sibling
      // branches may rediscover them (exclusive-neighborhood rule).
      while (newly_seen_.size() > unmark_from) {
        mark_[newly_seen_.back()] = 0;
        newly_seen_.pop_back();
      }
      ext_.resize(child);
    }
  }

  const Graph& g_;
  const int k_;
  const std::function<void(std::span<const VertexId>)>& visit_;
  VertexId anchor_ = 0;
  uint64_t stamp_ = 0;
  std::vector<uint64_t> mark_;
  std::vector<VertexId> sub_;
  std::vector<VertexId> ext_;
  std::vector<VertexId> newly_seen_;
};

}  // namespace

void ForEachConnectedSubgraph(
    const Graph& g, int k,
    const std::function<void(std::span<const VertexId>)>& visit) {
  assert(k >= 1 && k <= 32);
  if (k == 1) {
    for (VertexId v = 0; v < g.NumNodes(); ++v) visit({&v, 1});
    return;
  }
  EsuRunner runner(g, k, visit);
  runner.Run();
}

std::vector<int64_t> CountGraphletsEsu(const Graph& g, int k) {
  assert(k >= 3 && k <= kMaxGraphletSize);
  const GraphletClassifier& classifier = GraphletClassifier::ForSize(k);
  std::vector<int64_t> counts(GraphletCatalog::ForSize(k).NumTypes(), 0);
  // Classification does C(k,2) HasEdge probes per enumerated subgraph —
  // millions on any interesting graph — so callers should attach an
  // adjacency index first (grw_cli exact and LoadBenchGraphs do, unless
  // --no-index asks for the binary-search baseline; counts are identical
  // either way).
  ForEachConnectedSubgraph(
      g, k, [&](std::span<const VertexId> nodes) {
        uint32_t mask = 0;
        for (int i = 0; i < k; ++i) {
          for (int j = i + 1; j < k; ++j) {
            if (g.HasEdge(nodes[i], nodes[j])) {
              mask = MaskWithEdge(mask, k, i, j);
            }
          }
        }
        const int type = classifier.Type(mask);
        assert(type >= 0);
        counts[type]++;
      });
  return counts;
}

std::vector<int64_t> GraphletDegreeVector(const Graph& g, VertexId v,
                                          int k) {
  const OrbitCatalog& orbits = OrbitCatalog::ForSize(k);
  const GraphletClassifier& classifier = GraphletClassifier::ForSize(k);
  std::vector<int64_t> gdv(orbits.NumOrbits(), 0);
  // One full enumeration, filtered to subgraphs containing v. (For
  // one-off queries anchoring ESU at v would be cheaper; computing GDVs
  // for all nodes costs one pass this way.)
  ForEachConnectedSubgraph(g, k, [&](std::span<const VertexId> nodes) {
    int position = -1;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == v) {
        position = static_cast<int>(i);
        break;
      }
    }
    if (position < 0) return;
    uint32_t mask = 0;
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        if (g.HasEdge(nodes[i], nodes[j])) {
          mask = MaskWithEdge(mask, k, i, j);
        }
      }
    }
    const MaskInfo& info = classifier.Info(mask);
    gdv[orbits.OrbitOf(info.type, info.canonical_label_of[position])]++;
  });
  return gdv;
}

uint64_t CountConnectedSubgraphs(const Graph& g, int d) {
  uint64_t count = 0;
  ForEachConnectedSubgraph(g, d,
                           [&count](std::span<const VertexId>) { ++count; });
  return count;
}

}  // namespace grw
