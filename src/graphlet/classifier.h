// O(1) graphlet-type classification of sampled subgraphs.
//
// The estimator must identify the graphlet type of a k-node sample at every
// random-walk step (paper Section 5, "Identify Graphlet Types"). We go one
// step past the paper's degree-signature method — which is ambiguous for
// some 5-node pairs — by precomputing, for every adjacency mask of a k-node
// graph, its catalog id and the permutation to canonical form. For k = 5
// that is a 1024-entry table; classification is a single load.
//
// The stored permutation also drives CSS weighting (core/css.h): CSS
// coefficient patterns are expressed in canonical labels and must be mapped
// onto the observed sample's vertices.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graphlet/catalog.h"

namespace grw {

/// Per-mask classification record.
struct MaskInfo {
  /// Catalog id of the pattern, or -1 if the mask is disconnected.
  int16_t type = -1;
  /// canonical_label_of[i] = canonical label of the vertex at observed
  /// position i (valid only when type >= 0).
  std::array<uint8_t, kMaxGraphletSize> canonical_label_of = {};
  /// position_of[c] = observed position of canonical label c (the inverse
  /// permutation; valid only when type >= 0).
  std::array<uint8_t, kMaxGraphletSize> position_of = {};
};

/// Precomputed classifier for k-node masks, 3 <= k <= kMaxGraphletSize.
class GraphletClassifier {
 public:
  explicit GraphletClassifier(int k);

  int k() const { return k_; }

  /// Catalog id for mask, or -1 if disconnected. O(1).
  int Type(uint32_t mask) const { return table_[mask].type; }

  /// Full record including the canonicalizing permutation. O(1).
  const MaskInfo& Info(uint32_t mask) const { return table_[mask]; }

  /// Shared per-size classifier (thread-safe singleton).
  static const GraphletClassifier& ForSize(int k);

 private:
  int k_;
  std::vector<MaskInfo> table_;
};

}  // namespace grw
