#include "graphlet/classifier.h"

#include <cassert>
#include <stdexcept>
#include <memory>
#include <mutex>

namespace grw {

GraphletClassifier::GraphletClassifier(int k) : k_(k) {
  if (k < 3 || k > kMaxGraphletSize) {
    throw std::invalid_argument("GraphletClassifier: k out of range");
  }
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  const uint32_t num_masks = 1u << NumPairBits(k);
  table_.resize(num_masks);
  for (uint32_t mask = 0; mask < num_masks; ++mask) {
    MaskInfo& info = table_[mask];
    if (!MaskIsConnected(mask, k)) continue;
    int perm[kMaxGraphletSize];
    const uint32_t canon = CanonicalMask(mask, k, perm);
    info.type = static_cast<int16_t>(catalog.IdForCanonicalMask(canon));
    assert(info.type >= 0);
    for (int i = 0; i < k; ++i) {
      info.canonical_label_of[i] = static_cast<uint8_t>(perm[i]);
      info.position_of[perm[i]] = static_cast<uint8_t>(i);
    }
  }
}

const GraphletClassifier& GraphletClassifier::ForSize(int k) {
  if (k < 3 || k > kMaxGraphletSize) {
    throw std::invalid_argument(
        "GraphletClassifier::ForSize: k out of range");
  }
  static std::once_flag flags[kMaxGraphletSize + 1];
  static std::unique_ptr<GraphletClassifier> classifiers[kMaxGraphletSize +
                                                         1];
  std::call_once(flags[k], [k] {
    classifiers[k] =
        std::unique_ptr<GraphletClassifier>(new GraphletClassifier(k));
  });
  return *classifiers[k];
}

}  // namespace grw
