#include "graphlet/catalog.h"

#include <algorithm>
#include <stdexcept>
#include <bit>
#include <cassert>
#include <memory>
#include <mutex>
#include <numeric>

namespace grw {

uint32_t MaskFromEdges(int k,
                       const std::vector<std::pair<int, int>>& edges) {
  uint32_t mask = 0;
  for (const auto& [i, j] : edges) {
    assert(i != j && i >= 0 && j >= 0 && i < k && j < k);
    mask = MaskWithEdge(mask, k, i, j);
  }
  return mask;
}

bool MaskIsConnected(uint32_t mask, int k) {
  if (k <= 1) return true;
  uint32_t visited = 1u;  // vertex bit set, start from vertex 0
  uint32_t frontier = 1u;
  while (frontier != 0) {
    uint32_t next = 0;
    for (int i = 0; i < k; ++i) {
      if (!((frontier >> i) & 1u)) continue;
      for (int j = 0; j < k; ++j) {
        if (j != i && !((visited >> j) & 1u) && MaskHasEdge(mask, k, i, j)) {
          next |= 1u << j;
        }
      }
    }
    visited |= next;
    frontier = next;
  }
  return visited == (1u << k) - 1u;
}

uint32_t ApplyPermutation(uint32_t mask, int k, const int* perm) {
  uint32_t out = 0;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (MaskHasEdge(mask, k, i, j)) {
        out = MaskWithEdge(out, k, perm[i], perm[j]);
      }
    }
  }
  return out;
}

uint32_t CanonicalMask(uint32_t mask, int k, int* canon_perm) {
  int perm[kMaxGraphletSize] = {};
  std::iota(perm, perm + k, 0);
  uint32_t best = ApplyPermutation(mask, k, perm);
  if (canon_perm != nullptr) std::copy(perm, perm + k, canon_perm);
  while (std::next_permutation(perm, perm + k)) {
    const uint32_t candidate = ApplyPermutation(mask, k, perm);
    if (candidate < best) {
      best = candidate;
      if (canon_perm != nullptr) std::copy(perm, perm + k, canon_perm);
    }
  }
  return best;
}

namespace {

// Standard names for the small graphlets, in paper Figure 2 terminology.
std::string GraphletName(int k, uint32_t canonical_mask, int num_edges,
                         int index_within_size) {
  if (k == 3) return num_edges == 2 ? "wedge" : "triangle";
  if (k == 4) {
    // Distinguish by degree multiset.
    int deg[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i != j && MaskHasEdge(canonical_mask, 4, i, j)) deg[i]++;
      }
    }
    std::sort(deg, deg + 4);
    if (num_edges == 3) return deg[3] == 3 ? "3-star" : "4-path";
    if (num_edges == 4) return deg[0] == 2 ? "4-cycle" : "tailed-triangle";
    if (num_edges == 5) return "chordal-cycle";
    return "4-clique";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%d-e%d-%d", k, num_edges,
                index_within_size);
  return buf;
}

}  // namespace

GraphletCatalog::GraphletCatalog(int k) : k_(k) {
  if (k < 2 || k > kMaxGraphletSize) {
    throw std::invalid_argument("GraphletCatalog: k out of range");
  }
  const int bits = NumPairBits(k);
  const uint32_t num_masks = 1u << bits;
  canonical_to_id_.assign(num_masks, -1);

  // Enumerate all masks; record each connected canonical form once.
  std::vector<uint32_t> canon_masks;
  std::vector<char> seen(num_masks, 0);
  for (uint32_t mask = 0; mask < num_masks; ++mask) {
    if (!MaskIsConnected(mask, k)) continue;
    const uint32_t canon = CanonicalMask(mask, k);
    if (!seen[canon]) {
      seen[canon] = 1;
      canon_masks.push_back(canon);
    }
  }
  std::sort(canon_masks.begin(), canon_masks.end(),
            [](uint32_t a, uint32_t b) {
              const int ea = std::popcount(a);
              const int eb = std::popcount(b);
              return ea != eb ? ea < eb : a < b;
            });

  int index_within_edge_count = 0;
  int prev_edges = -1;
  for (uint32_t canon : canon_masks) {
    Graphlet g;
    g.k = k;
    g.canonical_mask = canon;
    g.num_edges = std::popcount(canon);
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        if (MaskHasEdge(canon, k, i, j)) {
          g.edges.emplace_back(i, j);
          g.degree[i]++;
          g.degree[j]++;
        }
      }
    }
    index_within_edge_count =
        g.num_edges == prev_edges ? index_within_edge_count + 1 : 0;
    prev_edges = g.num_edges;
    g.name = GraphletName(k, canon, g.num_edges, index_within_edge_count);
    canonical_to_id_[canon] = static_cast<int16_t>(graphlets_.size());
    graphlets_.push_back(std::move(g));
  }
}

int GraphletCatalog::IdForCanonicalMask(uint32_t canonical_mask) const {
  if (canonical_mask >= canonical_to_id_.size()) return -1;
  return canonical_to_id_[canonical_mask];
}

int GraphletCatalog::IdByName(const std::string& name) const {
  for (size_t id = 0; id < graphlets_.size(); ++id) {
    if (graphlets_[id].name == name) return static_cast<int>(id);
  }
  return -1;
}

int GraphletCatalog::Classify(uint32_t mask) const {
  return IdForCanonicalMask(CanonicalMask(mask, k_));
}

const GraphletCatalog& GraphletCatalog::ForSize(int k) {
  if (k < 2 || k > kMaxGraphletSize) {
    throw std::invalid_argument("GraphletCatalog::ForSize: k out of range");
  }
  static std::once_flag flags[kMaxGraphletSize + 1];
  static std::unique_ptr<GraphletCatalog> catalogs[kMaxGraphletSize + 1];
  std::call_once(flags[k], [k] {
    catalogs[k] = std::unique_ptr<GraphletCatalog>(new GraphletCatalog(k));
  });
  return *catalogs[k];
}

}  // namespace grw
