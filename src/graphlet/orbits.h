// Graphlet orbits: the automorphism equivalence classes of vertex
// positions within each graphlet.
//
// The biology applications the paper cites (graphlet degree signatures,
// Milenkovic & Przulj) characterize a node by how often it touches each
// *orbit* — e.g. a wedge has two orbits (end, center), the 73 orbits of
// the 2..5-node graphlets form the classic GDV signature. We derive the
// orbits programmatically from the catalog (no hard-coded tables): two
// vertices of a graphlet share an orbit iff some automorphism maps one to
// the other.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graphlet/catalog.h"

namespace grw {

/// Orbit structure of all k-node graphlets.
class OrbitCatalog {
 public:
  /// Shared singleton per size, 2 <= k <= kMaxGraphletSize.
  static const OrbitCatalog& ForSize(int k);

  int k() const { return k_; }

  /// Total number of orbits across all k-node graphlets
  /// (k=2: 1, k=3: 3, k=4: 11, k=5: 58 — summing to the classic 73).
  int NumOrbits() const { return num_orbits_; }

  /// Global orbit id of canonical vertex `vertex` of catalog graphlet
  /// `type`. Orbit ids are consecutive, ordered by (type, first vertex).
  int OrbitOf(int type, int vertex) const {
    return orbit_of_[type][vertex];
  }

  /// Number of distinct orbits within one graphlet.
  int OrbitsInGraphlet(int type) const { return per_type_[type]; }

 private:
  explicit OrbitCatalog(int k);

  int k_;
  int num_orbits_ = 0;
  std::vector<std::array<int, kMaxGraphletSize>> orbit_of_;
  std::vector<int> per_type_;
};

}  // namespace grw
