// Non-induced (subgraph) vs induced pattern counts.
//
// Several components need the linear relationship between non-induced
// spanning-subgraph counts N_H and induced graphlet counts n_g of the same
// size k:
//
//   N_H = sum_g B[H][g] * n_g,
//
// where B[H][g] is the number of non-induced copies of pattern H spanning
// the vertex set of graphlet g. The paper invokes this relationship in
// footnote 3 (recovering 3-star concentration under SRW1) and it underlies
// the path-sampling baseline's beta coefficients (how many spanning 3-paths
// each 4-node graphlet contains) and the formula-based exact 4-node counter.
//
// We compute B programmatically by permutation enumeration over the catalog
// — no hand-copied constant tables to get wrong. With catalog ids ordered
// by edge count, B is unitriangular, so the inversion is exact integer back
// substitution.

#pragma once

#include <cstdint>
#include <vector>

namespace grw {

/// |Aut(g)|: number of automorphisms of catalog graphlet `id` of size k.
int64_t AutomorphismCount(int k, int id);

/// Number of non-induced copies of pattern `h_id` spanning the vertex set
/// of graphlet `g_id` (both k-node catalog ids). B[h][g] in the docs above.
int64_t EmbeddingCount(int k, int h_id, int g_id);

/// Full matrix B, B[h][g] indexed by catalog ids.
std::vector<std::vector<int64_t>> EmbeddingMatrix(int k);

/// Solves N = B * n for induced counts n given non-induced counts N.
/// Exact back substitution (B is unitriangular in catalog order).
std::vector<double> InducedFromNonInduced(int k, const std::vector<double>& N);

/// Computes non-induced counts N = B * n from induced counts n.
std::vector<double> NonInducedFromInduced(int k, const std::vector<double>& n);

}  // namespace grw
