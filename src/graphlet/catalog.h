// Graphlet catalog: all connected, non-isomorphic, induced k-node subgraph
// patterns (paper Definition 1), generated programmatically.
//
// A k-node graph is represented as an adjacency bitmask over the C(k,2)
// unordered vertex pairs; the canonical form of a graph is the minimum mask
// over all k! vertex relabelings. The catalog enumerates every connected
// canonical mask once: 2 graphlets for k=3, 6 for k=4, 21 for k=5 and 112
// for k=6, matching the counts quoted in the paper (Section 2.1).
//
// Catalog ids are ordered by (edge count, canonical mask) — deterministic
// but not the paper's pictorial order; core/paper_ids.h recovers the
// paper's g^k_i numbering on top of this catalog.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace grw {

/// Maximum graphlet size supported by the catalog (k! canonicalization and
/// 2^C(k,2) enumeration stay trivial through k = 6).
inline constexpr int kMaxGraphletSize = 6;

/// Index of unordered pair (i, j), i < j < k, in the packed upper-triangle
/// bit layout. Pairs are ordered (0,1),(0,2),...,(0,k-1),(1,2),...
constexpr int PairIndex(int k, int i, int j) {
  return i * k - i * (i + 1) / 2 + (j - i - 1);
}

/// Number of pair bits for a k-node mask.
constexpr int NumPairBits(int k) { return k * (k - 1) / 2; }

/// True iff mask has the edge (i, j), i != j (order-insensitive).
constexpr bool MaskHasEdge(uint32_t mask, int k, int i, int j) {
  if (i > j) {
    const int t = i;
    i = j;
    j = t;
  }
  return (mask >> PairIndex(k, i, j)) & 1u;
}

/// Sets edge (i, j) in mask.
constexpr uint32_t MaskWithEdge(uint32_t mask, int k, int i, int j) {
  if (i > j) {
    const int t = i;
    i = j;
    j = t;
  }
  return mask | (1u << PairIndex(k, i, j));
}

/// Builds a mask from an explicit edge list over labels [0, k).
uint32_t MaskFromEdges(int k,
                       const std::vector<std::pair<int, int>>& edges);

/// True iff the k vertices are connected under mask (k >= 1).
bool MaskIsConnected(uint32_t mask, int k);

/// Relabels mask by perm: vertex i becomes perm[i].
uint32_t ApplyPermutation(uint32_t mask, int k, const int* perm);

/// Canonical (minimum) mask over all relabelings, and optionally the
/// permutation achieving it (vertex i of the input gets canonical label
/// canon_perm[i]).
uint32_t CanonicalMask(uint32_t mask, int k, int* canon_perm = nullptr);

/// One connected non-isomorphic pattern.
struct Graphlet {
  int k = 0;
  uint32_t canonical_mask = 0;
  int num_edges = 0;
  /// Edges in canonical labels, lexicographically sorted.
  std::vector<std::pair<int, int>> edges;
  /// Per-vertex degree within the graphlet (canonical labels).
  std::array<int, kMaxGraphletSize> degree = {};
  /// Human-readable name: standard names for k<=4, "k5-..." tags otherwise.
  std::string name;

  bool HasEdge(int i, int j) const {
    return MaskHasEdge(canonical_mask, k, i, j);
  }
};

/// The set of all k-node graphlets. Thread-safe shared singletons.
class GraphletCatalog {
 public:
  /// Catalog for a given size, 2 <= k <= kMaxGraphletSize. Built once,
  /// cached for the process lifetime.
  static const GraphletCatalog& ForSize(int k);

  int k() const { return k_; }
  int NumTypes() const { return static_cast<int>(graphlets_.size()); }
  const Graphlet& Get(int id) const { return graphlets_[id]; }
  const std::vector<Graphlet>& All() const { return graphlets_; }

  /// Catalog id for a canonical mask; -1 if not a connected pattern.
  int IdForCanonicalMask(uint32_t canonical_mask) const;

  /// Catalog id by graphlet name (e.g. "triangle", "4-path"); -1 if no
  /// such name.
  int IdByName(const std::string& name) const;

  /// Catalog id for an arbitrary mask (canonicalizes first); -1 if
  /// disconnected.
  int Classify(uint32_t mask) const;

 private:
  explicit GraphletCatalog(int k);

  int k_;
  std::vector<Graphlet> graphlets_;
  std::vector<int16_t> canonical_to_id_;  // indexed by canonical mask
};

}  // namespace grw
