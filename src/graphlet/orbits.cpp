#include "graphlet/orbits.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>


namespace grw {

OrbitCatalog::OrbitCatalog(int k) : k_(k) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  orbit_of_.resize(catalog.NumTypes());
  per_type_.resize(catalog.NumTypes());
  for (int type = 0; type < catalog.NumTypes(); ++type) {
    const Graphlet& g = catalog.Get(type);
    // Union automorphism images: vertex i and perm[i] share an orbit for
    // every automorphism perm. Union-find over k elements.
    std::array<int, kMaxGraphletSize> parent;
    std::iota(parent.begin(), parent.begin() + k, 0);
    auto find = [&parent](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    int perm[kMaxGraphletSize] = {};
    std::iota(perm, perm + k, 0);
    do {
      if (ApplyPermutation(g.canonical_mask, k, perm) != g.canonical_mask) {
        continue;
      }
      for (int i = 0; i < k; ++i) {
        const int a = find(i);
        const int b = find(perm[i]);
        if (a != b) parent[a] = b;
      }
    } while (std::next_permutation(perm, perm + k));

    // Assign consecutive global ids in order of first occurrence.
    std::array<int, kMaxGraphletSize> local = {};
    local.fill(-1);
    int in_graphlet = 0;
    for (int v = 0; v < k; ++v) {
      const int root = find(v);
      if (local[root] == -1) {
        local[root] = num_orbits_++;
        ++in_graphlet;
      }
      orbit_of_[type][v] = local[root];
    }
    per_type_[type] = in_graphlet;
  }
}

const OrbitCatalog& OrbitCatalog::ForSize(int k) {
  if (k < 2 || k > kMaxGraphletSize) {
    throw std::invalid_argument("OrbitCatalog::ForSize: k out of range");
  }
  static std::once_flag flags[kMaxGraphletSize + 1];
  static std::unique_ptr<OrbitCatalog> catalogs[kMaxGraphletSize + 1];
  std::call_once(flags[k], [k] {
    catalogs[k] = std::unique_ptr<OrbitCatalog>(new OrbitCatalog(k));
  });
  return *catalogs[k];
}

}  // namespace grw
