#include "graphlet/noninduced.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "graphlet/catalog.h"

namespace grw {

namespace {

// Counts permutations sigma with: every edge (i,j) of h maps to an edge
// (sigma(i), sigma(j)) of g. Exact match (subset == equality) counts
// automorphism-like maps when h == g.
int64_t EdgePreservingMaps(const Graphlet& h, const Graphlet& g) {
  const int k = h.k;
  int perm[kMaxGraphletSize];
  std::iota(perm, perm + k, 0);
  int64_t count = 0;
  do {
    bool ok = true;
    for (const auto& [i, j] : h.edges) {
      if (!MaskHasEdge(g.canonical_mask, k, perm[i], perm[j])) {
        ok = false;
        break;
      }
    }
    if (ok) ++count;
  } while (std::next_permutation(perm, perm + k));
  return count;
}

}  // namespace

int64_t AutomorphismCount(int k, int id) {
  const Graphlet& g = GraphletCatalog::ForSize(k).Get(id);
  // Edge-preserving maps g -> g with equal edge counts are exactly the
  // automorphisms (an injection of m edges into m edges is a bijection).
  return EdgePreservingMaps(g, g);
}

int64_t EmbeddingCount(int k, int h_id, int g_id) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  const Graphlet& h = catalog.Get(h_id);
  const Graphlet& g = catalog.Get(g_id);
  if (h.num_edges > g.num_edges) return 0;
  // Each non-induced copy of h in g corresponds to |Aut(h)| edge-preserving
  // vertex maps.
  return EdgePreservingMaps(h, g) / AutomorphismCount(k, h_id);
}

std::vector<std::vector<int64_t>> EmbeddingMatrix(int k) {
  const int n = GraphletCatalog::ForSize(k).NumTypes();
  std::vector<std::vector<int64_t>> b(n, std::vector<int64_t>(n, 0));
  for (int h = 0; h < n; ++h) {
    for (int g = 0; g < n; ++g) b[h][g] = EmbeddingCount(k, h, g);
  }
  return b;
}

std::vector<double> InducedFromNonInduced(int k,
                                          const std::vector<double>& big_n) {
  const auto b = EmbeddingMatrix(k);
  const int n = static_cast<int>(b.size());
  assert(static_cast<int>(big_n.size()) == n);
  // Catalog order sorts by edge count, so B is unitriangular: B[h][g] == 0
  // for h > g (denser pattern cannot embed in sparser one) and B[g][g] == 1.
  std::vector<double> induced(big_n);
  for (int h = n - 1; h >= 0; --h) {
    for (int g = h + 1; g < n; ++g) {
      induced[h] -= static_cast<double>(b[h][g]) * induced[g];
    }
    assert(b[h][h] == 1);
  }
  return induced;
}

std::vector<double> NonInducedFromInduced(int k,
                                          const std::vector<double>& induced) {
  const auto b = EmbeddingMatrix(k);
  const int n = static_cast<int>(b.size());
  assert(static_cast<int>(induced.size()) == n);
  std::vector<double> big_n(n, 0.0);
  for (int h = 0; h < n; ++h) {
    for (int g = 0; g < n; ++g) {
      big_n[h] += static_cast<double>(b[h][g]) * induced[g];
    }
  }
  return big_n;
}

}  // namespace grw
