#include "eval/similarity.h"

#include <cassert>
#include <cmath>

namespace grw {

double GraphletKernelSimilarity(const std::vector<double>& c1,
                                const std::vector<double>& c2) {
  assert(c1.size() == c2.size());
  double dot = 0.0;
  double n1 = 0.0;
  double n2 = 0.0;
  for (size_t i = 0; i < c1.size(); ++i) {
    dot += c1[i] * c2[i];
    n1 += c1[i] * c1[i];
    n2 += c2[i] * c2[i];
  }
  if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
  return dot / (std::sqrt(n1) * std::sqrt(n2));
}

}  // namespace grw
