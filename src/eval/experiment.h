// NRMSE experiment runner: the machinery behind every accuracy figure.
//
// The paper estimates NRMSE over up to 1,000 independent simulations per
// (method, graph, sample size) point (Section 6.2.1). Chains are
// independent and run through the estimation engine (engine/engine.h) on
// its persistent ChainPool, with deterministic per-chain seeds — results
// are reproducible regardless of thread count.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "graph/graph.h"

namespace grw {

/// Per-chain concentration estimates for one method.
struct ChainEstimates {
  /// estimates[chain][type] — concentration vector of each chain.
  std::vector<std::vector<double>> estimates;
  /// Wall-clock seconds of one representative chain (serial cost).
  double seconds_per_chain = 0.0;
};

/// Runs `sims` independent chains of `config` for `steps` transitions each
/// and collects the concentration estimates. Deterministic in `base_seed`.
ChainEstimates RunConcentrationChains(const Graph& g,
                                      const EstimatorConfig& config,
                                      uint64_t steps, int sims,
                                      uint64_t base_seed,
                                      unsigned threads = 0);

/// Like RunConcentrationChains but collects count estimates (Eq. 4),
/// using the closed-form |R(d)| (requires config.d <= 2).
ChainEstimates RunCountChains(const Graph& g, const EstimatorConfig& config,
                              uint64_t steps, int sims, uint64_t base_seed,
                              unsigned threads = 0);

/// Generic parallel fan-out for baseline samplers: fn(chain_index) returns
/// one estimate vector.
ChainEstimates RunCustomChains(
    int sims, const std::function<std::vector<double>(int)>& fn,
    unsigned threads = 0);

/// NRMSE of one graphlet type across chains:
/// sqrt(E[(est - truth)^2]) / truth (Section 6.1). NaN if truth == 0.
double NrmseOfType(const ChainEstimates& chains,
                   const std::vector<double>& truth, int type);

/// Convergence sweep: NRMSE of `type` at each step count in `step_grid`,
/// reusing the same chains (paper Figure 6 protocol: estimates are read
/// out as the chains advance, not restarted).
std::vector<double> ConvergenceNrmse(const Graph& g,
                                     const EstimatorConfig& config,
                                     const std::vector<uint64_t>& step_grid,
                                     int sims, uint64_t base_seed,
                                     const std::vector<double>& truth,
                                     int type, unsigned threads = 0);

}  // namespace grw
