#include "eval/ground_truth.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "exact/exact.h"

namespace grw {

namespace {

std::string CachePath(const std::string& cache_key, int k) {
  return ".gt_cache/" + cache_key + "_k" + std::to_string(k) + ".txt";
}

}  // namespace

std::string DatasetCacheKey(const std::string& name, double scale) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@%.3f", scale);
  return name + buf;
}

std::vector<int64_t> CachedExactCounts(const Graph& g, int k,
                                       const std::string& cache_key) {
  const std::string path = CachePath(cache_key, k);
  // Cache hit: "n m fingerprint k count...", validated against the graph
  // shape AND a structural fingerprint (degree-square sum) so recipe
  // changes that keep n and m still bust the cache.
  const uint64_t fingerprint = g.DegreeSquareSum();
  if (std::FILE* f = std::fopen(path.c_str(), "r")) {
    uint64_t n = 0;
    uint64_t m = 0;
    uint64_t fp = 0;
    int file_k = 0;
    std::vector<int64_t> counts;
    if (std::fscanf(f, "%" SCNu64 " %" SCNu64 " %" SCNu64 " %d", &n, &m,
                    &fp, &file_k) == 4 &&
        n == g.NumNodes() && m == g.NumEdges() && fp == fingerprint &&
        file_k == k) {
      int64_t c = 0;
      while (std::fscanf(f, "%" SCNd64, &c) == 1) counts.push_back(c);
    }
    std::fclose(f);
    if (!counts.empty()) return counts;
  }

  const std::vector<int64_t> counts = ExactGraphletCounts(g, k);
  std::error_code ec;
  std::filesystem::create_directories(".gt_cache", ec);
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "%llu %llu %llu %d\n",
                 static_cast<unsigned long long>(g.NumNodes()),
                 static_cast<unsigned long long>(g.NumEdges()),
                 static_cast<unsigned long long>(fingerprint), k);
    for (int64_t c : counts) std::fprintf(f, "%lld\n",
                                          static_cast<long long>(c));
    std::fclose(f);
  }
  return counts;
}

std::vector<double> CachedExactConcentrations(const Graph& g, int k,
                                              const std::string& cache_key) {
  return ConcentrationsFromCounts(CachedExactCounts(g, k, cache_key));
}

}  // namespace grw
