// Graphlet-kernel similarity between graphs — paper Section 6.4.
//
// Restricting the graphlet kernel of Shervashidze et al. to 4-node
// graphlets: sim(G1, G2) = <c1, c2> / (||c1|| * ||c2||), the cosine of
// the two concentration vectors. The paper uses it to show Sinaweibo's
// subgraph building blocks resemble Twitter's (news medium) more than
// Facebook's (social network) — our Table 7 bench replays the comparison
// on the corresponding synthetic analogs.

#pragma once

#include <vector>

namespace grw {

/// Cosine similarity of two non-negative concentration vectors of equal
/// length. Returns 0 when either vector is all-zero.
double GraphletKernelSimilarity(const std::vector<double>& c1,
                                const std::vector<double>& c2);

}  // namespace grw
