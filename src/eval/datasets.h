// Dataset registry: synthetic analogs of the paper's ten evaluation graphs
// (Table 5), plus loading of real edge lists when available.
//
// Substitution policy (DESIGN.md Section 3): this environment has no
// network access, so each paper dataset is replaced by a generator recipe
// at reduced scale that preserves the property driving the paper's
// results for that graph — degree skew, clustering level, and the density
// ordering across the suite. Tiers mirror the paper's ground-truth
// practice: 5-node exact counts only for the small tier (ESU enumeration
// cost), 3/4-node exact counts everywhere (closed forms).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Ground-truth availability tier.
enum class DatasetTier {
  kSmall,   // 3/4/5-node ground truth (paper: BrightKite..Facebook)
  kMedium,  // 3/4-node ground truth
  kLarge,   // 3/4-node ground truth, slowest to generate
};

/// One synthetic dataset recipe.
struct DatasetSpec {
  std::string name;        // registry key, e.g. "epinion-sim"
  std::string paper_name;  // the dataset it stands in for, e.g. "Epinion"
  DatasetTier tier;
  enum class Model { kHolmeKim, kBarabasiAlbert, kErdosRenyi } model;
  uint32_t n;            // node budget before LCC extraction
  uint32_t param;        // edges per node (HK/BA) or avg degree (ER)
  double triad_prob;     // HK only
  uint32_t max_degree;   // HK only; 0 = uncapped
  uint64_t seed;         // generation is deterministic per spec
  /// Planted dense communities (cliques) overlaid on the base model —
  /// the analog of the tight friend groups that give real OSNs their
  /// non-vanishing 4-/5-clique concentrations (paper Table 5).
  uint32_t planted_cliques = 0;
  uint32_t planted_size = 0;
};

/// All registered datasets, in the paper's Table 5 order.
const std::vector<DatasetSpec>& DatasetRegistry();

/// Spec by name; nullopt if unknown.
std::optional<DatasetSpec> FindDataset(const std::string& name);

/// Builds the dataset (largest connected component, simplified).
/// `scale` in (0, 1] shrinks the node budget for quick runs.
Graph MakeDataset(const DatasetSpec& spec, double scale = 1.0);

/// Convenience: by name. Throws std::invalid_argument if unknown.
Graph MakeDatasetByName(const std::string& name, double scale = 1.0);

/// Names of datasets in a tier (and cheaper tiers when
/// `include_cheaper`).
std::vector<std::string> DatasetNames(DatasetTier max_tier,
                                      bool include_cheaper = true);

}  // namespace grw
