// Disk-cached exact graphlet counts for the bench harnesses.
//
// Five-node ground truth is an enumeration (minutes on the small tier);
// every accuracy bench needs the same numbers, so they are computed once
// and cached as small text files under ./.gt_cache/. The cache key
// includes the dataset identity and scale; synthetic datasets are
// deterministic per spec, so a cache hit is always valid. Delete the
// directory to force recomputation.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Exact induced k-node counts of g, cached under `cache_key`
/// (e.g. "epinion-sim@1"). Computes and writes on miss.
std::vector<int64_t> CachedExactCounts(const Graph& g, int k,
                                       const std::string& cache_key);

/// Concentrations derived from CachedExactCounts.
std::vector<double> CachedExactConcentrations(const Graph& g, int k,
                                              const std::string& cache_key);

/// Cache key for a registry dataset at a scale.
std::string DatasetCacheKey(const std::string& name, double scale);

}  // namespace grw
