#include "eval/datasets.h"

#include <cmath>
#include <stdexcept>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace grw {

const std::vector<DatasetSpec>& DatasetRegistry() {
  using Model = DatasetSpec::Model;
  // Sizes are laptop-scale stand-ins; triad_prob tracks the paper graphs'
  // clustering ordering (Table 5: Facebook/Flickr/BrightKite clustered,
  // Slashdot/Wikipedia/Sinaweibo not). Small tier caps degrees so ESU
  // 5-node ground truth stays tractable.
  static const std::vector<DatasetSpec> kRegistry = {
      {"brightkite-sim", "BrightKite", DatasetTier::kSmall, Model::kHolmeKim,
       2500, 4, 0.60, 40, 0xb417u, 12, 7},
      {"epinion-sim", "Epinion", DatasetTier::kSmall, Model::kHolmeKim, 3500,
       5, 0.35, 40, 0xe919u, 16, 7},
      {"slashdot-sim", "Slashdot", DatasetTier::kSmall, Model::kHolmeKim,
       3500, 6, 0.08, 36, 0x51a5u, 8, 7},
      {"facebook-sim", "Facebook", DatasetTier::kSmall, Model::kHolmeKim,
       2500, 8, 0.62, 44, 0xfaceu, 18, 8},
      {"gowalla-sim", "Gowalla", DatasetTier::kMedium, Model::kBarabasiAlbert,
       30000, 5, 0.0, 0, 0x90a1u},
      {"wikipedia-sim", "Wikipedia", DatasetTier::kMedium,
       Model::kBarabasiAlbert, 60000, 9, 0.0, 0, 0x313cu},
      {"pokec-sim", "Pokec", DatasetTier::kMedium, Model::kHolmeKim, 40000,
       14, 0.18, 0, 0x90cecu},
      {"flickr-sim", "Flickr", DatasetTier::kMedium, Model::kHolmeKim, 40000,
       10, 0.65, 0, 0xf11c4u},
      {"twitter-sim", "Twitter", DatasetTier::kLarge, Model::kBarabasiAlbert,
       120000, 12, 0.0, 0, 0x7517u},
      {"sinaweibo-sim", "Sinaweibo", DatasetTier::kLarge, Model::kHolmeKim,
       150000, 5, 0.03, 0, 0x51b0u},
  };
  return kRegistry;
}

std::optional<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : DatasetRegistry()) {
    if (spec.name == name || spec.paper_name == name) return spec;
  }
  return std::nullopt;
}

Graph MakeDataset(const DatasetSpec& spec, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("MakeDataset: scale must be in (0, 1]");
  }
  const auto n = static_cast<VertexId>(
      std::max<double>(64.0, std::llround(spec.n * scale)));
  Rng rng(spec.seed);
  Graph g;
  switch (spec.model) {
    case DatasetSpec::Model::kHolmeKim:
      g = HolmeKim(n, spec.param, spec.triad_prob, rng, spec.max_degree);
      break;
    case DatasetSpec::Model::kBarabasiAlbert:
      g = BarabasiAlbert(n, spec.param, rng);
      break;
    case DatasetSpec::Model::kErdosRenyi:
      g = ErdosRenyi(n, static_cast<uint64_t>(n) * spec.param / 2, rng);
      break;
  }
  if (spec.planted_cliques > 0 && spec.planted_size >= 2) {
    // Overlay dense communities: random node sets turned into cliques.
    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(g.NumEdges() + static_cast<size_t>(spec.planted_cliques) *
                                     spec.planted_size * spec.planted_size);
    for (VertexId u = 0; u < g.NumNodes(); ++u) {
      for (VertexId v : g.Neighbors(u)) {
        if (u < v) edges.emplace_back(u, v);
      }
    }
    for (uint32_t c = 0; c < spec.planted_cliques; ++c) {
      std::vector<VertexId> members;
      while (members.size() < spec.planted_size) {
        const VertexId v =
            static_cast<VertexId>(rng.UniformInt(g.NumNodes()));
        if (std::find(members.begin(), members.end(), v) == members.end()) {
          members.push_back(v);
        }
      }
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          edges.emplace_back(members[i], members[j]);
        }
      }
    }
    g = FromEdges(g.NumNodes(), edges);
  }
  return LargestConnectedComponent(g);
}

Graph MakeDatasetByName(const std::string& name, double scale) {
  const auto spec = FindDataset(name);
  if (!spec.has_value()) {
    throw std::invalid_argument("unknown dataset: " + name);
  }
  return MakeDataset(*spec, scale);
}

std::vector<std::string> DatasetNames(DatasetTier max_tier,
                                      bool include_cheaper) {
  std::vector<std::string> names;
  for (const DatasetSpec& spec : DatasetRegistry()) {
    const bool match = include_cheaper
                           ? static_cast<int>(spec.tier) <=
                                 static_cast<int>(max_tier)
                           : spec.tier == max_tier;
    if (match) names.push_back(spec.name);
  }
  return names;
}

}  // namespace grw
