#include "eval/experiment.h"

#include <cmath>
#include <stdexcept>

#include "core/rsize.h"
#include "engine/chain_pool.h"
#include "engine/engine.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace grw {

namespace {

ChainEstimates RunChainsImpl(
    const Graph& g, const EstimatorConfig& config, uint64_t steps, int sims,
    uint64_t base_seed, unsigned threads, bool counts) {
  ChainEstimates result;
  result.estimates.assign(sims, {});
  if (counts && config.d > 2) {
    throw std::logic_error(
        "RunCountChains: no closed-form |R(d)| for d >= 3");
  }
  const uint64_t relationship_edges =
      counts ? RelationshipEdgeCount(g, config.d) : 0;
  // Serial-cost probe: one timed chain (thread fan-out would distort the
  // per-chain wall clock the runtime comparisons need).
  {
    WallTimer timer;
    GraphletEstimator probe(g, config);
    probe.Reset(DeriveSeed(base_seed, 0));
    probe.Run(steps);
    result.seconds_per_chain = timer.Seconds();
    result.estimates[0] = counts
                              ? CountEstimatesFromResult(probe.Result(),
                                                         relationship_edges)
                              : probe.Result().concentrations;
  }
  // Remaining chains run on the engine's persistent pool; chain_offset
  // keeps per-chain seeds identical to the all-serial assignment.
  EngineOptions options;
  options.chains = sims - 1;
  options.chain_offset = 1;
  options.threads = threads;
  options.max_steps = steps;
  options.base_seed = base_seed;
  EstimationEngine engine(g, config, options);
  const EngineResult run = engine.Run();
  for (size_t c = 0; c < run.per_chain.size(); ++c) {
    result.estimates[c + 1] =
        counts ? CountEstimatesFromResult(run.per_chain[c],
                                          relationship_edges)
               : run.per_chain[c].concentrations;
  }
  return result;
}

}  // namespace

ChainEstimates RunConcentrationChains(const Graph& g,
                                      const EstimatorConfig& config,
                                      uint64_t steps, int sims,
                                      uint64_t base_seed, unsigned threads) {
  return RunChainsImpl(g, config, steps, sims, base_seed, threads,
                       /*counts=*/false);
}

ChainEstimates RunCountChains(const Graph& g, const EstimatorConfig& config,
                              uint64_t steps, int sims, uint64_t base_seed,
                              unsigned threads) {
  return RunChainsImpl(g, config, steps, sims, base_seed, threads,
                       /*counts=*/true);
}

ChainEstimates RunCustomChains(
    int sims, const std::function<std::vector<double>(int)>& fn,
    unsigned threads) {
  ChainEstimates result;
  result.estimates.assign(sims, {});
  {
    WallTimer timer;
    result.estimates[0] = fn(0);
    result.seconds_per_chain = timer.Seconds();
  }
  ChainPool::Shared().ForEach(
      static_cast<size_t>(sims) - 1,
      [&](size_t i) { result.estimates[i + 1] = fn(static_cast<int>(i + 1)); },
      threads);
  return result;
}

double NrmseOfType(const ChainEstimates& chains,
                   const std::vector<double>& truth, int type) {
  std::vector<double> values;
  values.reserve(chains.estimates.size());
  for (const auto& est : chains.estimates) values.push_back(est[type]);
  return Nrmse(values, truth[type]);
}

std::vector<double> ConvergenceNrmse(const Graph& g,
                                     const EstimatorConfig& config,
                                     const std::vector<uint64_t>& step_grid,
                                     int sims, uint64_t base_seed,
                                     const std::vector<double>& truth,
                                     int type, unsigned threads) {
  // estimates[grid_point][chain]
  std::vector<std::vector<double>> estimates(
      step_grid.size(), std::vector<double>(sims, 0.0));
  ChainPool::Shared().ForEach(
      static_cast<size_t>(sims),
      [&](size_t chain) {
        GraphletEstimator estimator(g, config);
        estimator.Reset(DeriveSeed(base_seed, chain));
        uint64_t done = 0;
        for (size_t p = 0; p < step_grid.size(); ++p) {
          estimator.Run(step_grid[p] - done);
          done = step_grid[p];
          estimates[p][chain] = estimator.Result().concentrations[type];
        }
      },
      threads);
  std::vector<double> nrmse(step_grid.size());
  for (size_t p = 0; p < step_grid.size(); ++p) {
    nrmse[p] = Nrmse(estimates[p], truth[type]);
  }
  return nrmse;
}

}  // namespace grw
