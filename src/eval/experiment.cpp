#include "eval/experiment.h"

#include <cmath>

#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace grw {

namespace {

ChainEstimates RunChainsImpl(
    const Graph& g, const EstimatorConfig& config, uint64_t steps, int sims,
    uint64_t base_seed, unsigned threads, bool counts) {
  ChainEstimates result;
  result.estimates.assign(sims, {});
  // Serial-cost probe: one timed chain (thread fan-out would distort the
  // per-chain wall clock the runtime comparisons need).
  {
    WallTimer timer;
    GraphletEstimator probe(g, config);
    probe.Reset(DeriveSeed(base_seed, 0));
    probe.Run(steps);
    result.seconds_per_chain = timer.Seconds();
    result.estimates[0] = counts ? probe.CountEstimates()
                                 : probe.Result().concentrations;
  }
  ParallelFor(
      static_cast<size_t>(sims) - 1,
      [&](size_t i) {
        const size_t chain = i + 1;
        GraphletEstimator estimator(g, config);
        estimator.Reset(DeriveSeed(base_seed, chain));
        estimator.Run(steps);
        result.estimates[chain] = counts
                                      ? estimator.CountEstimates()
                                      : estimator.Result().concentrations;
      },
      threads);
  return result;
}

}  // namespace

ChainEstimates RunConcentrationChains(const Graph& g,
                                      const EstimatorConfig& config,
                                      uint64_t steps, int sims,
                                      uint64_t base_seed, unsigned threads) {
  return RunChainsImpl(g, config, steps, sims, base_seed, threads,
                       /*counts=*/false);
}

ChainEstimates RunCountChains(const Graph& g, const EstimatorConfig& config,
                              uint64_t steps, int sims, uint64_t base_seed,
                              unsigned threads) {
  return RunChainsImpl(g, config, steps, sims, base_seed, threads,
                       /*counts=*/true);
}

ChainEstimates RunCustomChains(
    int sims, const std::function<std::vector<double>(int)>& fn,
    unsigned threads) {
  ChainEstimates result;
  result.estimates.assign(sims, {});
  {
    WallTimer timer;
    result.estimates[0] = fn(0);
    result.seconds_per_chain = timer.Seconds();
  }
  ParallelFor(
      static_cast<size_t>(sims) - 1,
      [&](size_t i) { result.estimates[i + 1] = fn(static_cast<int>(i + 1)); },
      threads);
  return result;
}

double NrmseOfType(const ChainEstimates& chains,
                   const std::vector<double>& truth, int type) {
  std::vector<double> values;
  values.reserve(chains.estimates.size());
  for (const auto& est : chains.estimates) values.push_back(est[type]);
  return Nrmse(values, truth[type]);
}

std::vector<double> ConvergenceNrmse(const Graph& g,
                                     const EstimatorConfig& config,
                                     const std::vector<uint64_t>& step_grid,
                                     int sims, uint64_t base_seed,
                                     const std::vector<double>& truth,
                                     int type, unsigned threads) {
  // estimates[grid_point][chain]
  std::vector<std::vector<double>> estimates(
      step_grid.size(), std::vector<double>(sims, 0.0));
  ParallelFor(
      static_cast<size_t>(sims),
      [&](size_t chain) {
        GraphletEstimator estimator(g, config);
        estimator.Reset(DeriveSeed(base_seed, chain));
        uint64_t done = 0;
        for (size_t p = 0; p < step_grid.size(); ++p) {
          estimator.Run(step_grid[p] - done);
          done = step_grid[p];
          estimates[p][chain] = estimator.Result().concentrations[type];
        }
      },
      threads);
  std::vector<double> nrmse(step_grid.size());
  for (size_t p = 0; p < step_grid.size(); ++p) {
    nrmse[p] = Nrmse(estimates[p], truth[type]);
  }
  return nrmse;
}

}  // namespace grw
