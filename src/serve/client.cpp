#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace grw::serve {

QueryClient::QueryClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("query: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("query: invalid host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error("query: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

QueryClient::~QueryClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string QueryClient::RoundTrip(const std::string& line) {
  std::string request = line;
  request += '\n';
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::write(fd_, request.data() + off, request.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("query: write failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  char chunk[4096];
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("query: server closed the connection");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace grw::serve
