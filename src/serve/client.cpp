#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>

#include "serve/json.h"
#include "serve/protocol.h"
#include "util/posix_io.h"
#include "util/rng.h"

namespace grw::serve {

QueryClient::QueryClient(const std::string& host, int port)
    : QueryClient(host, port, Options{}) {}

QueryClient::QueryClient(const std::string& host, int port,
                         const Options& options)
    : opt_(options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("query: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("query: invalid host '" + host + "'");
  }
  if (io::ConnectWithTimeout(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr), opt_.connect_timeout_ms) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    std::string what = "query: cannot connect to " + host + ":" +
                       std::to_string(port) + ": ";
    what += err == ETIMEDOUT
                ? "timed out after " +
                      std::to_string(opt_.connect_timeout_ms) + "ms"
                : std::strerror(err);
    throw std::runtime_error(what);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

QueryClient::~QueryClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string QueryClient::RoundTrip(const std::string& line) {
  std::string request = line;
  request += '\n';
  const io::IoResult w = io::WriteAll(fd_, request, opt_.write_timeout_ms);
  if (!w.ok()) {
    if (w.status == io::IoResult::Status::kTimeout) {
      throw std::runtime_error("query: send timed out after " +
                               std::to_string(opt_.write_timeout_ms) + "ms");
    }
    throw std::runtime_error("query: write failed: " +
                             std::string(std::strerror(w.error)));
  }
  char chunk[4096];
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    const io::IoResult r =
        io::ReadSome(fd_, chunk, sizeof(chunk), opt_.read_timeout_ms);
    if (r.ok()) {
      buffer_.append(chunk, r.bytes);
      continue;
    }
    switch (r.status) {
      case io::IoResult::Status::kTimeout:
        throw std::runtime_error("query: no response after " +
                                 std::to_string(opt_.read_timeout_ms) +
                                 "ms (server hung?)");
      case io::IoResult::Status::kEof:
        throw std::runtime_error("query: server closed the connection");
      default:
        throw std::runtime_error("query: read failed: " +
                                 std::string(std::strerror(r.error)));
    }
  }
}

namespace {

// A load-shed response carries "code": "RETRY_AFTER" plus the server's
// backoff hint; anything else — including unparseable bytes — is a final
// answer. Returns the hint in ms (>= 0) or a negative value for "not a
// retryable response".
double RetryAfterHintMs(const std::string& response) {
  const std::optional<JsonValue> parsed = ParseJson(response);
  if (!parsed.has_value()) return -1.0;
  const JsonValue* code = parsed->Find("code");
  if (code == nullptr || code->type != JsonValue::Type::kString ||
      code->str != kErrorCodeRetryAfter) {
    return -1.0;
  }
  const JsonValue* hint = parsed->Find("retry_after_ms");
  if (hint != nullptr && hint->type == JsonValue::Type::kNumber &&
      hint->number >= 0.0) {
    return hint->number;
  }
  return 0.0;  // shed without a usable hint: pure policy backoff
}

}  // namespace

QueryOutcome QueryWithRetry(const std::string& host, int port,
                            const std::string& line,
                            const QueryClient::Options& options,
                            const RetryPolicy& policy) {
  QueryOutcome out;
  Rng jitter_rng(policy.seed);
  const int max_retries = std::max(0, policy.max_retries);

  // One reusable connection across load-shed retries (the stream stays
  // healthy — the server ANSWERED), but rebuilt from scratch after any
  // transport failure, whose stream is poisoned mid-exchange.
  std::unique_ptr<QueryClient> client;
  for (int attempt = 0;; ++attempt) {
    out.attempts = attempt + 1;
    out.retries = attempt;
    std::string response;
    try {
      if (client == nullptr) {
        client = std::make_unique<QueryClient>(host, port, options);
      }
      response = client->RoundTrip(line);
    } catch (const std::exception& e) {
      client.reset();
      out.error = e.what();
      if (attempt >= max_retries) {
        out.transport_error = true;
        return out;
      }
      // Policy backoff only — a transport failure has no server hint.
      double wait = policy.backoff_base_ms * std::ldexp(1.0, attempt);
      wait = std::min(wait, policy.backoff_max_ms);
      wait += wait * policy.jitter * jitter_rng.UniformReal();
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(wait * 1000.0)));
      continue;
    }

    const double hint_ms = RetryAfterHintMs(response);
    if (hint_ms < 0.0 || attempt >= max_retries) {
      // Final answer (ok, or a non-retryable error, or retries spent —
      // the last shed response is still a clean structured error).
      out.response = std::move(response);
      out.error.clear();
      out.transport_error = false;
      return out;
    }
    // Load shed: honor the server's hint, but never beyond the policy
    // cap, and at least the policy's own backoff curve so a zero hint
    // still spaces attempts out.
    double wait = policy.backoff_base_ms * std::ldexp(1.0, attempt);
    wait = std::max(wait, hint_ms);
    wait = std::min(wait, policy.backoff_max_ms);
    wait += wait * policy.jitter * jitter_rng.UniformReal();
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(wait * 1000.0)));
  }
}

}  // namespace grw::serve
