// TCP front end of the estimation service.
//
// One listening socket, one thread per connection, one ServeScheduler
// behind them: a connection sends request lines (src/serve/protocol.h)
// and receives one single-line JSON response per line, in order.
// Connections are long-lived — a client can hold one open and stream
// queries through it — and a malformed line gets an error response
// without dropping the connection.
//
// Shutdown is graceful and deterministic (the daemon's SIGTERM path):
// Stop() closes the listener, half-closes every connection's read side
// (in-flight requests still answer over the intact write side), joins
// the connection threads, then drains the scheduler — queued and running
// jobs finish, new ones are refused.
//
// Usable in-process (tests and the bench load generator start a server
// on port 0 and query it over loopback) and from tools/grw_serve.cpp.

#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.h"
#include "serve/scheduler.h"
#include "util/sync.h"

namespace grw::serve {

struct ServerOptions {
  /// Interface to bind. The daemon is a trusted-network service (no auth,
  /// no TLS); default to loopback.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  int backlog = 64;
  /// Cap on the longest accepted request line; longer input is answered
  /// with an error and the connection closed (a non-protocol peer).
  size_t max_line_bytes = 1 << 16;
  /// Bound on each response send. A client that stops draining its socket
  /// would otherwise wedge its connection thread forever once the kernel
  /// buffer fills; on timeout the response is dropped and the connection
  /// closed. -1 waits indefinitely.
  int write_timeout_ms = 30'000;
  SchedulerOptions scheduler;
};

class ServeServer {
 public:
  /// The registry must outlive the server.
  ServeServer(const SnapshotRegistry* registry, ServerOptions options);
  ~ServeServer();  // Stop() if still running

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens and starts the accept thread. Throws
  /// std::runtime_error on socket failure (port in use etc.).
  void Start();

  /// The bound port (after Start); the daemon prints it so scripts can
  /// use --port 0.
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Graceful drain (see file comment). Idempotent, thread-safe, safe to
  /// call from a signal-watching thread.
  void Stop();

  /// Scheduler counters (requests served etc.), for the daemon's
  /// shutdown report and tests.
  ServeScheduler::Stats stats() const;

 private:
  void AcceptLoop() GRW_EXCLUDES(conn_mu_);
  void Connection(int fd) GRW_EXCLUDES(conn_mu_);

  const SnapshotRegistry* registry_;
  ServerOptions options_;
  // Constructed with the server (not in Start()), so stats() and
  // HandleLine paths read an immutable pointer — no lock, no race with a
  // concurrent Start().
  std::unique_ptr<ServeScheduler> scheduler_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  Mutex conn_mu_;
  // Connection threads, owned by the accept loop until Stop() swaps the
  // vector out (under conn_mu_) and joins outside the lock — joining
  // under it would deadlock with a connection thread's exit bookkeeping.
  std::vector<std::thread> conn_threads_ GRW_GUARDED_BY(conn_mu_);
  std::set<int> conn_fds_ GRW_GUARDED_BY(conn_mu_);
  std::once_flag stop_once_;
};

}  // namespace grw::serve
