// Resident snapshot registry: the storage layer of the estimation
// service.
//
// `grw serve` answers queries for many graphs from one process. Every
// binding is opened through GraphSource::Open (graph/source.h) — the one
// open path shared with the CLI and benches — so the registry serves all
// three storage kinds with the same code: text edge lists (parsed once),
// monolithic `.grwb` snapshots (one mmap, pages fault on demand), and
// sharded out-of-core graphs (a ShardStore under a resident-byte
// budget). Warm state is shared aggressively:
//
//   * bindings are keyed by (path, content checksum): two ids registered
//     over the same bytes share ONE GraphSource — one mapping and one
//     AdjacencyIndex for `.grwb`, one ShardStore (one residency budget,
//     one LRU) for sharded — so multi-tenant aliases of a popular graph
//     cost nothing extra. For a shared sharded graph the FIRST
//     registration's resident budget wins;
//   * the AdjacencyIndex is built exactly once per distinct snapshot, at
//     registration — requests never pay the index build;
//   * lookups return a GraphSource *copy* (shared backing): a request
//     keeps its graph alive even if the id is replaced mid-run.
//
// Thread-safe: registration and lookup take one mutex; the returned
// sources are immutable shared state.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/source.h"
#include "serve/protocol.h"
#include "util/sync.h"

namespace grw::serve {

class SnapshotRegistry {
 public:
  /// Opens `path` via GraphSource::Open and registers it under `id`,
  /// replacing any previous binding of the id. Re-registering unchanged
  /// content (same path + checksum) reuses the resident source and its
  /// warm index/store; changed content loads fresh. Text edge lists
  /// have checksum 0 and are never shared by key.
  ///
  /// With `verify` (the default), snapshot payloads are fully validated
  /// at registration — data checksums, offsets monotonicity, neighbor-id
  /// bounds, per shard for sharded graphs — so a daemon never serves
  /// estimates from a silently corrupted snapshot; a mismatch throws
  /// SnapshotCorruptError naming the offending file and the id stays
  /// unbound (the caller quarantines: skip the binding, keep the file
  /// for inspection). `resident_budget_bytes` caps a sharded graph's
  /// shard LRU (0 = unbounded; ignored for monolithic kinds). Throws
  /// std::runtime_error on other load failures.
  void Register(const std::string& id, const std::string& path,
                bool build_index = true, bool verify = true,
                uint64_t resident_budget_bytes = 0) GRW_EXCLUDES(mu_);

  /// Registers an in-memory graph (tests, the bench load generator).
  void RegisterGraph(const std::string& id, Graph graph,
                     const std::string& label = "<memory>")
      GRW_EXCLUDES(mu_);

  /// The source bound to `id`, as a cheap copy sharing backing and
  /// index/store; nullopt for unknown ids. The scheduler dispatches on
  /// kind(): monolithic sources run the full-access engine, sharded
  /// sources the out-of-core one.
  std::optional<GraphSource> FindSource(const std::string& id) const
      GRW_EXCLUDES(mu_);

  /// DEPRECATED monolithic lookup, kept for pre-GraphSource call sites:
  /// the graph bound to `id` as a cheap copy. nullopt for unknown ids
  /// AND for sharded bindings (they have no resident Graph) — callers
  /// that can serve out-of-core graphs use FindSource.
  std::optional<Graph> Find(const std::string& id) const GRW_EXCLUDES(mu_);

  /// LIST-able view of every binding, in id order.
  std::vector<GraphListEntry> List() const GRW_EXCLUDES(mu_);

  size_t size() const GRW_EXCLUDES(mu_);

 private:
  /// The resident source for a (path, checksum) content key, nullptr if
  /// none. REQUIRES-checked so the register paths — which already hold
  /// mu_ when they consult residency — cannot re-lock (grw::Mutex is
  /// non-recursive; a second Lock() would be a self-deadlock, caught at
  /// compile time by the annotation and at runtime by the owner check).
  const GraphSource* FindResidentLocked(const std::string& content_key)
      const GRW_REQUIRES(mu_);

  // Lock discipline: mu_ guards both maps; it is held only for map
  // lookups/inserts, never across a snapshot load (Register parses /
  // mmaps outside the lock so a slow registration cannot block lookups).
  mutable Mutex mu_;
  std::map<std::string, GraphSource> entries_
      GRW_GUARDED_BY(mu_);  // id -> binding
  // (path + '\0' + checksum) -> resident source, for cross-id sharing of
  // identical snapshots. Never pruned: entries are one shared-backing
  // copy each and a daemon registers a bounded set of graphs.
  std::map<std::string, GraphSource> by_content_ GRW_GUARDED_BY(mu_);
};

}  // namespace grw::serve
