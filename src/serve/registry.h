// Resident snapshot registry: the storage layer of the estimation
// service.
//
// `grw serve` answers queries for many graphs from one process. The
// `.grwb` substrate (graph/format.h) makes that cheap — a snapshot open
// is one mmap (~µs) and pages fault in on demand — so the registry keeps
// every registered graph resident for the daemon's lifetime and shares
// the expensive warm state:
//
//   * snapshots are keyed by (path, header data checksum): two ids
//     registered over the same bytes share ONE mapping and ONE
//     AdjacencyIndex (Graph copies share backing and index), so
//     multi-tenant aliases of a popular graph cost nothing extra;
//   * the AdjacencyIndex is built exactly once per distinct snapshot, at
//     registration — requests never pay the index build;
//   * lookups return a Graph *copy* (spans + shared_ptr backing): a
//     request keeps its graph alive even if the id is replaced mid-run.
//
// Thread-safe: registration and lookup take one mutex; the returned
// Graph is immutable shared state.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "serve/protocol.h"
#include "util/sync.h"

namespace grw::serve {

class SnapshotRegistry {
 public:
  /// Loads `path` and registers it under `id`, replacing any previous
  /// binding of the id. `.grwb` snapshots mmap zero-copy and are keyed
  /// by (path, header data checksum) — re-registering an unchanged file
  /// reuses the resident mapping and its warm AdjacencyIndex; a changed
  /// checksum loads fresh. Text edge lists are accepted too (parsed,
  /// checksum 0, never shared by key). Builds the AdjacencyIndex unless
  /// `build_index` is false.
  ///
  /// With `verify` (the default), `.grwb` payloads are fully validated
  /// at registration — data checksum, offsets monotonicity, neighbor-id
  /// bounds — so a daemon never serves estimates from a silently
  /// corrupted snapshot; a mismatch throws SnapshotCorruptError and the
  /// id stays unbound (the caller quarantines: skip the binding, keep
  /// the file for inspection). The full-file read this costs is
  /// comparable to the index build the daemon does anyway. Throws
  /// std::runtime_error on other load failures.
  void Register(const std::string& id, const std::string& path,
                bool build_index = true, bool verify = true)
      GRW_EXCLUDES(mu_);

  /// Registers an in-memory graph (tests, the bench load generator).
  void RegisterGraph(const std::string& id, Graph graph,
                     const std::string& label = "<memory>")
      GRW_EXCLUDES(mu_);

  /// The graph bound to `id`, as a cheap copy sharing backing and index;
  /// nullopt for unknown ids.
  std::optional<Graph> Find(const std::string& id) const GRW_EXCLUDES(mu_);

  /// LIST-able view of every binding, in id order.
  std::vector<GraphListEntry> List() const GRW_EXCLUDES(mu_);

  size_t size() const GRW_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string path;
    uint64_t checksum = 0;
    Graph graph;
  };

  /// The resident graph for a (path, checksum) content key, nullptr if
  /// none. REQUIRES-checked so the register paths — which already hold
  /// mu_ when they consult residency — cannot re-lock (grw::Mutex is
  /// non-recursive; a second Lock() would be a self-deadlock, caught at
  /// compile time by the annotation and at runtime by the owner check).
  const Graph* FindResidentLocked(const std::string& content_key) const
      GRW_REQUIRES(mu_);

  // Lock discipline: mu_ guards both maps; it is held only for map
  // lookups/inserts, never across a snapshot load (Register parses /
  // mmaps outside the lock so a slow registration cannot block lookups).
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GRW_GUARDED_BY(mu_);  // id -> binding
  // (path + '\0' + checksum) -> resident graph, for cross-id sharing of
  // identical snapshots. Never pruned: entries are one Graph copy each
  // and a daemon registers a bounded set of graphs.
  std::map<std::string, Graph> by_content_ GRW_GUARDED_BY(mu_);
};

}  // namespace grw::serve
