#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace grw::serve {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
      case '\\':
        out += '\\';
        out += c;
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += esc;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(out, s);
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Plain recursive descent over the string_view; `pos` advances past each
// consumed token. Any failure returns false and poisons the whole parse.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue& out) {
    SkipSpace();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 32;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == 'n') {
      out.type = JsonValue::Type::kNull;
      return Literal("null");
    }
    if (c == 't') {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return Literal("false");
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.str);
    }
    if (c == '[') return ParseArray(out, depth);
    if (c == '{') return ParseObject(out, depth);
    return ParseNumber(out);
  }

  bool ParseString(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The protocol only ever emits \u00XX; decode the Latin-1
          // range as UTF-8 and reject surrogates outright.
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const size_t first = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > first;
    };
    const size_t int_start = pos_;
    if (!digits()) return false;
    // JSON grammar: the integer part is "0" or [1-9][0-9]* — a leading
    // zero followed by more digits is not a number.
    if (text_[int_start] == '0' && pos_ - int_start > 1) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return false;
    }
    out.type = JsonValue::Type::kNumber;
    out.raw.assign(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    out.number = std::strtod(out.raw.c_str(), &end);
    if (end != out.raw.c_str() + out.raw.size()) return false;
    return std::isfinite(out.number);
  }

  bool ParseArray(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipSpace();
      if (!ParseValue(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return false;
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return false;
      std::string key;
      if (!ParseString(key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text) {
  JsonValue value;
  Parser parser(text);
  if (!parser.Parse(value)) return std::nullopt;
  return value;
}

}  // namespace grw::serve
