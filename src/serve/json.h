// Minimal JSON support for the serve protocol (src/serve/protocol.h).
//
// The daemon answers every request with one single-line JSON object, and
// the `grw query` client, the load generator, and the tests all need to
// read those lines back — so this file provides both directions:
//
//   * a writer side (AppendJsonEscaped / JsonQuote / JsonNumber) with
//     correct string escaping, including \u00XX for control bytes, and
//     %.17g numbers so doubles survive a parse/print round trip
//     bit-exactly;
//   * a recursive-descent parser for the subset the protocol emits
//     (null, bool, finite numbers, strings, arrays, objects).
//
// Parsed numbers keep their *raw text* next to the converted double, so a
// client that wants to echo the server's estimate bit-for-bit (the CI
// smoke diffs `grw query --raw` against `grw estimate --raw`) can print
// the original bytes instead of re-formatting.
//
// Deliberately not a general-purpose library: duplicate object keys keep
// the last value, depth is capped, and numbers outside double range fail
// the parse.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace grw::serve {

/// Appends `s` to `out` JSON-escaped (quote, backslash, \n, \t, \r, and
/// \u00XX for every other byte below 0x20) without surrounding quotes.
void AppendJsonEscaped(std::string& out, std::string_view s);

/// `s` as a quoted, escaped JSON string literal.
std::string JsonQuote(std::string_view s);

/// A finite double as %.17g (round-trips bit-exactly); inf/nan become
/// `null` so one bad metric cannot make a response unparseable.
std::string JsonNumber(double v);

/// One parsed JSON value. A tagged struct rather than a variant keeps the
/// accessors trivial for the handful of call sites.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;

  bool boolean = false;
  double number = 0.0;
  std::string raw;  // numbers: the original text, for bit-exact echo
  std::string str;  // strings: the unescaped content
  std::vector<JsonValue> items;                            // arrays
  std::vector<std::pair<std::string, JsonValue>> fields;   // objects

  /// Object lookup; nullptr when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;

  bool IsTrue() const { return type == Type::kBool && boolean; }
};

/// Parses one complete JSON document; trailing non-whitespace rejects.
std::optional<JsonValue> ParseJson(std::string_view text);

}  // namespace grw::serve
