// Blocking line-protocol client for the estimation service.
//
// Shared by the `grw query` subcommand, the bench load generator and the
// serve tests: connect once, then RoundTrip() request lines — the server
// answers strictly in order, so one in-flight request per client needs
// no correlation ids.

#pragma once

#include <string>

namespace grw::serve {

class QueryClient {
 public:
  /// Connects to host:port; throws std::runtime_error on failure.
  QueryClient(const std::string& host, int port);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Sends `line` (newline appended) and returns the single response
  /// line, without its newline. Throws std::runtime_error if the server
  /// hangs up mid-exchange.
  std::string RoundTrip(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned response line
};

}  // namespace grw::serve
