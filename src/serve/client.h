// Blocking line-protocol client for the estimation service.
//
// Shared by the `grw query` subcommand, the bench load generator and the
// serve tests: connect once, then RoundTrip() request lines — the server
// answers strictly in order, so one in-flight request per client needs
// no correlation ids.
//
// Every wait is bounded by default (Options): a hung or wedged server
// yields a clear std::runtime_error instead of blocking the client
// forever. On top of the single-connection client, QueryWithRetry()
// implements the full resilience loop one logical query wants:
// reconnect-and-resend on transport failures, honor the server's
// structured RETRY_AFTER load-shed hint, capped exponential backoff
// with jitter between attempts, and never retry an error that is a
// final answer.

#pragma once

#include <cstdint>
#include <string>

namespace grw::serve {

class QueryClient {
 public:
  struct Options {
    /// Bound on establishing the TCP connection. -1 waits forever.
    int connect_timeout_ms = 5'000;
    /// Bound on each wait for response bytes. Covers the engine run the
    /// server performs before answering, so it is generous by default;
    /// -1 waits forever (pre-PR-9 behavior, not recommended).
    int read_timeout_ms = 30'000;
    /// Bound on each send. Sends only block when the peer's socket
    /// buffer is full, so this guards against a wedged (not merely
    /// slow) server.
    int write_timeout_ms = 30'000;
  };

  /// Connects to host:port; throws std::runtime_error on failure or
  /// connect timeout. The two-argument form uses the default Options.
  QueryClient(const std::string& host, int port);
  QueryClient(const std::string& host, int port, const Options& options);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Sends `line` (newline appended) and returns the single response
  /// line, without its newline. Throws std::runtime_error if the server
  /// hangs up mid-exchange or a timeout elapses.
  std::string RoundTrip(const std::string& line);

 private:
  Options opt_;
  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned response line
};

/// Retry policy for QueryWithRetry: exponential backoff base * 2^attempt
/// capped at max, plus a uniform jitter fraction, REAL wall-clock sleeps
/// (unlike the crawl failure model, a live client actually waits).
struct RetryPolicy {
  /// Retries after the first attempt (so max_retries + 1 attempts total).
  int max_retries = 4;
  double backoff_base_ms = 25.0;
  double backoff_max_ms = 2'000.0;
  /// Extra uniform wait fraction in [0, jitter) per backoff, so a fleet
  /// of shed clients does not resend in lockstep.
  double jitter = 0.5;
  /// Seed for the jitter stream (deterministic tests).
  uint64_t seed = 0x72657472795eedULL;
};

/// The result of one logical query through the retry loop.
struct QueryOutcome {
  /// The final response line. Empty iff transport_error.
  std::string response;
  /// Connection/send/receive attempts made (>= 1).
  int attempts = 1;
  /// Retries performed (attempts - 1): transport failures + load sheds.
  int retries = 0;
  /// True when every attempt failed at the transport layer (connect,
  /// timeout, hangup) — `error` describes the last failure and
  /// `response` is empty. A false value with an error response in
  /// `response` means the SERVER answered; that answer is final.
  bool transport_error = false;
  std::string error;
};

/// One logical query with bounded retries. Retried: transport failures
/// (fresh connection per attempt — the old stream is poisoned) and
/// structured RETRY_AFTER load-shed responses, honoring the server's
/// retry_after_ms hint (capped at policy.backoff_max_ms). NOT retried:
/// any other error response — those are final answers (bad request,
/// unknown graph, deadline exceeded), and resending cannot change them.
/// Never throws; transport failure is reported in the outcome.
QueryOutcome QueryWithRetry(const std::string& host, int port,
                            const std::string& line,
                            const QueryClient::Options& options = {},
                            const RetryPolicy& policy = {});

}  // namespace grw::serve
