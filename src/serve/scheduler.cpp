#include "serve/scheduler.h"

#include <algorithm>
#include <exception>

#include "engine/engine.h"
#include "util/fault.h"

namespace grw::serve {

namespace {

std::string DeadlineError(uint64_t steps_per_chain) {
  std::string out = "deadline exceeded";
  if (steps_per_chain > 0) {
    out += " after " + std::to_string(steps_per_chain) + " steps/chain";
  } else {
    out += " before the run started";
  }
  return out;
}

}  // namespace

ServeScheduler::ServeScheduler(const SnapshotRegistry* registry,
                               SchedulerOptions options)
    : registry_(registry), options_(options) {
  const int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServeScheduler::~ServeScheduler() { Drain(); }

void ServeScheduler::CountError() {
  MutexLock lock(mu_);
  ++stats_.errors;
}

std::string ServeScheduler::HandleLine(std::string_view line) {
  ParsedRequest parsed = ParseRequestLine(line, options_.limits);
  if (!parsed.request.has_value()) {
    CountError();
    return ErrorResponse(parsed.error);
  }
  switch (parsed.request->verb) {
    case Request::Verb::kPing:
      return PingResponse(options_.limits);
    case Request::Verb::kList:
      return ListResponse(registry_->List());
    case Request::Verb::kEstimate:
      return SubmitEstimate(std::move(parsed.request->estimate));
  }
  CountError();
  return ErrorResponse("internal: unhandled verb");
}

std::string ServeScheduler::SubmitEstimate(EstimateRequest request) {
  Job job;
  job.admitted = std::chrono::steady_clock::now();
  if (request.deadline_ms > 0.0) {
    job.has_deadline = true;
    job.deadline =
        job.admitted + std::chrono::microseconds(static_cast<int64_t>(
                           request.deadline_ms * 1000.0));
  }

  {
    MutexLock lock(mu_);
    if (draining_) {
      ++stats_.errors;
      return ErrorResponse("server draining, not accepting requests");
    }
    // Load shed with the structured RETRY_AFTER error: refused before
    // any work, so the client can safely back off and resend
    // (QueryWithRetry in client.h does). The chaos site forces this arm
    // so injection exercises the whole shed-retry-succeed loop.
    if (queue_.size() >= options_.queue_limit || GRW_FAULT("serve.admit")) {
      ++stats_.rejected_queue;
      ++stats_.errors;
      return OverloadedResponse("server overloaded (queue full)",
                                options_.retry_after_ms);
    }
    // Tenant admission: cap the request's crawl budget by the tenant's
    // remaining allowance. The engine then enforces it chain-locally and
    // reports the actual distinct fetches, charged back on completion.
    if (!request.tenant.empty() && options_.tenant_budget > 0) {
      const uint64_t spent = tenant_spent_[request.tenant];
      const uint64_t remaining =
          spent >= options_.tenant_budget ? 0
                                          : options_.tenant_budget - spent;
      uint64_t cap = remaining;
      if (request.budget_queries > 0) {
        cap = std::min(cap, request.budget_queries);
      }
      if (cap < static_cast<uint64_t>(request.chains)) {
        ++stats_.errors;
        return ErrorResponse(
            "tenant '" + request.tenant + "': distinct-query budget "
            "exhausted (" + std::to_string(remaining) + " of " +
            std::to_string(options_.tenant_budget) + " remaining, need >= " +
            std::to_string(request.chains) + ")");
      }
      request.crawl = true;
      request.budget_queries = cap;
      job.tenant_cap = cap;
    }
    job.request = std::move(request);
    ++stats_.accepted;
    queue_.push_back(&job);
  }
  queue_cv_.NotifyOne();

  MutexLock lock(job.mu);
  // Explicit wait loop so the analysis checks job.done against job.mu.
  while (!job.done) job.cv.Wait(job.mu);
  return std::move(job.response);
}

void ServeScheduler::WorkerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!draining_ && queue_.empty()) queue_cv_.Wait(mu_);
      if (queue_.empty()) return;  // draining and nothing left
      job = queue_.front();
      queue_.pop_front();
    }
    RunJob(*job);
  }
}

void ServeScheduler::RunJob(Job& job) {
  const EstimateRequest& req = job.request;
  std::string response;
  bool ok = false;
  // Worker-local until the locked accounting block below: the submitter
  // never reads it, so it needs no lock and no field on the Job.
  uint64_t charged_distinct = 0;

  try {
    // Chaos site: a worker blowing up mid-job must surface as a clean
    // structured error on THIS request and leave the pool healthy.
    if (GRW_FAULT("serve.job")) {
      throw std::runtime_error("injected fault: serve.job");
    }
    if (job.has_deadline &&
        std::chrono::steady_clock::now() >= job.deadline) {
      // Expired while queued: answer without occupying the pool.
      response = ErrorResponse(DeadlineError(0));
    } else {
      const std::optional<GraphSource> source =
          registry_->FindSource(req.graph);
      if (!source.has_value()) {
        response = ErrorResponse("unknown graph '" + req.graph + "'");
      } else if (source->sharded() && req.crawl) {
        // The crawl cache simulates remote-API access over one flat
        // graph; it does not compose with out-of-core storage.
        response = ErrorResponse(
            "graph '" + req.graph +
            "' is sharded (out-of-core); crawl mode is unavailable on "
            "sharded graphs");
      } else {
        EngineOptions options = ToEngineOptions(req);
        options.threads = options_.engine_threads;
        options.pool = options_.pool;  // nullptr = ChainPool::Shared()
        if (job.has_deadline) {
          const auto deadline = job.deadline;
          options.cancel = [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
          };
        }
        EstimationEngine engine =
            source->sharded()
                ? EstimationEngine(source->shards(), req.config, options)
                : EstimationEngine(source->graph(), req.config, options);
        const EngineResult result = engine.Run();
        charged_distinct = result.access.distinct_fetches;
        if (result.cancelled) {
          response = ErrorResponse(DeadlineError(result.steps_per_chain));
        } else {
          response = EstimateResponse(req, result);
          ok = true;
        }
      }
    }
  } catch (const std::exception& e) {
    response = ErrorResponse(e.what());
  } catch (...) {
    response = ErrorResponse("internal error");
  }

  {
    MutexLock lock(mu_);
    if (ok) {
      ++stats_.completed;
    } else {
      ++stats_.errors;
    }
    // Charge real consumption even for cancelled/failed runs: the
    // distinct fetches happened either way.
    if (charged_distinct > 0 && !req.tenant.empty() &&
        options_.tenant_budget > 0) {
      tenant_spent_[req.tenant] += charged_distinct;
    }
  }

  {
    MutexLock lock(job.mu);
    job.response = std::move(response);
    job.done = true;
    // Notify INSIDE the critical section: the Job lives on the
    // submitter's stack and is destroyed the moment the submitter
    // observes done. Signalling after unlocking would race that
    // destruction (the submitter can be past Wait() the instant the
    // mutex is released); under the lock, it cannot observe done until
    // this scope closes.
    job.cv.NotifyOne();
  }
}

void ServeScheduler::Drain() {
  // drain_mu_ serializes concurrent Drain calls (Stop + destructor);
  // only the first joins the workers, later calls find them gone.
  MutexLock drain_lock(drain_mu_);
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServeScheduler::Stats ServeScheduler::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace grw::serve
