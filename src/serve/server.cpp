#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/posix_io.h"

namespace grw::serve {

ServeServer::ServeServer(const SnapshotRegistry* registry,
                         ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      scheduler_(std::make_unique<ServeScheduler>(registry_,
                                                  options_.scheduler)) {}

ServeServer::~ServeServer() { Stop(); }

void ServeServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: invalid host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + options_.host +
                             ":" + std::to_string(options_.port) + ": " +
                             err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void ServeServer::AcceptLoop() {
  while (!stopping_.load()) {
    // Poll with a timeout so Stop() is noticed even with no traffic.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { Connection(fd); });
  }
}

void ServeServer::Connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // No read timeout: an idle long-lived connection is legitimate, and
    // shutdown liveness comes from Stop()'s SHUT_RD half-close (EOF),
    // not from a deadline. The checked wrapper still absorbs EINTR and
    // the injected io.read.* faults.
    const io::IoResult r = io::ReadSome(fd, chunk, sizeof(chunk));
    if (!r.ok()) break;  // EOF (peer or Stop's SHUT_RD) or error
    buffer.append(chunk, r.bytes);
    size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      std::string response = scheduler_->HandleLine(line);
      response += '\n';
      // Bounded send: a peer that stops draining gets its response
      // dropped and the connection closed instead of wedging this
      // thread forever on a full socket buffer.
      if (!io::WriteAll(fd, response, options_.write_timeout_ms).ok()) {
        open = false;
      }
    }
    if (buffer.size() > options_.max_line_bytes) {
      // A peer streaming an endless unterminated "line" is not speaking
      // the protocol; answer once and hang up.
      io::WriteAll(fd, ErrorResponse("request line too long") + "\n",
                   options_.write_timeout_ms);
      break;
    }
  }
  ::close(fd);
  MutexLock lock(conn_mu_);
  conn_fds_.erase(fd);
}

void ServeServer::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true);
    if (listen_fd_ >= 0) {
      // Unblocks the accept poll immediately on most platforms; the 200ms
      // poll timeout covers the rest.
      ::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> to_join;
    {
      // Half-close every connection: their read() returns 0, the threads
      // finish the request in hand (write side intact) and exit. The
      // accept thread is joined, so the vector can only shrink — swap it
      // out under the lock and join outside it (a connection thread's
      // exit path takes conn_mu_ to erase its fd; joining while holding
      // the lock would deadlock).
      MutexLock lock(conn_mu_);
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
      to_join.swap(conn_threads_);
    }
    for (std::thread& t : to_join) {
      if (t.joinable()) t.join();
    }
    scheduler_->Drain();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    running_.store(false);
  });
}

ServeScheduler::Stats ServeServer::stats() const {
  return scheduler_->stats();
}

}  // namespace grw::serve
