#include "serve/registry.h"

#include "graph/format.h"
#include "graph/sharding.h"

namespace grw::serve {

namespace {

// Content identity BEFORE the (possibly expensive) load: one header read
// for `.grwb`, one manifest read for sharded, empty for text (parsed
// content has no stored checksum and is never shared by key).
std::string ContentKey(const std::string& path) {
  if (IsShardManifestPath(path)) {
    const uint64_t checksum = ShardContentChecksum(LoadShardManifest(path));
    return path + '\0' + std::to_string(checksum);
  }
  if (IsGraphBinaryFile(path)) {
    const uint64_t checksum = InspectGraphBinary(path).data_checksum;
    return path + '\0' + std::to_string(checksum);
  }
  return {};
}

}  // namespace

const GraphSource* SnapshotRegistry::FindResidentLocked(
    const std::string& content_key) const {
  auto it = by_content_.find(content_key);
  return it != by_content_.end() ? &it->second : nullptr;
}

void SnapshotRegistry::Register(const std::string& id,
                                const std::string& path, bool build_index,
                                bool verify,
                                uint64_t resident_budget_bytes) {
  const std::string content_key = ContentKey(path);

  {
    MutexLock lock(mu_);
    if (!content_key.empty()) {
      if (const GraphSource* resident = FindResidentLocked(content_key)) {
        entries_[id] = *resident;  // shares mapping/store + warm index
        return;
      }
    }
  }

  // Load outside the lock: mmap is fast but text parsing, verification
  // and index builds are not, and a slow registration must not block
  // lookups. Two threads racing to register the same content both load;
  // the second insert below merely replaces an identical resident source
  // — wasted work, never a wrong answer. Payloads are verified here (see
  // header) so corruption surfaces as SnapshotCorruptError at
  // registration, not as garbage estimates at query time.
  OpenOptions options;
  options.build_index = build_index;
  options.verify = verify;
  options.resident_budget_bytes = resident_budget_bytes;
  GraphSource source = GraphSource::Open(path, options);

  MutexLock lock(mu_);
  if (!content_key.empty()) by_content_[content_key] = source;
  entries_[id] = std::move(source);
}

void SnapshotRegistry::RegisterGraph(const std::string& id, Graph graph,
                                     const std::string& label) {
  GraphSource source = GraphSource::FromGraph(std::move(graph), label);
  MutexLock lock(mu_);
  entries_[id] = std::move(source);
}

std::optional<GraphSource> SnapshotRegistry::FindSource(
    const std::string& id) const {
  MutexLock lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<Graph> SnapshotRegistry::Find(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second.sharded()) return std::nullopt;
  return it->second.graph();
}

std::vector<GraphListEntry> SnapshotRegistry::List() const {
  MutexLock lock(mu_);
  std::vector<GraphListEntry> out;
  out.reserve(entries_.size());
  for (const auto& [id, source] : entries_) {
    GraphListEntry e;
    e.id = id;
    e.path = source.path();
    e.nodes = source.NumNodes();
    e.edges = source.NumEdges();
    e.checksum = source.content_checksum();
    out.push_back(std::move(e));
  }
  return out;
}

size_t SnapshotRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace grw::serve
