#include "serve/registry.h"

#include "graph/format.h"

namespace grw::serve {

void SnapshotRegistry::Register(const std::string& id,
                                const std::string& path, bool build_index) {
  Entry entry;
  entry.path = path;

  std::string content_key;
  if (IsGraphBinaryFile(path)) {
    // One header read gives the content identity before we decide
    // whether a resident mapping can be reused.
    entry.checksum = InspectGraphBinary(path).data_checksum;
    content_key = path + '\0' + std::to_string(entry.checksum);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!content_key.empty()) {
      auto it = by_content_.find(content_key);
      if (it != by_content_.end()) {
        entry.graph = it->second;  // shares mapping + warm index
        entries_[id] = std::move(entry);
        return;
      }
    }
  }

  // Load outside the lock: mmap is fast but text parsing is not, and a
  // slow registration must not block lookups.
  Graph g = LoadGraph(path);
  if (build_index) g.BuildAdjacencyIndex();
  entry.graph = std::move(g);

  std::lock_guard<std::mutex> lock(mu_);
  if (!content_key.empty()) by_content_[content_key] = entry.graph;
  entries_[id] = std::move(entry);
}

void SnapshotRegistry::RegisterGraph(const std::string& id, Graph graph,
                                     const std::string& label) {
  Entry entry;
  entry.path = label;
  entry.graph = std::move(graph);
  std::lock_guard<std::mutex> lock(mu_);
  entries_[id] = std::move(entry);
}

std::optional<Graph> SnapshotRegistry::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.graph;
}

std::vector<GraphListEntry> SnapshotRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GraphListEntry> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    GraphListEntry e;
    e.id = id;
    e.path = entry.path;
    e.nodes = entry.graph.NumNodes();
    e.edges = entry.graph.NumEdges();
    e.checksum = entry.checksum;
    out.push_back(std::move(e));
  }
  return out;
}

size_t SnapshotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace grw::serve
