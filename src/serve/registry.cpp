#include "serve/registry.h"

#include "graph/format.h"

namespace grw::serve {

const Graph* SnapshotRegistry::FindResidentLocked(
    const std::string& content_key) const {
  auto it = by_content_.find(content_key);
  return it != by_content_.end() ? &it->second : nullptr;
}

void SnapshotRegistry::Register(const std::string& id,
                                const std::string& path, bool build_index,
                                bool verify) {
  Entry entry;
  entry.path = path;

  const bool is_binary = IsGraphBinaryFile(path);
  std::string content_key;
  if (is_binary) {
    // One header read gives the content identity before we decide
    // whether a resident mapping can be reused.
    entry.checksum = InspectGraphBinary(path).data_checksum;
    content_key = path + '\0' + std::to_string(entry.checksum);
  }

  {
    MutexLock lock(mu_);
    if (!content_key.empty()) {
      if (const Graph* resident = FindResidentLocked(content_key)) {
        entry.graph = *resident;  // shares mapping + warm index
        entries_[id] = std::move(entry);
        return;
      }
    }
  }

  // Load outside the lock: mmap is fast but text parsing is not, and a
  // slow registration must not block lookups. Two threads racing to
  // register the same content both load; the second insert below merely
  // replaces an identical resident graph — wasted work, never a wrong
  // answer. Binary snapshots are checksum-verified here (see header)
  // so corruption surfaces as SnapshotCorruptError at registration, not
  // as garbage estimates at query time.
  Graph g = is_binary ? LoadGraphBinary(path, /*verify_checksum=*/verify)
                      : LoadGraph(path);
  if (build_index) g.BuildAdjacencyIndex();
  entry.graph = std::move(g);

  MutexLock lock(mu_);
  if (!content_key.empty()) by_content_[content_key] = entry.graph;
  entries_[id] = std::move(entry);
}

void SnapshotRegistry::RegisterGraph(const std::string& id, Graph graph,
                                     const std::string& label) {
  Entry entry;
  entry.path = label;
  entry.graph = std::move(graph);
  MutexLock lock(mu_);
  entries_[id] = std::move(entry);
}

std::optional<Graph> SnapshotRegistry::Find(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.graph;
}

std::vector<GraphListEntry> SnapshotRegistry::List() const {
  MutexLock lock(mu_);
  std::vector<GraphListEntry> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    GraphListEntry e;
    e.id = id;
    e.path = entry.path;
    e.nodes = entry.graph.NumNodes();
    e.edges = entry.graph.NumEdges();
    e.checksum = entry.checksum;
    out.push_back(std::move(e));
  }
  return out;
}

size_t SnapshotRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace grw::serve
