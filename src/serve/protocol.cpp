#include "serve/protocol.h"

#include <cmath>
#include <limits>

#include "core/paper_ids.h"
#include "graphlet/catalog.h"
#include "serve/json.h"
#include "util/flags.h"

namespace grw::serve {

namespace {

// Splits on runs of spaces. Tabs and other whitespace are NOT separators:
// the protocol is spaces-only, and anything else lands inside a token
// where the strict field parsing rejects it.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

ParsedRequest Fail(std::string error) {
  ParsedRequest out;
  out.error = std::move(error);
  return out;
}

// Every response object leads with the protocol version so clients can
// gate their parsing on the very first field.
std::string ResponseHead() {
  return "{\"v\": " + std::to_string(kProtocolVersion);
}

// Validates a `v=` field value (any verb). Empty return = accepted; a
// v-less request never reaches here and means v=1 (legacy dialect).
std::string CheckVersion(const std::string& value) {
  const std::optional<int64_t> v = ParseInt64(value);
  if (!v.has_value()) {
    return "field v: invalid integer '" + value + "'";
  }
  if (*v < 1 || *v > kProtocolVersion) {
    return "unsupported protocol version v=" + value +
           " (this server speaks v=" + std::to_string(kProtocolVersion) +
           ")";
  }
  return {};
}

// Field accumulator with CLI-identical default resolution at the end.
struct EstimateFields {
  EstimateRequest req;
  bool have_k = false;
  bool have_d = false;
  bool have_css = false;
  bool have_nb = false;

  // Returns an empty string on success, the error text otherwise.
  std::string Set(const std::string& key, const std::string& value,
                  const RequestLimits& limits) {
    auto bad = [&](const char* kind) {
      return "field " + key + ": invalid " + kind + " '" + value + "'";
    };
    auto get_int = [&](int64_t min, int64_t max, int64_t& out,
                       std::string& err) {
      const std::optional<int64_t> v = ParseInt64(value);
      if (!v.has_value()) {
        err = bad("integer");
        return false;
      }
      if (*v < min || *v > max) {
        err = "field " + key + ": value " + value + " out of range [" +
              std::to_string(min) + ", " + std::to_string(max) + "]";
        return false;
      }
      out = *v;
      return true;
    };
    std::string err;
    int64_t n = 0;
    if (key == "v") {
      return CheckVersion(value);
    } else if (key == "graph") {
      if (value.empty()) return "field graph: empty id";
      req.graph = value;
    } else if (key == "k") {
      if (!get_int(3, kMaxGraphletSize, n, err)) return err;
      req.config.k = static_cast<int>(n);
      have_k = true;
    } else if (key == "d") {
      if (!get_int(1, kMaxGraphletSize - 1, n, err)) return err;
      req.config.d = static_cast<int>(n);
      have_d = true;
    } else if (key == "css") {
      const std::optional<bool> b = ParseBool(value);
      if (!b.has_value()) return bad("boolean");
      req.config.css = *b;
      have_css = true;
    } else if (key == "nb") {
      const std::optional<bool> b = ParseBool(value);
      if (!b.has_value()) return bad("boolean");
      req.config.nb = *b;
      have_nb = true;
    } else if (key == "steps") {
      if (!get_int(1, static_cast<int64_t>(limits.max_steps), n, err)) {
        return err;
      }
      req.max_steps = static_cast<uint64_t>(n);
    } else if (key == "target_nrmse") {
      const std::optional<double> v = ParseDouble(value);
      if (!v.has_value()) return bad("number");
      if (*v < 0.0) return "field target_nrmse: must be >= 0";
      req.target_nrmse = *v;
    } else if (key == "seed") {
      // Non-negative: a negative seed used to wrap to a huge uint64,
      // silently desynchronizing "same seed" reproductions across tools.
      const std::optional<int64_t> v = ParseInt64(value);
      if (!v.has_value()) return bad("integer");
      if (*v < 0) return "field seed: must be >= 0";
      req.seed = static_cast<uint64_t>(*v);
    } else if (key == "chains") {
      if (!get_int(1, limits.max_chains, n, err)) return err;
      req.chains = static_cast<int>(n);
    } else if (key == "crawl") {
      const std::optional<bool> b = ParseBool(value);
      if (!b.has_value()) return bad("boolean");
      req.crawl = *b;
    } else if (key == "budget") {
      if (!get_int(0, std::numeric_limits<int64_t>::max(), n, err)) {
        return err;
      }
      req.budget_queries = static_cast<uint64_t>(n);
      req.crawl = true;
    } else if (key == "cache") {
      if (!get_int(0, std::numeric_limits<int64_t>::max(), n, err)) {
        return err;
      }
      req.cache_entries = static_cast<uint64_t>(n);
      req.crawl = true;
    } else if (key == "deadline_ms") {
      const std::optional<double> v = ParseDouble(value);
      if (!v.has_value()) return bad("number");
      if (*v < 0.0) return "field deadline_ms: must be >= 0";
      req.deadline_ms = *v;
    } else if (key == "tenant") {
      if (value.empty()) return "field tenant: empty id";
      req.tenant = value;
    } else {
      return "unknown field '" + key + "'";
    }
    return {};
  }

  std::string Finish() {
    if (req.graph.empty()) return "missing required field graph";
    if (!have_k) return "missing required field k";
    // The CLI's defaults, in the CLI's order: d from k, css from the
    // *resolved* d, nb from k.
    if (!have_d) req.config.d = req.config.k == 3 ? 1 : 2;
    if (req.config.d >= req.config.k) {
      return "field d: must satisfy 1 <= d < k";
    }
    if (!have_css) req.config.css = req.config.d <= 2;
    if (!have_nb) req.config.nb = req.config.k == 3;
    if (req.budget_queries > 0 &&
        req.budget_queries < static_cast<uint64_t>(req.chains)) {
      return "field budget: must be >= chains (every chain needs a "
             "positive distinct-query share)";
    }
    return {};
  }
};

}  // namespace

ParsedRequest ParseRequestLine(std::string_view line,
                               const RequestLimits& limits) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Fail("empty request");

  ParsedRequest out;
  const std::string& verb = tokens[0];
  if (verb == "PING" || verb == "LIST") {
    // The only field these verbs take is the protocol version; anything
    // else is rejected by name, so a typo'd or future-protocol request
    // fails loudly instead of being silently ignored.
    for (size_t i = 1; i < tokens.size(); ++i) {
      const std::string& token = tokens[i];
      const size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Fail("malformed field '" + token + "' (expected key=value)");
      }
      const std::string key = token.substr(0, eq);
      if (key != "v") {
        return Fail("unknown field '" + key + "' (verb " + verb +
                    " takes only v=)");
      }
      std::string err = CheckVersion(token.substr(eq + 1));
      if (!err.empty()) return Fail(std::move(err));
    }
    out.request = Request{};
    out.request->verb =
        verb == "PING" ? Request::Verb::kPing : Request::Verb::kList;
    return out;
  }
  if (verb != "ESTIMATE") {
    return Fail("unknown verb '" + verb + "'");
  }

  EstimateFields fields;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Fail("malformed field '" + token + "' (expected key=value)");
    }
    std::string err = fields.Set(token.substr(0, eq), token.substr(eq + 1),
                                 limits);
    if (!err.empty()) return Fail(std::move(err));
  }
  std::string err = fields.Finish();
  if (!err.empty()) return Fail(std::move(err));

  out.request = Request{};
  out.request->verb = Request::Verb::kEstimate;
  out.request->estimate = std::move(fields.req);
  return out;
}

EngineOptions ToEngineOptions(const EstimateRequest& req) {
  EngineOptions options;
  options.chains = req.chains;
  options.max_steps = req.max_steps;
  options.base_seed = req.seed;
  options.target_nrmse = req.target_nrmse;
  options.crawl.enabled = req.crawl;
  options.crawl.budget_queries = req.budget_queries;
  options.crawl.cache_entries = req.cache_entries;
  if (req.target_nrmse > 0.0 || req.chains > 1) {
    // The CLI pins the round slicing whenever convergence checking or
    // multi-chain merging is on; reproduce it exactly or stopping points
    // (and thus estimates under target_nrmse) would diverge.
    options.round_steps = EngineOptions::DefaultRoundSteps(req.max_steps);
  } else if (req.deadline_ms > 0.0) {
    // Cancellation lands on round boundaries; a single giant round would
    // make the deadline unenforceable. Round slicing never changes the
    // merged estimate of a run without early stopping.
    options.round_steps = EngineOptions::DefaultRoundSteps(req.max_steps);
  }
  return options;
}

std::string ErrorResponse(std::string_view error) {
  std::string out = ResponseHead() + ", \"ok\": false, \"error\": ";
  out += JsonQuote(error);
  out += "}";
  return out;
}

std::string OverloadedResponse(std::string_view error,
                               double retry_after_ms) {
  std::string out = ResponseHead() + ", \"ok\": false, \"error\": ";
  out += JsonQuote(error);
  out += ", \"code\": ";
  out += JsonQuote(kErrorCodeRetryAfter);
  out += ", \"retry_after_ms\": ";
  out += JsonNumber(retry_after_ms);
  out += "}";
  return out;
}

std::string PingResponse(const RequestLimits& limits) {
  std::string out = ResponseHead() + ", \"ok\": true, \"pong\": true";
  out += ", \"capabilities\": {\"batch\": true, \"crawl\": true, "
         "\"sharded\": true}";
  out += ", \"limits\": {\"max_steps\": " +
         std::to_string(limits.max_steps) +
         ", \"max_chains\": " + std::to_string(limits.max_chains) + "}}";
  return out;
}

std::string EstimateResponse(const EstimateRequest& req,
                             const EngineResult& result) {
  std::string out = ResponseHead() + ", \"ok\": true";
  out += ", \"graph\": " + JsonQuote(req.graph);
  out += ", \"method\": " + JsonQuote(req.config.Name());
  out += ", \"k\": " + std::to_string(req.config.k);
  out += ", \"d\": " + std::to_string(req.config.d);
  out += ", \"chains\": " + std::to_string(req.chains);
  out += ", \"seed\": " + std::to_string(req.seed);
  out += ", \"steps\": " + std::to_string(result.merged.steps);
  out += ", \"steps_per_chain\": " + std::to_string(result.steps_per_chain);
  out += ", \"rounds\": " + std::to_string(result.rounds);
  out += ", \"converged\": ";
  out += result.converged ? "true" : "false";
  out += ", \"cancelled\": ";
  out += result.cancelled ? "true" : "false";
  out += ", \"budget_exhausted\": ";
  out += result.budget_exhausted ? "true" : "false";
  out += ", \"seconds\": " + JsonNumber(result.seconds);
  if (req.crawl) {
    out += ", \"distinct_queries\": " +
           std::to_string(result.access.distinct_fetches);
    out += ", \"fetches\": " + std::to_string(result.access.fetches);
  }
  if (result.shards.faults + result.shards.hits > 0) {
    // Sharded (out-of-core) graph: surface the residency accounting so
    // a client can see what its resident budget cost.
    out += ", \"shards\": {\"faults\": " +
           std::to_string(result.shards.faults);
    out += ", \"hits\": " + std::to_string(result.shards.hits);
    out += ", \"evictions\": " + std::to_string(result.shards.evictions);
    out += ", \"peak_resident_bytes\": " +
           std::to_string(result.shards.peak_resident_bytes);
    out += ", \"budget_bytes\": " +
           std::to_string(result.shards.budget_bytes);
    out += "}";
  }
  // Paper order, like every table the CLI prints. An empty merged result
  // (zero completed rounds before a deadline) yields empty arrays.
  const std::vector<int>& order = PaperOrder(req.config.k);
  out += ", \"labels\": [";
  for (size_t pos = 0; pos < order.size(); ++pos) {
    if (pos > 0) out += ", ";
    out += JsonQuote(PaperLabel(req.config.k, static_cast<int>(pos)));
  }
  out += "], \"concentrations\": [";
  if (!result.merged.concentrations.empty()) {
    for (size_t pos = 0; pos < order.size(); ++pos) {
      if (pos > 0) out += ", ";
      out += JsonNumber(result.merged.concentrations[order[pos]]);
    }
  }
  out += "]}";
  return out;
}

std::string ListResponse(const std::vector<GraphListEntry>& graphs) {
  std::string out = ResponseHead() + ", \"ok\": true, \"graphs\": [";
  for (size_t i = 0; i < graphs.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"id\": " + JsonQuote(graphs[i].id);
    out += ", \"path\": " + JsonQuote(graphs[i].path);
    out += ", \"nodes\": " + std::to_string(graphs[i].nodes);
    out += ", \"edges\": " + std::to_string(graphs[i].edges);
    out += ", \"checksum\": " + std::to_string(graphs[i].checksum);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace grw::serve
