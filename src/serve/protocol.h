// Wire protocol of the estimation service (`grw serve` / `grw query`).
//
// Line-oriented and human-typeable: a client sends one request per line
// and receives one single-line JSON object per request, in order.
//
//   PING [v=1]
//   LIST [v=1]
//   ESTIMATE graph=<id> k=<3..6> [v=1] [d=D] [css=0|1] [nb=0|1] [steps=N]
//            [target_nrmse=X] [seed=S] [chains=C] [crawl=0|1]
//            [budget=B] [cache=C] [deadline_ms=MS] [tenant=NAME]
//
// The protocol is VERSIONED: every request may carry `v=N` (any verb) and
// every response object leads with `"v": 1`. A v-less request is the
// legacy dialect and means v=1 — old clients keep working unchanged; a
// request with v above kProtocolVersion is rejected with a structured
// error naming the supported version, so a new client talking to an old
// server fails loudly at the first exchange instead of misparsing
// replies. PING doubles as capability discovery: its response lists the
// server's optional features (batch, crawl, sharded) and its request
// limits, so clients can feature-gate without try-and-see.
//
// Field semantics and *defaults* mirror `grw estimate` exactly — d
// defaults to (k == 3 ? 1 : 2), css to (d <= 2), nb to (k == 3), steps to
// 100000, seed to 42, chains to 1 — and ToEngineOptions() reproduces the
// CLI's round-steps pinning, so a served estimate is bit-identical to the
// CLI run with the same snapshot and fields (the CI serve smoke diffs the
// two). `budget`/`cache`/`crawl` switch the request onto the crawl
// accounting layer like the CLI's crawl flags; `deadline_ms` arms
// cooperative cancellation (EngineOptions::cancel) measured from
// admission; `tenant` attributes the request to a per-tenant
// distinct-query budget when the server enforces one.
//
// Parsing is *strict*, with the same full-string numeric rules as the
// flag parser (util/flags.h ParseInt64/ParseDouble/ParseBool): unknown
// verbs, unknown keys, bare words, malformed or out-of-range numbers all
// produce a one-line error *response* — never a crash, never a silent
// misparse. Server-side resource limits (max steps, max chains) are
// enforced here too, so a hostile "huge budget" request dies at parse
// time instead of occupying a worker.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/estimator.h"
#include "engine/engine.h"

namespace grw::serve {

/// The wire protocol version this build speaks. Bump only for changes an
/// old client could misparse; additive response fields do not count.
inline constexpr int kProtocolVersion = 1;

/// Server-side caps applied at parse time. Requests beyond them are
/// rejected with an error response (admission control for resources the
/// scheduler's queue bound cannot see).
struct RequestLimits {
  uint64_t max_steps = 50'000'000;
  int max_chains = 256;
};

/// One parsed ESTIMATE request. Defaults match `grw estimate`.
struct EstimateRequest {
  std::string graph;
  EstimatorConfig config;  // k/d/css/nb resolved to CLI defaults
  uint64_t max_steps = 100000;
  uint64_t seed = 42;
  int chains = 1;
  double target_nrmse = 0.0;
  /// Crawl accounting: enabled by crawl=1 or a budget/cache field, like
  /// the CLI's presence-based crawl flags.
  bool crawl = false;
  uint64_t budget_queries = 0;
  uint64_t cache_entries = 0;
  /// 0 = no deadline. Measured from admission (queue wait counts).
  double deadline_ms = 0.0;
  std::string tenant;
};

struct Request {
  enum class Verb { kPing, kList, kEstimate };
  Verb verb = Verb::kPing;
  EstimateRequest estimate;  // verb == kEstimate only
};

/// Outcome of parsing one request line: either a request or the error
/// text to send back (exactly one is set).
struct ParsedRequest {
  std::optional<Request> request;
  std::string error;
};

/// Parses one request line (without the trailing newline; a trailing
/// '\r' is tolerated for netcat/CRLF clients).
ParsedRequest ParseRequestLine(std::string_view line,
                               const RequestLimits& limits);

/// Engine options for a parsed request: chains/steps/seed/target plus the
/// crawl block, with round_steps pinned by the same rule as the CLI (so
/// stopping points — and therefore estimates — match `grw estimate`
/// bit-for-bit). A request with a deadline additionally pins round_steps
/// so cancellation has round boundaries to land on; that never changes
/// the merged estimate of a completed run. The caller wires pool/cancel.
EngineOptions ToEngineOptions(const EstimateRequest& req);

/// Response lines (all single-line JSON objects, no trailing newline,
/// each leading with `"v": kProtocolVersion`).
std::string ErrorResponse(std::string_view error);

/// Capability discovery: `{"v":1,"ok":true,"pong":true,"capabilities":
/// {"batch":true,"crawl":true,"sharded":true},"limits":{...}}` echoing
/// the server's request limits.
std::string PingResponse(const RequestLimits& limits);

/// Machine-readable error code for load shedding: clients that see
/// `"code": "RETRY_AFTER"` should back off `retry_after_ms` and resend —
/// the request was REFUSED BEFORE any work, so retrying is always safe.
/// Other error responses are final answers and must not be retried.
inline constexpr std::string_view kErrorCodeRetryAfter = "RETRY_AFTER";

/// {"ok":false,"error":...,"code":"RETRY_AFTER","retry_after_ms":N} —
/// the scheduler's admission-queue-full load shed.
std::string OverloadedResponse(std::string_view error, double retry_after_ms);

/// {"ok":true,...,"labels":[...],"concentrations":[...]} with the
/// concentrations in paper order, %.17g (bit-exact round trip).
std::string EstimateResponse(const EstimateRequest& req,
                             const EngineResult& result);

/// One registry entry for LIST responses.
struct GraphListEntry {
  std::string id;
  std::string path;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint64_t checksum = 0;
};
std::string ListResponse(const std::vector<GraphListEntry>& graphs);

}  // namespace grw::serve
