// Fair multi-tenant scheduler: many concurrent requests, one shared
// ChainPool.
//
// Connection threads hand request lines to HandleLine(); estimation jobs
// are executed by a fixed worker pool in strict admission (FIFO) order:
//
//   admission   a bounded queue. When `queue_limit` jobs are already
//               waiting, the request is rejected *immediately* with an
//               overloaded error — a overwhelmed daemon sheds load
//               instead of accumulating unbounded latency.
//   fairness    workers pop FIFO, and every job runs its engine rounds on
//               the ONE shared ChainPool (EngineOptions::pool), whose job
//               submission is itself serialized — so R concurrent
//               requests interleave at round granularity rather than one
//               request monopolizing the machine until completion.
//   tenants     optional per-tenant distinct-query budgets reusing the
//               engine's crawl machinery (EngineOptions::crawl): each
//               request of tenant T runs with a crawl budget capped by
//               T's remaining allowance; its measured distinct fetches
//               are charged back at completion, and a tenant whose
//               allowance is spent gets an error at admission. The check
//               is admission-time and the charge completion-time, so
//               concurrent requests of one tenant can overlap the
//               boundary by at most their own caps — never another
//               tenant's.
//   deadlines   deadline_ms arms EngineOptions::cancel with an absolute
//               deadline measured from admission (queue wait counts); a
//               job cancelled mid-run answers `deadline exceeded` with
//               the steps it completed. Jobs whose deadline passes while
//               still queued are answered without running at all.
//   drain       Drain() stops admitting, lets queued + running jobs
//               finish, and joins the workers — the SIGTERM half of the
//               daemon's graceful shutdown.
//
// Workers never die with a request: every job runs inside a try/catch
// and any exception (unknown graph shapes, engine validation, OOM-ish
// std::bad_alloc) becomes an error response.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/chain_pool.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "util/sync.h"

namespace grw::serve {

struct SchedulerOptions {
  /// Concurrent estimation jobs (worker threads popping the queue).
  int workers = 4;
  /// Jobs allowed to *wait* beyond the ones running; further submissions
  /// are rejected with an overloaded error.
  size_t queue_limit = 64;
  /// Backoff hint carried in the structured RETRY_AFTER load-shed
  /// response (protocol.h OverloadedResponse): how long a shed client
  /// should wait before resending. Rough guide: the expected time for
  /// one queue slot to free up.
  double retry_after_ms = 50.0;
  /// Per-tenant distinct-query allowance across a tenant's lifetime
  /// (0 = unlimited). Requests naming a tenant consume it via crawl
  /// accounting; anonymous requests are exempt.
  uint64_t tenant_budget = 0;
  /// Threads each job may occupy on the shared pool (0 = all).
  unsigned engine_threads = 0;
  /// Field caps applied at parse time.
  RequestLimits limits;
  /// Pool all jobs share; nullptr = ChainPool::Shared().
  ChainPool* pool = nullptr;
};

class ServeScheduler {
 public:
  /// The registry must outlive the scheduler.
  ServeScheduler(const SnapshotRegistry* registry, SchedulerOptions options);
  /// Drains (blocking) if Drain() was not called explicitly.
  ~ServeScheduler();

  ServeScheduler(const ServeScheduler&) = delete;
  ServeScheduler& operator=(const ServeScheduler&) = delete;

  /// Parses and serves one request line, blocking until the single-line
  /// JSON response is ready. Safe to call from many threads. Never
  /// throws: malformed input, unknown graphs, overload, deadlines and
  /// internal errors all come back as error responses.
  std::string HandleLine(std::string_view line);

  /// Stops admitting, finishes queued + running jobs, joins workers.
  /// Idempotent; HandleLine after Drain answers with an error.
  void Drain();

  struct Stats {
    uint64_t accepted = 0;        // estimation jobs admitted
    uint64_t completed = 0;       // estimation jobs answered ok
    uint64_t errors = 0;          // error responses of any kind
    uint64_t rejected_queue = 0;  // admission-control rejections
  };
  /// Consistent snapshot of the counters, taken under the queue mutex —
  /// the drain report and monitoring never read half-updated totals.
  Stats stats() const GRW_EXCLUDES(mu_);

 private:
  struct Job {
    // Written by the submitter before enqueue, read by the worker that
    // dequeues it: the queue mutex orders the hand-off, so no lock is
    // needed on these after admission.
    EstimateRequest request;
    std::chrono::steady_clock::time_point admitted;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    uint64_t tenant_cap = 0;  // effective crawl budget, 0 = none

    // Completion signalling (the submitting connection thread waits).
    // `mu` is a leaf in the lock order: nothing else is ever acquired
    // while it is held.
    Mutex mu;
    CondVar cv;
    bool done GRW_GUARDED_BY(mu) = false;
    std::string response GRW_GUARDED_BY(mu);
  };

  std::string SubmitEstimate(EstimateRequest request) GRW_EXCLUDES(mu_);
  void RunJob(Job& job) GRW_EXCLUDES(mu_);
  void WorkerLoop() GRW_EXCLUDES(mu_);
  void CountError() GRW_EXCLUDES(mu_);

  const SnapshotRegistry* registry_;
  SchedulerOptions options_;
  // Spawned in the constructor, joined only by Drain (under drain_mu_).
  std::vector<std::thread> workers_ GRW_GUARDED_BY(drain_mu_);

  Mutex drain_mu_ GRW_ACQUIRED_BEFORE(mu_);  // serializes Drain callers
  mutable Mutex mu_;
  CondVar queue_cv_;
  std::deque<Job*> queue_ GRW_GUARDED_BY(mu_);
  bool draining_ GRW_GUARDED_BY(mu_) = false;
  Stats stats_ GRW_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> tenant_spent_ GRW_GUARDED_BY(mu_);
};

}  // namespace grw::serve
