#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/builder.h"

namespace grw {

namespace {

// Packs an undirected pair into a 64-bit key for dedup sets.
uint64_t PairKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph ErdosRenyi(VertexId n, uint64_t m, Rng& rng) {
  const uint64_t max_edges =
      static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) edges.emplace_back(u, v);
  }
  return FromEdges(n, edges);
}

Graph BarabasiAlbert(VertexId n, uint32_t edges_per_node, Rng& rng) {
  return HolmeKim(n, edges_per_node, 0.0, rng);
}

Graph HolmeKim(VertexId n, uint32_t edges_per_node, double triad_prob,
               Rng& rng, uint32_t max_degree) {
  const uint32_t m = std::max<uint32_t>(1, edges_per_node);
  // `targets` holds one entry per edge endpoint, so sampling a uniform
  // element is preferential attachment (degree-proportional).
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(n) * m * 2);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<size_t>(n) * m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(n) * m * 2);
  std::vector<uint32_t> degree(n, 0);
  // Adjacency lists maintained during generation so the triad-formation
  // step can pick a uniform neighbor of the previous target in O(1).
  std::vector<std::vector<VertexId>> adj(n);
  const auto saturated = [&degree, max_degree](VertexId v) {
    return max_degree != 0 && degree[v] >= max_degree;
  };
  const auto connect = [&](VertexId a, VertexId b) {
    seen.insert(PairKey(a, b));
    edges.emplace_back(a, b);
    targets.push_back(a);
    targets.push_back(b);
    degree[a]++;
    degree[b]++;
    adj[a].push_back(b);
    adj[b].push_back(a);
  };

  // Seed: a small clique of m+1 nodes so early preferential attachment has
  // well-defined degrees.
  const VertexId seed = std::min<VertexId>(n, m + 1);
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) connect(u, v);
  }

  for (VertexId v = seed; v < n; ++v) {
    VertexId last_target = n;  // sentinel: no target yet
    for (uint32_t j = 0; j < m; ++j) {
      VertexId w = n;
      if (last_target < n && triad_prob > 0.0 && rng.Bernoulli(triad_prob) &&
          !adj[last_target].empty()) {
        // Triad formation (Holme-Kim): a uniform neighbor of the previous
        // target, closing the triangle v - last_target - w.
        w = adj[last_target][rng.UniformInt(adj[last_target].size())];
      }
      // Preferential attachment, also the fallback when the triad pick is
      // a duplicate/self/saturated node.
      int guard = 0;
      while ((w >= n || w == v || seen.count(PairKey(v, w)) > 0 ||
              saturated(w)) &&
             guard++ < 64) {
        w = targets[rng.UniformInt(targets.size())];
      }
      if (w >= n || w == v || seen.count(PairKey(v, w)) > 0 || saturated(w)) {
        continue;
      }
      connect(v, w);
      last_target = w;
    }
  }
  return FromEdges(n, edges);
}

Graph WattsStrogatz(VertexId n, uint32_t k, double beta, Rng& rng) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::unordered_set<uint64_t> seen;
  const uint32_t half = std::max<uint32_t>(1, k);
  edges.reserve(static_cast<size_t>(n) * half);
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= half; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.Bernoulli(beta)) {
        // Rewire the far endpoint uniformly, avoiding self/duplicates.
        int guard = 0;
        VertexId w = static_cast<VertexId>(rng.UniformInt(n));
        while ((w == u || seen.count(PairKey(u, w)) > 0) && guard++ < 64) {
          w = static_cast<VertexId>(rng.UniformInt(n));
        }
        if (guard < 64) v = w;
      }
      if (u != v && seen.insert(PairKey(u, v)).second) {
        edges.emplace_back(u, v);
      }
    }
  }
  return FromEdges(n, edges);
}

Graph Complete(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return FromEdges(n, edges);
}

Graph Path(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return FromEdges(n, edges);
}

Graph Cycle(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  if (n >= 3) edges.emplace_back(n - 1, 0);
  return FromEdges(n, edges);
}

Graph Star(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return FromEdges(n, edges);
}

Graph CompleteBipartite(VertexId a, VertexId b) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<size_t>(a) * b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) {
      edges.emplace_back(u, static_cast<VertexId>(a + v));
    }
  }
  return FromEdges(a + b, edges);
}

Graph Lollipop(VertexId clique, VertexId tail) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < clique; ++u) {
    for (VertexId v = u + 1; v < clique; ++v) edges.emplace_back(u, v);
  }
  for (VertexId t = 0; t < tail; ++t) {
    const VertexId from = t == 0 ? clique - 1 : clique + t - 1;
    edges.emplace_back(from, clique + t);
  }
  return FromEdges(clique + tail, edges);
}

Graph KarateClub() {
  // Zachary (1977), 0-based node ids; 78 edges.
  static const std::pair<VertexId, VertexId> kEdges[] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
      {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
      {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
      {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
      {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
      {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
      {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
      {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
      {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
      {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
      {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
      {32, 33}};
  std::vector<std::pair<VertexId, VertexId>> edges(std::begin(kEdges),
                                                   std::end(kEdges));
  return FromEdges(34, edges);
}

}  // namespace grw
