#include "graph/sharded_access.h"

#include <utility>

namespace grw {

ShardStore::ShardStore(ShardManifest manifest, const Options& options)
    : manifest_(std::move(manifest)), options_(options) {
  const uint32_t shards = manifest_.NumShards();
  // Catch missing files, torn shards and stale manifests at open time —
  // the store's analogue of the monolithic loader's eager header
  // validation — instead of minutes into a walk. The probe mappings are
  // dropped immediately: the store starts with nothing resident.
  for (uint32_t s = 0; s < shards; ++s) {
    (void)MapShard(manifest_, s, options_.verify_on_fault);
  }
  MutexLock lock(mu_);
  resident_.assign(shards, nullptr);
  prev_.assign(shards, kNone);
  next_.assign(shards, kNone);
  stats_.budget_bytes = options_.resident_budget_bytes;
}

std::shared_ptr<const MappedShard> ShardStore::Acquire(uint32_t s) const {
  MutexLock lock(mu_);
  if (resident_[s] != nullptr) {
    ++stats_.hits;
    if (head_ != s) {
      // Unlink, push front (MRU).
      const uint32_t p = prev_[s];
      const uint32_t n = next_[s];
      if (p != kNone) next_[p] = n; else head_ = n;
      if (n != kNone) prev_[n] = p; else tail_ = p;
      prev_[s] = kNone;
      next_[s] = head_;
      if (head_ != kNone) prev_[head_] = s; else tail_ = s;
      head_ = s;
    }
    return resident_[s];
  }

  // Fault: map under the lock. The mmap + header check is microseconds;
  // the expensive part — actual page-ins — happens lazily on the
  // caller's reads, outside any lock. Holding mu_ keeps the accounting
  // exact (two chains faulting the same shard resolve to one mapping).
  auto shard = std::make_shared<const MappedShard>(
      MapShard(manifest_, s, options_.verify_on_fault));
  ++stats_.faults;
  stats_.resident_bytes += shard->bytes();
  ++stats_.resident_shards;
  resident_[s] = shard;
  prev_[s] = kNone;
  next_[s] = head_;
  if (head_ != kNone) prev_[head_] = s; else tail_ = s;
  head_ = s;
  EvictOverBudgetLocked(s);
  // Peak is sampled *after* eviction: a fresh mmap has no pages
  // faulted in yet, and the victim's pages are dropped before the
  // caller touches the new shard, so the pre-eviction sum was never
  // real memory.
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  return shard;
}

void ShardStore::EvictOverBudgetLocked(uint32_t keep) const {
  const uint64_t budget = options_.resident_budget_bytes;
  if (budget == 0) return;
  // Evict from the LRU tail until within budget — but never the shard
  // just acquired, even if it alone exceeds the budget (the walk must
  // be able to read *something*; the effective floor is one shard).
  while (stats_.resident_bytes > budget && tail_ != kNone) {
    uint32_t victim = tail_;
    if (victim == keep) {
      victim = prev_[victim];
      if (victim == kNone) break;  // only the kept shard remains
    }
    const uint32_t p = prev_[victim];
    const uint32_t n = next_[victim];
    if (p != kNone) next_[p] = n; else head_ = n;
    if (n != kNone) prev_[n] = p; else tail_ = p;
    prev_[victim] = kNone;
    next_[victim] = kNone;
    // Drop the pages before releasing the reference: if no chain holds
    // a pin the memory is returned to the kernel right now; if one
    // does, its reads refault from disk — latency, never corruption.
    resident_[victim]->DropPages();
    stats_.resident_bytes -= resident_[victim]->bytes();
    --stats_.resident_shards;
    ++stats_.evictions;
    resident_[victim] = nullptr;
  }
}

bool ShardStore::Resident(uint32_t s) const {
  MutexLock lock(mu_);
  return resident_[s] != nullptr;
}

ShardStats ShardStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

const MappedShard& ShardedAccess::Miss(VertexId v) const {
  std::shared_ptr<const MappedShard> shard =
      store_->Acquire(store_->ShardOf(v));
  for (int j = kPins - 1; j > 0; --j) pins_[j] = std::move(pins_[j - 1]);
  pins_[0] = std::move(shard);
  return *pins_[0];
}

}  // namespace grw
