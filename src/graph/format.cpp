#include "graph/format.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "graph/io.h"
#include "graph/mapped_file.h"
#include "util/fault.h"
#include "util/posix_io.h"

namespace grw {

namespace {

// Fixed 64-byte header; see format.h for the field-by-field layout.
struct GrwbHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t num_nodes;
  uint64_t num_half_edges;
  uint64_t offsets_bytes;
  uint64_t neighbors_bytes;
  uint64_t data_checksum;
  uint32_t flags;
  uint32_t reserved;
  uint64_t header_checksum;
};
static_assert(sizeof(GrwbHeader) == 64, "GrwbHeader must be 64 bytes");
// The header is written/read by memcpy of the in-memory representation;
// keep it free of padding so the layout is the documented one.
static_assert(offsetof(GrwbHeader, header_checksum) == 56);

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t DataChecksum(std::span<const uint64_t> offsets,
                      std::span<const VertexId> neighbors) {
  uint64_t h = Fnv1a(offsets.data(), offsets.size_bytes(), kFnvOffsetBasis);
  return Fnv1a(neighbors.data(), neighbors.size_bytes(), h);
}

uint64_t HeaderChecksum(const GrwbHeader& h) {
  return Fnv1a(&h, offsetof(GrwbHeader, header_checksum), kFnvOffsetBasis);
}

[[noreturn]] void Bad(const std::string& path, const std::string& why) {
  throw SnapshotCorruptError("LoadGraphBinary: " + path + ": " + why);
}

// Validates everything that can be checked without touching the data
// pages: magic, version, internal size consistency, file size, and the
// header checksum.
GrwbHeader ValidateHeader(const std::string& path, const unsigned char* data,
                          size_t file_bytes) {
  if (file_bytes < sizeof(GrwbHeader)) {
    Bad(path, "file too small for a .grwb header (" +
                  std::to_string(file_bytes) + " bytes)");
  }
  GrwbHeader h;
  std::memcpy(&h, data, sizeof h);
  if (h.magic != kGrwbMagic) Bad(path, "bad magic (not a .grwb snapshot)");
  if (h.version != kGrwbVersion) {
    Bad(path, "unsupported version " + std::to_string(h.version) +
                  " (expected " + std::to_string(kGrwbVersion) + ")");
  }
  if (h.header_checksum != HeaderChecksum(h)) {
    Bad(path, "header checksum mismatch (corrupted header)");
  }
  // Ordered so that every arithmetic step below is overflow-free even for
  // adversarial headers: num_nodes is bounded by the 32-bit id space
  // first (so (n + 1) * 8 fits), and neighbors_bytes is derived from the
  // real file size by subtraction instead of multiplying num_half_edges.
  if (h.num_nodes > std::numeric_limits<VertexId>::max()) {
    Bad(path, "num_nodes " + std::to_string(h.num_nodes) +
                  " exceeds the 32-bit node id space");
  }
  if (h.offsets_bytes != (h.num_nodes + 1) * sizeof(uint64_t)) {
    Bad(path, "offsets_bytes inconsistent with num_nodes");
  }
  if (file_bytes < sizeof(GrwbHeader) ||
      file_bytes - sizeof(GrwbHeader) < h.offsets_bytes) {
    Bad(path, "truncated file: offsets array extends past end of file");
  }
  if (h.neighbors_bytes != file_bytes - sizeof(GrwbHeader) - h.offsets_bytes) {
    Bad(path,
        "truncated or oversized file: " + std::to_string(file_bytes) +
            " bytes, header implies " +
            std::to_string(sizeof(GrwbHeader) + h.offsets_bytes +
                           h.neighbors_bytes));
  }
  if (h.neighbors_bytes % sizeof(VertexId) != 0 ||
      h.num_half_edges != h.neighbors_bytes / sizeof(VertexId)) {
    Bad(path, "neighbors_bytes inconsistent with num_half_edges");
  }
  return h;
}

// Backing that keeps the mapping alive for the lifetime of the Graph (and
// all its copies).
struct MappedBacking : Graph::Backing {
  explicit MappedBacking(MappedFile f) : file(std::move(f)) {}
  MappedFile file;
};

}  // namespace

void SaveGraphBinary(const Graph& g, const std::string& path, uint32_t flags) {
  const std::span<const uint64_t> offsets = g.RawOffsets();
  const std::span<const VertexId> neighbors = g.RawNeighbors();
  // A default-constructed Graph has no offsets array at all; snapshot it
  // as the canonical empty graph (one zero offset) so every .grwb file
  // round-trips through the same layout.
  static constexpr uint64_t kEmptyOffsets[1] = {0};
  const std::span<const uint64_t> out_offsets =
      offsets.empty() ? std::span<const uint64_t>(kEmptyOffsets) : offsets;

  GrwbHeader h{};
  h.magic = kGrwbMagic;
  h.version = kGrwbVersion;
  h.num_nodes = g.NumNodes();
  h.num_half_edges = neighbors.size();
  h.offsets_bytes = out_offsets.size_bytes();
  h.neighbors_bytes = neighbors.size_bytes();
  h.data_checksum = DataChecksum(out_offsets, neighbors);
  h.flags = flags;
  h.reserved = 0;
  h.header_checksum = HeaderChecksum(h);

  // Crash-safe write discipline: stage into a same-directory temp file,
  // fsync it, then atomically rename over the destination and fsync the
  // directory. Every interruption point leaves `path` either absent or
  // a complete old/new snapshot; a leftover temp never passes the
  // loader's magic/size/checksum validation as `path`.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0 || GRW_FAULT("grwb.save.open")) {
    if (fd >= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
    }
    throw std::runtime_error("SaveGraphBinary: cannot open " + tmp + ": " +
                             std::strerror(fd < 0 ? errno : EIO));
  }
  const auto fail = [&](const std::string& what, int err) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("SaveGraphBinary: " + what + " " + tmp + ": " +
                             std::strerror(err));
  };

  io::IoResult w = io::WriteAll(fd, &h, sizeof h);
  if (w.ok()) w = io::WriteAll(fd, out_offsets.data(), out_offsets.size_bytes());
  // Chaos site simulating the process dying with the payload half
  // written (same disk state as `kill -9` mid-convert): the destination
  // must still be absent or the previous complete snapshot.
  if (GRW_FAULT("grwb.save.crash")) ::_exit(137);
  if (w.ok()) w = io::WriteAll(fd, neighbors.data(), neighbors.size_bytes());
  if (!w.ok() || GRW_FAULT("grwb.save.write")) {
    fail("write failure on", w.ok() ? EIO : w.error);
  }
  // Data must be durable BEFORE the rename publishes it: rename-then-
  // fsync could surface a complete-looking file with unwritten pages
  // after power loss.
  if (io::Fsync(fd) < 0) fail("fsync failure on", errno);
  if (::close(fd) < 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("SaveGraphBinary: close failure on " + tmp +
                             ": " + std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) < 0 ||
      GRW_FAULT("grwb.save.rename")) {
    const int err = errno != 0 ? errno : EIO;
    ::unlink(tmp.c_str());
    throw std::runtime_error("SaveGraphBinary: cannot rename " + tmp +
                             " to " + path + ": " + std::strerror(err));
  }
  // Make the rename itself durable (best effort: some filesystems
  // refuse O_RDONLY directory fsync; the data above is already synced).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dir_fd >= 0) {
    io::Fsync(dir_fd);
    ::close(dir_fd);
  }
}

Graph LoadGraphBinary(const std::string& path, bool verify_checksum) {
  MappedFile file = MappedFile::Open(path);
  const GrwbHeader h = ValidateHeader(path, file.data(), file.size());

  // The offsets array starts at byte 64 of a page-aligned mapping, so both
  // reinterpreted arrays are naturally aligned for their element types.
  const auto* offsets_ptr =
      reinterpret_cast<const uint64_t*>(file.data() + sizeof(GrwbHeader));
  const auto* neighbors_ptr = reinterpret_cast<const VertexId*>(
      file.data() + sizeof(GrwbHeader) + h.offsets_bytes);
  const std::span<const uint64_t> offsets(
      offsets_ptr, static_cast<size_t>(h.num_nodes) + 1);
  const std::span<const VertexId> neighbors(
      neighbors_ptr, static_cast<size_t>(h.num_half_edges));

  // Cheap structural sanity touching only the first and last offset page.
  if (offsets.front() != 0 || offsets.back() != h.num_half_edges) {
    Bad(path, "offsets array inconsistent with header (corrupted data)");
  }
  if (verify_checksum) {
    // Full structural validation for untrusted files: the checksum only
    // catches accidental corruption, while these invariants are what the
    // walk code actually relies on to stay in bounds.
    for (size_t v = 0; v + 1 < offsets.size(); ++v) {
      if (offsets[v] > offsets[v + 1]) {
        Bad(path, "offsets array not monotone at node " + std::to_string(v));
      }
    }
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] >= h.num_nodes) {
        Bad(path, "neighbor id out of range at index " + std::to_string(i));
      }
    }
    if (DataChecksum(offsets, neighbors) != h.data_checksum) {
      Bad(path, "data checksum mismatch (corrupted snapshot)");
    }
  }

  return Graph(offsets, neighbors,
               std::make_shared<MappedBacking>(std::move(file)));
}

GrwbInfo InspectGraphBinary(const std::string& path) {
  const MappedFile file = MappedFile::Open(path);
  const GrwbHeader h = ValidateHeader(path, file.data(), file.size());
  GrwbInfo info;
  info.version = h.version;
  info.num_nodes = h.num_nodes;
  info.num_half_edges = h.num_half_edges;
  info.flags = h.flags;
  info.file_bytes = file.size();
  info.data_checksum = h.data_checksum;
  return info;
}

bool IsGraphBinaryFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("LoadGraph: cannot open " + path);
  }
  uint32_t magic = 0;
  const bool got = std::fread(&magic, sizeof magic, 1, f) == 1;
  std::fclose(f);
  return got && magic == kGrwbMagic;
}

Graph LoadGraph(const std::string& path, bool largest_cc) {
  if (IsGraphBinaryFile(path)) return LoadGraphBinary(path);
  return LoadEdgeList(path, largest_cc);
}

}  // namespace grw
