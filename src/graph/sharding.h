// Sharded `.grwb` storage: vertex-range partitions of one CSR snapshot.
//
// The monolithic `.grwb` layout (graph/format.h) mmaps a whole graph and
// lets pages fault in lazily — but the kernel decides what stays
// resident. Graphs that dwarf RAM need the inverse: the *estimator*
// decides which vertex ranges are resident, under an explicit byte
// budget (ROADMAP item 3). This module supplies the storage half:
//
//   <dir>/MANIFEST.grws       global manifest (magic 'GRWM')
//   <dir>/shard-00000.grws    vertex rows [0, r0)         (magic 'GRWS')
//   <dir>/shard-00001.grws    vertex rows [r0, r1)
//   ...
//
// Each shard is self-contained and checksummed: a 64-byte header, the
// shard's offsets slice rebased to start at 0 ((num_rows + 1) x u64),
// and its neighbors slice with GLOBAL node ids (u32). Global ids mean a
// walk can read an edge (u -> v) from u's shard without consulting v's —
// crossing a shard boundary costs exactly one shard fault, on the next
// degree/neighbor probe of v.
//
// The manifest records the partition (first_node/num_rows per shard),
// per-shard checksums, the global totals, and a log2 degree histogram
// (bucket b counts nodes whose degree has bit-width b; bucket 0 =
// isolated nodes) so tooling can reason about shard balance without
// touching any shard.
//
// Durability inherits the PR 9 discipline: every file — shards first,
// manifest LAST — is staged to a same-directory temp file, fsync'd, and
// atomically renamed into place (directory fsync after). A crash leaves
// either no manifest (the directory is not a sharded graph yet) or a
// complete, consistent one; a manifest is never visible before every
// shard it names.
//
// Corruption is a first-class citizen: every distinct failure shape —
// manifest header damage, shard-table checksum mismatch, overlapping or
// gapped vertex ranges, a missing shard file, a shard whose payload was
// bit-flipped, a manifest left stale after a shard was regenerated —
// throws SnapshotCorruptError with a path-qualified message naming the
// failed check (tests/sharding_test.cpp pins the taxonomy).

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/format.h"
#include "graph/graph.h"
#include "graph/mapped_file.h"

namespace grw {

inline constexpr uint32_t kGrwsMagic = 0x53575247;  // "GRWS" little-endian
inline constexpr uint32_t kGrwmMagic = 0x4D575247;  // "GRWM" little-endian
inline constexpr uint32_t kGrwsVersion = 1;

/// The manifest's file name inside a sharded-graph directory. Opening
/// the directory path opens this file.
inline constexpr const char* kShardManifestName = "MANIFEST.grws";

/// Degree histogram buckets: bucket b counts nodes whose degree has
/// bit-width b (bucket 0 = degree 0, bucket 1 = degree 1, bucket 2 =
/// degrees 2..3, ...). 33 buckets cover the full uint32_t degree range.
inline constexpr int kDegreeHistogramBuckets = 33;

/// One shard's entry in the manifest table.
struct ShardInfo {
  /// First vertex row of this shard; rows [first_node,
  /// first_node + num_rows) live here. Shards partition [0, total
  /// nodes) contiguously and in order.
  uint64_t first_node = 0;
  uint64_t num_rows = 0;
  /// Neighbor entries stored in this shard (its slice of the global
  /// neighbors array).
  uint64_t num_half_edges = 0;
  /// Total shard file size — header + offsets + neighbors — which is
  /// also what residency accounting charges when the shard is mapped.
  uint64_t file_bytes = 0;
  /// FNV-1a over the shard's rebased offsets then neighbors; must match
  /// the shard header's own data_checksum (a mismatch means the shard
  /// was regenerated without rewriting the manifest, or vice versa).
  uint64_t data_checksum = 0;
};

/// Parsed, validated manifest of a sharded graph.
struct ShardManifest {
  uint32_t version = 0;
  /// kGrwbFlagDegreeRelabeled is carried through from the source graph.
  uint32_t flags = 0;
  uint64_t total_nodes = 0;
  uint64_t total_half_edges = 0;
  std::array<uint64_t, kDegreeHistogramBuckets> degree_histogram = {};
  std::vector<ShardInfo> shards;
  /// Path of the manifest file itself, and the directory holding the
  /// shard files (error messages and ShardPath build on these).
  std::string path;
  std::string dir;

  uint32_t NumShards() const { return static_cast<uint32_t>(shards.size()); }
  /// Absolute path of shard file `index` ("<dir>/shard-%05u.grws").
  std::string ShardPath(uint32_t index) const;
  /// The shard holding vertex v (binary search over the range table).
  /// Precondition: v < total_nodes.
  uint32_t ShardOf(VertexId v) const;
  /// Sum of file_bytes over all shards — the resident footprint of a
  /// fully-faulted graph, and the reference point for budget fractions.
  uint64_t TotalShardBytes() const;
  bool DegreeRelabeled() const {
    return (flags & kGrwbFlagDegreeRelabeled) != 0;
  }
};

/// Partitioning policy for WriteShardedGraph. Exactly one of the two
/// knobs is used: `num_shards` when positive, else `target_shard_bytes`
/// (shards are cut when they reach the target; the last may be smaller).
struct ShardingOptions {
  /// Fixed shard count, balanced by half-edge mass (each shard gets >= 1
  /// vertex row). Must be <= the graph's node count.
  uint32_t num_shards = 0;
  /// Target shard file size in bytes when num_shards == 0. Clamped so
  /// every shard holds at least one row.
  uint64_t target_shard_bytes = 64ull << 20;
  /// Stored in the manifest and every shard header (pass
  /// kGrwbFlagDegreeRelabeled when g came from RelabelByDegree).
  uint32_t flags = 0;
};

/// Writes `g` as a sharded graph under directory `dir` (created if
/// absent), shards first and the manifest last, every file through the
/// crash-safe temp+fsync+rename path. Returns the manifest that is now
/// on disk. Throws std::invalid_argument for an empty graph or an
/// unsatisfiable shard count, std::runtime_error on I/O failure.
ShardManifest WriteShardedGraph(const Graph& g, const std::string& dir,
                                const ShardingOptions& options = {});

/// Loads and validates a manifest. `path` may be the manifest file or a
/// directory containing one (kShardManifestName). Header, shard-table
/// checksum, and range-partition invariants are always checked; with
/// `verify_shards` every shard file is additionally opened and its
/// header cross-checked against the table (existence, ranges, sizes,
/// checksum agreement) plus a full payload checksum + structural scan —
/// the sharded analogue of LoadGraphBinary's verify_checksum. Throws
/// SnapshotCorruptError naming the offending file and check.
ShardManifest LoadShardManifest(const std::string& path,
                                bool verify_shards = false);

/// True iff `path` is a sharded-graph manifest (starts with the GRWM
/// magic) or a directory containing one. False for short/other files;
/// throws only if an existing file cannot be opened.
bool IsShardManifestPath(const std::string& path);

/// Content identity of a sharded graph: a fold of the per-shard
/// checksums and row counts, so any shard regeneration or repartition
/// changes it. The sharded analogue of the `.grwb` header's
/// data_checksum — GraphSource::content_checksum() reports it and the
/// serve registry keys resident sharing on it.
uint64_t ShardContentChecksum(const ShardManifest& manifest);

/// One mapped shard: validated header + CSR slices. Row r of the shard
/// is global vertex first_node() + r; neighbors carry global ids.
/// Produced by MapShard; owned by the residency layer (sharded_access.h).
class MappedShard {
 public:
  uint32_t index() const { return index_; }
  VertexId first_node() const { return static_cast<VertexId>(first_node_); }
  VertexId end_node() const {
    return static_cast<VertexId>(first_node_ + num_rows_);
  }
  uint64_t num_rows() const { return num_rows_; }
  /// Bytes charged against a residency budget (the whole mapped file).
  uint64_t bytes() const { return bytes_; }

  uint32_t Degree(VertexId v) const {
    const uint64_t r = v - first_node_;
    return static_cast<uint32_t>(offsets_[r + 1] - offsets_[r]);
  }
  std::span<const VertexId> Neighbors(VertexId v) const {
    const uint64_t r = v - first_node_;
    return {neighbors_ + offsets_[r], neighbors_ + offsets_[r + 1]};
  }

  /// Hints the kernel to drop this shard's resident pages
  /// (madvise(MADV_DONTNEED)). Safe at any time: the mapping stays
  /// valid and read-only file-backed pages refault from disk, so a
  /// reader holding this shard across an eviction only pays latency.
  void DropPages() const;

 private:
  friend MappedShard MapShard(const ShardManifest& manifest, uint32_t index,
                              bool verify_checksum);
  MappedFile file_;
  uint32_t index_ = 0;
  uint64_t first_node_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t bytes_ = 0;
  const uint64_t* offsets_ = nullptr;    // num_rows + 1, rebased to 0
  const VertexId* neighbors_ = nullptr;  // global ids
};

/// Maps shard `index` of `manifest` and validates its header against the
/// manifest entry (magic, version, index, range, sizes, and checksum
/// agreement — a disagreement is the "stale manifest" corruption class).
/// With `verify_checksum`, additionally checks offsets monotonicity,
/// neighbor-id bounds against the global node count, and the full data
/// checksum. Throws SnapshotCorruptError naming the shard path.
MappedShard MapShard(const ShardManifest& manifest, uint32_t index,
                     bool verify_checksum = false);

}  // namespace grw
