#include "graph/adjacency.h"

#include <algorithm>
#include <limits>

#include "util/parallel.h"

#if defined(GRW_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace grw {

uint64_t SignatureProbeBatchScalar(uint64_t signature,
                                   const VertexId* candidates, int count) {
  uint64_t mask = 0;
  for (int i = 0; i < count; ++i) {
    mask |= ((signature >> ((candidates[i] * 0x9E3779B97F4A7C15ull) >> 58)) &
             1ull)
            << i;
  }
  return mask;
}

#if defined(GRW_SIMD_AVX2)

__attribute__((target("avx2"))) uint64_t SignatureProbeBatchAvx2(
    uint64_t signature, const VertexId* candidates, int count) {
  // Four candidates per iteration, widened to 64-bit lanes. The hash is
  // v * K >> 58 with v < 2^32, so the low-64 product splits exactly into
  // two 32x32->64 multiplies: v*K_lo + ((v*K_hi) << 32). _mm256_mul_epu32
  // multiplies the low 32 bits of each lane, which is all three operands
  // need.
  const __m256i k_lo = _mm256_set1_epi64x(0x7F4A7C15ll);
  const __m256i k_hi = _mm256_set1_epi64x(0x9E3779B9ll);
  const __m256i sig = _mm256_set1_epi64x(static_cast<long long>(signature));
  const __m256i one = _mm256_set1_epi64x(1);
  uint64_t mask = 0;
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(candidates + i)));
    const __m256i prod = _mm256_add_epi64(
        _mm256_mul_epu32(v, k_lo),
        _mm256_slli_epi64(_mm256_mul_epu32(v, k_hi), 32));
    const __m256i shift = _mm256_srli_epi64(prod, 58);
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi64(sig, shift), one);
    const __m256i hit = _mm256_cmpeq_epi64(bit, one);
    mask |= static_cast<uint64_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(hit)))
            << i;
  }
  if (i < count) {
    mask |= SignatureProbeBatchScalar(signature, candidates + i, count - i)
            << i;
  }
  return mask;
}

bool SignatureProbeBatchHasAvx2() {
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2");
  return kHasAvx2;
}

#else  // !GRW_SIMD_AVX2

uint64_t SignatureProbeBatchAvx2(uint64_t signature,
                                 const VertexId* candidates, int count) {
  return SignatureProbeBatchScalar(signature, candidates, count);
}

bool SignatureProbeBatchHasAvx2() { return false; }

#endif  // GRW_SIMD_AVX2

uint64_t SignatureProbeBatch(uint64_t signature, const VertexId* candidates,
                             int count) {
  if (SignatureProbeBatchHasAvx2()) {
    return SignatureProbeBatchAvx2(signature, candidates, count);
  }
  return SignatureProbeBatchScalar(signature, candidates, count);
}

uint64_t AdjacencyIndex::PairProbeBatchScalar(const VertexId* us,
                                              const VertexId* vs,
                                              int count) const {
  uint64_t mask = 0;
  for (int i = 0; i < count; ++i) {
    mask |= ((meta_[us[i]].signature &
              NeighborSignatureBit(vs[i])) != 0
                 ? 1ull
                 : 0ull)
            << i;
  }
  return mask;
}

#if defined(GRW_SIMD_AVX2)

__attribute__((target("avx2"))) uint64_t AdjacencyIndex::PairProbeBatchAvx2(
    const VertexId* us, const VertexId* vs, int count) const {
  // Four (u, v) pairs per iteration: gather sig(u) straight from the
  // 16-byte records (64-bit lane index u*2, scale 8), hash v to its bit
  // position with the split 32x32 multiply, test, pack.
  const auto* base = reinterpret_cast<const long long*>(meta_.data());
  const __m256i k_lo = _mm256_set1_epi64x(0x7F4A7C15ll);
  const __m256i k_hi = _mm256_set1_epi64x(0x9E3779B9ll);
  const __m256i one = _mm256_set1_epi64x(1);
  uint64_t mask = 0;
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i u64s = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(us + i)));
    const __m256i sig =
        _mm256_i64gather_epi64(base, _mm256_slli_epi64(u64s, 1), 8);
    const __m256i v = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vs + i)));
    const __m256i prod = _mm256_add_epi64(
        _mm256_mul_epu32(v, k_lo),
        _mm256_slli_epi64(_mm256_mul_epu32(v, k_hi), 32));
    const __m256i shift = _mm256_srli_epi64(prod, 58);
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi64(sig, shift), one);
    const __m256i hit = _mm256_cmpeq_epi64(bit, one);
    mask |= static_cast<uint64_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(hit)))
            << i;
  }
  if (i < count) {
    mask |= PairProbeBatchScalar(us + i, vs + i, count - i) << i;
  }
  return mask;
}

#else  // !GRW_SIMD_AVX2

uint64_t AdjacencyIndex::PairProbeBatchAvx2(const VertexId* us,
                                            const VertexId* vs,
                                            int count) const {
  return PairProbeBatchScalar(us, vs, count);
}

#endif  // GRW_SIMD_AVX2

uint64_t AdjacencyIndex::PairProbeBatch(const VertexId* us,
                                        const VertexId* vs,
                                        int count) const {
  if (SignatureProbeBatchHasAvx2()) {
    return PairProbeBatchAvx2(us, vs, count);
  }
  return PairProbeBatchScalar(us, vs, count);
}

AdjacencyIndex::AdjacencyIndex(const Graph& g,
                               const AdjacencyIndexOptions& options)
    : backing_(g.backing()),
      offsets_(g.RawOffsets().data()),
      neighbors_(g.RawNeighbors().data()),
      // A cutoff at or above the degree cap would route capped (huge)
      // lists into the linear scan with a truncated length; clamp it.
      linear_cutoff_(std::min<uint32_t>(options.linear_cutoff,
                                        kDegreeCap - 1)),
      wide_offsets_(g.RawNeighbors().size() >
                    std::numeric_limits<uint32_t>::max()) {
  vector_scan_ = SignatureProbeBatchHasAvx2();
  scan_cutoff_ = linear_cutoff_;
  if (vector_scan_) {
    scan_cutoff_ = std::max(
        scan_cutoff_,
        std::min<uint32_t>(options.simd_scan_cutoff, kDegreeCap - 1));
  }
  const VertexId n = g.NumNodes();
  meta_.assign(n, NodeMeta{});
  if (n == 0) return;

  // Per-node records: each node's signature depends only on its own
  // neighbor list, so the fan-out is race-free and the result identical
  // at any thread count. Hub slots are filled in below.
  ParallelFor(
      n,
      [&](size_t v) {
        uint64_t sig = 0;
        for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
          sig |= NeighborSignatureBit(w);
        }
        meta_[v].signature = sig;
        if (!wide_offsets_) {
          meta_[v].offset = static_cast<uint32_t>(offsets_[v]);
        }
        meta_[v].degree = static_cast<uint16_t>(std::min<uint32_t>(
            g.Degree(static_cast<VertexId>(v)), kDegreeCap));
      },
      options.threads);

  // Hub selection: from the degree histogram, the smallest threshold t
  // (starting at the explicit threshold or min_hub_degree) whose rows
  // {v : deg(v) >= t} fit the memory budget. Raising t only sheds the
  // lowest-degree hubs, so the fit is monotone.
  row_words_ = (static_cast<size_t>(n) + 63) / 64;
  const uint64_t row_bytes = row_words_ * sizeof(uint64_t);
  const uint32_t max_degree = g.MaxDegree();
  // True (uncapped) degrees throughout hub fitting: the record's capped
  // degree would fold everything above the cap into one histogram bin.
  std::vector<uint64_t> ge(static_cast<size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ge[g.Degree(v)]++;
  for (uint32_t d = max_degree; d > 0; --d) ge[d - 1] += ge[d];
  uint64_t threshold = options.hub_degree_threshold > 0
                           ? options.hub_degree_threshold
                           : options.min_hub_degree;
  threshold = std::max<uint64_t>(threshold, 1);
  while (threshold <= max_degree &&
         (ge[threshold] * row_bytes > options.hub_memory_budget ||
          ge[threshold] > kMaxHubs)) {
    ++threshold;
  }
  if (threshold > max_degree) return;  // nothing qualifies: no hub rows

  hub_threshold_ = static_cast<uint32_t>(threshold);
  std::vector<VertexId> hubs;
  hubs.reserve(ge[threshold]);
  for (VertexId v = 0; v < n; ++v) {
    if (g.Degree(v) >= hub_threshold_) {
      meta_[v].hub_slot = static_cast<uint16_t>(hubs.size());
      hubs.push_back(v);
    }
  }
  num_hubs_ = static_cast<uint32_t>(hubs.size());

  // Row fill: rows are disjoint slices of bits_, one per hub.
  bits_.assign(static_cast<size_t>(num_hubs_) * row_words_, 0);
  ParallelFor(
      hubs.size(),
      [&](size_t slot) {
        uint64_t* row = bits_.data() + slot * row_words_;
        for (VertexId w : g.Neighbors(hubs[slot])) {
          row[w >> 6] |= 1ull << (w & 63);
        }
      },
      options.threads);
}

bool AdjacencyIndex::LinearContains(const VertexId* list, size_t len,
                                    VertexId v) {
  // Short sorted lists: sequential compare with early exit beats any
  // probing — the whole list is one or two cache lines.
  for (size_t i = 0; i < len; ++i) {
    if (list[i] >= v) return list[i] == v;
  }
  return false;
}

#if defined(GRW_SIMD_AVX2)

__attribute__((target("avx2"))) bool AdjacencyIndex::VectorContainsAvx2(
    const VertexId* list, size_t len, VertexId v) {
  // 16 entries per iteration as two masked 8-lane compares: no
  // data-dependent exit branch inside a block, so a probe that resolves
  // in the first block (every list up to simd_scan_cutoff's first 16
  // entries) retires without a single unpredictable branch. Masked loads
  // never touch bytes past the list, and masked-off lanes are stripped
  // from the hit mask so a candidate id of 0 cannot alias the load's
  // zero fill. Between blocks the sorted order gives an exact early
  // exit: if the block's last entry is >= v, no later block can hold v.
  const __m256i key = _mm256_set1_epi32(static_cast<int>(v));
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (size_t i = 0; i < len; i += 16) {
    const size_t rem = len - i;
    const __m256i n0 =
        _mm256_set1_epi32(static_cast<int>(std::min<size_t>(rem, 8)));
    const __m256i m0 = _mm256_cmpgt_epi32(n0, iota);
    const __m256i a = _mm256_maskload_epi32(
        reinterpret_cast<const int*>(list + i), m0);
    __m256i hit = _mm256_and_si256(_mm256_cmpeq_epi32(a, key), m0);
    const size_t rem1 = rem > 8 ? std::min<size_t>(rem - 8, 8) : 0;
    const __m256i n1 = _mm256_set1_epi32(static_cast<int>(rem1));
    const __m256i m1 = _mm256_cmpgt_epi32(n1, iota);
    // rem <= 8 keeps the pointer at list + i (still in bounds); the
    // all-zero mask then loads nothing from it.
    const __m256i b = _mm256_maskload_epi32(
        reinterpret_cast<const int*>(list + i + (rem > 8 ? 8 : 0)), m1);
    hit = _mm256_or_si256(hit, _mm256_and_si256(_mm256_cmpeq_epi32(b, key), m1));
    if (!_mm256_testz_si256(hit, hit)) return true;
    if (list[i + std::min<size_t>(rem, 16) - 1] >= v) return false;
  }
  return false;
}

#else  // !GRW_SIMD_AVX2

bool AdjacencyIndex::VectorContainsAvx2(const VertexId* list, size_t len,
                                        VertexId v) {
  return LinearContains(list, len, v);
}

#endif  // GRW_SIMD_AVX2

bool AdjacencyIndex::GallopContains(const VertexId* list, size_t len,
                                    VertexId v) {
  // Galloping: double the probe distance until the window [hi/2, hi)
  // brackets v, then finish with a branchless (conditional-move) binary
  // search over that window.
  size_t hi = 1;
  while (hi < len && list[hi - 1] < v) hi <<= 1;
  const VertexId* base = list + (hi >> 1);
  size_t span = std::min(hi, len) - (hi >> 1);
  while (span > 1) {
    const size_t half = span / 2;
    base += (base[half - 1] < v) ? half : 0;
    span -= half;
  }
  return *base == v;
}

}  // namespace grw
