#include "graph/adjacency.h"

#include <algorithm>

#include "util/parallel.h"

namespace grw {

AdjacencyIndex::AdjacencyIndex(const Graph& g,
                               const AdjacencyIndexOptions& options)
    : backing_(g.backing()),
      offsets_(g.RawOffsets().data()),
      neighbors_(g.RawNeighbors().data()),
      linear_cutoff_(options.linear_cutoff) {
  const VertexId n = g.NumNodes();
  signatures_.assign(n, 0);
  hub_slot_.assign(n, kNoHub);
  if (n == 0) return;

  // Signatures: each node's filter depends only on its own neighbor list,
  // so the fan-out is race-free and the result identical at any thread
  // count.
  ParallelFor(
      n,
      [&](size_t v) {
        uint64_t sig = 0;
        for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
          sig |= SignatureBit(w);
        }
        signatures_[v] = sig;
      },
      options.threads);

  // Hub selection: from the degree histogram, the smallest threshold t
  // (starting at the explicit threshold or min_hub_degree) whose rows
  // {v : deg(v) >= t} fit the memory budget. Raising t only sheds the
  // lowest-degree hubs, so the fit is monotone.
  row_words_ = (static_cast<size_t>(n) + 63) / 64;
  const uint64_t row_bytes = row_words_ * sizeof(uint64_t);
  const uint32_t max_degree = g.MaxDegree();
  std::vector<uint64_t> ge(static_cast<size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ge[Degree(v)]++;
  for (uint32_t d = max_degree; d > 0; --d) ge[d - 1] += ge[d];
  uint64_t threshold = options.hub_degree_threshold > 0
                           ? options.hub_degree_threshold
                           : options.min_hub_degree;
  threshold = std::max<uint64_t>(threshold, 1);
  while (threshold <= max_degree &&
         ge[threshold] * row_bytes > options.hub_memory_budget) {
    ++threshold;
  }
  if (threshold > max_degree) return;  // nothing qualifies: no hub rows

  hub_threshold_ = static_cast<uint32_t>(threshold);
  std::vector<VertexId> hubs;
  hubs.reserve(ge[threshold]);
  for (VertexId v = 0; v < n; ++v) {
    if (Degree(v) >= hub_threshold_) {
      hub_slot_[v] = static_cast<uint32_t>(hubs.size());
      hubs.push_back(v);
    }
  }
  num_hubs_ = static_cast<uint32_t>(hubs.size());

  // Row fill: rows are disjoint slices of bits_, one per hub.
  bits_.assign(static_cast<size_t>(num_hubs_) * row_words_, 0);
  ParallelFor(
      hubs.size(),
      [&](size_t slot) {
        uint64_t* row = bits_.data() + slot * row_words_;
        for (VertexId w : g.Neighbors(hubs[slot])) {
          row[w >> 6] |= 1ull << (w & 63);
        }
      },
      options.threads);
}

bool AdjacencyIndex::ListContains(VertexId u, VertexId v) const {
  const uint64_t begin = offsets_[u];
  const size_t len = static_cast<size_t>(offsets_[u + 1] - begin);
  const VertexId* list = neighbors_ + begin;
  if (len <= linear_cutoff_) {
    // Short sorted lists: sequential compare with early exit beats any
    // probing — the whole list is one or two cache lines.
    for (size_t i = 0; i < len; ++i) {
      if (list[i] >= v) return list[i] == v;
    }
    return false;
  }
  // Galloping: double the probe distance until the window [hi/2, hi)
  // brackets v, then finish with a branchless (conditional-move) binary
  // search over that window.
  size_t hi = 1;
  while (hi < len && list[hi - 1] < v) hi <<= 1;
  const VertexId* base = list + (hi >> 1);
  size_t span = std::min(hi, len) - (hi >> 1);
  while (span > 1) {
    const size_t half = span / 2;
    base += (base[half - 1] < v) ? half : 0;
    span -= half;
  }
  return *base == v;
}

}  // namespace grw
