// Constructing simple graphs from raw edge lists.
//
// Real-world edge lists (SNAP format and our generators) contain duplicate
// edges, self-loops, both edge directions, and sparse node id spaces. The
// paper's preprocessing (Section 6.1) is: make undirected, simplify, keep
// the largest connected component. GraphBuilder implements exactly that
// pipeline and produces the immutable CSR Graph.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Accumulates raw (possibly dirty) edges and builds a clean Graph.
class GraphBuilder {
 public:
  /// Pre-reserves space for `expected_edges` raw edges.
  explicit GraphBuilder(size_t expected_edges = 0) {
    edges_.reserve(expected_edges);
  }

  /// Adds one undirected edge. Self-loops and duplicates are tolerated
  /// here and removed in Build(). Node ids may be sparse.
  void AddEdge(uint64_t u, uint64_t v) { edges_.emplace_back(u, v); }

  size_t NumRawEdges() const { return edges_.size(); }

  /// Builds a simple graph: relabels node ids densely (in order of first
  /// appearance of the sorted id space), drops self-loops and duplicate
  /// edges, sorts adjacency lists. Consumes the accumulated edges.
  Graph Build();

 private:
  std::vector<std::pair<uint64_t, uint64_t>> edges_;
};

/// Returns the subgraph induced by the largest connected component of g,
/// with densely relabeled node ids. If g is empty, returns an empty graph.
Graph LargestConnectedComponent(const Graph& g);

/// Builds a Graph directly from clean 0-based edges (no relabeling), for
/// tests and generators that already produce dense ids. Still removes
/// duplicates and self-loops.
Graph FromEdges(VertexId num_nodes,
                const std::vector<std::pair<VertexId, VertexId>>& edges);

/// Returns an isomorphic copy of g with nodes relabeled in descending
/// degree order (ties broken by old id, so the result is deterministic).
/// Walks spend most of their time on high-degree hubs; packing hubs at the
/// front of the CSR arrays keeps their adjacency lists hot in cache, which
/// measurably speeds up the random-walk inner loop on heavy-tailed graphs.
/// Graphlet statistics are label-invariant, so estimates are unaffected
/// (tests assert exact-count invariance).
Graph RelabelByDegree(const Graph& g);

}  // namespace grw
