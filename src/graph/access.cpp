#include "graph/access.h"

#include <cmath>

#include "util/fault.h"

namespace grw {

CrawlAccess::CrawlAccess(const Graph& g, const Options& options)
    : g_(&g), opt_(options), fail_rng_(options.failure.seed) {
  const uint64_t n = g.NumNodes();
  // 0 or oversize means "never evict": every node's list fits.
  capacity_ = static_cast<uint32_t>(
      opt_.cache_entries == 0 || opt_.cache_entries >= n
          ? n
          : opt_.cache_entries);
  never_evicts_ = capacity_ == n;
  slot_of_.assign(n, kNoSlot);
  node_of_.assign(capacity_, 0);
  prev_.assign(capacity_, kNoSlot);
  next_.assign(capacity_, kNoSlot);
  ever_fetched_.assign((n + 63) / 64, 0);
}

void CrawlAccess::ResetStats() {
  stats_ = CrawlStats{};
  // The distinct-fetch registry belongs to the accounting phase the
  // counters describe: keeping it would make post-reset distinct counts
  // (and the budget) skip nodes fetched before the reset.
  std::fill(ever_fetched_.begin(), ever_fetched_.end(), 0);
}

void CrawlAccess::ResetCache() {
  for (uint32_t s = 0; s < used_; ++s) slot_of_[node_of_[s]] = kNoSlot;
  std::fill(ever_fetched_.begin(), ever_fetched_.end(), 0);
  head_ = tail_ = kNoSlot;
  used_ = 0;
  stats_ = CrawlStats{};
  // A fresh crawler replays the same failure schedule: determinism per
  // (seed, fetch ordinal), independent of what ran before the reset.
  fail_rng_.Seed(opt_.failure.seed);
}

void CrawlAccess::SimulateTransientFailures() const {
  const Options::FailureModel& f = opt_.failure;
  // Each attempt fails independently with fail_prob; the loop models
  //   attempt -> fail -> wait(backoff) -> attempt -> ...
  // until an attempt succeeds or the retry budget is spent.
  int attempt = 0;
  while (fail_rng_.Bernoulli(f.fail_prob)) {
    ++stats_.transient_failures;
    if (attempt >= f.max_retries) {
      ++stats_.giveups;
      // Past the fast-path budget the crawler escalates to its slow
      // reliable path; model that as one maximal wait. Data still
      // arrives — the failure model never alters what Fetch returns.
      stats_.backoff_latency_us += f.backoff_max_us;
      break;
    }
    double wait = f.backoff_base_us * std::ldexp(1.0, attempt);
    if (wait > f.backoff_max_us) wait = f.backoff_max_us;
    wait += wait * f.jitter * fail_rng_.UniformReal();
    stats_.backoff_latency_us += wait;
    ++stats_.retries;
    ++attempt;
  }
}

void CrawlAccess::RecordInjectedFailure() const {
  // A chaos-injected transient failure (GRW_FAULT "crawl.fetch"): one
  // failed attempt, answered by one retry that succeeds. Reachable even
  // with the probability model off, so chaos runs cover the crawl layer
  // regardless of request options.
  ++stats_.transient_failures;
  ++stats_.retries;
  stats_.backoff_latency_us += opt_.failure.backoff_base_us;
}

}  // namespace grw
