#include "graph/access.h"

namespace grw {

CrawlAccess::CrawlAccess(const Graph& g, const Options& options)
    : g_(&g), opt_(options) {
  const uint64_t n = g.NumNodes();
  // 0 or oversize means "never evict": every node's list fits.
  capacity_ = static_cast<uint32_t>(
      opt_.cache_entries == 0 || opt_.cache_entries >= n
          ? n
          : opt_.cache_entries);
  never_evicts_ = capacity_ == n;
  slot_of_.assign(n, kNoSlot);
  node_of_.assign(capacity_, 0);
  prev_.assign(capacity_, kNoSlot);
  next_.assign(capacity_, kNoSlot);
  ever_fetched_.assign((n + 63) / 64, 0);
}

void CrawlAccess::ResetStats() {
  stats_ = CrawlStats{};
  // The distinct-fetch registry belongs to the accounting phase the
  // counters describe: keeping it would make post-reset distinct counts
  // (and the budget) skip nodes fetched before the reset.
  std::fill(ever_fetched_.begin(), ever_fetched_.end(), 0);
}

void CrawlAccess::ResetCache() {
  for (uint32_t s = 0; s < used_; ++s) slot_of_[node_of_[s]] = kNoSlot;
  std::fill(ever_fetched_.begin(), ever_fetched_.end(), 0);
  head_ = tail_ = kNoSlot;
  used_ = 0;
  stats_ = CrawlStats{};
}

}  // namespace grw
