// Synthetic graph generators.
//
// These stand in for the paper's SNAP datasets (see DESIGN.md §3): random
// models with heavy-tailed degrees and tunable clustering reproduce the
// structural properties the estimators are sensitive to (graphlet rarity,
// degree skew / mixing time). The deterministic families are fixtures with
// hand-computable graphlet counts used throughout the test suite.

#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// Erdős–Rényi G(n, m): n nodes, m distinct uniform random edges.
/// Low clustering, light-tailed degrees.
Graph ErdosRenyi(VertexId n, uint64_t m, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` existing nodes chosen proportional to degree.
/// Heavy-tailed degrees, low clustering.
Graph BarabasiAlbert(VertexId n, uint32_t edges_per_node, Rng& rng);

/// Holme–Kim powerlaw-cluster model: Barabási–Albert plus, after each
/// preferential attachment, a "triad formation" step with probability
/// `triad_prob` that links to a random neighbor of the previous target,
/// closing a triangle. Heavy-tailed degrees with tunable clustering —
/// our stand-in for clustered social graphs (Facebook, Flickr, BrightKite).
///
/// `max_degree` (0 = unlimited) rejects attachments to saturated nodes,
/// truncating the degree tail — the analog of OSN friend-count caps. The
/// small-tier datasets use it so that exact 5-node ground truth (ESU
/// enumeration) stays tractable; see DESIGN.md Section 3.
Graph HolmeKim(VertexId n, uint32_t edges_per_node, double triad_prob,
               Rng& rng, uint32_t max_degree = 0);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side rewired with probability `beta`. High clustering, low degree skew.
Graph WattsStrogatz(VertexId n, uint32_t k, double beta, Rng& rng);

/// Complete graph K_n.
Graph Complete(VertexId n);

/// Path graph P_n (n nodes, n-1 edges).
Graph Path(VertexId n);

/// Cycle graph C_n.
Graph Cycle(VertexId n);

/// Star S_{n-1}: one hub adjacent to n-1 leaves.
Graph Star(VertexId n);

/// Complete bipartite graph K_{a,b}.
Graph CompleteBipartite(VertexId a, VertexId b);

/// Lollipop: K_clique with a path of `tail` extra nodes attached.
Graph Lollipop(VertexId clique, VertexId tail);

/// Zachary's karate club (34 nodes, 78 edges) — the classic small real
/// social network; used as a test fixture with known graphlet counts.
Graph KarateClub();

}  // namespace grw
