// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// This is the substrate every other module walks on. Design points:
//  * Adjacency lists are sorted, so HasEdge is a binary search — the
//    estimator's incremental sample-window maintenance (paper Section 5)
//    performs k-1 such searches per random-walk step. Attaching an
//    AdjacencyIndex (graph/adjacency.h) upgrades HasEdge to O(1) hub
//    bitset tests and signature-filtered hybrid searches without changing
//    any result.
//  * The structure is immutable after construction; all samplers share one
//    const Graph& across threads without synchronization.
//  * Node ids are dense uint32_t in [0, NumNodes()).
//  * The CSR arrays are viewed through spans whose storage lives in a
//    shared, opaque Backing. The backing is either a pair of owned vectors
//    (graphs built in memory) or a memory-mapped `.grwb` snapshot
//    (graph/format.h), which makes loading a multi-gigabyte graph a
//    zero-copy mmap instead of a parse. Copying a Graph shares the backing;
//    it never duplicates the arrays.

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace grw {

using VertexId = uint32_t;

class AdjacencyIndex;
struct AdjacencyIndexOptions;

/// Undirected simple graph, CSR storage, sorted neighbor lists.
class Graph {
 public:
  /// Opaque owner of the memory the CSR spans point into. Concrete
  /// subclasses hold owned vectors (in-memory build) or an mmap'd file
  /// region (zero-copy snapshot load, graph/format.cpp).
  struct Backing {
    virtual ~Backing() = default;
  };

  Graph() = default;

  /// Constructs from owned CSR arrays. offsets.size() == num_nodes + 1,
  /// neighbors.size() == offsets.back() == 2 * NumEdges().
  /// Neighbor ranges must be sorted and free of duplicates/self-loops;
  /// use GraphBuilder to produce such arrays from raw edges.
  Graph(std::vector<uint64_t> offsets, std::vector<VertexId> neighbors);

  /// Zero-copy construction: the spans must satisfy the same invariants as
  /// above and stay valid for the lifetime of *backing (which the graph —
  /// and every copy of it — keeps alive).
  Graph(std::span<const uint64_t> offsets, std::span<const VertexId> neighbors,
        std::shared_ptr<const Backing> backing)
      : backing_(std::move(backing)),
        offsets_(offsets),
        neighbors_(neighbors),
        max_degree_(std::make_shared<std::atomic<uint32_t>>(kUnknownDegree)) {
    assert(offsets_.empty() || offsets_.back() == neighbors_.size());
  }

  VertexId NumNodes() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges |E|.
  uint64_t NumEdges() const { return neighbors_.size() / 2; }

  uint32_t Degree(VertexId v) const {
    assert(v < NumNodes());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    assert(v < NumNodes());
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// The i-th neighbor of v (0-based, in sorted order).
  VertexId Neighbor(VertexId v, uint32_t i) const {
    assert(i < Degree(v));
    return neighbors_[offsets_[v] + i];
  }

  /// True iff the undirected edge (u, v) exists. Routes through the
  /// attached AdjacencyIndex when one exists (O(1) for hub endpoints,
  /// signature-filtered hybrid search otherwise); falls back to a binary
  /// search over the lower-degree endpoint's list. Both paths return
  /// identical results for every input.
  bool HasEdge(VertexId u, VertexId v) const;

  /// The index-free reference path: binary search over the lower-degree
  /// endpoint's sorted list, O(log Degree(min-side)). Used by the
  /// equivalence property tests and the HasEdge micro bench baseline.
  bool HasEdgeBinarySearch(VertexId u, VertexId v) const;

  /// Builds and attaches an AdjacencyIndex (graph/adjacency.h) so every
  /// HasEdge caller takes the accelerated path. Call before sharing the
  /// graph across threads; copies made afterwards share the index.
  /// Attaching never changes any query result, only its cost.
  void BuildAdjacencyIndex();
  void BuildAdjacencyIndex(const AdjacencyIndexOptions& options);

  /// The attached acceleration index, or nullptr. (Stats reporting and
  /// tests; queries should just call HasEdge.)
  const AdjacencyIndex* adjacency_index() const { return index_.get(); }

  /// Shares the CSR storage owner (nullptr for a default-constructed
  /// graph). The AdjacencyIndex holds this so its CSR views outlive any
  /// particular Graph copy.
  std::shared_ptr<const Backing> backing() const { return backing_; }

  /// Maximum degree over all nodes. O(n) on first call, then cached
  /// (copies of the graph share the cache).
  uint32_t MaxDegree() const;

  /// Sum over nodes of Degree(v)^2; used by |R(2)| and wedge counting.
  uint64_t DegreeSquareSum() const;

  /// Number of wedges (paths of length two) = sum_v C(d_v, 2).
  /// Also equals |R(2)|, the edge count of the 2-node subgraph
  /// relationship graph G(2) (paper Section 3.3).
  uint64_t WedgeCount() const;

  /// True iff the graph is connected (empty graph counts as connected).
  bool IsConnected() const;

  /// One-line summary "n=<nodes> m=<edges> dmax=<max degree>".
  std::string Summary() const;

  /// Raw CSR arrays, for serialization (graph/format.*) and tests.
  /// RawOffsets().size() == NumNodes() + 1 (or 0 for a default graph);
  /// RawNeighbors().size() == 2 * NumEdges().
  std::span<const uint64_t> RawOffsets() const { return offsets_; }
  std::span<const VertexId> RawNeighbors() const { return neighbors_; }

 private:
  static constexpr uint32_t kUnknownDegree = 0xFFFFFFFFu;

  std::shared_ptr<const Backing> backing_;
  std::span<const uint64_t> offsets_;
  std::span<const VertexId> neighbors_;
  std::shared_ptr<const AdjacencyIndex> index_;
  // Lazily computed MaxDegree(), shared by all copies of this graph. A
  // benign race (two threads computing the same value) is the worst case.
  std::shared_ptr<std::atomic<uint32_t>> max_degree_;
};

}  // namespace grw
