// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// This is the substrate every other module walks on. Design points:
//  * Adjacency lists are sorted, so HasEdge is a binary search — the
//    estimator's incremental sample-window maintenance (paper Section 5)
//    performs k-1 such searches per random-walk step.
//  * The structure is immutable after construction; all samplers share one
//    const Graph& across threads without synchronization.
//  * Node ids are dense uint32_t in [0, NumNodes()).
//  * The CSR arrays are viewed through spans whose storage lives in a
//    shared, opaque Backing. The backing is either a pair of owned vectors
//    (graphs built in memory) or a memory-mapped `.grwb` snapshot
//    (graph/format.h), which makes loading a multi-gigabyte graph a
//    zero-copy mmap instead of a parse. Copying a Graph shares the backing;
//    it never duplicates the arrays.

#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace grw {

using VertexId = uint32_t;

/// Undirected simple graph, CSR storage, sorted neighbor lists.
class Graph {
 public:
  /// Opaque owner of the memory the CSR spans point into. Concrete
  /// subclasses hold owned vectors (in-memory build) or an mmap'd file
  /// region (zero-copy snapshot load, graph/format.cpp).
  struct Backing {
    virtual ~Backing() = default;
  };

  Graph() = default;

  /// Constructs from owned CSR arrays. offsets.size() == num_nodes + 1,
  /// neighbors.size() == offsets.back() == 2 * NumEdges().
  /// Neighbor ranges must be sorted and free of duplicates/self-loops;
  /// use GraphBuilder to produce such arrays from raw edges.
  Graph(std::vector<uint64_t> offsets, std::vector<VertexId> neighbors);

  /// Zero-copy construction: the spans must satisfy the same invariants as
  /// above and stay valid for the lifetime of *backing (which the graph —
  /// and every copy of it — keeps alive).
  Graph(std::span<const uint64_t> offsets, std::span<const VertexId> neighbors,
        std::shared_ptr<const Backing> backing)
      : backing_(std::move(backing)), offsets_(offsets), neighbors_(neighbors) {
    assert(offsets_.empty() || offsets_.back() == neighbors_.size());
  }

  VertexId NumNodes() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges |E|.
  uint64_t NumEdges() const { return neighbors_.size() / 2; }

  uint32_t Degree(VertexId v) const {
    assert(v < NumNodes());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    assert(v < NumNodes());
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// The i-th neighbor of v (0-based, in sorted order).
  VertexId Neighbor(VertexId v, uint32_t i) const {
    assert(i < Degree(v));
    return neighbors_[offsets_[v] + i];
  }

  /// True iff the undirected edge (u, v) exists. O(log Degree(min-side)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Maximum degree over all nodes. O(n).
  uint32_t MaxDegree() const;

  /// Sum over nodes of Degree(v)^2; used by |R(2)| and wedge counting.
  uint64_t DegreeSquareSum() const;

  /// Number of wedges (paths of length two) = sum_v C(d_v, 2).
  /// Also equals |R(2)|, the edge count of the 2-node subgraph
  /// relationship graph G(2) (paper Section 3.3).
  uint64_t WedgeCount() const;

  /// True iff the graph is connected (empty graph counts as connected).
  bool IsConnected() const;

  /// One-line summary "n=<nodes> m=<edges> dmax=<max degree>".
  std::string Summary() const;

  /// Raw CSR arrays, for serialization (graph/format.*) and tests.
  /// RawOffsets().size() == NumNodes() + 1 (or 0 for a default graph);
  /// RawNeighbors().size() == 2 * NumEdges().
  std::span<const uint64_t> RawOffsets() const { return offsets_; }
  std::span<const VertexId> RawNeighbors() const { return neighbors_; }

 private:
  std::shared_ptr<const Backing> backing_;
  std::span<const uint64_t> offsets_;
  std::span<const VertexId> neighbors_;
};

}  // namespace grw
