#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace grw {

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  const VertexId n = g.NumNodes();
  if (n == 0) return stats;
  std::vector<uint32_t> degrees(n);
  double sum = 0.0;
  double sum_sq = 0.0;
  stats.min = std::numeric_limits<uint32_t>::max();
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t d = g.Degree(v);
    degrees[v] = d;
    sum += d;
    sum_sq += static_cast<double>(d) * d;
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
  }
  stats.mean = sum / n;
  stats.variance = sum_sq / n - stats.mean * stats.mean;
  std::sort(degrees.begin(), degrees.end());
  stats.p50 = degrees[n / 2];
  stats.p90 = degrees[static_cast<size_t>(n) * 9 / 10];
  stats.p99 = degrees[static_cast<size_t>(n) * 99 / 100];
  return stats;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> histogram(static_cast<size_t>(g.MaxDegree()) + 1, 0);
  for (VertexId v = 0; v < g.NumNodes(); ++v) histogram[g.Degree(v)]++;
  return histogram;
}

double DegreeAssortativity(const Graph& g) {
  // Pearson correlation over directed edge endpoint degrees (Newman).
  double sum_x = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  uint64_t m2 = 0;  // directed edge count
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    const double du = g.Degree(u);
    for (VertexId v : g.Neighbors(u)) {
      const double dv = g.Degree(v);
      sum_x += du;
      sum_xx += du * du;
      sum_xy += du * dv;
      ++m2;
    }
  }
  if (m2 == 0) return std::numeric_limits<double>::quiet_NaN();
  const double inv = 1.0 / static_cast<double>(m2);
  const double mean = sum_x * inv;
  const double var = sum_xx * inv - mean * mean;
  if (var <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return (sum_xy * inv - mean * mean) / var;
}

double AverageLocalClustering(const Graph& g) {
  // C(d_v, 2) HasEdge probes per node; on a graph with an attached
  // AdjacencyIndex the hub rows absorb exactly the pairs that make this
  // O(sum d_v^2 log d) scan painful on skewed graphs.
  double total = 0.0;
  uint64_t eligible = 0;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    const auto nbrs = g.Neighbors(v);
    const size_t d = nbrs.size();
    if (d < 2) continue;
    uint64_t closed = 0;
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i + 1; j < d; ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    total += 2.0 * static_cast<double>(closed) /
             (static_cast<double>(d) * (d - 1));
    ++eligible;
  }
  return eligible == 0 ? 0.0 : total / static_cast<double>(eligible);
}

}  // namespace grw
