// Adjacency acceleration index: near-free edge-existence queries.
//
// Every random-walk step is dominated by HasEdge probes — the sliding
// sample window issues k-1 per step (paper Section 5) and the G(d) walk's
// neighbor enumeration issues O(d^2 |E|/|V|) of them. A plain CSR answers
// each probe with a binary search over the smaller endpoint's neighbor
// list; this index layers three structures on top of the (unmodified) CSR
// so most probes never touch the list at all:
//
//   1. Hub bitsets — dense one-bit-per-node rows for the highest-degree
//      vertices ("hubs", degree >= threshold), under a configurable memory
//      budget. A probe whose larger endpoint is a hub is a single bit
//      test, O(1). Degree-skewed graphs concentrate walk traffic on hubs,
//      so a few rows absorb most of the expensive probes.
//   2. Neighbor signatures — a per-node 64-bit Bloom-style fingerprint of
//      the neighbor set. A probe whose fingerprint bit is clear is a
//      certain miss, answered without touching the neighbor list; only
//      signature hits fall through to the list search. Miss-heavy
//      workloads (the common case: most candidate pairs are non-edges)
//      short-circuit here.
//   3. Hybrid list search — linear scan below a small cutoff (short lists
//      fit in one or two cache lines, where branch-free sequential
//      compares beat log-time probing) and branchless galloping search
//      (exponential range narrowing + conditional-move binary search)
//      above it.
//
// The index is an overlay: it stores no adjacency of its own beyond the
// bitset rows, keeps the CSR's lowest-degree-endpoint probe orientation,
// and returns bit-identical answers to Graph::HasEdgeBinarySearch. Attach
// one via Graph::BuildAdjacencyIndex() and every HasEdge caller — sample
// window, G(d) enumeration, clustering metrics, baselines, exact counters
// — routes through it transparently. Construction is a deterministic
// parallel pass over the CSR (same index at any thread count).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Tuning knobs for AdjacencyIndex construction.
struct AdjacencyIndexOptions {
  /// Vertices with degree >= this get a dense bitset row. 0 = choose the
  /// smallest threshold (>= min_hub_degree) whose rows fit the budget.
  /// An explicit value is a starting point, not a promise: it is still
  /// raised as far as hub_memory_budget requires (never lowered). Check
  /// AdjacencyIndex::hub_threshold() for the effective value.
  uint32_t hub_degree_threshold = 0;
  /// Upper bound on total bitset-row memory. Rows are n bits each, so the
  /// default 64 MiB holds ~500 hub rows on a 1M-node graph.
  uint64_t hub_memory_budget = 64ull << 20;
  /// Never spend a bitset row on a vertex below this degree, no matter how
  /// roomy the budget: a short sorted list is already fast to search.
  uint32_t min_hub_degree = 64;
  /// Neighbor lists shorter than this are scanned linearly instead of
  /// galloping-searched.
  uint32_t linear_cutoff = 16;
  /// Worker threads for construction; 0 = HardwareThreads().
  unsigned threads = 0;
};

/// Immutable acceleration overlay for one Graph. Thread-safe to query
/// concurrently; build once before sharing (Graph::BuildAdjacencyIndex).
class AdjacencyIndex {
 public:
  AdjacencyIndex(const Graph& g, const AdjacencyIndexOptions& options = {});

  /// Same contract and result as Graph::HasEdgeBinarySearch, faster.
  /// Requires u, v < NumNodes() and u != v (Graph::HasEdge pre-checks).
  bool HasEdge(VertexId u, VertexId v) const {
    // One-load Bloom reject, before even looking at degrees: a clear bit
    // proves the edge is absent (the bit was set for every real neighbor
    // at build time, so there are no false negatives). Most non-edge
    // probes — the dominant query shape on sparse graphs — finish here
    // having touched exactly one cache line.
    if (!(signatures_[u] & SignatureBit(v))) return false;
    // Keep the CSR's orientation: resolve against the lower-degree
    // endpoint's list, so u ends up on the small side and v on the large.
    if (Degree(u) > Degree(v)) {
      const VertexId t = u;
      u = v;
      v = t;
    }
    const uint32_t slot = hub_slot_[v];
    if (slot != kNoHub) {
      // O(1): one bit test in the hub's dense row.
      return (bits_[static_cast<size_t>(slot) * row_words_ + (u >> 6)] >>
              (u & 63)) &
             1u;
    }
    // Small-side filter (a different, more selective fingerprint when the
    // swap above fired; the already-cached line otherwise), then the
    // exact hybrid search.
    if (!(signatures_[u] & SignatureBit(v))) return false;
    return ListContains(u, v);
  }

  /// True iff v has a dense bitset row.
  bool IsHub(VertexId v) const { return hub_slot_[v] != kNoHub; }

  /// The effective hub degree threshold (after budget fitting);
  /// 0 when the graph has no hubs.
  uint32_t hub_threshold() const { return hub_threshold_; }
  uint32_t num_hubs() const { return num_hubs_; }
  uint64_t bitset_bytes() const { return bits_.size() * sizeof(uint64_t); }
  uint64_t signature_bytes() const {
    return signatures_.size() * sizeof(uint64_t);
  }

 private:
  static constexpr uint32_t kNoHub = 0xFFFFFFFFu;

  static uint64_t SignatureBit(VertexId v) {
    // Multiplicative (Fibonacci) hash into one of 64 bits; the high bits
    // of the product are well mixed even for dense sequential ids.
    return 1ull << ((v * 0x9E3779B97F4A7C15ull) >> 58);
  }

  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  bool ListContains(VertexId u, VertexId v) const;

  // CSR views (shared with the graph; backing_ keeps them alive even if
  // the original Graph object is destroyed).
  std::shared_ptr<const Graph::Backing> backing_;
  const uint64_t* offsets_ = nullptr;
  const VertexId* neighbors_ = nullptr;

  std::vector<uint64_t> signatures_;  // one 64-bit Bloom filter per node
  std::vector<uint32_t> hub_slot_;    // node -> bitset row slot, or kNoHub
  std::vector<uint64_t> bits_;        // num_hubs_ rows of row_words_ words
  size_t row_words_ = 0;
  uint32_t hub_threshold_ = 0;
  uint32_t num_hubs_ = 0;
  uint32_t linear_cutoff_ = 16;
};

}  // namespace grw
