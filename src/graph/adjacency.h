// Adjacency acceleration index: near-free edge-existence queries.
//
// Every random-walk step is dominated by HasEdge probes — the sliding
// sample window issues k-1 per step (paper Section 5) and the G(d) walk's
// neighbor enumeration issues O(d^2 |E|/|V|) of them. A plain CSR answers
// each probe with a binary search over the smaller endpoint's neighbor
// list; this index layers three structures on top of the (unmodified) CSR
// so most probes never touch the list at all:
//
//   1. Hub bitsets — dense one-bit-per-node rows for the highest-degree
//      vertices ("hubs", degree >= threshold), under a configurable memory
//      budget. A probe whose larger endpoint is a hub is a single bit
//      test, O(1). Degree-skewed graphs concentrate walk traffic on hubs,
//      so a few rows absorb most of the expensive probes.
//   2. Neighbor signatures — a per-node 64-bit Bloom-style fingerprint of
//      the neighbor set. A probe whose fingerprint bit is clear is a
//      certain miss, answered without touching the neighbor list; only
//      signature hits fall through to the list search. Miss-heavy
//      workloads (the common case: most candidate pairs are non-edges)
//      short-circuit here.
//   3. Hybrid list search — linear scan below a small cutoff (short lists
//      fit in one or two cache lines, where branch-free sequential
//      compares beat log-time probing) and branchless galloping search
//      (exponential range narrowing + conditional-move binary search)
//      above it.
//
// Dispatch layout: signature, degree and hub slot are fused into one
// 16-byte per-node record, so a probe classifies both endpoints (reject /
// hub / short-list / long-list) from at most two cache lines instead of
// re-deriving the regime from scattered arrays (signatures, CSR offsets,
// hub slots) on every query. Present-edge probes — the one regime the
// split layout regressed — skip the signature math entirely once the
// record says the resolving list is short.
//
// Batched probes: SignatureProbeBatch() evaluates one node's signature
// against a whole candidate array at once, vectorized with AVX2 where the
// CPU has it (runtime-dispatched; bit-identical scalar fallback
// otherwise). The batched walk kernels (walk/batched_walk.h) use it to
// reject most non-edges of a probe batch with a handful of vector ops.
//
// The index is an overlay: it stores no adjacency of its own beyond the
// bitset rows, keeps the CSR's lowest-degree-endpoint probe orientation,
// and returns bit-identical answers to Graph::HasEdgeBinarySearch. Attach
// one via Graph::BuildAdjacencyIndex() and every HasEdge caller — sample
// window, G(d) enumeration, clustering metrics, baselines, exact counters
// — routes through it transparently. Construction is a deterministic
// parallel pass over the CSR (same index at any thread count).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// The multiplicative (Fibonacci) hash picking one of 64 signature bits
/// for a vertex id; the high bits of the product are well mixed even for
/// dense sequential ids. Shared by the index and the vectorized probes.
inline uint64_t NeighborSignatureBit(VertexId v) {
  return 1ull << ((v * 0x9E3779B97F4A7C15ull) >> 58);
}

/// Evaluates `signature` against `count` candidate ids (count <= 64):
/// bit i of the result is 1 iff the signature *admits* candidates[i]
/// (possible edge — needs an exact check); 0 proves the edge absent.
/// Scalar reference implementation.
uint64_t SignatureProbeBatchScalar(uint64_t signature,
                                   const VertexId* candidates, int count);

/// AVX2 implementation of the same contract (4 candidates per vector op).
/// Only callable when SignatureProbeBatchHasAvx2() is true.
uint64_t SignatureProbeBatchAvx2(uint64_t signature,
                                 const VertexId* candidates, int count);

/// True when this binary carries the AVX2 path and the CPU supports it.
bool SignatureProbeBatchHasAvx2();

/// Runtime-dispatched batch probe: AVX2 when available, scalar otherwise.
/// Both paths return identical masks for every input (property-tested).
uint64_t SignatureProbeBatch(uint64_t signature, const VertexId* candidates,
                             int count);

/// Tuning knobs for AdjacencyIndex construction.
struct AdjacencyIndexOptions {
  /// Vertices with degree >= this get a dense bitset row. 0 = choose the
  /// smallest threshold (>= min_hub_degree) whose rows fit the budget.
  /// An explicit value is a starting point, not a promise: it is still
  /// raised as far as hub_memory_budget requires (never lowered). Check
  /// AdjacencyIndex::hub_threshold() for the effective value.
  uint32_t hub_degree_threshold = 0;
  /// Upper bound on total bitset-row memory. Rows are n bits each, so the
  /// default 64 MiB holds ~500 hub rows on a 1M-node graph.
  uint64_t hub_memory_budget = 64ull << 20;
  /// Never spend a bitset row on a vertex below this degree, no matter how
  /// roomy the budget: a short sorted list is already fast to search.
  uint32_t min_hub_degree = 64;
  /// Neighbor lists shorter than this are scanned linearly instead of
  /// galloping-searched.
  uint32_t linear_cutoff = 16;
  /// When the AVX2 membership scan is available, lists up to this length
  /// are resolved by a branchless vector scan instead of a hub-row probe
  /// or galloping search — a few *sequential* cache lines beat one random
  /// line in tens of MiB of bitset, and no data-dependent scan-exit
  /// branch means no mispredict per probe. 0 disables the widening (the
  /// linear_cutoff policy applies unchanged); ignored without AVX2.
  uint32_t simd_scan_cutoff = 64;
  /// Worker threads for construction; 0 = HardwareThreads().
  unsigned threads = 0;
};

/// Immutable acceleration overlay for one Graph. Thread-safe to query
/// concurrently; build once before sharing (Graph::BuildAdjacencyIndex).
class AdjacencyIndex {
 public:
  AdjacencyIndex(const Graph& g, const AdjacencyIndexOptions& options = {});

  /// Same contract and result as Graph::HasEdgeBinarySearch, faster.
  /// Requires u, v < NumNodes() and u != v (Graph::HasEdge pre-checks).
  bool HasEdge(VertexId u, VertexId v) const {
    // One-load Bloom reject, before even classifying the endpoints: a
    // clear bit proves the edge is absent (the bit was set for every real
    // neighbor at build time, so there are no false negatives). Most
    // non-edge probes — the dominant query shape on sparse graphs —
    // finish here having touched exactly one cache line.
    const NodeMeta mu = meta_[u];
    if (!(mu.signature & NeighborSignatureBit(v))) return false;
    // u's own list already short: scan it directly. The CSR is symmetric,
    // so either endpoint's list answers the question — and because the
    // record carries the list's CSR offset, the scan starts without
    // loading meta_[v], a hub row, or the offsets array. Present edges
    // with a low-degree endpoint (most edges of a sparse graph) finish
    // in two cache lines: the record and the list itself.
    if (mu.degree <= scan_cutoff_) {
      return ListContains(ListBegin(u, mu), mu.degree, v);
    }
    // Keep the CSR's orientation: resolve against the lower-degree
    // endpoint's list. Everything needed to classify the probe (degree,
    // hub slot, list offset) rides in the two records just loaded.
    // Capped degrees compare correctly: a capped record is >= the cap,
    // an uncapped one is below it, and between two capped records either
    // orientation resolves the same symmetric membership question.
    const NodeMeta mv = meta_[v];
    VertexId small = u;
    VertexId large = v;
    NodeMeta small_meta = mu;
    uint16_t large_slot = mv.hub_slot;
    if (mu.degree > mv.degree) {
      small = v;
      large = u;
      small_meta = mv;
      large_slot = mu.hub_slot;
    }
    if (small_meta.degree <= scan_cutoff_) {
      // Short resolving list: the scan is cheaper than the random cache
      // line a hub-row bit test would touch, and present edges (which
      // always pass the filter) skip the signature math entirely.
      return ListContains(ListBegin(small, small_meta), small_meta.degree,
                          large);
    }
    if (large_slot != kNoHub) {
      // O(1): one bit test in the large endpoint's dense row. Only long
      // small sides reach here — anything scannable resolved above.
      return (bits_[static_cast<size_t>(large_slot) * row_words_ +
                    (small >> 6)] >>
              (small & 63)) &
             1u;
    }
    // Small-side filter (a different, more selective fingerprint when the
    // swap above fired; a register-only recheck otherwise), then the
    // branchless galloping search.
    if (!(small_meta.signature & NeighborSignatureBit(large))) return false;
    return GallopContains(ListBegin(small, small_meta),
                          ListLength(small, small_meta), large);
  }

  /// Batched signature rejection: bit i of the result is set iff the
  /// index *cannot* rule out the edge (u, candidates[i]) from u's
  /// signature alone. Clear bits are certain misses. count <= 64.
  uint64_t ProbeBatch(VertexId u, const VertexId* candidates,
                      int count) const {
    return SignatureProbeBatch(meta_[u].signature, candidates, count);
  }

  /// Pairwise batched rejection over the fused record array: bit i of the
  /// result is set iff the signature of us[i] admits vs[i] (edge possibly
  /// present — confirm with HasEdge); clear bits are certain misses.
  /// count <= 64. The batched walk kernels gather one probe per lane and
  /// reject most of the batch in a handful of vector ops (the AVX2 path
  /// gathers four signatures per iteration straight from the records).
  uint64_t PairProbeBatch(const VertexId* us, const VertexId* vs,
                          int count) const;
  /// The two implementations behind PairProbeBatch, exposed for the
  /// SIMD-vs-scalar parity property tests. Identical masks on every input
  /// (the AVX2 variant requires SignatureProbeBatchHasAvx2()).
  uint64_t PairProbeBatchScalar(const VertexId* us, const VertexId* vs,
                                int count) const;
  uint64_t PairProbeBatchAvx2(const VertexId* us, const VertexId* vs,
                              int count) const;

  /// Membership test over a sorted neighbor list slice — the two
  /// implementations behind the probe's list scan, exposed for the
  /// SIMD-vs-scalar parity property tests. LinearContains is the scalar
  /// early-exit reference; VectorContainsAvx2 is the branchless masked
  /// vector scan (16 entries per iteration, sorted early exit per block;
  /// requires SignatureProbeBatchHasAvx2()). Identical results on every
  /// input.
  static bool LinearContains(const VertexId* list, size_t len, VertexId v);
  static bool VectorContainsAvx2(const VertexId* list, size_t len,
                                 VertexId v);

  /// True iff v has a dense bitset row.
  bool IsHub(VertexId v) const { return meta_[v].hub_slot != kNoHub; }

  /// The effective hub degree threshold (after budget fitting);
  /// 0 when the graph has no hubs.
  uint32_t hub_threshold() const { return hub_threshold_; }
  uint32_t num_hubs() const { return num_hubs_; }
  uint64_t bitset_bytes() const { return bits_.size() * sizeof(uint64_t); }
  /// Bytes of fused per-node records (signature + degree + hub slot).
  uint64_t metadata_bytes() const {
    return meta_.size() * sizeof(NodeMeta);
  }
  /// Back-compat alias for the pre-fusion stat name.
  uint64_t signature_bytes() const { return metadata_bytes(); }

 private:
  static constexpr uint16_t kNoHub = 0xFFFFu;
  /// Degrees at or above this are stored capped; ListLength() recovers the
  /// exact length from the CSR offsets (rare deep path, extra load there
  /// only).
  static constexpr uint16_t kDegreeCap = 0xFFFFu;
  /// Hub slots must fit 16 bits with kNoHub reserved, so at most this many
  /// bitset rows (threshold fitting raises the degree bar to comply).
  static constexpr uint64_t kMaxHubs = 0xFFFFu;

  /// Fused per-node probe dispatch record: everything HasEdge needs to
  /// classify a probe (reject it, route it to a hub row, or pick the list
  /// search flavor) AND find the neighbor list (CSR offset) in one
  /// 16-byte load per endpoint — list-resolved probes never touch the
  /// offsets array.
  struct NodeMeta {
    uint64_t signature = 0;  // Bloom fingerprint of the neighbor set
    uint32_t offset = 0;     // CSR list start (unused if wide_offsets_)
    uint16_t degree = 0;     // min(true degree, kDegreeCap)
    uint16_t hub_slot = kNoHub;
  };
  static_assert(sizeof(NodeMeta) == 16,
                "PairProbeBatchAvx2 gathers signatures at 16-byte stride");

  /// Start of u's neighbor list. The record's 32-bit offset covers graphs
  /// up to 2^32 half-edges; beyond that the constructor sets
  /// wide_offsets_ and probes fall back to the 64-bit CSR offsets (one
  /// perfectly predicted branch on a never-changing member).
  const VertexId* ListBegin(VertexId u, const NodeMeta& m) const {
    return neighbors_ + (wide_offsets_ ? offsets_[u] : m.offset);
  }
  /// Exact length of u's neighbor list (resolves the degree cap).
  size_t ListLength(VertexId u, const NodeMeta& m) const {
    return m.degree != kDegreeCap
               ? m.degree
               : static_cast<size_t>(offsets_[u + 1] - offsets_[u]);
  }

  static bool GallopContains(const VertexId* list, size_t len, VertexId v);

  /// Runtime-dispatched list scan (vector when the CPU has AVX2).
  bool ListContains(const VertexId* list, size_t len, VertexId v) const {
    return vector_scan_ ? VectorContainsAvx2(list, len, v)
                        : LinearContains(list, len, v);
  }

  // CSR views (shared with the graph; backing_ keeps them alive even if
  // the original Graph object is destroyed).
  std::shared_ptr<const Graph::Backing> backing_;
  const uint64_t* offsets_ = nullptr;
  const VertexId* neighbors_ = nullptr;

  std::vector<NodeMeta> meta_;  // one dispatch record per node
  std::vector<uint64_t> bits_;  // num_hubs_ rows of row_words_ words
  size_t row_words_ = 0;
  uint32_t hub_threshold_ = 0;
  uint32_t num_hubs_ = 0;
  uint32_t linear_cutoff_ = 16;
  uint32_t scan_cutoff_ = 16;  // linear_cutoff_, widened under AVX2
  bool vector_scan_ = false;   // AVX2 membership scan available
  bool wide_offsets_ = false;  // > 2^32 half-edges: offsets via CSR
};

}  // namespace grw
