#include "graph/builder.h"

#include <algorithm>
#include <unordered_map>

namespace grw {

namespace {

// Shared CSR assembly: takes directed half-edges (both directions present),
// sorts, dedupes, and emits the Graph.
Graph AssembleCsr(VertexId num_nodes,
                  std::vector<std::pair<VertexId, VertexId>>& half_edges) {
  std::sort(half_edges.begin(), half_edges.end());
  half_edges.erase(std::unique(half_edges.begin(), half_edges.end()),
                   half_edges.end());

  std::vector<uint64_t> offsets(static_cast<size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : half_edges) offsets[u + 1]++;
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> neighbors(half_edges.size());
  // half_edges are sorted by (u, v), so neighbors are emitted in sorted
  // order per node by a single linear pass.
  for (size_t i = 0; i < half_edges.size(); ++i) {
    neighbors[i] = half_edges[i].second;
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace

Graph GraphBuilder::Build() {
  // Relabel sparse ids densely. Sort the distinct ids so the relabeling is
  // deterministic regardless of edge order.
  std::vector<uint64_t> ids;
  ids.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    if (u != v) {  // self-loops never contribute a node on their own
      ids.push_back(u);
      ids.push_back(v);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::unordered_map<uint64_t, VertexId> relabel;
  relabel.reserve(ids.size() * 2);
  for (size_t i = 0; i < ids.size(); ++i) {
    relabel.emplace(ids[i], static_cast<VertexId>(i));
  }

  std::vector<std::pair<VertexId, VertexId>> half;
  half.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    const VertexId a = relabel.at(u);
    const VertexId b = relabel.at(v);
    half.emplace_back(a, b);
    half.emplace_back(b, a);
  }
  edges_.clear();
  edges_.shrink_to_fit();
  return AssembleCsr(static_cast<VertexId>(ids.size()), half);
}

Graph FromEdges(VertexId num_nodes,
                const std::vector<std::pair<VertexId, VertexId>>& edges) {
  std::vector<std::pair<VertexId, VertexId>> half;
  half.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    half.emplace_back(u, v);
    half.emplace_back(v, u);
  }
  return AssembleCsr(num_nodes, half);
}

Graph LargestConnectedComponent(const Graph& g) {
  const VertexId n = g.NumNodes();
  if (n == 0) return Graph();

  constexpr VertexId kUnassigned = static_cast<VertexId>(-1);
  std::vector<VertexId> component(n, kUnassigned);
  std::vector<uint64_t> component_size;
  std::vector<VertexId> stack;

  for (VertexId s = 0; s < n; ++s) {
    if (component[s] != kUnassigned) continue;
    const VertexId c = static_cast<VertexId>(component_size.size());
    component_size.push_back(0);
    stack.push_back(s);
    component[s] = c;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      component_size[c]++;
      for (VertexId w : g.Neighbors(v)) {
        if (component[w] == kUnassigned) {
          component[w] = c;
          stack.push_back(w);
        }
      }
    }
  }

  const VertexId best =
      static_cast<VertexId>(std::max_element(component_size.begin(),
                                             component_size.end()) -
                            component_size.begin());

  // Dense relabeling of the winning component, preserving id order.
  std::vector<VertexId> new_id(n, kUnassigned);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (component[v] == best) new_id[v] = next++;
  }

  std::vector<std::pair<VertexId, VertexId>> half;
  half.reserve(g.NumEdges());
  for (VertexId v = 0; v < n; ++v) {
    if (component[v] != best) continue;
    for (VertexId w : g.Neighbors(v)) {
      half.emplace_back(new_id[v], new_id[w]);
    }
  }
  return AssembleCsr(next, half);
}

}  // namespace grw
