#include "graph/builder.h"

#include <algorithm>
#include <numeric>

#include "util/parallel.h"

namespace grw {

namespace {

// Below this many half-edges the thread fan-out costs more than it saves;
// everything runs on the calling thread (which ParallelSort/ParallelFor
// already guarantee for small inputs, this just keeps the constant in one
// place for the counting passes too).
constexpr size_t kParallelHalfEdgeCutoff = 1 << 16;

// Shared CSR assembly: takes directed half-edges (both directions present),
// sorts, dedupes, and emits the Graph. Sorting — the dominant cost on
// multi-million-edge inputs — and the per-node counting / neighbor fill
// passes fan out via util/parallel.h; the result is identical to the
// serial pipeline at any thread count.
Graph AssembleCsr(VertexId num_nodes,
                  std::vector<std::pair<VertexId, VertexId>>& half_edges) {
  ParallelSort(half_edges);
  half_edges.erase(std::unique(half_edges.begin(), half_edges.end()),
                   half_edges.end());

  std::vector<uint64_t> offsets(static_cast<size_t>(num_nodes) + 1, 0);
  if (half_edges.size() < kParallelHalfEdgeCutoff || num_nodes == 0) {
    for (const auto& [u, v] : half_edges) offsets[u + 1]++;
  } else {
    // Per-node degree counting: each thread owns a contiguous node range,
    // finds its slice of the sorted half-edge array by binary search, and
    // counts into disjoint offsets entries — no atomics needed.
    const size_t chunks = std::min<size_t>(HardwareThreads(), num_nodes);
    ParallelFor(chunks, [&](size_t c) {
      const VertexId lo =
          static_cast<VertexId>(uint64_t{num_nodes} * c / chunks);
      const VertexId hi =
          static_cast<VertexId>(uint64_t{num_nodes} * (c + 1) / chunks);
      auto it = std::lower_bound(
          half_edges.begin(), half_edges.end(), lo,
          [](const auto& e, VertexId node) { return e.first < node; });
      for (; it != half_edges.end() && it->first < hi; ++it) {
        offsets[it->first + 1]++;
      }
    });
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> neighbors(half_edges.size());
  // half_edges are sorted by (u, v), so neighbors are emitted in sorted
  // order per node by a linear pass; chunks are independent.
  const size_t fill_chunks =
      half_edges.size() < kParallelHalfEdgeCutoff ? 1 : HardwareThreads();
  ParallelFor(fill_chunks, [&](size_t c) {
    const size_t lo = half_edges.size() * c / fill_chunks;
    const size_t hi = half_edges.size() * (c + 1) / fill_chunks;
    for (size_t i = lo; i < hi; ++i) neighbors[i] = half_edges[i].second;
  });
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace

Graph GraphBuilder::Build() {
  // Relabel sparse ids densely. Sort the distinct ids so the relabeling is
  // deterministic regardless of edge order.
  std::vector<uint64_t> ids;
  ids.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    if (u != v) {  // self-loops never contribute a node on their own
      ids.push_back(u);
      ids.push_back(v);
    }
  }
  ParallelSort(ids);
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // Binary-search relabeling into the sorted distinct-id array: O(log n)
  // per endpoint, no hash map, and trivially parallel. Self-loops become a
  // sentinel pair that sorts past every real node and is trimmed below.
  constexpr VertexId kLoop = static_cast<VertexId>(-1);
  const size_t raw = edges_.size();
  std::vector<std::pair<VertexId, VertexId>> half(raw * 2);
  const size_t chunks =
      raw < kParallelHalfEdgeCutoff / 2 ? 1 : HardwareThreads();
  ParallelFor(chunks, [&](size_t c) {
    const size_t lo = raw * c / chunks;
    const size_t hi = raw * (c + 1) / chunks;
    for (size_t i = lo; i < hi; ++i) {
      const auto [u, v] = edges_[i];
      if (u == v) {
        half[2 * i] = {kLoop, kLoop};
        half[2 * i + 1] = {kLoop, kLoop};
        continue;
      }
      const auto a = static_cast<VertexId>(
          std::lower_bound(ids.begin(), ids.end(), u) - ids.begin());
      const auto b = static_cast<VertexId>(
          std::lower_bound(ids.begin(), ids.end(), v) - ids.begin());
      half[2 * i] = {a, b};
      half[2 * i + 1] = {b, a};
    }
  });
  edges_.clear();
  edges_.shrink_to_fit();
  half.erase(std::remove(half.begin(), half.end(),
                         std::pair<VertexId, VertexId>{kLoop, kLoop}),
             half.end());
  return AssembleCsr(static_cast<VertexId>(ids.size()), half);
}

Graph FromEdges(VertexId num_nodes,
                const std::vector<std::pair<VertexId, VertexId>>& edges) {
  std::vector<std::pair<VertexId, VertexId>> half;
  half.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    half.emplace_back(u, v);
    half.emplace_back(v, u);
  }
  return AssembleCsr(num_nodes, half);
}

Graph LargestConnectedComponent(const Graph& g) {
  const VertexId n = g.NumNodes();
  if (n == 0) return Graph();

  constexpr VertexId kUnassigned = static_cast<VertexId>(-1);
  std::vector<VertexId> component(n, kUnassigned);
  std::vector<uint64_t> component_size;
  std::vector<VertexId> stack;

  for (VertexId s = 0; s < n; ++s) {
    if (component[s] != kUnassigned) continue;
    const VertexId c = static_cast<VertexId>(component_size.size());
    component_size.push_back(0);
    stack.push_back(s);
    component[s] = c;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      component_size[c]++;
      for (VertexId w : g.Neighbors(v)) {
        if (component[w] == kUnassigned) {
          component[w] = c;
          stack.push_back(w);
        }
      }
    }
  }

  const VertexId best =
      static_cast<VertexId>(std::max_element(component_size.begin(),
                                             component_size.end()) -
                            component_size.begin());

  // Dense relabeling of the winning component, preserving id order.
  std::vector<VertexId> new_id(n, kUnassigned);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (component[v] == best) new_id[v] = next++;
  }

  std::vector<std::pair<VertexId, VertexId>> half;
  // Two half-edges are kept per surviving undirected edge, so 2|E| bounds
  // the final size; reserving |E| (the old code) guaranteed a mid-loop
  // reallocation on any graph whose LCC holds more than half the edges.
  half.reserve(2 * g.NumEdges());
  for (VertexId v = 0; v < n; ++v) {
    if (component[v] != best) continue;
    for (VertexId w : g.Neighbors(v)) {
      half.emplace_back(new_id[v], new_id[w]);
    }
  }
  return AssembleCsr(next, half);
}

Graph RelabelByDegree(const Graph& g) {
  const VertexId n = g.NumNodes();
  if (n == 0) return Graph();

  // order[new] = old, highest degree first, ties by old id for determinism.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const uint32_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });
  std::vector<VertexId> new_id(n);
  for (VertexId i = 0; i < n; ++i) new_id[order[i]] = i;

  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId i = 0; i < n; ++i) offsets[i + 1] = g.Degree(order[i]);
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> neighbors(g.RawNeighbors().size());
  // Each new node owns a disjoint slice; remap + per-list sort in parallel.
  const size_t chunks = std::min<size_t>(
      neighbors.size() < kParallelHalfEdgeCutoff ? 1 : HardwareThreads(), n);
  ParallelFor(chunks, [&](size_t c) {
    const VertexId lo = static_cast<VertexId>(uint64_t{n} * c / chunks);
    const VertexId hi = static_cast<VertexId>(uint64_t{n} * (c + 1) / chunks);
    for (VertexId i = lo; i < hi; ++i) {
      VertexId* out = neighbors.data() + offsets[i];
      size_t j = 0;
      for (VertexId w : g.Neighbors(order[i])) out[j++] = new_id[w];
      std::sort(out, out + j);
    }
  });
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace grw
