// Restricted-access facade modeling the crawling setting of the paper.
//
// The paper's motivating scenario (Section 1): the graph is only reachable
// through OSN APIs that return a user's friend list. RestrictedAccess wraps
// a Graph behind exactly that interface and counts API calls, so examples
// and benches can report crawl cost (the paper's adapted wedge sampling
// costs 3 API calls per step vs 1 for the framework, Section 6.3.3).
//
// In a real deployment the backend would issue HTTP requests; here the
// backend is the in-memory Graph, which preserves the access pattern —
// the only thing the estimators are allowed to depend on.

#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "graph/graph.h"
#include "util/rng.h"

namespace grw {

/// Neighbor-list-only view of a graph with API-call accounting.
/// Thread-safe: one facade may be shared across the engine's chains; the
/// call counter is a relaxed atomic (the count is a statistic, not a
/// synchronization point, so contended increments stay cheap).
class RestrictedAccess {
 public:
  explicit RestrictedAccess(const Graph& g) : g_(&g) {}

  /// Degree of v (one API call — profile fetch).
  uint32_t Degree(VertexId v) const {
    Count();
    return g_->Degree(v);
  }

  /// Full friend list of v (one API call).
  std::span<const VertexId> Neighbors(VertexId v) const {
    Count();
    return g_->Neighbors(v);
  }

  /// Uniform random neighbor of v (one API call; OSN APIs with paging
  /// support this with a random page index). Requires Degree(v) > 0.
  VertexId RandomNeighbor(VertexId v, Rng& rng) const {
    Count();
    return g_->Neighbor(v, static_cast<uint32_t>(
                               rng.UniformInt(g_->Degree(v))));
  }

  /// Adjacency test between two already-visited nodes. Costs one call:
  /// implemented client-side by searching the cached friend list, but we
  /// account for the fetch of that list conservatively.
  bool HasEdge(VertexId u, VertexId v) const {
    Count();
    return g_->HasEdge(u, v);
  }

  /// Number of nodes. NOT available through real APIs; exposed for
  /// seeding the walk in simulations only.
  VertexId NumNodesForSeeding() const { return g_->NumNodes(); }

  /// O(1): a single relaxed load.
  uint64_t ApiCalls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  void ResetApiCalls() { calls_.store(0, std::memory_order_relaxed); }

 private:
  void Count() const { calls_.fetch_add(1, std::memory_order_relaxed); }

  const Graph* g_;
  mutable std::atomic<uint64_t> calls_{0};
};

}  // namespace grw
