// Graph access policies: the crawling setting of the paper as a *static*
// dispatch family.
//
// The paper's motivating scenario (Section 1): the graph is only reachable
// through OSN APIs that answer "give me v's friend list" at real cost per
// query. Everything the estimation stack reads from a graph goes through
// four accessors — Degree, Neighbors, Neighbor, HasEdge — so the stack
// (walkers, sample window, CSS weights, estimator) is templated on the
// access policy G:
//
//   FullAccess   = Graph itself. The template instantiated with Graph *is*
//                  the pre-policy code, byte for byte: zero wrapper, zero
//                  overhead, bit-identical estimates (asserted in tests and
//                  gated in CI by bench_access --check-identical).
//   CrawlAccess  = crawl semantics over an in-memory Graph backend: every
//                  read is served from a bounded LRU cache of fetched
//                  neighbor lists; a miss is one API call (counted, and
//                  optionally charged a simulated latency); distinct-node
//                  fetches are tracked separately from re-fetches of
//                  evicted nodes so the paper's cost model (distinct
//                  queries) and the real network cost (all fetches) are
//                  both observable. An optional query budget marks the
//                  access as exhausted, which the estimator's run loop
//                  checks — the check compiles away entirely for
//                  FullAccess.
//
// RestrictedAccess (bottom of this file) predates the policy family and is
// kept for the baselines/examples that share one facade across threads: it
// is thread-safe and counts API calls, but has no cache, no latency model
// and no budget. New code should prefer CrawlAccess.

#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/fault.h"
#include "util/rng.h"

namespace grw {

/// The zero-overhead end of the policy family: full access *is* the graph.
/// Components templated on the access type and instantiated with Graph
/// compile to exactly the code they had before the policy existed.
using FullAccess = Graph;

/// Whether access policy G carries a distinct-query budget its run loop
/// must poll (CrawlAccess does). For Graph this is false and every budget
/// check guarded by it compiles away. Shared by the scalar and batched
/// estimator run loops.
template <class G>
constexpr bool kAccessHasQueryBudget = requires(const G& g) {
  { g.BudgetExhausted() } -> std::convertible_to<bool>;
};

/// Crawl-cost accounting. Additive across independent crawlers (the engine
/// merges per-chain stats in chain order).
struct CrawlStats {
  /// Neighbor-list fetches actually issued to the API (= cache misses).
  uint64_t fetches = 0;
  /// Unique nodes fetched at least once — the paper's cost model charges
  /// these: a real crawler keeps everything it ever downloaded, so only
  /// the first fetch of a node hits the remote API budget.
  uint64_t distinct_fetches = 0;
  /// Reads served from the LRU cache (no API call).
  uint64_t cache_hits = 0;
  /// Cache entries dropped to make room (each may cause a later re-fetch).
  uint64_t evictions = 0;
  /// Accumulated simulated API latency (latency_us per fetch).
  double simulated_latency_us = 0.0;
  /// Fetch attempts that failed transiently under the failure model
  /// (rate limits, 5xx, flaky transport — each failed attempt counts).
  uint64_t transient_failures = 0;
  /// Failed attempts answered by retrying (<= transient_failures).
  uint64_t retries = 0;
  /// Fetches whose bounded retry budget ran out; the crawler escalates
  /// to its slow reliable path (cost charged to backoff_latency_us), so
  /// the data still arrives and estimates are unaffected.
  uint64_t giveups = 0;
  /// Accumulated simulated retry-backoff wait (exponential + jitter).
  /// Like simulated_latency_us: virtual, never slept.
  double backoff_latency_us = 0.0;

  /// Fetches repeated because the LRU evicted the node in between.
  uint64_t Refetches() const { return fetches - distinct_fetches; }
  /// Fraction of all reads served from the cache.
  double HitRate() const {
    const uint64_t total = cache_hits + fetches;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }
  void MergeFrom(const CrawlStats& other) {
    fetches += other.fetches;
    distinct_fetches += other.distinct_fetches;
    cache_hits += other.cache_hits;
    evictions += other.evictions;
    simulated_latency_us += other.simulated_latency_us;
    transient_failures += other.transient_failures;
    retries += other.retries;
    giveups += other.giveups;
    backoff_latency_us += other.backoff_latency_us;
  }
};

/// Neighbor-list-only crawl view of a Graph with per-query accounting and
/// a bounded LRU neighbor cache.
///
/// NOT thread-safe: one instance per chain/crawler (the engine gives every
/// chain its own). The read API mirrors Graph's, so any component
/// templated on the access policy accepts either. All reads are const;
/// cache and counters are mutable interior state, exactly like a real
/// crawler's local storage.
class CrawlAccess {
 public:
  struct Options {
    /// LRU capacity in cached neighbor lists; 0 = unbounded (never evict).
    uint64_t cache_entries = 0;
    /// Simulated latency charged per API fetch, in microseconds. Purely
    /// virtual: accumulated in stats, never slept, so simulations stay
    /// fast and deterministic.
    double latency_us = 0.0;
    /// Distinct-fetch budget; 0 = unlimited. Once reached,
    /// BudgetExhausted() turns true and the estimator run loop stops the
    /// chain (reads keep working — the budget is a stopping signal, not a
    /// hard fault).
    uint64_t query_budget = 0;

    /// Transient-fetch-failure model: real crawl APIs rate-limit and
    /// 5xx, and a crawler answers with bounded retries under
    /// exponential backoff plus jitter. Like latency_us this is a COST
    /// model, not a data model: a failed attempt charges retries /
    /// giveups / backoff_latency_us in CrawlStats (after the retry
    /// budget the crawler is modeled as escalating to its slow reliable
    /// path), but the fetch always ultimately serves correct bytes — so
    /// estimates stay bit-identical to a failure-free run, at any
    /// thread count, and the chaos suite can assert exactness.
    struct FailureModel {
      /// Per-attempt transient failure probability; 0 disables the model.
      double fail_prob = 0.0;
      /// Retry attempts before giving up on the fast path.
      int max_retries = 4;
      /// First backoff wait; doubles per retry: base * 2^attempt.
      double backoff_base_us = 1000.0;
      /// Cap on a single backoff wait (also the modeled cost of the
      /// slow-path fallback after a giveup).
      double backoff_max_us = 1e6;
      /// Uniform extra wait fraction in [0, jitter) per backoff, drawn
      /// from the failure RNG (decorrelates retry storms).
      double jitter = 0.5;
      /// Seed of the PRIVATE failure RNG stream. The engine derives one
      /// per chain from the chain's global index, so failure schedules
      /// replay exactly at any thread count; the walk RNG is never
      /// consumed (consuming it would perturb the walk itself).
      uint64_t seed = 0;
    };
    FailureModel failure;
  };

  CrawlAccess(const Graph& g, const Options& options);

  /// Number of nodes/edges. NOT available through real crawl APIs;
  /// exposed for walk seeding and constructor validation in simulations
  /// (matches RestrictedAccess::NumNodesForSeeding).
  VertexId NumNodes() const { return g_->NumNodes(); }
  uint64_t NumEdges() const { return g_->NumEdges(); }

  /// Degree of v. Revealed by v's neighbor list: fetches v on a miss.
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(Fetch(v).size());
  }

  /// Full friend list of v (sorted), fetching on a miss.
  std::span<const VertexId> Neighbors(VertexId v) const { return Fetch(v); }

  /// The i-th neighbor of v (0-based, sorted order).
  VertexId Neighbor(VertexId v, uint32_t i) const { return Fetch(v)[i]; }

  /// Adjacency test, answered client-side by searching a fetched friend
  /// list: free (a cache hit) when either endpoint's list is cached,
  /// otherwise one API call for u's list. Identical result to
  /// Graph::HasEdge for every input.
  bool HasEdge(VertexId u, VertexId v) const {
    VertexId probe = u;
    VertexId other = v;
    if (slot_of_[u] == kNoSlot && slot_of_[v] != kNoSlot) {
      probe = v;
      other = u;
    }
    const std::span<const VertexId> list = Fetch(probe);
    return std::binary_search(list.begin(), list.end(), other);
  }

  /// True iff v's neighbor list is currently in the cache (tests).
  bool Cached(VertexId v) const { return slot_of_[v] != kNoSlot; }

  /// True once the distinct-fetch budget (if any) has been reached.
  bool BudgetExhausted() const {
    return opt_.query_budget > 0 &&
           stats_.distinct_fetches >= opt_.query_budget;
  }

  const CrawlStats& stats() const { return stats_; }
  const Options& options() const { return opt_; }
  /// Effective LRU capacity after clamping (0/oversize -> NumNodes()).
  uint32_t CacheCapacity() const { return capacity_; }

  /// Starts a new accounting phase: zeroes the counters and the
  /// distinct-fetch registry, keeping the cached lists (reads of cached
  /// nodes stay free, and a cache miss counts as distinct again).
  void ResetStats();
  /// Drops every cached list and the distinct-fetch registry, then zeroes
  /// the counters: a fresh crawler against the same backend.
  void ResetCache();

 private:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  // Rolls the failure model for one API fetch: draws per-attempt
  // failures from the private failure RNG, charging retries, backoff
  // waits and (past the retry budget) one giveup to stats_. Cold path,
  // defined in access.cpp.
  void SimulateTransientFailures() const;
  // Books one chaos-injected transient failure + successful retry.
  void RecordInjectedFailure() const;

  // The one place queries happen: serves v's list from the cache (LRU
  // touch) or issues a counted API fetch and inserts it, evicting the
  // least-recently-used list when at capacity.
  std::span<const VertexId> Fetch(VertexId v) const {
    const uint32_t slot = slot_of_[v];
    if (slot != kNoSlot) {
      ++stats_.cache_hits;
      // Recency order only matters if something can ever be evicted; the
      // unbounded cache skips the list surgery on this hottest path.
      if (!never_evicts_ && head_ != slot) {
        Unlink(slot);
        PushFront(slot);
      }
      return g_->Neighbors(v);
    }
    ++stats_.fetches;
    stats_.simulated_latency_us += opt_.latency_us;
    // Cold branch off the miss path; fail_prob == 0.0 (the default)
    // costs one predictable compare per miss. The chaos site is the
    // literal `false` in normal builds (see util/fault.h).
    if (opt_.failure.fail_prob > 0.0) SimulateTransientFailures();
    if (GRW_FAULT("crawl.fetch")) RecordInjectedFailure();
    const uint64_t bit = 1ULL << (v & 63u);
    if ((ever_fetched_[v >> 6] & bit) == 0) {
      ever_fetched_[v >> 6] |= bit;
      ++stats_.distinct_fetches;
    }
    uint32_t s;
    if (used_ < capacity_) {
      s = used_++;
    } else {
      s = tail_;
      Unlink(s);
      slot_of_[node_of_[s]] = kNoSlot;
      ++stats_.evictions;
    }
    node_of_[s] = v;
    slot_of_[v] = s;
    PushFront(s);
    return g_->Neighbors(v);
  }

  void Unlink(uint32_t slot) const {
    const uint32_t p = prev_[slot];
    const uint32_t n = next_[slot];
    if (p != kNoSlot) next_[p] = n; else head_ = n;
    if (n != kNoSlot) prev_[n] = p; else tail_ = p;
  }

  void PushFront(uint32_t slot) const {
    prev_[slot] = kNoSlot;
    next_[slot] = head_;
    if (head_ != kNoSlot) prev_[head_] = slot; else tail_ = slot;
    head_ = slot;
  }

  const Graph* g_;
  Options opt_;
  uint32_t capacity_;
  bool never_evicts_ = false;  // capacity_ covers every node
  mutable CrawlStats stats_;
  mutable std::vector<uint32_t> slot_of_;      // node -> cache slot
  mutable std::vector<VertexId> node_of_;      // slot -> node
  mutable std::vector<uint32_t> prev_, next_;  // LRU list over slots
  mutable uint32_t head_ = kNoSlot;            // most recently used
  mutable uint32_t tail_ = kNoSlot;            // least recently used
  mutable uint32_t used_ = 0;
  mutable std::vector<uint64_t> ever_fetched_;  // distinct-fetch bitset
  // Private stream for the failure model; reseeded by ResetCache() so a
  // fresh crawler replays the same failure schedule.
  mutable Rng fail_rng_;
};

/// Neighbor-list-only view of a graph with API-call accounting.
/// Thread-safe: one facade may be shared across the engine's chains; the
/// counters are relaxed atomics (statistics, not synchronization points).
/// No cache, latency model or budget — use CrawlAccess for those.
class RestrictedAccess {
 public:
  explicit RestrictedAccess(const Graph& g)
      : g_(&g),
        seen_words_((g.NumNodes() + 63) / 64) {
    for (auto& word : seen_words_) word.store(0, std::memory_order_relaxed);
  }

  /// Degree of v (one API call — profile fetch).
  uint32_t Degree(VertexId v) const {
    Count(v);
    return g_->Degree(v);
  }

  /// Full friend list of v (one API call).
  std::span<const VertexId> Neighbors(VertexId v) const {
    Count(v);
    return g_->Neighbors(v);
  }

  /// Uniform random neighbor of v (one API call; OSN APIs with paging
  /// support this with a random page index). Requires Degree(v) > 0.
  VertexId RandomNeighbor(VertexId v, Rng& rng) const {
    Count(v);
    return g_->Neighbor(v, static_cast<uint32_t>(
                               rng.UniformInt(g_->Degree(v))));
  }

  /// Adjacency test between two already-visited nodes. Costs one call to
  /// u's friend list: implemented client-side by searching that list, but
  /// we account for its fetch conservatively.
  bool HasEdge(VertexId u, VertexId v) const {
    Count(u);
    return g_->HasEdge(u, v);
  }

  /// Number of nodes. NOT available through real APIs; exposed for
  /// seeding the walk in simulations only.
  VertexId NumNodesForSeeding() const { return g_->NumNodes(); }

  /// Distinct nodes queried — the paper's cost model: a crawler keeps
  /// every list it ever fetched, so repeat queries to the same node are
  /// free. (Used to charge repeats too; RawQueryCount preserves that.)
  uint64_t QueryCount() const {
    return distinct_.load(std::memory_order_relaxed);
  }

  /// Every API call including repeats to the same node. O(1) relaxed load.
  uint64_t RawQueryCount() const {
    return raw_.load(std::memory_order_relaxed);
  }

  /// Zeroes both counters and the distinct-node registry. Not safe
  /// concurrently with counting calls.
  void ResetQueryCounts() {
    raw_.store(0, std::memory_order_relaxed);
    distinct_.store(0, std::memory_order_relaxed);
    for (auto& word : seen_words_) word.store(0, std::memory_order_relaxed);
  }

 private:
  void Count(VertexId v) const {
    raw_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t bit = 1ULL << (v & 63u);
    // fetch_or tells us atomically whether this thread set the bit first,
    // so the distinct count is exact even under contention.
    const uint64_t before =
        seen_words_[v >> 6].fetch_or(bit, std::memory_order_relaxed);
    if ((before & bit) == 0) {
      distinct_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const Graph* g_;
  mutable std::atomic<uint64_t> raw_{0};
  mutable std::atomic<uint64_t> distinct_{0};
  mutable std::vector<std::atomic<uint64_t>> seen_words_;
};

}  // namespace grw
