// Edge-list I/O in SNAP text format.
//
// The paper evaluates on SNAP / KONECT edge lists; this loader accepts the
// same files so the benches can be re-run on the original datasets when
// available (`--graph <path>`). Lines starting with '#' or '%' are comments;
// each data line is "u v" (whitespace separated, any integer ids).

#pragma once

#include <string>

#include "graph/graph.h"

namespace grw {

/// Loads an edge list, simplifies it, and (optionally) restricts to the
/// largest connected component — the paper's preprocessing.
/// Throws std::runtime_error if the file cannot be read or contains no
/// valid edges.
Graph LoadEdgeList(const std::string& path, bool largest_cc = true);

/// Writes g as "u v" lines (one per undirected edge, u < v).
/// Throws std::runtime_error on I/O failure.
void SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace grw
