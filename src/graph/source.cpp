#include "graph/source.h"

#include <stdexcept>

#include "graph/builder.h"
#include "graph/format.h"
#include "graph/io.h"

namespace grw {

GraphSource GraphSource::Open(const std::string& path,
                              const OpenOptions& options) {
  GraphSource source;
  source.path_ = path;

  if (IsShardManifestPath(path)) {
    source.kind_ = GraphSourceKind::kSharded;
    ShardManifest manifest = LoadShardManifest(path, options.verify);
    source.checksum_ = ShardContentChecksum(manifest);
    source.relabeled_ = manifest.DegreeRelabeled();
    ShardStore::Options store_options;
    store_options.resident_budget_bytes = options.resident_budget_bytes;
    store_options.verify_on_fault = options.verify_on_fault;
    source.store_ =
        std::make_shared<ShardStore>(std::move(manifest), store_options);
    return source;
  }

  if (IsGraphBinaryFile(path)) {
    source.kind_ = GraphSourceKind::kBinary;
    const GrwbInfo info = InspectGraphBinary(path);
    source.checksum_ = info.data_checksum;
    source.relabeled_ = info.DegreeRelabeled();
    source.graph_ = LoadGraphBinary(path, options.verify);
    if (options.build_index) source.graph_.BuildAdjacencyIndex();
    return source;
  }

  source.kind_ = GraphSourceKind::kText;
  source.graph_ = LoadEdgeList(path, options.largest_cc);
  if (options.relabel_degree) {
    source.graph_ = RelabelByDegree(source.graph_);
    source.relabeled_ = true;
  }
  if (options.build_index) source.graph_.BuildAdjacencyIndex();
  return source;
}

GraphSource GraphSource::FromGraph(Graph g, const std::string& label) {
  GraphSource source;
  source.kind_ = GraphSourceKind::kText;
  source.path_ = label;
  source.graph_ = std::move(g);
  return source;
}

const Graph& GraphSource::graph() const {
  if (kind_ == GraphSourceKind::kSharded) {
    throw std::logic_error(
        "GraphSource::graph(): '" + path_ +
        "' is a sharded out-of-core graph; read it through shards() / "
        "ShardedAccess (or re-materialize it with `grw convert`)");
  }
  return graph_;
}

const ShardStore& GraphSource::shards() const {
  if (kind_ != GraphSourceKind::kSharded) {
    throw std::logic_error("GraphSource::shards(): '" + path_ +
                           "' is not a sharded graph");
  }
  return *store_;
}

VertexId GraphSource::NumNodes() const {
  return sharded() ? store_->NumNodes() : graph_.NumNodes();
}

uint64_t GraphSource::NumEdges() const {
  return sharded() ? store_->NumEdges() : graph_.NumEdges();
}

std::string GraphSource::Summary() const {
  std::string out = "n=" + std::to_string(NumNodes()) +
                    " m=" + std::to_string(NumEdges());
  switch (kind_) {
    case GraphSourceKind::kText:
      out += " kind=text";
      break;
    case GraphSourceKind::kBinary:
      out += " kind=grwb";
      break;
    case GraphSourceKind::kSharded:
      out += " kind=sharded shards=" + std::to_string(store_->NumShards());
      break;
  }
  return out;
}

}  // namespace grw
