// Budget-driven residency over a sharded graph (graph/sharding.h), and
// the out-of-core member of the static-dispatch access-policy family
// (graph/access.h).
//
// Two layers, mirroring the engine's sharing model:
//
//   ShardStore    — ONE per graph, thread-safe. Owns the manifest and an
//                   LRU of mapped shards under a resident-byte budget.
//                   Acquire(shard) returns a shared_ptr pin: eviction
//                   drops the store's reference and madvises the pages
//                   away, but a chain holding a pin keeps the mapping
//                   valid (evicted pages refault from disk — slower,
//                   never wrong). Counters land in ShardStats.
//   ShardedAccess — one per chain, NOT thread-safe, cheap. Mirrors the
//                   Graph read API (NumNodes/Degree/Neighbors/Neighbor/
//                   HasEdge) over a tiny MRU pin cache, so consecutive
//                   reads inside one shard touch no lock at all; only a
//                   shard *switch* goes back to the store.
//
// Every accessor returns byte-identical answers to the same read against
// the monolithic Graph — the CSR slices ARE the same arrays, partitioned
// — so estimates through ShardedAccess are bit-identical to full-access
// runs at any budget and any thread count (tests/sharded_engine_test.cpp
// gates this). The budget changes only WHEN pages are resident, never
// what they contain.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/sharding.h"
#include "util/sync.h"

namespace grw {

/// Residency accounting, additive only in the sense of one store per
/// graph: the engine surfaces a snapshot in EngineResult.
struct ShardStats {
  /// Shard loads (mmap + header validation) — cold or re-faulted.
  uint64_t faults = 0;
  /// Acquire() calls answered by an already-resident shard.
  uint64_t hits = 0;
  /// Shards pushed out by the byte budget (pages madvised away).
  uint64_t evictions = 0;
  /// Mapped shard bytes currently charged against the budget.
  uint64_t resident_bytes = 0;
  /// High-water mark of resident_bytes over the store's lifetime.
  uint64_t peak_resident_bytes = 0;
  /// Shards currently resident.
  uint64_t resident_shards = 0;
  /// The configured budget (0 = unbounded), echoed for reporting.
  uint64_t budget_bytes = 0;

  double HitRate() const {
    const uint64_t total = hits + faults;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe shard residency manager. Non-movable (chains hold
/// pointers to it); construct once per graph and share by reference.
class ShardStore {
 public:
  struct Options {
    /// Resident-byte budget across all mapped shards; 0 = unbounded
    /// (every shard stays mapped once touched — the monolithic working
    /// set, arrived at lazily). A single shard larger than the budget
    /// is still admitted — the walk could not proceed otherwise — so
    /// the effective floor is max(budget, largest shard).
    uint64_t resident_budget_bytes = 0;
    /// Full payload verification (checksum + structural scan) on every
    /// shard fault, not just the first: the out-of-core analogue of
    /// LoadGraphBinary(verify_checksum). Off by default — faults are
    /// the hot path.
    bool verify_on_fault = false;
  };

  /// Takes a validated manifest (LoadShardManifest). Eagerly maps and
  /// header-checks every shard once (catching missing/stale shards at
  /// open, like the monolithic loader's eager header validation), then
  /// unmaps them: the store starts empty, nothing charged to the budget.
  ShardStore(ShardManifest manifest, const Options& options);

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  VertexId NumNodes() const {
    return static_cast<VertexId>(manifest_.total_nodes);
  }
  uint64_t NumEdges() const { return manifest_.total_half_edges / 2; }
  uint32_t NumShards() const { return manifest_.NumShards(); }
  const ShardManifest& manifest() const { return manifest_; }

  /// The shard holding vertex v.
  uint32_t ShardOf(VertexId v) const { return manifest_.ShardOf(v); }
  /// Vertex range [first, end) of shard s.
  std::pair<VertexId, VertexId> ShardRange(uint32_t s) const {
    const ShardInfo& info = manifest_.shards[s];
    return {static_cast<VertexId>(info.first_node),
            static_cast<VertexId>(info.first_node + info.num_rows)};
  }

  /// Pins shard s resident and returns it. The pin (shared ownership)
  /// stays readable across a later eviction; the store merely stops
  /// charging evicted shards to its budget and drops their pages.
  std::shared_ptr<const MappedShard> Acquire(uint32_t s) const
      GRW_EXCLUDES(mu_);

  /// True iff shard s is currently resident (tests).
  bool Resident(uint32_t s) const GRW_EXCLUDES(mu_);

  ShardStats stats() const GRW_EXCLUDES(mu_);
  const Options& options() const { return options_; }

 private:
  void EvictOverBudgetLocked(uint32_t keep) const GRW_REQUIRES(mu_);

  const ShardManifest manifest_;
  const Options options_;

  // LRU over resident shards, CrawlAccess-style intrusive lists indexed
  // by shard id (kNone = not resident / list end).
  static constexpr uint32_t kNone = 0xFFFFFFFFu;
  mutable Mutex mu_;
  mutable std::vector<std::shared_ptr<const MappedShard>> resident_
      GRW_GUARDED_BY(mu_);
  mutable std::vector<uint32_t> prev_ GRW_GUARDED_BY(mu_);
  mutable std::vector<uint32_t> next_ GRW_GUARDED_BY(mu_);
  mutable uint32_t head_ GRW_GUARDED_BY(mu_) = kNone;  // most recent
  mutable uint32_t tail_ GRW_GUARDED_BY(mu_) = kNone;  // least recent
  mutable ShardStats stats_ GRW_GUARDED_BY(mu_);
};

/// Per-chain read facade over a ShardStore, shaped exactly like Graph's
/// read API so the templated estimation stack (walkers, sample window,
/// CSS, estimator) accepts it via static dispatch. NOT thread-safe: one
/// instance per chain, like CrawlAccess. Holds up to kPins shard pins in
/// MRU order; the common case — every read of a G(d) step landing in the
/// walker's current shard(s) — is a couple of range compares, no lock.
class ShardedAccess {
 public:
  explicit ShardedAccess(const ShardStore& store) : store_(&store) {}

  VertexId NumNodes() const { return store_->NumNodes(); }
  uint64_t NumEdges() const { return store_->NumEdges(); }

  uint32_t Degree(VertexId v) const { return Shard(v).Degree(v); }

  /// Sorted neighbors of v (global ids). The span stays valid while this
  /// access holds the shard pinned — i.e. at least until kPins other
  /// shards have been touched; the walk layer only holds spans within
  /// one step, well inside that window.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return Shard(v).Neighbors(v);
  }

  VertexId Neighbor(VertexId v, uint32_t i) const {
    return Shard(v).Neighbors(v)[i];
  }

  /// Binary search over the lower-degree endpoint's list — the same
  /// tie-breaking as Graph::HasEdgeBinarySearch, and the same boolean
  /// as Graph::HasEdge for every input.
  bool HasEdge(VertexId u, VertexId v) const {
    if (Degree(u) > Degree(v)) std::swap(u, v);
    const std::span<const VertexId> list = Neighbors(u);
    return std::binary_search(list.begin(), list.end(), v);
  }

  const ShardStore& store() const { return *store_; }

 private:
  static constexpr int kPins = 4;

  const MappedShard& Shard(VertexId v) const {
    // MRU scan: slot 0 is the hottest (the walker's current shard).
    for (int i = 0; i < kPins; ++i) {
      const MappedShard* shard = pins_[i].get();
      if (shard != nullptr && v >= shard->first_node() &&
          v < shard->end_node()) {
        if (i != 0) Promote(i);
        return *pins_[0];
      }
    }
    return Miss(v);
  }

  void Promote(int i) const {
    std::shared_ptr<const MappedShard> hit = std::move(pins_[i]);
    for (int j = i; j > 0; --j) pins_[j] = std::move(pins_[j - 1]);
    pins_[0] = std::move(hit);
  }

  // Cold path, out of line: ask the store, install at slot 0.
  const MappedShard& Miss(VertexId v) const;

  const ShardStore* store_;
  mutable std::shared_ptr<const MappedShard> pins_[kPins];
};

}  // namespace grw
