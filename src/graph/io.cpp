#include "graph/io.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "graph/builder.h"

namespace grw {

namespace {

// Malformed input must fail loudly: a silently dropped line or an id from
// wrapped strtoull output corrupts every downstream estimate in a way no
// test downstream can attribute to the file. The thrown message carries
// path, 1-based line number, and the offending line.
// Closes the stream when a parse error propagates out of LoadEdgeList.
struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

[[noreturn]] void BadLine(const std::string& path, uint64_t line_no,
                          const char* why, const char* s, const char* end) {
  std::string line(s, static_cast<size_t>(end - s));
  constexpr size_t kMaxEcho = 60;
  if (line.size() > kMaxEcho) line = line.substr(0, kMaxEcho) + "...";
  throw std::runtime_error("LoadEdgeList: " + path + ":" +
                           std::to_string(line_no) + ": " + why + ": \"" +
                           line + "\"");
}

}  // namespace

Graph LoadEdgeList(const std::string& path, bool largest_cc) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("LoadEdgeList: cannot open " + path);
  }
  FileCloser closer{f};

  GraphBuilder builder;
  // Buffered manual parse: ~5x faster than iostream on multi-million-edge
  // files, which matters when re-running benches on real SNAP data.
  constexpr size_t kBufSize = 1 << 20;
  std::vector<char> buf(kBufSize);
  std::string carry;
  uint64_t line_no = 0;
  // [s, end) is one line; *end is always '\n' or '\0', so strtoull cannot
  // scan past the line.
  auto parse_line = [&](const char* s, const char* end) {
    ++line_no;
    const char* const line_start = s;
    while (s < end && std::isspace(static_cast<unsigned char>(*s))) ++s;
    if (s >= end || *s == '#' || *s == '%') return;
    // strtoull silently wraps negative input ("-5" parses to 2^64-5);
    // reject signs up front so such ids cannot masquerade as valid.
    if (*s == '-' || *s == '+') {
      BadLine(path, line_no, "invalid node id (sign not allowed)", line_start,
              end);
    }
    char* next = nullptr;
    errno = 0;
    const uint64_t u = std::strtoull(s, &next, 10);
    if (next == s) {
      BadLine(path, line_no, "expected two integer node ids", line_start, end);
    }
    if (errno == ERANGE) {
      BadLine(path, line_no, "node id overflows uint64", line_start, end);
    }
    s = next;
    // Skip the full isspace set here: strtoull itself skips \v and \f, so
    // a narrower skip would let a sign hide behind them and bypass the
    // check below ("1 \v-2" must throw, not wrap).
    while (s < end && std::isspace(static_cast<unsigned char>(*s))) ++s;
    if (s < end && (*s == '-' || *s == '+')) {
      BadLine(path, line_no, "invalid node id (sign not allowed)", line_start,
              end);
    }
    errno = 0;
    const uint64_t v = std::strtoull(s, &next, 10);
    if (next == s) {
      BadLine(path, line_no, "expected two integer node ids", line_start, end);
    }
    if (errno == ERANGE) {
      BadLine(path, line_no, "node id overflows uint64", line_start, end);
    }
    s = next;
    while (s < end && std::isspace(static_cast<unsigned char>(*s))) ++s;
    if (s < end) {
      BadLine(path, line_no, "trailing garbage after edge", line_start, end);
    }
    builder.AddEdge(u, v);
  };

  while (true) {
    const size_t got = std::fread(buf.data(), 1, kBufSize, f);
    if (got == 0) break;
    size_t start = 0;
    for (size_t i = 0; i < got; ++i) {
      if (buf[i] != '\n') continue;
      if (!carry.empty()) {
        carry.append(buf.data() + start, i - start);
        parse_line(carry.data(), carry.data() + carry.size());
        carry.clear();
      } else {
        parse_line(buf.data() + start, buf.data() + i);
      }
      start = i + 1;
    }
    carry.append(buf.data() + start, got - start);
  }
  if (!carry.empty()) parse_line(carry.data(), carry.data() + carry.size());

  if (builder.NumRawEdges() == 0) {
    throw std::runtime_error("LoadEdgeList: no edges in " + path);
  }
  Graph g = builder.Build();
  return largest_cc ? LargestConnectedComponent(g) : g;
}

void SaveEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("SaveEdgeList: cannot open " + path);
  }
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) std::fprintf(f, "%u %u\n", u, v);
    }
  }
  if (std::fclose(f) != 0) {
    throw std::runtime_error("SaveEdgeList: write failure on " + path);
  }
}

}  // namespace grw
