#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "graph/builder.h"

namespace grw {

Graph LoadEdgeList(const std::string& path, bool largest_cc) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("LoadEdgeList: cannot open " + path);
  }

  GraphBuilder builder;
  // Buffered manual parse: ~5x faster than iostream on multi-million-edge
  // files, which matters when re-running benches on real SNAP data.
  constexpr size_t kBufSize = 1 << 20;
  std::vector<char> buf(kBufSize);
  std::string carry;
  auto parse_line = [&builder](const char* s, const char* end) {
    while (s < end && std::isspace(static_cast<unsigned char>(*s))) ++s;
    if (s >= end || *s == '#' || *s == '%') return;
    char* next = nullptr;
    const uint64_t u = std::strtoull(s, &next, 10);
    if (next == s) return;
    s = next;
    const uint64_t v = std::strtoull(s, &next, 10);
    if (next == s) return;
    builder.AddEdge(u, v);
  };

  while (true) {
    const size_t got = std::fread(buf.data(), 1, kBufSize, f);
    if (got == 0) break;
    size_t start = 0;
    for (size_t i = 0; i < got; ++i) {
      if (buf[i] != '\n') continue;
      if (!carry.empty()) {
        carry.append(buf.data() + start, i - start);
        parse_line(carry.data(), carry.data() + carry.size());
        carry.clear();
      } else {
        parse_line(buf.data() + start, buf.data() + i);
      }
      start = i + 1;
    }
    carry.append(buf.data() + start, got - start);
  }
  std::fclose(f);
  if (!carry.empty()) parse_line(carry.data(), carry.data() + carry.size());

  if (builder.NumRawEdges() == 0) {
    throw std::runtime_error("LoadEdgeList: no edges in " + path);
  }
  Graph g = builder.Build();
  return largest_cc ? LargestConnectedComponent(g) : g;
}

void SaveEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("SaveEdgeList: cannot open " + path);
  }
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) std::fprintf(f, "%u %u\n", u, v);
    }
  }
  if (std::fclose(f) != 0) {
    throw std::runtime_error("SaveEdgeList: write failure on " + path);
  }
}

}  // namespace grw
