#include "graph/graph.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/adjacency.h"

namespace grw {

namespace {

// Backing for graphs built in memory: owns the CSR vectors the spans view.
struct VectorBacking : Graph::Backing {
  VectorBacking(std::vector<uint64_t> o, std::vector<VertexId> n)
      : offsets(std::move(o)), neighbors(std::move(n)) {}
  std::vector<uint64_t> offsets;
  std::vector<VertexId> neighbors;
};

}  // namespace

Graph::Graph(std::vector<uint64_t> offsets, std::vector<VertexId> neighbors) {
  assert(!offsets.empty());
  assert(offsets.back() == neighbors.size());
  auto backing =
      std::make_shared<VectorBacking>(std::move(offsets), std::move(neighbors));
  offsets_ = backing->offsets;
  neighbors_ = backing->neighbors;
  backing_ = std::move(backing);
  max_degree_ = std::make_shared<std::atomic<uint32_t>>(kUnknownDegree);
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumNodes() || v >= NumNodes() || u == v) return false;
  if (index_) return index_->HasEdge(u, v);
  return HasEdgeBinarySearch(u, v);
}

bool Graph::HasEdgeBinarySearch(VertexId u, VertexId v) const {
  if (u >= NumNodes() || v >= NumNodes() || u == v) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void Graph::BuildAdjacencyIndex() { BuildAdjacencyIndex({}); }

void Graph::BuildAdjacencyIndex(const AdjacencyIndexOptions& options) {
  index_ = std::make_shared<AdjacencyIndex>(*this, options);
}

uint32_t Graph::MaxDegree() const {
  if (max_degree_) {
    const uint32_t cached = max_degree_->load(std::memory_order_relaxed);
    if (cached != kUnknownDegree) return cached;
  }
  uint32_t best = 0;
  for (VertexId v = 0; v < NumNodes(); ++v) best = std::max(best, Degree(v));
  if (max_degree_) max_degree_->store(best, std::memory_order_relaxed);
  return best;
}

uint64_t Graph::DegreeSquareSum() const {
  uint64_t sum = 0;
  for (VertexId v = 0; v < NumNodes(); ++v) {
    const uint64_t d = Degree(v);
    sum += d * d;
  }
  return sum;
}

uint64_t Graph::WedgeCount() const {
  uint64_t sum = 0;
  for (VertexId v = 0; v < NumNodes(); ++v) {
    const uint64_t d = Degree(v);
    sum += d * (d - 1) / 2;
  }
  return sum;
}

bool Graph::IsConnected() const {
  const VertexId n = NumNodes();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  VertexId count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : Neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == n;
}

std::string Graph::Summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n=%u m=%llu dmax=%u", NumNodes(),
                static_cast<unsigned long long>(NumEdges()), MaxDegree());
  return buf;
}

}  // namespace grw
