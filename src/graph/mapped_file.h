// RAII wrapper over a read-only memory-mapped file.
//
// Backs the zero-copy `.grwb` snapshot load path (graph/format.h): the
// kernel pages graph data in on demand, so opening a multi-gigabyte
// snapshot costs a handful of page faults instead of a full parse, and the
// page cache is shared across processes benchmarking the same dataset.
// POSIX-only (mmap/munmap), which matches the toolchain this project
// targets; the wrapper is the single place a port would touch.

#pragma once

#include <cstddef>
#include <string>

namespace grw {

/// Movable, non-copyable read-only file mapping. The mapping lives until
/// destruction; spans handed out by the loader must not outlive it (the
/// Graph keeps its MappedFile alive through Graph::Backing).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Throws std::runtime_error (with the path and
  /// errno text) if the file cannot be opened, stat'ed, or mapped.
  /// An empty file yields a valid MappedFile with size() == 0.
  static MappedFile Open(const std::string& path);

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }

  /// Advises the kernel to drop this mapping's resident pages
  /// (madvise(MADV_DONTNEED)). The mapping stays valid: read-only
  /// file-backed pages refault from disk on the next touch, so this
  /// trades latency for memory — never correctness. Best effort (some
  /// kernels/filesystems refuse; failures are ignored). The residency
  /// layer (graph/sharded_access.h) calls it on shard eviction so the
  /// process's resident set actually shrinks instead of waiting for
  /// memory pressure.
  void DropPages() const;

 private:
  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace grw
