#include "graph/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace grw {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error("MappedFile: " + what + " " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<unsigned char*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) ThrowErrno("cannot open", path);

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("cannot stat", path);
  }

  MappedFile mf;
  mf.size_ = static_cast<size_t>(st.st_size);
  if (mf.size_ > 0) {
    void* addr = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      ThrowErrno("cannot mmap", path);
    }
    mf.data_ = static_cast<const unsigned char*>(addr);
  }
  // The mapping outlives the descriptor.
  ::close(fd);
  return mf;
}

}  // namespace grw
