#include "graph/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/fault.h"

namespace grw {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error("MappedFile: " + what + " " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<unsigned char*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::DropPages() const {
  if (data_ == nullptr || size_ == 0) return;
  // Best effort: a refusal just means the pages age out under normal
  // memory pressure instead of immediately.
  (void)::madvise(const_cast<unsigned char*>(data_), size_, MADV_DONTNEED);
}

MappedFile MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) ThrowErrno("cannot open", path);

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("cannot stat", path);
  }

  MappedFile mf;
  mf.size_ = static_cast<size_t>(st.st_size);
  if (mf.size_ > 0) {
    void* addr = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      ThrowErrno("cannot mmap", path);
    }
    mf.data_ = static_cast<const unsigned char*>(addr);
  }

  // Detect a file that shrank between the stat and the mmap: pages past
  // the new EOF would raise SIGBUS on first touch — possibly minutes
  // into an estimate. Re-stat through the still-open descriptor and
  // fail the load up front instead. (Shrinking AFTER this check cannot
  // happen for `.grwb` files: SaveGraphBinary never truncates a live
  // path, it atomically renames a complete temp file over it, so an
  // existing mapping always covers a complete old inode.)
  struct stat st2 {};
  const bool restat_ok = ::fstat(fd, &st2) == 0;
  size_t size_now = restat_ok ? static_cast<size_t>(st2.st_size) : 0;
  if (GRW_FAULT("mmap.shrink")) size_now = mf.size_ / 2;
  if (!restat_ok || size_now < mf.size_) {
    ::close(fd);
    // mf's destructor unmaps.
    throw std::runtime_error(
        "MappedFile: " + path + ": file truncated while mapping (" +
        std::to_string(size_now) + " of " + std::to_string(mf.size_) +
        " bytes remain); refusing a mapping that would SIGBUS");
  }

  // The mapping outlives the descriptor.
  ::close(fd);
  return mf;
}

}  // namespace grw
