// `.grwb` binary graph snapshots: the on-disk layout IS the in-memory CSR.
//
// Re-parsing a multi-million-edge text edge list dominates wall-clock for
// short convergence-stopped runs, so benches and the CLI can convert a
// dataset once and then start walking in milliseconds:
//
//   grw convert epinion-sim.txt epinion-sim.grwb
//   grw estimate epinion-sim.grwb --k 4 ...
//
// File layout (all little-endian, fixed-width):
//
//   byte 0      GrwbHeader (64 bytes)
//     magic            u32   'GRWB' (0x42575247)
//     version          u32   kGrwbVersion
//     num_nodes        u64   n
//     num_half_edges   u64   offsets[n] == 2|E|
//     offsets_bytes    u64   (n + 1) * 8
//     neighbors_bytes  u64   num_half_edges * 4
//     data_checksum    u64   FNV-1a over offsets bytes then neighbors bytes
//     flags            u32   bit 0: degree-descending relabeled
//     reserved         u32   0
//     header_checksum  u64   FNV-1a over the 56 bytes above
//   byte 64     offsets array   (n + 1) x u64, 8-byte aligned
//   byte 64+ob  neighbors array (2|E|) x u32,  4-byte aligned
//
// The loader mmaps the file and points the Graph's CSR spans directly into
// the mapping (zero copy; pages fault in on first touch). Header fields and
// the header checksum are validated eagerly; the full data checksum is
// opt-in because verifying it touches every page, which defeats the lazy
// load — turn it on for untrusted files and in tests.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/graph.h"

namespace grw {

/// Thrown when a `.grwb` snapshot fails validation (bad magic/version,
/// checksum mismatch, truncation, structural inconsistency). A distinct
/// type so callers can tell corrupt-data from transient IO: corruption
/// is never retryable — quarantine the file (refuse to serve it, keep
/// it for inspection) instead. Derives from std::runtime_error, so
/// pre-existing catch sites keep working.
class SnapshotCorruptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr uint32_t kGrwbMagic = 0x42575247;  // "GRWB" little-endian
inline constexpr uint32_t kGrwbVersion = 1;

/// Flag bits stored in the header.
inline constexpr uint32_t kGrwbFlagDegreeRelabeled = 1u << 0;

/// Parsed header metadata, for `grw info` and tooling.
struct GrwbInfo {
  uint32_t version = 0;
  uint64_t num_nodes = 0;
  uint64_t num_half_edges = 0;  // == 2 * |E|
  uint32_t flags = 0;
  uint64_t file_bytes = 0;
  /// FNV-1a over the CSR arrays, straight from the (validated) header —
  /// a content identity that costs one header read, not a full-file
  /// scan. The serve registry keys its warm snapshot/index cache on
  /// (path, data_checksum).
  uint64_t data_checksum = 0;
  bool DegreeRelabeled() const {
    return (flags & kGrwbFlagDegreeRelabeled) != 0;
  }
};

/// Writes g as a `.grwb` snapshot, crash-safely: the bytes go to a
/// temporary file in the same directory, are fsync'd, and only then
/// atomically rename(2)d over `path` (followed by a directory fsync so
/// the rename itself is durable). A crash at ANY point leaves either
/// the old complete snapshot or the new complete snapshot at `path` —
/// never a torn file — plus at worst an orphaned `path + ".tmp.<pid>"`
/// that the loader rejects (no .grwb magic at best, failed checksum at
/// worst). This also means a live reader's mmap is never truncated in
/// place: rename swaps the directory entry, the old inode survives
/// until unmapped. `flags` is stored verbatim in the header (pass
/// kGrwbFlagDegreeRelabeled when g came from RelabelByDegree). Throws
/// std::runtime_error on I/O failure (temp file already unlinked).
void SaveGraphBinary(const Graph& g, const std::string& path,
                     uint32_t flags = 0);

/// Memory-maps a `.grwb` snapshot and returns a Graph whose CSR spans view
/// the mapping (zero copy; the mapping lives as long as any copy of the
/// Graph). Magic, version, sizes (overflow-safely, against the real file
/// size), and the header checksum are always validated; with
/// verify_checksum the whole file is read to additionally check offsets
/// monotonicity, neighbor-id bounds, and the data checksum — use it for
/// files from untrusted sources. Throws SnapshotCorruptError naming the
/// path and the failed check.
Graph LoadGraphBinary(const std::string& path, bool verify_checksum = false);

/// DEPRECATION NOTE: LoadGraphBinary and LoadGraph below predate the
/// unified open API and survive as thin compatibility entry points —
/// GraphSource::Open (graph/source.h) is the one loader that also
/// understands sharded manifests and carries the index/verify/relabel/
/// budget knobs in one options struct. New call sites must go through
/// GraphSource (the `graphsource-open` lint rule rejects fresh direct
/// LoadGraphBinary calls outside it).

/// Reads and validates only the header. Throws like LoadGraphBinary.
GrwbInfo InspectGraphBinary(const std::string& path);

/// True iff the file starts with the `.grwb` magic (false for short files;
/// throws only if the file cannot be opened).
bool IsGraphBinaryFile(const std::string& path);

/// Format-detecting loader: `.grwb` snapshots load via LoadGraphBinary
/// (snapshots are already simplified, so largest_cc is ignored); anything
/// else parses as a text edge list via LoadEdgeList(path, largest_cc).
Graph LoadGraph(const std::string& path, bool largest_cc = true);

}  // namespace grw
