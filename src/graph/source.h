// GraphSource: the ONE way to open a graph, whatever is on disk.
//
// Before this existed the codebase had three divergent open paths — the
// CLI's LoadGraph, the serve registry's inline snapshot logic, and the
// bench harness's LoadBenchGraphs — each with its own flag plumbing and
// none aware of more than one storage layout. GraphSource::Open collapses
// them: it sniffs the path and dispatches to
//
//   text edge list       -> LoadEdgeList (optionally largest CC,
//                           optionally degree-relabeled) — an in-memory
//                           Graph;
//   monolithic `.grwb`   -> LoadGraphBinary — a zero-copy mmap'd Graph;
//   sharded manifest     -> LoadShardManifest + a ShardStore under the
//      (file or its dir)    requested resident-byte budget — an
//                           out-of-core graph served shard by shard.
//
// The first two kinds expose a Graph (graph()); the sharded kind exposes
// a ShardStore (shards()) that the engine drives through ShardedAccess.
// kind() says which; call sites that cannot serve out-of-core graphs
// reject sharded() sources with their own message instead of crashing.
//
// GraphSource is a cheap value: copies share the underlying mapping /
// store (shared_ptr), exactly like copying a Graph. Corruption anywhere
// — monolithic or per shard — throws the same typed SnapshotCorruptError
// with a path-qualified message, so quarantine call sites (grw_serve)
// handle every layout with one catch.
//
// LoadGraph / LoadGraphBinary remain as thin deprecated aliases for the
// monolithic kinds; new call sites must come through here
// (tools/lint_invariants.py bans fresh direct LoadGraphBinary calls).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "graph/sharded_access.h"
#include "graph/sharding.h"

namespace grw {

enum class GraphSourceKind {
  kText,     // parsed edge list, in-memory CSR
  kBinary,   // monolithic .grwb, zero-copy mmap
  kSharded,  // manifest + shard files, budget-driven residency
};

/// Knobs of GraphSource::Open. Fields apply to the kinds noted; the rest
/// ignore them, so one options struct can serve a path of unknown kind.
struct OpenOptions {
  /// Build and attach the AdjacencyIndex (O(1)-ish HasEdge). Monolithic
  /// kinds only: a sharded graph has no global CSR to index, its HasEdge
  /// is the per-shard binary search.
  bool build_index = true;
  /// Full payload validation: data checksum + structural scan for
  /// `.grwb`, per-shard checksums + scans for sharded. Costs a full read
  /// of every byte — for untrusted files and registration paths.
  bool verify = false;
  /// Text kind only: restrict to the largest connected component (the
  /// walk theory assumes a connected graph). Snapshots were simplified
  /// at convert time.
  bool largest_cc = true;
  /// Text kind only: relabel nodes in degree-descending order (improves
  /// walk locality and the adjacency index's hub tier). Snapshot kinds
  /// carry their relabel flag from convert time instead.
  bool relabel_degree = false;
  /// Sharded kind only: resident-byte budget for the shard LRU
  /// (ShardStore::Options); 0 = unbounded.
  uint64_t resident_budget_bytes = 0;
  /// Sharded kind only: re-verify shard payloads on every fault, not
  /// just at open (ShardStore::Options::verify_on_fault).
  bool verify_on_fault = false;
};

/// An opened graph of any storage kind. Cheap to copy; copies share the
/// backing (mapping, store, index).
class GraphSource {
 public:
  GraphSource() = default;

  /// Opens `path`, auto-detecting the kind: a directory or a file with
  /// the manifest magic is sharded, the `.grwb` magic is monolithic
  /// binary, anything else parses as a text edge list. Throws
  /// SnapshotCorruptError for corrupt snapshots/shards (quarantineable),
  /// std::runtime_error for plain I/O failures.
  static GraphSource Open(const std::string& path,
                          const OpenOptions& options = {});

  /// Wraps an already-built in-memory graph (datasets, generators,
  /// tests) so registry/engine plumbing can stay kind-agnostic.
  static GraphSource FromGraph(Graph g, const std::string& label = "<memory>");

  GraphSourceKind kind() const { return kind_; }
  bool sharded() const { return kind_ == GraphSourceKind::kSharded; }

  /// The resident graph. Throws std::logic_error for sharded sources —
  /// there is deliberately no "load it all anyway" escape hatch here;
  /// out-of-core callers go through shards().
  const Graph& graph() const;

  /// The shard store (sharded kind only; std::logic_error otherwise).
  const ShardStore& shards() const;

  VertexId NumNodes() const;
  uint64_t NumEdges() const;

  /// Content identity: the snapshot's data checksum (`.grwb` header),
  /// the manifest's shard-table checksum (sharded), or 0 (text /
  /// in-memory — parsed content has no stored checksum). The serve
  /// registry keys resident sharing on (path, checksum).
  uint64_t content_checksum() const { return checksum_; }

  /// True when the stored graph was degree-relabeled at convert time.
  bool degree_relabeled() const { return relabeled_; }

  /// The path given to Open (or the FromGraph label).
  const std::string& path() const { return path_; }

  /// One-line summary, e.g. "n=75879 m=405740 kind=sharded shards=8".
  std::string Summary() const;

 private:
  GraphSourceKind kind_ = GraphSourceKind::kText;
  std::string path_;
  uint64_t checksum_ = 0;
  bool relabeled_ = false;
  Graph graph_;                        // text/binary kinds
  std::shared_ptr<ShardStore> store_;  // sharded kind
};

}  // namespace grw
