#include "graph/sharding.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "graph/mapped_file.h"
#include "util/fault.h"
#include "util/posix_io.h"

namespace grw {

namespace {

// On-disk headers; both 64 bytes like GrwbHeader, memcpy'd whole, so
// they must stay padding-free with the checksum as the final field.
struct GrwsShardHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t shard_index;
  uint32_t flags;
  uint64_t first_node;
  uint64_t num_rows;
  uint64_t total_nodes;  // global count, for neighbor-id bound checks
  uint64_t num_half_edges;
  uint64_t data_checksum;  // over rebased offsets then neighbors
  uint64_t header_checksum;
};
static_assert(sizeof(GrwsShardHeader) == 64);
static_assert(offsetof(GrwsShardHeader, header_checksum) == 56);

struct GrwmHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t num_shards;
  uint32_t flags;
  uint64_t total_nodes;
  uint64_t total_half_edges;
  uint64_t table_checksum;  // over histogram bytes then shard records
  uint64_t reserved = 0;
  uint64_t reserved2 = 0;
  uint64_t header_checksum;
};
static_assert(sizeof(GrwmHeader) == 64);
static_assert(offsetof(GrwmHeader, header_checksum) == 56);

// The shard records are the ShardInfo structs verbatim: five u64 fields,
// trivially copyable, no padding.
static_assert(sizeof(ShardInfo) == 40);
static_assert(std::is_trivially_copyable_v<ShardInfo>);

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// Same checksum recipe as the monolithic format (format.cpp): FNV-1a
// over the offsets bytes, continued over the neighbors bytes.
uint64_t DataChecksum(std::span<const uint64_t> offsets,
                      std::span<const VertexId> neighbors) {
  uint64_t h = Fnv1a(offsets.data(), offsets.size_bytes(), kFnvOffsetBasis);
  return Fnv1a(neighbors.data(), neighbors.size_bytes(), h);
}

template <class Header>
uint64_t HeaderChecksum(const Header& h) {
  return Fnv1a(&h, offsetof(Header, header_checksum), kFnvOffsetBasis);
}

[[noreturn]] void BadManifest(const std::string& path,
                              const std::string& why) {
  throw SnapshotCorruptError("LoadShardManifest: " + path + ": " + why);
}

[[noreturn]] void BadShard(const std::string& path, const std::string& why) {
  throw SnapshotCorruptError("MapShard: " + path + ": " + why);
}

uint64_t ShardFileBytes(uint64_t num_rows, uint64_t num_half_edges) {
  return sizeof(GrwsShardHeader) + (num_rows + 1) * sizeof(uint64_t) +
         num_half_edges * sizeof(VertexId);
}

// Crash-safe multi-part file write: same-directory temp, WriteAll each
// part, fsync, close, atomic rename, directory fsync — the discipline of
// SaveGraphBinary (format.cpp), shared by shard and manifest writes.
// The chaos sites mirror the grwb.save.* family.
void AtomicWriteFile(
    const std::string& path,
    std::initializer_list<std::pair<const void*, size_t>> parts) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0 || GRW_FAULT("grws.save.open")) {
    if (fd >= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
    }
    throw std::runtime_error("WriteShardedGraph: cannot open " + tmp + ": " +
                             std::strerror(fd < 0 ? errno : EIO));
  }
  const auto fail = [&](const std::string& what, int err) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("WriteShardedGraph: " + what + " " + tmp +
                             ": " + std::strerror(err));
  };

  io::IoResult w;
  for (const auto& [data, len] : parts) {
    w = io::WriteAll(fd, data, len);
    if (!w.ok()) break;
  }
  // Chaos site simulating a crash with the payload half written: the
  // destination must remain absent or the previous complete file, and —
  // because the manifest is written last — the directory as a whole must
  // remain either not-yet-sharded or fully consistent.
  if (GRW_FAULT("grws.save.crash")) ::_exit(137);
  if (!w.ok() || GRW_FAULT("grws.save.write")) {
    fail("write failure on", w.ok() ? EIO : w.error);
  }
  if (io::Fsync(fd) < 0) fail("fsync failure on", errno);
  if (::close(fd) < 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("WriteShardedGraph: close failure on " + tmp +
                             ": " + std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) < 0 ||
      GRW_FAULT("grws.save.rename")) {
    const int err = errno != 0 ? errno : EIO;
    ::unlink(tmp.c_str());
    throw std::runtime_error("WriteShardedGraph: cannot rename " + tmp +
                             " to " + path + ": " + std::strerror(err));
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dir_fd >= 0) {
    io::Fsync(dir_fd);
    ::close(dir_fd);
  }
}

// Cut points of the vertex-range partition: `cuts[s]` is one past the
// last row of shard s; cuts.back() == n. Balanced by half-edge mass for
// a fixed count, greedy by file size for a byte target; every shard gets
// at least one row either way.
std::vector<uint64_t> PlanCuts(std::span<const uint64_t> offsets, uint64_t n,
                               const ShardingOptions& opt) {
  std::vector<uint64_t> cuts;
  const uint64_t total_half = offsets[n];
  if (opt.num_shards > 0) {
    const uint64_t shards = opt.num_shards;
    if (shards > n) {
      throw std::invalid_argument(
          "WriteShardedGraph: num_shards " + std::to_string(shards) +
          " exceeds the node count " + std::to_string(n));
    }
    cuts.reserve(shards);
    uint64_t start = 0;
    for (uint64_t s = 0; s < shards; ++s) {
      // Ideal cumulative mass through shard s, in 128-bit to survive
      // total_half * shards overflowing 64 bits.
      const auto target = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(total_half) * (s + 1)) / shards);
      const auto it = std::lower_bound(
          offsets.begin() + 1,
          offsets.begin() + 1 + static_cast<ptrdiff_t>(n), target);
      uint64_t cut = static_cast<uint64_t>(it - offsets.begin());
      // Keep the partition monotone with >= 1 row here and >= 1 row for
      // each remaining shard.
      cut = std::max(cut, start + 1);
      cut = std::min(cut, n - (shards - s - 1));
      cuts.push_back(cut);
      start = cut;
    }
  } else {
    const uint64_t target = std::max<uint64_t>(opt.target_shard_bytes, 1);
    uint64_t start = 0;
    while (start < n) {
      uint64_t end = start + 1;
      while (end < n &&
             ShardFileBytes(end + 1 - start, offsets[end + 1] - offsets[start]) <=
                 target) {
        ++end;
      }
      cuts.push_back(end);
      start = end;
    }
  }
  return cuts;
}

GrwsShardHeader ValidateShardHeader(const std::string& path,
                                    const unsigned char* data,
                                    size_t file_bytes) {
  if (file_bytes < sizeof(GrwsShardHeader)) {
    BadShard(path, "file too small for a .grws shard header (" +
                       std::to_string(file_bytes) + " bytes)");
  }
  GrwsShardHeader h;
  std::memcpy(&h, data, sizeof h);
  if (h.magic != kGrwsMagic) {
    BadShard(path, "bad magic (not a .grws shard)");
  }
  if (h.version != kGrwsVersion) {
    BadShard(path, "unsupported shard version " + std::to_string(h.version) +
                       " (expected " + std::to_string(kGrwsVersion) + ")");
  }
  if (h.header_checksum != HeaderChecksum(h)) {
    BadShard(path, "shard header checksum mismatch (corrupted header)");
  }
  if (h.total_nodes > std::numeric_limits<VertexId>::max() ||
      h.first_node + h.num_rows > h.total_nodes) {
    BadShard(path, "shard vertex range exceeds the graph's node count");
  }
  if (file_bytes != ShardFileBytes(h.num_rows, h.num_half_edges)) {
    BadShard(path, "truncated or oversized shard: " +
                       std::to_string(file_bytes) + " bytes, header implies " +
                       std::to_string(ShardFileBytes(h.num_rows,
                                                     h.num_half_edges)));
  }
  return h;
}

}  // namespace

std::string ShardManifest::ShardPath(uint32_t index) const {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%05u.grws", index);
  return dir + "/" + name;
}

uint32_t ShardManifest::ShardOf(VertexId v) const {
  // Last shard whose first_node <= v; ranges are contiguous and sorted.
  const auto it = std::upper_bound(
      shards.begin(), shards.end(), static_cast<uint64_t>(v),
      [](uint64_t node, const ShardInfo& s) { return node < s.first_node; });
  return static_cast<uint32_t>(it - shards.begin()) - 1;
}

uint64_t ShardManifest::TotalShardBytes() const {
  uint64_t total = 0;
  for (const ShardInfo& s : shards) total += s.file_bytes;
  return total;
}

ShardManifest WriteShardedGraph(const Graph& g, const std::string& dir,
                                const ShardingOptions& options) {
  const uint64_t n = g.NumNodes();
  if (n == 0) {
    throw std::invalid_argument("WriteShardedGraph: cannot shard an empty "
                                "graph (no vertex rows to partition)");
  }
  const std::span<const uint64_t> offsets = g.RawOffsets();
  const std::span<const VertexId> neighbors = g.RawNeighbors();

  std::filesystem::create_directories(dir);

  ShardManifest manifest;
  manifest.version = kGrwsVersion;
  manifest.flags = options.flags;
  manifest.total_nodes = n;
  manifest.total_half_edges = neighbors.size();
  manifest.dir = dir;
  manifest.path = dir + "/" + kShardManifestName;
  for (uint64_t v = 0; v < n; ++v) {
    const auto deg = static_cast<uint32_t>(offsets[v + 1] - offsets[v]);
    ++manifest.degree_histogram[std::bit_width(deg)];
  }

  const std::vector<uint64_t> cuts = PlanCuts(offsets, n, options);

  // Shards first; a crash mid-way leaves a directory with no (or the
  // previous) manifest, never a manifest naming absent/torn shards.
  std::vector<uint64_t> local;  // rebased offsets, reused across shards
  uint64_t start = 0;
  for (uint32_t s = 0; s < cuts.size(); ++s) {
    const uint64_t end = cuts[s];
    const uint64_t rows = end - start;
    const uint64_t base = offsets[start];
    const uint64_t half = offsets[end] - base;
    local.resize(rows + 1);
    for (uint64_t r = 0; r <= rows; ++r) {
      local[r] = offsets[start + r] - base;
    }
    const std::span<const VertexId> slice =
        neighbors.subspan(base, half);

    GrwsShardHeader h{};
    h.magic = kGrwsMagic;
    h.version = kGrwsVersion;
    h.shard_index = s;
    h.flags = options.flags;
    h.first_node = start;
    h.num_rows = rows;
    h.total_nodes = n;
    h.num_half_edges = half;
    h.data_checksum = DataChecksum(local, slice);
    h.header_checksum = HeaderChecksum(h);

    ShardInfo info;
    info.first_node = start;
    info.num_rows = rows;
    info.num_half_edges = half;
    info.file_bytes = ShardFileBytes(rows, half);
    info.data_checksum = h.data_checksum;
    manifest.shards.push_back(info);

    AtomicWriteFile(manifest.ShardPath(s),
                    {{&h, sizeof h},
                     {local.data(), local.size() * sizeof(uint64_t)},
                     {slice.data(), slice.size_bytes()}});
    start = end;
  }

  GrwmHeader mh{};
  mh.magic = kGrwmMagic;
  mh.version = kGrwsVersion;
  mh.num_shards = static_cast<uint32_t>(manifest.shards.size());
  mh.flags = options.flags;
  mh.total_nodes = n;
  mh.total_half_edges = neighbors.size();
  mh.table_checksum =
      Fnv1a(manifest.shards.data(), manifest.shards.size() * sizeof(ShardInfo),
            Fnv1a(manifest.degree_histogram.data(),
                  sizeof(manifest.degree_histogram), kFnvOffsetBasis));
  mh.header_checksum = HeaderChecksum(mh);

  AtomicWriteFile(manifest.path,
                  {{&mh, sizeof mh},
                   {manifest.degree_histogram.data(),
                    sizeof(manifest.degree_histogram)},
                   {manifest.shards.data(),
                    manifest.shards.size() * sizeof(ShardInfo)}});
  return manifest;
}

ShardManifest LoadShardManifest(const std::string& path, bool verify_shards) {
  std::string mpath = path;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    while (!mpath.empty() && mpath.back() == '/') mpath.pop_back();
    mpath += "/";
    mpath += kShardManifestName;
    if (!std::filesystem::exists(mpath, ec)) {
      BadManifest(mpath, "directory holds no " +
                             std::string(kShardManifestName) +
                             " (not a sharded graph)");
    }
  }
  const MappedFile file = MappedFile::Open(mpath);
  if (file.size() < sizeof(GrwmHeader)) {
    BadManifest(mpath, "file too small for a manifest header (" +
                           std::to_string(file.size()) + " bytes)");
  }
  GrwmHeader h;
  std::memcpy(&h, file.data(), sizeof h);
  if (h.magic != kGrwmMagic) {
    BadManifest(mpath, "bad magic (not a sharded-graph manifest)");
  }
  if (h.version != kGrwsVersion) {
    BadManifest(mpath, "unsupported manifest version " +
                           std::to_string(h.version) + " (expected " +
                           std::to_string(kGrwsVersion) + ")");
  }
  if (h.header_checksum != HeaderChecksum(h)) {
    BadManifest(mpath, "manifest header checksum mismatch (corrupted "
                       "header)");
  }
  if (h.num_shards == 0) {
    BadManifest(mpath, "manifest names zero shards");
  }
  if (h.total_nodes > std::numeric_limits<VertexId>::max()) {
    BadManifest(mpath, "total_nodes " + std::to_string(h.total_nodes) +
                           " exceeds the 32-bit node id space");
  }
  const size_t expected_bytes =
      sizeof(GrwmHeader) + kDegreeHistogramBuckets * sizeof(uint64_t) +
      static_cast<size_t>(h.num_shards) * sizeof(ShardInfo);
  if (file.size() != expected_bytes) {
    BadManifest(mpath, "truncated or oversized manifest: " +
                           std::to_string(file.size()) +
                           " bytes, header implies " +
                           std::to_string(expected_bytes));
  }

  ShardManifest manifest;
  manifest.version = h.version;
  manifest.flags = h.flags;
  manifest.total_nodes = h.total_nodes;
  manifest.total_half_edges = h.total_half_edges;
  manifest.path = mpath;
  const size_t slash = mpath.find_last_of('/');
  manifest.dir = slash == std::string::npos ? std::string(".")
                                            : mpath.substr(0, slash);
  std::memcpy(manifest.degree_histogram.data(),
              file.data() + sizeof(GrwmHeader),
              sizeof(manifest.degree_histogram));
  manifest.shards.resize(h.num_shards);
  std::memcpy(manifest.shards.data(),
              file.data() + sizeof(GrwmHeader) +
                  sizeof(manifest.degree_histogram),
              manifest.shards.size() * sizeof(ShardInfo));

  const uint64_t table_checksum =
      Fnv1a(manifest.shards.data(), manifest.shards.size() * sizeof(ShardInfo),
            Fnv1a(manifest.degree_histogram.data(),
                  sizeof(manifest.degree_histogram), kFnvOffsetBasis));
  if (table_checksum != h.table_checksum) {
    BadManifest(mpath, "shard-table checksum mismatch (corrupted manifest "
                       "payload)");
  }

  // The shard records must partition [0, total_nodes) contiguously, in
  // order, each non-empty, and their half-edge counts must add up.
  uint64_t expected_first = 0;
  uint64_t half_sum = 0;
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    const ShardInfo& info = manifest.shards[s];
    if (info.num_rows == 0) {
      BadManifest(mpath, "shard " + std::to_string(s) + " covers zero rows");
    }
    if (info.first_node < expected_first) {
      BadManifest(mpath,
                  "shard ranges overlap at shard " + std::to_string(s) +
                      " (starts at node " + std::to_string(info.first_node) +
                      ", previous shard ends at " +
                      std::to_string(expected_first) + ")");
    }
    if (info.first_node > expected_first) {
      BadManifest(mpath,
                  "gap in shard ranges before shard " + std::to_string(s) +
                      " (nodes " + std::to_string(expected_first) + ".." +
                      std::to_string(info.first_node - 1) + " unassigned)");
    }
    if (info.file_bytes != ShardFileBytes(info.num_rows,
                                          info.num_half_edges)) {
      BadManifest(mpath, "shard " + std::to_string(s) +
                             " file size inconsistent with its row/edge "
                             "counts");
    }
    expected_first = info.first_node + info.num_rows;
    half_sum += info.num_half_edges;
  }
  if (expected_first != manifest.total_nodes) {
    BadManifest(mpath, "shard ranges cover " + std::to_string(expected_first) +
                           " of " + std::to_string(manifest.total_nodes) +
                           " nodes");
  }
  if (half_sum != manifest.total_half_edges) {
    BadManifest(mpath, "shard half-edge counts sum to " +
                           std::to_string(half_sum) + ", manifest claims " +
                           std::to_string(manifest.total_half_edges));
  }

  if (verify_shards) {
    for (uint32_t s = 0; s < manifest.NumShards(); ++s) {
      (void)MapShard(manifest, s, /*verify_checksum=*/true);
    }
  }
  return manifest;
}

bool IsShardManifestPath(const std::string& path) {
  std::error_code ec;
  std::string mpath = path;
  if (std::filesystem::is_directory(path, ec)) {
    while (!mpath.empty() && mpath.back() == '/') mpath.pop_back();
    mpath += "/";
    mpath += kShardManifestName;
    if (!std::filesystem::exists(mpath, ec)) return false;
  }
  std::FILE* f = std::fopen(mpath.c_str(), "rb");
  if (f == nullptr) {
    if (!std::filesystem::exists(mpath, ec)) return false;
    throw std::runtime_error("IsShardManifestPath: cannot open " + mpath);
  }
  uint32_t magic = 0;
  const bool got = std::fread(&magic, sizeof magic, 1, f) == 1;
  std::fclose(f);
  return got && magic == kGrwmMagic;
}

uint64_t ShardContentChecksum(const ShardManifest& manifest) {
  uint64_t checksum = 0;
  for (const ShardInfo& s : manifest.shards) {
    checksum ^= s.data_checksum;
    checksum = checksum * kFnvPrime + s.num_rows;
  }
  return checksum;
}

void MappedShard::DropPages() const { file_.DropPages(); }

MappedShard MapShard(const ShardManifest& manifest, uint32_t index,
                     bool verify_checksum) {
  const std::string path = manifest.ShardPath(index);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    BadShard(path, "missing shard file (manifest " + manifest.path +
                       " names " + std::to_string(manifest.NumShards()) +
                       " shards)");
  }
  MappedFile file = MappedFile::Open(path);
  const GrwsShardHeader h = ValidateShardHeader(path, file.data(),
                                                file.size());
  const ShardInfo& info = manifest.shards[index];
  if (h.shard_index != index) {
    BadShard(path, "shard index mismatch: header says " +
                       std::to_string(h.shard_index) + ", manifest slot is " +
                       std::to_string(index));
  }
  if (h.first_node != info.first_node || h.num_rows != info.num_rows ||
      h.num_half_edges != info.num_half_edges) {
    BadShard(path, "shard vertex range disagrees with the manifest "
                   "(stale manifest or mixed shard generations)");
  }
  if (h.total_nodes != manifest.total_nodes || h.flags != manifest.flags) {
    BadShard(path, "shard global header fields disagree with the manifest "
                   "(mixed shard generations)");
  }
  if (h.data_checksum != info.data_checksum) {
    BadShard(path, "checksum disagreement between shard and manifest "
                   "(stale manifest: the shard was rewritten without "
                   "rewriting " + std::string(kShardManifestName) +
                   ", or vice versa)");
  }

  MappedShard shard;
  shard.index_ = index;
  shard.first_node_ = h.first_node;
  shard.num_rows_ = h.num_rows;
  shard.bytes_ = file.size();
  shard.offsets_ = reinterpret_cast<const uint64_t*>(
      file.data() + sizeof(GrwsShardHeader));
  shard.neighbors_ = reinterpret_cast<const VertexId*>(
      file.data() + sizeof(GrwsShardHeader) +
      (h.num_rows + 1) * sizeof(uint64_t));

  // Cheap structural sanity touching only the offsets edges.
  if (shard.offsets_[0] != 0 ||
      shard.offsets_[h.num_rows] != h.num_half_edges) {
    BadShard(path, "shard offsets inconsistent with header (corrupted "
                   "data)");
  }
  if (verify_checksum) {
    const std::span<const uint64_t> offsets(shard.offsets_,
                                            h.num_rows + 1);
    const std::span<const VertexId> neighbors(shard.neighbors_,
                                              h.num_half_edges);
    for (size_t r = 0; r + 1 < offsets.size(); ++r) {
      if (offsets[r] > offsets[r + 1]) {
        BadShard(path, "shard offsets not monotone at row " +
                           std::to_string(r));
      }
    }
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] >= h.total_nodes) {
        BadShard(path, "neighbor id out of range at index " +
                           std::to_string(i));
      }
    }
    if (DataChecksum(offsets, neighbors) != h.data_checksum) {
      BadShard(path, "data checksum mismatch (corrupted shard payload)");
    }
  }

  shard.file_ = std::move(file);
  return shard;
}

}  // namespace grw
