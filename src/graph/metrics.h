// Descriptive graph metrics used by dataset reporting and the examples.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace grw {

/// Summary statistics of the degree distribution.
struct DegreeStats {
  uint32_t min = 0;
  uint32_t max = 0;
  double mean = 0.0;
  double variance = 0.0;
  /// Degrees at the 50th / 90th / 99th percentiles.
  uint32_t p50 = 0;
  uint32_t p90 = 0;
  uint32_t p99 = 0;
};

/// Computes degree statistics in one pass. Empty graph yields zeros.
DegreeStats ComputeDegreeStats(const Graph& g);

/// Degree histogram: result[d] = number of nodes with degree d.
std::vector<uint64_t> DegreeHistogram(const Graph& g);

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). In [-1, 1]; NaN for degenerate graphs (all degrees equal).
double DegreeAssortativity(const Graph& g);

/// Average local clustering coefficient (Watts-Strogatz definition):
/// mean over nodes with degree >= 2 of (triangles at v) / C(d_v, 2).
/// Distinct from the *global* coefficient 3T/W used by the paper.
double AverageLocalClustering(const Graph& g);

}  // namespace grw
