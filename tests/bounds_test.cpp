// Tests for the Theorem 3 sample-size bound machinery.

#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(SpectralGapTest, CompleteGraphHasLargeGap) {
  // Lazy walk on K_n: P = (I + (J - I)/(n-1)) / 2; lambda_2 of SRW on K_n
  // is -1/(n-1), so the lazy second eigenvalue is (1 - 1/(n-1))/2 and the
  // gap is (1 + 1/(n-1))/2 approx 0.5.
  const Graph g = Complete(20);
  const double gap = LazyWalkSpectralGap(g);
  EXPECT_NEAR(gap, 0.5 + 0.5 / 19.0, 1e-6);
}

TEST(SpectralGapTest, CycleHasSmallGap) {
  // Lazy walk on C_n: gap = (1 - cos(2 pi / n)) / 2 — tiny for long
  // cycles (slow mixing).
  const Graph g = Cycle(60);
  const double gap = LazyWalkSpectralGap(g);
  EXPECT_NEAR(gap, (1.0 - std::cos(2.0 * M_PI / 60.0)) / 2.0, 1e-8);
}

TEST(SpectralGapTest, ExpanderMixesFasterThanPath) {
  Rng rng(1);
  const Graph expander =
      LargestConnectedComponent(ErdosRenyi(300, 2400, rng));
  const Graph path = Path(300);
  EXPECT_GT(LazyWalkSpectralGap(expander), 20 * LazyWalkSpectralGap(path));
  EXPECT_LT(MixingTimeUpperBound(expander), MixingTimeUpperBound(path));
}

TEST(BoundTest, RareGraphletsNeedMoreSteps) {
  // Theorem 3: relative required steps scale like 1/(alpha_i c_i) — the
  // rare clique must dominate the common path.
  Rng rng(2);
  const Graph g = LargestConnectedComponent(HolmeKim(800, 4, 0.5, rng));
  const auto conc = ExactConcentrations(g, 4);
  const auto bound = ComputeSampleSizeBound(g, 4, 2, conc);
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  const int path = c4.IdByName("4-path");
  const int clique = c4.IdByName("4-clique");
  EXPECT_GT(bound.relative_steps[clique], bound.relative_steps[path]);
  EXPECT_GT(bound.w, 0.0);
  EXPECT_GT(bound.tau, 0.0);
}

TEST(BoundTest, UnobservableTypesAreVacuous) {
  // 3-star under SRW1 has alpha = 0: infinite required steps.
  Rng rng(3);
  const Graph g = LargestConnectedComponent(HolmeKim(400, 3, 0.4, rng));
  const auto conc = ExactConcentrations(g, 4);
  const auto bound = ComputeSampleSizeBound(g, 4, 1, conc);
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  EXPECT_TRUE(std::isinf(
      bound.relative_steps[c4.IdByName("3-star")]));
  EXPECT_EQ(bound.lambda[c4.IdByName("3-star")], 0.0);
}

TEST(BoundTest, SmallerDLowersWForFixedK) {
  // l = k - d + 1 interior states shrink with larger d, but the G(2)
  // max state degree exceeds G(1)'s; for k = 5 the net Theorem-3 "W"
  // factor still favors... just assert both computations are finite and
  // positive, and that the bound is monotone in eps.
  Rng rng(4);
  const Graph g = LargestConnectedComponent(HolmeKim(500, 4, 0.4, rng));
  const auto conc = ExactConcentrations(g, 4);
  const auto tight = ComputeSampleSizeBound(g, 4, 2, conc, 0.05);
  const auto loose = ComputeSampleSizeBound(g, 4, 2, conc, 0.2);
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  const int clique = c4.IdByName("4-clique");
  EXPECT_GT(tight.relative_steps[clique], loose.relative_steps[clique]);
}

TEST(BoundTest, RejectsUnsupportedConfigs) {
  const Graph g = KarateClub();
  const std::vector<double> conc(6, 1.0 / 6);
  EXPECT_THROW(ComputeSampleSizeBound(g, 4, 3, conc),
               std::invalid_argument);
}

}  // namespace
}  // namespace grw
