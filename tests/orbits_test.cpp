// Tests for graphlet orbits and graphlet degree vectors.

#include "graphlet/orbits.h"

#include <gtest/gtest.h>

#include <numeric>

#include "exact/esu.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(OrbitsTest, ClassicOrbitCounts) {
  // The standard graphlet-orbit counts: 1 (k=2), 3 (k=3), 11 (k=4),
  // 58 (k=5) — totalling the classic 73 orbits of 2..5-node graphlets.
  EXPECT_EQ(OrbitCatalog::ForSize(2).NumOrbits(), 1);
  EXPECT_EQ(OrbitCatalog::ForSize(3).NumOrbits(), 3);
  EXPECT_EQ(OrbitCatalog::ForSize(4).NumOrbits(), 11);
  EXPECT_EQ(OrbitCatalog::ForSize(5).NumOrbits(), 58);
}

TEST(OrbitsTest, WedgeHasEndAndCenterOrbits) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(3);
  const OrbitCatalog& orbits = OrbitCatalog::ForSize(3);
  const int wedge = catalog.IdByName("wedge");
  const int triangle = catalog.IdByName("triangle");
  EXPECT_EQ(orbits.OrbitsInGraphlet(wedge), 2);
  EXPECT_EQ(orbits.OrbitsInGraphlet(triangle), 1);
  // In the wedge, the degree-2 vertex is alone in its orbit.
  const Graphlet& g = catalog.Get(wedge);
  int center = -1;
  for (int v = 0; v < 3; ++v) {
    if (g.degree[v] == 2) center = v;
  }
  ASSERT_GE(center, 0);
  for (int v = 0; v < 3; ++v) {
    if (v == center) continue;
    EXPECT_NE(orbits.OrbitOf(wedge, v), orbits.OrbitOf(wedge, center));
  }
}

TEST(OrbitsTest, OrbitMatesShareDegree) {
  // Vertices in one orbit are automorphism images: equal degrees.
  for (int k = 3; k <= 5; ++k) {
    const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
    const OrbitCatalog& orbits = OrbitCatalog::ForSize(k);
    for (int type = 0; type < catalog.NumTypes(); ++type) {
      const Graphlet& g = catalog.Get(type);
      for (int a = 0; a < k; ++a) {
        for (int b = a + 1; b < k; ++b) {
          if (orbits.OrbitOf(type, a) == orbits.OrbitOf(type, b)) {
            EXPECT_EQ(g.degree[a], g.degree[b])
                << "k=" << k << " type=" << type;
          }
        }
      }
    }
  }
}

TEST(OrbitsTest, GdvOnStarCenterAndLeaf) {
  // Star S5 (center 0, leaves 1..5), k = 3: subgraphs are the C(5,2)=10
  // wedges through the center. The center occupies the wedge-center
  // orbit every time; each leaf sits in 4 wedges as an end.
  const Graph g = Star(6);
  const OrbitCatalog& orbits = OrbitCatalog::ForSize(3);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(3);
  const int wedge = catalog.IdByName("wedge");
  const Graphlet& w = catalog.Get(wedge);
  int center_orbit = -1;
  int end_orbit = -1;
  for (int v = 0; v < 3; ++v) {
    (w.degree[v] == 2 ? center_orbit : end_orbit) =
        orbits.OrbitOf(wedge, v);
  }
  const auto center_gdv = GraphletDegreeVector(g, 0, 3);
  EXPECT_EQ(center_gdv[center_orbit], 10);
  EXPECT_EQ(center_gdv[end_orbit], 0);
  const auto leaf_gdv = GraphletDegreeVector(g, 3, 3);
  EXPECT_EQ(leaf_gdv[center_orbit], 0);
  EXPECT_EQ(leaf_gdv[end_orbit], 4);
}

TEST(OrbitsTest, GdvTotalsMatchSubgraphMembership) {
  // Summing a node's GDV over all orbits counts the k-subgraphs
  // containing it; summing over all nodes counts each subgraph k times.
  Rng rng(9);
  const Graph g = LargestConnectedComponent(ErdosRenyi(40, 120, rng));
  const int k = 4;
  int64_t total = 0;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    const auto gdv = GraphletDegreeVector(g, v, k);
    total += std::accumulate(gdv.begin(), gdv.end(), int64_t{0});
  }
  int64_t subgraphs = 0;
  for (int64_t c : CountGraphletsEsu(g, k)) subgraphs += c;
  EXPECT_EQ(total, k * subgraphs);
}

}  // namespace
}  // namespace grw
