// Tests for utility components: RNG, statistics, tables, flags, parallel.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "util/flags.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace grw {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 7, 1000}) {
    for (int i = 0; i < 2000; ++i) {
      const uint64_t x = rng.UniformInt(bound);
      EXPECT_LT(x, static_cast<uint64_t>(bound));
    }
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  const int bound = 10;
  std::vector<uint64_t> hits(bound, 0);
  const uint64_t n = 200000;
  for (uint64_t i = 0; i < n; ++i) hits[rng.UniformInt(bound)]++;
  for (int i = 0; i < bound; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / n, 0.1, 0.01);
  }
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.UniformReal();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, DerivedSeedsDiffer) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_EQ(DeriveSeed(5, 9), DeriveSeed(5, 9));
}

TEST(StatsTest, RunningStatMatchesClosedForms) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_EQ(stat.Count(), 8u);
  EXPECT_DOUBLE_EQ(stat.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(stat.Stddev(), 2.0);
  EXPECT_NEAR(stat.SampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, NrmseCombinesBiasAndVariance) {
  // All estimates equal to truth -> 0.
  EXPECT_DOUBLE_EQ(Nrmse({2.0, 2.0, 2.0}, 2.0), 0.0);
  // Constant bias: NRMSE = |bias| / truth.
  EXPECT_DOUBLE_EQ(Nrmse({3.0, 3.0}, 2.0), 0.5);
  // Pure variance around the truth.
  EXPECT_DOUBLE_EQ(Nrmse({1.0, 3.0}, 2.0), 0.5);
  EXPECT_TRUE(std::isnan(Nrmse({}, 1.0)));
  EXPECT_TRUE(std::isnan(Nrmse({1.0}, 0.0)));
}

TEST(StatsTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(SampleStddev({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(SampleStddev({5.0}), 0.0);
}

TEST(TableTest, RendersAlignedRowsAndCsv) {
  Table table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", Table::Int(42)});
  table.AddRow({"beta", Table::Num(3.14159, 2)});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "grw_table_test.csv")
          .string();
  ASSERT_TRUE(table.WriteCsv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,value");
  std::filesystem::remove(path);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Int(-5), "-5");
  EXPECT_EQ(Table::Num(1.25, 2), "1.25");
  EXPECT_EQ(Table::Num(std::nan(""), 2), "n/a");
  EXPECT_EQ(Table::Duration(0.0194), "19.4 ms");
  EXPECT_EQ(Table::Duration(20.6), "20.6 s");
  EXPECT_EQ(Table::Duration(5e-5), "50.0 us");
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",     "--steps", "100",  "--paper",
                        "--name=x", "pos1",    "--f",  "2.5"};
  Flags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("steps", 0), 100);
  EXPECT_TRUE(flags.GetBool("paper"));
  EXPECT_FALSE(flags.GetBool("absent"));
  EXPECT_EQ(flags.GetString("name", ""), "x");
  EXPECT_DOUBLE_EQ(flags.GetDouble("f", 0.0), 2.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.GetInt("missing", -7), -7);
}

TEST(ParallelTest, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, ZeroAndOneElement) {
  ParallelFor(0, [](size_t) { FAIL(); });
  int count = 0;
  ParallelFor(1, [&count](size_t) { ++count; }, 1);
  EXPECT_EQ(count, 1);
}

// ParallelFor is a template over the callable (no std::function on the
// fan-out path): it must accept arbitrary callable kinds, not just
// lambdas convertible to std::function.
namespace parallel_callables {

std::atomic<int> free_function_hits{0};
void FreeFunction(size_t) { free_function_hits++; }

struct Functor {
  std::atomic<int>* hits;
  void operator()(size_t) const { (*hits)++; }
};

}  // namespace parallel_callables

TEST(ParallelTest, AcceptsFunctionPointersAndFunctors) {
  parallel_callables::free_function_hits = 0;
  ParallelFor(64, parallel_callables::FreeFunction);
  EXPECT_EQ(parallel_callables::free_function_hits.load(), 64);

  std::atomic<int> hits{0};
  ParallelFor(64, parallel_callables::Functor{&hits});
  EXPECT_EQ(hits.load(), 64);

  // Generic lambda: operator() is a template, impossible to wrap in a
  // std::function without choosing a signature first.
  std::atomic<int> generic_hits{0};
  ParallelFor(64, [&](auto) { generic_hits++; });
  EXPECT_EQ(generic_hits.load(), 64);
}

TEST(ParallelTest, ThreadCapBeyondElementCount) {
  std::vector<std::atomic<int>> hits(7);
  ParallelFor(7, [&](size_t i) { hits[i]++; }, /*threads=*/64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelSortTest, MatchesStdSortAtAnyThreadCount) {
  // Above the serial cutoff with duplicates, across thread counts that
  // exercise the even, odd, and degenerate merge trees.
  Rng rng(123);
  std::vector<uint64_t> base(200000);
  for (auto& v : base) v = rng.UniformInt(5000);
  std::vector<uint64_t> expected = base;
  std::sort(expected.begin(), expected.end());
  for (unsigned threads : {1u, 2u, 3u, 5u, 8u, 16u}) {
    std::vector<uint64_t> got = base;
    ParallelSort(got, threads);
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelSortTest, SmallAndEmptyInputs) {
  std::vector<int> empty;
  ParallelSort(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> small = {5, 3, 9, 1, 1};
  ParallelSort(small, 8);
  EXPECT_EQ(small, (std::vector<int>{1, 1, 3, 5, 9}));
}

TEST(ParallelSortTest, SortsPairsLexicographically) {
  // The builder sorts (node, neighbor) half-edge pairs; ordering must be
  // the std::pair lexicographic one.
  Rng rng(7);
  std::vector<std::pair<uint32_t, uint32_t>> pairs(100000);
  for (auto& p : pairs) {
    p = {static_cast<uint32_t>(rng.UniformInt(300)),
         static_cast<uint32_t>(rng.UniformInt(300))};
  }
  auto expected = pairs;
  std::sort(expected.begin(), expected.end());
  ParallelSort(pairs);
  EXPECT_EQ(pairs, expected);
}

TEST(StatsTest, ChiSquareStatisticMatchesHandComputation) {
  // obs {12, 8}, exp {10, 10}: (2^2 + 2^2) / 10 = 0.8.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({12.0, 8.0}, {10.0, 10.0}), 0.8);
  // Perfect fit.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({5.0, 5.0}, {5.0, 5.0}), 0.0);
  // Zero-expected cells are skipped, not divided by.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({3.0, 12.0}, {0.0, 10.0}), 0.4);
}

TEST(StatsTest, ChiSquareCriticalValueApproximatesTables) {
  // Wilson-Hilferty vs table values for the 0.05 upper tail (z = 1.645):
  // df=10 -> 18.31, df=30 -> 43.77, df=100 -> 124.34.
  EXPECT_NEAR(ChiSquareCriticalValue(10, 1.645), 18.31, 0.3);
  EXPECT_NEAR(ChiSquareCriticalValue(30, 1.645), 43.77, 0.4);
  EXPECT_NEAR(ChiSquareCriticalValue(100, 1.645), 124.34, 0.8);
  // Monotone in both arguments.
  EXPECT_LT(ChiSquareCriticalValue(10, 1.645),
            ChiSquareCriticalValue(10, 3.09));
  EXPECT_LT(ChiSquareCriticalValue(10, 1.645),
            ChiSquareCriticalValue(20, 1.645));
}

}  // namespace
}  // namespace grw
