// Tests for joint multi-size estimation from one walk.

#include "core/multi_estimator.h"

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(MultiSizeTest, JointEstimatesConvergeForAllSizes) {
  Rng rng(5);
  const Graph g = LargestConnectedComponent(HolmeKim(250, 4, 0.6, rng));
  MultiSizeEstimator estimator(g, /*d=*/2, {3, 4, 5}, /*css=*/true);
  std::vector<std::vector<double>> mean(6);
  const int chains = 6;
  for (int k = 3; k <= 5; ++k) {
    mean[k].assign(GraphletCatalog::ForSize(k).NumTypes(), 0.0);
  }
  for (int c = 0; c < chains; ++c) {
    estimator.Reset(50 + c);
    estimator.Run(80000);
    for (int k = 3; k <= 5; ++k) {
      const auto result = estimator.Result(k);
      for (size_t i = 0; i < result.concentrations.size(); ++i) {
        mean[k][i] += result.concentrations[i] / chains;
      }
    }
  }
  for (int k = 3; k <= 5; ++k) {
    const auto truth = ExactConcentrations(g, k);
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_NEAR(mean[k][i], truth[i], 0.04) << "k=" << k << " i=" << i;
    }
  }
}

TEST(MultiSizeTest, SingleSizeMatchesDedicatedEstimatorStatistically) {
  // The shared-walk estimator with one size is the same algorithm as
  // GraphletEstimator; check they agree to sampling noise on a long run.
  Rng rng(7);
  const Graph g = LargestConnectedComponent(HolmeKim(150, 4, 0.5, rng));
  MultiSizeEstimator joint(g, 2, {4});
  joint.Reset(3);
  joint.Run(120000);
  const auto a = joint.Result(4);

  const auto b = GraphletEstimator::Estimate(
      g, EstimatorConfig{4, 2, false, false}, 120000, 3);
  for (size_t i = 0; i < a.concentrations.size(); ++i) {
    EXPECT_NEAR(a.concentrations[i], b.concentrations[i], 0.02) << i;
  }
}

TEST(MultiSizeTest, StepAccountingIsShared) {
  const Graph g = KarateClub();
  MultiSizeEstimator estimator(g, 1, {3, 4});
  estimator.Reset(1);
  estimator.Run(5000);
  EXPECT_EQ(estimator.Steps(), 5000u);
  EXPECT_EQ(estimator.Result(3).steps, 5000u);
  EXPECT_EQ(estimator.Result(4).steps, 5000u);
  EXPECT_GT(estimator.Result(3).valid_samples, 0u);
  EXPECT_GT(estimator.Result(4).valid_samples, 0u);
}

TEST(MultiSizeTest, ValidatesConfiguration) {
  const Graph g = KarateClub();
  EXPECT_THROW(MultiSizeEstimator(g, 2, {}), std::invalid_argument);
  EXPECT_THROW(MultiSizeEstimator(g, 2, {2}), std::invalid_argument);
  EXPECT_THROW(MultiSizeEstimator(g, 2, {7}), std::invalid_argument);
  EXPECT_THROW(MultiSizeEstimator(g, 3, {4, 5}, /*css=*/true),
               std::invalid_argument);
  MultiSizeEstimator ok(g, 2, {3, 4});
  EXPECT_THROW(ok.Result(5), std::invalid_argument);
}

}  // namespace
}  // namespace grw
