// "Any size" claim (paper Section 1): the framework is generic in k. These
// tests exercise the full pipeline at k = 6 — catalog, classifier, alpha,
// CSS, estimation against ESU ground truth — which the paper never
// evaluates but the machinery supports.

#include <gtest/gtest.h>

#include "core/alpha.h"
#include "core/css.h"
#include "core/estimator.h"
#include "exact/esu.h"
#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "graphlet/classifier.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(SixNodeTest, CatalogHas112Types) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(6);
  EXPECT_EQ(catalog.NumTypes(), 112);
  EXPECT_EQ(catalog.Get(0).num_edges, 5);     // trees first
  EXPECT_EQ(catalog.Get(111).num_edges, 15);  // K6 last
}

TEST(SixNodeTest, AlphaAnchors) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(6);
  // The 6-path (degree sequence 1,1,2,2,2,2) is the unique tree with a
  // Hamiltonian path: alpha under SRW1 is exactly 2.
  int path_id = -1;
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    const Graphlet& g = catalog.Get(id);
    int deg2 = 0;
    for (int v = 0; v < 6; ++v) deg2 += g.degree[v] == 2;
    if (g.num_edges == 5 && deg2 == 4) path_id = id;
  }
  ASSERT_GE(path_id, 0);
  EXPECT_EQ(Alpha(catalog.Get(path_id), 1), 2);
  // K6: 6!/2 undirected Hamiltonian paths -> alpha = 720.
  EXPECT_EQ(Alpha(catalog.Get(111), 1), 720);
  // PSRW closed form: K6 has |S| = 6 connected 5-subsets -> 6*5 = 30.
  EXPECT_EQ(Alpha(catalog.Get(111), 5), 30);
  // The 5-star (one center, five leaves) is invisible to node walks.
  int star_id = -1;
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    const Graphlet& g = catalog.Get(id);
    int max_deg = 0;
    for (int v = 0; v < 6; ++v) max_deg = std::max(max_deg, g.degree[v]);
    if (g.num_edges == 5 && max_deg == 5) star_id = id;
  }
  ASSERT_GE(star_id, 0);
  EXPECT_EQ(Alpha(catalog.Get(star_id), 1), 0);
  // ... but the edge walk sees it: alpha = 5! orderings of its edges.
  EXPECT_EQ(Alpha(catalog.Get(star_id), 2), 120);
}

TEST(SixNodeTest, ClassifierRoundTripsCanonicalForms) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(6);
  const GraphletClassifier& classifier = GraphletClassifier::ForSize(6);
  Rng rng(3);
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    // Random relabelings classify back to the catalog id.
    int perm[6] = {0, 1, 2, 3, 4, 5};
    for (int i = 5; i > 0; --i) {
      std::swap(perm[i], perm[rng.UniformInt(i + 1)]);
    }
    const uint32_t mask =
        ApplyPermutation(catalog.Get(id).canonical_mask, 6, perm);
    EXPECT_EQ(classifier.Type(mask), id);
  }
}

TEST(SixNodeTest, EstimatorConvergesOnSmallGraph) {
  Rng rng(63);
  const Graph g = LargestConnectedComponent(HolmeKim(120, 4, 0.6, rng));
  const auto exact = CountGraphletsEsu(g, 6);
  const auto truth = ConcentrationsFromCounts(exact);

  EstimatorConfig config{6, 2, false, false};  // SRW2 at k = 6
  std::vector<double> mean(truth.size(), 0.0);
  const int chains = 6;
  for (int c = 0; c < chains; ++c) {
    const auto result =
        GraphletEstimator::Estimate(g, config, 60000, 600 + c);
    for (size_t i = 0; i < mean.size(); ++i) {
      mean[i] += result.concentrations[i] / chains;
    }
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(mean[i], truth[i], 0.05) << "type " << i;
  }
}

TEST(SixNodeTest, CssTableBuildsAndNormalizes) {
  // CSS entries must partition the sequences (counts sum to alpha) at
  // k = 6 as well.
  const CssTable& table = CssTable::For(6, 2);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(6);
  for (int id = 0; id < catalog.NumTypes(); id += 13) {  // sample types
    int64_t total = 0;
    for (const CssEntry& entry : table.Entries(id)) total += entry.count;
    EXPECT_EQ(total, Alpha(catalog.Get(id), 2)) << "id=" << id;
  }
}

}  // namespace
}  // namespace grw
