// Tests for the embedding (non-induced/induced) machinery.

#include "graphlet/noninduced.h"

#include <gtest/gtest.h>

#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {
namespace {

int Id(int k, const char* name) {
  return GraphletCatalog::ForSize(k).IdByName(name);
}

TEST(NonInducedTest, AutomorphismCountsOfNamedGraphlets) {
  EXPECT_EQ(AutomorphismCount(3, Id(3, "wedge")), 2);
  EXPECT_EQ(AutomorphismCount(3, Id(3, "triangle")), 6);
  EXPECT_EQ(AutomorphismCount(4, Id(4, "4-path")), 2);
  EXPECT_EQ(AutomorphismCount(4, Id(4, "3-star")), 6);
  EXPECT_EQ(AutomorphismCount(4, Id(4, "4-cycle")), 8);
  EXPECT_EQ(AutomorphismCount(4, Id(4, "tailed-triangle")), 2);
  EXPECT_EQ(AutomorphismCount(4, Id(4, "chordal-cycle")), 4);
  EXPECT_EQ(AutomorphismCount(4, Id(4, "4-clique")), 24);
}

TEST(NonInducedTest, PathEmbeddingsAreThePathSamplingBetas) {
  // Spanning 3-paths per 4-node graphlet (Jha et al. constants): path 1,
  // star 0, cycle 4, tailed-triangle 2, chordal-cycle 6, clique 12.
  const int path = Id(4, "4-path");
  EXPECT_EQ(EmbeddingCount(4, path, Id(4, "4-path")), 1);
  EXPECT_EQ(EmbeddingCount(4, path, Id(4, "3-star")), 0);
  EXPECT_EQ(EmbeddingCount(4, path, Id(4, "4-cycle")), 4);
  EXPECT_EQ(EmbeddingCount(4, path, Id(4, "tailed-triangle")), 2);
  EXPECT_EQ(EmbeddingCount(4, path, Id(4, "chordal-cycle")), 6);
  EXPECT_EQ(EmbeddingCount(4, path, Id(4, "4-clique")), 12);
}

TEST(NonInducedTest, StarEmbeddings) {
  const int star = Id(4, "3-star");
  EXPECT_EQ(EmbeddingCount(4, star, Id(4, "3-star")), 1);
  EXPECT_EQ(EmbeddingCount(4, star, Id(4, "4-cycle")), 0);
  EXPECT_EQ(EmbeddingCount(4, star, Id(4, "tailed-triangle")), 1);
  EXPECT_EQ(EmbeddingCount(4, star, Id(4, "chordal-cycle")), 2);
  EXPECT_EQ(EmbeddingCount(4, star, Id(4, "4-clique")), 4);
}

TEST(NonInducedTest, MatrixIsUnitriangularInCatalogOrder) {
  for (int k = 3; k <= 5; ++k) {
    const auto b = EmbeddingMatrix(k);
    const int n = static_cast<int>(b.size());
    for (int h = 0; h < n; ++h) {
      EXPECT_EQ(b[h][h], 1) << "k=" << k << " h=" << h;
      for (int g = 0; g < h; ++g) {
        EXPECT_EQ(b[h][g], 0)
            << "denser pattern cannot embed in sparser one";
      }
    }
  }
}

TEST(NonInducedTest, RoundTripInducedNonInduced) {
  Rng rng(3);
  for (int k = 3; k <= 5; ++k) {
    const int n = GraphletCatalog::ForSize(k).NumTypes();
    std::vector<double> induced(n);
    for (int i = 0; i < n; ++i) {
      induced[i] = static_cast<double>(rng.UniformInt(1000));
    }
    const auto non_induced = NonInducedFromInduced(k, induced);
    const auto back = InducedFromNonInduced(k, non_induced);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], induced[i], 1e-6) << "k=" << k << " i=" << i;
    }
  }
}

TEST(NonInducedTest, WedgesInTriangle) {
  // A triangle contains 3 spanning wedges.
  EXPECT_EQ(EmbeddingCount(3, Id(3, "wedge"), Id(3, "triangle")), 3);
}

}  // namespace
}  // namespace grw
