// Cross-validation of the exact counters: closed-form triangle and 4-node
// counts against ESU enumeration, on both hand-built fixtures and random
// graphs (property-style sweeps).

#include "exact/exact.h"

#include <gtest/gtest.h>

#include "exact/esu.h"
#include "exact/four_count.h"
#include "exact/triangle.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "graphlet/noninduced.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(TriangleTest, HandComputedFixtures) {
  EXPECT_EQ(CountTriangles(Complete(4)).total, 4u);
  EXPECT_EQ(CountTriangles(Complete(5)).total, 10u);
  EXPECT_EQ(CountTriangles(Cycle(5)).total, 0u);
  EXPECT_EQ(CountTriangles(Star(6)).total, 0u);
  // Karate club has 45 triangles (classic known value).
  EXPECT_EQ(CountTriangles(KarateClub()).total, 45u);
}

TEST(TriangleTest, PerNodeAndPerEdgeSumsAreConsistent) {
  Rng rng(11);
  const Graph g = HolmeKim(300, 4, 0.4, rng);
  const TriangleCounts tc = CountTriangles(g);
  uint64_t node_sum = 0;
  for (uint64_t c : tc.per_node) node_sum += c;
  EXPECT_EQ(node_sum, 3 * tc.total);  // each triangle has 3 nodes
  uint64_t edge_sum = 0;
  for (uint32_t c : tc.per_edge) edge_sum += c;
  EXPECT_EQ(edge_sum, 3 * tc.total);  // ... and 3 edges
}

TEST(EdgeIndexTest, RoundTrips) {
  Rng rng(3);
  const Graph g = ErdosRenyi(50, 200, rng);
  const EdgeIndex index(g);
  EXPECT_EQ(index.NumEdges(), g.NumEdges());
  for (uint64_t id = 0; id < index.NumEdges(); ++id) {
    const auto [u, v] = index.Endpoints(id);
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.HasEdge(u, v));
    EXPECT_EQ(index.Id(u, v), id);
    EXPECT_EQ(index.Id(v, u), id);
  }
}

TEST(EsuTest, CountsMatchBruteForceOnSmallGraphs) {
  // Brute force: all C(n, k) subsets, keep connected ones.
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = ErdosRenyi(12, 20 + trial, rng);
    for (int k = 3; k <= 5; ++k) {
      uint64_t brute = 0;
      std::vector<VertexId> subset(k);
      const VertexId n = g.NumNodes();
      // Enumerate k-subsets with an odometer.
      std::vector<int> idx(k);
      for (int i = 0; i < k; ++i) idx[i] = i;
      if (n >= static_cast<VertexId>(k)) {
        while (true) {
          for (int i = 0; i < k; ++i) {
            subset[i] = static_cast<VertexId>(idx[i]);
          }
          uint32_t visited = 1;
          uint32_t frontier = 1;
          while (frontier) {
            uint32_t next = 0;
            for (int i = 0; i < k; ++i) {
              if (!((frontier >> i) & 1u)) continue;
              for (int j = 0; j < k; ++j) {
                if (!((visited >> j) & 1u) &&
                    g.HasEdge(subset[i], subset[j])) {
                  next |= 1u << j;
                }
              }
            }
            visited |= next;
            frontier = next;
          }
          if (visited == (1u << k) - 1u) ++brute;
          int pos = k - 1;
          while (pos >= 0 && idx[pos] == static_cast<int>(n) - k + pos) {
            --pos;
          }
          if (pos < 0) break;
          ++idx[pos];
          for (int i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
        }
      }
      EXPECT_EQ(CountConnectedSubgraphs(g, k), brute)
          << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(EsuTest, CliqueSubgraphCounts) {
  // K6 has C(6, k) connected k-subgraphs for every k.
  const Graph g = Complete(6);
  EXPECT_EQ(CountConnectedSubgraphs(g, 3), 20u);
  EXPECT_EQ(CountConnectedSubgraphs(g, 4), 15u);
  EXPECT_EQ(CountConnectedSubgraphs(g, 5), 6u);
}

TEST(EsuTest, GraphletCountsOnFixtures) {
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  // C4 (4-cycle graph): exactly one 4-node graphlet, the cycle.
  const auto cycle_counts = CountGraphletsEsu(Cycle(4), 4);
  for (int id = 0; id < c4.NumTypes(); ++id) {
    EXPECT_EQ(cycle_counts[id], id == c4.IdByName("4-cycle") ? 1 : 0);
  }
  // K5: every 4-subset is a 4-clique.
  const auto k5_counts = CountGraphletsEsu(Complete(5), 4);
  EXPECT_EQ(k5_counts[c4.IdByName("4-clique")], 5);
}

TEST(FourCountTest, MatchesEsuOnRandomGraphs) {
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph raw = trial % 2 == 0
                          ? ErdosRenyi(60, 180 + 10 * trial, rng)
                          : HolmeKim(60, 3, 0.5, rng);
    const Graph g = LargestConnectedComponent(raw);
    const auto formula = CountFourNodeGraphlets(g);
    const auto esu = CountGraphletsEsu(g, 4);
    ASSERT_EQ(formula.size(), esu.size());
    for (size_t id = 0; id < esu.size(); ++id) {
      EXPECT_EQ(formula[id], esu[id]) << "trial=" << trial << " id=" << id;
    }
  }
}

TEST(FourCountTest, NonInducedMatchesEmbeddingMatrixTimesInduced) {
  Rng rng(29);
  const Graph g = LargestConnectedComponent(HolmeKim(80, 4, 0.5, rng));
  const auto non_induced = CountFourNodeNonInduced(g);
  const auto induced = CountGraphletsEsu(g, 4);
  std::vector<double> induced_d(induced.begin(), induced.end());
  const auto reconstructed = NonInducedFromInduced(4, induced_d);
  for (size_t id = 0; id < non_induced.size(); ++id) {
    EXPECT_DOUBLE_EQ(static_cast<double>(non_induced[id]),
                     reconstructed[id])
        << "id=" << id;
  }
}

TEST(ExactFacadeTest, ThreeNodeCountsOnFixtures) {
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  // The paper's running example (Figure 1): 4 nodes, edges
  // {1-2, 1-3, 1-4, 2-3, 3-4} — two triangles, two wedges,
  // concentrations 0.5 / 0.5 (Section 2.1 example).
  const Graph g =
      FromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}});
  const auto counts = ExactGraphletCounts(g, 3);
  EXPECT_EQ(counts[c3.IdByName("wedge")], 2);
  EXPECT_EQ(counts[c3.IdByName("triangle")], 2);
  const auto conc = ExactConcentrations(g, 3);
  EXPECT_DOUBLE_EQ(conc[0], 0.5);
  EXPECT_DOUBLE_EQ(conc[1], 0.5);
}

TEST(ExactFacadeTest, ThreeNodeMatchesEsu) {
  Rng rng(31);
  const Graph g = LargestConnectedComponent(ErdosRenyi(80, 240, rng));
  const auto formula = ExactGraphletCounts(g, 3);
  const auto esu = CountGraphletsEsu(g, 3);
  EXPECT_EQ(formula, esu);
}

TEST(ExactFacadeTest, FiveNodeCliqueFixture) {
  // K6 contains C(6,5) = 6 five-cliques and nothing else at k = 5.
  const auto counts = ExactGraphletCounts(Complete(6), 5);
  const GraphletCatalog& c5 = GraphletCatalog::ForSize(5);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, 6);
  EXPECT_EQ(counts[c5.NumTypes() - 1], 6);  // densest catalog id = clique
}

TEST(ClusteringTest, GlobalClusteringCoefficient) {
  // Triangle: 1.0. Star: 0. Paper Section 2.1: cc = 3*c32/(2*c32 + 1).
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Complete(3)), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Star(10)), 0.0);
  Rng rng(37);
  const Graph g = LargestConnectedComponent(HolmeKim(200, 4, 0.6, rng));
  const auto conc = ExactConcentrations(g, 3);
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  const double c32 = conc[c3.IdByName("triangle")];
  EXPECT_NEAR(GlobalClusteringCoefficient(g), 3 * c32 / (2 * c32 + 1),
              1e-12);
}

}  // namespace
}  // namespace grw
