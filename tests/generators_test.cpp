// Tests for graph generators and the I/O round trip.

#include "graph/generators.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "graph/builder.h"
#include "graph/io.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(GeneratorsTest, DeterministicFamilies) {
  EXPECT_EQ(Complete(5).NumEdges(), 10u);
  EXPECT_EQ(Path(6).NumEdges(), 5u);
  EXPECT_EQ(Cycle(6).NumEdges(), 6u);
  EXPECT_EQ(Star(6).NumEdges(), 5u);
  EXPECT_EQ(CompleteBipartite(3, 4).NumEdges(), 12u);
  EXPECT_EQ(Lollipop(4, 3).NumEdges(), 6u + 3u);
  for (const Graph& g :
       {Complete(5), Path(6), Cycle(6), Star(6), CompleteBipartite(3, 4),
        Lollipop(4, 3), KarateClub()}) {
    EXPECT_TRUE(g.IsConnected());
  }
}

TEST(GeneratorsTest, KarateClubShape) {
  const Graph g = KarateClub();
  EXPECT_EQ(g.NumNodes(), 34u);
  EXPECT_EQ(g.NumEdges(), 78u);
  EXPECT_EQ(g.Degree(33), 17u);  // the instructor's hub degree
}

TEST(GeneratorsTest, ErdosRenyiHasRequestedShape) {
  Rng rng(1);
  const Graph g = ErdosRenyi(500, 1500, rng);
  EXPECT_EQ(g.NumNodes(), 500u);
  EXPECT_EQ(g.NumEdges(), 1500u);
}

TEST(GeneratorsTest, BarabasiAlbertIsSkewedAndDense) {
  Rng rng(2);
  const Graph g = BarabasiAlbert(2000, 5, rng);
  EXPECT_GT(g.NumEdges(), 2000u * 5 * 8 / 10);
  // Preferential attachment produces hubs well above the mean degree.
  EXPECT_GT(g.MaxDegree(), 50u);
}

TEST(GeneratorsTest, HolmeKimTriadFormationRaisesClustering) {
  Rng rng1(3);
  Rng rng2(3);
  const Graph low = HolmeKim(3000, 4, 0.0, rng1);
  const Graph high = HolmeKim(3000, 4, 0.8, rng2);
  // Compare wedge-closure ratios via triangle counts (local import to
  // avoid a dependency cycle in the test target: triangles per wedge).
  auto closure = [](const Graph& g) {
    uint64_t closed = 0;
    uint64_t total = 0;
    for (VertexId u = 0; u < g.NumNodes(); ++u) {
      const auto nbrs = g.Neighbors(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          ++total;
          if (g.HasEdge(nbrs[i], nbrs[j])) ++closed;
        }
      }
    }
    return static_cast<double>(closed) / static_cast<double>(total);
  };
  EXPECT_GT(closure(high), 2.0 * closure(low));
}

TEST(GeneratorsTest, HolmeKimDegreeCapIsRespected) {
  Rng rng(4);
  const Graph g = HolmeKim(4000, 4, 0.5, rng, /*max_degree=*/64);
  // The cap bounds the tail up to the +m slack of a node's own batch.
  EXPECT_LE(g.MaxDegree(), 64u + 4u);
}

TEST(GeneratorsTest, WattsStrogatzShape) {
  Rng rng(5);
  const Graph g = WattsStrogatz(1000, 3, 0.1, rng);
  EXPECT_EQ(g.NumNodes(), 1000u);
  // ~ n*k edges modulo rewiring collisions.
  EXPECT_GT(g.NumEdges(), 2800u);
  EXPECT_LE(g.NumEdges(), 3000u);
}

TEST(IoTest, EdgeListRoundTrip) {
  Rng rng(6);
  const Graph g = LargestConnectedComponent(ErdosRenyi(100, 300, rng));
  const std::string path =
      (std::filesystem::temp_directory_path() / "grw_io_test.txt").string();
  SaveEdgeList(g, path);
  const Graph loaded = LoadEdgeList(path, /*largest_cc=*/false);
  EXPECT_EQ(loaded.NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      EXPECT_TRUE(loaded.HasEdge(u, v));
    }
  }
  std::filesystem::remove(path);
}

TEST(IoTest, ParsesCommentsAndDirtyInput) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "grw_io_dirty.txt").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# snap comment\n% konect comment\n1 2\n2 3\n2 3\n3 3\n", f);
    std::fputs("4 1\n", f);  // no trailing newline handled too
    std::fclose(f);
  }
  const Graph g = LoadEdgeList(path, /*largest_cc=*/false);
  EXPECT_EQ(g.NumNodes(), 4u);  // ids 1,2,3,4 (self-loop 3-3 dropped)
  EXPECT_EQ(g.NumEdges(), 3u);
  std::filesystem::remove(path);
}

TEST(IoTest, MissingFileThrows) {
  EXPECT_THROW(LoadEdgeList("/nonexistent/nowhere.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace grw
