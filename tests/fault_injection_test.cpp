// Fault-injection subsystem tests (util/fault.h) and the end-to-end
// hardening it gates:
//
//   * trigger semantics — spec parsing, nth/once/probability schedules,
//     pattern matching, reconfiguration, counter snapshots — run in
//     EVERY build (FaultSite is directly constructible even when the
//     GRW_FAULT macro compiles to `false`);
//   * the crawl transient-failure model, which is pure simulation and
//     needs no injection build either: estimates bit-identical to a
//     failure-free run at any thread count, only the cost counters move;
//   * client resilience against real misbehaving peers (read timeouts,
//     RETRY_AFTER load sheds, refused connections) via sockets this test
//     controls;
//   * chaos scenarios gated on fault::CompiledIn() — crash-safe
//     SaveGraphBinary (a child process dies mid-write; the destination
//     must never load), mmap truncation detection, and the headline
//     suite: 8 concurrent clients against a server with p=0.01 faults in
//     the IO and scheduler layers, where every reply must be either the
//     bit-identical estimate or a clean structured error.

#include "util/fault.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_ids.h"
#include "engine/engine.h"
#include "graph/builder.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/posix_io.h"
#include "util/rng.h"

namespace grw {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// Every test leaves the process-global injector disarmed: the
// configuration outlives the test that installed it otherwise.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Configure("", 0); }
};

// ------------------------------------------------------------- triggers --

TEST_F(FaultTest, SpecParsingRejectsMalformedClauses) {
  const char* bad[] = {
      "no-equals",        "=p0.5",          "site=",
      "site=p",           "site=p2",        "site=p-0.5",
      "site=pz",          "site=nth:",      "site=nth:0",
      "site=nth:x",       "site=once:0",    "site=once:abc",
      "site=frobnicate",  "a=p0.1;b=wat",
  };
  for (const char* spec : bad) {
    EXPECT_THROW(fault::Configure(spec), std::runtime_error) << spec;
  }
  // Good specs install and report back verbatim; a throwing Configure
  // must not have clobbered the previous good one.
  fault::Configure("a=p0.25; b.*=nth:3 ;c=once ;d=once:7;*=p1", 9);
  EXPECT_EQ(fault::ActiveSpec(), "a=p0.25; b.*=nth:3 ;c=once ;d=once:7;*=p1");
  EXPECT_THROW(fault::Configure("broken"), std::runtime_error);
  EXPECT_EQ(fault::ActiveSpec(), "a=p0.25; b.*=nth:3 ;c=once ;d=once:7;*=p1");
  fault::Configure("");
  EXPECT_EQ(fault::ActiveSpec(), "");
}

TEST_F(FaultTest, NthAndOnceSchedulesFireExactlyWhereSpecified) {
  fault::FaultSite nth_site("test.trigger.nth");
  fault::FaultSite once_site("test.trigger.once");
  fault::Configure("test.trigger.nth=nth:3;test.trigger.once=once:5");
  std::vector<int> nth_fires;
  std::vector<int> once_fires;
  for (int call = 1; call <= 12; ++call) {
    if (nth_site.Fire()) nth_fires.push_back(call);
    if (once_site.Fire()) once_fires.push_back(call);
  }
  EXPECT_EQ(nth_fires, (std::vector<int>{3, 6, 9, 12}));
  EXPECT_EQ(once_fires, (std::vector<int>{5}));
  EXPECT_EQ(nth_site.calls(), 12u);
  EXPECT_EQ(nth_site.fired(), 4u);
}

TEST_F(FaultTest, ReconfigureRestartsTheScheduleAtOrdinalOne) {
  fault::FaultSite site("test.trigger.reset");
  fault::Configure("test.trigger.reset=once");
  EXPECT_TRUE(site.Fire());   // call 1 of this schedule
  EXPECT_FALSE(site.Fire());  // once means once
  // Same spec reinstalled: ordinals restart, the site fires again.
  fault::Configure("test.trigger.reset=once");
  EXPECT_TRUE(site.Fire());
  EXPECT_FALSE(site.Fire());
  EXPECT_EQ(site.fired(), 1u);  // fired counter also restarted
}

TEST_F(FaultTest, PatternsMatchExactPrefixAndWildcardFirstWins) {
  fault::FaultSite io_read("test.pattern.io.read");
  fault::FaultSite io_write("test.pattern.io.write");
  fault::FaultSite other("test.pattern.other");
  // First matching clause wins: the exact clause shadows the prefix one
  // for io.read, the prefix catches io.write, the wildcard the rest.
  fault::Configure(
      "test.pattern.io.read=once:2;test.pattern.io.*=once:1;*=nth:4");
  EXPECT_FALSE(io_read.Fire());  // once:2 → not on call 1
  EXPECT_TRUE(io_read.Fire());
  EXPECT_TRUE(io_write.Fire());  // once:1
  EXPECT_FALSE(other.Fire());    // nth:4
  EXPECT_FALSE(other.Fire());
  EXPECT_FALSE(other.Fire());
  EXPECT_TRUE(other.Fire());
  // An unmatched site never fires.
  fault::Configure("something.else.entirely=p1");
  fault::FaultSite unmatched("test.pattern.unmatched");
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(unmatched.Fire());
}

TEST_F(FaultTest, ProbabilityScheduleIsDeterministicPerSeedAndSite) {
  fault::FaultSite site("test.prob.determinism");
  const auto schedule = [&](uint64_t seed, int calls) {
    fault::Configure("test.prob.determinism=p0.2", seed);
    std::vector<bool> fires;
    for (int i = 0; i < calls; ++i) fires.push_back(site.Fire());
    return fires;
  };
  const std::vector<bool> a = schedule(7, 400);
  const std::vector<bool> b = schedule(7, 400);
  EXPECT_EQ(a, b);  // same seed → identical schedule
  const std::vector<bool> c = schedule(8, 400);
  EXPECT_NE(a, c);  // different seed → different schedule
  // The rate is in the right ballpark (400 draws at p=0.2: mean 80).
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 40);
  EXPECT_LT(fired, 130);
  // p1 always fires, p0 never.
  fault::Configure("test.prob.determinism=p1");
  EXPECT_TRUE(site.Fire());
  fault::Configure("test.prob.determinism=p0");
  EXPECT_FALSE(site.Fire());
}

TEST_F(FaultTest, ScheduleIsThreadCountInvariantAndSnapshotCounts) {
  // The nth schedule is a function of the call ordinal, not the calling
  // thread: 8 threads hammering one site fire exactly calls/nth times.
  fault::FaultSite site("test.threads.invariant");
  fault::Configure("test.threads.invariant=nth:10");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (site.Fire()) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), kThreads * kPerThread / 10);
  // Snapshot() exposes the same counters for coverage assertions.
  bool found = false;
  for (const fault::SiteCounts& counts : fault::Snapshot()) {
    if (counts.site != "test.threads.invariant") continue;
    found = true;
    EXPECT_EQ(counts.calls, uint64_t{kThreads * kPerThread});
    EXPECT_EQ(counts.fired, uint64_t{kThreads * kPerThread / 10});
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------- crawl failure model --

TEST_F(FaultTest, CrawlFailureModelKeepsEstimatesBitIdentical) {
  Rng rng(23);
  Graph g = LargestConnectedComponent(HolmeKim(400, 4, 0.5, rng));
  g.BuildAdjacencyIndex();
  const EstimatorConfig config{4, 2, true, false};

  EngineOptions clean;
  clean.chains = 4;
  clean.max_steps = 5000;
  clean.crawl.enabled = true;
  clean.crawl.cache_entries = 64;
  const EngineResult reference =
      EstimationEngine(g, config, clean).Run();

  EngineOptions faulty = clean;
  faulty.crawl.fail_prob = 0.2;
  faulty.crawl.fail_max_retries = 3;
  faulty.crawl.fail_backoff_us = 100.0;

  CrawlStats first_stats;
  for (const unsigned threads : {1u, 2u, 8u}) {
    EngineOptions options = faulty;
    options.threads = threads;
    const EngineResult run = EstimationEngine(g, config, options).Run();
    // The failure model is cost-only: the estimate is the failure-free
    // one, bit for bit, at every thread count.
    ASSERT_EQ(run.merged.concentrations.size(),
              reference.merged.concentrations.size());
    for (size_t i = 0; i < run.merged.concentrations.size(); ++i) {
      EXPECT_EQ(run.merged.concentrations[i],
                reference.merged.concentrations[i])
          << "threads=" << threads << " type " << i;
    }
    // ...but the resilience counters actually moved, and they are
    // themselves deterministic (per-chain failure RNG): thread count
    // must not change the simulated failure history either.
    EXPECT_GT(run.access.transient_failures, 0u) << threads;
    EXPECT_GT(run.access.retries, 0u) << threads;
    EXPECT_GT(run.access.backoff_latency_us, 0.0) << threads;
    if (threads == 1u) {
      first_stats = run.access;
    } else {
      EXPECT_EQ(run.access.transient_failures,
                first_stats.transient_failures);
      EXPECT_EQ(run.access.retries, first_stats.retries);
      EXPECT_EQ(run.access.giveups, first_stats.giveups);
      EXPECT_EQ(run.access.backoff_latency_us,
                first_stats.backoff_latency_us);
    }
  }
  // Zero retries allowed: every failure streak becomes a giveup (the
  // slow-path fallback), still with bit-identical estimates.
  EngineOptions no_retries = faulty;
  no_retries.crawl.fail_prob = 0.5;
  no_retries.crawl.fail_max_retries = 0;
  const EngineResult giveup_run =
      EstimationEngine(g, config, no_retries).Run();
  EXPECT_GT(giveup_run.access.giveups, 0u);
  for (size_t i = 0; i < giveup_run.merged.concentrations.size(); ++i) {
    EXPECT_EQ(giveup_run.merged.concentrations[i],
              reference.merged.concentrations[i]);
  }
}

// ------------------------------------------------- client resilience --

// A listener this test controls: bound and listening, but nothing is
// accepted (or what is accepted is scripted by the test body).
class ScriptedListener {
 public:
  ScriptedListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~ScriptedListener() {
    if (conn_ >= 0) ::close(conn_);
    if (fd_ >= 0) ::close(fd_);
  }

  int port() const { return port_; }

  int Accept() {
    conn_ = ::accept(fd_, nullptr, nullptr);
    return conn_;
  }

  // Reads one newline-terminated line off the accepted connection.
  std::string ReadLine() {
    char chunk[512];
    while (buffer_.find('\n') == std::string::npos) {
      const io::IoResult r =
          io::ReadSome(conn_, chunk, sizeof(chunk), 5000);
      if (!r.ok()) return {};
      buffer_.append(chunk, r.bytes);
    }
    const size_t nl = buffer_.find('\n');
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
  }

  void WriteLine(const std::string& line) {
    EXPECT_TRUE(io::WriteAll(conn_, line + "\n", 5000).ok());
  }

 private:
  int fd_ = -1;
  int conn_ = -1;
  int port_ = 0;
  std::string buffer_;
};

TEST_F(FaultTest, QueryClientReadTimeoutFiresAgainstSilentServer) {
  // The listener never answers (it never even accepts; the kernel
  // completes the handshake from the backlog). A bounded client comes
  // back with a descriptive timeout instead of hanging forever.
  ScriptedListener listener;
  serve::QueryClient::Options options;
  options.connect_timeout_ms = 2000;
  options.read_timeout_ms = 150;
  serve::QueryClient client("127.0.0.1", listener.port(), options);
  try {
    client.RoundTrip("PING");
    FAIL() << "expected a read timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no response after 150ms"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, QueryWithRetryHonorsRetryAfterThenSucceeds) {
  ScriptedListener listener;
  // Scripted peer: shed the first request with RETRY_AFTER, answer the
  // resend for real — on the SAME connection (a shed leaves the stream
  // healthy; the client must not reconnect).
  std::thread peer([&listener] {
    ASSERT_GE(listener.Accept(), 0);
    EXPECT_EQ(listener.ReadLine(), "PING");
    listener.WriteLine(serve::OverloadedResponse("busy", 5.0));
    EXPECT_EQ(listener.ReadLine(), "PING");
    listener.WriteLine(serve::PingResponse(serve::RequestLimits{}));
  });
  serve::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_ms = 1.0;
  policy.backoff_max_ms = 50.0;
  const serve::QueryOutcome outcome = serve::QueryWithRetry(
      "127.0.0.1", listener.port(), "PING", {}, policy);
  peer.join();
  EXPECT_FALSE(outcome.transport_error) << outcome.error;
  EXPECT_EQ(outcome.response, serve::PingResponse(serve::RequestLimits{}));
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.retries, 1);
}

TEST_F(FaultTest, QueryWithRetryReportsTransportFailureAfterRetries) {
  // Nothing listens on this port (bind+close to find a free one).
  int port;
  {
    ScriptedListener probe;
    port = probe.port();
  }
  serve::RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_ms = 1.0;
  policy.backoff_max_ms = 5.0;
  serve::QueryClient::Options options;
  options.connect_timeout_ms = 500;
  const serve::QueryOutcome outcome =
      serve::QueryWithRetry("127.0.0.1", port, "PING", options, policy);
  EXPECT_TRUE(outcome.transport_error);
  EXPECT_TRUE(outcome.response.empty());
  EXPECT_EQ(outcome.attempts, 3);  // max_retries + 1
  EXPECT_NE(outcome.error.find("cannot connect"), std::string::npos)
      << outcome.error;
}

TEST_F(FaultTest, NonRetryableServerErrorsAreFinal) {
  ScriptedListener listener;
  std::thread peer([&listener] {
    ASSERT_GE(listener.Accept(), 0);
    EXPECT_FALSE(listener.ReadLine().empty());
    listener.WriteLine(serve::ErrorResponse("unknown graph 'ghost'"));
  });
  serve::RetryPolicy policy;
  policy.backoff_base_ms = 1.0;
  const serve::QueryOutcome outcome = serve::QueryWithRetry(
      "127.0.0.1", listener.port(), "ESTIMATE graph=ghost k=3", {}, policy);
  peer.join();
  EXPECT_FALSE(outcome.transport_error);
  EXPECT_EQ(outcome.attempts, 1);  // a final answer is not resent
  EXPECT_EQ(outcome.response, serve::ErrorResponse("unknown graph 'ghost'"));
}

// --------------------------------------------- injected chaos (gated) --

TEST_F(FaultTest, SaveCrashNeverLeavesALoadableDestination) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "needs -DGRW_FAULT_INJECTION=1 (chaos build)";
  }
  const std::string path = TempPath("grw_fault_crash.grwb");
  fs::remove(path);

  // The child dies (simulated kill -9) between writing the offsets array
  // and the neighbor data — the worst moment: a straight write-in-place
  // would leave a header that validates over garbage.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    fault::Configure("grwb.save.crash=once");
    SaveGraphBinary(KarateClub(), path);
    ::_exit(0);  // not reached: the site _exit(137)s mid-save
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137);

  // The destination path must not exist at all: the temp file was never
  // renamed over it. Any leftover temp must not pass for a snapshot.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_THROW(LoadGraphBinary(path), std::exception);
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("grw_fault_crash.grwb.tmp.", 0) == 0) {
      // The leftover carries the magic (it IS an interrupted .grwb
      // write) but must fail validation — nothing can load it as a
      // snapshot.
      EXPECT_THROW(LoadGraphBinary(entry.path().string()),
                   SnapshotCorruptError)
          << name;
      fs::remove(entry.path());
    }
  }
}

TEST_F(FaultTest, SaveWriteFailureCleansUpAndRetrySucceeds) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "needs -DGRW_FAULT_INJECTION=1 (chaos build)";
  }
  const std::string path = TempPath("grw_fault_savefail.grwb");
  fs::remove(path);
  fault::Configure("grwb.save.write=once");
  EXPECT_THROW(SaveGraphBinary(KarateClub(), path), std::runtime_error);
  EXPECT_FALSE(fs::exists(path));  // nothing half-written at the target
  // The failed attempt unlinked its temp file.
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path())) {
    EXPECT_NE(entry.path().filename().string().rfind(
                  "grw_fault_savefail.grwb.tmp.", 0),
              0u);
  }
  // Disarmed, the same save succeeds and round-trips.
  fault::Configure("");
  SaveGraphBinary(KarateClub(), path);
  const Graph loaded = LoadGraphBinary(path, /*verify_checksum=*/true);
  EXPECT_EQ(loaded.Summary(), KarateClub().Summary());
  fs::remove(path);
}

TEST_F(FaultTest, MmapShrinkDetectionRefusesTheMapping) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "needs -DGRW_FAULT_INJECTION=1 (chaos build)";
  }
  const std::string path = TempPath("grw_fault_shrink.grwb");
  SaveGraphBinary(KarateClub(), path);
  fault::Configure("mmap.shrink=once");
  try {
    LoadGraphBinary(path);
    FAIL() << "expected the shrink check to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated while mapping"),
              std::string::npos)
        << e.what();
  }
  fault::Configure("");
  EXPECT_NO_THROW(LoadGraphBinary(path));
  fs::remove(path);
}

TEST_F(FaultTest, ChaosEightClientsZeroWrongAnswers) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "needs -DGRW_FAULT_INJECTION=1 (chaos build)";
  }
  Rng rng(31);
  Graph fixture = LargestConnectedComponent(HolmeKim(500, 4, 0.5, rng));
  fixture.BuildAdjacencyIndex();

  // The reference answer, computed before any fault is armed.
  const std::string line = "ESTIMATE graph=fix k=4 steps=8000 chains=2";
  const auto parsed = serve::ParseRequestLine(line, serve::RequestLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  const serve::EstimateRequest& req = parsed.request->estimate;
  const EngineResult direct =
      EstimationEngine(fixture, req.config, serve::ToEngineOptions(req))
          .Run();
  std::vector<std::string> expected;
  for (const int id : PaperOrder(4)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g",
                  direct.merged.concentrations[id]);
    expected.emplace_back(buf);
  }

  serve::SnapshotRegistry registry;
  registry.RegisterGraph("fix", fixture);
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.scheduler.workers = 4;
  serve::ServeServer server(&registry, server_options);
  server.Start();

  // p=0.01 faults across the serve path: admission sheds, worker blowups,
  // injected EINTR and short writes in every socket loop. None of these
  // may ever produce a WRONG answer — only the right one or a clean
  // structured error.
  fault::Configure(
      "serve.admit=p0.01;serve.job=p0.01;io.read.eintr=p0.01;"
      "io.write.eintr=p0.01;io.write.short=p0.01",
      2026);

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::atomic<int> correct{0};
  std::atomic<int> structured_errors{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      serve::RetryPolicy policy;
      policy.max_retries = 6;
      policy.backoff_base_ms = 1.0;
      policy.backoff_max_ms = 20.0;
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const serve::QueryOutcome outcome = serve::QueryWithRetry(
            "127.0.0.1", server.port(), line, {}, policy);
        ASSERT_FALSE(outcome.transport_error) << outcome.error;
        const auto json = serve::ParseJson(outcome.response);
        ASSERT_TRUE(json.has_value()) << outcome.response;
        const serve::JsonValue* ok = json->Find("ok");
        ASSERT_NE(ok, nullptr) << outcome.response;
        if (!ok->IsTrue()) {
          // A structured error with a non-empty message is an acceptable
          // outcome under injected faults — a wrong estimate is not.
          const serve::JsonValue* error = json->Find("error");
          ASSERT_NE(error, nullptr) << outcome.response;
          ASSERT_FALSE(error->str.empty()) << outcome.response;
          structured_errors.fetch_add(1);
          continue;
        }
        const serve::JsonValue* conc = json->Find("concentrations");
        ASSERT_NE(conc, nullptr);
        ASSERT_EQ(conc->items.size(), expected.size());
        bool identical = true;
        for (size_t i = 0; i < expected.size(); ++i) {
          if (conc->items[i].raw != expected[i]) identical = false;
        }
        if (identical) {
          correct.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  fault::Configure("");
  server.Stop();

  EXPECT_EQ(wrong.load(), 0);  // the headline: zero incorrect replies
  EXPECT_GT(correct.load(), 0);
  EXPECT_EQ(correct.load() + structured_errors.load(),
            kClients * kQueriesPerClient);
  // The chaos run actually exercised the injected layers.
  uint64_t io_calls = 0;
  for (const fault::SiteCounts& counts : fault::Snapshot()) {
    if (counts.site.rfind("io.", 0) == 0 ||
        counts.site.rfind("serve.", 0) == 0) {
      io_calls += counts.calls;
    }
  }
  EXPECT_GT(io_calls, 0u);
}

TEST_F(FaultTest, CrawlFetchSiteChargesResilienceCounters) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "needs -DGRW_FAULT_INJECTION=1 (chaos build)";
  }
  Rng rng(41);
  Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.5, rng));
  g.BuildAdjacencyIndex();
  const EstimatorConfig config{3, 1, true, true};
  EngineOptions options;
  options.max_steps = 3000;
  options.crawl.enabled = true;

  const EngineResult reference = EstimationEngine(g, config, options).Run();
  fault::Configure("crawl.fetch=nth:5");
  const EngineResult faulted = EstimationEngine(g, config, options).Run();
  fault::Configure("");

  // Injected fetch failures charge the resilience counters but never the
  // data: the estimate is bit-identical to the unfaulted run.
  EXPECT_GT(faulted.access.transient_failures, 0u);
  EXPECT_GT(faulted.access.retries, 0u);
  ASSERT_EQ(faulted.merged.concentrations.size(),
            reference.merged.concentrations.size());
  for (size_t i = 0; i < faulted.merged.concentrations.size(); ++i) {
    EXPECT_EQ(faulted.merged.concentrations[i],
              reference.merged.concentrations[i]);
  }
}

}  // namespace
}  // namespace grw
