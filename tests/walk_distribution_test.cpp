// Statistical goodness-of-fit tests for the walk substrate.
//
// Structural tests (tests/walk_test.cpp) check stationary frequencies
// within loose tolerances; these tests make the claim *statistical*: a
// Pearson chi-square test of the empirical visit distribution against the
// degree-proportional stationary distribution (paper Section 2.2), and of
// the per-state transition distribution against uniform-over-neighbors —
// the random-walk testing idiom from the node2vec exemplar. All seeds are
// fixed, so the assertions are deterministic.
//
// Method notes: successive Markov-chain states are correlated, so for the
// stationary tests the chain is thinned (every kThin-th state) to make the
// multinomial sampling model reasonable; transitions *out of* a given
// state are i.i.d. uniform draws, so the transition tests need no
// thinning. Critical values use the Wilson-Hilferty approximation at
// z = 3.29 (upper tail ~5e-4) — fixed seeds keep this deterministic, the
// small alpha keeps it robust to residual correlation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/stats.h"
#include "walk/batched_walk.h"
#include "walk/edge_walk.h"
#include "walk/node_walk.h"
#include "walk/subgraph_walk.h"

namespace grw {
namespace {

constexpr double kTailZ = 3.29;  // upper-tail z for alpha ~ 5e-4
constexpr uint64_t kThin = 25;   // thinning stride for stationary tests

// Chi-square GOF of thinned NodeWalk visits vs pi(v) = d_v / 2|E|.
void CheckNodeStationary(const Graph& g, bool nb, uint64_t seed,
                         uint64_t samples) {
  NodeWalk walk(g, nb);
  Rng rng(seed);
  walk.Reset(rng);
  std::vector<double> observed(g.NumNodes(), 0.0);
  for (uint64_t s = 0; s < samples; ++s) {
    for (uint64_t t = 0; t < kThin; ++t) walk.Step(rng);
    observed[walk.Current()] += 1.0;
  }
  const double two_m = 2.0 * static_cast<double>(g.NumEdges());
  std::vector<double> expected(g.NumNodes(), 0.0);
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    expected[v] = static_cast<double>(g.Degree(v)) / two_m *
                  static_cast<double>(samples);
    ASSERT_GE(expected[v], 5.0) << "cell too thin for chi-square";
  }
  const double stat = ChiSquareStatistic(observed, expected);
  const int df = static_cast<int>(g.NumNodes()) - 1;
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ))
      << "df=" << df << " nb=" << nb;
}

TEST(NodeWalkDistributionTest, StationaryChiSquareOnKarateClub) {
  CheckNodeStationary(KarateClub(), /*nb=*/false, /*seed=*/2001,
                      /*samples=*/20000);
}

TEST(NodeWalkDistributionTest, StationaryChiSquareOnLollipop) {
  CheckNodeStationary(Lollipop(5, 3), /*nb=*/false, /*seed=*/2002,
                      /*samples=*/15000);
}

TEST(NodeWalkDistributionTest, NonBacktrackingKeepsStationaryChiSquare) {
  // Paper Section 4.2: the NB walk has the same stationary distribution.
  CheckNodeStationary(KarateClub(), /*nb=*/true, /*seed=*/2003,
                      /*samples=*/20000);
}

TEST(NodeWalkDistributionTest, TransitionsAreUniformOverNeighborsAndReal) {
  // Conditional on being at v, the next node is uniform over N(v): i.i.d.
  // multinomial draws, the node2vec test idiom. Also: every emitted
  // transition must be an actual edge of G.
  const Graph g = KarateClub();
  NodeWalk walk(g);
  Rng rng(2004);
  walk.Reset(rng);
  // counts[v][i]: transitions v -> i-th neighbor of v.
  std::vector<std::vector<double>> counts(g.NumNodes());
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    counts[v].assign(g.Degree(v), 0.0);
  }
  std::vector<double> visits(g.NumNodes(), 0.0);
  const uint64_t steps = 300000;
  VertexId prev = walk.Current();
  for (uint64_t s = 0; s < steps; ++s) {
    walk.Step(rng);
    const VertexId cur = walk.Current();
    ASSERT_TRUE(g.HasEdge(prev, cur))
        << "walk emitted a non-edge " << prev << "-" << cur;
    const auto neighbors = g.Neighbors(prev);
    const auto it =
        std::lower_bound(neighbors.begin(), neighbors.end(), cur);
    ASSERT_TRUE(it != neighbors.end() && *it == cur);
    counts[prev][static_cast<size_t>(it - neighbors.begin())] += 1.0;
    visits[prev] += 1.0;
    prev = cur;
  }
  // Pooled chi-square across start nodes: df = sum_v (deg_v - 1).
  double stat = 0.0;
  int df = 0;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    if (g.Degree(v) < 2 || visits[v] < 5.0 * g.Degree(v)) continue;
    const std::vector<double> expected(
        g.Degree(v), visits[v] / static_cast<double>(g.Degree(v)));
    stat += ChiSquareStatistic(counts[v], expected);
    df += static_cast<int>(g.Degree(v)) - 1;
  }
  ASSERT_GT(df, 0);
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

TEST(EdgeWalkDistributionTest, StationaryChiSquareOnKarateClub) {
  // pi(e_uv) = (d_u + d_v - 2) / 2|R(2)| (paper Section 2.2 on G(2)).
  const Graph g = KarateClub();
  EdgeWalk walk(g);
  Rng rng(2005);
  walk.Reset(rng);
  std::map<std::pair<VertexId, VertexId>, double> observed;
  const uint64_t samples = 30000;
  for (uint64_t s = 0; s < samples; ++s) {
    for (uint64_t t = 0; t < kThin; ++t) walk.Step(rng);
    const auto nodes = walk.Nodes();
    observed[{nodes[0], nodes[1]}] += 1.0;
  }
  const double two_r2 = 2.0 * static_cast<double>(g.WedgeCount());
  std::vector<double> obs_cells;
  std::vector<double> exp_cells;
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u >= v) continue;
      const double expected =
          static_cast<double>(g.Degree(u) + g.Degree(v) - 2) / two_r2 *
          static_cast<double>(samples);
      ASSERT_GE(expected, 5.0) << "cell too thin for chi-square";
      const auto it = observed.find({u, v});
      obs_cells.push_back(it == observed.end() ? 0.0 : it->second);
      exp_cells.push_back(expected);
    }
  }
  const double stat = ChiSquareStatistic(obs_cells, exp_cells);
  const int df = static_cast<int>(exp_cells.size()) - 1;
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

TEST(EdgeWalkDistributionTest, EveryStateIsARealEdgeSharingOneEndpoint) {
  // G(2) adjacency: consecutive edge states share exactly d - 1 = 1
  // vertex, and every state is an existing edge of G.
  const Graph g = KarateClub();
  EdgeWalk walk(g);
  Rng rng(2006);
  walk.Reset(rng);
  std::vector<VertexId> prev(walk.Nodes().begin(), walk.Nodes().end());
  ASSERT_TRUE(g.HasEdge(prev[0], prev[1]));
  for (int s = 0; s < 20000; ++s) {
    walk.Step(rng);
    const auto nodes = walk.Nodes();
    ASSERT_TRUE(g.HasEdge(nodes[0], nodes[1]))
        << "state is not an edge: " << nodes[0] << "-" << nodes[1];
    int shared = 0;
    for (VertexId a : prev) {
      if (a == nodes[0] || a == nodes[1]) ++shared;
    }
    ASSERT_EQ(shared, 1) << "consecutive states must share one endpoint";
    prev.assign(nodes.begin(), nodes.end());
  }
}

TEST(EdgeWalkDistributionTest, TransitionsAreUniformOverNeighborStates) {
  // From state e_uv the walk picks uniformly among the d_u + d_v - 2
  // neighbor states. Pool per-state chi-squares for frequently visited
  // states on a small fixture where states recur often.
  const Graph g = Lollipop(5, 2);  // K5 plus a 2-node tail
  EdgeWalk walk(g);
  Rng rng(2007);
  walk.Reset(rng);
  using State = std::pair<VertexId, VertexId>;
  std::map<State, std::map<State, double>> transitions;
  std::map<State, double> visits;
  State prev = {walk.Nodes()[0], walk.Nodes()[1]};
  const uint64_t steps = 200000;
  for (uint64_t s = 0; s < steps; ++s) {
    walk.Step(rng);
    const State cur = {walk.Nodes()[0], walk.Nodes()[1]};
    transitions[prev][cur] += 1.0;
    visits[prev] += 1.0;
    prev = cur;
  }
  double stat = 0.0;
  int df = 0;
  for (const auto& [state, outs] : transitions) {
    const double deg = static_cast<double>(
        g.Degree(state.first) + g.Degree(state.second) - 2);
    if (visits[state] < 5.0 * deg) continue;
    // All observed next-states must be G(2) neighbors: share an endpoint.
    std::vector<double> obs;
    for (const auto& [next, count] : outs) {
      int shared = 0;
      if (next.first == state.first || next.first == state.second) ++shared;
      if (next.second == state.first || next.second == state.second) {
        ++shared;
      }
      ASSERT_EQ(shared, 1);
      obs.push_back(count);
    }
    // Unvisited neighbor states are zero-count cells.
    while (obs.size() < static_cast<size_t>(deg)) obs.push_back(0.0);
    ASSERT_LE(obs.size(), static_cast<size_t>(deg));
    const std::vector<double> expected(obs.size(), visits[state] / deg);
    stat += ChiSquareStatistic(obs, expected);
    df += static_cast<int>(deg) - 1;
  }
  ASSERT_GT(df, 0);
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

// ---------------------------------------------------------------------
// Batched kernels (walk/batched_walk.h). The equivalence suite
// (tests/batched_walk_test.cpp) already pins every lane to its scalar
// chain bit for bit; these tests make the *statistical* claim directly
// against the batched API — PrepareLanes + StepLane with independent
// per-lane streams — so a future change that weakened the contract would
// still have to produce correctly distributed walks to pass.

// Advances all lanes one transition through the batched step protocol.
template <class G>
void StepAllLanes(BatchedWalkT<G>& walk, std::vector<Rng>& rng) {
  walk.PrepareLanes();
  for (int j = 0; j < walk.lanes(); ++j) walk.StepLane(j, rng[j]);
}

std::vector<Rng> LaneRngs(BatchedWalkT<Graph>& walk, uint64_t seed) {
  std::vector<Rng> rng(walk.lanes());
  for (int j = 0; j < walk.lanes(); ++j) {
    rng[j].Seed(DeriveSeed(seed, j));
    walk.ResetLane(j, rng[j]);
  }
  return rng;
}

TEST(BatchedWalkDistributionTest, NodeStationaryChiSquarePooledOverLanes) {
  // Each lane is an independent chain with the same stationary law
  // pi(v) = d_v / 2|E|, so thinned visits pool into one multinomial.
  const Graph g = KarateClub();
  BatchedWalk walk(g, /*d=*/1, /*lanes=*/8);
  std::vector<Rng> rng = LaneRngs(walk, 3001);
  std::vector<double> observed(g.NumNodes(), 0.0);
  const uint64_t rounds = 2500;  // rounds * lanes pooled samples
  for (uint64_t s = 0; s < rounds; ++s) {
    for (uint64_t t = 0; t < kThin; ++t) StepAllLanes(walk, rng);
    for (int j = 0; j < walk.lanes(); ++j) {
      observed[walk.LaneNodes(j)[0]] += 1.0;
    }
  }
  const double samples = static_cast<double>(rounds * walk.lanes());
  const double two_m = 2.0 * static_cast<double>(g.NumEdges());
  std::vector<double> expected(g.NumNodes(), 0.0);
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    expected[v] = static_cast<double>(g.Degree(v)) / two_m * samples;
    ASSERT_GE(expected[v], 5.0) << "cell too thin for chi-square";
  }
  const double stat = ChiSquareStatistic(observed, expected);
  const int df = static_cast<int>(g.NumNodes()) - 1;
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

TEST(BatchedWalkDistributionTest, EdgeStationaryChiSquarePooledOverLanes) {
  // pi(e_uv) = (d_u + d_v - 2) / 2|R(2)| on G(2), pooled over lanes.
  const Graph g = KarateClub();
  BatchedWalk walk(g, /*d=*/2, /*lanes=*/8);
  std::vector<Rng> rng = LaneRngs(walk, 3002);
  std::map<std::pair<VertexId, VertexId>, double> observed;
  const uint64_t rounds = 4000;
  for (uint64_t s = 0; s < rounds; ++s) {
    for (uint64_t t = 0; t < kThin; ++t) StepAllLanes(walk, rng);
    for (int j = 0; j < walk.lanes(); ++j) {
      const auto nodes = walk.LaneNodes(j);
      observed[{nodes[0], nodes[1]}] += 1.0;
    }
  }
  const double samples = static_cast<double>(rounds * walk.lanes());
  const double two_r2 = 2.0 * static_cast<double>(g.WedgeCount());
  std::vector<double> obs_cells;
  std::vector<double> exp_cells;
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u >= v) continue;
      const double expected =
          static_cast<double>(g.Degree(u) + g.Degree(v) - 2) / two_r2 *
          samples;
      ASSERT_GE(expected, 5.0) << "cell too thin for chi-square";
      const auto it = observed.find({u, v});
      obs_cells.push_back(it == observed.end() ? 0.0 : it->second);
      exp_cells.push_back(expected);
    }
  }
  const double stat = ChiSquareStatistic(obs_cells, exp_cells);
  const int df = static_cast<int>(exp_cells.size()) - 1;
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

TEST(BatchedWalkDistributionTest,
     SubgraphStationaryChiSquarePooledOverLanes) {
  // pi(s) = deg_{G(3)}(s) / 2|R(3)| on a fixture small enough to
  // enumerate the full G(3) state space for the expected counts.
  const Graph g = Lollipop(4, 2);
  BatchedWalk walk(g, /*d=*/3, /*lanes=*/8);
  std::vector<Rng> rng = LaneRngs(walk, 3003);
  std::map<std::vector<VertexId>, double> observed;
  const uint64_t rounds = 3000;
  for (uint64_t s = 0; s < rounds; ++s) {
    for (uint64_t t = 0; t < kThin; ++t) StepAllLanes(walk, rng);
    for (int j = 0; j < walk.lanes(); ++j) {
      const auto nodes = walk.LaneNodes(j);
      observed[std::vector<VertexId>(nodes.begin(), nodes.end())] += 1.0;
    }
  }
  const double samples = static_cast<double>(rounds * walk.lanes());
  double degree_sum = 0.0;
  std::vector<std::pair<std::vector<VertexId>, double>> states;
  for (VertexId a = 0; a < g.NumNodes(); ++a) {
    for (VertexId b = a + 1; b < g.NumNodes(); ++b) {
      for (VertexId c = b + 1; c < g.NumNodes(); ++c) {
        const std::vector<VertexId> nodes = {a, b, c};
        if (!InducedSubgraphConnected(g, nodes)) continue;
        const double deg =
            static_cast<double>(SubgraphStateDegree(g, nodes));
        states.emplace_back(nodes, deg);
        degree_sum += deg;
      }
    }
  }
  std::vector<double> obs_cells;
  std::vector<double> exp_cells;
  for (const auto& [nodes, deg] : states) {
    const double expected = deg / degree_sum * samples;
    ASSERT_GE(expected, 5.0) << "cell too thin for chi-square";
    const auto it = observed.find(nodes);
    obs_cells.push_back(it == observed.end() ? 0.0 : it->second);
    exp_cells.push_back(expected);
  }
  const double stat = ChiSquareStatistic(obs_cells, exp_cells);
  const int df = static_cast<int>(exp_cells.size()) - 1;
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

TEST(BatchedWalkDistributionTest, NodeTransitionsUniformOverNeighbors) {
  // Conditional on lane j sitting at v, StepLane's next node is uniform
  // over N(v) — pooled per-state chi-square across all lanes (each
  // transition is an i.i.d. draw regardless of which lane made it).
  const Graph g = KarateClub();
  BatchedWalk walk(g, /*d=*/1, /*lanes=*/8);
  std::vector<Rng> rng = LaneRngs(walk, 3004);
  std::vector<std::vector<double>> counts(g.NumNodes());
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    counts[v].assign(g.Degree(v), 0.0);
  }
  std::vector<double> visits(g.NumNodes(), 0.0);
  const uint64_t rounds = 40000;
  std::vector<VertexId> prev(walk.lanes());
  for (int j = 0; j < walk.lanes(); ++j) prev[j] = walk.LaneNodes(j)[0];
  for (uint64_t s = 0; s < rounds; ++s) {
    StepAllLanes(walk, rng);
    for (int j = 0; j < walk.lanes(); ++j) {
      const VertexId cur = walk.LaneNodes(j)[0];
      ASSERT_TRUE(g.HasEdge(prev[j], cur))
          << "lane emitted a non-edge " << prev[j] << "-" << cur;
      const auto neighbors = g.Neighbors(prev[j]);
      const auto it =
          std::lower_bound(neighbors.begin(), neighbors.end(), cur);
      ASSERT_TRUE(it != neighbors.end() && *it == cur);
      counts[prev[j]][static_cast<size_t>(it - neighbors.begin())] += 1.0;
      visits[prev[j]] += 1.0;
      prev[j] = cur;
    }
  }
  double stat = 0.0;
  int df = 0;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    if (g.Degree(v) < 2 || visits[v] < 5.0 * g.Degree(v)) continue;
    const std::vector<double> expected(
        g.Degree(v), visits[v] / static_cast<double>(g.Degree(v)));
    stat += ChiSquareStatistic(counts[v], expected);
    df += static_cast<int>(g.Degree(v)) - 1;
  }
  ASSERT_GT(df, 0);
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

TEST(BatchedWalkDistributionTest,
     SubgraphTransitionsUniformOverGdNeighbors) {
  // From state s the walk picks uniformly among deg_{G(3)}(s) neighbor
  // states; pool per-state chi-squares over frequently visited states.
  const Graph g = Lollipop(5, 2);
  BatchedWalk walk(g, /*d=*/3, /*lanes=*/4);
  std::vector<Rng> rng = LaneRngs(walk, 3005);
  using State = std::vector<VertexId>;
  std::map<State, std::map<State, double>> transitions;
  std::map<State, double> visits;
  std::vector<State> prev(walk.lanes());
  for (int j = 0; j < walk.lanes(); ++j) {
    const auto nodes = walk.LaneNodes(j);
    prev[j].assign(nodes.begin(), nodes.end());
  }
  const uint64_t rounds = 30000;
  for (uint64_t s = 0; s < rounds; ++s) {
    StepAllLanes(walk, rng);
    for (int j = 0; j < walk.lanes(); ++j) {
      const auto nodes = walk.LaneNodes(j);
      State cur(nodes.begin(), nodes.end());
      transitions[prev[j]][cur] += 1.0;
      visits[prev[j]] += 1.0;
      prev[j] = std::move(cur);
    }
  }
  double stat = 0.0;
  int df = 0;
  for (const auto& [state, outs] : transitions) {
    const double deg = static_cast<double>(SubgraphStateDegree(g, state));
    if (visits[state] < 5.0 * deg) continue;
    std::vector<double> obs;
    for (const auto& [next, count] : outs) obs.push_back(count);
    // Unvisited neighbor states are zero-count cells.
    while (obs.size() < static_cast<size_t>(deg)) obs.push_back(0.0);
    ASSERT_LE(obs.size(), static_cast<size_t>(deg));
    const std::vector<double> expected(obs.size(), visits[state] / deg);
    stat += ChiSquareStatistic(obs, expected);
    df += static_cast<int>(deg) - 1;
  }
  ASSERT_GT(df, 0);
  EXPECT_LT(stat, ChiSquareCriticalValue(df, kTailZ)) << "df=" << df;
}

}  // namespace
}  // namespace grw
