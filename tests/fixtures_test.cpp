// Analytic fixtures: graphs whose graphlet concentrations are known in
// closed form, estimated by every framework variant. These catch subtle
// re-weighting bugs that random-graph tests can average away.

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"

namespace grw {
namespace {

// Mean concentration over a few chains.
std::vector<double> MeanEstimate(const Graph& g, const EstimatorConfig& c,
                                 uint64_t steps, int chains) {
  std::vector<double> mean(
      GraphletCatalog::ForSize(c.k).NumTypes(), 0.0);
  for (int i = 0; i < chains; ++i) {
    const auto result = GraphletEstimator::Estimate(g, c, steps, 90 + i);
    for (size_t t = 0; t < mean.size(); ++t) {
      mean[t] += result.concentrations[t] / chains;
    }
  }
  return mean;
}

TEST(FixturesTest, CompleteGraphIsAllCliques) {
  // Every connected induced k-subgraph of K_n is a clique.
  const Graph g = Complete(12);
  for (int k = 3; k <= 5; ++k) {
    const int clique = GraphletCatalog::ForSize(k).NumTypes() - 1;
    for (int d = 1; d < std::min(k, 4); ++d) {
      EstimatorConfig config{k, d, d <= 2, false};
      const auto mean = MeanEstimate(g, config, 3000, 2);
      EXPECT_NEAR(mean[clique], 1.0, 1e-12)
          << "k=" << k << " " << config.Name();
    }
  }
}

TEST(FixturesTest, CycleGraphConcentrations) {
  // In C_n (n large), every connected induced k-subgraph is the k-path.
  const Graph g = Cycle(50);
  for (int k = 3; k <= 5; ++k) {
    const auto exact = ExactConcentrations(g, k);
    EstimatorConfig config{k, 2, false, false};
    const auto mean = MeanEstimate(g, config, 4000, 2);
    for (size_t t = 0; t < exact.size(); ++t) {
      EXPECT_NEAR(mean[t], exact[t], 1e-9) << "k=" << k << " t=" << t;
    }
  }
}

TEST(FixturesTest, StarGraphIsAllStars) {
  // S_n: every k-subgraph is the (k-1)-star; under SRW2 the estimate must
  // be exactly 1 for that type.
  const Graph g = Star(20);
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  EstimatorConfig config{4, 2, true, false};
  const auto mean = MeanEstimate(g, config, 3000, 2);
  EXPECT_DOUBLE_EQ(mean[c4.IdByName("3-star")], 1.0);
}

TEST(FixturesTest, CompleteBipartiteHasNoOddStructures) {
  // K_{a,b} is triangle-free: 3-node concentration is all wedges; 4-node
  // graphlets are only paths, stars and cycles (no triangles inside).
  const Graph g = CompleteBipartite(5, 7);
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);

  EstimatorConfig c3cfg{3, 1, true, true};
  const auto mean3 = MeanEstimate(g, c3cfg, 20000, 4);
  EXPECT_DOUBLE_EQ(mean3[c3.IdByName("triangle")], 0.0);
  EXPECT_DOUBLE_EQ(mean3[c3.IdByName("wedge")], 1.0);

  EstimatorConfig c4cfg{4, 2, true, false};
  const auto mean4 = MeanEstimate(g, c4cfg, 40000, 4);
  EXPECT_DOUBLE_EQ(mean4[c4.IdByName("tailed-triangle")], 0.0);
  EXPECT_DOUBLE_EQ(mean4[c4.IdByName("chordal-cycle")], 0.0);
  EXPECT_DOUBLE_EQ(mean4[c4.IdByName("4-clique")], 0.0);
  const auto exact = ExactConcentrations(g, 4);
  for (const char* name : {"4-path", "3-star", "4-cycle"}) {
    const int id = c4.IdByName(name);
    EXPECT_NEAR(mean4[id], exact[id], 0.05) << name;
  }
}

TEST(FixturesTest, LollipopMixedStructure) {
  // Lollipop = K_6 + path tail: both dense and sparse graphlets present;
  // compare against the exact facade for every d at k = 4.
  const Graph g = Lollipop(6, 8);
  const auto exact = ExactConcentrations(g, 4);
  for (int d = 2; d <= 3; ++d) {
    EstimatorConfig config{4, d, d == 2, false};
    const auto mean = MeanEstimate(g, config, 60000, 4);
    for (size_t t = 0; t < exact.size(); ++t) {
      EXPECT_NEAR(mean[t], exact[t], 0.06)
          << "d=" << d << " type " << t;
    }
  }
}

TEST(FixturesTest, PaperFigure1Graph) {
  // The running example of the paper (Figure 1): 4 nodes, 5 edges,
  // wedge and triangle concentration both exactly 0.5.
  const Graph g = FromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}});
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  for (int d = 1; d <= 2; ++d) {
    EstimatorConfig config{3, d, false, false};
    const auto mean = MeanEstimate(g, config, 60000, 4);
    EXPECT_NEAR(mean[c3.IdByName("wedge")], 0.5, 0.02) << "d=" << d;
    EXPECT_NEAR(mean[c3.IdByName("triangle")], 0.5, 0.02) << "d=" << d;
  }
}

}  // namespace
}  // namespace grw
