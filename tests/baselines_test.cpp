// Tests for the baseline samplers: alias method, wedge sampling, path
// sampling, and the adapted Wedge-MHRW (paper Algorithm 4).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/alias.h"
#include "baselines/path_sampling.h"
#include "baselines/wedge_mhrw.h"
#include "baselines/wedge_sampling.h"
#include "exact/exact.h"
#include "exact/triangle.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(AliasTest, MatchesWeightsEmpirically) {
  const std::vector<double> weights = {1.0, 0.0, 3.0, 6.0};
  AliasTable table(weights);
  EXPECT_DOUBLE_EQ(table.TotalWeight(), 10.0);
  Rng rng(5);
  std::vector<uint64_t> hits(weights.size(), 0);
  const uint64_t n = 400000;
  for (uint64_t s = 0; s < n; ++s) hits[table.Sample(rng)]++;
  EXPECT_EQ(hits[1], 0u);
  for (size_t i = 0; i < weights.size(); ++i) {
    const double freq = static_cast<double>(hits[i]) / n;
    EXPECT_NEAR(freq, weights[i] / 10.0, 0.01) << "i=" << i;
  }
}

TEST(AliasTest, RejectsDegenerateInput) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

TEST(AliasTest, SingleElement) {
  AliasTable table({42.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(WedgeSamplingTest, TriangleEstimateConvergesToExact) {
  Rng rng(11);
  const Graph g = LargestConnectedComponent(HolmeKim(500, 4, 0.5, rng));
  const uint64_t exact = CountTriangles(g).total;
  WedgeSampler sampler(g);
  Rng sample_rng(21);
  const auto result = sampler.Run(300000, sample_rng);
  EXPECT_NEAR(result.triangles, static_cast<double>(exact),
              0.05 * static_cast<double>(exact));
  // Concentrations also converge.
  const auto truth = ExactConcentrations(g, 3);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(result.concentrations[i], truth[i], 0.02);
  }
}

TEST(WedgeSamplingTest, CompleteGraphAllWedgesClosed) {
  const Graph g = Complete(6);
  WedgeSampler sampler(g);
  Rng rng(3);
  for (int s = 0; s < 200; ++s) {
    EXPECT_TRUE(sampler.SampleClosedWedge(rng));
  }
  EXPECT_DOUBLE_EQ(sampler.TotalWedges(),
                   static_cast<double>(g.WedgeCount()));
}

TEST(PathSamplingTest, CountsConvergeToExact) {
  Rng rng(13);
  const Graph g = LargestConnectedComponent(HolmeKim(400, 4, 0.5, rng));
  const auto exact = ExactGraphletCounts(g, 4);
  PathSampler sampler(g);
  Rng sample_rng(17);
  const auto result = sampler.Run(400000, sample_rng);
  for (size_t i = 0; i < exact.size(); ++i) {
    const double truth = static_cast<double>(exact[i]);
    EXPECT_NEAR(result.counts[i], truth, 0.10 * truth + 2.0) << "i=" << i;
  }
}

TEST(PathSamplingTest, StarOnlyGraphIsHandled) {
  // A star has no 3-paths at all: tau_e = 0 for every edge... except the
  // hub-leaf edges where (d_u - 1)(d_v - 1) = 0. Total weight zero would
  // be degenerate; use a double star (two hubs joined) instead, where the
  // only positive-weight edge is the bridge.
  std::vector<std::pair<VertexId, VertexId>> edges = {{0, 1}};
  for (VertexId leaf = 2; leaf < 6; ++leaf) edges.push_back({0, leaf});
  for (VertexId leaf = 6; leaf < 10; ++leaf) edges.push_back({1, leaf});
  const Graph g = FromEdges(10, edges);
  PathSampler sampler(g);
  Rng rng(23);
  const auto result = sampler.Run(50000, rng);
  const auto exact = ExactGraphletCounts(g, 4);
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  // Paths through the bridge: 4 * 4 = 16, matching exact.
  EXPECT_NEAR(result.counts[c4.IdByName("4-path")],
              static_cast<double>(exact[c4.IdByName("4-path")]), 1.0);
  // Stars recovered exactly from degrees (no denser graphlets here).
  EXPECT_NEAR(result.counts[c4.IdByName("3-star")],
              static_cast<double>(exact[c4.IdByName("3-star")]), 1e-6);
}

TEST(WedgeMhrwTest, ConvergesToTriangleConcentration) {
  Rng rng(29);
  const Graph g = LargestConnectedComponent(HolmeKim(400, 4, 0.5, rng));
  const auto truth = ExactConcentrations(g, 3);
  WedgeMhrw mhrw(g);
  std::vector<double> mean(2, 0.0);
  const int chains = 6;
  for (int c = 0; c < chains; ++c) {
    mhrw.Reset(100 + c);
    mhrw.Run(150000);
    const auto est = mhrw.Concentrations();
    for (size_t i = 0; i < est.size(); ++i) mean[i] += est[i] / chains;
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(mean[i], truth[i], 0.03) << "i=" << i;
  }
}

TEST(WedgeMhrwTest, BookkeepingAndDeterminism) {
  const Graph g = KarateClub();
  WedgeMhrw mhrw(g);
  mhrw.Reset(7);
  mhrw.Run(5000);
  EXPECT_EQ(mhrw.Steps(), 5000u);
  EXPECT_EQ(mhrw.ClosedWedges() > 0, true);
  const auto first = mhrw.Concentrations();
  mhrw.Reset(7);
  mhrw.Run(5000);
  EXPECT_EQ(mhrw.Concentrations(), first);
}

}  // namespace
}  // namespace grw
