// Tests for the random-walk substrate: stationary distributions, neighbor
// enumeration on G(d), and non-backtracking behavior.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "walk/edge_walk.h"
#include "walk/node_walk.h"
#include "walk/subgraph_walk.h"

namespace grw {
namespace {

// Chi-square-ish check: empirical visit frequency vs expected stationary
// probability within rel_tol.
void ExpectStationary(const std::map<std::vector<VertexId>, uint64_t>& visits,
                      const std::map<std::vector<VertexId>, double>& expected,
                      uint64_t total, double rel_tol) {
  for (const auto& [state, pi] : expected) {
    const auto it = visits.find(state);
    const double freq =
        it == visits.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(total);
    EXPECT_NEAR(freq, pi, rel_tol * pi + 0.003)
        << "state size " << state.size();
  }
}

TEST(NodeWalkTest, StationaryDistributionIsDegreeProportional) {
  // pi(v) = d_v / 2|E| (paper Section 2.2).
  const Graph g = KarateClub();
  NodeWalk walk(g);
  Rng rng(100);
  walk.Reset(rng);
  std::map<std::vector<VertexId>, uint64_t> visits;
  const uint64_t steps = 400000;
  for (uint64_t s = 0; s < steps; ++s) {
    walk.Step(rng);
    visits[{walk.Current()}]++;
  }
  std::map<std::vector<VertexId>, double> expected;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    expected[{v}] = static_cast<double>(g.Degree(v)) /
                    static_cast<double>(2 * g.NumEdges());
  }
  ExpectStationary(visits, expected, steps, 0.10);
}

TEST(NodeWalkTest, NonBacktrackingPreservesStationaryDistribution) {
  // Paper Section 4.2: NB-SRW has the same stationary distribution.
  const Graph g = KarateClub();
  NodeWalk walk(g, /*non_backtracking=*/true);
  Rng rng(101);
  walk.Reset(rng);
  std::map<std::vector<VertexId>, uint64_t> visits;
  const uint64_t steps = 400000;
  for (uint64_t s = 0; s < steps; ++s) {
    walk.Step(rng);
    visits[{walk.Current()}]++;
  }
  std::map<std::vector<VertexId>, double> expected;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    expected[{v}] = static_cast<double>(g.Degree(v)) /
                    static_cast<double>(2 * g.NumEdges());
  }
  ExpectStationary(visits, expected, steps, 0.10);
}

TEST(NodeWalkTest, NonBacktrackingNeverBacktracksUnlessForced) {
  // On a star, every move from a leaf *must* return to the hub; from the
  // hub (degree > 1 with NB) the walk must not return to the previous
  // leaf.
  const Graph g = Star(6);
  NodeWalk walk(g, true);
  Rng rng(7);
  walk.Reset(rng);
  VertexId prev = walk.Current();
  walk.Step(rng);
  for (int s = 0; s < 2000; ++s) {
    const VertexId here = walk.Current();
    walk.Step(rng);
    const VertexId next = walk.Current();
    if (here == 0) {
      EXPECT_NE(next, prev) << "hub must avoid backtracking";
    } else {
      EXPECT_EQ(next, 0u) << "leaf has one neighbor";
    }
    prev = here;
  }
}

TEST(EdgeWalkTest, StationaryDistributionIsUniformOverEdges) {
  // States of G(2) have pi(e) = d_e / 2|R(2)|... but the walk itself is a
  // simple random walk whose stationary distribution is degree-
  // proportional in G(2): deg(e_uv) = d_u + d_v - 2.
  const Graph g = KarateClub();
  EdgeWalk walk(g);
  Rng rng(55);
  walk.Reset(rng);
  std::map<std::vector<VertexId>, uint64_t> visits;
  const uint64_t steps = 600000;
  for (uint64_t s = 0; s < steps; ++s) {
    walk.Step(rng);
    const auto nodes = walk.Nodes();
    visits[{nodes[0], nodes[1]}]++;
  }
  const double two_r2 = 2.0 * static_cast<double>(g.WedgeCount());
  std::map<std::vector<VertexId>, double> expected;
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) {
        expected[{u, v}] =
            static_cast<double>(g.Degree(u) + g.Degree(v) - 2) / two_r2;
      }
    }
  }
  ExpectStationary(visits, expected, steps, 0.12);
}

TEST(EdgeWalkTest, StateDegreeClosedForm) {
  const Graph g = KarateClub();
  EdgeWalk walk(g);
  Rng rng(1);
  walk.Reset(rng);
  for (int s = 0; s < 500; ++s) {
    const auto nodes = walk.Nodes();
    EXPECT_EQ(walk.StateDegree(),
              static_cast<uint64_t>(g.Degree(nodes[0])) +
                  g.Degree(nodes[1]) - 2);
    EXPECT_TRUE(g.HasEdge(nodes[0], nodes[1]))
        << "state must always be an edge";
    walk.Step(rng);
  }
}

TEST(SubgraphWalkTest, StatesAreConnectedInducedSubgraphs) {
  Rng rng(9);
  const Graph g = LargestConnectedComponent(HolmeKim(120, 3, 0.5, rng));
  for (int d = 3; d <= 4; ++d) {
    SubgraphWalk walk(g, d);
    walk.Reset(rng);
    for (int s = 0; s < 300; ++s) {
      const auto nodes = walk.Nodes();
      ASSERT_EQ(static_cast<int>(nodes.size()), d);
      std::vector<VertexId> sorted(nodes.begin(), nodes.end());
      EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
      EXPECT_TRUE(InducedSubgraphConnected(g, sorted));
      walk.Step(rng);
    }
  }
}

TEST(SubgraphWalkTest, ConsecutiveStatesShareDMinusOneNodes) {
  Rng rng(15);
  const Graph g = LargestConnectedComponent(HolmeKim(100, 3, 0.4, rng));
  SubgraphWalk walk(g, 3);
  walk.Reset(rng);
  std::vector<VertexId> prev(walk.Nodes().begin(), walk.Nodes().end());
  for (int s = 0; s < 300; ++s) {
    walk.Step(rng);
    std::vector<VertexId> cur(walk.Nodes().begin(), walk.Nodes().end());
    std::vector<VertexId> shared;
    std::set_intersection(prev.begin(), prev.end(), cur.begin(), cur.end(),
                          std::back_inserter(shared));
    EXPECT_EQ(shared.size(), 2u);
    prev = std::move(cur);
  }
}

TEST(SubgraphWalkTest, NeighborEnumerationMatchesDefinitionOnFixture) {
  // Path 0-1-2-3-4: connected 3-sets are {0,1,2},{1,2,3},{2,3,4};
  // {0,1,2} and {1,2,3} share 2 nodes -> adjacent; {0,1,2} vs {2,3,4}
  // share 1 -> not adjacent.
  const Graph g = Path(5);
  std::vector<VertexId> out;
  const std::vector<VertexId> state = {0, 1, 2};
  EnumerateGdNeighbors(g, state, &out);
  ASSERT_EQ(out.size(), 3u);  // exactly one neighbor
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_EQ(out[2], 3u);
  EXPECT_EQ(SubgraphStateDegree(g, state), 1u);

  // Middle state has two neighbors.
  const std::vector<VertexId> mid = {1, 2, 3};
  EXPECT_EQ(SubgraphStateDegree(g, mid), 2u);
}

TEST(SubgraphWalkTest, StateDegreeOnClique) {
  // In K5, a 3-subset's neighbors: drop any of 3 nodes, add either of the
  // 2 outside nodes -> 6 neighbors.
  const Graph g = Complete(5);
  const std::vector<VertexId> state = {0, 1, 2};
  EXPECT_EQ(SubgraphStateDegree(g, state), 6u);
}

TEST(SubgraphWalkTest, StationaryDistributionOnSmallGraph) {
  // Empirical check of pi(s) = deg(s) / 2|R(3)| on a small fixture.
  const Graph g = Lollipop(4, 2);
  SubgraphWalk walk(g, 3);
  Rng rng(77);
  walk.Reset(rng);
  std::map<std::vector<VertexId>, uint64_t> visits;
  std::map<std::vector<VertexId>, double> expected;
  const uint64_t steps = 200000;
  for (uint64_t s = 0; s < steps; ++s) {
    walk.Step(rng);
    visits[std::vector<VertexId>(walk.Nodes().begin(),
                                 walk.Nodes().end())]++;
  }
  // Enumerate all connected 3-subgraphs and their degrees.
  double degree_sum = 0.0;
  std::vector<std::pair<std::vector<VertexId>, double>> states;
  for (VertexId a = 0; a < g.NumNodes(); ++a) {
    for (VertexId b = a + 1; b < g.NumNodes(); ++b) {
      for (VertexId c = b + 1; c < g.NumNodes(); ++c) {
        const std::vector<VertexId> nodes = {a, b, c};
        if (!InducedSubgraphConnected(g, nodes)) continue;
        const double deg =
            static_cast<double>(SubgraphStateDegree(g, nodes));
        states.emplace_back(nodes, deg);
        degree_sum += deg;
      }
    }
  }
  for (const auto& [nodes, deg] : states) expected[nodes] = deg / degree_sum;
  ExpectStationary(visits, expected, steps, 0.12);
}

TEST(WalkGuardsTest, TooSmallGraphsAreRejected) {
  const Graph tiny = FromEdges(2, {{0, 1}});
  EXPECT_THROW(EdgeWalk walk(tiny), std::invalid_argument);
  EXPECT_THROW(SubgraphWalk walk(tiny, 3), std::invalid_argument);
  EXPECT_THROW(SubgraphWalk walk(KarateClub(), 2), std::invalid_argument);
}

}  // namespace
}  // namespace grw
