// Tests for GraphSource::Open (graph/source.*): one open path across
// text edge lists, monolithic `.grwb` snapshots, and sharded manifests —
// kind auto-detection, OpenOptions plumbing, content identity, typed
// corruption errors, and the deprecated aliases staying equivalent.

#include "graph/source.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "graph/builder.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/sharding.h"
#include "util/rng.h"

namespace grw {
namespace {

namespace fs = std::filesystem;

class SourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each test case as its own process (possibly in
    // parallel), so the directory must be unique per process.
    dir_ = (fs::temp_directory_path() /
            ("grw_source_test." + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    Rng rng(7);
    g_ = LargestConnectedComponent(HolmeKim(300, 4, 0.4, rng));
    text_ = dir_ + "/g.edges";
    binary_ = dir_ + "/g.grwb";
    sharded_ = dir_ + "/g.shards";
    SaveEdgeList(g_, text_);
    SaveGraphBinary(g_, binary_);
    ShardingOptions options;
    options.num_shards = 3;
    WriteShardedGraph(g_, sharded_, options);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_, text_, binary_, sharded_;
  Graph g_;
};

TEST_F(SourceTest, OpenAutoDetectsAllThreeKinds) {
  OpenOptions options;
  options.build_index = false;
  options.largest_cc = false;  // the fixture graph is already one CC

  const GraphSource text = GraphSource::Open(text_, options);
  EXPECT_EQ(text.kind(), GraphSourceKind::kText);
  EXPECT_FALSE(text.sharded());
  EXPECT_EQ(text.NumNodes(), g_.NumNodes());
  EXPECT_EQ(text.NumEdges(), g_.NumEdges());
  EXPECT_EQ(text.content_checksum(), 0u);  // parsed content: no checksum

  const GraphSource binary = GraphSource::Open(binary_, options);
  EXPECT_EQ(binary.kind(), GraphSourceKind::kBinary);
  EXPECT_EQ(binary.NumNodes(), g_.NumNodes());
  EXPECT_EQ(binary.content_checksum(),
            InspectGraphBinary(binary_).data_checksum);
  EXPECT_NE(binary.content_checksum(), 0u);

  // Both the directory and the manifest file open the sharded graph.
  for (const std::string& path :
       {sharded_, sharded_ + "/" + kShardManifestName}) {
    const GraphSource sharded = GraphSource::Open(path, options);
    EXPECT_EQ(sharded.kind(), GraphSourceKind::kSharded);
    EXPECT_TRUE(sharded.sharded());
    EXPECT_EQ(sharded.NumNodes(), g_.NumNodes());
    EXPECT_EQ(sharded.NumEdges(), g_.NumEdges());
    EXPECT_EQ(sharded.content_checksum(),
              ShardContentChecksum(sharded.shards().manifest()));
    EXPECT_NE(sharded.content_checksum(), 0u);
  }
}

TEST_F(SourceTest, KindMismatchedAccessorsThrowLogicError) {
  OpenOptions options;
  options.build_index = false;
  const GraphSource binary = GraphSource::Open(binary_, options);
  EXPECT_NO_THROW(binary.graph());
  EXPECT_THROW(binary.shards(), std::logic_error);
  const GraphSource sharded = GraphSource::Open(sharded_, options);
  EXPECT_NO_THROW(sharded.shards());
  EXPECT_THROW(sharded.graph(), std::logic_error);
}

TEST_F(SourceTest, OpenMatchesDeprecatedAliases) {
  // The thin aliases and the unified path must load identical bytes.
  OpenOptions options;
  options.build_index = false;
  options.largest_cc = false;
  const Graph via_alias = LoadGraphBinary(binary_);
  const Graph via_source = GraphSource::Open(binary_, options).graph();
  ASSERT_EQ(via_alias.NumNodes(), via_source.NumNodes());
  for (VertexId v = 0; v < via_alias.NumNodes(); ++v) {
    ASSERT_EQ(via_alias.Degree(v), via_source.Degree(v));
  }
  const Graph text_alias = LoadGraph(text_, /*largest_cc=*/false);
  const Graph text_source = GraphSource::Open(text_, options).graph();
  EXPECT_EQ(text_alias.Summary(), text_source.Summary());
}

TEST_F(SourceTest, OpenOptionsPlumbing) {
  // build_index reaches the monolithic kinds.
  OpenOptions with_index;
  with_index.build_index = true;
  EXPECT_NE(GraphSource::Open(binary_, with_index)
                .graph()
                .adjacency_index(),
            nullptr);
  OpenOptions no_index;
  no_index.build_index = false;
  EXPECT_EQ(GraphSource::Open(binary_, no_index)
                .graph()
                .adjacency_index(),
            nullptr);

  // relabel_degree applies to text input and is reported.
  OpenOptions relabel = no_index;
  relabel.relabel_degree = true;
  const GraphSource relabeled = GraphSource::Open(text_, relabel);
  EXPECT_TRUE(relabeled.degree_relabeled());
  const Graph& r = relabeled.graph();
  for (VertexId v = 0; v + 1 < r.NumNodes(); ++v) {
    ASSERT_GE(r.Degree(v), r.Degree(v + 1));
  }

  // The resident budget lands in the shard store's options and stats.
  OpenOptions budget = no_index;
  budget.resident_budget_bytes = 123456;
  const GraphSource sharded = GraphSource::Open(sharded_, budget);
  EXPECT_EQ(sharded.shards().options().resident_budget_bytes, 123456u);
  EXPECT_EQ(sharded.shards().stats().budget_bytes, 123456u);
}

TEST_F(SourceTest, CopiesShareTheBacking) {
  OpenOptions options;
  options.build_index = false;
  const GraphSource original = GraphSource::Open(sharded_, options);
  const GraphSource copy = original;
  // Same store object, not a second mmap of the graph.
  EXPECT_EQ(&copy.shards(), &original.shards());
  const GraphSource mono = GraphSource::Open(binary_, options);
  const GraphSource mono_copy = mono;
  EXPECT_EQ(mono_copy.graph().RawNeighbors().data(),
            mono.graph().RawNeighbors().data());
}

TEST_F(SourceTest, SummaryNamesTheKind) {
  OpenOptions options;
  options.build_index = false;
  EXPECT_NE(GraphSource::Open(binary_, options).Summary().find("n="),
            std::string::npos);
  const std::string sharded_summary =
      GraphSource::Open(sharded_, options).Summary();
  EXPECT_NE(sharded_summary.find("sharded"), std::string::npos)
      << sharded_summary;
}

TEST_F(SourceTest, FromGraphWrapsInMemoryGraphs) {
  const GraphSource source = GraphSource::FromGraph(g_, "unit-test");
  EXPECT_FALSE(source.sharded());
  EXPECT_EQ(source.NumNodes(), g_.NumNodes());
  EXPECT_EQ(source.path(), "unit-test");
  EXPECT_EQ(source.content_checksum(), 0u);
}

TEST_F(SourceTest, CorruptionThrowsTypedErrorForEveryKind) {
  // One catch type quarantines every layout (the grw_serve contract).
  const auto flip = [](const std::string& path, uint64_t offset) {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    unsigned char b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    b ^= 1u;
    ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
    std::fclose(f);
  };
  OpenOptions verify;
  verify.build_index = false;
  verify.verify = true;

  // Monolithic: flip a payload byte past the header + offsets.
  flip(binary_, 64 + (uint64_t{g_.NumNodes()} + 1) * 8 + 1);
  EXPECT_THROW(GraphSource::Open(binary_, verify), SnapshotCorruptError);

  // Sharded: flip a payload byte in shard 2; the eager per-shard probe
  // at store construction does not read payloads, so only verify=true
  // catches it at open.
  const ShardManifest m = LoadShardManifest(sharded_);
  flip(m.ShardPath(2), 64 + (m.shards[2].num_rows + 1) * 8 + 1);
  EXPECT_THROW(GraphSource::Open(sharded_, verify), SnapshotCorruptError);

  // Sharded with a missing shard fails even without verify: the store's
  // eager header probe requires every named shard to exist.
  fs::remove(m.ShardPath(1));
  OpenOptions lazy;
  lazy.build_index = false;
  EXPECT_THROW(GraphSource::Open(sharded_, lazy), SnapshotCorruptError);
}

TEST_F(SourceTest, OpenRejectsMissingPath) {
  EXPECT_THROW(GraphSource::Open(dir_ + "/nope.edges"), std::runtime_error);
}

}  // namespace
}  // namespace grw
