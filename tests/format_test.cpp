// Tests for the `.grwb` binary snapshot format (graph/format.*), the
// mmap zero-copy load path, and the degree-descending relabeling pass.

#include "graph/format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace grw {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Byte-level span equality of the two CSR arrays.
void ExpectIdenticalCsr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.RawOffsets().size(), b.RawOffsets().size());
  ASSERT_EQ(a.RawNeighbors().size(), b.RawNeighbors().size());
  for (size_t i = 0; i < a.RawOffsets().size(); ++i) {
    ASSERT_EQ(a.RawOffsets()[i], b.RawOffsets()[i]) << "offset " << i;
  }
  for (size_t i = 0; i < a.RawNeighbors().size(); ++i) {
    ASSERT_EQ(a.RawNeighbors()[i], b.RawNeighbors()[i]) << "neighbor " << i;
  }
}

TEST(FormatTest, RoundTripIsBitIdentical) {
  // Property over a spread of generated shapes: Build -> Save -> mmap-load
  // reproduces the exact CSR arrays and summary.
  Rng rng(11);
  const std::vector<Graph> graphs = {
      KarateClub(),
      Complete(6),
      Star(40),
      LargestConnectedComponent(ErdosRenyi(300, 900, rng)),
      LargestConnectedComponent(BarabasiAlbert(500, 3, rng)),
      LargestConnectedComponent(HolmeKim(400, 4, 0.4, rng)),
  };
  const std::string path = TempPath("grw_format_roundtrip.grwb");
  for (const Graph& g : graphs) {
    SaveGraphBinary(g, path);
    const Graph loaded = LoadGraphBinary(path, /*verify_checksum=*/true);
    EXPECT_EQ(loaded.Summary(), g.Summary());
    ExpectIdenticalCsr(g, loaded);
  }
  std::filesystem::remove(path);
}

TEST(FormatTest, RoundTripEmptyGraph) {
  const std::string path = TempPath("grw_format_empty.grwb");
  SaveGraphBinary(Graph(), path);
  const Graph loaded = LoadGraphBinary(path, /*verify_checksum=*/true);
  EXPECT_EQ(loaded.NumNodes(), 0u);
  EXPECT_EQ(loaded.NumEdges(), 0u);
  EXPECT_EQ(loaded.Summary(), Graph().Summary());
  std::filesystem::remove(path);
}

TEST(FormatTest, MmapLoadGivesIdenticalEstimates) {
  // The acceptance bar: a fixed-seed estimator run must be bit-identical
  // between the vector-backed and mmap-backed graphs.
  Rng rng(5);
  const Graph g = LargestConnectedComponent(HolmeKim(600, 4, 0.3, rng));
  const std::string path = TempPath("grw_format_estimates.grwb");
  SaveGraphBinary(g, path);
  const Graph mapped = LoadGraphBinary(path);

  const EstimatorConfig config{4, 2, true, false};
  const EstimateResult from_vectors =
      GraphletEstimator::Estimate(g, config, 20000, 42);
  const EstimateResult from_mmap =
      GraphletEstimator::Estimate(mapped, config, 20000, 42);
  ASSERT_EQ(from_vectors.concentrations.size(),
            from_mmap.concentrations.size());
  for (size_t i = 0; i < from_vectors.concentrations.size(); ++i) {
    EXPECT_EQ(from_vectors.concentrations[i], from_mmap.concentrations[i]);
  }
  std::filesystem::remove(path);
}

TEST(FormatTest, GraphSharesMappingAcrossCopies) {
  // Copying a mapped Graph must not copy the arrays: the spans of the
  // copy point at the same addresses (shared backing keeps them alive).
  const Graph g = KarateClub();
  const std::string path = TempPath("grw_format_copy.grwb");
  SaveGraphBinary(g, path);
  Graph copy;
  {
    const Graph mapped = LoadGraphBinary(path);
    copy = mapped;
    EXPECT_EQ(copy.RawNeighbors().data(), mapped.RawNeighbors().data());
  }
  // The original mapped Graph is gone; the backing must still be alive.
  EXPECT_EQ(copy.Summary(), g.Summary());
  std::filesystem::remove(path);
}

TEST(FormatTest, InspectReportsHeaderFields) {
  const Graph g = KarateClub();
  const std::string path = TempPath("grw_format_inspect.grwb");
  SaveGraphBinary(g, path, kGrwbFlagDegreeRelabeled);
  const GrwbInfo info = InspectGraphBinary(path);
  EXPECT_EQ(info.version, kGrwbVersion);
  EXPECT_EQ(info.num_nodes, g.NumNodes());
  EXPECT_EQ(info.num_half_edges, 2 * g.NumEdges());
  EXPECT_TRUE(info.DegreeRelabeled());
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path));
  std::filesystem::remove(path);
}

class FormatCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("grw_format_corrupt.grwb");
    SaveGraphBinary(KarateClub(), path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  // Overwrites one byte at `offset` with `value`.
  void Poke(uint64_t offset, unsigned char value) {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&value, 1, 1, f), 1u);
    std::fclose(f);
  }

  void Truncate(uint64_t bytes) {
    std::filesystem::resize_file(path_, bytes);
  }

  std::string path_;
};

// Runs `load` expecting a SnapshotCorruptError (the subtype registries
// use to quarantine rather than retry) and returns its message so tests
// can assert the error is descriptive, not just thrown.
template <typename Fn>
std::string CorruptionMessage(Fn load) {
  try {
    load();
  } catch (const SnapshotCorruptError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "wrong exception type: " << e.what();
    return {};
  }
  ADD_FAILURE() << "expected SnapshotCorruptError";
  return {};
}

TEST_F(FormatCorruptionTest, RejectsBadMagic) {
  Poke(0, 'X');
  EXPECT_THROW(LoadGraphBinary(path_), std::runtime_error);
  EXPECT_FALSE(IsGraphBinaryFile(path_));
}

TEST_F(FormatCorruptionTest, RejectsUnsupportedVersion) {
  Poke(4, 99);  // version field; header checksum catches it first or not,
                // either way the load must throw
  EXPECT_THROW(LoadGraphBinary(path_), std::runtime_error);
}

TEST_F(FormatCorruptionTest, RejectsCorruptedHeaderField) {
  Poke(8, 0xFF);  // num_nodes low byte: header checksum mismatch
  EXPECT_THROW(LoadGraphBinary(path_), std::runtime_error);
}

TEST_F(FormatCorruptionTest, RejectsTruncatedFile) {
  Truncate(std::filesystem::file_size(path_) - 5);
  EXPECT_THROW(LoadGraphBinary(path_), std::runtime_error);
}

TEST_F(FormatCorruptionTest, RejectsFileShorterThanHeader) {
  Truncate(10);
  EXPECT_THROW(LoadGraphBinary(path_), std::runtime_error);
}

TEST_F(FormatCorruptionTest, RejectsForgedHeaderWithOverflowingSizes) {
  // Adversarial header: num_nodes = 2^61-1 makes (n+1)*8 wrap to 0, which
  // matched offsets_bytes == 0 before validation became overflow-safe.
  // The header checksum is forged correctly, so only the size checks can
  // catch it.
  struct {
    uint32_t magic = kGrwbMagic;
    uint32_t version = kGrwbVersion;
    uint64_t num_nodes = 0x1FFFFFFFFFFFFFFFull;
    uint64_t num_half_edges = 0;
    uint64_t offsets_bytes = 0;
    uint64_t neighbors_bytes = 0;
    uint64_t data_checksum = 0;
    uint32_t flags = 0;
    uint32_t reserved = 0;
    uint64_t header_checksum = 0;
  } header;
  const auto* bytes = reinterpret_cast<const unsigned char*>(&header);
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a, as the writer computes it
  for (size_t i = 0; i < 56; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  header.header_checksum = h;
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&header, sizeof header, 1, f), 1u);
  std::fclose(f);
  EXPECT_THROW(LoadGraphBinary(path_, /*verify_checksum=*/true),
               std::runtime_error);
  EXPECT_THROW(LoadGraphBinary(path_), std::runtime_error);
}

TEST_F(FormatCorruptionTest, VerifyRejectsNonMonotoneOffsets) {
  // Bump a middle offset entry so offsets[v] > offsets[v+1] while the
  // first/last entries (the lazy spot-check) stay intact: the lazy load
  // accepts it, the verifying load must not.
  Poke(64 + 8 + 6, 0x7F);  // high-ish byte of offsets[1]
  EXPECT_NO_THROW(LoadGraphBinary(path_));
  EXPECT_THROW(LoadGraphBinary(path_, /*verify_checksum=*/true),
               std::runtime_error);
}

TEST_F(FormatCorruptionTest, VerifyRejectsOutOfRangeNeighborId) {
  const uint64_t data_start =
      64 + (uint64_t{KarateClub().NumNodes()} + 1) * 8;
  Poke(data_start + 2, 0xFF);  // neighbor id becomes >= num_nodes
  EXPECT_THROW(LoadGraphBinary(path_, /*verify_checksum=*/true),
               std::runtime_error);
}

TEST_F(FormatCorruptionTest, ChecksumCatchesFlippedDataByte) {
  // Flip a neighbor byte past the offsets array: header still validates,
  // lazy load succeeds, checksummed load must throw.
  const uint64_t data_start =
      64 + (uint64_t{KarateClub().NumNodes()} + 1) * 8;
  Poke(data_start + 3, 0xAB);
  EXPECT_THROW(LoadGraphBinary(path_, /*verify_checksum=*/true),
               std::runtime_error);
}

TEST_F(FormatCorruptionTest, CorruptionErrorsAreTypedAndDescriptive) {
  // Every corruption path throws SnapshotCorruptError (so registries can
  // quarantine instead of retry) with a message naming the file and the
  // specific defect — "something went wrong" is not a diagnosis.

  // Bit-flipped payload byte: flip the low bit of a neighbor id's low
  // byte, which keeps the id in range (ids change by ±1) so the checksum
  // — not the range check — is what has to catch it.
  const uint64_t data_start =
      64 + (uint64_t{KarateClub().NumNodes()} + 1) * 8;
  unsigned char low = 0;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(data_start), SEEK_SET), 0);
    ASSERT_EQ(std::fread(&low, 1, 1, f), 1u);
    std::fclose(f);
  }
  Poke(data_start, low ^ 1u);
  std::string msg = CorruptionMessage(
      [&] { LoadGraphBinary(path_, /*verify_checksum=*/true); });
  EXPECT_NE(msg.find(path_), std::string::npos) << msg;
  EXPECT_NE(msg.find("data checksum mismatch"), std::string::npos) << msg;

  // Truncated tail: caught up front by the header/size cross-check,
  // naming both the actual and the implied size.
  SaveGraphBinary(KarateClub(), path_);
  Truncate(std::filesystem::file_size(path_) - 5);
  msg = CorruptionMessage([&] { LoadGraphBinary(path_); });
  EXPECT_NE(msg.find("truncated or oversized file"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("header implies"), std::string::npos) << msg;

  // Header/size mismatch: a forged neighbors_bytes that disagrees with
  // the actual file size (checksum re-forged so only the size check can
  // object). Bytes 24..31 hold neighbors_bytes; poke its low byte and
  // expect the header checksum to catch the edit first.
  SaveGraphBinary(KarateClub(), path_);
  Poke(24, 0xEE);
  msg = CorruptionMessage([&] { LoadGraphBinary(path_); });
  EXPECT_NE(msg.find("header checksum mismatch"), std::string::npos) << msg;

  // Garbage magic reports "not a .grwb snapshot", not a generic failure.
  SaveGraphBinary(KarateClub(), path_);
  Poke(0, 'Z');
  msg = CorruptionMessage([&] { LoadGraphBinary(path_); });
  EXPECT_NE(msg.find("bad magic"), std::string::npos) << msg;
}

TEST(FormatTest, SaveLeavesNoTempLitterOnSuccess) {
  // The crash-safe writer stages through <path>.tmp.<pid>; a successful
  // save must leave exactly the destination behind.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "grw_format_litter";
  fs::create_directories(dir);
  const std::string path = (dir / "snap.grwb").string();
  SaveGraphBinary(KarateClub(), path);
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "snap.grwb");
  }
  EXPECT_EQ(entries, 1u);
  // Overwrite in place: readers of the old inode are unaffected and
  // still no litter appears.
  const Graph old_mapping = LoadGraphBinary(path);
  SaveGraphBinary(Complete(6), path);
  EXPECT_EQ(old_mapping.Summary(), KarateClub().Summary());
  EXPECT_EQ(LoadGraphBinary(path).Summary(), Complete(6).Summary());
  entries = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

TEST(FormatTest, AbandonedTempFileIsNotAValidSnapshot) {
  // Simulate a crash's leftovers: a bare temp file (never renamed) at a
  // tmp-suffixed name. Nothing may load it as the destination, and the
  // destination itself must simply not exist.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "grw_format_abandoned";
  fs::create_directories(dir);
  const std::string path = (dir / "snap.grwb").string();
  const std::string tmp = path + ".tmp.12345";
  // A truncated prefix of a real snapshot, as an interrupted write
  // would leave: save elsewhere, copy half the bytes.
  const std::string donor = (dir / "donor.grwb").string();
  SaveGraphBinary(KarateClub(), donor);
  const auto donor_size = fs::file_size(donor);
  fs::copy_file(donor, tmp);
  fs::resize_file(tmp, donor_size / 2);

  EXPECT_FALSE(fs::exists(path));
  EXPECT_THROW(LoadGraphBinary(path), std::exception);
  EXPECT_THROW(LoadGraphBinary(tmp), SnapshotCorruptError);
  fs::remove_all(dir);
}

TEST(FormatTest, LoadGraphAutoDetectsBothFormats) {
  Rng rng(3);
  const Graph g = LargestConnectedComponent(ErdosRenyi(200, 600, rng));
  const std::string text = TempPath("grw_format_auto.edges");
  const std::string bin = TempPath("grw_format_auto.grwb");
  SaveEdgeList(g, text);
  SaveGraphBinary(g, bin);
  const Graph from_text = LoadGraph(text, /*largest_cc=*/false);
  const Graph from_bin = LoadGraph(bin);
  EXPECT_EQ(from_text.Summary(), g.Summary());
  EXPECT_EQ(from_bin.Summary(), g.Summary());
  ExpectIdenticalCsr(from_text, from_bin);
  std::filesystem::remove(text);
  std::filesystem::remove(bin);
}

TEST(RelabelByDegreeTest, ProducesDegreeDescendingOrder) {
  Rng rng(9);
  const Graph g = LargestConnectedComponent(BarabasiAlbert(800, 3, rng));
  const Graph r = RelabelByDegree(g);
  ASSERT_EQ(r.NumNodes(), g.NumNodes());
  ASSERT_EQ(r.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v + 1 < r.NumNodes(); ++v) {
    EXPECT_GE(r.Degree(v), r.Degree(v + 1));
  }
  EXPECT_EQ(r.MaxDegree(), g.MaxDegree());
  EXPECT_EQ(r.WedgeCount(), g.WedgeCount());
  EXPECT_TRUE(r.IsConnected());
}

TEST(RelabelByDegreeTest, GraphletCountsAreInvariant) {
  // Graphlet statistics are label-invariant; the exact counter must agree
  // before and after relabeling.
  Rng rng(13);
  const Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.5, rng));
  const Graph r = RelabelByDegree(g);
  for (int k : {3, 4}) {
    const auto counts_g = ExactGraphletCounts(g, k);
    const auto counts_r = ExactGraphletCounts(r, k);
    ASSERT_EQ(counts_g.size(), counts_r.size());
    for (size_t i = 0; i < counts_g.size(); ++i) {
      EXPECT_EQ(counts_g[i], counts_r[i]) << "k=" << k << " type " << i;
    }
  }
}

TEST(RelabelByDegreeTest, RoundTripsThroughSnapshot) {
  Rng rng(17);
  const Graph g = LargestConnectedComponent(HolmeKim(250, 3, 0.4, rng));
  const Graph r = RelabelByDegree(g);
  const std::string path = TempPath("grw_format_relabel.grwb");
  SaveGraphBinary(r, path, kGrwbFlagDegreeRelabeled);
  const Graph loaded = LoadGraphBinary(path, /*verify_checksum=*/true);
  ExpectIdenticalCsr(r, loaded);
  EXPECT_TRUE(InspectGraphBinary(path).DegreeRelabeled());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace grw
