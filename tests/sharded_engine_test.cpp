// Tests for the out-of-core estimation path: ShardStore's LRU residency
// accounting (eviction order, byte budget, pin semantics), ShardedAccess
// read equivalence, and the acceptance gate — engine runs over sharded
// storage are bit-identical to monolithic runs at 1, 2, and 8 threads,
// whether or not the budget covers the graph.

#include "graph/sharded_access.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "engine/engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/sharding.h"
#include "util/rng.h"

namespace grw {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  // ctest runs each test case as its own process (possibly in
  // parallel), so the directory must be unique per process.
  const fs::path dir = fs::temp_directory_path() /
                       (name + "." + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

// A 4-regular ring lattice: every node has degree 4, so equal row counts
// mean equal shard file sizes — the LRU tests can reason in whole shards.
Graph RegularGraph() {
  Rng rng(3);
  return WattsStrogatz(400, 4, 0.0, rng);
}

ShardManifest ShardInto(const Graph& g, const std::string& dir,
                        uint32_t shards) {
  ShardingOptions options;
  options.num_shards = shards;
  return WriteShardedGraph(g, dir, options);
}

TEST(ShardStoreTest, LruEvictionOrderUnderByteBudget) {
  const Graph g = RegularGraph();
  const std::string dir = TempDir("grw_store_lru");
  const ShardManifest m = ShardInto(g, dir, 4);
  const uint64_t per_shard = m.shards[0].file_bytes;
  for (const ShardInfo& s : m.shards) {
    ASSERT_EQ(s.file_bytes, per_shard);  // regular graph => equal shards
  }

  ShardStore::Options options;
  options.resident_budget_bytes = 2 * per_shard;  // exactly two shards
  const ShardStore store(LoadShardManifest(dir), options);

  store.Acquire(0);
  store.Acquire(1);
  EXPECT_TRUE(store.Resident(0));
  EXPECT_TRUE(store.Resident(1));
  EXPECT_EQ(store.stats().evictions, 0u);

  // Third shard: the least-recently-used (0) goes, not the newest.
  store.Acquire(2);
  EXPECT_FALSE(store.Resident(0));
  EXPECT_TRUE(store.Resident(1));
  EXPECT_TRUE(store.Resident(2));

  // Touch 1 (a hit, promoting it), then fault 3: now 2 is the LRU.
  store.Acquire(1);
  store.Acquire(3);
  EXPECT_TRUE(store.Resident(1));
  EXPECT_FALSE(store.Resident(2));
  EXPECT_TRUE(store.Resident(3));

  const ShardStats stats = store.stats();
  EXPECT_EQ(stats.faults, 4u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_shards, 2u);
  EXPECT_EQ(stats.resident_bytes, 2 * per_shard);
  EXPECT_EQ(stats.peak_resident_bytes, 2 * per_shard);
  EXPECT_EQ(stats.budget_bytes, options.resident_budget_bytes);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, BudgetFloorIsOneShard) {
  // A budget smaller than any shard still admits one shard at a time —
  // the walk could not proceed otherwise.
  const Graph g = RegularGraph();
  const std::string dir = TempDir("grw_store_floor");
  const ShardManifest m = ShardInto(g, dir, 4);
  ShardStore::Options options;
  options.resident_budget_bytes = 1;
  const ShardStore store(LoadShardManifest(dir), options);

  store.Acquire(0);
  EXPECT_TRUE(store.Resident(0));
  EXPECT_EQ(store.stats().resident_bytes, m.shards[0].file_bytes);
  store.Acquire(1);
  EXPECT_FALSE(store.Resident(0));
  EXPECT_TRUE(store.Resident(1));
  EXPECT_EQ(store.stats().resident_shards, 1u);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, UnboundedBudgetNeverEvicts) {
  const Graph g = RegularGraph();
  const std::string dir = TempDir("grw_store_unbounded");
  const ShardManifest m = ShardInto(g, dir, 4);
  const ShardStore store(LoadShardManifest(dir), {});
  for (uint32_t s = 0; s < m.NumShards(); ++s) store.Acquire(s);
  for (uint32_t s = 0; s < m.NumShards(); ++s) {
    EXPECT_TRUE(store.Resident(s));
  }
  const ShardStats stats = store.stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_bytes, m.TotalShardBytes());
  EXPECT_EQ(stats.budget_bytes, 0u);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, PinSurvivesEviction) {
  // A chain's pin keeps an evicted shard readable: the store drops its
  // reference and its pages, but the mapping refaults from disk.
  const Graph g = RegularGraph();
  const std::string dir = TempDir("grw_store_pin");
  ShardInto(g, dir, 4);
  ShardStore::Options options;
  options.resident_budget_bytes = 1;  // floor: one resident shard
  const ShardStore store(LoadShardManifest(dir), options);

  const std::shared_ptr<const MappedShard> pin = store.Acquire(0);
  store.Acquire(1);
  store.Acquire(2);
  ASSERT_FALSE(store.Resident(0));
  for (VertexId v = pin->first_node(); v < pin->end_node(); ++v) {
    ASSERT_EQ(pin->Degree(v), g.Degree(v)) << "node " << v;
  }
  // Re-acquiring after eviction is a fresh fault, not a hit.
  const ShardStats stats = store.stats();
  EXPECT_EQ(stats.faults, 3u);
  store.Acquire(0);
  EXPECT_EQ(store.stats().faults, 4u);
  fs::remove_all(dir);
}

TEST(ShardedAccessTest, ReadsMatchGraphEverywhere) {
  // Every accessor, every node, every budget: answers must be identical
  // to the monolithic Graph — including HasEdge's tie-breaking.
  Rng rng(17);
  const Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.4, rng));
  const std::string dir = TempDir("grw_access_equiv");
  const ShardManifest m = ShardInto(g, dir, 5);
  for (const uint64_t budget : {uint64_t{0}, m.shards[0].file_bytes}) {
    ShardStore::Options options;
    options.resident_budget_bytes = budget;
    const ShardStore store(LoadShardManifest(dir), options);
    const ShardedAccess access(store);
    ASSERT_EQ(access.NumNodes(), g.NumNodes());
    ASSERT_EQ(access.NumEdges(), g.NumEdges());
    Rng probe(99);
    for (VertexId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ(access.Degree(v), g.Degree(v)) << "node " << v;
      const auto got = access.Neighbors(v);
      const auto want = g.Neighbors(v);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "node " << v;
      }
      // Random HasEdge probes, mixing present and absent pairs.
      const VertexId u = static_cast<VertexId>(probe.UniformInt(g.NumNodes()));
      ASSERT_EQ(access.HasEdge(v, u), g.HasEdge(v, u))
          << "pair " << v << "," << u;
    }
  }
  fs::remove_all(dir);
}

// ------------------------------------------------------------------ engine --

EngineOptions BaseOptions(int chains, unsigned threads) {
  EngineOptions options;
  options.chains = chains;
  options.threads = threads;
  options.max_steps = 4000;
  options.base_seed = 20240808;
  options.round_steps = EngineOptions::DefaultRoundSteps(options.max_steps);
  return options;
}

void ExpectIdenticalResults(const EngineResult& a, const EngineResult& b) {
  ASSERT_EQ(a.merged.concentrations.size(), b.merged.concentrations.size());
  for (size_t i = 0; i < a.merged.concentrations.size(); ++i) {
    EXPECT_EQ(a.merged.concentrations[i], b.merged.concentrations[i])
        << "graphlet " << i;
  }
  ASSERT_EQ(a.per_chain.size(), b.per_chain.size());
  for (size_t c = 0; c < a.per_chain.size(); ++c) {
    for (size_t i = 0; i < a.per_chain[c].concentrations.size(); ++i) {
      EXPECT_EQ(a.per_chain[c].concentrations[i],
                b.per_chain[c].concentrations[i])
          << "chain " << c << " graphlet " << i;
    }
  }
  EXPECT_EQ(a.steps_per_chain, b.steps_per_chain);
}

TEST(ShardedEngineTest, BitIdenticalToMonolithicAcrossThreadsAndBudgets) {
  // The acceptance gate: sharded estimates equal monolithic estimates
  // bit for bit — with the budget covering the whole graph AND with a
  // budget that forces eviction — at 1, 2, and 8 threads.
  Rng rng(23);
  const Graph g = LargestConnectedComponent(HolmeKim(400, 4, 0.3, rng));
  const std::string dir = TempDir("grw_engine_identity");
  const ShardManifest m = ShardInto(g, dir, 6);
  const EstimatorConfig config{4, 2, true, false};

  for (const unsigned threads : {1u, 2u, 8u}) {
    const EngineOptions options = BaseOptions(/*chains=*/8, threads);
    EstimationEngine mono(g, config, options);
    const EngineResult reference = mono.Run();

    for (const uint64_t budget : {uint64_t{0}, m.shards[0].file_bytes}) {
      ShardStore::Options store_options;
      store_options.resident_budget_bytes = budget;
      const ShardStore store(LoadShardManifest(dir), store_options);
      EstimationEngine sharded(store, config, options);
      const EngineResult result = sharded.Run();
      ExpectIdenticalResults(reference, result);
      // Residency accounting surfaced through the result.
      EXPECT_GT(result.shards.faults, 0u);
      EXPECT_EQ(result.shards.budget_bytes, budget);
      if (budget > 0) {
        EXPECT_GT(result.shards.evictions, 0u);
      }
    }
  }
  fs::remove_all(dir);
}

TEST(ShardedEngineTest, LocalitySeedingStartsChainsInAffinityShards) {
  Rng rng(31);
  const Graph g = LargestConnectedComponent(HolmeKim(400, 4, 0.3, rng));
  const std::string dir = TempDir("grw_engine_locality");
  ShardInto(g, dir, 4);
  const ShardStore store(LoadShardManifest(dir), {});
  const EstimatorConfig config{4, 2, true, false};

  EngineOptions options = BaseOptions(/*chains=*/8, /*threads=*/2);
  options.sharded.locality_seeding = true;
  EstimationEngine engine(store, config, options);
  const EngineResult result = engine.Run();

  // Changed start distribution, same estimator: concentrations are still
  // a probability vector and every chain ran its full budget.
  double sum = 0.0;
  for (const double c : result.merged.concentrations) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    sum += c;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(result.steps_per_chain, options.max_steps);
  EXPECT_GT(result.shards.faults, 0u);
  fs::remove_all(dir);
}

TEST(ShardedEngineTest, RejectsCrawlAndBatchModes) {
  const Graph g = RegularGraph();
  const std::string dir = TempDir("grw_engine_reject");
  ShardInto(g, dir, 2);
  const ShardStore store(LoadShardManifest(dir), {});
  const EstimatorConfig config{4, 2, true, false};

  EngineOptions crawl = BaseOptions(2, 1);
  crawl.crawl.enabled = true;
  EXPECT_THROW(EstimationEngine(store, config, crawl),
               std::invalid_argument);

  EngineOptions batch = BaseOptions(2, 1);
  batch.batch.enabled = true;
  EXPECT_THROW(EstimationEngine(store, config, batch),
               std::invalid_argument);
  fs::remove_all(dir);
}

TEST(ShardedEngineTest, SetStartRangeValidation) {
  const Graph g = RegularGraph();
  GraphletEstimator estimator(g, EstimatorConfig{4, 2, true, false});
  EXPECT_THROW(estimator.SetStartRange(10, 10), std::invalid_argument);
  EXPECT_THROW(estimator.SetStartRange(20, 10), std::invalid_argument);
  EXPECT_THROW(estimator.SetStartRange(0, g.NumNodes() + 1),
               std::invalid_argument);
  EXPECT_NO_THROW(estimator.SetStartRange(0, g.NumNodes()));
}

TEST(ShardedEngineTest, FullRangeSeedingIsBitIdenticalToDefault) {
  // SetStartRange(0, n) consumes the RNG exactly like the default reset,
  // so the whole run — not just the start node — matches bit for bit.
  // (This is the invariant that lets Reset delegate to ResetInRange.)
  Rng rng(41);
  const Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.4, rng));
  const EstimatorConfig config{4, 2, true, false};

  GraphletEstimator plain(g, config);
  plain.Reset(7);
  plain.Run(2000);

  GraphletEstimator ranged(g, config);
  ranged.SetStartRange(0, g.NumNodes());
  ranged.Reset(7);
  ranged.Run(2000);

  const EstimateResult a = plain.Result();
  const EstimateResult b = ranged.Result();
  ASSERT_EQ(a.concentrations.size(), b.concentrations.size());
  for (size_t i = 0; i < a.concentrations.size(); ++i) {
    EXPECT_EQ(a.concentrations[i], b.concentrations[i]) << "graphlet " << i;
  }
}

}  // namespace
}  // namespace grw
