// Strict numeric parsing tests: the ParseInt64/ParseDouble/ParseBool
// helpers, the Flags diagnostics built on them (death tests: a malformed
// flag value must exit(2) with a `flag --name: invalid ...` message, not
// silently misparse — `--budget-queries=10k` used to read as 10), and
// the bench JSON writer's control-character escaping.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/flags.h"

namespace grw {
namespace {

// ---------------------------------------------------------- ParseInt64 --

TEST(StrictParseTest, Int64AcceptsWholeStringIntegers) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-5"), -5);
  EXPECT_EQ(ParseInt64("+7"), 7);
  EXPECT_EQ(ParseInt64("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt64("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
}

TEST(StrictParseTest, Int64RejectsGarbageAndTrailingJunk) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
  EXPECT_FALSE(ParseInt64("10k").has_value());  // the original bug
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("7 ").has_value());
  EXPECT_FALSE(ParseInt64(" 7").has_value());
  EXPECT_FALSE(ParseInt64("0x10").has_value());  // base 10 only
  EXPECT_FALSE(ParseInt64("-").has_value());
  EXPECT_FALSE(ParseInt64("1e3").has_value());
}

TEST(StrictParseTest, Int64RejectsOutOfRange) {
  // One past each end of int64: no clamping to min/max.
  EXPECT_FALSE(ParseInt64("9223372036854775808").has_value());
  EXPECT_FALSE(ParseInt64("-9223372036854775809").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

// --------------------------------------------------------- ParseDouble --

TEST(StrictParseTest, DoubleAcceptsWholeStringNumbers) {
  EXPECT_EQ(ParseDouble("1.5"), 1.5);
  EXPECT_EQ(ParseDouble("-2e3"), -2000.0);
  EXPECT_EQ(ParseDouble(".5"), 0.5);
  EXPECT_EQ(ParseDouble("0"), 0.0);
  EXPECT_EQ(ParseDouble("1e308"), 1e308);
}

TEST(StrictParseTest, DoubleRejectsGarbageJunkAndNonFinite) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble(" 1.5").has_value());
  EXPECT_FALSE(ParseDouble("1.5 ").has_value());
  EXPECT_FALSE(ParseDouble("1e999").has_value());   // overflows to inf
  EXPECT_FALSE(ParseDouble("-1e999").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

// ----------------------------------------------------------- ParseBool --

TEST(StrictParseTest, BoolAcceptsCanonicalFormsOnly) {
  for (const char* t : {"1", "true", "yes", "on"}) {
    EXPECT_EQ(ParseBool(t), true) << t;
  }
  for (const char* f : {"0", "false", "no", "off"}) {
    EXPECT_EQ(ParseBool(f), false) << f;
  }
  for (const char* bad : {"", "2", "TRUE", "y", "maybe", "01"}) {
    EXPECT_FALSE(ParseBool(bad).has_value()) << bad;
  }
}

// ------------------------------------------------- Flags strict getters --

Flags MakeFlags(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str()s alive
  storage = std::move(args);
  storage.insert(storage.begin(), "test");
  argv.reserve(storage.size());
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsStrictTest, ValidValuesParse) {
  const Flags flags =
      MakeFlags({"--steps", "100", "--scale=0.25", "--lcc", "0"});
  EXPECT_EQ(flags.GetInt("steps", 0), 100);
  EXPECT_EQ(flags.GetDouble("scale", 1.0), 0.25);
  EXPECT_FALSE(flags.GetBool("lcc", true));
  EXPECT_EQ(flags.GetInt("absent", -3), -3);
}

TEST(FlagsStrictDeathTest, MalformedIntegerExitsWithDiagnostic) {
  const Flags flags = MakeFlags({"--budget-queries=10k"});
  EXPECT_EXIT(flags.GetInt("budget-queries", 0),
              ::testing::ExitedWithCode(2),
              "flag --budget-queries: invalid integer '10k'");
}

TEST(FlagsStrictDeathTest, TrailingJunkAndOverflowExit) {
  const Flags a = MakeFlags({"--lanes=abc"});
  EXPECT_EXIT(a.GetInt("lanes", 0), ::testing::ExitedWithCode(2),
              "invalid integer 'abc'");
  const Flags b = MakeFlags({"--steps=9223372036854775808"});
  EXPECT_EXIT(b.GetInt("steps", 0), ::testing::ExitedWithCode(2),
              "invalid integer");
}

TEST(FlagsStrictDeathTest, MalformedDoubleAndBoolExit) {
  const Flags a = MakeFlags({"--target-nrmse=0.05x"});
  EXPECT_EXIT(a.GetDouble("target-nrmse", 0.0),
              ::testing::ExitedWithCode(2),
              "flag --target-nrmse: invalid number '0.05x'");
  const Flags b = MakeFlags({"--css=maybe"});
  EXPECT_EXIT(b.GetBool("css", true), ::testing::ExitedWithCode(2),
              "flag --css: invalid boolean 'maybe'");
}

// ------------------------------------------------- bench JSON escaping --

TEST(BenchJsonTest, EscapesControlCharactersAsUnicode) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "grw_flags_test.json";
  // \x01 and \x1f have no short escape and used to be dropped silently;
  // quote/backslash/newline/tab take the usual two-char forms.
  // Note the split literals: "\x01b" would parse as the single escape
  // \x1B, swallowing the 'b'.
  const std::string context = std::string("a\x01" "b\x1f" "\"\\\n\tc");
  ASSERT_TRUE(bench::WriteBenchJson(path.string(), "bench_x", context,
                                    {{"metric", 1.0, "unit"}}));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  fs::remove(path);
  EXPECT_NE(json.find("a\\u0001b\\u001f\\\"\\\\\\n\\tc"),
            std::string::npos)
      << json;
  // No raw control byte may survive into the file.
  for (char c : json) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control byte in output";
  }
}

}  // namespace
}  // namespace grw
