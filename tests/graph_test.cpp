// Tests for the CSR graph, builder pipeline, and LCC extraction.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(GraphTest, BasicTriangleProperties) {
  const Graph g = FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_EQ(g.MaxDegree(), 2u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, NeighborsSortedAndDeduped) {
  const Graph g = FromEdges(4, {{2, 0}, {0, 2}, {0, 1}, {3, 0}, {0, 3}});
  const auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, BuilderDropsSelfLoopsAndRelabelsSparseIds) {
  GraphBuilder builder;
  builder.AddEdge(100, 200);
  builder.AddEdge(200, 100);  // duplicate (reversed)
  builder.AddEdge(100, 100);  // self-loop
  builder.AddEdge(200, 900);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  // Relabeling is by sorted original id: 100->0, 200->1, 900->2.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, WedgeCountMatchesDefinition) {
  // Star S4: center degree 4 -> C(4,2) = 6 wedges.
  EXPECT_EQ(Star(5).WedgeCount(), 6u);
  // Triangle: 3 wedges.
  EXPECT_EQ(Complete(3).WedgeCount(), 3u);
  // Path P4: two internal nodes of degree 2 -> 2 wedges.
  EXPECT_EQ(Path(4).WedgeCount(), 2u);
}

TEST(GraphTest, LargestConnectedComponentPicksBiggest) {
  // Two components: a triangle and a 5-path.
  const Graph g = FromEdges(
      8, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  const Graph lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.NumNodes(), 5u);
  EXPECT_EQ(lcc.NumEdges(), 4u);
  EXPECT_TRUE(lcc.IsConnected());
}

TEST(GraphTest, LccOfConnectedGraphIsIdentityShaped) {
  Rng rng(7);
  const Graph g = ErdosRenyi(200, 800, rng);
  const Graph lcc = LargestConnectedComponent(g);
  EXPECT_LE(lcc.NumNodes(), g.NumNodes());
  EXPECT_TRUE(lcc.IsConnected());
}

TEST(GraphTest, DegreeSquareSum) {
  const Graph g = Star(4);  // degrees 3,1,1,1
  EXPECT_EQ(g.DegreeSquareSum(), 9u + 1 + 1 + 1);
}

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, SummaryFormat) {
  EXPECT_EQ(Complete(4).Summary(), "n=4 m=6 dmax=3");
}

}  // namespace
}  // namespace grw
