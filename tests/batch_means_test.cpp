// Tests for batch-means error bars.

#include "core/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(BatchMeansTest, ErrorBarsCoverTheTruthMostOfTheTime) {
  Rng rng(19);
  const Graph g = LargestConnectedComponent(HolmeKim(400, 4, 0.5, rng));
  const auto truth = ExactConcentrations(g, 3);
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  const int triangle = c3.IdByName("triangle");

  int covered = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto est = EstimateWithErrorBars(
        g, EstimatorConfig{3, 1, true, false}, 40000, 20, 700 + trial);
    // 3-sigma interval; batch means underestimates slightly on short
    // correlated chains, so ask for a generous coverage level.
    if (std::abs(est.concentrations[triangle] - truth[triangle]) <=
        3.0 * est.standard_errors[triangle]) {
      ++covered;
    }
  }
  EXPECT_GE(covered, trials * 7 / 10);
}

TEST(BatchMeansTest, ErrorsShrinkWithMoreSteps) {
  Rng rng(21);
  const Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.5, rng));
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  const int triangle = c3.IdByName("triangle");
  double short_se = 0.0;
  double long_se = 0.0;
  const int reps = 8;
  for (int r = 0; r < reps; ++r) {
    short_se += EstimateWithErrorBars(g, EstimatorConfig{3, 1, false, false},
                                      4000, 10, 40 + r)
                    .standard_errors[triangle] /
                reps;
    long_se += EstimateWithErrorBars(g, EstimatorConfig{3, 1, false, false},
                                     64000, 10, 80 + r)
                   .standard_errors[triangle] /
               reps;
  }
  // 16x the steps should shrink the error by roughly 4x; require 2x.
  EXPECT_LT(long_se, short_se / 2.0);
}

TEST(BatchMeansTest, BatchEstimatesStructure) {
  const Graph g = KarateClub();
  const auto est = EstimateWithErrorBars(
      g, EstimatorConfig{4, 2, false, false}, 5000, 5, 3);
  EXPECT_EQ(est.batch_estimates.size(), 5u);
  EXPECT_EQ(est.steps, 5000u);
  for (const auto& batch : est.batch_estimates) {
    double sum = 0.0;
    for (double c : batch) sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(BatchMeansAccumulatorTest, StandardErrorsMatchClosedForm) {
  BatchMeansAccumulator acc;
  EXPECT_EQ(acc.NumBatches(), 0);
  EXPECT_TRUE(acc.StandardErrors().empty());
  acc.AddBatch({0.2, 0.8});
  // One batch: no spread information yet.
  EXPECT_EQ(acc.StandardErrors(), (std::vector<double>{0.0, 0.0}));
  acc.AddBatch({0.4, 0.6});
  EXPECT_EQ(acc.NumBatches(), 2);
  // Sample stddev of {0.2, 0.4} is sqrt(0.02); SE = sqrt(0.02 / 2) = 0.1.
  const auto se = acc.StandardErrors();
  ASSERT_EQ(se.size(), 2u);
  EXPECT_NEAR(se[0], 0.1, 1e-12);
  EXPECT_NEAR(se[1], 0.1, 1e-12);
}

TEST(BatchMeansAccumulatorTest, MaxRelativeErrorRespectsFloor) {
  BatchMeansAccumulator acc;
  acc.AddBatch({0.9, 0.1});
  EXPECT_TRUE(std::isinf(acc.MaxRelativeError({0.9, 0.1}, 1e-3)));
  acc.AddBatch({0.7, 0.3});
  // SE: type0 sd(0.9,0.7)=sqrt(0.02), /sqrt(2) -> 0.1; same for type1.
  // Relative: 0.1/0.8 = 0.125 vs 0.1/0.2 = 0.5 -> max 0.5.
  EXPECT_NEAR(acc.MaxRelativeError({0.8, 0.2}, 1e-3), 0.5, 1e-12);
  // Floor above type1's concentration drops it from the gate.
  EXPECT_NEAR(acc.MaxRelativeError({0.8, 0.2}, 0.5), 0.125, 1e-12);
  // Nothing above the floor: NaN (cannot assess convergence).
  EXPECT_TRUE(std::isnan(acc.MaxRelativeError({0.0, 0.0}, 1e-3)));
}

TEST(BatchMeansAccumulatorTest, RejectsChangingBatchLength) {
  BatchMeansAccumulator acc;
  acc.AddBatch({0.5, 0.5});
  EXPECT_THROW(acc.AddBatch({1.0}), std::invalid_argument);
  // An empty first batch fixes the length at zero; it cannot silently
  // widen later (which would undercount per-type batches and fake
  // convergence).
  BatchMeansAccumulator empty_first;
  empty_first.AddBatch({});
  EXPECT_EQ(empty_first.NumBatches(), 1);
  EXPECT_THROW(empty_first.AddBatch({0.5, 0.5}), std::invalid_argument);
}

TEST(BatchMeansTest, RejectsDegenerateBatching) {
  const Graph g = KarateClub();
  EXPECT_THROW(EstimateWithErrorBars(g, EstimatorConfig{3, 1, false, false},
                                     100, 1, 1),
               std::invalid_argument);
  EXPECT_THROW(EstimateWithErrorBars(g, EstimatorConfig{3, 1, false, false},
                                     3, 10, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace grw
