// End-to-end correctness of the estimator (Algorithm 1): asymptotic
// unbiasedness of every method variant against exact ground truth on small
// graphs, count estimation via |R(d)|, and bookkeeping invariants.

#include "core/estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.h"
#include "core/rsize.h"
#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {
namespace {

// Renormalizes `truth` over the types observable by the method (alpha > 0)
// — e.g. SRW1 cannot see 3-stars (paper footnote 3), so its concentration
// estimates converge to the conditional concentrations.
std::vector<double> ObservableTruth(const std::vector<double>& truth,
                                    int k, int d) {
  const auto alpha = AlphaTable(k, d);
  std::vector<double> adjusted(truth.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (alpha[i] > 0) total += truth[i];
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    if (alpha[i] > 0 && total > 0) adjusted[i] = truth[i] / total;
  }
  return adjusted;
}

class EstimatorConvergence
    : public ::testing::TestWithParam<EstimatorConfig> {};

TEST_P(EstimatorConvergence, ConcentrationsApproachExactValues) {
  const EstimatorConfig config = GetParam();
  // A clustered small-world-ish graph with all graphlet types present.
  Rng rng(1234);
  const Graph g = LargestConnectedComponent(HolmeKim(250, 4, 0.6, rng));
  const auto truth =
      ObservableTruth(ExactConcentrations(g, config.k), config.k, config.d);

  // Average several medium chains rather than one huge chain: bounds both
  // runtime and chain-correlation artifacts.
  const int chains = config.d >= 3 ? 4 : 8;
  const uint64_t steps = config.d >= 3 ? 30000 : 120000;
  std::vector<double> mean(truth.size(), 0.0);
  for (int c = 0; c < chains; ++c) {
    const auto result =
        GraphletEstimator::Estimate(g, config, steps, 1000 + c);
    for (size_t i = 0; i < mean.size(); ++i) {
      mean[i] += result.concentrations[i] / chains;
    }
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    // Absolute tolerance: rare types have small absolute error even when
    // the relative error is noisy.
    EXPECT_NEAR(mean[i], truth[i], 0.04)
        << config.Name() << " k=" << config.k << " type " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, EstimatorConvergence,
    ::testing::Values(
        // 3-node: every d and optimization combination.
        EstimatorConfig{3, 1, false, false}, EstimatorConfig{3, 1, true, false},
        EstimatorConfig{3, 1, false, true}, EstimatorConfig{3, 1, true, true},
        EstimatorConfig{3, 2, false, false}, EstimatorConfig{3, 2, false, true},
        // 4-node: d = 1 (partial visibility), 2 (recommended), 3 (PSRW).
        EstimatorConfig{4, 1, false, false}, EstimatorConfig{4, 1, true, true},
        EstimatorConfig{4, 2, false, false}, EstimatorConfig{4, 2, true, false},
        EstimatorConfig{4, 2, false, true}, EstimatorConfig{4, 2, true, true},
        EstimatorConfig{4, 3, false, false},
        // 5-node: d = 2 (recommended) and the PSRW end d = 4.
        EstimatorConfig{5, 2, false, false}, EstimatorConfig{5, 2, true, false},
        EstimatorConfig{5, 4, false, false}),
    [](const ::testing::TestParamInfo<EstimatorConfig>& info) {
      return "k" + std::to_string(info.param.k) + info.param.Name();
    });

TEST(EstimatorTest, CountEstimatesApproachExactCounts) {
  Rng rng(99);
  const Graph g = LargestConnectedComponent(HolmeKim(150, 4, 0.5, rng));
  const auto exact = ExactGraphletCounts(g, 3);

  for (int d = 1; d <= 2; ++d) {
    EstimatorConfig config{3, d, false, false};
    std::vector<double> mean(exact.size(), 0.0);
    const int chains = 8;
    for (int c = 0; c < chains; ++c) {
      GraphletEstimator estimator(g, config);
      estimator.Reset(500 + c);
      estimator.Run(100000);
      const auto counts = estimator.CountEstimates();
      for (size_t i = 0; i < mean.size(); ++i) {
        mean[i] += counts[i] / chains;
      }
    }
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(mean[i], static_cast<double>(exact[i]),
                  0.08 * static_cast<double>(exact[i]) + 1.0)
          << "d=" << d << " type " << i;
    }
  }
}

TEST(EstimatorTest, CssCountEstimatesAlsoUnbiased) {
  Rng rng(77);
  const Graph g = LargestConnectedComponent(HolmeKim(150, 4, 0.5, rng));
  const auto exact = ExactGraphletCounts(g, 4);
  EstimatorConfig config{4, 2, true, false};
  std::vector<double> mean(exact.size(), 0.0);
  const int chains = 8;
  for (int c = 0; c < chains; ++c) {
    GraphletEstimator estimator(g, config);
    estimator.Reset(4200 + c);
    estimator.Run(150000);
    const auto counts = estimator.CountEstimates();
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += counts[i] / chains;
  }
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(mean[i], static_cast<double>(exact[i]),
                0.12 * static_cast<double>(exact[i]) + 2.0)
        << "type " << i;
  }
}

TEST(EstimatorTest, ResultBookkeepingInvariants) {
  const Graph g = KarateClub();
  EstimatorConfig config{4, 2, false, false};
  GraphletEstimator estimator(g, config);
  estimator.Reset(7);
  estimator.Run(5000);
  const EstimateResult result = estimator.Result();
  EXPECT_EQ(result.steps, 5000u);
  EXPECT_LE(result.valid_samples, result.steps);
  EXPECT_GT(result.valid_samples, 0u);
  uint64_t sample_sum = 0;
  double conc_sum = 0.0;
  for (size_t i = 0; i < result.samples.size(); ++i) {
    sample_sum += result.samples[i];
    conc_sum += result.concentrations[i];
    EXPECT_GE(result.weights[i], 0.0);
  }
  EXPECT_EQ(sample_sum, result.valid_samples);
  EXPECT_NEAR(conc_sum, 1.0, 1e-9);
}

TEST(EstimatorTest, ResetRestartsCleanly) {
  const Graph g = KarateClub();
  GraphletEstimator estimator(g, EstimatorConfig{3, 1, false, false});
  estimator.Reset(1);
  estimator.Run(1000);
  const auto first = estimator.Result();
  estimator.Reset(1);
  estimator.Run(1000);
  const auto second = estimator.Result();
  // Same seed -> identical chain -> identical estimates.
  EXPECT_EQ(first.valid_samples, second.valid_samples);
  for (size_t i = 0; i < first.weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.weights[i], second.weights[i]);
  }
}

TEST(EstimatorTest, DistinctSeedsGiveDistinctChains) {
  const Graph g = KarateClub();
  GraphletEstimator estimator(g, EstimatorConfig{3, 1, false, false});
  estimator.Reset(1);
  estimator.Run(2000);
  const auto a = estimator.Result();
  estimator.Reset(2);
  estimator.Run(2000);
  const auto b = estimator.Result();
  EXPECT_NE(a.weights, b.weights);
}

TEST(EstimatorTest, RejectsInvalidConfigs) {
  const Graph g = KarateClub();
  EXPECT_THROW(GraphletEstimator(g, EstimatorConfig{3, 3, false, false}),
               std::invalid_argument);
  EXPECT_THROW(GraphletEstimator(g, EstimatorConfig{3, 0, false, false}),
               std::invalid_argument);
  EXPECT_THROW(GraphletEstimator(g, EstimatorConfig{7, 2, false, false}),
               std::invalid_argument);
}

TEST(EstimatorTest, ConfigNamesFollowPaperConvention) {
  EXPECT_EQ((EstimatorConfig{3, 1, false, false}).Name(), "SRW1");
  EXPECT_EQ((EstimatorConfig{4, 2, true, false}).Name(), "SRW2CSS");
  EXPECT_EQ((EstimatorConfig{3, 1, true, true}).Name(), "SRW1CSSNB");
  EXPECT_EQ((EstimatorConfig{5, 4, false, true}).Name(), "SRW4NB");
}

TEST(EstimatorTest, BurnInIsHonored) {
  const Graph g = KarateClub();
  EstimatorConfig config{3, 1, false, false};
  config.burn_in = 100;
  GraphletEstimator estimator(g, config);
  estimator.Reset(3);
  estimator.Run(100);
  EXPECT_EQ(estimator.Result().steps, 100u);
}

TEST(EstimatorTest, RelationshipEdgeCountClosedForms) {
  Rng rng(13);
  const Graph g = LargestConnectedComponent(ErdosRenyi(60, 150, rng));
  EXPECT_EQ(RelationshipEdgeCount(g, 1), g.NumEdges());
  EXPECT_EQ(RelationshipEdgeCount(g, 2), g.WedgeCount());
  // d = 3 enumeration cross-check on a tiny fixture: triangle's G(2) is a
  // triangle, K4's G(3) is K4 (each pair of 3-subsets shares 2 nodes).
  EXPECT_EQ(RelationshipEdgeCount(Complete(4), 3), 6u);
}

}  // namespace
}  // namespace grw
