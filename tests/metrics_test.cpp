// Tests for descriptive graph metrics.

#include "graph/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/triangle.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(MetricsTest, DegreeStatsOnStar) {
  const Graph g = Star(11);  // hub degree 10, leaves degree 1
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 10u);
  EXPECT_NEAR(stats.mean, 20.0 / 11.0, 1e-12);
  EXPECT_EQ(stats.p50, 1u);
}

TEST(MetricsTest, DegreeHistogramSumsToN) {
  Rng rng(2);
  const Graph g = BarabasiAlbert(500, 3, rng);
  const auto histogram = DegreeHistogram(g);
  uint64_t total = 0;
  uint64_t weighted = 0;
  for (size_t d = 0; d < histogram.size(); ++d) {
    total += histogram[d];
    weighted += d * histogram[d];
  }
  EXPECT_EQ(total, g.NumNodes());
  EXPECT_EQ(weighted, 2 * g.NumEdges());
}

TEST(MetricsTest, AssortativityRegularGraphIsDegenerate) {
  EXPECT_TRUE(std::isnan(DegreeAssortativity(Cycle(10))));
}

TEST(MetricsTest, AssortativityStarIsNegative) {
  // Stars are maximally disassortative: r = -1.
  EXPECT_NEAR(DegreeAssortativity(Star(10)), -1.0, 1e-9);
}

TEST(MetricsTest, LocalClusteringCompleteGraph) {
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Complete(6)), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Star(6)), 0.0);
}

TEST(MetricsTest, LocalVsGlobalClusteringDiffer) {
  // A graph where hubs are open but small nodes are closed separates the
  // two definitions: lollipop (clique + path tail).
  const Graph g = Lollipop(5, 5);
  const double local = AverageLocalClustering(g);
  const double global = GlobalClusteringCoefficient(g);
  EXPECT_GT(local, 0.0);
  EXPECT_GT(global, 0.0);
  EXPECT_NE(local, global);
}

}  // namespace
}  // namespace grw
