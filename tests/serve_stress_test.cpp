// Concurrency stress for the serve layer, written to be run under
// ThreadSanitizer (the CI `tsan` job builds with -DGRW_TSAN=ON and runs
// the `stress` ctest label): many client threads hammer the scheduler and
// the TCP server with deadline-bounded queries while a drain / Stop()
// races them mid-flight. Assertions are deterministic — every response is
// a complete single-line JSON object, counters reconcile after the drain
// — while the interleavings TSan checks vary run to run.
//
// Sized for the small CI runners: a few hundred requests over a
// few-hundred-node fixture, seconds per test, not minutes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "util/rng.h"

namespace grw::serve {
namespace {

Graph SmallFixture() {
  Rng rng(23);
  Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.5, rng));
  g.BuildAdjacencyIndex();
  return g;
}

bool LooksLikeJsonObject(const std::string& s) {
  return s.size() >= 2 && s.front() == '{' && s.back() == '}';
}

TEST(ServeStressTest, ConcurrentHandleLineRacesDrain) {
  SnapshotRegistry registry;
  registry.RegisterGraph("g", SmallFixture());
  SchedulerOptions options;
  options.workers = 4;
  options.queue_limit = 8;  // small, so overload shedding is exercised
  ServeScheduler scheduler(&registry, options);

  constexpr int kThreads = 6;
  constexpr int kRequestsPerThread = 12;
  std::atomic<int> responses{0};
  std::atomic<int> malformed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        // Mix free-running, deadline-cancelled and malformed requests;
        // tenants share budget accounting across threads.
        std::string line;
        switch ((t + r) % 4) {
          case 0:
            line = "ESTIMATE graph=g k=3 steps=2000 tenant=acme";
            break;
          case 1:
            line = "ESTIMATE graph=g k=4 steps=20000 deadline_ms=1";
            break;
          case 2:
            line = "ESTIMATE graph=g k=3 steps=1000 chains=2";
            break;
          default:
            line = "ESTIMATE graph=g k=99";  // parse error path
            break;
        }
        const std::string response = scheduler.HandleLine(line);
        responses.fetch_add(1);
        if (!LooksLikeJsonObject(response)) malformed.fetch_add(1);
      }
    });
  }
  // Drain races the clients: late submissions get a clean "server
  // draining" error, in-flight jobs finish.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  scheduler.Drain();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_EQ(responses.load(), kThreads * kRequestsPerThread);
  const ServeScheduler::Stats stats = scheduler.stats();
  // Every accepted job was answered exactly once, one way or the other.
  EXPECT_LE(stats.completed, stats.accepted);
  EXPECT_EQ(stats.completed + stats.errors,
            static_cast<uint64_t>(responses.load()));
}

TEST(ServeStressTest, TcpClientsRaceServerStop) {
  SnapshotRegistry registry;
  registry.RegisterGraph("g", SmallFixture());
  ServerOptions options;
  options.port = 0;
  options.scheduler.workers = 4;
  ServeServer server(&registry, options);
  server.Start();

  constexpr int kClients = 4;
  std::atomic<int> ok_responses{0};
  std::atomic<int> bad_responses{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        QueryClient client("127.0.0.1", server.port());
        for (int r = 0; r < 50; ++r) {
          const std::string response =
              client.RoundTrip("ESTIMATE graph=g k=3 steps=1000");
          if (LooksLikeJsonObject(response)) {
            ok_responses.fetch_add(1);
          } else {
            bad_responses.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        // Server hung up mid-exchange: the expected outcome for clients
        // still streaming when Stop() lands. Partial responses never
        // surface — RoundTrip either returns a full line or throws.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();  // races the in-flight round trips
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_GE(ok_responses.load(), 1);  // some requests landed before Stop
  const ServeScheduler::Stats stats = server.stats();
  EXPECT_GE(stats.completed + stats.errors,
            static_cast<uint64_t>(ok_responses.load()));
  EXPECT_FALSE(server.running());
}

TEST(ServeStressTest, StopIsIdempotentUnderConcurrentCallers) {
  SnapshotRegistry registry;
  registry.RegisterGraph("g", SmallFixture());
  ServerOptions options;
  options.port = 0;
  options.scheduler.workers = 2;
  ServeServer server(&registry, options);
  server.Start();

  std::vector<std::thread> stoppers;
  for (int i = 0; i < 3; ++i) {
    stoppers.emplace_back([&server] { server.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_FALSE(server.running());
  server.Stop();  // and once more after the fact
}

}  // namespace
}  // namespace grw::serve
