// Tests for the parallel estimation engine: ChainPool scheduling,
// EstimateResult merging, thread-count determinism, and convergence-driven
// early stopping.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/estimator.h"
#include "engine/chain_pool.h"
#include "engine/engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace grw {
namespace {

// ---------------------------------------------------------------- pool --

TEST(ChainPoolTest, CoversAllIndicesExactlyOnce) {
  ChainPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  pool.ForEach(hits.size(), [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ChainPoolTest, ReusableAcrossJobsAndEmptyJobs) {
  ChainPool pool(3);
  pool.ForEach(0, [](size_t) { FAIL() << "empty job must not run"; });
  for (int job = 0; job < 50; ++job) {
    std::atomic<int> count{0};
    pool.ForEach(17, [&](size_t) { count++; });
    EXPECT_EQ(count.load(), 17);
  }
}

TEST(ChainPoolTest, ThreadCapRespectedAndSerialFallback) {
  ChainPool pool(8);
  // max_threads = 1 runs everything on the calling thread, in order.
  std::vector<size_t> order;
  pool.ForEach(
      10, [&](size_t i) { order.push_back(i); }, /*max_threads=*/1);
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ChainPoolTest, PropagatesBodyExceptions) {
  ChainPool pool(4);
  EXPECT_THROW(
      pool.ForEach(64,
                   [&](size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool is still usable after an exception.
  std::atomic<int> count{0};
  pool.ForEach(8, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ChainPoolTest, ReentrantForEachRunsInline) {
  // A body that fans out on the same pool must not deadlock: the nested
  // job runs inline on the calling thread.
  ChainPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 16);
  pool.ForEach(8, [&](size_t outer) {
    pool.ForEach(16, [&](size_t inner) { hits[outer * 16 + inner]++; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ChainPoolTest, ReentrantForEachFromSerialPathsRunsInline) {
  // The serial fallbacks (max_threads = 1, n = 1, worker-less pool)
  // hold the submission lock while running bodies inline; nesting from
  // there must not self-deadlock either.
  ChainPool pool(4);
  std::atomic<int> count{0};
  pool.ForEach(
      2,
      [&](size_t) { pool.ForEach(4, [&](size_t) { count++; }); },
      /*max_threads=*/1);
  EXPECT_EQ(count.load(), 8);

  ChainPool single(1);  // no workers at all
  std::atomic<int> single_count{0};
  single.ForEach(3, [&](size_t) {
    single.ForEach(5, [&](size_t) { single_count++; });
  });
  EXPECT_EQ(single_count.load(), 15);
}

TEST(ChainPoolTest, SharedPoolIsAlive) {
  std::atomic<int> count{0};
  ChainPool::Shared().ForEach(32, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 32);
  EXPECT_GE(ChainPool::Shared().NumThreads(), 1u);
}

// --------------------------------------------------------------- merge --

EstimateResult MakeResult(std::vector<double> weights,
                          std::vector<uint64_t> samples, uint64_t steps,
                          uint64_t valid) {
  EstimateResult r;
  r.weights = std::move(weights);
  r.samples = std::move(samples);
  r.steps = steps;
  r.valid_samples = valid;
  FinalizeConcentrations(r);
  return r;
}

TEST(MergeResultsTest, CombinesWeightsSamplesAndSteps) {
  const EstimateResult a = MakeResult({1.0, 3.0}, {10, 30}, 100, 40);
  const EstimateResult b = MakeResult({2.0, 2.0}, {20, 20}, 200, 40);
  const EstimateResult m = MergeResults({a, b});
  EXPECT_DOUBLE_EQ(m.weights[0], 3.0);
  EXPECT_DOUBLE_EQ(m.weights[1], 5.0);
  EXPECT_EQ(m.samples[0], 30u);
  EXPECT_EQ(m.samples[1], 50u);
  EXPECT_EQ(m.steps, 300u);
  EXPECT_EQ(m.valid_samples, 80u);
  EXPECT_DOUBLE_EQ(m.concentrations[0], 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.concentrations[1], 5.0 / 8.0);
}

TEST(MergeResultsTest, SingleChainIsIdentity) {
  const EstimateResult a = MakeResult({0.5, 1.5}, {5, 15}, 42, 20);
  const EstimateResult m = MergeResults({a});
  EXPECT_EQ(m.weights, a.weights);
  EXPECT_EQ(m.samples, a.samples);
  EXPECT_EQ(m.steps, a.steps);
  EXPECT_EQ(m.valid_samples, a.valid_samples);
  EXPECT_EQ(m.concentrations, a.concentrations);
}

TEST(MergeResultsTest, ZeroValidSamplesStayZero) {
  // Chains that never produced a valid window: all-zero weights.
  const EstimateResult a = MakeResult({0.0, 0.0}, {0, 0}, 50, 0);
  const EstimateResult b = MakeResult({0.0, 0.0}, {0, 0}, 70, 0);
  const EstimateResult m = MergeResults({a, b});
  EXPECT_EQ(m.steps, 120u);
  EXPECT_EQ(m.valid_samples, 0u);
  EXPECT_DOUBLE_EQ(m.concentrations[0], 0.0);
  EXPECT_DOUBLE_EQ(m.concentrations[1], 0.0);
  // Merging a productive chain into an unproductive one recovers its
  // concentrations.
  const EstimateResult c = MakeResult({1.0, 1.0}, {1, 1}, 30, 2);
  const EstimateResult m2 = MergeResults({a, c});
  EXPECT_DOUBLE_EQ(m2.concentrations[0], 0.5);
  EXPECT_EQ(m2.steps, 80u);
}

TEST(MergeResultsTest, HeterogeneousStepCountsAdd) {
  const EstimateResult a = MakeResult({2.0}, {2}, 10, 2);
  const EstimateResult b = MakeResult({4.0}, {4}, 1000, 4);
  const EstimateResult m = MergeResults({a, b});
  EXPECT_EQ(m.steps, 1010u);
  EXPECT_DOUBLE_EQ(m.concentrations[0], 1.0);
}

TEST(MergeResultsTest, EmptyInputAndTypeMismatch) {
  const EstimateResult empty = MergeResults({});
  EXPECT_TRUE(empty.weights.empty());
  EXPECT_EQ(empty.steps, 0u);

  EstimateResult two = MakeResult({1.0, 1.0}, {1, 1}, 10, 2);
  const EstimateResult three = MakeResult({1.0, 1.0, 1.0}, {1, 1, 1}, 10, 3);
  EXPECT_THROW(MergeInto(two, three), std::invalid_argument);
}

// -------------------------------------------------------------- engine --

EngineResult RunEngine(const Graph& g, const EstimatorConfig& config,
                       int chains, unsigned threads, uint64_t steps,
                       uint64_t round_steps = 0) {
  EngineOptions options;
  options.chains = chains;
  options.threads = threads;
  options.max_steps = steps;
  options.base_seed = 1234;
  options.round_steps = round_steps;
  EstimationEngine engine(g, config, options);
  return engine.Run();
}

TEST(EngineTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(5);
  const Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.5, rng));
  const EstimatorConfig config{4, 2, true, false};
  const EngineResult base = RunEngine(g, config, 6, 1, 4000);
  for (unsigned threads : {2u, 8u}) {
    const EngineResult run = RunEngine(g, config, 6, threads, 4000);
    ASSERT_EQ(run.per_chain.size(), base.per_chain.size());
    for (size_t c = 0; c < base.per_chain.size(); ++c) {
      // Bit-identical per chain: weights and counts, not just close.
      EXPECT_EQ(run.per_chain[c].weights, base.per_chain[c].weights)
          << "chain " << c << " at " << threads << " threads";
      EXPECT_EQ(run.per_chain[c].samples, base.per_chain[c].samples);
      EXPECT_EQ(run.per_chain[c].valid_samples,
                base.per_chain[c].valid_samples);
    }
    EXPECT_EQ(run.merged.weights, base.merged.weights);
    EXPECT_EQ(run.merged.concentrations, base.merged.concentrations);
    EXPECT_EQ(run.merged.steps, base.merged.steps);
    EXPECT_EQ(run.rounds, base.rounds);
  }
}

TEST(EngineTest, RoundSlicingDoesNotChangeChains) {
  // Chains advanced in many small rounds must equal one big round:
  // Run(a); Run(b) on the same estimator is Run(a+b) by construction.
  const Graph g = KarateClub();
  const EstimatorConfig config{3, 1, false, false};
  const EngineResult one = RunEngine(g, config, 3, 4, 6000, 6000);
  const EngineResult many = RunEngine(g, config, 3, 4, 6000, 500);
  EXPECT_GT(many.rounds, one.rounds);
  ASSERT_EQ(one.per_chain.size(), many.per_chain.size());
  for (size_t c = 0; c < one.per_chain.size(); ++c) {
    EXPECT_EQ(one.per_chain[c].weights, many.per_chain[c].weights);
  }
  EXPECT_EQ(one.merged.weights, many.merged.weights);
}

TEST(EngineTest, MergedEqualsMergeOfPerChain) {
  const Graph g = KarateClub();
  const EngineResult run =
      RunEngine(g, EstimatorConfig{4, 2, false, false}, 5, 0, 3000);
  const EstimateResult manual = MergeResults(run.per_chain);
  EXPECT_EQ(run.merged.weights, manual.weights);
  EXPECT_EQ(run.merged.samples, manual.samples);
  EXPECT_EQ(run.merged.steps, manual.steps);
  EXPECT_EQ(run.merged.concentrations, manual.concentrations);
  EXPECT_EQ(run.merged.steps, 5u * 3000u);
}

TEST(EngineTest, SingleRoundLeavesStandardErrorsEmpty) {
  // One chain, one round -> one batch: no spread information, so the
  // engine must report unknown (empty) errors, not zeros.
  const Graph g = KarateClub();
  const EngineResult run =
      RunEngine(g, EstimatorConfig{3, 1, false, false}, 1, 1, 2000);
  EXPECT_EQ(run.rounds, 1);
  EXPECT_TRUE(run.standard_errors.empty());
}

TEST(EngineTest, ZeroChainsYieldEmptyResult) {
  const Graph g = KarateClub();
  const EngineResult run =
      RunEngine(g, EstimatorConfig{3, 1, false, false}, 0, 0, 1000);
  EXPECT_TRUE(run.per_chain.empty());
  EXPECT_EQ(run.rounds, 0);
  EXPECT_FALSE(run.converged);
  EXPECT_EQ(run.merged.steps, 0u);
}

TEST(EngineTest, ConvergenceStopsBeforeStepCap) {
  Rng rng(11);
  const Graph g = LargestConnectedComponent(HolmeKim(500, 5, 0.4, rng));
  EngineOptions options;
  options.chains = 8;
  options.max_steps = 400000;
  options.base_seed = 7;
  options.target_nrmse = 0.08;
  EstimationEngine engine(g, EstimatorConfig{4, 2, true, false}, options);
  const EngineResult run = engine.Run();
  EXPECT_TRUE(run.converged);
  EXPECT_LT(run.steps_per_chain, options.max_steps);
  EXPECT_GE(run.rounds, 2);
  EXPECT_LE(run.max_rel_error, options.target_nrmse);
  EXPECT_GT(run.steps_per_second, 0.0);
  // Standard errors are reported for every type.
  EXPECT_EQ(run.standard_errors.size(), run.merged.concentrations.size());
}

TEST(EngineTest, ConvergedStoppingIsThreadCountInvariant) {
  Rng rng(13);
  const Graph g = LargestConnectedComponent(HolmeKim(300, 4, 0.5, rng));
  EngineResult runs[2];
  for (int i = 0; i < 2; ++i) {
    EngineOptions options;
    options.chains = 4;
    options.threads = i == 0 ? 1 : 8;
    options.max_steps = 200000;
    options.base_seed = 99;
    options.target_nrmse = 0.1;
    options.round_steps = 2000;
    EstimationEngine engine(g, EstimatorConfig{3, 1, true, false}, options);
    runs[i] = engine.Run();
  }
  // The early-stopping decision is part of the determinism contract.
  EXPECT_EQ(runs[0].rounds, runs[1].rounds);
  EXPECT_EQ(runs[0].converged, runs[1].converged);
  EXPECT_EQ(runs[0].steps_per_chain, runs[1].steps_per_chain);
  EXPECT_EQ(runs[0].merged.weights, runs[1].merged.weights);
}

TEST(EngineTest, TightTargetHitsStepCapUnconverged) {
  const Graph g = KarateClub();
  EngineOptions options;
  options.chains = 2;
  options.max_steps = 2000;
  options.target_nrmse = 1e-9;  // unreachable at this budget
  EstimationEngine engine(g, EstimatorConfig{3, 1, false, false}, options);
  const EngineResult run = engine.Run();
  EXPECT_FALSE(run.converged);
  EXPECT_EQ(run.steps_per_chain, options.max_steps);
}

TEST(EngineTest, ProgressReportsEveryRound) {
  const Graph g = KarateClub();
  EngineOptions options;
  options.chains = 3;
  options.max_steps = 4000;
  options.round_steps = 1000;
  int calls = 0;
  uint64_t last_steps = 0;
  options.on_progress = [&](const EngineProgress& p) {
    ++calls;
    EXPECT_EQ(p.round, calls);
    EXPECT_EQ(p.chains, 3);
    EXPECT_GT(p.steps_per_chain, last_steps);
    EXPECT_EQ(p.total_steps, p.steps_per_chain * 3);
    last_steps = p.steps_per_chain;
  };
  EstimationEngine engine(g, EstimatorConfig{3, 1, false, false},
                          options);
  const EngineResult run = engine.Run();
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(run.rounds, 4);
  EXPECT_EQ(last_steps, 4000u);
}

TEST(EngineTest, RejectsBadConfiguration) {
  const Graph g = KarateClub();
  EngineOptions options;
  options.chains = -1;
  EXPECT_THROW(
      EstimationEngine(g, EstimatorConfig{3, 1, false, false}, options),
      std::invalid_argument);
  options.chains = 1;
  EXPECT_THROW(
      EstimationEngine(g, EstimatorConfig{3, 3, false, false}, options),
      std::invalid_argument);
}

// -------------------------------------------------- budget + cancel --

TEST(ChainBudgetShareTest, SplitSumsExactlyToBudget) {
  // The per-chain crawl budget split must conserve the total exactly —
  // floor division alone loses up to chains-1 queries, which on a tight
  // budget is the difference between "ran" and "refused". Adversarial
  // (chains, B) pairs, including B barely >= chains.
  for (const int chains : {1, 2, 3, 7, 8, 13, 64, 255}) {
    const auto c = static_cast<uint64_t>(chains);
    for (const uint64_t budget :
         {c, c + 1, c + 2, 2 * c - 1, 2 * c + 3, uint64_t{1000},
          uint64_t{999983}, c * c + c / 2}) {
      uint64_t sum = 0;
      uint64_t prev = ~uint64_t{0};
      for (int chain = 0; chain < chains; ++chain) {
        const uint64_t share = ChainBudgetShare(budget, chains, chain);
        // Shares are near-equal (differ by at most 1) and non-increasing
        // (remainder queries go to the first chains).
        EXPECT_GE(share, budget / c);
        EXPECT_LE(share, budget / c + 1);
        if (chain > 0) {
          EXPECT_LE(share, prev);
        }
        prev = share;
        sum += share;
      }
      EXPECT_EQ(sum, budget) << "chains=" << chains << " B=" << budget;
    }
  }
}

TEST(EngineTest, CancelStopsAtRoundBoundary) {
  const Graph g = KarateClub();
  EngineOptions options;
  options.chains = 2;
  options.max_steps = 100000;
  options.round_steps = 1000;
  int rounds_seen = 0;
  options.cancel = [&rounds_seen] { return rounds_seen >= 3; };
  options.on_progress = [&rounds_seen](const EngineProgress&) {
    ++rounds_seen;
  };
  EstimationEngine engine(g, EstimatorConfig{3, 1, false, false}, options);
  const EngineResult run = engine.Run();
  EXPECT_TRUE(run.cancelled);
  EXPECT_EQ(run.rounds, 3);
  EXPECT_EQ(run.steps_per_chain, 3000u);
  // A cancelled run still merges what it has.
  EXPECT_EQ(run.merged.steps, 2u * 3000u);
  EXPECT_FALSE(run.merged.concentrations.empty());
}

TEST(EngineTest, CancelBeforeFirstRoundYieldsEmptyRun) {
  const Graph g = KarateClub();
  EngineOptions options;
  options.chains = 2;
  options.max_steps = 5000;
  options.cancel = [] { return true; };
  EstimationEngine engine(g, EstimatorConfig{3, 1, false, false}, options);
  const EngineResult run = engine.Run();
  EXPECT_TRUE(run.cancelled);
  EXPECT_EQ(run.rounds, 0);
  EXPECT_EQ(run.merged.steps, 0u);
}

TEST(EngineTest, NullCancelAndFalseCancelRunToCompletion) {
  const Graph g = KarateClub();
  EngineOptions options;
  options.chains = 2;
  options.max_steps = 3000;
  options.base_seed = 77;
  EstimationEngine plain(g, EstimatorConfig{3, 1, false, false}, options);
  const EngineResult a = plain.Run();
  options.cancel = [] { return false; };
  EstimationEngine with_cancel(g, EstimatorConfig{3, 1, false, false},
                               options);
  const EngineResult b = with_cancel.Run();
  // A never-firing cancel hook must not perturb the run.
  EXPECT_FALSE(a.cancelled);
  EXPECT_FALSE(b.cancelled);
  EXPECT_EQ(a.merged.weights, b.merged.weights);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(MultiSizeEngineTest, MatchesPerSizeStructureAndDeterminism) {
  Rng rng(21);
  const Graph g = LargestConnectedComponent(HolmeKim(200, 4, 0.5, rng));
  EngineOptions options;
  options.chains = 4;
  options.max_steps = 3000;
  options.base_seed = 5;
  const MultiSizeEngineResult a =
      RunMultiSizeEngine(g, 2, {3, 4}, false, false, options);
  ASSERT_EQ(a.merged.size(), 2u);
  ASSERT_TRUE(a.merged.count(3));
  ASSERT_TRUE(a.merged.count(4));
  EXPECT_EQ(a.merged.at(3).steps, 4u * 3000u);
  // Concentrations normalized per size.
  for (int k : {3, 4}) {
    double sum = 0.0;
    for (double c : a.merged.at(k).concentrations) sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Determinism across thread counts.
  options.threads = 1;
  const MultiSizeEngineResult b =
      RunMultiSizeEngine(g, 2, {4, 3, 3}, false, false, options);
  EXPECT_EQ(a.merged.at(3).weights, b.merged.at(3).weights);
  EXPECT_EQ(a.merged.at(4).weights, b.merged.at(4).weights);
}

}  // namespace
}  // namespace grw
