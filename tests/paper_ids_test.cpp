// Tests for the paper-ID recovery (DESIGN.md Section 5).

#include "core/paper_ids.h"

#include <gtest/gtest.h>

#include <set>

#include "core/alpha.h"
#include "graphlet/catalog.h"

namespace grw {
namespace {

TEST(PaperIdsTest, OrdersAreBijections) {
  for (int k = 3; k <= 5; ++k) {
    const auto& order = PaperOrder(k);
    const int n = GraphletCatalog::ForSize(k).NumTypes();
    ASSERT_EQ(static_cast<int>(order.size()), n);
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), n);
    for (int id : order) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, n);
    }
    // Inverse is consistent.
    const auto& inverse = PaperPositionOfCatalogId(k);
    for (int pos = 0; pos < n; ++pos) {
      EXPECT_EQ(inverse[order[pos]], pos);
    }
  }
}

TEST(PaperIdsTest, KnownAnchors) {
  // Paper id 1 is always the k-path (tree with alpha_SRW1 = 2); the last
  // id is the k-clique.
  for (int k = 3; k <= 5; ++k) {
    const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
    const auto& order = PaperOrder(k);
    EXPECT_EQ(catalog.Get(order.front()).num_edges, k - 1);
    EXPECT_EQ(Alpha(catalog.Get(order.front()), 1), 2) << "k-path";
    EXPECT_EQ(catalog.Get(order.back()).num_edges, k * (k - 1) / 2)
        << "k-clique";
  }
}

TEST(PaperIdsTest, LabelsFollowPaperNotation) {
  EXPECT_EQ(PaperLabel(3, 0), "g31");
  EXPECT_EQ(PaperLabel(3, 1), "g32");
  EXPECT_EQ(PaperLabel(4, 5), "g46");
  EXPECT_EQ(PaperLabel(5, 0), "g5_1");
  EXPECT_EQ(PaperLabel(5, 20), "g5_21");
}

TEST(PaperIdsTest, FourNodeOrderMatchesFigure2) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(4);
  const auto& order = PaperOrder(4);
  EXPECT_EQ(catalog.Get(order[0]).name, "4-path");
  EXPECT_EQ(catalog.Get(order[1]).name, "3-star");
  EXPECT_EQ(catalog.Get(order[2]).name, "4-cycle");
  EXPECT_EQ(catalog.Get(order[3]).name, "tailed-triangle");
  EXPECT_EQ(catalog.Get(order[4]).name, "chordal-cycle");
  EXPECT_EQ(catalog.Get(order[5]).name, "4-clique");
}

TEST(PaperIdsTest, AlphaTablesHaveExpectedShapes) {
  EXPECT_EQ(PaperAlphaHalfTable(3).size(), 2u);
  EXPECT_EQ(PaperAlphaHalfTable(4).size(), 3u);
  EXPECT_EQ(PaperAlphaHalfTable(5).size(), 4u);
  for (const auto& row : PaperAlphaHalfTable(5)) {
    EXPECT_EQ(row.size(), 21u);
  }
}

TEST(PaperIdsTest, FiveNodeEdgeCountsAreNondecreasingInPaperOrderMostly) {
  // Sanity on the recovered 5-node order: the paper sorts its IDs roughly
  // from sparse (trees) to dense (clique); the first three are trees and
  // the last is the clique.
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(5);
  const auto& order = PaperOrder(5);
  EXPECT_EQ(catalog.Get(order[0]).num_edges, 4);
  EXPECT_EQ(catalog.Get(order[1]).num_edges, 4);
  EXPECT_EQ(catalog.Get(order[2]).num_edges, 4);
  EXPECT_EQ(catalog.Get(order[20]).num_edges, 10);
}

}  // namespace
}  // namespace grw
