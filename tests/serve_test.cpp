// Serve-layer tests: JSON round trips, strict protocol parsing (fuzz:
// truncated lines, bad fields, huge budgets — always an error response,
// never a crash), snapshot registry sharing, scheduler admission /
// tenant budgets / deadlines, and the TCP server end to end — including
// the headline contract: concurrent served estimates are bit-identical
// to a direct in-process engine run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_ids.h"
#include "engine/engine.h"
#include "graph/builder.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "util/rng.h"

namespace grw::serve {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(ServeJsonTest, EscapingCoversControlBytesAndRoundTrips) {
  const std::string nasty = std::string("a\x01\x1f\"\\\n\t\rz");
  const std::string quoted = JsonQuote(nasty);
  EXPECT_NE(quoted.find("\\u0001"), std::string::npos);
  EXPECT_NE(quoted.find("\\u001f"), std::string::npos);
  const auto parsed = ParseJson(quoted);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->type, JsonValue::Type::kString);
  EXPECT_EQ(parsed->str, nasty);
}

TEST(ServeJsonTest, NumbersRoundTripBitExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 5e-324}) {
    const std::string text = JsonNumber(v);
    const auto parsed = ParseJson(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    ASSERT_EQ(parsed->type, JsonValue::Type::kNumber);
    EXPECT_EQ(parsed->number, v) << text;
    EXPECT_EQ(parsed->raw, text);  // raw text preserved for byte echo
  }
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(ServeJsonTest, ParsesObjectsArraysAndRejectsMalformed) {
  const auto doc = ParseJson(
      R"({"ok": true, "xs": [1, 2.5, "s", null], "nested": {"k": -3}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->Find("ok")->IsTrue());
  ASSERT_EQ(doc->Find("xs")->items.size(), 4u);
  EXPECT_EQ(doc->Find("xs")->items[1].number, 2.5);
  EXPECT_EQ(doc->Find("nested")->Find("k")->number, -3.0);
  EXPECT_EQ(doc->Find("absent"), nullptr);

  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01", "1e999", "\"\\ud800\"",
        "{\"a\":1} extra", "nan", "'single'"}) {
    EXPECT_FALSE(ParseJson(bad).has_value()) << bad;
  }
  // Depth bomb: deeply nested arrays hit the cap, not the stack.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).has_value());
}

// ------------------------------------------------------------ protocol --

RequestLimits TestLimits() {
  RequestLimits limits;
  limits.max_steps = 1'000'000;
  limits.max_chains = 16;
  return limits;
}

TEST(ProtocolTest, ParsesEstimateWithCliDefaults) {
  const auto parsed =
      ParseRequestLine("ESTIMATE graph=web k=4", TestLimits());
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error;
  const EstimateRequest& req = parsed.request->estimate;
  EXPECT_EQ(req.graph, "web");
  EXPECT_EQ(req.config.k, 4);
  EXPECT_EQ(req.config.d, 2);       // k == 3 ? 1 : 2
  EXPECT_TRUE(req.config.css);      // d <= 2
  EXPECT_FALSE(req.config.nb);      // k == 3 only
  EXPECT_EQ(req.max_steps, 100000u);
  EXPECT_EQ(req.seed, 42u);
  EXPECT_EQ(req.chains, 1);
  // k=3 flips the dependent defaults exactly like the CLI.
  const auto k3 = ParseRequestLine("ESTIMATE graph=g k=3", TestLimits());
  ASSERT_TRUE(k3.request.has_value());
  EXPECT_EQ(k3.request->estimate.config.d, 1);
  EXPECT_TRUE(k3.request->estimate.config.nb);
}

TEST(ProtocolTest, ParsesFullFieldSetAndCrLf) {
  const auto parsed = ParseRequestLine(
      "ESTIMATE graph=g k=5 d=3 css=0 nb=0 steps=5000 seed=9 chains=4 "
      "target_nrmse=0.05 budget=900 cache=64 deadline_ms=250 tenant=acme\r",
      TestLimits());
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error;
  const EstimateRequest& req = parsed.request->estimate;
  EXPECT_EQ(req.config.d, 3);
  EXPECT_FALSE(req.config.css);
  EXPECT_EQ(req.max_steps, 5000u);
  EXPECT_EQ(req.chains, 4);
  EXPECT_EQ(req.target_nrmse, 0.05);
  EXPECT_TRUE(req.crawl);  // budget implies crawl
  EXPECT_EQ(req.budget_queries, 900u);
  EXPECT_EQ(req.cache_entries, 64u);
  EXPECT_EQ(req.deadline_ms, 250.0);
  EXPECT_EQ(req.tenant, "acme");
}

TEST(ProtocolTest, FuzzMalformedLinesAlwaysError) {
  const char* cases[] = {
      "",                                    // empty line
      "ESTIMATE",                            // missing fields
      "ESTIMATE graph=g",                    // missing k
      "ESTIMATE k=4",                        // missing graph
      "ESTIMATE graph=g k=",                 // truncated value
      "ESTIMATE graph=g k",                  // bare token
      "ESTIMATE graph=g k=4 bogus=1",        // unknown key
      "ESTIMATE graph=g k=99",               // k out of range
      "ESTIMATE graph=g k=4 d=9",            // d >= k
      "ESTIMATE graph=g k=4 steps=10k",      // strict int
      "ESTIMATE graph=g k=4 steps=0",        // below minimum
      "ESTIMATE graph=g k=4 steps=2000000",  // above server cap
      "ESTIMATE graph=g k=4 chains=17",      // above chain cap
      "ESTIMATE graph=g k=4 chains=0",
      "ESTIMATE graph=g k=4 target_nrmse=-1",
      "ESTIMATE graph=g k=4 target_nrmse=abc",
      "ESTIMATE graph=g k=4 deadline_ms=-5",
      "ESTIMATE graph=g k=4 budget=99999999999999999999",  // int overflow
      "ESTIMATE graph=g k=4 chains=4 budget=2",  // budget < chains
      "PING extra",                          // PING takes no fields
      "LIST x=1",
      "FROBNICATE graph=g",                  // unknown verb
      "estimate graph=g k=4",                // verbs are case-sensitive
  };
  for (const char* line : cases) {
    const auto parsed = ParseRequestLine(line, TestLimits());
    EXPECT_FALSE(parsed.request.has_value()) << line;
    EXPECT_FALSE(parsed.error.empty()) << line;
  }
}

TEST(ProtocolTest, ToEngineOptionsMirrorsCliRoundStepsPinning) {
  EstimateRequest req;
  req.graph = "g";
  req.config = EstimatorConfig{4, 2, true, false};
  req.max_steps = 100000;

  // Single chain, no target, no deadline: free-running like the CLI.
  EXPECT_EQ(ToEngineOptions(req).round_steps, 0u);
  // Multi-chain or target pins rounds exactly like CmdEstimate.
  req.chains = 4;
  EXPECT_EQ(ToEngineOptions(req).round_steps,
            EngineOptions::DefaultRoundSteps(req.max_steps));
  req.chains = 1;
  req.target_nrmse = 0.05;
  EXPECT_EQ(ToEngineOptions(req).round_steps,
            EngineOptions::DefaultRoundSteps(req.max_steps));
  // A deadline needs round boundaries for cancellation to land on.
  req.target_nrmse = 0.0;
  req.deadline_ms = 100.0;
  EXPECT_GT(ToEngineOptions(req).round_steps, 0u);
}

// ------------------------------------------------------------ registry --

TEST(RegistryTest, SharedSnapshotsReuseBackingAndUnknownIdsMiss) {
  namespace fs = std::filesystem;
  Rng rng(3);
  const Graph g = LargestConnectedComponent(HolmeKim(500, 4, 0.5, rng));
  const fs::path path = fs::temp_directory_path() / "serve_reg_test.grwb";
  SaveGraphBinary(g, path.string());

  SnapshotRegistry registry;
  registry.Register("a", path.string());
  registry.Register("b", path.string());  // same bytes, different id
  EXPECT_EQ(registry.size(), 2u);

  const auto ga = registry.Find("a");
  const auto gb = registry.Find("b");
  ASSERT_TRUE(ga.has_value());
  ASSERT_TRUE(gb.has_value());
  EXPECT_EQ(ga->NumNodes(), g.NumNodes());
  // Two ids over identical bytes share one mapping and one index.
  EXPECT_EQ(ga->RawNeighbors().data(), gb->RawNeighbors().data());
  EXPECT_EQ(ga->adjacency_index(), gb->adjacency_index());
  EXPECT_NE(ga->adjacency_index(), nullptr);

  EXPECT_FALSE(registry.Find("nope").has_value());
  const auto list = registry.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].id, "a");
  EXPECT_EQ(list[0].checksum, list[1].checksum);
  EXPECT_NE(list[0].checksum, 0u);
  fs::remove(path);
}

// ----------------------------------------------------------- scheduler --

SchedulerOptions SmallScheduler(int workers) {
  SchedulerOptions options;
  options.workers = workers;
  options.limits = TestLimits();
  return options;
}

TEST(SchedulerTest, ServesPingListEstimateAndErrors) {
  SnapshotRegistry registry;
  registry.RegisterGraph("karate", KarateClub());
  ServeScheduler scheduler(&registry, SmallScheduler(2));

  EXPECT_EQ(scheduler.HandleLine("PING"), PingResponse(TestLimits()));
  const std::string list = scheduler.HandleLine("LIST");
  EXPECT_NE(list.find("\"karate\""), std::string::npos);

  const std::string ok =
      scheduler.HandleLine("ESTIMATE graph=karate k=3 steps=2000");
  EXPECT_NE(ok.find("\"ok\": true"), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"concentrations\": ["), std::string::npos);

  const std::string unknown =
      scheduler.HandleLine("ESTIMATE graph=ghost k=3");
  EXPECT_NE(unknown.find("unknown graph 'ghost'"), std::string::npos);
  const std::string bad = scheduler.HandleLine("ESTIMATE graph=karate k=9");
  EXPECT_NE(bad.find("\"ok\": false"), std::string::npos);

  const ServeScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.errors, 2u);
}

TEST(SchedulerTest, TenantBudgetExhaustsAcrossRequests) {
  SnapshotRegistry registry;
  Rng rng(5);
  registry.RegisterGraph(
      "g", LargestConnectedComponent(HolmeKim(300, 4, 0.5, rng)));
  SchedulerOptions options = SmallScheduler(1);
  options.tenant_budget = 120;
  ServeScheduler scheduler(&registry, options);

  // Burn the allowance: each request walks far enough to touch well over
  // 120 distinct vertices, so one or two requests exhaust the tenant.
  int served = 0;
  std::string last;
  for (int i = 0; i < 8; ++i) {
    last = scheduler.HandleLine(
        "ESTIMATE graph=g k=3 steps=20000 tenant=acme");
    if (last.find("\"ok\": true") != std::string::npos) {
      ++served;
      continue;
    }
    break;
  }
  EXPECT_GE(served, 1);
  EXPECT_NE(last.find("tenant 'acme': distinct-query budget exhausted"),
            std::string::npos)
      << last;
  // Another tenant is unaffected.
  const std::string other = scheduler.HandleLine(
      "ESTIMATE graph=g k=3 steps=2000 tenant=other");
  EXPECT_NE(other.find("\"ok\": true"), std::string::npos) << other;
  // Anonymous requests bypass tenant accounting entirely.
  const std::string anon =
      scheduler.HandleLine("ESTIMATE graph=g k=3 steps=2000");
  EXPECT_NE(anon.find("\"ok\": true"), std::string::npos);
}

TEST(SchedulerTest, DeadlineCancelsLongRun) {
  SnapshotRegistry registry;
  Rng rng(9);
  registry.RegisterGraph(
      "g", LargestConnectedComponent(HolmeKim(2000, 4, 0.5, rng)));
  ServeScheduler scheduler(&registry, SmallScheduler(1));
  // A million-step 5-node run takes far longer than 1ms; the deadline
  // must cancel it at a round boundary with a diagnostic.
  const std::string response = scheduler.HandleLine(
      "ESTIMATE graph=g k=5 steps=1000000 deadline_ms=1");
  EXPECT_NE(response.find("deadline exceeded"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"ok\": false"), std::string::npos);
}

TEST(SchedulerTest, DrainRefusesNewWorkAndIsIdempotent) {
  SnapshotRegistry registry;
  registry.RegisterGraph("karate", KarateClub());
  ServeScheduler scheduler(&registry, SmallScheduler(2));
  EXPECT_NE(scheduler.HandleLine("ESTIMATE graph=karate k=3 steps=1000")
                .find("\"ok\": true"),
            std::string::npos);
  scheduler.Drain();
  scheduler.Drain();  // idempotent
  const std::string after =
      scheduler.HandleLine("ESTIMATE graph=karate k=3 steps=1000");
  EXPECT_NE(after.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(after.find("server draining"), std::string::npos) << after;
}

// ------------------------------------------------------------- end-to-end --

class ServeEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(17);
    fixture_ = LargestConnectedComponent(HolmeKim(800, 4, 0.5, rng));
    fixture_.BuildAdjacencyIndex();
    registry_.RegisterGraph("fix", fixture_);
    ServerOptions options;
    options.port = 0;
    options.scheduler.workers = 4;
    server_ = std::make_unique<ServeServer>(&registry_, options);
    server_->Start();
  }

  Graph fixture_;
  SnapshotRegistry registry_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServeEndToEndTest, EightConcurrentClientsBitIdenticalToDirectRun) {
  const std::string line = "ESTIMATE graph=fix k=4 steps=20000 chains=2";
  // The reference: a direct engine run through the same request mapping.
  const auto parsed = ParseRequestLine(line, RequestLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  const EstimateRequest& req = parsed.request->estimate;
  EstimationEngine engine(fixture_, req.config, ToEngineOptions(req));
  const EngineResult direct = engine.Run();
  std::vector<std::string> expected;
  for (const int id : PaperOrder(4)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g",
                  direct.merged.concentrations[id]);
    expected.emplace_back(buf);
  }

  constexpr int kClients = 8;
  std::atomic<int> matches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      QueryClient client("127.0.0.1", server_->port());
      for (int r = 0; r < 3; ++r) {
        const auto json = ParseJson(client.RoundTrip(line));
        ASSERT_TRUE(json.has_value());
        ASSERT_TRUE(json->Find("ok")->IsTrue());
        const JsonValue* conc = json->Find("concentrations");
        ASSERT_NE(conc, nullptr);
        ASSERT_EQ(conc->items.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          // Byte-for-byte: the served wire text equals the direct run's
          // %.17g formatting — not just approximately equal.
          ASSERT_EQ(conc->items[i].raw, expected[i]);
        }
        matches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(matches.load(), kClients * 3);
}

TEST_F(ServeEndToEndTest, MalformedLinesGetErrorsAndConnectionSurvives) {
  QueryClient client("127.0.0.1", server_->port());
  const char* garbage[] = {
      "ESTIMATE graph=fix k=banana",
      "\x01\x02\x03 binary noise",
      "ESTIMATE graph=fix k=4 steps=99999999999999999999",
      "LIST LIST LIST",
  };
  for (const char* line : garbage) {
    const auto json = ParseJson(client.RoundTrip(line));
    ASSERT_TRUE(json.has_value()) << line;
    EXPECT_FALSE(json->Find("ok")->IsTrue()) << line;
  }
  // After all that abuse the same connection still serves real work.
  const auto ok =
      ParseJson(client.RoundTrip("ESTIMATE graph=fix k=3 steps=2000"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->Find("ok")->IsTrue());
}

TEST_F(ServeEndToEndTest, StopDrainsGracefullyWithClientsConnected) {
  QueryClient client("127.0.0.1", server_->port());
  const auto before =
      ParseJson(client.RoundTrip("ESTIMATE graph=fix k=3 steps=2000"));
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(before->Find("ok")->IsTrue());
  server_->Stop();  // must not hang despite the open connection
  EXPECT_FALSE(server_->running());
  const ServeScheduler::Stats stats = server_->stats();
  EXPECT_GE(stats.completed, 1u);
}

}  // namespace
}  // namespace grw::serve
