// Property-based sweeps across graph families and estimator settings:
// invariants that must hold for every (family, seed, config) combination.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/alpha.h"
#include "core/css.h"
#include "core/estimator.h"
#include "core/rsize.h"
#include "exact/esu.h"
#include "exact/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "graphlet/classifier.h"
#include "graphlet/noninduced.h"
#include "util/rng.h"
#include "walk/subgraph_walk.h"

namespace grw {
namespace {

// ---------------------------------------------------------------------
// Graph-family parameterization.

enum class Family { kErdosRenyi, kBarabasiAlbert, kHolmeKim, kWattsStrogatz };

struct FamilyCase {
  Family family;
  uint64_t seed;
};

Graph MakeFamilyGraph(const FamilyCase& c, VertexId n) {
  Rng rng(c.seed);
  Graph g;
  switch (c.family) {
    case Family::kErdosRenyi:
      g = ErdosRenyi(n, 3 * static_cast<uint64_t>(n), rng);
      break;
    case Family::kBarabasiAlbert:
      g = BarabasiAlbert(n, 3, rng);
      break;
    case Family::kHolmeKim:
      g = HolmeKim(n, 3, 0.6, rng);
      break;
    case Family::kWattsStrogatz:
      g = WattsStrogatz(n, 3, 0.15, rng);
      break;
  }
  return LargestConnectedComponent(g);
}

std::string FamilyName(const ::testing::TestParamInfo<FamilyCase>& info) {
  const char* name = info.param.family == Family::kErdosRenyi ? "ER"
                     : info.param.family == Family::kBarabasiAlbert
                         ? "BA"
                     : info.param.family == Family::kHolmeKim ? "HK"
                                                              : "WS";
  return std::string(name) + "_seed" + std::to_string(info.param.seed);
}

class FamilyProperty : public ::testing::TestWithParam<FamilyCase> {};

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyProperty,
    ::testing::Values(FamilyCase{Family::kErdosRenyi, 1},
                      FamilyCase{Family::kErdosRenyi, 2},
                      FamilyCase{Family::kBarabasiAlbert, 1},
                      FamilyCase{Family::kBarabasiAlbert, 2},
                      FamilyCase{Family::kHolmeKim, 1},
                      FamilyCase{Family::kHolmeKim, 2},
                      FamilyCase{Family::kWattsStrogatz, 1}),
    FamilyName);

TEST_P(FamilyProperty, FourNodeFormulasMatchEnumeration) {
  const Graph g = MakeFamilyGraph(GetParam(), 70);
  EXPECT_EQ(ExactGraphletCounts(g, 4), CountGraphletsEsu(g, 4));
}

TEST_P(FamilyProperty, EstimatorConcentrationsSumToOne) {
  const Graph g = MakeFamilyGraph(GetParam(), 120);
  for (const EstimatorConfig& config :
       {EstimatorConfig{3, 1, true, true}, EstimatorConfig{4, 2, true, false},
        EstimatorConfig{5, 2, false, false}}) {
    const auto result = GraphletEstimator::Estimate(g, config, 4000, 9);
    double sum = 0.0;
    for (double c : result.concentrations) {
      EXPECT_GE(c, 0.0);
      sum += c;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << config.Name();
    EXPECT_EQ(result.steps, 4000u);
  }
}

TEST_P(FamilyProperty, WindowUnionNeverExceedsK) {
  // Structural invariant behind the sample window: any l consecutive
  // states of a walk on G(d) cover at most d + l - 1 distinct vertices.
  const Graph g = MakeFamilyGraph(GetParam(), 100);
  Rng rng(GetParam().seed);
  SubgraphWalk walk(g, 3);
  walk.Reset(rng);
  std::vector<VertexId> window[3];
  for (int s = 0; s < 2000; ++s) {
    walk.Step(rng);
    window[s % 3].assign(walk.Nodes().begin(), walk.Nodes().end());
    if (s >= 2) {
      std::vector<VertexId> all;
      for (const auto& w : window) all.insert(all.end(), w.begin(), w.end());
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      EXPECT_LE(all.size(), 5u);  // d + l - 1 = 3 + 2
    }
  }
}

TEST_P(FamilyProperty, RelationshipGraphHandshake) {
  // |R(3)| from degree sums must equal the pair-counting definition on
  // small graphs.
  const Graph g = MakeFamilyGraph(GetParam(), 24);
  uint64_t pairs = 0;
  std::vector<std::vector<VertexId>> states;
  ForEachConnectedSubgraph(g, 3, [&](std::span<const VertexId> nodes) {
    std::vector<VertexId> sorted(nodes.begin(), nodes.end());
    std::sort(sorted.begin(), sorted.end());
    states.push_back(std::move(sorted));
  });
  for (size_t i = 0; i < states.size(); ++i) {
    for (size_t j = i + 1; j < states.size(); ++j) {
      std::vector<VertexId> shared;
      std::set_intersection(states[i].begin(), states[i].end(),
                            states[j].begin(), states[j].end(),
                            std::back_inserter(shared));
      if (shared.size() == 2) ++pairs;
    }
  }
  EXPECT_EQ(RelationshipEdgeCount(g, 3), pairs);
}

// ---------------------------------------------------------------------
// Alpha/CSS invariants swept over every graphlet.

class GraphletSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, GraphletSweep, ::testing::Values(3, 4, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST_P(GraphletSweep, AlphaIsEvenAndMonotoneUnderEdgeAddition) {
  // alpha counts ordered sequences; reversal pairs them, so alpha is even.
  const int k = GetParam();
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  for (int d = 1; d < k; ++d) {
    for (int id = 0; id < catalog.NumTypes(); ++id) {
      const int64_t a = Alpha(catalog.Get(id), d);
      EXPECT_EQ(a % 2, 0) << "k=" << k << " d=" << d << " id=" << id;
      EXPECT_GE(a, 0);
    }
    // The clique maximizes alpha for every d (its relationship graph is
    // the densest).
    int64_t clique_alpha = Alpha(catalog.Get(catalog.NumTypes() - 1), d);
    for (int id = 0; id < catalog.NumTypes(); ++id) {
      EXPECT_LE(Alpha(catalog.Get(id), d), clique_alpha);
    }
  }
}

TEST_P(GraphletSweep, PsrwAlphaNeverZero) {
  // For d = k-1 every graphlet is observable: removing one vertex from a
  // connected graph always leaves at least one connected (k-1)-subset,
  // hence |S| >= 2 and alpha > 0.
  const int k = GetParam();
  if (k == 3) return;  // d = 2 = k-1 covered below anyway
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    EXPECT_GT(Alpha(catalog.Get(id), k - 1), 0) << "id=" << id;
  }
}

TEST_P(GraphletSweep, Srw2SeesEverything) {
  // Edge walks observe every graphlet type (every connected graph has a
  // spanning walk of edges adding one vertex at a time).
  const int k = GetParam();
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  if (k < 3) return;
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    EXPECT_GT(Alpha(catalog.Get(id), std::min(2, k - 1)), 0) << "id=" << id;
  }
}

TEST_P(GraphletSweep, CssEntriesInteriorsAreValidStates) {
  const int k = GetParam();
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
  for (int d = 1; d <= 2 && d < k; ++d) {
    const CssTable& table = CssTable::For(k, d);
    const int l = k - d + 1;
    for (int id = 0; id < catalog.NumTypes(); ++id) {
      for (const CssEntry& entry : table.Entries(id)) {
        EXPECT_EQ(entry.num_interior, std::max(0, l - 2));
        for (int t = 0; t < entry.num_interior; ++t) {
          EXPECT_EQ(std::popcount(static_cast<unsigned>(entry.interior[t])),
                    d);
        }
        EXPECT_GT(entry.count, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Lemma 5 (CSS variance reduction), checked empirically: the spread of
// CSS estimates across chains is no larger than the base estimator's.

TEST(CssVarianceTest, CssReducesSpreadOnCliqueConcentration) {
  Rng rng(77);
  const Graph g = LargestConnectedComponent(HolmeKim(600, 5, 0.5, rng));
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  const int clique = c4.IdByName("4-clique");
  auto spread = [&](bool css) {
    std::vector<double> estimates;
    EstimatorConfig config{4, 2, css, false};
    for (int c = 0; c < 30; ++c) {
      estimates.push_back(GraphletEstimator::Estimate(g, config, 5000,
                                                      4000 + c)
                              .concentrations[clique]);
    }
    double mean = 0.0;
    for (double e : estimates) mean += e / estimates.size();
    double var = 0.0;
    for (double e : estimates) var += (e - mean) * (e - mean);
    return var / estimates.size();
  };
  // Allow slack: Lemma 5 is exact for independent samples; chains are
  // correlated, so require "not much worse" and expect clear improvement.
  EXPECT_LT(spread(true), spread(false) * 1.05);
}

}  // namespace
}  // namespace grw
