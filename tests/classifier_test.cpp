// Tests for the O(1) bitmask classifier, including the degree-signature
// ambiguity of 5-node graphlets that motivates exact classification.

#include "graphlet/classifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>

#include "graphlet/catalog.h"

namespace grw {
namespace {

TEST(ClassifierTest, EveryConnectedMaskGetsItsCatalogId) {
  for (int k = 3; k <= 5; ++k) {
    const GraphletClassifier& classifier = GraphletClassifier::ForSize(k);
    const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
    const uint32_t num_masks = 1u << NumPairBits(k);
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      const int expected =
          MaskIsConnected(mask, k) ? catalog.Classify(mask) : -1;
      EXPECT_EQ(classifier.Type(mask), expected) << "k=" << k;
    }
  }
}

TEST(ClassifierTest, PermutationsMapMaskToCanonicalForm) {
  for (int k = 3; k <= 5; ++k) {
    const GraphletClassifier& classifier = GraphletClassifier::ForSize(k);
    const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
    const uint32_t num_masks = 1u << NumPairBits(k);
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      const MaskInfo& info = classifier.Info(mask);
      if (info.type < 0) continue;
      // Applying the stored permutation must produce the canonical mask.
      int perm[kMaxGraphletSize];
      for (int i = 0; i < k; ++i) perm[i] = info.canonical_label_of[i];
      EXPECT_EQ(ApplyPermutation(mask, k, perm),
                catalog.Get(info.type).canonical_mask);
      // position_of must invert canonical_label_of.
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(info.position_of[info.canonical_label_of[i]], i);
      }
    }
  }
}

TEST(ClassifierTest, DegreeSignatureAloneIsAmbiguousForFiveNodes) {
  // Documents why we classify by full mask: at k = 5 there exist
  // non-isomorphic graphlets with identical sorted degree sequences (the
  // paper's cited degree-signature method needs extra care there).
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(5);
  std::map<std::array<int, 5>, int> signature_count;
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    std::array<int, 5> signature;
    for (int v = 0; v < 5; ++v) signature[v] = catalog.Get(id).degree[v];
    std::sort(signature.begin(), signature.end());
    signature_count[signature]++;
  }
  int collisions = 0;
  for (const auto& [sig, count] : signature_count) {
    if (count > 1) collisions += count;
  }
  EXPECT_GT(collisions, 0)
      << "expected at least one degree-sequence collision at k=5";
  // But no collisions exist at k = 3, 4 (why degree signatures suffice
  // there).
  for (int k = 3; k <= 4; ++k) {
    const GraphletCatalog& c = GraphletCatalog::ForSize(k);
    std::map<std::vector<int>, int> sigs;
    for (int id = 0; id < c.NumTypes(); ++id) {
      std::vector<int> s(c.Get(id).degree.begin(),
                         c.Get(id).degree.begin() + k);
      std::sort(s.begin(), s.end());
      sigs[s]++;
    }
    for (const auto& [sig, count] : sigs) EXPECT_EQ(count, 1) << "k=" << k;
  }
}

TEST(ClassifierTest, SpecificShapes) {
  const GraphletClassifier& classifier = GraphletClassifier::ForSize(4);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(4);
  EXPECT_EQ(classifier.Type(MaskFromEdges(4, {{3, 1}, {1, 0}, {0, 2}})),
            catalog.IdByName("4-path"));
  EXPECT_EQ(classifier.Type(MaskFromEdges(4, {{2, 0}, {2, 1}, {2, 3}})),
            catalog.IdByName("3-star"));
  EXPECT_EQ(classifier.Type(
                MaskFromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})),
            catalog.IdByName("chordal-cycle"));
}

}  // namespace
}  // namespace grw
