// Build-seam smoke tests: the cross-layer contracts the CMake wiring
// depends on — paper-style method naming from EstimatorConfig, the
// d = k-1 (PSRW) end of the walk family constructing and running end to
// end, config validation, and the Threads::Threads link through
// util/parallel.h driving multi-chain estimation.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/estimator.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace grw {
namespace {

Graph SmallGraph() {
  Rng rng(7);
  return LargestConnectedComponent(HolmeKim(120, 3, 0.5, rng));
}

TEST(BuildSmokeTest, MethodNamingMatchesPaperConventions) {
  // The naming contract documented in core/estimator.h.
  EXPECT_EQ((EstimatorConfig{.k = 3, .d = 1}.Name()), "SRW1");
  EXPECT_EQ((EstimatorConfig{.k = 4, .d = 2, .css = true}.Name()),
            "SRW2CSS");
  EXPECT_EQ(
      (EstimatorConfig{.k = 3, .d = 1, .css = true, .nb = true}.Name()),
      "SRW1CSSNB");
  // PSRW is not a separate code path: it is the d = k-1 member of the
  // family, named SRW(k-1).
  EXPECT_EQ((EstimatorConfig{.k = 4, .d = 3}.Name()), "SRW3");
  EXPECT_EQ((EstimatorConfig{.k = 5, .d = 4}.Name()), "SRW4");
}

TEST(BuildSmokeTest, PsrwConfigRunsEndToEnd) {
  const Graph g = SmallGraph();
  const EstimatorConfig psrw{.k = 4, .d = 3};  // PSRW for 4-node graphlets
  const auto result = GraphletEstimator::Estimate(g, psrw, 2000, 42);
  EXPECT_EQ(result.steps, 2000u);
  EXPECT_GT(result.valid_samples, 0u);
  double sum = 0.0;
  for (double c : result.concentrations) sum += c;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BuildSmokeTest, InvalidConfigsAreRejected) {
  const Graph g = SmallGraph();
  EXPECT_THROW(GraphletEstimator(g, EstimatorConfig{.k = 4, .d = 4}),
               std::invalid_argument);  // d must be < k
  EXPECT_THROW(GraphletEstimator(g, EstimatorConfig{.k = 2, .d = 1}),
               std::invalid_argument);  // k out of range
}

TEST(BuildSmokeTest, ParallelForDrivesIndependentChains) {
  // The experiment runner's fan-out pattern in miniature: R chains across
  // std::threads, deterministic per-chain seeds, identical to serial.
  const Graph g = SmallGraph();
  const EstimatorConfig config{.k = 4, .d = 2, .css = true};
  constexpr size_t kChains = 8;
  constexpr uint64_t kSteps = 3000;

  std::vector<double> parallel_first(kChains, 0.0);
  std::atomic<size_t> ran{0};
  ParallelFor(kChains, [&](size_t c) {
    const auto r = GraphletEstimator::Estimate(g, config, kSteps, 100 + c);
    parallel_first[c] = r.concentrations[0];
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), kChains);

  for (size_t c = 0; c < kChains; ++c) {
    const auto r = GraphletEstimator::Estimate(g, config, kSteps, 100 + c);
    EXPECT_DOUBLE_EQ(parallel_first[c], r.concentrations[0]) << "chain " << c;
  }
}

}  // namespace
}  // namespace grw
