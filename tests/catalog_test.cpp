// Tests for the graphlet catalog: counts, canonicalization, naming.

#include "graphlet/catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>
#include <set>

namespace grw {
namespace {

TEST(CatalogTest, GraphletCountsMatchKnownSequence) {
  // Connected non-isomorphic graphs on k nodes (paper Section 2.1 quotes
  // 2, 6, 21, 112 for k = 3..6).
  EXPECT_EQ(GraphletCatalog::ForSize(2).NumTypes(), 1);
  EXPECT_EQ(GraphletCatalog::ForSize(3).NumTypes(), 2);
  EXPECT_EQ(GraphletCatalog::ForSize(4).NumTypes(), 6);
  EXPECT_EQ(GraphletCatalog::ForSize(5).NumTypes(), 21);
  EXPECT_EQ(GraphletCatalog::ForSize(6).NumTypes(), 112);
}

TEST(CatalogTest, PairIndexLayout) {
  // Pairs are packed (0,1),(0,2),...,(k-2,k-1).
  EXPECT_EQ(PairIndex(4, 0, 1), 0);
  EXPECT_EQ(PairIndex(4, 0, 3), 2);
  EXPECT_EQ(PairIndex(4, 1, 2), 3);
  EXPECT_EQ(PairIndex(4, 2, 3), 5);
  EXPECT_EQ(PairIndex(5, 3, 4), NumPairBits(5) - 1);
}

TEST(CatalogTest, MaskConnectivity) {
  // Triangle is connected, single edge + isolated vertex is not.
  const uint32_t triangle = MaskFromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(MaskIsConnected(triangle, 3));
  const uint32_t edge_plus_isolated = MaskFromEdges(3, {{0, 1}});
  EXPECT_FALSE(MaskIsConnected(edge_plus_isolated, 3));
  EXPECT_FALSE(MaskIsConnected(0, 2));
  EXPECT_TRUE(MaskIsConnected(0, 1));
}

TEST(CatalogTest, CanonicalMaskIsPermutationInvariant) {
  // Relabeling a path 0-1-2-3 arbitrarily yields the same canonical mask.
  const uint32_t path = MaskFromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  int perm[4] = {2, 0, 3, 1};
  const uint32_t relabeled = ApplyPermutation(path, 4, perm);
  EXPECT_NE(path, relabeled);
  EXPECT_EQ(CanonicalMask(path, 4), CanonicalMask(relabeled, 4));
}

TEST(CatalogTest, CanonicalPermutationMapsToCanonicalForm) {
  const uint32_t star = MaskFromEdges(4, {{2, 0}, {2, 1}, {2, 3}});
  int perm[4];
  const uint32_t canon = CanonicalMask(star, 4, perm);
  EXPECT_EQ(ApplyPermutation(star, 4, perm), canon);
}

TEST(CatalogTest, NamesForThreeAndFourNodeGraphlets) {
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  EXPECT_GE(c3.IdByName("wedge"), 0);
  EXPECT_GE(c3.IdByName("triangle"), 0);
  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  for (const char* name : {"4-path", "3-star", "4-cycle", "tailed-triangle",
                           "chordal-cycle", "4-clique"}) {
    EXPECT_GE(c4.IdByName(name), 0) << name;
  }
  EXPECT_EQ(c4.IdByName("no-such-graphlet"), -1);
}

TEST(CatalogTest, EdgeCountsAreOrderedAndStructuresConsistent) {
  for (int k = 3; k <= 5; ++k) {
    const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
    int prev_edges = 0;
    std::set<uint32_t> seen_masks;
    for (int id = 0; id < catalog.NumTypes(); ++id) {
      const Graphlet& g = catalog.Get(id);
      EXPECT_GE(g.num_edges, prev_edges);
      prev_edges = g.num_edges;
      EXPECT_EQ(g.num_edges, std::popcount(g.canonical_mask));
      EXPECT_EQ(static_cast<int>(g.edges.size()), g.num_edges);
      EXPECT_TRUE(seen_masks.insert(g.canonical_mask).second);
      EXPECT_EQ(CanonicalMask(g.canonical_mask, k), g.canonical_mask)
          << "stored mask must already be canonical";
      // Degree sum = 2 * edges; min graphlet degree >= 1 (connected).
      int deg_sum = 0;
      for (int v = 0; v < k; ++v) {
        EXPECT_GE(g.degree[v], 1);
        deg_sum += g.degree[v];
      }
      EXPECT_EQ(deg_sum, 2 * g.num_edges);
    }
    // Sparsest is the tree with k-1 edges, densest the clique.
    EXPECT_EQ(catalog.Get(0).num_edges, k - 1);
    EXPECT_EQ(catalog.Get(catalog.NumTypes() - 1).num_edges,
              k * (k - 1) / 2);
  }
}

TEST(CatalogTest, ClassifyAgreesWithCanonicalLookup) {
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(4);
  const uint32_t cycle_relabelled =
      MaskFromEdges(4, {{0, 2}, {2, 1}, {1, 3}, {3, 0}});
  EXPECT_EQ(catalog.Classify(cycle_relabelled),
            catalog.IdByName("4-cycle"));
  EXPECT_EQ(catalog.Classify(MaskFromEdges(4, {{0, 1}})), -1);
}

}  // namespace
}  // namespace grw
