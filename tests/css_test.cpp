// Tests for CSS weighting: compiled tables vs direct Algorithm-3
// evaluation, and the closed forms of paper Table 4.

#include "core/css.h"

#include <gtest/gtest.h>

#include <array>

#include "core/alpha.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "graphlet/classifier.h"
#include "util/rng.h"
#include "walk/subgraph_walk.h"

namespace grw {
namespace {

// Builds the MaskInfo for an explicit node tuple in a graph.
const MaskInfo& InfoFor(const Graph& g, std::span<const VertexId> nodes,
                        int k) {
  uint32_t mask = 0;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (g.HasEdge(nodes[i], nodes[j])) mask = MaskWithEdge(mask, k, i, j);
    }
  }
  return GraphletClassifier::ForSize(k).Info(mask);
}

// G(d) degree probe for d = 1 and d = 2 closed forms.
uint64_t ClosedFormStateDegree(const Graph& g,
                               std::span<const VertexId> state) {
  if (state.size() == 1) return g.Degree(state[0]);
  if (state.size() == 2) {
    return static_cast<uint64_t>(g.Degree(state[0])) + g.Degree(state[1]) -
           2;
  }
  return SubgraphStateDegree(g, state);
}

TEST(CssTest, TriangleClosedFormTable4Srw1) {
  // Paper Table 4: for g32 under SRW1, 2|R| * p / 2 = 1/d1 + 1/d2 + 1/d3.
  // Build a graph where a triangle's corners have distinct degrees.
  Rng rng(17);
  const Graph g = LargestConnectedComponent(HolmeKim(64, 3, 0.8, rng));
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  const CssTable& table = CssTable::For(3, 1);
  bool found = false;
  for (VertexId u = 0; u < g.NumNodes() && !found; ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (v <= u) continue;
      for (VertexId w : g.Neighbors(v)) {
        if (w <= v || !g.HasEdge(u, w)) continue;
        const std::array<VertexId, 3> nodes = {u, v, w};
        const MaskInfo& info = InfoFor(g, nodes, 3);
        ASSERT_EQ(info.type, c3.IdByName("triangle"));
        const double expected = 2.0 * (1.0 / g.Degree(u) +
                                       1.0 / g.Degree(v) +
                                       1.0 / g.Degree(w));
        EXPECT_NEAR(table.Eval(info, nodes, g, false), expected, 1e-12);
        found = true;
        break;
      }
      if (found) break;
    }
  }
  ASSERT_TRUE(found) << "test graph has no triangle";
}

TEST(CssTest, WedgeClosedFormTable4Srw1) {
  // Paper Table 4: for g31 under SRW1, 2|R| * p / 2 = 1/d2 (center node).
  const Graph g = Star(5);  // center 0 with degree 4, leaves degree 1
  const std::array<VertexId, 3> nodes = {1, 0, 2};  // wedge 1-0-2
  const MaskInfo& info = InfoFor(g, nodes, 3);
  const CssTable& table = CssTable::For(3, 1);
  EXPECT_NEAR(table.Eval(info, nodes, g, false), 2.0 * (1.0 / 4.0), 1e-12);
}

TEST(CssTest, FourCliqueClosedFormTable4Srw2) {
  // Paper Table 4: for g46 under SRW2, 2|R| * p / 2 = 4 * sum_e 1/d_e.
  const Graph g = Complete(5);  // all K4s inside K5; edge degree = 4+4-2
  const std::array<VertexId, 4> nodes = {0, 1, 2, 3};
  const MaskInfo& info = InfoFor(g, nodes, 4);
  const CssTable& table = CssTable::For(4, 2);
  const double de = 6.0;  // every edge state has degree 4 + 4 - 2 = 6
  // Table 4 lists 2|R| p / 2 = 4 * sum over the 6 edges of 1/d_e.
  EXPECT_NEAR(table.Eval(info, nodes, g, false), 2.0 * 4.0 * (6.0 / de),
              1e-12);
}

TEST(CssTest, TableMatchesDirectEvaluationRandomSamples) {
  Rng rng(41);
  const Graph g = LargestConnectedComponent(HolmeKim(120, 4, 0.6, rng));
  const auto probe = [&g](std::span<const VertexId> state) {
    return ClosedFormStateDegree(g, state);
  };
  // Sample random connected k-sets via short walks and compare the
  // compiled table against direct enumeration for d = 1, 2.
  for (int k = 3; k <= 5; ++k) {
    for (int d = 1; d <= 2; ++d) {
      const CssTable& table = CssTable::For(k, d);
      int checked = 0;
      for (int attempt = 0; attempt < 400 && checked < 60; ++attempt) {
        // Random connected k-set: grow from a random node.
        std::vector<VertexId> nodes = {
            static_cast<VertexId>(rng.UniformInt(g.NumNodes()))};
        while (static_cast<int>(nodes.size()) < k) {
          const VertexId anchor = nodes[rng.UniformInt(nodes.size())];
          const VertexId w = g.Neighbor(
              anchor,
              static_cast<uint32_t>(rng.UniformInt(g.Degree(anchor))));
          if (std::find(nodes.begin(), nodes.end(), w) == nodes.end()) {
            nodes.push_back(w);
          }
        }
        const MaskInfo& info = InfoFor(g, nodes, k);
        ASSERT_GE(info.type, 0);
        const double from_table = table.Eval(info, nodes, g, false);
        const double direct = CssWeightDirect(k, d, info, nodes, probe,
                                              false);
        EXPECT_NEAR(from_table, direct, 1e-9 * (1.0 + direct))
            << "k=" << k << " d=" << d;
        // Non-backtracking variant too.
        EXPECT_NEAR(table.Eval(info, nodes, g, true),
                    CssWeightDirect(k, d, info, nodes, probe, true),
                    1e-9)
            << "k=" << k << " d=" << d << " (nb)";
        ++checked;
      }
      EXPECT_GE(checked, 30) << "k=" << k << " d=" << d;
    }
  }
}

TEST(CssTest, EntryCountsSumToAlpha) {
  // Summing the group counts over all entries recovers alpha (every
  // corresponding sequence is in exactly one interior group).
  for (int k = 3; k <= 5; ++k) {
    for (int d = 1; d <= 2; ++d) {
      const CssTable& table = CssTable::For(k, d);
      const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
      for (int id = 0; id < catalog.NumTypes(); ++id) {
        int64_t total = 0;
        for (const CssEntry& entry : table.Entries(id)) {
          total += entry.count;
        }
        EXPECT_EQ(total, Alpha(catalog.Get(id), d))
            << "k=" << k << " d=" << d << " id=" << id;
      }
    }
  }
}

TEST(CssTest, PsrwDegenerateCaseEqualsAlpha) {
  // For l = 2 (d = k-1) there are no interior states: p equals alpha and
  // CSS coincides with the base estimator, matching the paper's footnote
  // that CSS requires l > 2.
  const Graph g = Complete(5);
  const std::array<VertexId, 3> nodes = {0, 1, 2};
  const MaskInfo& info = InfoFor(g, nodes, 3);
  const CssTable& table = CssTable::For(3, 2);
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  EXPECT_DOUBLE_EQ(table.Eval(info, nodes, g, false),
                   static_cast<double>(
                       Alpha(c3.Get(c3.IdByName("triangle")), 2)));
}

}  // namespace
}  // namespace grw
