// Tests that LoadEdgeList reports malformed input loudly — path, 1-based
// line number, and the offending line — instead of silently dropping lines
// or feeding wrapped strtoull output into the builder.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "graph/io.h"

namespace grw {
namespace {

class LoaderErrorTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  void WriteFile(const std::string& content) {
    path_ = (std::filesystem::temp_directory_path() / "grw_loader_error.txt")
                .string();
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
              content.size());
    std::fclose(f);
  }

  // Loads and returns the thrown message (fails the test if no throw).
  std::string LoadExpectingError(const std::string& content) {
    WriteFile(content);
    try {
      (void)LoadEdgeList(path_, /*largest_cc=*/false);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    ADD_FAILURE() << "LoadEdgeList accepted malformed input: " << content;
    return "";
  }

  std::string path_;
};

TEST_F(LoaderErrorTest, OverflowingIdReportsPathAndLine) {
  const std::string msg =
      LoadExpectingError("1 2\n2 3\n99999999999999999999999999 4\n");
  EXPECT_NE(msg.find(path_), std::string::npos) << msg;
  EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("overflow"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, NegativeIdRejected) {
  // strtoull would silently wrap "-5" to 2^64-5; that id must not reach
  // the builder.
  const std::string msg = LoadExpectingError("1 2\n-5 3\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("sign"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, SignHiddenBehindOddWhitespaceRejected) {
  // strtoull's own whitespace skip covers \v and \f; a sign hiding behind
  // them must still be caught, not silently wrapped.
  const std::string msg = LoadExpectingError("1 2\n1 \v-2\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("sign"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, NonNumericLineRejected) {
  const std::string msg = LoadExpectingError("1 2\nfoo bar\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("foo bar"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, MissingSecondIdRejected) {
  const std::string msg = LoadExpectingError("1 2\n7\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, TrailingGarbageRejected) {
  const std::string msg = LoadExpectingError("1 2\n2 3 oops\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("trailing"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, GarbageGluedToIdRejected) {
  const std::string msg = LoadExpectingError("1 2\n2 3x\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, ErrorOnFinalLineWithoutNewline) {
  const std::string msg = LoadExpectingError("1 2\n2 3\nbad line");
  EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
}

TEST_F(LoaderErrorTest, CleanInputStillLoads) {
  // Comments, blank lines, CRLF endings, tabs, and multiple spaces are all
  // legitimate SNAP-file variation and must keep parsing.
  WriteFile("# comment\n% comment\n\n1 2\r\n2\t3\n3   4\n4 1");
  const Graph g = LoadEdgeList(path_, /*largest_cc=*/false);
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
}

TEST_F(LoaderErrorTest, LineNumbersCountCommentsAndBlanks) {
  const std::string msg =
      LoadExpectingError("# header\n\n1 2\n# mid comment\nbroken\n");
  EXPECT_NE(msg.find(":5:"), std::string::npos) << msg;
}

}  // namespace
}  // namespace grw
