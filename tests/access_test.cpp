// Tests for the graph access layer (graph/access.h): the RestrictedAccess
// crawling facade's distinct-vs-raw query accounting (the paper's cost
// model charges only distinct neighbor-list fetches) and the CrawlAccess
// policy — LRU eviction order, hit/miss accounting under adversarial
// revisit patterns, latency accumulation, and budget exhaustion.

#include "graph/access.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(RestrictedAccessTest, CountsEveryKindOfCall) {
  const Graph g = KarateClub();
  RestrictedAccess api(g);
  EXPECT_EQ(api.RawQueryCount(), 0u);
  (void)api.Degree(0);
  (void)api.Neighbors(1);
  Rng rng(1);
  (void)api.RandomNeighbor(2, rng);
  (void)api.HasEdge(0, 1);
  (void)api.NumNodesForSeeding();  // simulation-only; not an API call
  EXPECT_EQ(api.RawQueryCount(), 4u);
  api.ResetQueryCounts();
  EXPECT_EQ(api.RawQueryCount(), 0u);
  EXPECT_EQ(api.QueryCount(), 0u);
}

TEST(RestrictedAccessTest, QueryCountChargesDistinctNodesOnly) {
  // Regression: QueryCount() used to count repeat queries to the same
  // node. The paper's cost model charges one API call per *distinct*
  // neighbor-list fetch — a crawler keeps what it downloaded.
  const Graph g = KarateClub();
  RestrictedAccess api(g);
  for (int i = 0; i < 10; ++i) (void)api.Degree(0);
  EXPECT_EQ(api.QueryCount(), 1u);
  EXPECT_EQ(api.RawQueryCount(), 10u);
  (void)api.Neighbors(0);  // same node, any call kind: still distinct=1
  EXPECT_EQ(api.QueryCount(), 1u);
  (void)api.Neighbors(5);
  EXPECT_EQ(api.QueryCount(), 2u);
  // HasEdge(u, v) fetches u's list: charges u, not v.
  (void)api.HasEdge(7, 8);
  EXPECT_EQ(api.QueryCount(), 3u);
  (void)api.HasEdge(7, 9);
  EXPECT_EQ(api.QueryCount(), 3u);
  EXPECT_EQ(api.RawQueryCount(), 14u);
  api.ResetQueryCounts();
  (void)api.Degree(0);
  EXPECT_EQ(api.QueryCount(), 1u);  // registry cleared by the reset
}

TEST(RestrictedAccessTest, CountersAreExactUnderConcurrency) {
  // 8 threads x 40k mixed calls against one shared facade: raw must
  // account for every call, distinct for every node exactly once even
  // when threads race to set the same bit.
  const Graph g = KarateClub();
  const RestrictedAccess api(g);
  constexpr size_t kThreads = 8;
  constexpr uint64_t kCallsPerThread = 40000;
  ParallelFor(
      kThreads,
      [&](size_t t) {
        Rng rng(100 + t);
        const VertexId n = api.NumNodesForSeeding();
        for (uint64_t i = 0; i < kCallsPerThread; ++i) {
          const auto v = static_cast<VertexId>(i % n);
          switch (i % 4) {
            case 0:
              (void)api.Degree(v);
              break;
            case 1:
              (void)api.Neighbors(v);
              break;
            case 2:
              (void)api.RandomNeighbor(v, rng);
              break;
            default:
              (void)api.HasEdge(v, static_cast<VertexId>((v + 1) % n));
              break;
          }
        }
      },
      kThreads);
  EXPECT_EQ(api.RawQueryCount(), kThreads * kCallsPerThread);
  // Every node is queried by every thread; distinct = all of them, once.
  EXPECT_EQ(api.QueryCount(), g.NumNodes());
}

// ---------------------------------------------------------- CrawlAccess --

TEST(CrawlAccessTest, ReadsMatchTheGraphExactly) {
  const Graph g = KarateClub();
  CrawlAccess crawl(g, {});
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(crawl.Degree(v), g.Degree(v));
    const auto a = crawl.Neighbors(v);
    const auto b = g.Neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    for (uint32_t i = 0; i < g.Degree(v); ++i) {
      ASSERT_EQ(crawl.Neighbor(v, i), g.Neighbor(v, i));
    }
  }
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ(crawl.HasEdge(u, v), g.HasEdge(u, v)) << u << "," << v;
    }
  }
}

TEST(CrawlAccessTest, UnboundedCacheFetchesEachNodeOnce) {
  const Graph g = KarateClub();
  CrawlAccess crawl(g, {});  // cache_entries = 0 -> unbounded
  EXPECT_EQ(crawl.CacheCapacity(), g.NumNodes());
  for (int round = 0; round < 3; ++round) {
    for (VertexId v = 0; v < g.NumNodes(); ++v) (void)crawl.Degree(v);
  }
  EXPECT_EQ(crawl.stats().fetches, g.NumNodes());
  EXPECT_EQ(crawl.stats().distinct_fetches, g.NumNodes());
  EXPECT_EQ(crawl.stats().cache_hits, 2u * g.NumNodes());
  EXPECT_EQ(crawl.stats().evictions, 0u);
  EXPECT_EQ(crawl.stats().Refetches(), 0u);
}

TEST(CrawlAccessTest, LruEvictsLeastRecentlyUsed) {
  const Graph g = KarateClub();
  CrawlAccess::Options opt;
  opt.cache_entries = 2;
  CrawlAccess crawl(g, opt);

  (void)crawl.Neighbors(0);  // cache: {0}
  (void)crawl.Neighbors(1);  // cache: {1, 0}
  EXPECT_TRUE(crawl.Cached(0));
  EXPECT_TRUE(crawl.Cached(1));
  (void)crawl.Neighbors(0);  // touch 0 -> LRU order now {0, 1}
  (void)crawl.Neighbors(2);  // evicts 1 (least recently used), not 0
  EXPECT_TRUE(crawl.Cached(0));
  EXPECT_FALSE(crawl.Cached(1));
  EXPECT_TRUE(crawl.Cached(2));
  EXPECT_EQ(crawl.stats().evictions, 1u);
  (void)crawl.Neighbors(1);  // re-fetch: raw grows, distinct does not
  EXPECT_EQ(crawl.stats().fetches, 4u);
  EXPECT_EQ(crawl.stats().distinct_fetches, 3u);
  EXPECT_EQ(crawl.stats().Refetches(), 1u);
  EXPECT_FALSE(crawl.Cached(0));  // 0 was the LRU when 1 came back
  EXPECT_TRUE(crawl.Cached(2));
}

TEST(CrawlAccessTest, AdversarialRevisitPatternAccounting) {
  // Cycle through cache_size + 1 nodes with a capacity-C LRU: every
  // access misses (the classic LRU worst case), so hits stay zero and
  // every revisit is a re-fetch.
  const Graph g = KarateClub();
  constexpr uint64_t kCapacity = 4;
  CrawlAccess::Options opt;
  opt.cache_entries = kCapacity;
  CrawlAccess crawl(g, opt);
  constexpr int kRounds = 10;
  constexpr VertexId kNodes = kCapacity + 1;
  for (int r = 0; r < kRounds; ++r) {
    for (VertexId v = 0; v < kNodes; ++v) (void)crawl.Degree(v);
  }
  EXPECT_EQ(crawl.stats().cache_hits, 0u);
  EXPECT_EQ(crawl.stats().fetches, uint64_t{kRounds} * kNodes);
  EXPECT_EQ(crawl.stats().distinct_fetches, kNodes);
  EXPECT_EQ(crawl.stats().evictions, uint64_t{kRounds} * kNodes - kCapacity);

  // The same pattern over only C nodes is all hits after the first round.
  CrawlAccess friendly(g, opt);
  for (int r = 0; r < kRounds; ++r) {
    for (VertexId v = 0; v < kCapacity; ++v) (void)friendly.Degree(v);
  }
  EXPECT_EQ(friendly.stats().fetches, kCapacity);
  EXPECT_EQ(friendly.stats().cache_hits,
            uint64_t{kRounds - 1} * kCapacity);
  EXPECT_DOUBLE_EQ(friendly.stats().HitRate(),
                   static_cast<double>(kRounds - 1) / kRounds);
}

TEST(CrawlAccessTest, HasEdgePrefersCachedEndpoint) {
  const Graph g = KarateClub();
  CrawlAccess crawl(g, {});
  (void)crawl.Neighbors(1);
  const uint64_t fetches_before = crawl.stats().fetches;
  // 1 is cached, 0 is not: the test searches 1's cached list — no fetch.
  (void)crawl.HasEdge(0, 1);
  EXPECT_EQ(crawl.stats().fetches, fetches_before);
  EXPECT_FALSE(crawl.Cached(0));
  // Neither endpoint cached: one fetch (the first argument's list).
  (void)crawl.HasEdge(5, 6);
  EXPECT_EQ(crawl.stats().fetches, fetches_before + 1);
  EXPECT_TRUE(crawl.Cached(5));
  EXPECT_FALSE(crawl.Cached(6));
}

TEST(CrawlAccessTest, SimulatedLatencyAccumulatesPerFetchOnly) {
  const Graph g = KarateClub();
  CrawlAccess::Options opt;
  opt.latency_us = 250.0;
  CrawlAccess crawl(g, opt);
  (void)crawl.Neighbors(3);
  (void)crawl.Neighbors(3);  // hit: no latency
  (void)crawl.Neighbors(4);
  EXPECT_DOUBLE_EQ(crawl.stats().simulated_latency_us, 500.0);
}

TEST(CrawlAccessTest, BudgetExhaustionOnDistinctFetches) {
  const Graph g = KarateClub();
  CrawlAccess::Options opt;
  opt.query_budget = 3;
  CrawlAccess crawl(g, opt);
  (void)crawl.Neighbors(0);
  (void)crawl.Neighbors(0);
  (void)crawl.Neighbors(1);
  EXPECT_FALSE(crawl.BudgetExhausted());  // 2 distinct < 3
  (void)crawl.Neighbors(2);
  EXPECT_TRUE(crawl.BudgetExhausted());
  // Reads still work after exhaustion: the budget is a stopping signal.
  EXPECT_EQ(crawl.Degree(3), g.Degree(3));
}

TEST(CrawlAccessTest, ResetCacheAndStats) {
  const Graph g = KarateClub();
  CrawlAccess::Options opt;
  opt.cache_entries = 3;
  CrawlAccess crawl(g, opt);
  for (VertexId v = 0; v < 6; ++v) (void)crawl.Degree(v);
  crawl.ResetStats();
  EXPECT_EQ(crawl.stats().fetches, 0u);
  EXPECT_TRUE(crawl.Cached(5));  // cache retained
  // A new accounting phase: a cached node reads as a hit, an evicted one
  // as a *distinct* fetch again (the registry reset with the counters).
  (void)crawl.Degree(5);
  EXPECT_EQ(crawl.stats().cache_hits, 1u);
  (void)crawl.Degree(0);  // evicted before the reset
  EXPECT_EQ(crawl.stats().distinct_fetches, 1u);
  EXPECT_EQ(crawl.stats().Refetches(), 0u);
  crawl.ResetCache();
  EXPECT_FALSE(crawl.Cached(5));
  (void)crawl.Degree(5);
  // Distinct registry was cleared too: 5 counts as distinct again.
  EXPECT_EQ(crawl.stats().distinct_fetches, 1u);
}

TEST(CrawlAccessTest, CacheSizeOneStillAnswersEverythingCorrectly) {
  // Capacity 1 is the degenerate LRU; results must stay exact.
  const Graph g = Lollipop(8, 5);
  CrawlAccess::Options opt;
  opt.cache_entries = 1;
  CrawlAccess crawl(g, opt);
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ(crawl.HasEdge(u, v), g.HasEdge(u, v));
    }
  }
}

}  // namespace
}  // namespace grw
