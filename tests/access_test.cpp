// Tests for the RestrictedAccess crawling facade, in particular that its
// API-call counter is exact when one facade is shared across threads (the
// PR 2 engine runs many chains against one const facade).

#include "graph/access.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(RestrictedAccessTest, CountsEveryKindOfCall) {
  const Graph g = KarateClub();
  RestrictedAccess api(g);
  EXPECT_EQ(api.ApiCalls(), 0u);
  (void)api.Degree(0);
  (void)api.Neighbors(1);
  Rng rng(1);
  (void)api.RandomNeighbor(2, rng);
  (void)api.HasEdge(0, 1);
  (void)api.NumNodesForSeeding();  // simulation-only; not an API call
  EXPECT_EQ(api.ApiCalls(), 4u);
  api.ResetApiCalls();
  EXPECT_EQ(api.ApiCalls(), 0u);
}

TEST(RestrictedAccessTest, CounterIsExactUnderConcurrency) {
  // 8 threads x 40k mixed calls against one shared facade: with the old
  // non-atomic `mutable uint64_t` counter increments were torn/lost; the
  // relaxed atomic must account for every single call.
  const Graph g = KarateClub();
  const RestrictedAccess api(g);
  constexpr size_t kThreads = 8;
  constexpr uint64_t kCallsPerThread = 40000;
  ParallelFor(
      kThreads,
      [&](size_t t) {
        Rng rng(100 + t);
        const VertexId n = api.NumNodesForSeeding();
        for (uint64_t i = 0; i < kCallsPerThread; ++i) {
          const auto v = static_cast<VertexId>(i % n);
          switch (i % 4) {
            case 0:
              (void)api.Degree(v);
              break;
            case 1:
              (void)api.Neighbors(v);
              break;
            case 2:
              (void)api.RandomNeighbor(v, rng);
              break;
            default:
              (void)api.HasEdge(v, static_cast<VertexId>((v + 1) % n));
              break;
          }
        }
      },
      kThreads);
  EXPECT_EQ(api.ApiCalls(), kThreads * kCallsPerThread);
}

}  // namespace
}  // namespace grw
