// Tests for the evaluation layer: dataset registry, NRMSE experiment
// runner, and graphlet-kernel similarity.

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "eval/datasets.h"
#include "eval/experiment.h"
#include "eval/similarity.h"
#include "exact/exact.h"
#include "graphlet/catalog.h"

namespace grw {
namespace {

TEST(DatasetsTest, RegistryCoversAllPaperGraphs) {
  const auto& registry = DatasetRegistry();
  EXPECT_EQ(registry.size(), 10u);  // Table 5 has ten datasets
  for (const char* paper :
       {"BrightKite", "Epinion", "Slashdot", "Facebook", "Gowalla",
        "Wikipedia", "Pokec", "Flickr", "Twitter", "Sinaweibo"}) {
    EXPECT_TRUE(FindDataset(paper).has_value()) << paper;
  }
  EXPECT_FALSE(FindDataset("NoSuchGraph").has_value());
}

TEST(DatasetsTest, GenerationIsDeterministicAndConnected) {
  const Graph a = MakeDatasetByName("brightkite-sim", 0.2);
  const Graph b = MakeDatasetByName("brightkite-sim", 0.2);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_TRUE(a.IsConnected());
}

TEST(DatasetsTest, TierFiltering) {
  const auto small = DatasetNames(DatasetTier::kSmall);
  EXPECT_EQ(small.size(), 4u);
  const auto medium = DatasetNames(DatasetTier::kMedium);
  EXPECT_EQ(medium.size(), 8u);
  const auto all = DatasetNames(DatasetTier::kLarge);
  EXPECT_EQ(all.size(), 10u);
}

TEST(DatasetsTest, ScaleValidation) {
  EXPECT_THROW(MakeDatasetByName("epinion-sim", 0.0),
               std::invalid_argument);
  EXPECT_THROW(MakeDatasetByName("epinion-sim", 1.5),
               std::invalid_argument);
  EXPECT_THROW(MakeDatasetByName("unknown"), std::invalid_argument);
}

TEST(ExperimentTest, ChainsAreDeterministicInBaseSeed) {
  const Graph g = MakeDatasetByName("brightkite-sim", 0.1);
  const EstimatorConfig config{3, 1, true, true};
  const auto a = RunConcentrationChains(g, config, 2000, 6, 99);
  const auto b = RunConcentrationChains(g, config, 2000, 6, 99);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (size_t c = 0; c < a.estimates.size(); ++c) {
    EXPECT_EQ(a.estimates[c], b.estimates[c]) << "chain " << c;
  }
  // Thread count must not change results.
  const auto serial = RunConcentrationChains(g, config, 2000, 6, 99, 1);
  for (size_t c = 0; c < a.estimates.size(); ++c) {
    EXPECT_EQ(a.estimates[c], serial.estimates[c]);
  }
}

TEST(ExperimentTest, NrmseDropsWithMoreSteps) {
  const Graph g = MakeDatasetByName("brightkite-sim", 0.15);
  const auto truth = ExactConcentrations(g, 3);
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  const int triangle = c3.IdByName("triangle");
  const EstimatorConfig config{3, 1, false, false};
  const auto nrmse = ConvergenceNrmse(g, config, {500, 2000, 8000, 32000},
                                      40, 7, truth, triangle);
  ASSERT_EQ(nrmse.size(), 4u);
  // Monotone-ish decay: the last grid point must beat the first clearly.
  EXPECT_LT(nrmse.back(), 0.6 * nrmse.front());
}

TEST(ExperimentTest, CountChainsProduceCountScaleEstimates) {
  const Graph g = MakeDatasetByName("brightkite-sim", 0.1);
  const auto exact = ExactGraphletCounts(g, 3);
  const EstimatorConfig config{3, 1, false, false};
  const auto chains = RunCountChains(g, config, 30000, 8, 3);
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  const int wedge = c3.IdByName("wedge");
  double mean = 0;
  for (const auto& est : chains.estimates) {
    mean += est[wedge] / chains.estimates.size();
  }
  EXPECT_NEAR(mean, static_cast<double>(exact[wedge]),
              0.15 * static_cast<double>(exact[wedge]));
}

TEST(ExperimentTest, CustomChainsRunAllSims) {
  const auto chains = RunCustomChains(
      10, [](int i) { return std::vector<double>{static_cast<double>(i)}; });
  ASSERT_EQ(chains.estimates.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(chains.estimates[i][0], i);
  }
}

TEST(ExperimentTest, NrmseOfTypeMatchesDefinition) {
  ChainEstimates chains;
  chains.estimates = {{0.1, 0.9}, {0.3, 0.7}};
  const std::vector<double> truth = {0.2, 0.8};
  EXPECT_NEAR(NrmseOfType(chains, truth, 0), 0.5, 1e-12);
  EXPECT_NEAR(NrmseOfType(chains, truth, 1), 0.125, 1e-12);
}

TEST(SimilarityTest, CosineProperties) {
  EXPECT_DOUBLE_EQ(GraphletKernelSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(GraphletKernelSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_NEAR(GraphletKernelSimilarity({1, 1}, {1, 0}), 1 / std::sqrt(2.0),
              1e-12);
  EXPECT_DOUBLE_EQ(GraphletKernelSimilarity({0, 0}, {1, 1}), 0.0);
  // Scale invariance.
  EXPECT_NEAR(GraphletKernelSimilarity({0.2, 0.8}, {0.4, 1.6}), 1.0, 1e-12);
}

}  // namespace
}  // namespace grw
