// Tests for the GUISE baseline (MH-uniform sampling over 3/4/5-node
// graphlets) and the Hardiman-Katzir clustering estimator.

#include <gtest/gtest.h>

#include "baselines/guise.h"
#include "baselines/hardiman_katzir.h"
#include "exact/exact.h"
#include "exact/triangle.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "util/rng.h"

namespace grw {
namespace {

TEST(GuiseTest, ConvergesToConcentrationsOfAllThreeSizes) {
  Rng rng(51);
  const Graph g = LargestConnectedComponent(HolmeKim(90, 4, 0.5, rng));
  Guise guise(g);
  // Average a few chains; GUISE mixes slower than the framework.
  std::vector<std::vector<double>> mean(6);
  const int chains = 3;
  for (int k = 3; k <= 5; ++k) {
    mean[k].assign(GraphletCatalog::ForSize(k).NumTypes(), 0.0);
  }
  for (int c = 0; c < chains; ++c) {
    guise.Reset(700 + c);
    guise.Run(60000);
    for (int k = 3; k <= 5; ++k) {
      const auto est = guise.Concentrations(k);
      for (size_t i = 0; i < est.size(); ++i) {
        mean[k][i] += est[i] / chains;
      }
    }
  }
  for (int k = 3; k <= 5; ++k) {
    const auto truth = ExactConcentrations(g, k);
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_NEAR(mean[k][i], truth[i], 0.07) << "k=" << k << " i=" << i;
    }
  }
}

TEST(GuiseTest, ReportsRejections) {
  Rng rng(52);
  const Graph g = LargestConnectedComponent(HolmeKim(200, 4, 0.3, rng));
  Guise guise(g);
  guise.Reset(1);
  guise.Run(5000);
  EXPECT_EQ(guise.Steps(), 5000u);
  // The MH filter rejects a meaningful share of proposals — the
  // inefficiency the paper attributes to GUISE.
  EXPECT_GT(guise.RejectionRate(), 0.01);
  EXPECT_LT(guise.RejectionRate(), 0.9);
}

TEST(GuiseTest, RejectsTinyGraphs) {
  EXPECT_THROW(Guise guise(Complete(4)), std::invalid_argument);
}

TEST(HardimanKatzirTest, ClusteringCoefficientConverges) {
  Rng rng(53);
  const Graph g = LargestConnectedComponent(HolmeKim(400, 4, 0.6, rng));
  const double exact = GlobalClusteringCoefficient(g);
  HardimanKatzir hk(g);
  double mean = 0.0;
  const int chains = 6;
  for (int c = 0; c < chains; ++c) {
    hk.Reset(900 + c);
    hk.Run(120000);
    mean += hk.ClusteringCoefficient() / chains;
  }
  EXPECT_NEAR(mean, exact, 0.02);
}

TEST(HardimanKatzirTest, ConcentrationsMatchExact) {
  Rng rng(54);
  const Graph g = LargestConnectedComponent(HolmeKim(300, 5, 0.5, rng));
  const auto truth = ExactConcentrations(g, 3);
  HardimanKatzir hk(g);
  std::vector<double> mean(2, 0.0);
  const int chains = 6;
  for (int c = 0; c < chains; ++c) {
    hk.Reset(300 + c);
    hk.Run(100000);
    const auto est = hk.Concentrations();
    for (size_t i = 0; i < est.size(); ++i) mean[i] += est[i] / chains;
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(mean[i], truth[i], 0.02) << "i=" << i;
  }
}

TEST(HardimanKatzirTest, ExactOnCompleteGraph) {
  // On K_n every wedge is closed: clustering = 1, c32 = 1.
  const Graph k8 = Complete(8);
  HardimanKatzir hk(k8);
  hk.Reset(5);
  hk.Run(5000);
  // phi = 0 whenever the walk backtracks (prev == next), so the ratio
  // estimator carries finite-sample noise even on K_n.
  EXPECT_NEAR(hk.ClusteringCoefficient(), 1.0, 0.01);
  const auto conc = hk.Concentrations();
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  EXPECT_NEAR(conc[c3.IdByName("triangle")], 1.0, 0.03);
}

}  // namespace
}  // namespace grw
