// Validation of the coefficient engine (Algorithm 2) against the paper's
// published Tables 2 and 3 — the strongest end-to-end check that the
// framework's re-weighting math matches the paper.

#include "core/alpha.h"

#include <gtest/gtest.h>

#include "core/paper_ids.h"
#include "graphlet/catalog.h"

namespace grw {
namespace {

TEST(AlphaTest, HandComputedSmallCases) {
  const GraphletCatalog& c3 = GraphletCatalog::ForSize(3);
  // SRW1, l = 3: alpha = directed Hamiltonian paths. Wedge has 2,
  // triangle 3! = 6.
  EXPECT_EQ(Alpha(c3.Get(c3.IdByName("wedge")), 1), 2);
  EXPECT_EQ(Alpha(c3.Get(c3.IdByName("triangle")), 1), 6);
  // SRW2, l = 2: ordered pairs of adjacent edge-states.
  EXPECT_EQ(Alpha(c3.Get(c3.IdByName("wedge")), 2), 2);
  EXPECT_EQ(Alpha(c3.Get(c3.IdByName("triangle")), 2), 6);

  const GraphletCatalog& c4 = GraphletCatalog::ForSize(4);
  // The star cannot be spanned by a node walk (no Hamiltonian path).
  EXPECT_EQ(Alpha(c4.Get(c4.IdByName("3-star")), 1), 0);
  // K4 has 4!/2 = 12 undirected Hamiltonian paths.
  EXPECT_EQ(Alpha(c4.Get(c4.IdByName("4-clique")), 1), 24);
}

TEST(AlphaTest, MatchesPaperTable2ThreeNode) {
  const auto& order = PaperOrder(3);
  const auto& paper = PaperAlphaHalfTable(3);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(3);
  for (int d = 1; d <= 2; ++d) {
    for (int pos = 0; pos < 2; ++pos) {
      EXPECT_EQ(Alpha(catalog.Get(order[pos]), d) / 2, paper[d - 1][pos])
          << "d=" << d << " " << PaperLabel(3, pos);
    }
  }
}

TEST(AlphaTest, MatchesPaperTable2FourNode) {
  const auto& order = PaperOrder(4);
  const auto& paper = PaperAlphaHalfTable(4);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(4);
  for (int d = 1; d <= 3; ++d) {
    for (int pos = 0; pos < 6; ++pos) {
      EXPECT_EQ(Alpha(catalog.Get(order[pos]), d) / 2, paper[d - 1][pos])
          << "d=" << d << " " << PaperLabel(4, pos);
    }
  }
}

TEST(AlphaTest, MatchesPaperTable3FiveNodeRowsOneToThree) {
  // Rows SRW1..SRW3 of Table 3 are reproduced exactly. Row SRW4 is
  // checked separately: five printed entries contradict the paper's own
  // Appendix B closed form (see test below).
  const auto& order = PaperOrder(5);
  const auto& paper = PaperAlphaHalfTable(5);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(5);
  for (int d = 1; d <= 3; ++d) {
    for (int pos = 0; pos < 21; ++pos) {
      EXPECT_EQ(Alpha(catalog.Get(order[pos]), d) / 2, paper[d - 1][pos])
          << "d=" << d << " " << PaperLabel(5, pos);
    }
  }
}

TEST(AlphaTest, PsrwClosedFormAppendixB) {
  // Appendix B: for d = k-1 (PSRW), alpha = |S| (|S|-1) where S is the
  // set of connected (k-1)-node induced subgraphs. Verify for all k = 4, 5
  // graphlets against an independent subgraph count.
  for (int k = 4; k <= 5; ++k) {
    const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
    for (int id = 0; id < catalog.NumTypes(); ++id) {
      const Graphlet& g = catalog.Get(id);
      // Count connected induced (k-1)-subsets directly.
      int64_t s = 0;
      for (int omit = 0; omit < k; ++omit) {
        uint32_t sub = 0;
        int labels[kMaxGraphletSize];
        int idx = 0;
        for (int v = 0; v < k; ++v) {
          if (v != omit) labels[idx++] = v;
        }
        for (int i = 0; i < k - 1; ++i) {
          for (int j = i + 1; j < k - 1; ++j) {
            if (g.HasEdge(labels[i], labels[j])) {
              sub = MaskWithEdge(sub, k - 1, i, j);
            }
          }
        }
        if (MaskIsConnected(sub, k - 1)) ++s;
      }
      EXPECT_EQ(Alpha(g, k - 1), s * (s - 1)) << "k=" << k << " id=" << id;
    }
  }
}

TEST(AlphaTest, PaperTable3Srw4ErrataDocumented) {
  // The printed SRW4 row of Table 3 contains entries of 12 (alpha = 24),
  // impossible under alpha = |S|(|S|-1) <= 5*4 = 20. Our computed values
  // must still be consistent with the closed form; the entries that agree
  // with the paper's print are the majority.
  const auto& order = PaperOrder(5);
  const auto& paper = PaperAlphaHalfTable(5);
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(5);
  int agree = 0;
  for (int pos = 0; pos < 21; ++pos) {
    const int64_t computed = Alpha(catalog.Get(order[pos]), 4) / 2;
    EXPECT_LE(computed, 10) << "closed form bound |S|(|S|-1)/2 <= 10";
    if (computed == paper[3][pos]) ++agree;
  }
  EXPECT_GE(agree, 16) << "most SRW4 entries match the printed table";
}

TEST(AlphaTest, AlphaTableMatchesPerGraphletCalls) {
  for (int k = 3; k <= 5; ++k) {
    for (int d = 1; d < k; ++d) {
      const auto table = AlphaTable(k, d);
      const GraphletCatalog& catalog = GraphletCatalog::ForSize(k);
      ASSERT_EQ(static_cast<int>(table.size()), catalog.NumTypes());
      for (int id = 0; id < catalog.NumTypes(); ++id) {
        EXPECT_EQ(table[id], Alpha(catalog.Get(id), d));
      }
    }
  }
}

TEST(AlphaTest, SequencesCoverAllNodesAndChainProperly) {
  // Structural property check on the raw sequences for a non-trivial
  // case: 5-node chordal graphlets under SRW2.
  const GraphletCatalog& catalog = GraphletCatalog::ForSize(5);
  for (int id = 0; id < catalog.NumTypes(); ++id) {
    const Graphlet& g = catalog.Get(id);
    for (int d = 1; d <= 4; ++d) {
      const auto seqs = CorrespondingSequences(g, d);
      const int l = 5 - d + 1;
      for (const auto& seq : seqs) {
        ASSERT_EQ(static_cast<int>(seq.size()), l);
        uint16_t covered = 0;
        for (uint16_t s : seq) covered |= s;
        EXPECT_EQ(covered, (1u << 5) - 1) << "sequence must span all nodes";
      }
    }
  }
}

}  // namespace
}  // namespace grw
