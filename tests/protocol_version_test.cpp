// Protocol-versioning tests (serve/protocol.*): every response leads
// with `"v": 1`, v-less legacy requests still parse (and produce the
// same estimates as explicit v=1), future or malformed versions are
// rejected with a precise error, PING advertises capabilities, and
// unknown top-level request keys fail loudly instead of being ignored.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/scheduler.h"

namespace grw::serve {
namespace {

RequestLimits Limits() {
  RequestLimits limits;
  limits.max_steps = 1'000'000;
  limits.max_chains = 16;
  return limits;
}

bool Parses(const std::string& line) {
  return ParseRequestLine(line, Limits()).request.has_value();
}

std::string ErrorOf(const std::string& line) {
  const ParsedRequest parsed = ParseRequestLine(line, Limits());
  EXPECT_FALSE(parsed.request.has_value()) << line;
  return parsed.error;
}

TEST(ProtocolVersionTest, LegacyVlessRequestsStillParse) {
  EXPECT_TRUE(Parses("PING"));
  EXPECT_TRUE(Parses("LIST"));
  EXPECT_TRUE(Parses("ESTIMATE graph=g k=4"));
}

TEST(ProtocolVersionTest, ExplicitV1AcceptedOnEveryVerb) {
  EXPECT_TRUE(Parses("PING v=1"));
  EXPECT_TRUE(Parses("LIST v=1"));
  EXPECT_TRUE(Parses("ESTIMATE v=1 graph=g k=4"));
  // Position-independent: v= can come after other fields too.
  EXPECT_TRUE(Parses("ESTIMATE graph=g k=4 v=1"));
}

TEST(ProtocolVersionTest, FutureAndBadVersionsAreRejectedByName) {
  for (const char* verb : {"PING", "LIST", "ESTIMATE graph=g k=4"}) {
    const std::string line = std::string(verb) + " v=2";
    EXPECT_EQ(ErrorOf(line),
              "unsupported protocol version v=2 (this server speaks v=1)")
        << line;
    EXPECT_NE(ErrorOf(std::string(verb) + " v=0").find(
                  "unsupported protocol version v=0"),
              std::string::npos);
    EXPECT_NE(ErrorOf(std::string(verb) + " v=banana").find(
                  "field v: invalid integer"),
              std::string::npos);
  }
}

TEST(ProtocolVersionTest, UnknownTopLevelKeysAreRejected) {
  // PING / LIST take only v=; the error names both the field and verb.
  EXPECT_EQ(ErrorOf("PING shard=3"),
            "unknown field 'shard' (verb PING takes only v=)");
  EXPECT_EQ(ErrorOf("LIST verbose=1"),
            "unknown field 'verbose' (verb LIST takes only v=)");
  // ESTIMATE rejects unknown keys too (strict, not ignore-unknown).
  EXPECT_EQ(ErrorOf("ESTIMATE graph=g k=4 turbo=1"),
            "unknown field 'turbo'");
}

TEST(ProtocolVersionTest, EveryResponseLeadsWithTheVersion) {
  const std::string head = "{\"v\": 1";
  EXPECT_EQ(ErrorResponse("boom").rfind(head, 0), 0u);
  EXPECT_EQ(PingResponse(Limits()).rfind(head, 0), 0u);
  EXPECT_EQ(OverloadedResponse("busy", 25.0).rfind(head, 0), 0u);
  EXPECT_EQ(ListResponse({}).rfind(head, 0), 0u);
  // And the field parses back as the integer 1, not just a prefix match.
  const auto doc = ParseJson(PingResponse(Limits()));
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->Find("v"), nullptr);
  EXPECT_EQ(doc->Find("v")->number, 1.0);
}

TEST(ProtocolVersionTest, PingAdvertisesCapabilitiesAndLimits) {
  const auto doc = ParseJson(PingResponse(Limits()));
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->Find("ok")->IsTrue());
  EXPECT_TRUE(doc->Find("pong")->IsTrue());
  const JsonValue* caps = doc->Find("capabilities");
  ASSERT_NE(caps, nullptr);
  EXPECT_TRUE(caps->Find("batch")->IsTrue());
  EXPECT_TRUE(caps->Find("crawl")->IsTrue());
  EXPECT_TRUE(caps->Find("sharded")->IsTrue());
  const JsonValue* limits = doc->Find("limits");
  ASSERT_NE(limits, nullptr);
  EXPECT_EQ(limits->Find("max_steps")->number, 1'000'000.0);
  EXPECT_EQ(limits->Find("max_chains")->number, 16.0);
}

// The round trip that matters: a legacy v-less client and a v=1 client
// issuing the same estimate get bit-identical concentrations. Responses
// embed wall-clock timing, so we compare the parsed number *raw text*
// (bit-exact %.17g echo) rather than whole response lines.
TEST(ProtocolVersionTest, LegacyAndV1EstimatesAreBitIdentical) {
  SnapshotRegistry registry;
  registry.RegisterGraph("karate", KarateClub());
  SchedulerOptions options;
  options.workers = 2;
  options.limits = Limits();
  ServeScheduler scheduler(&registry, options);

  const std::string common = "graph=karate k=4 steps=4000 seed=99 chains=4";
  const std::string legacy = scheduler.HandleLine("ESTIMATE " + common);
  const std::string v1 = scheduler.HandleLine("ESTIMATE v=1 " + common);

  const auto a = ParseJson(legacy);
  const auto b = ParseJson(v1);
  ASSERT_TRUE(a.has_value()) << legacy;
  ASSERT_TRUE(b.has_value()) << v1;
  ASSERT_TRUE(a->Find("ok")->IsTrue()) << legacy;
  ASSERT_TRUE(b->Find("ok")->IsTrue()) << v1;
  EXPECT_EQ(a->Find("v")->number, 1.0);
  EXPECT_EQ(b->Find("v")->number, 1.0);

  const JsonValue* ca = a->Find("concentrations");
  const JsonValue* cb = b->Find("concentrations");
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  ASSERT_EQ(ca->items.size(), cb->items.size());
  ASSERT_FALSE(ca->items.empty());
  for (size_t i = 0; i < ca->items.size(); ++i) {
    EXPECT_EQ(ca->items[i].raw, cb->items[i].raw) << "graphlet " << i;
  }
}

}  // namespace
}  // namespace grw::serve
