// Tests for the sharded `.grwb` storage layout (graph/sharding.*):
// write/load round trips, partition invariants, the manifest's degree
// histogram, crash-safety litter, and — pinned message by message — the
// corruption taxonomy (bit flip, missing shard, range overlap, stale
// manifest) that LoadShardManifest/MapShard must report as typed,
// path-qualified SnapshotCorruptError.

#include "graph/sharding.h"

#include <gtest/gtest.h>

#include <bit>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace grw {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  // ctest runs each test case as its own process (possibly in
  // parallel), so the directory must be unique per process.
  const fs::path dir = fs::temp_directory_path() /
                       (name + "." + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

Graph TestGraph() {
  Rng rng(29);
  return LargestConnectedComponent(HolmeKim(500, 4, 0.3, rng));
}

// Reassembles the full CSR from the shards and compares it byte for
// byte against the source graph — the storage layer's ground truth.
void ExpectShardsReproduceGraph(const ShardManifest& manifest,
                                const Graph& g) {
  ASSERT_EQ(manifest.total_nodes, g.NumNodes());
  ASSERT_EQ(manifest.total_half_edges, 2 * g.NumEdges());
  for (uint32_t s = 0; s < manifest.NumShards(); ++s) {
    const MappedShard shard = MapShard(manifest, s, /*verify_checksum=*/true);
    ASSERT_EQ(shard.index(), s);
    ASSERT_EQ(shard.first_node(),
              static_cast<VertexId>(manifest.shards[s].first_node));
    for (VertexId v = shard.first_node(); v < shard.end_node(); ++v) {
      ASSERT_EQ(shard.Degree(v), g.Degree(v)) << "node " << v;
      const auto got = shard.Neighbors(v);
      const auto want = g.Neighbors(v);
      ASSERT_EQ(got.size(), want.size()) << "node " << v;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "node " << v << " slot " << i;
      }
    }
  }
}

TEST(ShardingTest, RoundTripIsBitIdenticalAcrossShardCounts) {
  const Graph g = TestGraph();
  const std::string dir = TempDir("grw_shard_roundtrip");
  for (uint32_t shards : {1u, 3u, 7u}) {
    ShardingOptions options;
    options.num_shards = shards;
    const ShardManifest written = WriteShardedGraph(g, dir, options);
    EXPECT_EQ(written.NumShards(), shards);
    // Reload from disk rather than trusting the writer's return value.
    const ShardManifest loaded =
        LoadShardManifest(dir, /*verify_shards=*/true);
    EXPECT_EQ(loaded.NumShards(), shards);
    ExpectShardsReproduceGraph(loaded, g);
    EXPECT_EQ(ShardContentChecksum(loaded), ShardContentChecksum(written));
  }
  fs::remove_all(dir);
}

TEST(ShardingTest, ManifestPartitionInvariantsAndHistogram) {
  const Graph g = TestGraph();
  const std::string dir = TempDir("grw_shard_manifest");
  ShardingOptions options;
  options.num_shards = 5;
  options.flags = kGrwbFlagDegreeRelabeled;
  WriteShardedGraph(g, dir, options);
  const ShardManifest m = LoadShardManifest(dir);

  EXPECT_TRUE(m.DegreeRelabeled());
  EXPECT_EQ(m.version, kGrwsVersion);
  // Contiguous, ordered, non-empty ranges covering [0, n).
  uint64_t expected_first = 0;
  uint64_t half_sum = 0;
  for (const ShardInfo& s : m.shards) {
    EXPECT_EQ(s.first_node, expected_first);
    EXPECT_GE(s.num_rows, 1u);
    expected_first += s.num_rows;
    half_sum += s.num_half_edges;
  }
  EXPECT_EQ(expected_first, m.total_nodes);
  EXPECT_EQ(half_sum, m.total_half_edges);

  // The histogram counts every node exactly once, in its bit-width
  // bucket.
  std::array<uint64_t, kDegreeHistogramBuckets> want = {};
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    ++want[std::bit_width(g.Degree(v))];
  }
  for (int b = 0; b < kDegreeHistogramBuckets; ++b) {
    EXPECT_EQ(m.degree_histogram[static_cast<size_t>(b)],
              want[static_cast<size_t>(b)])
        << "bucket " << b;
  }

  // ShardOf agrees with the ranges, including both boundaries of every
  // shard.
  for (uint32_t s = 0; s < m.NumShards(); ++s) {
    const ShardInfo& info = m.shards[s];
    EXPECT_EQ(m.ShardOf(static_cast<VertexId>(info.first_node)), s);
    EXPECT_EQ(m.ShardOf(static_cast<VertexId>(info.first_node +
                                              info.num_rows - 1)),
              s);
  }
  fs::remove_all(dir);
}

TEST(ShardingTest, TargetBytesModeCutsNearTheTarget) {
  const Graph g = TestGraph();
  const std::string dir = TempDir("grw_shard_bytes");
  ShardingOptions options;
  options.target_shard_bytes = 8 << 10;  // 8 KiB: forces several shards
  const ShardManifest m = WriteShardedGraph(g, dir, options);
  EXPECT_GT(m.NumShards(), 1u);
  ExpectShardsReproduceGraph(m, g);
  // Greedy cutting: every shard except possibly the last crossed the
  // target only by its final row, so no shard is wildly oversized
  // (header + one max-degree row is the worst case).
  const uint64_t slack =
      64 + 2 * sizeof(uint64_t) + uint64_t{g.MaxDegree()} * sizeof(VertexId);
  for (const ShardInfo& s : m.shards) {
    EXPECT_LE(s.file_bytes, options.target_shard_bytes + slack);
  }
  fs::remove_all(dir);
}

TEST(ShardingTest, WriterRejectsBadInputs) {
  const Graph g = TestGraph();
  const std::string dir = TempDir("grw_shard_badinput");
  EXPECT_THROW(WriteShardedGraph(Graph(), dir), std::invalid_argument);
  ShardingOptions too_many;
  too_many.num_shards = g.NumNodes() + 1;
  EXPECT_THROW(WriteShardedGraph(g, dir, too_many), std::invalid_argument);
  fs::remove_all(dir);
}

TEST(ShardingTest, WriteLeavesNoTempLitter) {
  const Graph g = TestGraph();
  const std::string dir = TempDir("grw_shard_litter");
  ShardingOptions options;
  options.num_shards = 4;
  WriteShardedGraph(g, dir, options);
  // Exactly the manifest plus its four shards — no .tmp staging files.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name == kShardManifestName ||
                name.starts_with("shard-"))
        << name;
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
  EXPECT_EQ(entries, 5u);
  // Overwrite in place (re-shard with a different count): still clean,
  // still valid. Stale extra shards from the previous generation remain
  // on disk but the manifest no longer names them.
  options.num_shards = 2;
  WriteShardedGraph(g, dir, options);
  const ShardManifest m = LoadShardManifest(dir, /*verify_shards=*/true);
  EXPECT_EQ(m.NumShards(), 2u);
  fs::remove_all(dir);
}

TEST(ShardingTest, ContentChecksumTracksPartitionAndPayload) {
  const Graph g = TestGraph();
  const std::string dir_a = TempDir("grw_shard_sum_a");
  const std::string dir_b = TempDir("grw_shard_sum_b");
  ShardingOptions options;
  options.num_shards = 3;
  const uint64_t a = ShardContentChecksum(WriteShardedGraph(g, dir_a, options));
  // Deterministic: the same graph sharded the same way hashes the same.
  const uint64_t b = ShardContentChecksum(WriteShardedGraph(g, dir_b, options));
  EXPECT_EQ(a, b);
  // A different partition of the same bytes is a different content
  // identity (residency sharing must not mix shard layouts).
  options.num_shards = 4;
  const uint64_t c = ShardContentChecksum(WriteShardedGraph(g, dir_b, options));
  EXPECT_NE(a, c);
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

TEST(ShardingTest, IsShardManifestPathDetection) {
  const Graph g = TestGraph();
  const std::string dir = TempDir("grw_shard_detect");
  WriteShardedGraph(g, dir, {});
  EXPECT_TRUE(IsShardManifestPath(dir));
  EXPECT_TRUE(IsShardManifestPath(dir + "/" + kShardManifestName));
  EXPECT_FALSE(IsShardManifestPath(dir + "/shard-00000.grws"));
  EXPECT_FALSE(IsShardManifestPath(dir + "/nope"));
  const std::string empty = TempDir("grw_shard_detect_empty");
  fs::create_directories(empty);
  EXPECT_FALSE(IsShardManifestPath(empty));
  fs::remove_all(dir);
  fs::remove_all(empty);
}

// ------------------------------------------------------------------------
// Corruption taxonomy. Each failure shape gets a distinct, path-qualified
// SnapshotCorruptError; the fixture re-shards a fresh copy per test.

class ShardingCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("grw_shard_corrupt");
    g_ = TestGraph();
    ShardingOptions options;
    options.num_shards = 3;
    manifest_ = WriteShardedGraph(g_, dir_, options);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void Poke(const std::string& path, uint64_t offset, unsigned char value) {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&value, 1, 1, f), 1u);
    std::fclose(f);
  }

  unsigned char Peek(const std::string& path, uint64_t offset) {
    unsigned char value = 0;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    EXPECT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    EXPECT_EQ(std::fread(&value, 1, 1, f), 1u);
    std::fclose(f);
    return value;
  }

  // Rewrites the manifest from the (tampered) `manifest_` fields with
  // CORRECT checksums, so only the semantic validation can object — the
  // way a buggy or malicious resharder would corrupt the layout.
  void RewriteManifestWithValidChecksums() {
    constexpr uint64_t kBasis = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    const auto fnv = [&](const void* data, size_t bytes, uint64_t seed) {
      const auto* p = static_cast<const unsigned char*>(data);
      for (size_t i = 0; i < bytes; ++i) {
        seed ^= p[i];
        seed *= kPrime;
      }
      return seed;
    };
    struct {
      uint32_t magic = kGrwmMagic;
      uint32_t version = kGrwsVersion;
      uint32_t num_shards = 0;
      uint32_t flags = 0;
      uint64_t total_nodes = 0;
      uint64_t total_half_edges = 0;
      uint64_t table_checksum = 0;
      uint64_t reserved = 0;
      uint64_t reserved2 = 0;
      uint64_t header_checksum = 0;
    } h;
    h.num_shards = manifest_.NumShards();
    h.flags = manifest_.flags;
    h.total_nodes = manifest_.total_nodes;
    h.total_half_edges = manifest_.total_half_edges;
    h.table_checksum =
        fnv(manifest_.shards.data(),
            manifest_.shards.size() * sizeof(ShardInfo),
            fnv(manifest_.degree_histogram.data(),
                sizeof(manifest_.degree_histogram), kBasis));
    h.header_checksum = fnv(&h, 56, kBasis);
    std::FILE* f = std::fopen(manifest_.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(&h, sizeof h, 1, f), 1u);
    ASSERT_EQ(std::fwrite(manifest_.degree_histogram.data(),
                          sizeof(manifest_.degree_histogram), 1, f),
              1u);
    ASSERT_EQ(std::fwrite(manifest_.shards.data(), sizeof(ShardInfo),
                          manifest_.shards.size(), f),
              manifest_.shards.size());
    std::fclose(f);
  }

  template <typename Fn>
  std::string CorruptionMessage(Fn load) {
    try {
      load();
    } catch (const SnapshotCorruptError& e) {
      return e.what();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "wrong exception type: " << e.what();
      return {};
    }
    ADD_FAILURE() << "expected SnapshotCorruptError";
    return {};
  }

  std::string dir_;
  Graph g_;
  ShardManifest manifest_;
};

TEST_F(ShardingCorruptionTest, BitFlippedShardPayload) {
  // Flip the low bit of a neighbor byte in shard 1, past its header and
  // offsets: the header stays valid, lazy mapping succeeds, and only the
  // payload checksum can catch it.
  const std::string shard = manifest_.ShardPath(1);
  const uint64_t payload =
      64 + (manifest_.shards[1].num_rows + 1) * sizeof(uint64_t);
  Poke(shard, payload, Peek(shard, payload) ^ 1u);
  EXPECT_NO_THROW(MapShard(manifest_, 1));
  const std::string msg = CorruptionMessage(
      [&] { MapShard(manifest_, 1, /*verify_checksum=*/true); });
  EXPECT_NE(msg.find(shard), std::string::npos) << msg;
  EXPECT_NE(msg.find("data checksum mismatch (corrupted shard payload)"),
            std::string::npos)
      << msg;
  // The verifying manifest load walks every shard and hits the same wall.
  EXPECT_THROW(LoadShardManifest(dir_, /*verify_shards=*/true),
               SnapshotCorruptError);
  // Untouched shards still verify clean.
  EXPECT_NO_THROW(MapShard(manifest_, 0, /*verify_checksum=*/true));
  EXPECT_NO_THROW(MapShard(manifest_, 2, /*verify_checksum=*/true));
}

TEST_F(ShardingCorruptionTest, MissingShardFile) {
  fs::remove(manifest_.ShardPath(2));
  // The manifest itself still loads lazily (it is internally consistent);
  // touching the missing shard is what fails, and the verifying load
  // fails up front.
  const ShardManifest m = LoadShardManifest(dir_);
  std::string msg = CorruptionMessage([&] { MapShard(m, 2); });
  EXPECT_NE(msg.find(m.ShardPath(2)), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing shard file"), std::string::npos) << msg;
  msg = CorruptionMessage(
      [&] { LoadShardManifest(dir_, /*verify_shards=*/true); });
  EXPECT_NE(msg.find("missing shard file"), std::string::npos) << msg;
}

TEST_F(ShardingCorruptionTest, OverlappingShardRanges) {
  // Shard 1 claims to start one row early — inside shard 0's range —
  // with all checksums forged to match, so only the partition validation
  // can object.
  manifest_.shards[1].first_node -= 1;
  RewriteManifestWithValidChecksums();
  const std::string msg = CorruptionMessage([&] { LoadShardManifest(dir_); });
  EXPECT_NE(msg.find(manifest_.path), std::string::npos) << msg;
  EXPECT_NE(msg.find("shard ranges overlap at shard 1"), std::string::npos)
      << msg;
}

TEST_F(ShardingCorruptionTest, GapInShardRanges) {
  manifest_.shards[1].first_node += 1;
  RewriteManifestWithValidChecksums();
  const std::string msg = CorruptionMessage([&] { LoadShardManifest(dir_); });
  EXPECT_NE(msg.find("gap in shard ranges before shard 1"),
            std::string::npos)
      << msg;
}

TEST_F(ShardingCorruptionTest, StaleManifestChecksumDisagreement) {
  // The stale-manifest shape: a shard was regenerated (its header and
  // payload agree with each other) but the manifest still records the
  // old checksum. Forge it by flipping the manifest's recorded checksum
  // with the table/header checksums made valid again.
  manifest_.shards[1].data_checksum ^= 0xDEADBEEFull;
  RewriteManifestWithValidChecksums();
  const ShardManifest m = LoadShardManifest(dir_);  // table is consistent
  std::string msg = CorruptionMessage([&] { MapShard(m, 1); });
  EXPECT_NE(msg.find(m.ShardPath(1)), std::string::npos) << msg;
  EXPECT_NE(msg.find("checksum disagreement between shard and manifest"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("stale manifest"), std::string::npos) << msg;
  // Shards the manifest still describes correctly keep loading.
  EXPECT_NO_THROW(MapShard(m, 0, /*verify_checksum=*/true));
}

TEST_F(ShardingCorruptionTest, TamperedShardTableWithoutRefix) {
  // A raw byte edit in the shard table (no checksum forgery) dies on the
  // table checksum before any semantic check runs.
  const uint64_t table_start =
      64 + uint64_t{kDegreeHistogramBuckets} * sizeof(uint64_t);
  const uint64_t target = table_start + sizeof(ShardInfo) + 8;
  Poke(manifest_.path, target, Peek(manifest_.path, target) ^ 0x5Au);
  const std::string msg = CorruptionMessage([&] { LoadShardManifest(dir_); });
  EXPECT_NE(msg.find("shard-table checksum mismatch"), std::string::npos)
      << msg;
}

TEST_F(ShardingCorruptionTest, ManifestHeaderDamage) {
  Poke(manifest_.path, 16, 0xFF);  // total_nodes low byte
  EXPECT_THROW(LoadShardManifest(dir_), SnapshotCorruptError);

  RewriteManifestWithValidChecksums();
  Poke(manifest_.path, 0, 'Z');  // magic
  const std::string msg = CorruptionMessage([&] { LoadShardManifest(dir_); });
  EXPECT_NE(msg.find("bad magic (not a sharded-graph manifest)"),
            std::string::npos)
      << msg;
  EXPECT_FALSE(IsShardManifestPath(dir_));
}

TEST_F(ShardingCorruptionTest, TruncatedManifest) {
  fs::resize_file(manifest_.path, fs::file_size(manifest_.path) - 8);
  const std::string msg = CorruptionMessage([&] { LoadShardManifest(dir_); });
  EXPECT_NE(msg.find("truncated or oversized manifest"), std::string::npos)
      << msg;
}

TEST_F(ShardingCorruptionTest, ShardHeaderDamage) {
  const std::string shard = manifest_.ShardPath(0);
  Poke(shard, 16, 0xFF);  // first_node low byte: header checksum mismatch
  const std::string msg = CorruptionMessage([&] { MapShard(manifest_, 0); });
  EXPECT_NE(msg.find("shard header checksum mismatch"), std::string::npos)
      << msg;
}

}  // namespace
}  // namespace grw
