// Tests for the annotated sync primitives (src/util/sync.h): mutual
// exclusion and condition-variable wakeups under real contention, plus
// death tests for the runtime misuse checks (recursive Lock, foreign
// Unlock, Wait without the lock) — the dynamic half of the discipline the
// Clang thread-safety analysis enforces statically.
//
// The GRW_THREAD_SAFETY_MISUSE_PROBE block at the bottom is a *negative
// compile* target: CI re-compiles this file with the macro defined under
// `clang++ -fsyntax-only -Wthread-safety -Werror` and asserts the
// compiler rejects it, proving the annotations actually fire.

#include "util/sync.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace grw {
namespace {

struct GuardedCounter {
  Mutex mu;
  int value GRW_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, MutualExclusionUnderContention) {
  GuardedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(counter.mu);
        ++counter.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, kThreads * kIncrements);
}

TEST(MutexTest, LockUnlockPairsAreReusable) {
  Mutex mu;
  for (int i = 0; i < 3; ++i) {
    mu.Lock();
    mu.Unlock();
  }
  { MutexLock lock(mu); }
  { MutexLock lock(mu); }  // released cleanly by the previous scope
}

struct Handoff {
  Mutex mu;
  CondVar cv;
  bool ready GRW_GUARDED_BY(mu) = false;
  int payload GRW_GUARDED_BY(mu) = 0;
};

TEST(CondVarTest, WaitLoopSeesNotifiedState) {
  Handoff h;
  std::thread producer([&h] {
    MutexLock lock(h.mu);
    h.payload = 42;
    h.ready = true;
    h.cv.NotifyOne();
  });
  {
    MutexLock lock(h.mu);
    // The product-code idiom: explicit wait loop in the function that
    // holds the lock (the analysis can check this one, unlike a lambda).
    while (!h.ready) h.cv.Wait(h.mu);
    EXPECT_EQ(h.payload, 42);
  }
  producer.join();
}

TEST(CondVarTest, PredicateOverloadWaitsOnUnguardedState) {
  // The predicate form is for predicates the analysis has nothing to say
  // about — here an atomic that needs no lock to read.
  Mutex mu;
  CondVar cv;
  std::atomic<bool> go{false};
  std::thread producer([&] {
    go.store(true);
    MutexLock lock(mu);  // pairs the notify with the waiter's lock
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return go.load(); });
    EXPECT_TRUE(go.load());
  }
  producer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Handoff h;
  constexpr int kWaiters = 3;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(h.mu);
      while (!h.ready) h.cv.Wait(h.mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(h.mu);
    h.ready = true;
    h.cv.NotifyAll();
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

// --------------------------------------------------------- death tests --
// Each misuse lives in a helper opted out of the static analysis: under
// GRW_THREAD_SAFETY the compiler would (correctly) refuse to build these
// lines, and what we exercise here is the *runtime* backstop for builds
// without the analysis.

void RecursiveLock() GRW_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu;
  mu.Lock();
  mu.Lock();  // aborts: guaranteed self-deadlock
}

void UnlockFromOtherThread(Mutex& mu) GRW_NO_THREAD_SAFETY_ANALYSIS {
  mu.Unlock();  // aborts: caller does not hold the lock
}

void ForeignUnlock() GRW_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu;
  mu.Lock();
  std::thread t([&mu] { UnlockFromOtherThread(mu); });
  t.join();
}

void WaitWithoutLock() GRW_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu;
  CondVar cv;
  cv.Wait(mu);  // aborts: wait-without-lock
}

TEST(MutexDeathTest, RecursiveLockDiesWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(RecursiveLock(), "recursive Lock\\(\\) by the owning thread");
}

TEST(MutexDeathTest, ForeignUnlockDiesWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(ForeignUnlock(),
               "Unlock\\(\\) by a thread that does not hold the lock");
}

TEST(CondVarDeathTest, WaitWithoutLockDiesWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(WaitWithoutLock(),
               "CondVar::Wait\\(\\) without holding the mutex");
}

}  // namespace
}  // namespace grw

// ----------------------------------------------------- negative probe --
#ifdef GRW_THREAD_SAFETY_MISUSE_PROBE
namespace grw::misuse_probe {

struct Guarded {
  Mutex mu;
  int value GRW_GUARDED_BY(mu) = 0;
};

// Unguarded read of a GUARDED_BY field: under -Wthread-safety -Werror
// this function MUST fail to compile. The CI thread-safety job compiles
// this translation unit with GRW_THREAD_SAFETY_MISUSE_PROBE defined and
// treats successful compilation as a broken-annotations failure.
inline int ReadWithoutLock(Guarded& g) { return g.value; }

}  // namespace grw::misuse_probe
#endif  // GRW_THREAD_SAFETY_MISUSE_PROBE
