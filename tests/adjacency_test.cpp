// AdjacencyIndex correctness: indexed HasEdge must be indistinguishable
// from the binary-search reference on every input, and attaching an index
// must leave every estimate bit-identical (the index may only change query
// cost, never query results — the walk consumes the same RNG stream either
// way).

#include <gtest/gtest.h>

#include <vector>

#include "core/estimator.h"
#include "engine/engine.h"
#include "graph/adjacency.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "walk/subgraph_walk.h"

namespace grw {
namespace {

// Exhaustive u,v sweep (including u == v and out-of-range ids) comparing
// the indexed path against the binary-search reference.
void ExpectIndexMatchesReference(const Graph& indexed) {
  ASSERT_NE(indexed.adjacency_index(), nullptr);
  const VertexId n = indexed.NumNodes();
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(indexed.HasEdge(u, v), indexed.HasEdgeBinarySearch(u, v))
          << "u=" << u << " v=" << v;
    }
  }
  EXPECT_FALSE(indexed.HasEdge(n, 0));
  EXPECT_FALSE(indexed.HasEdge(0, n));
  EXPECT_FALSE(indexed.HasEdge(n, n + 7));
}

TEST(AdjacencyIndexTest, MatchesBinarySearchOnErdosRenyi) {
  Rng rng(11);
  Graph g = ErdosRenyi(300, 900, rng);  // typically has 0/1-degree nodes
  g.BuildAdjacencyIndex();
  ExpectIndexMatchesReference(g);
}

TEST(AdjacencyIndexTest, MatchesBinarySearchOnBarabasiAlbert) {
  Rng rng(12);
  Graph g = BarabasiAlbert(400, 3, rng);
  AdjacencyIndexOptions options;
  options.min_hub_degree = 8;  // force real hub rows on a 400-node graph
  g.BuildAdjacencyIndex(options);
  EXPECT_GT(g.adjacency_index()->num_hubs(), 0u);
  ExpectIndexMatchesReference(g);
}

TEST(AdjacencyIndexTest, HubThresholdBoundaryDegrees) {
  // Star: one max-degree hub, all leaves degree 1. Sweep explicit
  // thresholds across the boundary (leaves in / hub only / nobody).
  Graph g = Star(64);
  for (uint32_t threshold : {1u, 2u, 63u, 64u}) {
    Graph indexed = g;
    AdjacencyIndexOptions options;
    options.hub_degree_threshold = threshold;
    indexed.BuildAdjacencyIndex(options);
    ExpectIndexMatchesReference(indexed);
  }
  // threshold 1 admits every non-isolated node as a hub.
  Graph all_hubs = g;
  AdjacencyIndexOptions options;
  options.hub_degree_threshold = 1;
  all_hubs.BuildAdjacencyIndex(options);
  EXPECT_EQ(all_hubs.adjacency_index()->num_hubs(), 64u);
}

TEST(AdjacencyIndexTest, IsolatedAndDegreeOneNodes) {
  // Hand-built CSR: node 0 isolated, nodes 1-2 a pendant edge, 3-5 a
  // triangle.
  Graph g(std::vector<uint64_t>{0, 0, 1, 2, 4, 6, 8},
          std::vector<VertexId>{2, 1, 4, 5, 3, 5, 3, 4});
  g.BuildAdjacencyIndex();
  ExpectIndexMatchesReference(g);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(3, 5));
}

TEST(AdjacencyIndexTest, MemoryBudgetCapsHubRows) {
  Rng rng(13);
  Graph g = BarabasiAlbert(500, 4, rng);
  AdjacencyIndexOptions tight;
  tight.min_hub_degree = 1;
  tight.hub_memory_budget = 3 * ((500 + 63) / 64) * 8;  // room for 3 rows
  Graph indexed = g;
  indexed.BuildAdjacencyIndex(tight);
  EXPECT_LE(indexed.adjacency_index()->bitset_bytes(),
            tight.hub_memory_budget);
  EXPECT_LE(indexed.adjacency_index()->num_hubs(), 3u);
  ExpectIndexMatchesReference(indexed);

  AdjacencyIndexOptions none;
  none.hub_memory_budget = 0;  // no rows fit: signatures + search only
  Graph unhubbed = g;
  unhubbed.BuildAdjacencyIndex(none);
  EXPECT_EQ(unhubbed.adjacency_index()->num_hubs(), 0u);
  ExpectIndexMatchesReference(unhubbed);
}

TEST(AdjacencyIndexTest, BuildIsThreadCountInvariant) {
  Rng rng(14);
  const Graph g = HolmeKim(800, 4, 0.4, rng);
  std::vector<Graph> copies;
  for (unsigned threads : {1u, 2u, 7u}) {
    AdjacencyIndexOptions options;
    options.min_hub_degree = 8;
    options.threads = threads;
    Graph indexed = g;
    indexed.BuildAdjacencyIndex(options);
    copies.push_back(indexed);
  }
  for (const Graph& indexed : copies) {
    EXPECT_EQ(indexed.adjacency_index()->num_hubs(),
              copies[0].adjacency_index()->num_hubs());
    EXPECT_EQ(indexed.adjacency_index()->hub_threshold(),
              copies[0].adjacency_index()->hub_threshold());
    ExpectIndexMatchesReference(indexed);
  }
}

TEST(AdjacencyIndexTest, RandomPairsOnLargerGraph) {
  Rng rng(15);
  Graph g = HolmeKim(5000, 5, 0.3, rng);
  g.BuildAdjacencyIndex();
  Rng pairs(99);
  for (int i = 0; i < 200000; ++i) {
    const auto u = static_cast<VertexId>(pairs.UniformInt(g.NumNodes()));
    const auto v = static_cast<VertexId>(pairs.UniformInt(g.NumNodes()));
    ASSERT_EQ(g.HasEdge(u, v), g.HasEdgeBinarySearch(u, v))
        << "u=" << u << " v=" << v;
  }
  // Positive queries: every CSR edge must be found.
  for (VertexId u = 0; u < g.NumNodes(); ++u) {
    for (VertexId w : g.Neighbors(u)) {
      ASSERT_TRUE(g.HasEdge(u, w));
    }
  }
}

TEST(GdEnumerationTest, AcceleratedMatchesReference) {
  Rng rng(21);
  const Graph g = HolmeKim(600, 4, 0.5, rng);
  for (int d : {3, 4, 5}) {
    SubgraphWalk walk(g, d);
    Rng walk_rng(7 * d);
    walk.Reset(walk_rng);
    GdScratch scratch;  // reused across states: catches stale-state bugs
    for (int step = 0; step < 40; ++step) {
      std::vector<VertexId> fast;
      std::vector<VertexId> reference;
      const uint64_t count =
          EnumerateGdNeighbors(g, walk.Nodes(), &fast, scratch);
      EnumerateGdNeighborsReference(g, walk.Nodes(), &reference);
      ASSERT_EQ(fast, reference) << "d=" << d << " step=" << step;
      ASSERT_EQ(count, fast.size() / d);
      ASSERT_EQ(SubgraphStateDegree(g, walk.Nodes(), scratch), count);
      walk.Step(walk_rng);
    }
  }
}

TEST(GdEnumerationTest, MatchesReferenceWithIndexAttached) {
  Rng rng(22);
  Graph plain = HolmeKim(600, 4, 0.5, rng);
  Graph indexed = plain;
  AdjacencyIndexOptions options;
  options.min_hub_degree = 8;
  indexed.BuildAdjacencyIndex(options);

  SubgraphWalk walk(plain, 4);
  Rng walk_rng(5);
  walk.Reset(walk_rng);
  GdScratch scratch;
  for (int step = 0; step < 40; ++step) {
    std::vector<VertexId> with_index;
    std::vector<VertexId> without;
    EnumerateGdNeighbors(indexed, walk.Nodes(), &with_index, scratch);
    EnumerateGdNeighbors(plain, walk.Nodes(), &without, scratch);
    ASSERT_EQ(with_index, without) << "step=" << step;
    walk.Step(walk_rng);
  }
}

// The headline guarantee: estimates are bit-identical with the index on
// or off, for the same seed — every double in the result compares equal.
void ExpectBitIdentical(const EstimateResult& a, const EstimateResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight " << i;
    EXPECT_EQ(a.concentrations[i], b.concentrations[i]) << "conc " << i;
    EXPECT_EQ(a.samples[i], b.samples[i]) << "samples " << i;
  }
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.valid_samples, b.valid_samples);
}

TEST(AdjacencyDeterminismTest, EstimatesBitIdenticalIndexOnOff) {
  Rng rng(31);
  Graph plain = HolmeKim(1500, 5, 0.4, rng);
  Graph indexed = plain;
  AdjacencyIndexOptions options;
  options.min_hub_degree = 8;
  indexed.BuildAdjacencyIndex(options);

  for (const auto& [k, d, css] : std::vector<std::tuple<int, int, bool>>{
           {4, 2, true}, {4, 3, false}, {5, 2, false}, {5, 4, false}}) {
    EstimatorConfig config;
    config.k = k;
    config.d = d;
    config.css = css;
    const uint64_t steps = d >= 4 ? 300 : 5000;
    const EstimateResult off =
        GraphletEstimator::Estimate(plain, config, steps, 1234);
    const EstimateResult on =
        GraphletEstimator::Estimate(indexed, config, steps, 1234);
    ExpectBitIdentical(on, off);
  }
}

TEST(AdjacencyDeterminismTest, EngineBitIdenticalIndexOnOffAnyThreads) {
  Rng rng(32);
  Graph plain = HolmeKim(1200, 4, 0.4, rng);
  Graph indexed = plain;
  indexed.BuildAdjacencyIndex();

  EstimatorConfig config;
  config.k = 4;
  config.d = 2;
  config.css = true;

  EngineOptions options;
  options.chains = 4;
  options.max_steps = 4000;
  options.base_seed = 77;

  std::vector<EstimateResult> merged;
  for (const Graph* g : {&plain, &indexed}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      EngineOptions run_options = options;
      run_options.threads = threads;
      EstimationEngine engine(*g, config, run_options);
      merged.push_back(engine.Run().merged);
    }
  }
  for (size_t i = 1; i < merged.size(); ++i) {
    ExpectBitIdentical(merged[i], merged[0]);
  }
}

TEST(SimdParityTest, SignatureProbeBatchAvx2MatchesScalarOnRandomBatches) {
  // Randomized property: the AVX2 and scalar signature-rejection kernels
  // compute the same admit mask on every batch — random signatures
  // (including all-ones/all-zeros extremes), random candidate ids across
  // the whole 32-bit range, random counts 0..64.
  if (!SignatureProbeBatchHasAvx2()) {
    GTEST_SKIP() << "no AVX2 at runtime; dispatched path is scalar";
  }
  Rng rng(20240607);
  std::vector<VertexId> candidates(64);
  for (int trial = 0; trial < 10000; ++trial) {
    uint64_t signature = rng();
    if (trial % 97 == 0) signature = 0;
    if (trial % 89 == 0) signature = ~0ull;
    const int count = static_cast<int>(rng.UniformInt(65));
    for (int i = 0; i < count; ++i) {
      // Mix small ids (realistic) with full-range ids (overflow probes
      // for the split 32x32->64 multiply in the vector path).
      candidates[i] = (trial % 2 == 0)
                          ? static_cast<VertexId>(rng.UniformInt(100000))
                          : static_cast<VertexId>(rng());
    }
    const uint64_t scalar =
        SignatureProbeBatchScalar(signature, candidates.data(), count);
    const uint64_t avx2 =
        SignatureProbeBatchAvx2(signature, candidates.data(), count);
    ASSERT_EQ(scalar, avx2)
        << "trial " << trial << " count " << count << " sig " << signature;
    ASSERT_EQ(SignatureProbeBatch(signature, candidates.data(), count),
              scalar);
    if (count < 64) {
      // Lanes past count must never leak into the mask.
      ASSERT_EQ(scalar >> count, 0ull);
    }
  }
}

TEST(SimdParityTest, PairProbeBatchAvx2MatchesScalarOnRandomBatches) {
  // Same property for the gathered pair-probe kernel: per-pair admit
  // verdicts from the index's signature array, AVX2 vs scalar, on random
  // vertex pairs of a real indexed graph.
  if (!SignatureProbeBatchHasAvx2()) {
    GTEST_SKIP() << "no AVX2 at runtime; dispatched path is scalar";
  }
  Rng graph_rng(13);
  Graph g = BarabasiAlbert(500, 4, graph_rng);
  g.BuildAdjacencyIndex();
  const AdjacencyIndex& index = *g.adjacency_index();
  Rng rng(20240608);
  std::vector<VertexId> us(64);
  std::vector<VertexId> vs(64);
  for (int trial = 0; trial < 10000; ++trial) {
    const int count = static_cast<int>(rng.UniformInt(65));
    for (int i = 0; i < count; ++i) {
      us[i] = static_cast<VertexId>(rng.UniformInt(g.NumNodes()));
      vs[i] = static_cast<VertexId>(rng.UniformInt(g.NumNodes()));
    }
    const uint64_t scalar =
        index.PairProbeBatchScalar(us.data(), vs.data(), count);
    const uint64_t avx2 =
        index.PairProbeBatchAvx2(us.data(), vs.data(), count);
    ASSERT_EQ(scalar, avx2) << "trial " << trial << " count " << count;
    ASSERT_EQ(index.PairProbeBatch(us.data(), vs.data(), count), scalar);
    if (count < 64) {
      ASSERT_EQ(scalar >> count, 0ull);
    }
    // Soundness spot check: an admitted=0 pair is never a real edge (the
    // signature filter has no false negatives).
    for (int i = 0; i < count; ++i) {
      if (((scalar >> i) & 1ull) == 0) {
        ASSERT_FALSE(g.HasEdge(us[i], vs[i]))
            << "filter rejected a real edge " << us[i] << "-" << vs[i];
      }
    }
  }
}

TEST(SimdParityTest, VectorContainsAvx2MatchesLinearScanOnSortedLists) {
  // Same property for the branchless masked membership scan that
  // resolves short/mid lists in HasEdge: identical verdicts to the
  // scalar early-exit scan on every sorted list — random lengths 0..80
  // (crossing several 16-entry blocks), probes mixing present entries,
  // absent in-range values, below-front and past-back values, and id 0
  // (which must not alias the masked load's zero fill).
  if (!SignatureProbeBatchHasAvx2()) {
    GTEST_SKIP() << "no AVX2 at runtime; dispatched path is scalar";
  }
  Rng rng(20240609);
  for (int trial = 0; trial < 10000; ++trial) {
    const size_t len = rng.UniformInt(81);
    std::vector<VertexId> list(len);
    for (size_t i = 0; i < len; ++i) {
      list[i] = (trial % 2 == 0)
                    ? static_cast<VertexId>(rng.UniformInt(200))
                    : static_cast<VertexId>(rng());
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    for (int probe = 0; probe < 8; ++probe) {
      VertexId v;
      switch (probe) {
        case 0: v = 0; break;
        case 1: v = ~VertexId{0}; break;
        case 2:
          v = list.empty() ? 7
                           : list[rng.UniformInt(list.size())];  // present
          break;
        default: v = static_cast<VertexId>(rng()); break;
      }
      const bool scalar =
          AdjacencyIndex::LinearContains(list.data(), list.size(), v);
      const bool avx2 =
          AdjacencyIndex::VectorContainsAvx2(list.data(), list.size(), v);
      ASSERT_EQ(scalar, avx2)
          << "trial " << trial << " len " << list.size() << " v " << v;
      ASSERT_EQ(scalar, std::binary_search(list.begin(), list.end(), v));
    }
  }
}

TEST(GraphTest, MaxDegreeCachedAndSharedAcrossCopies) {
  Rng rng(41);
  const Graph g = BarabasiAlbert(300, 3, rng);
  uint32_t expected = 0;
  for (VertexId v = 0; v < g.NumNodes(); ++v) {
    expected = std::max(expected, g.Degree(v));
  }
  EXPECT_EQ(g.MaxDegree(), expected);
  EXPECT_EQ(g.MaxDegree(), expected);  // cached path
  const Graph copy = g;                // copies share the cache
  EXPECT_EQ(copy.MaxDegree(), expected);
}

}  // namespace
}  // namespace grw
