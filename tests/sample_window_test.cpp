// Tests for the incremental sample window (paper Section 5).

#include "core/sample_window.h"

#include <gtest/gtest.h>

#include <array>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "walk/edge_walk.h"
#include "walk/node_walk.h"

namespace grw {
namespace {

TEST(SampleWindowTest, NodeWalkWindowTracksUnionAndValidity) {
  // Path 0-1-2-3: window of 3 single-node states.
  const Graph g = Path(4);
  SampleWindow window(g, /*k=*/3, /*l=*/3);
  const std::array<VertexId, 1> s0 = {0};
  const std::array<VertexId, 1> s1 = {1};
  const std::array<VertexId, 1> s2 = {2};
  window.Push(s0, 1);
  EXPECT_FALSE(window.Full());
  window.Push(s1, 2);
  window.Push(s2, 2);
  EXPECT_TRUE(window.Full());
  ASSERT_TRUE(window.Valid());
  // Union order = first appearance; mask = path 0-1-2 (edges (0,1),(1,2)).
  const auto nodes = window.UnionNodes();
  EXPECT_EQ(nodes[0], 0u);
  EXPECT_EQ(nodes[1], 1u);
  EXPECT_EQ(nodes[2], 2u);
  EXPECT_EQ(window.Mask(), MaskFromEdges(3, {{0, 1}, {1, 2}}));
  EXPECT_EQ(window.Mask(), window.MaskNaive());
}

TEST(SampleWindowTest, BacktrackingWindowIsInvalid) {
  // Walk 0 -> 1 -> 0 covers only 2 distinct nodes ("invalid sample",
  // paper Figure 3).
  const Graph g = Path(4);
  SampleWindow window(g, 3, 3);
  const std::array<VertexId, 1> a = {0};
  const std::array<VertexId, 1> b = {1};
  window.Push(a, 1);
  window.Push(b, 2);
  window.Push(a, 1);
  EXPECT_TRUE(window.Full());
  EXPECT_FALSE(window.Valid());
}

TEST(SampleWindowTest, SlidingEvictsAndRevalidates) {
  const Graph g = Path(5);
  SampleWindow window(g, 3, 3);
  const std::array<VertexId, 1> n0 = {0};
  const std::array<VertexId, 1> n1 = {1};
  const std::array<VertexId, 1> n2 = {2};
  const std::array<VertexId, 1> n3 = {3};
  window.Push(n0, 1);
  window.Push(n1, 2);
  window.Push(n0, 1);  // backtrack: invalid
  EXPECT_FALSE(window.Valid());
  window.Push(n1, 2);  // window now 0,1... wait: states 0,1,0 -> 1,0,1
  EXPECT_FALSE(window.Valid());
  window.Push(n2, 2);  // 0,1,2
  EXPECT_TRUE(window.Valid());
  window.Push(n3, 2);  // 1,2,3
  ASSERT_TRUE(window.Valid());
  const auto nodes = window.UnionNodes();
  EXPECT_EQ(nodes[0], 1u);
  EXPECT_EQ(nodes[1], 2u);
  EXPECT_EQ(nodes[2], 3u);
}

TEST(SampleWindowTest, StateDegreesAreRetrievable) {
  const Graph g = Path(5);
  SampleWindow window(g, 3, 3);
  const std::array<VertexId, 1> n0 = {0};
  const std::array<VertexId, 1> n1 = {1};
  const std::array<VertexId, 1> n2 = {2};
  window.Push(n0, 0);
  window.SetNewestDegree(1);
  window.Push(n1, 0);
  window.SetNewestDegree(2);
  window.Push(n2, 0);
  window.SetNewestDegree(2);
  EXPECT_EQ(window.State(0).degree, 1u);
  EXPECT_EQ(window.State(1).degree, 2u);
  EXPECT_EQ(window.State(2).degree, 2u);
}

TEST(SampleWindowTest, EdgeStatesShareNodesCorrectly) {
  // Triangle 0-1-2 plus pendant 3 on node 2; edge-walk window (k=4, l=3).
  const Graph g = FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  SampleWindow window(g, 4, 3);
  const std::array<VertexId, 2> e01 = {0, 1};
  const std::array<VertexId, 2> e12 = {1, 2};
  const std::array<VertexId, 2> e23 = {2, 3};
  window.Push(e01, 0);
  window.Push(e12, 0);
  window.Push(e23, 0);
  ASSERT_TRUE(window.Valid());
  // Union in first-appearance order: 0,1,2,3. Induced = tailed triangle.
  EXPECT_EQ(window.Mask(),
            MaskFromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}));
  EXPECT_EQ(window.Mask(), window.MaskNaive());
}

TEST(SampleWindowTest, IncrementalMatchesNaiveUnderRandomWalks) {
  // Property sweep: run real walks and assert the incremental adjacency
  // equals the naive recomputation at every valid window.
  Rng rng(123);
  const Graph g = LargestConnectedComponent(HolmeKim(200, 4, 0.5, rng));
  {
    NodeWalk walk(g);
    walk.Reset(rng);
    SampleWindow window(g, 4, 4);
    for (int s = 0; s < 20000; ++s) {
      walk.Step(rng);
      window.Push(walk.Nodes(), 0);
      if (window.Valid()) {
        EXPECT_EQ(window.Mask(), window.MaskNaive());
      }
    }
  }
  {
    EdgeWalk walk(g);
    walk.Reset(rng);
    SampleWindow window(g, 5, 4);
    for (int s = 0; s < 20000; ++s) {
      walk.Step(rng);
      window.Push(walk.Nodes(), 0);
      if (window.Valid()) {
        EXPECT_EQ(window.Mask(), window.MaskNaive());
      }
    }
  }
}

TEST(SampleWindowTest, ClearResetsEverything) {
  const Graph g = Path(5);
  SampleWindow window(g, 3, 3);
  const std::array<VertexId, 1> n0 = {0};
  const std::array<VertexId, 1> n1 = {1};
  const std::array<VertexId, 1> n2 = {2};
  window.Push(n0, 1);
  window.Push(n1, 2);
  window.Push(n2, 2);
  EXPECT_TRUE(window.Valid());
  window.Clear();
  EXPECT_FALSE(window.Full());
  EXPECT_EQ(window.UnionNodes().size(), 0u);
}

}  // namespace
}  // namespace grw
