// Kernel-equivalence suite for the batched walk stack: lane k of a
// BatchedWalkT driven by RNG stream k must reproduce, transition for
// transition, the scalar walker driven by the same stream — states,
// G(d)-degrees, crawl accounting, estimator accumulators and engine
// merges all bit-identical. The batching is allowed to reorder memory
// traffic, never randomness; these tests hold that contract at every
// layer that adopts the batched kernels.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "core/batched_estimator.h"
#include "core/estimator.h"
#include "engine/engine.h"
#include "graph/access.h"
#include "graph/adjacency.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "walk/batched_walk.h"
#include "walk/edge_walk.h"
#include "walk/node_walk.h"
#include "walk/subgraph_walk.h"

namespace grw {
namespace {

// Heavy-tailed and clustered, like the paper's OSN snapshots: triad
// closure makes d >= 3 states plentiful and hub rows long enough to
// exercise the signature-rejection batches.
Graph PlainTestGraph() {
  Rng rng(7);
  return LargestConnectedComponent(HolmeKim(1500, 4, 0.4, rng));
}

Graph IndexedTestGraph() {
  Graph g = PlainTestGraph();
  g.BuildAdjacencyIndex();
  return g;
}

template <class G>
std::unique_ptr<StateWalker> MakeScalarWalker(const G& g, int d, bool nb) {
  if (d == 1) return std::make_unique<NodeWalkT<G>>(g, nb);
  if (d == 2) return std::make_unique<EdgeWalkT<G>>(g, nb);
  return std::make_unique<SubgraphWalkT<G>>(g, d, nb);
}

std::vector<VertexId> ToVector(std::span<const VertexId> nodes) {
  return {nodes.begin(), nodes.end()};
}

// The core contract: every lane's state sequence and state degrees match
// the scalar chain with the same stream, step for step.
template <class G>
void ExpectLanesMatchScalar([[maybe_unused]] const G& g,
                            BatchedWalkT<G>& batched,
                            std::vector<std::unique_ptr<StateWalker>>& scalar,
                            uint64_t base_seed, int steps,
                            bool exercise_fallbacks = false) {
  const int lanes = batched.lanes();
  std::vector<Rng> lane_rng(lanes);
  std::vector<Rng> chain_rng(lanes);
  for (int j = 0; j < lanes; ++j) {
    lane_rng[j].Seed(DeriveSeed(base_seed, j));
    chain_rng[j].Seed(DeriveSeed(base_seed, j));
    batched.ResetLane(j, lane_rng[j]);
    scalar[j]->Reset(chain_rng[j]);
    ASSERT_EQ(ToVector(batched.LaneNodes(j)), ToVector(scalar[j]->Nodes()))
        << "lane " << j << " after Reset";
  }
  for (int s = 0; s < steps; ++s) {
    if (!exercise_fallbacks || s % 2 == 0) {
      batched.PrepareLanes();
      // A second PrepareLanes must be a no-op (lanes already fresh).
      if (exercise_fallbacks) batched.PrepareLanes();
    }  // odd steps with exercise_fallbacks: StepLane prepares per lane
    for (int j = 0; j < lanes; ++j) {
      ASSERT_EQ(batched.LaneStateDegree(j), scalar[j]->StateDegree())
          << "lane " << j << " step " << s;
      if (exercise_fallbacks) {
        // Degree queries are cached and repeatable.
        ASSERT_EQ(batched.LaneStateDegree(j), scalar[j]->StateDegree());
      }
      batched.StepLane(j, lane_rng[j]);
      scalar[j]->Step(chain_rng[j]);
      ASSERT_EQ(ToVector(batched.LaneNodes(j)), ToVector(scalar[j]->Nodes()))
          << "lane " << j << " step " << s;
    }
  }
}

TEST(BatchedWalkTest, LanesBitIdenticalToScalarChainsFullAccess) {
  const Graph plain = PlainTestGraph();
  const Graph indexed = IndexedTestGraph();
  for (const Graph* g : {&plain, &indexed}) {
    for (int d : {1, 2, 3, 4}) {
      for (int lanes : {1, 4, 8, 16}) {
        for (bool nb : {false, true}) {
          SCOPED_TRACE("d=" + std::to_string(d) +
                       " lanes=" + std::to_string(lanes) +
                       " nb=" + std::to_string(nb) + " indexed=" +
                       std::to_string(g->adjacency_index() != nullptr));
          BatchedWalk batched(*g, d, lanes, nb);
          std::vector<std::unique_ptr<StateWalker>> scalar;
          for (int j = 0; j < lanes; ++j) {
            scalar.push_back(MakeScalarWalker(*g, d, nb));
          }
          const int steps = d >= 3 ? 60 : 200;
          ExpectLanesMatchScalar(*g, batched, scalar,
                                 /*base_seed=*/9000 + d, steps);
        }
      }
    }
  }
}

TEST(BatchedWalkTest, PreparationIsOptionalAndCachesAreReusable) {
  // Skipping PrepareLanes (per-lane fallback), calling it twice, and
  // repeating LaneStateDegree must not move a single transition.
  const Graph g = IndexedTestGraph();
  for (int d : {2, 3, 4}) {
    SCOPED_TRACE("d=" + std::to_string(d));
    BatchedWalk batched(g, d, /*lanes=*/5, /*nb=*/d == 3);
    std::vector<std::unique_ptr<StateWalker>> scalar;
    for (int j = 0; j < 5; ++j) {
      scalar.push_back(MakeScalarWalker(g, d, d == 3));
    }
    ExpectLanesMatchScalar(g, batched, scalar, /*base_seed=*/77, 60,
                           /*exercise_fallbacks=*/true);
  }
}

TEST(BatchedWalkTest, CrawlLanesMatchScalarChainsAndAccounting) {
  // Crawl lanes read through private access objects; the kernel must
  // make exactly the scalar walker's access calls — same states AND same
  // per-lane query accounting.
  const Graph g = PlainTestGraph();
  for (int d : {3, 4}) {
    SCOPED_TRACE("d=" + std::to_string(d));
    constexpr int kLanes = 4;
    std::vector<std::unique_ptr<CrawlAccess>> lane_access;
    std::vector<std::unique_ptr<CrawlAccess>> chain_access;
    std::vector<const CrawlAccess*> lane_ptrs;
    for (int j = 0; j < kLanes; ++j) {
      lane_access.push_back(std::make_unique<CrawlAccess>(g, CrawlAccess::Options{}));
      chain_access.push_back(std::make_unique<CrawlAccess>(g, CrawlAccess::Options{}));
      lane_ptrs.push_back(lane_access[j].get());
    }
    BatchedWalkT<CrawlAccess> batched(
        std::span<const CrawlAccess* const>(lane_ptrs), d);
    std::vector<std::unique_ptr<StateWalker>> scalar;
    for (int j = 0; j < kLanes; ++j) {
      scalar.push_back(MakeScalarWalker(*chain_access[j], d, false));
    }
    ExpectLanesMatchScalar(*lane_ptrs[0], batched, scalar,
                           /*base_seed=*/4242, 60);
    for (int j = 0; j < kLanes; ++j) {
      const CrawlStats& lane = lane_access[j]->stats();
      const CrawlStats& chain = chain_access[j]->stats();
      EXPECT_EQ(lane.fetches, chain.fetches) << "lane " << j;
      EXPECT_EQ(lane.distinct_fetches, chain.distinct_fetches)
          << "lane " << j;
      EXPECT_EQ(lane.cache_hits, chain.cache_hits) << "lane " << j;
    }
  }
}

void ExpectBitIdentical(const EstimateResult& a, const EstimateResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight " << i;
    EXPECT_EQ(a.concentrations[i], b.concentrations[i]) << "conc " << i;
    EXPECT_EQ(a.samples[i], b.samples[i]) << "samples " << i;
  }
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.valid_samples, b.valid_samples);
}

TEST(BatchedEstimatorTest, LanesBitIdenticalToScalarEstimators) {
  const Graph g = IndexedTestGraph();
  const std::vector<EstimatorConfig> configs = {
      {3, 1, true, true, 0},    // SRW1CSSNB: NodeWalk + CSS table
      {4, 2, true, false, 0},   // SRW2CSS:   EdgeWalk + CSS table
      {5, 3, false, false, 0},  // SRW3:      G(d) enumeration
      {5, 4, false, true, 0},   // SRW4NB:    deeper window, NB rejection
  };
  constexpr int kLanes = 6;
  constexpr uint64_t kBase = 555;
  for (const EstimatorConfig& config : configs) {
    SCOPED_TRACE(config.Name());
    const uint64_t steps = config.d >= 3 ? 300 : 3000;
    BatchedEstimator batched(g, config, kLanes);
    batched.Reset(kBase, /*first_stream=*/3);
    batched.Run(steps);
    for (int j = 0; j < kLanes; ++j) {
      const EstimateResult scalar = GraphletEstimator::Estimate(
          g, config, steps, DeriveSeed(kBase, 3 + j));
      ExpectBitIdentical(batched.Result(j), scalar);
    }
  }
}

TEST(BatchedEngineTest, MergedBitIdenticalToScalarAnyThreadsAnyLanes) {
  // The headline guarantee: flipping batch mode on — at any lane width,
  // at any thread count — moves no double in the engine result.
  const Graph g = IndexedTestGraph();
  EstimatorConfig config;
  config.k = 4;
  config.d = 2;
  config.css = true;

  EngineOptions options;
  options.chains = 5;
  options.max_steps = 3000;
  options.base_seed = 77;
  options.chain_offset = 2;

  EstimationEngine scalar_engine(g, config, options);
  const EngineResult reference = scalar_engine.Run();

  for (int lanes : {1, 3, 8}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " threads=" + std::to_string(threads));
      EngineOptions run = options;
      run.threads = threads;
      run.batch.enabled = true;
      run.batch.lanes = lanes;
      EstimationEngine engine(g, config, run);
      const EngineResult result = engine.Run();
      ExpectBitIdentical(result.merged, reference.merged);
      ASSERT_EQ(result.per_chain.size(), reference.per_chain.size());
      for (size_t c = 0; c < reference.per_chain.size(); ++c) {
        ExpectBitIdentical(result.per_chain[c], reference.per_chain[c]);
      }
    }
  }
}

TEST(BatchedEngineTest, CrawlBudgetStopBitIdenticalToScalar) {
  // Budget verdicts are per chain; the batched grouping must neither
  // move a chain's stop point nor its query accounting.
  const Graph g = PlainTestGraph();
  EstimatorConfig config;
  config.k = 5;
  config.d = 3;

  EngineOptions options;
  options.chains = 4;
  options.max_steps = 2000;
  options.base_seed = 913;
  options.round_steps = 256;
  options.crawl.enabled = true;
  options.crawl.budget_queries = 800;

  EstimationEngine scalar_engine(g, config, options);
  const EngineResult reference = scalar_engine.Run();
  EXPECT_TRUE(reference.budget_exhausted);

  for (unsigned threads : {1u, 2u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EngineOptions run = options;
    run.threads = threads;
    run.batch.enabled = true;
    run.batch.lanes = 4;
    EstimationEngine engine(g, config, run);
    const EngineResult result = engine.Run();
    ExpectBitIdentical(result.merged, reference.merged);
    EXPECT_EQ(result.budget_exhausted, reference.budget_exhausted);
    EXPECT_EQ(result.rounds, reference.rounds);
    ASSERT_EQ(result.per_chain_access.size(),
              reference.per_chain_access.size());
    for (size_t c = 0; c < reference.per_chain_access.size(); ++c) {
      EXPECT_EQ(result.per_chain_access[c].fetches,
                reference.per_chain_access[c].fetches)
          << "chain " << c;
      EXPECT_EQ(result.per_chain_access[c].distinct_fetches,
                reference.per_chain_access[c].distinct_fetches)
          << "chain " << c;
      EXPECT_EQ(result.per_chain_access[c].cache_hits,
                reference.per_chain_access[c].cache_hits)
          << "chain " << c;
    }
  }
}

TEST(BatchedEngineTest, RejectsInvalidBatchConfigs) {
  const Graph g = PlainTestGraph();
  EstimatorConfig config;
  EngineOptions options;
  options.batch.enabled = true;
  options.batch.lanes = 0;
  EXPECT_THROW(EstimationEngine(g, config, options), std::invalid_argument);
  options.batch.lanes = 8;
  EXPECT_THROW(RunMultiSizeEngine(g, 2, {4}, false, false, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace grw
