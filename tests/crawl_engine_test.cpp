// Tests for the restricted-access (crawl) estimation path: the CrawlAccess
// policy threaded through the estimator stack must leave every estimate
// bit-identical to full access (the policy changes cost accounting, never
// sampling), and the engine's distinct-query budget stop must land on the
// same step at any thread count.

#include <gtest/gtest.h>

#include <vector>

#include "core/estimator.h"
#include "engine/engine.h"
#include "graph/access.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace grw {
namespace {

Graph TestGraph() {
  Rng rng(7);
  return LargestConnectedComponent(HolmeKim(3000, 4, 0.4, rng));
}

void ExpectSameEstimate(const EstimateResult& a, const EstimateResult& b) {
  ASSERT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.valid_samples, b.valid_samples);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    // Bit-identical, not approximately equal: the access policy must not
    // change a single RNG draw or floating-point operation.
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight " << i;
    EXPECT_EQ(a.concentrations[i], b.concentrations[i]) << "conc " << i;
    EXPECT_EQ(a.samples[i], b.samples[i]) << "samples " << i;
  }
}

TEST(CrawlEstimatorTest, BitIdenticalToFullAccessAcrossConfigs) {
  const Graph g = TestGraph();
  // One config per walk dimension, CSS on and off, NB on: every policy
  // read path (walker transition, window probe, CSS degree, G(d)
  // enumeration) is exercised.
  const std::vector<EstimatorConfig> configs = {
      {3, 1, true, true, 0},    // SRW1CSSNB: NodeWalk + CSS table
      {4, 2, true, false, 0},   // SRW2CSS:   EdgeWalk + CSS table
      {4, 2, false, false, 0},  // SRW2:      interior-degree weights
      {5, 3, false, false, 0},  // SRW3:      SubgraphWalk enumeration
  };
  for (const EstimatorConfig& config : configs) {
    const uint64_t steps = config.d >= 3 ? 500 : 5000;
    const EstimateResult full =
        GraphletEstimator::Estimate(g, config, steps, 99);
    CrawlAccess crawl(g, {});
    const EstimateResult crawled =
        GraphletEstimatorT<CrawlAccess>::Estimate(crawl, config, steps, 99);
    SCOPED_TRACE(config.Name());
    ExpectSameEstimate(full, crawled);
    EXPECT_GT(crawl.stats().distinct_fetches, 0u);
  }
}

TEST(CrawlEstimatorTest, CacheSizeOneMatchesUnboundedEstimates) {
  // The LRU capacity moves cost (fetches/evictions), never results: the
  // degenerate one-entry cache must produce the same estimate as the
  // unbounded one, while paying visibly more fetches.
  const Graph g = TestGraph();
  const EstimatorConfig config{4, 2, true, false, 0};

  CrawlAccess unbounded(g, {});
  const EstimateResult a =
      GraphletEstimatorT<CrawlAccess>::Estimate(unbounded, config, 5000, 3);

  CrawlAccess::Options tiny_opt;
  tiny_opt.cache_entries = 1;
  CrawlAccess tiny(g, tiny_opt);
  const EstimateResult b =
      GraphletEstimatorT<CrawlAccess>::Estimate(tiny, config, 5000, 3);

  ExpectSameEstimate(a, b);
  EXPECT_EQ(unbounded.stats().evictions, 0u);
  EXPECT_GT(tiny.stats().evictions, 0u);
  EXPECT_GT(tiny.stats().fetches, unbounded.stats().fetches);
  EXPECT_EQ(tiny.stats().distinct_fetches,
            unbounded.stats().distinct_fetches);
}

TEST(CrawlEngineTest, CrawlRunMatchesFullAccessRunAtAnyThreadCount) {
  const Graph g = TestGraph();
  const EstimatorConfig config{4, 2, true, false, 0};
  EngineOptions base;
  base.chains = 4;
  base.max_steps = 4000;
  base.base_seed = 11;
  base.round_steps = 512;

  EngineOptions full_options = base;
  const EngineResult full =
      EstimationEngine(g, config, full_options).Run();

  for (unsigned threads : {1u, 2u, 8u}) {
    EngineOptions crawl_options = base;
    crawl_options.threads = threads;
    crawl_options.crawl.enabled = true;
    const EngineResult crawled =
        EstimationEngine(g, config, crawl_options).Run();
    SCOPED_TRACE(threads);
    ExpectSameEstimate(full.merged, crawled.merged);
    ASSERT_EQ(crawled.per_chain_access.size(), 4u);
    EXPECT_FALSE(crawled.budget_exhausted);  // no budget set
  }
}

TEST(CrawlEngineTest, BudgetStopIsDeterministicAcrossThreadCounts) {
  const Graph g = TestGraph();
  const EstimatorConfig config{4, 2, true, false, 0};
  constexpr uint64_t kBudget = 1500;

  EngineResult reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    EngineOptions options;
    options.chains = 3;
    options.threads = threads;
    options.max_steps = 100000;  // budget must stop the run well before
    options.base_seed = 5;
    options.round_steps = 256;
    options.crawl.enabled = true;
    options.crawl.budget_queries = kBudget;
    const EngineResult run = EstimationEngine(g, config, options).Run();

    EXPECT_TRUE(run.budget_exhausted);
    EXPECT_LT(run.merged.steps, 3u * options.max_steps);
    // Every chain spent at least its share; the total can overshoot only
    // by the final step's fetches per chain.
    EXPECT_GE(run.access.distinct_fetches, kBudget);
    EXPECT_LE(run.access.distinct_fetches, kBudget + 3 * 32);

    if (threads == 1u) {
      reference = run;
      continue;
    }
    SCOPED_TRACE(threads);
    // Same stop point, same estimate, same accounting — the budget
    // verdict is per-chain, so the thread schedule cannot move it.
    ExpectSameEstimate(reference.merged, run.merged);
    EXPECT_EQ(reference.rounds, run.rounds);
    ASSERT_EQ(reference.per_chain_access.size(),
              run.per_chain_access.size());
    for (size_t c = 0; c < run.per_chain_access.size(); ++c) {
      EXPECT_EQ(reference.per_chain_access[c].fetches,
                run.per_chain_access[c].fetches);
      EXPECT_EQ(reference.per_chain_access[c].distinct_fetches,
                run.per_chain_access[c].distinct_fetches);
      EXPECT_EQ(reference.per_chain_access[c].cache_hits,
                run.per_chain_access[c].cache_hits);
      EXPECT_EQ(reference.per_chain[c].steps, run.per_chain[c].steps);
    }
  }
}

TEST(CrawlEngineTest, AccessStatsSumOverChains) {
  const Graph g = TestGraph();
  const EstimatorConfig config{3, 1, true, true, 0};
  EngineOptions options;
  options.chains = 4;
  options.max_steps = 2000;
  options.crawl.enabled = true;
  options.crawl.cache_entries = 64;
  options.crawl.latency_us = 50.0;
  const EngineResult run = EstimationEngine(g, config, options).Run();

  ASSERT_EQ(run.per_chain_access.size(), 4u);
  CrawlStats sum;
  for (const CrawlStats& chain : run.per_chain_access) {
    sum.MergeFrom(chain);
    EXPECT_GT(chain.fetches, 0u);
    EXPECT_GT(chain.simulated_latency_us, 0.0);
  }
  EXPECT_EQ(sum.fetches, run.access.fetches);
  EXPECT_EQ(sum.distinct_fetches, run.access.distinct_fetches);
  EXPECT_EQ(sum.cache_hits, run.access.cache_hits);
  EXPECT_EQ(sum.evictions, run.access.evictions);
  EXPECT_DOUBLE_EQ(sum.simulated_latency_us,
                   run.access.simulated_latency_us);
  // latency_us accumulates exactly once per fetch.
  EXPECT_DOUBLE_EQ(run.access.simulated_latency_us,
                   50.0 * static_cast<double>(run.access.fetches));
}

TEST(CrawlEngineTest, BudgetSmallerThanChainCountIsRejected) {
  // A zero per-chain share would mean "no budget" and silently overspend
  // the documented total; the engine refuses the degenerate split.
  const Graph g = KarateClub();
  EngineOptions options;
  options.chains = 8;
  options.crawl.enabled = true;
  options.crawl.budget_queries = 2;
  EXPECT_THROW(EstimationEngine(g, {3, 1, false, false, 0}, options),
               std::invalid_argument);
}

TEST(CrawlEngineTest, MultiSizeEngineRejectsCrawlMode) {
  const Graph g = KarateClub();
  EngineOptions options;
  options.crawl.enabled = true;
  EXPECT_THROW(RunMultiSizeEngine(g, 1, {3}, false, false, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace grw
