// Regenerates paper Figure 7: graphlet *count* estimation under the
// full-access assumption, comparing the framework against the
// state-of-the-art memory-based samplers at equal running time:
//   (a) triangle counts — SRW1CSSNB vs wedge sampling,
//   (b) 4-clique counts — SRW2CSS vs path sampling ("3-path").
//
// Protocol follows Section 6.3.2: the baselines run 200K samples (their
// published setting); the framework methods then run for the same wall
// time, converted to steps via a measured step rate (the framework needs
// no preprocessing, which is exactly why it wins on large graphs).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/path_sampling.h"
#include "baselines/wedge_sampling.h"
#include "bench_common.h"
#include "core/estimator.h"
#include "eval/experiment.h"
#include "graphlet/catalog.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

// Measures the steps/second of a method on g (short calibration chain).
double StepsPerSecond(const grw::Graph& g,
                      const grw::EstimatorConfig& config) {
  grw::GraphletEstimator estimator(g, config);
  estimator.Reset(1);
  grw::WallTimer timer;
  const uint64_t probe = 20000;
  estimator.Run(probe);
  return static_cast<double>(probe) / std::max(1e-9, timer.Seconds());
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t baseline_samples = flags.GetUInt64("samples", 200000);
  const int sims = grw::bench::SimCount(flags, 60, 1000);

  std::vector<grw::bench::JsonMetric> metrics;

  // Panel (a): triangle counts, all datasets.
  {
    const auto graphs =
        grw::bench::LoadBenchGraphs(flags, grw::DatasetTier::kLarge);
    const auto& c3 = grw::GraphletCatalog::ForSize(3);
    const int triangle = c3.IdByName("triangle");
    grw::Table table("Figure 7a: NRMSE of triangle count estimation "
                     "(equal running time)");
    table.SetHeader({"Graph", "SRW1CSSNB", "Wedge", "steps@equal-time"});
    for (const auto& bg : graphs) {
      const auto exact = grw::CachedExactCounts(bg.graph, 3, bg.cache_key);
      const std::vector<double> truth(exact.begin(), exact.end());

      // Baseline timing: preprocessing + n samples.
      grw::WallTimer wedge_timer;
      grw::WedgeSampler sampler(bg.graph);
      {
        grw::Rng rng(7);
        sampler.Run(baseline_samples, rng);
      }
      const double wedge_seconds = wedge_timer.Seconds();

      const grw::EstimatorConfig method{3, 1, true, true};
      const double rate = StepsPerSecond(bg.graph, method);
      const uint64_t steps = std::max<uint64_t>(
          1000, static_cast<uint64_t>(rate * wedge_seconds));

      const auto rw_chains =
          grw::RunCountChains(bg.graph, method, steps, sims, 0xf7a);
      const auto wedge_chains = grw::RunCustomChains(sims, [&](int chain) {
        grw::Rng rng(grw::DeriveSeed(0x3ed6e, chain));
        return sampler.Run(baseline_samples, rng).counts;
      });
      table.AddRow({bg.name,
                    grw::Table::Num(
                        grw::NrmseOfType(rw_chains, truth, triangle), 4),
                    grw::Table::Num(
                        grw::NrmseOfType(wedge_chains, truth, triangle), 4),
                    grw::Table::Int(static_cast<long long>(steps))});
    }
    table.Print();
    grw::bench::MaybeWriteCsv(flags, table);
    grw::bench::AppendTableMetrics(table, &metrics, "triangle_");
  }

  // Panel (b): 4-clique counts, datasets with 4-node ground truth.
  {
    const auto graphs =
        grw::bench::LoadBenchGraphs(flags, grw::DatasetTier::kMedium);
    const auto& c4 = grw::GraphletCatalog::ForSize(4);
    const int clique = c4.IdByName("4-clique");
    grw::Table table("Figure 7b: NRMSE of 4-clique count estimation "
                     "(equal running time)");
    table.SetHeader({"Graph", "SRW2CSS", "3-path", "steps@equal-time"});
    for (const auto& bg : graphs) {
      const auto exact = grw::CachedExactCounts(bg.graph, 4, bg.cache_key);
      const std::vector<double> truth(exact.begin(), exact.end());

      grw::WallTimer path_timer;
      grw::PathSampler sampler(bg.graph);
      {
        grw::Rng rng(9);
        sampler.Run(baseline_samples, rng);
      }
      const double path_seconds = path_timer.Seconds();

      const grw::EstimatorConfig method{4, 2, true, false};
      const double rate = StepsPerSecond(bg.graph, method);
      const uint64_t steps = std::max<uint64_t>(
          1000, static_cast<uint64_t>(rate * path_seconds));

      const auto rw_chains =
          grw::RunCountChains(bg.graph, method, steps, sims, 0xf7b);
      const auto path_chains = grw::RunCustomChains(sims, [&](int chain) {
        grw::Rng rng(grw::DeriveSeed(0x9a47, chain));
        return sampler.Run(baseline_samples, rng).counts;
      });
      table.AddRow({bg.name,
                    grw::Table::Num(
                        grw::NrmseOfType(rw_chains, truth, clique), 4),
                    grw::Table::Num(
                        grw::NrmseOfType(path_chains, truth, clique), 4),
                    grw::Table::Int(static_cast<long long>(steps))});
    }
    table.Print();
    grw::bench::AppendTableMetrics(table, &metrics, "clique4_");
  }
  grw::bench::MaybeWriteJson(flags, "bench_fig7_fullaccess",
                             "samples=" + std::to_string(baseline_samples) +
                                 ", sims=" + std::to_string(sims),
                             metrics);
  return 0;
}
