// Access-layer bench: what does restricted (crawl) access cost, and what
// does the query budget buy?
//
// Three sections, mirroring the claims the access layer makes:
//
//   identity      full access vs crawl access with an unbounded cache must
//                 produce bit-identical merged estimates at {1, 2, 8}
//                 threads — the policy moves cost, never results. This is
//                 the CI gate (--check-identical exits 1 on any mismatch).
//   NRMSE/budget  accuracy as a function of the distinct-query budget B:
//                 for each B, independent budget-stopped crawls are scored
//                 against cached exact concentrations (mean NRMSE over
//                 non-negligible types). The paper's Section 6 economics —
//                 accuracy per API call — as a reproducible curve.
//   cache sweep   walk throughput and hit rate as a function of the LRU
//                 capacity at a fixed step count, plus the *effective*
//                 rate once each cache miss is charged --latency-us of
//                 simulated API latency. Shows where the cache stops
//                 paying (capacity ~ working set of the walk).
//
// Flags (besides the bench_common ones --graph/--scale/--csv/--json):
//   --k K --d D --css 0|1 --nb 0|1   estimator config (default SRW2CSS k=4)
//   --sims N            crawls per budget point (default 5)
//   --budgets a,b,c     distinct-query ladder (default 100,...,1200;
//                       points above half the node count are skipped)
//   --caches a,b,c      LRU capacity ladder, 0 = unbounded
//   --steps N           steps for the cache sweep (default 200000)
//   --latency-us L      simulated per-fetch latency (default 200)
//   --check-identical   CI gate: exit 1 unless full == crawl(inf) at
//                       {1,2,8} threads
//
// Writes the BENCH_ACCESS.json perf-trajectory file with --json.

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/estimator.h"
#include "engine/engine.h"
#include "eval/ground_truth.h"
#include "graph/access.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

// "a,b,c" -> {a, b, c}; falls back to `defaults` when the flag is absent.
std::vector<uint64_t> ParseLadder(const grw::Flags& flags,
                                  const std::string& name,
                                  std::vector<uint64_t> defaults) {
  const std::string raw = flags.GetString(name, "");
  if (raw.empty()) return defaults;
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos < raw.size()) {
    const size_t comma = raw.find(',', pos);
    const std::string item =
        raw.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// Mean NRMSE over graphlet types whose exact concentration is at least
// `floor` (rare types are shot-noise-dominated at crawl budgets).
double MeanNrmse(const std::vector<std::vector<double>>& runs,
                 const std::vector<double>& truth, double floor) {
  double sum = 0.0;
  int types = 0;
  for (size_t t = 0; t < truth.size(); ++t) {
    if (truth[t] < floor) continue;
    std::vector<double> estimates;
    estimates.reserve(runs.size());
    for (const auto& run : runs) estimates.push_back(run[t]);
    const double nrmse = grw::Nrmse(estimates, truth[t]);
    if (std::isfinite(nrmse)) {
      sum += nrmse;
      ++types;
    }
  }
  return types > 0 ? sum / types : std::numeric_limits<double>::quiet_NaN();
}

bool SameEstimate(const grw::EstimateResult& a,
                  const grw::EstimateResult& b) {
  if (a.steps != b.steps || a.weights.size() != b.weights.size()) {
    return false;
  }
  for (size_t i = 0; i < a.weights.size(); ++i) {
    // Exact comparison on purpose: the access layer must not perturb a
    // single floating-point operation of the full-access path.
    if (a.weights[i] != b.weights[i]) return false;
    if (a.concentrations[i] != b.concentrations[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);

  grw::EstimatorConfig config;
  config.k = flags.GetInt32("k", 4);
  config.d = flags.GetInt32("d", 2);
  config.css = flags.GetBool("css", true);
  config.nb = flags.GetBool("nb", false);
  const int sims = flags.GetInt32("sims", 5);
  const uint64_t sweep_steps = flags.GetUInt64("steps", 200000);
  const double latency_us = flags.GetDouble("latency-us", 200.0);
  const bool check_identical = flags.GetBool("check-identical");

  const auto graphs =
      grw::bench::LoadBenchGraphs(flags, grw::DatasetTier::kSmall, 1.0);
  const grw::bench::BenchGraph& bg = graphs.front();
  const grw::Graph& g = bg.graph;
  std::printf("[bench] %s: %s, %s\n", bg.name.c_str(),
              g.Summary().c_str(), config.Name().c_str());

  std::vector<grw::bench::JsonMetric> metrics;

  // ---------------------------------------------------------- identity --
  bool identical = true;
  {
    grw::EngineOptions base;
    base.chains = 4;
    base.max_steps = 20000;
    base.base_seed = 0x5eed;
    base.round_steps = 2048;
    const grw::EngineResult full =
        grw::EstimationEngine(g, config, base).Run();
    for (unsigned threads : {1u, 2u, 8u}) {
      grw::EngineOptions crawl_options = base;
      crawl_options.threads = threads;
      crawl_options.crawl.enabled = true;
      const grw::EngineResult crawled =
          grw::EstimationEngine(g, config, crawl_options).Run();
      const bool same = SameEstimate(full.merged, crawled.merged);
      identical = identical && same;
      std::printf("identity: full vs crawl(inf cache) @ %u threads: %s\n",
                  threads, same ? "bit-identical" : "MISMATCH");
    }
  }
  metrics.push_back({"identical_full_vs_crawl", identical ? 1.0 : 0.0,
                     "bool"});

  // ------------------------------------------------------ NRMSE/budget --
  const std::vector<uint64_t> budgets = ParseLadder(
      flags, "budgets", {100, 200, 400, 800, 1200});
  const std::vector<double> truth =
      grw::CachedExactConcentrations(g, config.k, bg.cache_key);

  grw::Table nrmse_table("NRMSE vs distinct-query budget (" +
                         config.Name() + ", " + std::to_string(sims) +
                         " crawls/point)");
  nrmse_table.SetHeader(
      {"budget B", "mean NRMSE", "steps/crawl", "hit rate"});
  // A budget close to the node count cannot be exhausted (distinct
  // fetches are bounded by reachable nodes) and the run would fall
  // through to the step safety net; skip those points loudly instead of
  // reporting a mislabeled curve.
  const uint64_t max_budget = g.NumNodes() / 2;
  for (const uint64_t budget : budgets) {
    if (budget > max_budget) {
      std::printf("skipping budget %" PRIu64 ": exceeds half the node "
                  "count (%u), cannot be spent by a crawl\n",
                  budget, g.NumNodes());
      continue;
    }
    std::vector<std::vector<double>> runs;
    double mean_steps = 0.0;
    double mean_hit = 0.0;
    for (int s = 0; s < sims; ++s) {
      grw::CrawlAccess::Options opt;
      opt.query_budget = budget;
      grw::CrawlAccess crawl(g, opt);
      grw::GraphletEstimatorT<grw::CrawlAccess> estimator(crawl, config);
      estimator.Reset(0xace + 31 * s);
      // The budget is the stopping rule; the step cap is a safety net.
      estimator.Run(2'000'000);
      runs.push_back(estimator.Result().concentrations);
      mean_steps += static_cast<double>(estimator.Steps()) / sims;
      mean_hit += crawl.stats().HitRate() / sims;
    }
    const double nrmse = MeanNrmse(runs, truth, 1e-3);
    nrmse_table.AddRow({grw::Table::Int(static_cast<long long>(budget)),
                        grw::Table::Num(nrmse, 4),
                        grw::Table::Num(mean_steps, 0),
                        grw::Table::Num(mean_hit, 3)});
    metrics.push_back({"nrmse_q" + std::to_string(budget), nrmse,
                       "nrmse"});
    metrics.push_back({"steps_q" + std::to_string(budget), mean_steps,
                       "steps"});
  }
  nrmse_table.Print();

  // -------------------------------------------------------- cache sweep --
  const std::vector<uint64_t> caches =
      ParseLadder(flags, "caches", {64, 256, 1024, 4096, 0});
  grw::Table cache_table(
      "walk throughput vs LRU capacity (" + std::to_string(sweep_steps) +
      " steps, " + grw::Table::Num(latency_us, 0) + "us simulated/fetch)");
  cache_table.SetHeader({"cache size", "steps/s", "hit rate", "fetches",
                         "effective steps/s (latency)"});
  for (const uint64_t cache : caches) {
    grw::CrawlAccess::Options opt;
    opt.cache_entries = cache;
    opt.latency_us = latency_us;
    grw::CrawlAccess crawl(g, opt);
    grw::GraphletEstimatorT<grw::CrawlAccess> estimator(crawl, config);
    estimator.Reset(0xcafe);
    grw::WallTimer timer;
    estimator.Run(sweep_steps);
    const double seconds = timer.Seconds();
    const grw::CrawlStats& stats = crawl.stats();
    const double steps_per_s =
        seconds > 0.0 ? static_cast<double>(sweep_steps) / seconds : 0.0;
    const double effective_seconds =
        seconds + stats.simulated_latency_us / 1e6;
    const double effective_steps_per_s =
        effective_seconds > 0.0
            ? static_cast<double>(sweep_steps) / effective_seconds
            : 0.0;
    const std::string label =
        cache == 0 ? "inf" : std::to_string(cache);
    cache_table.AddRow(
        {label, grw::Table::Num(steps_per_s / 1e6, 2) + "M",
         grw::Table::Num(stats.HitRate(), 4),
         grw::Table::Int(static_cast<long long>(stats.fetches)),
         grw::Table::Num(effective_steps_per_s / 1e3, 1) + "K"});
    metrics.push_back({"steps_per_s_cache_" + label, steps_per_s,
                       "steps/s"});
    metrics.push_back({"hit_rate_cache_" + label, stats.HitRate(), "rate"});
    metrics.push_back({"effective_steps_per_s_cache_" + label,
                       effective_steps_per_s, "steps/s"});
  }
  cache_table.Print();

  grw::bench::MaybeWriteCsv(flags, cache_table);
  grw::bench::MaybeWriteJson(flags, "bench_access",
                             bg.name + ": " + g.Summary() + ", " +
                                 config.Name(),
                             metrics);

  if (check_identical && !identical) {
    std::fprintf(stderr,
                 "FAIL: crawl-access estimates diverged from full access\n");
    return 1;
  }
  if (check_identical) {
    std::printf("CHECK PASSED: full == crawl(inf cache) at 1/2/8 threads\n");
  }
  return 0;
}
