// Regenerates paper Table 2: state corresponding coefficients alpha^k_i / 2
// for all 3- and 4-node graphlets under SRW(1..3), computed from scratch
// with Algorithm 2 and checked cell-by-cell against the published values.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/alpha.h"
#include "core/paper_ids.h"
#include "graphlet/catalog.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);

  grw::Table table(
      "Table 2: coefficient alpha^k_i / 2 for 3,4-node graphlets "
      "(computed | paper)");
  std::vector<std::string> header = {"Graphlet"};
  for (int k = 3; k <= 4; ++k) {
    const auto& order = grw::PaperOrder(k);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      header.push_back(grw::PaperLabel(k, static_cast<int>(pos)));
    }
  }
  table.SetHeader(header);

  int mismatches = 0;
  for (int d = 1; d <= 3; ++d) {
    std::vector<std::string> row = {"SRW(" + std::to_string(d) + ")"};
    for (int k = 3; k <= 4; ++k) {
      const auto& order = grw::PaperOrder(k);
      const auto& paper = grw::PaperAlphaHalfTable(k);
      const auto& catalog = grw::GraphletCatalog::ForSize(k);
      for (size_t pos = 0; pos < order.size(); ++pos) {
        if (d >= k) {
          row.push_back("-");  // walk dimension must satisfy d < k
          continue;
        }
        const int64_t computed = grw::Alpha(catalog.Get(order[pos]), d) / 2;
        const int64_t published = paper[d - 1][pos];
        if (computed != published) ++mismatches;
        row.push_back(grw::Table::Int(computed) +
                      (computed == published ? "" : " (paper: " +
                       grw::Table::Int(published) + ")"));
      }
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("cells matching the published table: all but %d\n",
              mismatches);

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) {
    std::printf("csv written to %s\n", csv.c_str());
  }
  std::vector<grw::bench::JsonMetric> metrics;
  grw::bench::AppendTableMetrics(table, &metrics);
  metrics.push_back({"mismatches", static_cast<double>(mismatches), "cells"});
  grw::bench::MaybeWriteJson(flags, "bench_table2_alpha34",
                             "alpha coefficients vs published Table 2",
                             metrics);
  return mismatches == 0 ? 0 : 1;
}
