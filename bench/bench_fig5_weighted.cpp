// Regenerates paper Figure 5: the relationship between *weighted
// concentration* alpha^k_i C^k_i / sum_j alpha^k_j C^k_j and estimation
// accuracy, on the Epinion analog for 4-node graphlets.
//
// Panel (a): original vs weighted concentration under SRW2 and SRW3 —
// walks with smaller d lift the weighted share of the rare graphlets
// (cycle, chordal-cycle, clique), which Theorem 3 links to smaller
// required sample size. Panel (b): per-graphlet NRMSE for SRW3, SRW2,
// SRW2CSS at the same budget.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/alpha.h"
#include "core/estimator.h"
#include "core/paper_ids.h"
#include "eval/experiment.h"
#include "graphlet/catalog.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 20000);
  const int sims = grw::bench::SimCount(flags, 100, 1000);
  const std::string dataset = flags.GetString("dataset", "epinion-sim");
  const double scale = flags.GetDouble("scale", 1.0);

  const grw::Graph g = grw::MakeDatasetByName(dataset, scale);
  std::fprintf(stderr, "[bench] %s: %s\n", dataset.c_str(),
               g.Summary().c_str());
  const std::string cache_key = grw::DatasetCacheKey(dataset, scale);
  const auto truth = grw::CachedExactConcentrations(g, 4, cache_key);
  const auto& order = grw::PaperOrder(4);

  // Panel (a): weighted concentration per walk dimension.
  grw::Table panel_a("Figure 5a: weighted concentration of 4-node "
                     "graphlets on " + dataset);
  panel_a.SetHeader(
      {"Graphlet", "original c4i", "weighted (SRW2)", "weighted (SRW3)"});
  std::vector<std::vector<double>> weighted(4);  // indexed by d
  for (int d = 2; d <= 3; ++d) {
    const auto alpha = grw::AlphaTable(4, d);
    double total = 0.0;
    weighted[d].resize(truth.size());
    for (size_t id = 0; id < truth.size(); ++id) {
      weighted[d][id] = static_cast<double>(alpha[id]) * truth[id];
      total += weighted[d][id];
    }
    for (double& w : weighted[d]) w /= total;
  }
  for (int pos = 0; pos < 6; ++pos) {
    const int id = order[pos];
    panel_a.AddRow({grw::PaperLabel(4, pos), grw::Table::Sci(truth[id]),
                    grw::Table::Sci(weighted[2][id]),
                    grw::Table::Sci(weighted[3][id])});
  }
  panel_a.Print();

  // Panel (b): per-graphlet NRMSE for the three methods.
  const std::vector<grw::EstimatorConfig> methods = {
      {4, 3, false, false}, {4, 2, false, false}, {4, 2, true, false}};
  grw::Table panel_b("Figure 5b: NRMSE per 4-node graphlet on " + dataset +
                     " (steps=" + std::to_string(steps) + ")");
  panel_b.SetHeader({"Graphlet", "SRW3", "SRW2", "SRW2CSS"});
  std::vector<grw::ChainEstimates> chains;
  for (const auto& method : methods) {
    chains.push_back(grw::RunConcentrationChains(
        g, method, steps, method.d >= 3 ? std::max(10, sims / 3) : sims,
        0xf165));
  }
  for (int pos = 0; pos < 6; ++pos) {
    const int id = order[pos];
    std::vector<std::string> row = {grw::PaperLabel(4, pos)};
    for (const auto& ch : chains) {
      row.push_back(grw::Table::Num(grw::NrmseOfType(ch, truth, id), 4));
    }
    panel_b.AddRow(row);
  }
  panel_b.Print();
  grw::bench::MaybeWriteCsv(flags, panel_b);
  std::vector<grw::bench::JsonMetric> metrics;
  grw::bench::AppendTableMetrics(panel_a, &metrics, "weighted_");
  grw::bench::AppendTableMetrics(panel_b, &metrics, "nrmse_");
  grw::bench::MaybeWriteJson(flags, "bench_fig5_weighted",
                             dataset + ", steps=" + std::to_string(steps) +
                                 ", sims=" + std::to_string(sims),
                             metrics);
  return 0;
}
