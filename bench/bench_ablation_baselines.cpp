// Extension bench (not a paper figure): the framework's recommended
// methods against the two restricted-access alternatives the paper cites
// but does not bench head-to-head — GUISE (Bhuiyan et al., MH-uniform over
// 3/4/5-node graphlets) and the Hardiman-Katzir clustering estimator —
// at an equal step budget.
//
// Expected shape: SRW1CSSNB beats both on 3-node accuracy per step (and
// GUISE additionally pays a far higher per-step cost and rejects a large
// share of its proposals); SRW2CSS beats GUISE on 4-node accuracy.

#include <cstdio>

#include "baselines/guise.h"
#include "baselines/hardiman_katzir.h"
#include "bench_common.h"
#include "core/estimator.h"
#include "engine/chain_pool.h"
#include "eval/experiment.h"
#include "graphlet/catalog.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 20000);
  const int sims = grw::bench::SimCount(flags, 50, 1000);
  const auto graphs =
      grw::bench::LoadBenchGraphs(flags, grw::DatasetTier::kSmall);

  const auto& c3 = grw::GraphletCatalog::ForSize(3);
  const auto& c4 = grw::GraphletCatalog::ForSize(4);
  const int triangle = c3.IdByName("triangle");
  const int clique4 = c4.IdByName("4-clique");

  grw::Table table(
      "Ablation: framework vs GUISE vs Hardiman-Katzir "
      "(NRMSE at " + std::to_string(steps) + " steps; time per chain)");
  table.SetHeader({"Graph", "g32 SRW1CSSNB", "g32 HK", "g32 GUISE",
                   "g46 SRW2CSS", "g46 GUISE", "GUISE reject%",
                   "t SRW1CSSNB", "t GUISE"});

  for (const auto& bg : graphs) {
    const auto truth3 =
        grw::CachedExactConcentrations(bg.graph, 3, bg.cache_key);
    const auto truth4 =
        grw::CachedExactConcentrations(bg.graph, 4, bg.cache_key);

    const auto rw3 = grw::RunConcentrationChains(
        bg.graph, {3, 1, true, true}, steps, sims, 0xab1);
    const auto rw4 = grw::RunConcentrationChains(
        bg.graph, {4, 2, true, false}, steps, sims, 0xab2);

    const auto hk = grw::RunCustomChains(sims, [&](int chain) {
      grw::HardimanKatzir estimator(bg.graph);
      estimator.Reset(grw::DeriveSeed(0xab3, chain));
      estimator.Run(steps);
      return estimator.Concentrations();
    });

    // GUISE: one instance per chain; also time one representative chain
    // and collect the rejection rate.
    double guise_seconds = 0.0;
    double reject_sum = 0.0;
    std::vector<std::vector<double>> guise3(sims);
    std::vector<std::vector<double>> guise4(sims);
    {
      grw::WallTimer timer;
      grw::Guise probe(bg.graph);
      probe.Reset(grw::DeriveSeed(0xab4, 0));
      probe.Run(steps);
      guise_seconds = timer.Seconds();
      guise3[0] = probe.Concentrations(3);
      guise4[0] = probe.Concentrations(4);
      reject_sum += probe.RejectionRate();
    }
    grw::ChainPool::Shared().ForEach(sims - 1, [&](size_t i) {
      grw::Guise estimator(bg.graph);
      estimator.Reset(grw::DeriveSeed(0xab4, i + 1));
      estimator.Run(steps);
      guise3[i + 1] = estimator.Concentrations(3);
      guise4[i + 1] = estimator.Concentrations(4);
    });
    grw::ChainEstimates guise3_chains{std::move(guise3), guise_seconds};
    grw::ChainEstimates guise4_chains{std::move(guise4), guise_seconds};

    table.AddRow(
        {bg.name,
         grw::Table::Num(grw::NrmseOfType(rw3, truth3, triangle), 4),
         grw::Table::Num(grw::NrmseOfType(hk, truth3, triangle), 4),
         grw::Table::Num(grw::NrmseOfType(guise3_chains, truth3, triangle),
                         4),
         grw::Table::Num(grw::NrmseOfType(rw4, truth4, clique4), 4),
         grw::Table::Num(grw::NrmseOfType(guise4_chains, truth4, clique4),
                         4),
         grw::Table::Num(100.0 * reject_sum, 1),
         grw::Table::Duration(rw3.seconds_per_chain),
         grw::Table::Duration(guise_seconds)});
  }
  table.Print();
  grw::bench::MaybeWriteCsv(flags, table);
  std::vector<grw::bench::JsonMetric> metrics;
  grw::bench::AppendTableMetrics(table, &metrics);
  grw::bench::MaybeWriteJson(flags, "bench_ablation_baselines",
                             "steps=" + std::to_string(steps) +
                                 ", sims=" + std::to_string(sims),
                             metrics);
  return 0;
}
