// Regenerates paper Table 7: graphlet-kernel similarity between the
// Sinaweibo analog and the Facebook (social network) / Twitter (news
// medium) analogs, estimated from 4-node concentrations by SRW2CSS and
// PSRW (= SRW3) and compared with the exact kernel. The paper's finding —
// Sinaweibo's subgraph building blocks resemble Twitter's far more than
// Facebook's — is a structural property our analogs preserve (ER/BA media
// graphs vs clustered Holme-Kim social graphs).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/estimator.h"
#include "eval/experiment.h"
#include "eval/similarity.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 20000);
  const int sims = grw::bench::SimCount(flags, 30, 100);  // paper: 100
  const double scale = flags.GetDouble("scale", 1.0);

  const std::vector<std::string> names = {"sinaweibo-sim", "facebook-sim",
                                          "twitter-sim"};
  std::vector<grw::Graph> graphs;
  std::vector<std::vector<double>> exact;
  for (const auto& name : names) {
    graphs.push_back(grw::MakeDatasetByName(name, scale));
    std::fprintf(stderr, "[bench] %s: %s\n", name.c_str(),
                 graphs.back().Summary().c_str());
    exact.push_back(grw::CachedExactConcentrations(
        graphs.back(), 4, grw::DatasetCacheKey(name, scale)));
  }

  const std::vector<grw::EstimatorConfig> methods = {
      {4, 2, true, false},    // SRW2CSS
      {4, 3, false, false}};  // PSRW for 4-node graphlets

  grw::Table table("Table 7: 4-node graphlet-kernel similarity of " +
                   names[0] + " to social/news analogs (steps=" +
                   std::to_string(steps) + ")");
  table.SetHeader({"Graph", "SRW2CSS", "PSRW", "Exact"});

  std::vector<grw::bench::JsonMetric> metrics;
  const std::vector<std::string> method_names = {"srw2css", "psrw"};
  // Per-method chains for each graph.
  for (size_t target = 1; target < names.size(); ++target) {
    std::vector<std::string> row = {names[target]};
    size_t method_idx = 0;
    for (const auto& method : methods) {
      const auto chains_a = grw::RunConcentrationChains(
          graphs[0], method, steps, sims, 0x7a + target);
      const auto chains_b = grw::RunConcentrationChains(
          graphs[target], method, steps, sims, 0x7b + target);
      std::vector<double> sim_values;
      for (int c = 0; c < sims; ++c) {
        sim_values.push_back(grw::GraphletKernelSimilarity(
            chains_a.estimates[c], chains_b.estimates[c]));
      }
      row.push_back(grw::Table::Num(grw::Mean(sim_values), 4) + " ± " +
                    grw::Table::Num(grw::SampleStddev(sim_values), 4));
      metrics.push_back({grw::bench::MetricNameFragment(names[target]) + "_" +
                             method_names[method_idx++],
                         grw::Mean(sim_values), "similarity"});
    }
    const double exact_sim =
        grw::GraphletKernelSimilarity(exact[0], exact[target]);
    row.push_back(grw::Table::Num(exact_sim, 4));
    metrics.push_back({grw::bench::MetricNameFragment(names[target]) +
                           "_exact",
                       exact_sim, "similarity"});
    table.AddRow(row);
  }
  table.Print();
  grw::bench::MaybeWriteCsv(flags, table);
  grw::bench::MaybeWriteJson(flags, "bench_table7_similarity",
                             "steps=" + std::to_string(steps) +
                                 ", sims=" + std::to_string(sims),
                             metrics);
  return 0;
}
