// Loader micro-bench: text edge-list parse vs `.grwb` binary snapshot load.
//
// The paper's workloads start with "load a SNAP-scale graph"; with the
// PR 2 engine stopping runs after a few hundred thousand steps, re-parsing
// a multi-million-edge text file dominates end-to-end wall-clock. This
// bench generates a >= 1M-edge Holme-Kim graph, writes it in both formats,
// and times four load paths:
//
//   text parse          LoadEdgeList: parse + relabel + sort + CSR build
//   grwb (lazy mmap)    LoadGraphBinary: header validation only, pages
//                       fault in as the walk touches them
//   grwb (mmap+touch)   same, then every offsets/neighbors byte is read —
//                       the honest "data is actually in memory" number
//   grwb (checksummed)  LoadGraphBinary(verify_checksum=true)
//
// Flags:
//   --n N              Holme-Kim nodes (default 250000 -> ~1.25M edges)
//   --param M          Holme-Kim edges-per-node (default 5)
//   --dir PATH         scratch directory (default: system temp)
//   --runs R           best-of-R timing for the binary paths (default 3)
//   --check-speedup X  exit 1 unless text / (mmap+touch) >= X  (CI smoke)
//   --keep             keep the generated files
//   --csv PATH         mirror the table to CSV
//   --json PATH        machine-readable results (BENCH_*.json format)
//
// Used as a Release-mode CI smoke test with --check-speedup 5, which also
// exercises the mmap path under optimizations.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

// Forces every page of both CSR arrays into memory; returns a value that
// depends on all of them so the reads cannot be optimized away.
uint64_t TouchAll(const grw::Graph& g) {
  uint64_t acc = 0;
  for (uint64_t o : g.RawOffsets()) acc += o;
  for (grw::VertexId v : g.RawNeighbors()) acc ^= v;
  return acc;
}

template <typename Fn>
double BestOf(int runs, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    grw::WallTimer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const auto n = flags.GetUInt32("n", 250000);
  const auto param = flags.GetUInt32("param", 5);
  const int runs = flags.GetInt32("runs", 3);
  const double check_speedup = flags.GetDouble("check-speedup", 0.0);

  namespace fs = std::filesystem;
  const fs::path dir = flags.Has("dir")
                           ? fs::path(flags.GetString("dir", ""))
                           : fs::temp_directory_path() / "grw_loader_bench";
  fs::create_directories(dir);
  const std::string text_path = (dir / "loader_bench.edges").string();
  const std::string bin_path = (dir / "loader_bench.grwb").string();

  grw::Rng rng(7);
  grw::WallTimer gen_timer;
  const grw::Graph g = grw::HolmeKim(n, param, 0.3, rng);
  std::fprintf(stderr, "[loader] generated %s in %s\n", g.Summary().c_str(),
               grw::Table::Duration(gen_timer.Seconds()).c_str());

  grw::WallTimer save_text_timer;
  grw::SaveEdgeList(g, text_path);
  const double save_text_s = save_text_timer.Seconds();
  grw::WallTimer save_bin_timer;
  grw::SaveGraphBinary(g, bin_path);
  const double save_bin_s = save_bin_timer.Seconds();

  // Text parse. largest_cc=false isolates parse + relabel + CSR assembly —
  // the part the snapshot eliminates (the snapshot is written post-LCC in
  // the real `grw convert` workflow anyway).
  grw::WallTimer text_timer;
  const grw::Graph from_text = grw::LoadEdgeList(text_path, false);
  const double text_s = text_timer.Seconds();

  const double lazy_s =
      BestOf(runs, [&] { (void)grw::LoadGraphBinary(bin_path); });
  uint64_t sink = 0;
  const double touch_s = BestOf(runs, [&] {
    const grw::Graph loaded = grw::LoadGraphBinary(bin_path);
    sink ^= TouchAll(loaded);
  });
  const double verify_s = BestOf(runs, [&] {
    (void)grw::LoadGraphBinary(bin_path, /*verify_checksum=*/true);
  });

  const grw::Graph from_bin = grw::LoadGraphBinary(bin_path);
  if (from_bin.Summary() != g.Summary() ||
      from_text.Summary() != g.Summary() ||
      TouchAll(from_bin) != TouchAll(g)) {
    std::fprintf(stderr, "FAIL: loaded graphs disagree with the original\n");
    return 1;
  }

  const double mib = static_cast<double>(fs::file_size(bin_path)) /
                     (1024.0 * 1024.0);
  grw::Table table("loader bench: " + g.Summary() + " (binary " +
                   grw::Table::Num(mib, 1) + " MiB, sink " +
                   std::to_string(sink % 10) + ")");
  table.SetHeader({"path", "seconds", "speedup vs text"});
  auto add = [&](const std::string& name, double s) {
    table.AddRow({name, grw::Table::Num(s, 4),
                  s > 0 ? grw::Table::Num(text_s / s, 1) + "x" : "-"});
  };
  add("write text edge list", save_text_s);
  add("write .grwb snapshot", save_bin_s);
  add("text parse (LoadEdgeList)", text_s);
  add("grwb mmap (lazy)", lazy_s);
  add("grwb mmap + touch all pages", touch_s);
  add("grwb mmap + full checksum", verify_s);
  table.Print();
  grw::bench::MaybeWriteCsv(flags, table);
  grw::bench::MaybeWriteJson(
      flags, "loader", g.Summary(),
      {{"text_parse_s", text_s, "s"},
       {"grwb_lazy_s", lazy_s, "s"},
       {"grwb_touch_s", touch_s, "s"},
       {"grwb_checksum_s", verify_s, "s"},
       {"touch_speedup_vs_text", text_s / touch_s, "x"}});

  if (!flags.GetBool("keep")) {
    std::error_code ec;
    fs::remove(text_path, ec);
    fs::remove(bin_path, ec);
  }

  if (check_speedup > 0.0) {
    const double speedup = text_s / touch_s;
    if (speedup < check_speedup) {
      std::fprintf(stderr,
                   "FAIL: binary load speedup %.1fx below required %.1fx\n",
                   speedup, check_speedup);
      return 1;
    }
    std::printf("OK: binary (mmap+touch) %.1fx faster than text parse "
                "(required >= %.1fx)\n",
                speedup, check_speedup);
  }
  return 0;
}
