// Extension bench: Theorem 3's sample-size predictions vs measured error.
//
// The theorem says required steps scale with W * tau / Lambda_i, where
// Lambda_i ~ alpha_i * c_i for rare types: graphlets with a larger
// weighted concentration need fewer steps. We compute the bound's
// ingredients exactly on an analysis-size graph, then measure per-type
// NRMSE at a fixed budget — the measured error ordering should follow
// the predicted difficulty ordering (this is the quantitative version of
// the paper's Figure 5 argument).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/bounds.h"
#include "core/estimator.h"
#include "core/paper_ids.h"
#include "eval/experiment.h"
#include "graphlet/catalog.h"

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);
  const uint64_t steps = flags.GetUInt64("steps", 20000);
  const int sims = grw::bench::SimCount(flags, 100, 1000);
  const std::string dataset = flags.GetString("dataset", "brightkite-sim");
  const double scale = flags.GetDouble("scale", 0.5);  // spectral gap: O(n^2)

  const grw::Graph g = grw::MakeDatasetByName(dataset, scale);
  std::fprintf(stderr, "[bench] %s: %s\n", dataset.c_str(),
               g.Summary().c_str());
  const auto truth = grw::CachedExactConcentrations(
      g, 4, grw::DatasetCacheKey(dataset, scale));

  const grw::EstimatorConfig config{4, 2, false, false};
  const auto bound = grw::ComputeSampleSizeBound(g, 4, 2, truth);
  const auto chains =
      grw::RunConcentrationChains(g, config, steps, sims, 0x7e0);

  std::printf("spectral analysis: mixing-time upper bound tau(1/8) <= %.0f "
              "steps, W = %.0f\n", bound.tau, bound.w);

  grw::Table table("Theorem 3 difficulty vs measured NRMSE (SRW2, " +
                   std::to_string(steps) + " steps, " + dataset + ")");
  table.SetHeader({"graphlet", "concentration", "alpha*c (weighted)",
                   "predicted rel. steps", "measured NRMSE"});
  const auto& order = grw::PaperOrder(4);
  std::vector<double> predicted;
  std::vector<double> measured;
  for (int pos = 0; pos < 6; ++pos) {
    const int id = order[pos];
    const double nrmse = grw::NrmseOfType(chains, truth, id);
    table.AddRow({grw::PaperLabel(4, pos), grw::Table::Sci(truth[id]),
                  grw::Table::Sci(bound.lambda[id]),
                  grw::Table::Sci(bound.relative_steps[id]),
                  grw::Table::Num(nrmse, 4)});
    predicted.push_back(bound.relative_steps[id]);
    measured.push_back(nrmse);
  }
  table.Print();

  // Rank agreement between predicted difficulty and measured error.
  int agreements = 0;
  int comparisons = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    for (size_t j = i + 1; j < predicted.size(); ++j) {
      if (!std::isfinite(predicted[i]) || !std::isfinite(predicted[j])) {
        continue;
      }
      ++comparisons;
      if ((predicted[i] < predicted[j]) == (measured[i] < measured[j])) {
        ++agreements;
      }
    }
  }
  std::printf("difficulty-ordering agreement: %d/%d pairs\n", agreements,
              comparisons);
  grw::bench::MaybeWriteCsv(flags, table);
  std::vector<grw::bench::JsonMetric> metrics;
  grw::bench::AppendTableMetrics(table, &metrics);
  metrics.push_back(
      {"ordering_agreement", static_cast<double>(agreements), "pairs"});
  metrics.push_back(
      {"ordering_comparisons", static_cast<double>(comparisons), "pairs"});
  grw::bench::MaybeWriteJson(flags, "bench_theory_bound",
                             dataset + ", steps=" + std::to_string(steps) +
                                 ", sims=" + std::to_string(sims),
                             metrics);
  return 0;
}
