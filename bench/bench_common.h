// Shared plumbing for the table/figure harness binaries.
//
// Common flags across harnesses:
//   --steps N     random walk steps per chain (default: per-bench)
//   --sims N      independent chains per data point
//   --scale S     dataset scale factor in (0, 1]
//   --paper       run at published scale (1,000 sims etc.)
//   --csv PATH    mirror the main table to a CSV file
//   --json PATH   write machine-readable results (the BENCH_*.json perf
//                 trajectory format: one object with a flat metric list)
//   --graph PATH  replace the synthetic datasets with a real graph file
//                 (text edge list or .grwb binary snapshot, auto-detected
//                 via GraphSource::Open; convert once with `grw convert`
//                 so repeated bench runs mmap the CSR instead of
//                 re-parsing text). Sharded manifests are rejected here —
//                 the table harnesses need the whole graph resident; use
//                 bench/bench_sharded.cpp for out-of-core measurements.
//   --no-index    skip attaching the AdjacencyIndex to loaded graphs
//                 (results are bit-identical either way; only speed moves)

#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/ground_truth.h"
#include "graph/adjacency.h"
#include "graph/graph.h"
#include "graph/source.h"
#include "util/flags.h"
#include "util/table.h"

namespace grw::bench {

/// A named graph plus its ground-truth cache key.
struct BenchGraph {
  std::string name;
  Graph graph;
  std::string cache_key;
};

/// Loads either the --graph override (one real edge list) or all registry
/// datasets up to `max_tier` at --scale.
inline std::vector<BenchGraph> LoadBenchGraphs(const Flags& flags,
                                               DatasetTier max_tier,
                                               double default_scale = 1.0) {
  std::vector<BenchGraph> graphs;
  // Every HasEdge on the bench hot paths routes through the adjacency
  // acceleration index; --no-index reverts to plain binary search
  // (identical results, for A/B timing).
  const bool attach_index = !flags.GetBool("no-index");
  const std::string path = flags.GetString("graph", "");
  if (!path.empty()) {
    BenchGraph bg;
    bg.name = path;
    OpenOptions open;
    open.build_index = false;  // attached below, under --no-index control
    GraphSource source = GraphSource::Open(path, open);
    if (source.sharded()) {
      throw std::runtime_error(
          "--graph " + path +
          " is a sharded manifest; the table harnesses need the whole "
          "graph resident — use bench_sharded for out-of-core runs");
    }
    bg.graph = source.graph();
    if (attach_index) bg.graph.BuildAdjacencyIndex();
    // Real files get a key derived from their shape.
    bg.cache_key = "file_n" + std::to_string(bg.graph.NumNodes()) + "_m" +
                   std::to_string(bg.graph.NumEdges());
    graphs.push_back(std::move(bg));
    return graphs;
  }
  const double scale = flags.GetDouble("scale", default_scale);
  for (const std::string& name : DatasetNames(max_tier)) {
    BenchGraph bg;
    bg.name = name;
    bg.graph = MakeDatasetByName(name, scale);
    if (attach_index) bg.graph.BuildAdjacencyIndex();
    bg.cache_key = DatasetCacheKey(name, scale);
    std::fprintf(stderr, "[bench] %s: %s\n", name.c_str(),
                 bg.graph.Summary().c_str());
    graphs.push_back(std::move(bg));
  }
  return graphs;
}

/// Simulation count: --sims override, else paper scale (1000) with
/// --paper, else the bench default.
inline int SimCount(const Flags& flags, int default_sims,
                    int paper_sims = 1000) {
  if (flags.Has("sims")) return flags.GetInt32("sims", 0);
  return flags.GetBool("paper") ? paper_sims : default_sims;
}

/// Writes the CSV mirror if --csv was given.
inline void MaybeWriteCsv(const Flags& flags, const Table& table) {
  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    if (table.WriteCsv(csv)) {
      std::printf("csv written to %s\n", csv.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    }
  }
}

/// One machine-readable benchmark metric.
struct JsonMetric {
  std::string name;   // snake_case metric id, stable across PRs
  double value = 0.0;
  std::string unit;   // e.g. "ns/query", "steps/s", "x"
};

/// Writes the standardized benchmark JSON: a single object with the bench
/// id, free-form context (graph summary etc.) and a flat metric list.
/// This is the format of the repo-root BENCH_*.json perf-trajectory files;
/// keeping metric names stable lets successive PRs be diffed/plotted.
inline bool WriteBenchJson(const std::string& path, const std::string& bench,
                           const std::string& context,
                           const std::vector<JsonMetric>& metrics) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '"':
        case '\\':
          out += '\\';
          out += c;
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          // Remaining control characters (a stray control byte in a
          // graph path ends up in the context string) get proper \u00XX
          // escapes — dropping them would silently mangle the field.
          if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof(esc), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += esc;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"context\": \"%s\",\n"
               "  \"metrics\": [\n",
               escape(bench).c_str(), escape(context).c_str());
  for (size_t i = 0; i < metrics.size(); ++i) {
    // inf/nan are not valid JSON numbers; emit null so a division blowup
    // in one metric cannot make the whole trajectory file unparseable.
    char value[40];
    if (std::isfinite(metrics[i].value)) {
      std::snprintf(value, sizeof(value), "%.6g", metrics[i].value);
    } else {
      std::snprintf(value, sizeof(value), "null");
    }
    std::fprintf(f, "    {\"name\": \"%s\", \"value\": %s, "
                 "\"unit\": \"%s\"}%s\n",
                 escape(metrics[i].name).c_str(), value,
                 escape(metrics[i].unit).c_str(),
                 i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

/// Lowercases and squeezes a table label into a snake_case metric-name
/// fragment: "p99 ms" -> "p99_ms", "NRMSE (%)" -> "nrmse".
inline std::string MetricNameFragment(const std::string& label) {
  std::string out;
  for (char c : label) {
    const char lc = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
    if ((lc >= 'a' && lc <= 'z') || (lc >= '0' && lc <= '9') || lc == '.') {
      out += lc;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

/// Derives JSON metrics from a rendered table: every numeric cell becomes
/// one metric named `<row-label>_<col-label>` (snake_case, first column is
/// the row label). Non-numeric cells ("19.4 ms", "--", dataset names) are
/// skipped — the strict ParseDouble decides, so a formatted duration never
/// sneaks in as a bogus number. Lets the table-regenerating benches mirror
/// their whole table into the BENCH_*.json trajectory format without
/// hand-listing each metric.
inline void AppendTableMetrics(const Table& table,
                               std::vector<JsonMetric>* metrics,
                               const std::string& prefix = "") {
  const std::vector<std::string>& header = table.header();
  for (const std::vector<std::string>& row : table.rows()) {
    if (row.empty()) continue;
    const std::string row_name = MetricNameFragment(row[0]);
    for (size_t col = 1; col < row.size() && col < header.size(); ++col) {
      const std::optional<double> v = ParseDouble(row[col]);
      if (!v.has_value()) continue;
      JsonMetric m;
      m.name = prefix;
      if (!row_name.empty()) m.name += row_name + "_";
      m.name += MetricNameFragment(header[col]);
      m.value = *v;
      metrics->push_back(std::move(m));
    }
  }
}

/// Writes the JSON mirror if --json was given.
inline void MaybeWriteJson(const Flags& flags, const std::string& bench,
                           const std::string& context,
                           const std::vector<JsonMetric>& metrics) {
  const std::string path = flags.GetString("json", "");
  if (path.empty()) return;
  if (WriteBenchJson(path, bench, context, metrics)) {
    std::printf("json written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
}

}  // namespace grw::bench
