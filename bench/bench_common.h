// Shared plumbing for the table/figure harness binaries.
//
// Common flags across harnesses:
//   --steps N     random walk steps per chain (default: per-bench)
//   --sims N      independent chains per data point
//   --scale S     dataset scale factor in (0, 1]
//   --paper       run at published scale (1,000 sims etc.)
//   --csv PATH    mirror the main table to a CSV file
//   --graph PATH  replace the synthetic datasets with a real graph file
//                 (text edge list or .grwb binary snapshot, auto-detected;
//                 convert once with `grw convert` so repeated bench runs
//                 mmap the CSR instead of re-parsing text)

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/ground_truth.h"
#include "graph/format.h"
#include "graph/graph.h"
#include "util/flags.h"
#include "util/table.h"

namespace grw::bench {

/// A named graph plus its ground-truth cache key.
struct BenchGraph {
  std::string name;
  Graph graph;
  std::string cache_key;
};

/// Loads either the --graph override (one real edge list) or all registry
/// datasets up to `max_tier` at --scale.
inline std::vector<BenchGraph> LoadBenchGraphs(const Flags& flags,
                                               DatasetTier max_tier,
                                               double default_scale = 1.0) {
  std::vector<BenchGraph> graphs;
  const std::string path = flags.GetString("graph", "");
  if (!path.empty()) {
    BenchGraph bg;
    bg.name = path;
    bg.graph = LoadGraph(path);
    // Real files get a key derived from their shape.
    bg.cache_key = "file_n" + std::to_string(bg.graph.NumNodes()) + "_m" +
                   std::to_string(bg.graph.NumEdges());
    graphs.push_back(std::move(bg));
    return graphs;
  }
  const double scale = flags.GetDouble("scale", default_scale);
  for (const std::string& name : DatasetNames(max_tier)) {
    BenchGraph bg;
    bg.name = name;
    bg.graph = MakeDatasetByName(name, scale);
    bg.cache_key = DatasetCacheKey(name, scale);
    std::fprintf(stderr, "[bench] %s: %s\n", name.c_str(),
                 bg.graph.Summary().c_str());
    graphs.push_back(std::move(bg));
  }
  return graphs;
}

/// Simulation count: --sims override, else paper scale (1000) with
/// --paper, else the bench default.
inline int SimCount(const Flags& flags, int default_sims,
                    int paper_sims = 1000) {
  if (flags.Has("sims")) return static_cast<int>(flags.GetInt("sims", 0));
  return flags.GetBool("paper") ? paper_sims : default_sims;
}

/// Writes the CSV mirror if --csv was given.
inline void MaybeWriteCsv(const Flags& flags, const Table& table) {
  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    if (table.WriteCsv(csv)) {
      std::printf("csv written to %s\n", csv.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    }
  }
}

}  // namespace grw::bench
