// Regenerates paper Table 4: the CSS sampling probabilities p(X^(l)) for
// all 3-node graphlets under SRW1 and 4-node graphlets under SRW2, as the
// compiled interior-coefficient expansions (core/css.h). The published
// closed forms are symbolic; we print our compiled coefficient patterns in
// the same shape so they can be compared term by term, and numerically
// verify two of the published rows (wedge and triangle) on a concrete
// graph.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/css.h"
#include "core/paper_ids.h"
#include "graph/generators.h"
#include "graphlet/catalog.h"
#include "graphlet/classifier.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

// Renders one compiled entry list as "sum_j count/deg(states)".
std::string RenderEntries(const std::vector<grw::CssEntry>& entries, int k) {
  std::string out;
  for (const grw::CssEntry& entry : entries) {
    if (!out.empty()) out += " + ";
    out += std::to_string(entry.count);
    for (int t = 0; t < entry.num_interior; ++t) {
      out += "/d{";
      bool first = true;
      for (int c = 0; c < k; ++c) {
        if ((entry.interior[t] >> c) & 1u) {
          out += (first ? "" : ",") + std::to_string(c + 1);
          first = false;
        }
      }
      out += "}";
    }
  }
  return out.empty() ? "1 (no interior states)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  const grw::Flags flags(argc, argv);

  grw::Table table(
      "Table 4: compiled sampling probabilities 2|R(d)| p(X^(l)) "
      "(d{a,b} = degree of the state on canonical vertices a,b)");
  table.SetHeader({"Graphlet", "SRW(d)", "2|R(d)| p(X) ="});

  const auto& order3 = grw::PaperOrder(3);
  const grw::CssTable& css31 = grw::CssTable::For(3, 1);
  for (int pos = 0; pos < 2; ++pos) {
    table.AddRow({grw::PaperLabel(3, pos), "SRW(1)",
                  RenderEntries(css31.Entries(order3[pos]), 3)});
  }
  const auto& order4 = grw::PaperOrder(4);
  const grw::CssTable& css42 = grw::CssTable::For(4, 2);
  for (int pos = 0; pos < 6; ++pos) {
    table.AddRow({grw::PaperLabel(4, pos), "SRW(2)",
                  RenderEntries(css42.Entries(order4[pos]), 4)});
  }
  table.Print();

  // Numeric spot-checks of the published closed forms on K5: every node
  // degree is 4, every G(2) state degree is 6. The table itself is
  // symbolic, so the JSON mirror carries the spot-check values instead.
  std::vector<grw::bench::JsonMetric> metrics;
  const grw::Graph k5 = grw::Complete(5);
  {
    // g32 = triangle, SRW1: published 2|R| p / 2 = 1/d1 + 1/d2 + 1/d3.
    uint32_t mask = grw::MaskFromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
    const auto& info = grw::GraphletClassifier::ForSize(3).Info(mask);
    const grw::VertexId nodes[3] = {0, 1, 2};
    const double got = css31.Eval(info, {nodes, 3}, k5, false);
    const double want = 2.0 * 3.0 / 4.0;
    const bool ok = std::abs(got - want) < 1e-9;
    std::printf("check triangle/SRW1 on K5: %.6f (closed form %.6f) %s\n",
                got, want, ok ? "OK" : "MISMATCH");
    metrics.push_back({"triangle_srw1_k5", got, "p"});
    metrics.push_back({"triangle_srw1_k5_expected", want, "p"});
    if (!ok) return 1;
  }
  {
    // g46 = 4-clique, SRW2: published 4 * sum over 6 edges of 1/d_e.
    uint32_t mask = 0;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) mask = grw::MaskWithEdge(mask, 4, i, j);
    }
    const auto& info = grw::GraphletClassifier::ForSize(4).Info(mask);
    const grw::VertexId nodes[4] = {0, 1, 2, 3};
    const double got = css42.Eval(info, {nodes, 4}, k5, false);
    const double want = 2.0 * 4.0 * 6.0 / 6.0;
    const bool ok = std::abs(got - want) < 1e-9;
    std::printf("check 4-clique/SRW2 on K5: %.6f (closed form %.6f) %s\n",
                got, want, ok ? "OK" : "MISMATCH");
    metrics.push_back({"clique4_srw2_k5", got, "p"});
    metrics.push_back({"clique4_srw2_k5_expected", want, "p"});
    if (!ok) return 1;
  }

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) {
    std::printf("csv written to %s\n", csv.c_str());
  }
  grw::bench::MaybeWriteJson(flags, "bench_table4_css",
                             "compiled CSS probabilities, spot-checked on K5",
                             metrics);
  return 0;
}
